package socrates

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestRandomOpsModelEquivalence drives a full deployment (all four tiers)
// with a random operation stream — inserts, updates, deletes, failovers,
// backups — and checks the database against a plain map after every
// disruptive event and at the end.
func TestRandomOpsModelEquivalence(t *testing.T) {
	db := openFast(t, Config{Name: "model"})
	kv := db.KV()
	if err := kv.CreateTable("m"); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	model := map[string]string{}
	key := func(i int) string { return fmt.Sprintf("k%04d", i) }

	verify := func(context string) {
		t.Helper()
		got := map[string]string{}
		tx := db.KV().BeginRO()
		if err := tx.Scan("m", nil, nil, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		}); err != nil {
			t.Fatalf("%s: scan: %v", context, err)
		}
		if len(got) != len(model) {
			t.Fatalf("%s: %d rows, want %d", context, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("%s: %s = %q, want %q", context, k, got[k], v)
			}
		}
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(100); {
		case op < 60: // upsert
			k, v := key(rng.Intn(300)), fmt.Sprintf("v%d", step)
			tx := db.KV().Begin()
			if err := tx.Put("m", []byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case op < 80: // delete
			k := key(rng.Intn(300))
			tx := db.KV().Begin()
			if err := tx.Delete("m", []byte(k)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case op < 85: // multi-row transaction
			tx := db.KV().Begin()
			staged := map[string]string{}
			for i := 0; i < 5; i++ {
				k, v := key(rng.Intn(300)), fmt.Sprintf("m%d-%d", step, i)
				if err := tx.Put("m", []byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				staged[k] = v
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for k, v := range staged {
				model[k] = v
			}
		case op < 90: // abort: no model change
			tx := db.KV().Begin()
			_ = tx.Put("m", []byte(key(rng.Intn(300))), []byte("discarded"))
			tx.Abort()
		case op < 96: // read probe
			k := key(rng.Intn(300))
			v, found, err := db.KV().BeginRO().Get("m", []byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, ok := model[k]
			if found != ok || (found && string(v) != want) {
				t.Fatalf("step %d: %s = %q/%v, want %q/%v", step, k, v, found, want, ok)
			}
		case op < 98: // failover mid-stream
			if _, err := db.Failover(); err != nil {
				t.Fatal(err)
			}
			verify(fmt.Sprintf("after failover at step %d", step))
		default: // backup (constant-time, should not disturb anything)
			if err := db.Backup(fmt.Sprintf("b%d", step)); err != nil {
				t.Fatal(err)
			}
			verify(fmt.Sprintf("after backup at step %d", step))
		}
	}
	verify("final")

	// The replicated tiers converge to the same state.
	if err := db.WaitForReplication(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
