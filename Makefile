# Pre-commit loop: make lint test race

GO ?= go

# Packages whose -race runs are fast and deterministic; the experiments
# package replays paper-scale workloads and is exercised separately via
# `make bench` / cmd/socrates-bench.
RACE_PKGS := ./internal/compute ./internal/hadr ./internal/simdisk \
             ./internal/cluster ./internal/xlog ./internal/pageserver \
             ./internal/obs ./internal/netmux ./internal/rbio \
             ./internal/frontdoor

.PHONY: all lint fmt vet test race chaos bench bench-obs bench-mux bench-waits bench-commit bench-router cover vet-baseline clean

all: lint test

lint: fmt vet
	$(GO) run ./cmd/socrates-vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Snapshot today's socrates-vet findings into .socrates-vet-baseline.json;
# `socrates-vet -baseline .socrates-vet-baseline.json ./...` then fails
# only on NEW findings. Intended for ratcheting a pass onto a codebase
# with pre-existing findings — this tree is kept clean, so the baseline
# should normally be the empty array.
vet-baseline:
	$(GO) run ./cmd/socrates-vet -json ./... > .socrates-vet-baseline.json || true
	@echo "baseline written to .socrates-vet-baseline.json"

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Deterministic torture harness: seed matrix + schedule-hash replay tests
# under the race detector, then the oracle-sensitivity self-test (planted
# ack-before-harden bug behind the chaosfault build tag). Replay a failing
# seed with: go run ./cmd/socrates-chaos -seed N [-scenario s] [-v]
chaos:
	$(GO) test -race -count=1 -run TestChaos ./internal/chaos/
	$(GO) test -tags chaosfault -count=1 ./internal/chaos/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the observability-plane overhead seed (flight recorder on/off
# A/B on the group-commit path; see BENCH_pr3.json).
bench-obs:
	$(GO) run ./cmd/socrates-bench -exp obs -measure 2s -warmup 500ms -json BENCH_pr3.json

# Regenerate the netmux transport seed: 32 concurrent GetPage@LSN readers
# at simulated >=0.5 ms RTT, sequential-v2 vs mux-v3 over the same server
# (see BENCH_pr5.json).
bench-mux:
	$(GO) run ./cmd/socrates-bench -exp mux -measure 2s -warmup 500ms -json BENCH_pr5.json

# Regenerate the wait-accounting seed: sketch overhead on the CDB default
# mix (enabled vs disabled, interleaved pairs) plus per-request attribution
# coverage on commit-bound INSERTs (see BENCH_pr8.json).
bench-waits:
	$(GO) run ./cmd/socrates-bench -exp waits -measure 2s -warmup 500ms -json BENCH_pr8.json

# Regenerate the commit-path seed: adaptive group commit + flexible 2-of-3
# LZ quorum vs the round-trip/fixed-set baseline, CDB MaxLog mix at equal
# simulated RTT (see BENCH_pr9.json). Longer windows than the other seeds:
# p99 is a tail statistic and needs the quorum-tail events sampled.
bench-commit:
	$(GO) run ./cmd/socrates-bench -exp commit -measure 6s -warmup 1s -json BENCH_pr9.json

# Regenerate the multi-tenant isolation seed: victim p99 on a shared
# bandwidth-capped pool — quiet vs flooded vs flooded-with-admission
# (see BENCH_pr10.json). The flood must out-demand the landing zone's
# bandwidth cap for seconds, so the windows are wide.
bench-router:
	$(GO) run ./cmd/socrates-bench -exp router -measure 3s -warmup 1500ms -json BENCH_pr10.json

# Coverage floors for the commit-path packages (mirrors the CI cover job):
# future commit-path changes cannot land untested.
cover:
	$(GO) test -cover ./internal/compute ./internal/hadr ./internal/xlog ./internal/frontdoor

clean:
	$(GO) clean ./...
