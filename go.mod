module socrates

go 1.22
