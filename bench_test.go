// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (§7 and Appendix A). Each runs the corresponding experiment in
// internal/experiments at a reduced scale and reports the paper's columns
// as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. cmd/socrates-bench runs the same experiments
// at larger scale with paper-style table output.
//
// Shapes to look for (paper values in parentheses):
//
//	Table2: Socrates total TPS slightly below HADR (0.95x)
//	Table3: ~50% hit rate at a 15% cache (52%)
//	Table4: ~30% hit rate at a ~1% cache (32%)
//	Table5: Socrates log MB/s above HADR's backup-throttled rate (1.6x)
//	Table6: XIO commit median several times DD's (4.1x)
//	Figure4: TPS grows with threads; DD above XIO at every point
//	Table7: XIO needs more threads and more CPU per MB/s (8x, ~3x)
package socrates

import (
	"testing"
	"time"

	"socrates/internal/experiments"
)

// benchOptions keeps every benchmark bounded; socrates-bench uses larger
// windows for tighter numbers.
func benchOptions() experiments.Options {
	return experiments.Options{
		Measure: 800 * time.Millisecond,
		WarmUp:  200 * time.Millisecond,
		SF:      600,
		Threads: 32,
	}
}

func BenchmarkTable1_Goals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-16s | today: %-48s | socrates: %s", r.Metric, r.HADR, r.Socrates)
			}
		}
	}
}

func BenchmarkTable2_CDBDefaultMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, s, err := experiments.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(h.TotalTPS, "hadr-tps")
			b.ReportMetric(s.TotalTPS, "socrates-tps")
			b.ReportMetric(h.CPUPct, "hadr-cpu%")
			b.ReportMetric(s.CPUPct, "socrates-cpu%")
			b.ReportMetric(s.TotalTPS/h.TotalTPS, "socrates/hadr")
			b.Logf("HADR: cpu %.1f%% write %.0f read %.0f total %.0f",
				h.CPUPct, h.WriteTPS, h.ReadTPS, h.TotalTPS)
			b.Logf("Socrates: cpu %.1f%% write %.0f read %.0f total %.0f",
				s.CPUPct, s.WriteTPS, s.ReadTPS, s.TotalTPS)
		}
	}
}

func BenchmarkTable3_CacheHitCDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.HitPct, "hit%")
			b.ReportMetric(r.CacheRatio*100, "cache-ratio%")
			b.Logf("CDB: %d data pages, %d cache pages (%.1f%%), hit %.1f%% (paper: 52%%)",
				r.DataPages, r.CachePages, r.CacheRatio*100, r.HitPct)
		}
	}
}

func BenchmarkTable4_CacheHitTPCE(b *testing.B) {
	o := benchOptions()
	o.SF = 300 // customers = 3x this; the TPC-E load dominates runtime
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.HitPct, "hit%")
			b.ReportMetric(r.CacheRatio*100, "cache-ratio%")
			b.Logf("TPC-E: %d data pages, %d cache pages (%.1f%%), hit %.1f%% (paper: 32%%)",
				r.DataPages, r.CachePages, r.CacheRatio*100, r.HitPct)
		}
	}
}

func BenchmarkTable5_LogThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, s, err := experiments.Table5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(h.LogMBps, "hadr-MB/s")
			b.ReportMetric(s.LogMBps, "socrates-MB/s")
			b.ReportMetric(s.LogMBps/h.LogMBps, "socrates/hadr")
			b.Logf("HADR %.2f MB/s (cpu %.1f%%) vs Socrates %.2f MB/s (cpu %.1f%%) — paper ratio 1.58",
				h.LogMBps, h.CPUPct, s.LogMBps, s.CPUPct)
		}
	}
}

func BenchmarkTable6_CommitLatencyXIOvsDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xio, dd, err := experiments.Table6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(xio.Stats.Median.Microseconds()), "xio-median-us")
			b.ReportMetric(float64(dd.Stats.Median.Microseconds()), "dd-median-us")
			b.ReportMetric(float64(xio.Stats.Median)/float64(dd.Stats.Median), "xio/dd")
			b.Logf("XIO: %v (paper: min 2518 / median 3300 / max 36864 us)", xio.Stats)
			b.Logf("DD:  %v (paper: min 484 / median 800 / max 39857 us)", dd.Stats)
		}
	}
}

func BenchmarkFigure4_ThroughputVsThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure4(benchOptions(), []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%-4s threads=%-3d tps=%.0f", p.Service, p.Threads, p.TPS)
				if p.Service == "DD" && p.Threads == 1 {
					b.ReportMetric(p.TPS, "dd-1thread-tps")
				}
				if p.Service == "XIO" && p.Threads == 1 {
					b.ReportMetric(p.TPS, "xio-1thread-tps")
				}
			}
		}
	}
}

func BenchmarkTable7_CPUPerLogRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xio, dd, err := experiments.Table7(benchOptions(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(xio.Threads), "xio-threads")
			b.ReportMetric(float64(dd.Threads), "dd-threads")
			b.ReportMetric(xio.CPUPct, "xio-cpu%")
			b.ReportMetric(dd.CPUPct, "dd-cpu%")
			b.Logf("XIO: %d threads for %.2f MB/s at %.1f%% CPU", xio.Threads, xio.LogMBps, xio.CPUPct)
			b.Logf("DD:  %d threads for %.2f MB/s at %.1f%% CPU (paper: XIO needs 8x threads, ~3x CPU)",
				dd.Threads, dd.LogMBps, dd.CPUPct)
		}
	}
}
