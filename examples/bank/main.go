// Bank: concurrent transfers under Snapshot Isolation while the primary is
// killed and recovered mid-workload. The invariant — total money never
// changes — holds across write conflicts and the failover, because
// durability lives in the log tier, not in any compute node (§4.2).
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"socrates"
	"socrates/internal/engine"
)

const (
	accounts     = 50
	perAccount   = 1000
	transferGoal = 600
)

func main() {
	db, err := socrates.Open(socrates.Config{Name: "bank", Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Seed accounts through the KV engine (the layer SQL compiles onto).
	kv := db.KV()
	if err := kv.CreateTable("bank"); err != nil {
		log.Fatal(err)
	}
	seed := kv.Begin()
	for i := 0; i < accounts; i++ {
		if err := seed.Put("bank", key(i), encode(perAccount)); err != nil {
			log.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d accounts with %d each (total %d)\n",
		accounts, perAccount, accounts*perAccount)

	var done, conflicts, transferred atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for done.Load() < transferGoal {
				if err := transfer(db, rng); err != nil {
					conflicts.Add(1) // first-writer-wins abort: retry
					continue
				}
				done.Add(1)
				transferred.Add(1)
			}
		}(int64(w + 1))
	}

	// Crash the primary mid-workload. Committed transfers are durable in
	// the landing zone; the workers retry through the blip.
	for done.Load() < transferGoal/3 {
	}
	fmt.Println("killing the primary mid-workload...")
	d, err := db.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new primary serving after %v\n", d)
	wg.Wait()

	// Audit: the invariant must hold exactly.
	total := 0
	tx := db.KV().BeginRO()
	err = tx.Scan("bank", nil, nil, func(k, v []byte) bool {
		total += decode(v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d transfers (%d write conflicts retried)\n",
		done.Load(), conflicts.Load())
	fmt.Printf("audit: total = %d (expected %d)\n", total, accounts*perAccount)
	if total != accounts*perAccount {
		log.Fatal("INVARIANT VIOLATED")
	}
	fmt.Println("invariant held across failover ✓")
}

// transfer moves a random amount between two random accounts in one
// snapshot-isolation transaction.
func transfer(db *socrates.DB, rng *rand.Rand) error {
	from, to := rng.Intn(accounts), rng.Intn(accounts)
	if from == to {
		to = (to + 1) % accounts
	}
	amount := 1 + rng.Intn(20)

	tx := db.KV().Begin()
	defer tx.Abort()
	fv, _, err := tx.Get("bank", key(from))
	if err != nil {
		return err
	}
	tv, _, err := tx.Get("bank", key(to))
	if err != nil {
		return err
	}
	fb, tb := decode(fv), decode(tv)
	if fb < amount {
		return nil // insufficient funds: no-op, counts as done
	}
	if err := tx.Put("bank", key(from), encode(fb-amount)); err != nil {
		return err
	}
	if err := tx.Put("bank", key(to), encode(tb+amount)); err != nil {
		return err
	}
	return tx.Commit()
}

func key(i int) []byte    { return []byte(fmt.Sprintf("acct-%04d", i)) }
func encode(n int) []byte { return []byte(fmt.Sprintf("%d", n)) }
func decode(v []byte) int { n := 0; fmt.Sscanf(string(v), "%d", &n); return n }

var _ = engine.ErrReadOnly // the example links the engine API it discusses
