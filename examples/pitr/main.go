// PITR: take a constant-time backup (an XStore snapshot — a pointer, not a
// copy), "accidentally" destroy data, and restore to the moment before the
// accident by replaying the bounded log range on top of the snapshot
// (§3.5, §4.7).
//
//	go run ./examples/pitr
package main

import (
	"fmt"
	"log"
	"time"

	"socrates"
)

func main() {
	db, err := socrates.Open(socrates.Config{Name: "pitr", Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *socrates.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	must(`CREATE TABLE orders (id INT PRIMARY KEY, item TEXT, qty INT)`)
	must(`INSERT INTO orders VALUES
		(1, 'widget', 10),
		(2, 'gadget', 5),
		(3, 'sprocket', 7)`)

	start := time.Now()
	if err := db.Backup("nightly"); err != nil {
		log.Fatal(err)
	}
	mark := db.BackupLSN()
	fmt.Printf("backup \"nightly\" taken in %v at LSN %d (no data copied — an XStore snapshot)\n",
		time.Since(start), mark)

	// Business continues after the backup...
	must(`INSERT INTO orders VALUES (4, 'doohickey', 2)`)
	// ...and then disaster.
	must(`DELETE FROM orders`)
	res := must(`SELECT COUNT(*) FROM orders`)
	fmt.Printf("after the accident the live table has %s rows\n", res.Rows[0][0])

	// Restore to the backup instant: the three original orders.
	restored, err := db.PointInTimeRestore("nightly", mark)
	if err != nil {
		log.Fatal(err)
	}
	res, err = restored.Exec(`SELECT id, item, qty FROM orders ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restore @backup sees %d orders:\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  #%s %-10s x%s\n", row[0], row[1], row[2])
	}

	// Restore to end-of-log reproduces the accident (the log is the truth).
	restoredEnd, err := db.PointInTimeRestore("nightly", 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err = restoredEnd.Exec(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restore @end-of-log sees %s rows (the delete replayed)\n", res.Rows[0][0])

	// The live database is untouched by restores.
	res = must(`SELECT COUNT(*) FROM orders`)
	fmt.Printf("live table still has %s rows\n", res.Rows[0][0])
}
