// Quickstart: open an embedded Socrates deployment, speak SQL to it, and
// peek at the disaggregated machinery underneath (log position, cache hit
// rate, page servers).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"socrates"
)

func main() {
	// Fast mode runs the full four-tier stack (compute → XLOG → page
	// servers → XStore) with zero-latency simulated devices.
	db, err := socrates.Open(socrates.Config{Name: "quickstart", Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *socrates.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	must(`CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)`)
	must(`INSERT INTO accounts VALUES
		(1, 'alice', 120),
		(2, 'bob', 80),
		(3, 'carol', 300)`)
	must(`UPDATE accounts SET balance = balance + 20 WHERE owner = 'bob'`)

	res := must(`SELECT owner, balance FROM accounts ORDER BY balance DESC`)
	fmt.Println("accounts by balance:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %s\n", row[0], row[1])
	}

	res = must(`SELECT COUNT(*), SUM(balance), AVG(balance) FROM accounts`)
	fmt.Printf("count=%s total=%s avg=%s\n",
		res.Rows[0][0], res.Rows[0][1], res.Rows[0][2])

	// A transaction that changes its mind costs nothing: writes buffer in
	// the session and never touch a page until commit.
	sess := db.Session()
	_, _ = sess.Exec("BEGIN")
	_, _ = sess.Exec(`UPDATE accounts SET balance = 0`)
	_, _ = sess.Exec("ROLLBACK")
	res = must(`SELECT SUM(balance) FROM accounts`)
	fmt.Printf("after rollback, total is still %s\n", res.Rows[0][0])

	st := db.Stats()
	fmt.Printf("\nunder the hood: hardened LSN %d, %d log bytes in the landing zone,\n",
		st.HardenedLSN, st.LogBytes)
	fmt.Printf("%d page server(s), cache hit rate %.0f%%, %.2f MB durable in XStore\n",
		st.PageServers, 100*st.CacheHitRate, st.XStoreLiveMB)
}
