// Scaleout: grow a database past its provisioned partition, watch the
// cluster add page servers on demand (§4.1.1), split a partition into
// finer shards (§6), and scale reads with a secondary — all without moving
// data or pausing writes.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"time"

	"socrates"
)

func main() {
	db, err := socrates.Open(socrates.Config{
		Name:              "scaleout",
		Fast:              true,
		PageServers:       1,
		PagesPerPartition: 64, // small partitions so growth is visible
		CacheMemPages:     16, // small compute cache: reads hit page servers
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE events (id INT PRIMARY KEY, body TEXT)`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting with %d page server(s)\n", db.Stats().PageServers)

	// Load enough wide rows to spill past partition 0; the cluster spins
	// up page servers for new partitions as the allocator crosses each
	// boundary — no data moves.
	sess := db.Session()
	if _, err := sess.Exec("BEGIN"); err != nil {
		log.Fatal(err)
	}
	body := make([]byte, 900)
	for i := range body {
		body[i] = 'x'
	}
	for i := 0; i < 1500; i++ {
		stmt := fmt.Sprintf(`INSERT INTO events VALUES (%d, '%s')`, i, body)
		if _, err := sess.Exec(stmt); err != nil {
			log.Fatal(err)
		}
		if i%500 == 499 {
			if _, err := sess.Exec("COMMIT"); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("after %4d rows: %d page servers\n", i+1, db.Stats().PageServers)
			if _, err := sess.Exec("BEGIN"); err != nil {
				log.Fatal(err)
			}
		}
	}
	if _, err := sess.Exec("COMMIT"); err != nil {
		log.Fatal(err)
	}

	// Finer sharding: split partition 0 for a smaller mean-time-to-recovery.
	before := db.Stats().PageServers
	if err := db.SplitPageServer(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split partition 0: %d -> %d page servers\n", before, db.Stats().PageServers)

	// Read scale-out: a secondary attaches in O(1) (no data copied) and
	// serves snapshot reads.
	if err := db.AddSecondary("reporting"); err != nil {
		log.Fatal(err)
	}
	if err := db.WaitForReplication(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	ro, err := db.ReadSession("reporting")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ro.Exec(`SELECT COUNT(*) FROM events`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secondary \"reporting\" counts %s rows\n", res.Rows[0][0])

	// And the primary still answers point queries routed across shards.
	res, err = db.Exec(`SELECT COUNT(*) FROM events WHERE id >= 700 AND id < 750`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary range count across shards: %s\n", res.Rows[0][0])
	fmt.Printf("final: %d page servers, %d secondaries, cache hit rate %.0f%%\n",
		db.Stats().PageServers, db.Stats().Secondaries, 100*db.Stats().CacheHitRate)
}
