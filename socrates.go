// Package socrates is a from-scratch Go reproduction of "Socrates: The New
// SQL Server in the Cloud" (Antonopoulos et al., SIGMOD 2019) — the
// disaggregated OLTP database architecture shipped as Azure SQL DB
// Hyperscale.
//
// A Socrates database separates durability from availability across four
// tiers, all implemented in this module:
//
//   - compute nodes (one read-write primary, any number of read-only
//     secondaries) run the relational engine over sparse RBPEX caches and
//     fetch missing pages with GetPage@LSN;
//   - the XLOG service owns the log: the primary commits into a
//     quorum-replicated landing zone, and XLOG disseminates hardened blocks
//     to consumers and destages them to the long-term archive;
//   - page servers each keep one partition current by applying the
//     filtered log, serve pages, and checkpoint to XStore;
//   - XStore (simulated Azure Storage) durably holds checkpoints and log
//     archive, with constant-time snapshots for backup/restore.
//
// Open starts a complete single-process deployment over a simulated Azure
// storage substrate and returns a handle that speaks SQL:
//
//	db, err := socrates.Open(socrates.Config{})
//	defer db.Close()
//	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
//	db.Exec(`INSERT INTO t VALUES (1, 'hello')`)
//	res, _ := db.Exec(`SELECT v FROM t WHERE id = 1`)
//
// The handle also exposes the paper's operational workflows: Failover,
// AddSecondary, SplitPageServer, Backup, and PointInTimeRestore.
package socrates

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"socrates/internal/cluster"
	"socrates/internal/engine"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/socerr"
	"socrates/internal/sqlengine"
	"socrates/internal/xstore"
)

// Re-exported result types so callers need not import internals.
type (
	// Result is the outcome of one SQL statement.
	Result = sqlengine.Result
	// Value is one SQL value in a result row.
	Value = sqlengine.Value
	// Session is a SQL session with optional explicit transactions.
	Session = sqlengine.Session
	// TraceID identifies one recorded request trace.
	TraceID = obs.TraceID
	// SpanNode is one node of an exported span tree.
	SpanNode = obs.SpanNode
	// HistSummary is an exported latency histogram.
	HistSummary = obs.HistSummary
	// WatermarkState is one rung of the LSN watermark ladder.
	WatermarkState = obs.WatermarkState
	// FlightEvent is one flight-recorder ring entry.
	FlightEvent = obs.FlightEvent
	// Trip is one watchdog firing (lag or stall).
	Trip = obs.Trip
	// ObsServer is a running HTTP observability listener.
	ObsServer = obs.HTTPServer
)

// Typed error sentinels for errors.Is across the public surface.
var (
	// ErrTimeout marks deadline/timeout failures (context expiry,
	// replication catch-up timeouts, page-server apply lag).
	ErrTimeout = socerr.ErrTimeout
	// ErrClosed marks operations on stopped components (closed log
	// writer, stopped page server).
	ErrClosed = socerr.ErrClosed
	// ErrNoSecondary marks operations naming an unknown secondary.
	ErrNoSecondary = socerr.ErrNoSecondary
	// ErrAdmission marks a request rejected by per-tenant admission
	// control at the front door (the tenant's token bucket was empty).
	ErrAdmission = socerr.ErrAdmission
	// ErrTenantMoved marks a request routed with a stale placement
	// epoch; errors.As against *TenantMovedError recovers the redirect.
	ErrTenantMoved = socerr.ErrTenantMoved
)

// TenantMovedError is the typed redirect behind ErrTenantMoved: it
// carries the tenant's current cluster and placement epoch.
type TenantMovedError = socerr.TenantMovedError

// LZService selects the storage service implementing the landing zone —
// the Appendix A experiment knob. Swapping services changes no other code,
// exactly as the paper claims.
type LZService int

// Landing-zone service choices.
const (
	// XIO is Azure Premium Storage: the production configuration (§7.1).
	XIO LZService = iota
	// DirectDrive is the faster RDMA-based service of Appendix A.
	DirectDrive
	// InstantLZ is a zero-latency landing zone for tests.
	InstantLZ
)

// Config tunes a deployment. The zero value is a sensible single-node
// development deployment (one primary, one page server, XIO landing zone).
type Config struct {
	// Name names the database (defaults to "db").
	Name string
	// Secondaries is the number of read-scale secondary compute nodes.
	Secondaries int
	// PageServers is the initial page-server (partition) count.
	PageServers int
	// PagesPerPartition sizes partitions; required if PageServers > 1.
	// The cluster grows extra page servers on demand as the database
	// grows past the provisioned partitions.
	PagesPerPartition uint64
	// LZ selects the landing-zone storage service.
	LZ LZService
	// CacheMemPages / CacheSSDPages size each compute node's RBPEX tiers.
	CacheMemPages, CacheSSDPages int
	// Cores sizes the primary's simulated CPU meter.
	Cores int
	// Fast replaces every simulated device with zero-latency variants —
	// full protocol fidelity without wall-clock cost (for tests/examples).
	Fast bool
}

// DB is a running Socrates deployment plus its SQL front end.
type DB struct {
	cluster *cluster.Cluster

	mu  sync.RWMutex
	sql *sqlengine.DB
}

// Open builds, bootstraps, and starts a deployment.
func Open(cfg Config) (*DB, error) {
	ccfg := cluster.Config{
		Name:              cfg.Name,
		Secondaries:       cfg.Secondaries,
		PageServers:       cfg.PageServers,
		PagesPerPartition: cfg.PagesPerPartition,
		ComputeMemPages:   cfg.CacheMemPages,
		ComputeSSDPages:   cfg.CacheSSDPages,
		PrimaryCores:      cfg.Cores,
	}
	switch cfg.LZ {
	case XIO:
		ccfg.LZProfile = simdisk.XIO
	case DirectDrive:
		ccfg.LZProfile = simdisk.DirectDrive
	case InstantLZ:
		ccfg.LZProfile = simdisk.Instant
	default:
		return nil, fmt.Errorf("socrates: unknown landing-zone service %d", cfg.LZ)
	}
	if cfg.Fast {
		ccfg.LZProfile = simdisk.Instant
		ccfg.LocalSSD = simdisk.Instant
		ccfg.Net = rbio.NewInstantNetwork()
		ccfg.XStore = xstore.Config{Profile: simdisk.Instant}
		ccfg.CheckpointEvery = 5 * time.Millisecond
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	return &DB{cluster: c, sql: sqlengine.New(c.Primary().Engine)}, nil
}

// Close stops every node of the deployment.
func (db *DB) Close() { db.cluster.Close() }

// Exec parses and runs one SQL statement with auto-commit.
func (db *DB) Exec(sql string) (*Result, error) { return db.front().Exec(sql) }

// ExecContext parses and runs one SQL statement with auto-commit, bounded
// by ctx: a cancelled or expired context aborts the commit wait, and the
// whole statement records one cross-tier span tree retrievable with
// LastTrace / Trace.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.front().ExecContext(ctx, sql)
}

// Session opens a SQL session on the primary (BEGIN/COMMIT supported).
func (db *DB) Session() *Session { return db.front().Session() }

// front returns the current SQL front end (swapped on failover).
func (db *DB) front() *sqlengine.DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sql
}

// ReadSession opens a SQL session against a read-only secondary.
func (db *DB) ReadSession(secondary string) (*Session, error) {
	sec, ok := db.cluster.Secondary(secondary)
	if !ok {
		return nil, fmt.Errorf("%w: %q", socerr.ErrNoSecondary, secondary)
	}
	return sqlengine.New(sec.Engine).Session(), nil
}

// KV exposes the primary's transactional key-value engine directly (the
// layer the SQL front end compiles onto).
func (db *DB) KV() *engine.Engine { return db.cluster.Primary().Engine }

// Cluster exposes the deployment for operational inspection (experiments,
// metrics, failure injection).
func (db *DB) Cluster() *cluster.Cluster { return db.cluster }

// --- operational workflows (§5, §6) ---

// Failover crashes the primary and recovers a fresh one; returns the time
// to availability. SQL traffic transparently continues on the new primary.
func (db *DB) Failover() (time.Duration, error) {
	return db.FailoverContext(context.Background())
}

// FailoverContext is Failover bounded by ctx: a done context before the
// new primary is installed aborts with a socerr-classified error.
func (db *DB) FailoverContext(ctx context.Context) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, socerr.FromContext(err)
	}
	p, d, err := db.cluster.Failover()
	if err != nil {
		return d, err
	}
	db.mu.Lock()
	db.sql = sqlengine.New(p.Engine)
	db.mu.Unlock()
	return d, nil
}

// AddSecondary attaches a read-scale secondary (O(1): no data copied).
func (db *DB) AddSecondary(name string) error {
	_, err := db.cluster.AddSecondary(name)
	return err
}

// RemoveSecondary detaches a secondary.
func (db *DB) RemoveSecondary(name string) error {
	return db.cluster.RemoveSecondary(name)
}

// Secondaries lists attached secondaries.
func (db *DB) Secondaries() []string { return db.cluster.Secondaries() }

// WaitForReplication blocks until all page servers and secondaries applied
// the log through the current hardened end. A timeout surfaces as
// ErrTimeout under errors.Is.
func (db *DB) WaitForReplication(timeout time.Duration) error {
	return db.cluster.WaitForCatchUp(timeout)
}

// WaitForReplicationContext is WaitForReplication bounded by ctx's
// deadline (default 10s when the context has none).
func (db *DB) WaitForReplicationContext(ctx context.Context) error {
	timeout := 10 * time.Second
	if d, ok := ctx.Deadline(); ok {
		timeout = time.Until(d)
	}
	if err := ctx.Err(); err != nil {
		return socerr.FromContext(err)
	}
	return db.cluster.WaitForCatchUp(timeout)
}

// SplitPageServer shards a partition into two page servers (finer sharding
// for faster recovery, §6).
func (db *DB) SplitPageServer(partition uint32) error {
	return db.cluster.SplitPageServer(page.PartitionID(partition))
}

// AddPageServerReplica adds a hot replica of a partition's page server.
func (db *DB) AddPageServerReplica(partition uint32) error {
	return db.cluster.AddPageServerReplica(page.PartitionID(partition))
}

// Backup takes a named constant-time backup (XStore snapshot).
func (db *DB) Backup(name string) error { return db.cluster.Backup(name) }

// BackupLSN reports the current hardened log position, usable as a
// PointInTimeRestore target.
func (db *DB) BackupLSN() uint64 { return db.cluster.LZ.HardenedEnd().Uint64() }

// RestoredDB is a read-only database materialized by PointInTimeRestore.
type RestoredDB struct {
	sql *sqlengine.DB
}

// Exec runs a read-only SQL statement against the restored image.
func (r *RestoredDB) Exec(sql string) (*Result, error) { return r.sql.Exec(sql) }

// PointInTimeRestore materializes the database as of targetLSN (0 = end of
// log) from a named backup: constant-time snapshot restore plus a bounded
// log-range replay (§4.7).
func (db *DB) PointInTimeRestore(backup string, targetLSN uint64) (*RestoredDB, error) {
	eng, _, err := db.cluster.PointInTimeRestore(backup, page.LSN(targetLSN))
	if err != nil {
		return nil, err
	}
	return &RestoredDB{sql: sqlengine.New(eng)}, nil
}

// TierMetrics groups the named metrics recorded by one Socrates tier.
// Keys are the metric names without the tier prefix (so the compute tier's
// "compute.commit.latency" histogram appears under "commit.latency").
type TierMetrics struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistSummary
}

// MetricsSnapshot is a point-in-time view of the deployment's metrics
// registry, split by tier. The commit path shows up as
// Compute.Histograms["commit.latency"] → LandingZone.Histograms["write.latency"]
// → XLOG.Histograms["promote.latency"]; the GetPage@LSN path as
// Compute.Histograms["getpage.latency"] (client side, cache misses only)
// and PageServer.Histograms["getpage.latency"] (server side).
type MetricsSnapshot struct {
	Taken       time.Time
	Compute     TierMetrics // SQL execution, commit path, GetPage@LSN client side
	LandingZone TierMetrics // durable log writes into the LZ
	XLOG        TierMetrics // LogBroker feed, promotion, destage, pulls
	PageServer  TierMetrics // log apply, GetPage@LSN serving, scan pushdown
	XStore      TierMetrics // long-term storage reads/writes/snapshots
	Frontdoor   TierMetrics // router tier: per-tenant ops, latency, rejects
	Other       TierMetrics // anything outside the six tier namespaces
}

// tierOf maps a metric-name prefix to the snapshot sub-struct it belongs to,
// returning the remainder of the name.
func (m *MetricsSnapshot) tierOf(name string) (*TierMetrics, string) {
	for _, t := range []struct {
		prefix string
		dst    *TierMetrics
	}{
		{"compute.", &m.Compute},
		{"lz.", &m.LandingZone},
		{"xlog.", &m.XLOG},
		{"pageserver.", &m.PageServer},
		{"xstore.", &m.XStore},
		{"frontdoor.", &m.Frontdoor},
	} {
		if rest, ok := strings.CutPrefix(name, t.prefix); ok {
			return t.dst, rest
		}
	}
	return &m.Other, name
}

// MetricsSnapshot captures the per-tier metrics registry. It is cheap
// (no device I/O) and safe to call concurrently with a running workload.
func (db *DB) MetricsSnapshot() MetricsSnapshot {
	raw := db.cluster.Metrics.Snapshot()
	out := MetricsSnapshot{Taken: raw.Taken}
	for name, v := range raw.Counters {
		tier, rest := out.tierOf(name)
		if tier.Counters == nil {
			tier.Counters = make(map[string]uint64)
		}
		tier.Counters[rest] = v
	}
	for name, v := range raw.Gauges {
		tier, rest := out.tierOf(name)
		if tier.Gauges == nil {
			tier.Gauges = make(map[string]int64)
		}
		tier.Gauges[rest] = v
	}
	for name, v := range raw.Histograms {
		tier, rest := out.tierOf(name)
		if tier.Histograms == nil {
			tier.Histograms = make(map[string]HistSummary)
		}
		tier.Histograms[rest] = v
	}
	return out
}

// Traces lists the trace IDs retained by the deployment tracer, oldest
// first. The tracer keeps a bounded ring of recent traces.
func (db *DB) Traces() []TraceID { return db.cluster.Tracer.TraceIDs() }

// Trace assembles the span tree recorded under the given trace ID, or nil
// if the trace was never recorded (or has been evicted). Each node carries
// the tier that executed it and the simulated time it consumed; use
// SpanNode.Tiers to see which tiers a request crossed and SpanNode.Format
// to render the tree as indented text.
func (db *DB) Trace(id TraceID) *SpanNode { return db.cluster.Tracer.Trace(id) }

// LastTrace returns the most recently started retained trace, or nil when
// nothing has been traced yet. Handy in tests and demos:
//
//	db.ExecContext(ctx, "INSERT ...")
//	fmt.Print(db.LastTrace().Format())
func (db *DB) LastTrace() *SpanNode {
	ids := db.cluster.Tracer.TraceIDs()
	if len(ids) == 0 {
		return nil
	}
	return db.cluster.Tracer.Trace(ids[len(ids)-1])
}

// --- observability plane ---

// ServeObservability starts the deployment's HTTP observability plane on
// addr (":0" picks a free port; read it back with Addr on the returned
// server). Endpoints:
//
//	/metrics       Prometheus text: counters, gauges, histogram buckets,
//	               and the watermark ladder
//	/metrics.json  raw registry snapshot (what socrates-top -addr polls)
//	/watermarks    the LSN ladder + derived lags + watchdog trips (JSON)
//	/flight        the flight-recorder ring as time-ordered JSONL
//	/traces        retained trace IDs; /traces?id=N renders one span tree
//	/waits         wait-event accounting per tier and class (JSON;
//	               ?format=prom for Prometheus text)
//	/debug/pprof/  the standard Go profiling endpoints
func (db *DB) ServeObservability(addr string) (*ObsServer, error) {
	c := db.cluster
	return obs.Serve(addr, obs.NewHTTPHandler(obs.PlaneOptions{
		Registry:   c.Metrics,
		Watermarks: c.Watermarks,
		Flight:     c.Flight,
		Tracer:     c.Tracer,
		Watchdog:   c.Watchdog,
		Waits:      c.Waits,
	}))
}

// WaitReport snapshots the deployment's wait-event accounting: per-tier
// and global count/total/max per wait class, sorted by total blocked time.
func (db *DB) WaitReport() obs.WaitReport { return db.cluster.Waits.Report() }

// Watermarks snapshots the LSN watermark ladder: commit frontier, hardened
// prefix, promotion/destaging frontiers, per-replica applied LSNs.
func (db *DB) Watermarks() []WatermarkState { return db.cluster.Watermarks.Snapshot() }

// FlightEvents returns a time-ordered copy of the flight recorder's
// retained ring — the always-on postmortem buffer.
func (db *DB) FlightEvents() []FlightEvent { return db.cluster.Flight.Events() }

// WatchdogTrips lists lag/stall watchdog firings so far, oldest first.
func (db *DB) WatchdogTrips() []Trip { return db.cluster.Watchdog.Trips() }

// Stats reports headline deployment metrics.
//
// Deprecated: Stats predates the per-tier metrics registry and survives as
// a thin shim. New code should use MetricsSnapshot, which exposes the
// commit-path and GetPage@LSN latency histograms for every tier.
type Stats struct {
	HardenedLSN    uint64  // durable log end
	LogBytes       int64   // bytes flushed to the landing zone
	CacheHitRate   float64 // primary RBPEX hit rate
	RemoteFetches  int64   // GetPage@LSN calls issued by the primary
	PageServers    int
	Secondaries    int
	XStoreLiveMB   float64
	CPUUtilization float64
}

// Stats snapshots deployment metrics.
func (db *DB) Stats() Stats {
	p := db.cluster.Primary()
	_, bytes := p.Writer().Stats()
	return Stats{
		HardenedLSN:    p.HardenedEnd().Uint64(),
		LogBytes:       bytes,
		CacheHitRate:   p.Pages().Cache().HitRate(),
		RemoteFetches:  p.Pages().Fetches(),
		PageServers:    len(db.cluster.PageServers()),
		Secondaries:    len(db.cluster.Secondaries()),
		XStoreLiveMB:   float64(db.cluster.Store.LiveBytes()) / (1 << 20),
		CPUUtilization: db.cluster.PrimaryMeter.Utilization(),
	}
}

// ErrNoBackup is returned by PointInTimeRestore for unknown backup names.
var ErrNoBackup = cluster.ErrNoBackup

// IsNoBackup reports whether err is an unknown-backup error.
func IsNoBackup(err error) bool { return errors.Is(err, cluster.ErrNoBackup) }
