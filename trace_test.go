package socrates

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// waitForTrace polls the tracer until some retained trace satisfies ok, or
// the deadline passes. Spans from the xlog tier are recorded asynchronously
// (the feed is fire-and-forget and the harden report is off the critical
// path), so the full tree can trail ExecContext's return by a moment.
func waitForTrace(t *testing.T, db *DB, ok func(*SpanNode) bool) *SpanNode {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, id := range db.Traces() {
			if tree := db.Trace(id); tree != nil && ok(tree) {
				return tree
			}
		}
		if time.Now().After(deadline) {
			for _, id := range db.Traces() {
				if tree := db.Trace(id); tree != nil {
					t.Logf("trace %d:\n%s", id, tree.Format())
				}
			}
			t.Fatal("no trace satisfied the predicate within the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCommitSpanTreeCrossesTiers is the tentpole acceptance test: a
// committed INSERT issued through ExecContext yields one coherent span
// tree that crosses at least three tiers (compute → landing zone → XLOG),
// with nonzero simulated time attributed to each span.
func TestCommitSpanTreeCrossesTiers(t *testing.T) {
	db := openFast(t, Config{Name: "trace1"})
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, `INSERT INTO t VALUES (1, 'hello')`); err != nil {
		t.Fatal(err)
	}

	tree := waitForTrace(t, db, func(n *SpanNode) bool {
		return len(n.Tiers()) >= 3 && hasSpan(n, "engine.commit")
	})
	tiers := tree.Tiers()
	t.Logf("commit trace (tiers %v):\n%s", tiers, tree.Format())

	want := map[string]bool{"compute": false, "lz": false, "xlog": false}
	for _, tier := range tiers {
		if _, ok := want[tier]; ok {
			want[tier] = true
		}
	}
	for tier, seen := range want {
		if !seen {
			t.Errorf("span tree missing tier %q (got %v)", tier, tiers)
		}
	}

	// Every span in the tree must carry nonzero attributed time.
	var walk func(*SpanNode)
	walk = func(n *SpanNode) {
		if n.Name != "trace" && n.Duration <= 0 {
			t.Errorf("span %s [%s] has no attributed time", n.Name, n.Tier)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)

	// The tree must be parented, not a flat bag: the commit span owns the
	// landing-zone write, which owns the XLOG promotion.
	if !hasPath(tree, "engine.commit", "lz.write") {
		t.Errorf("lz.write is not a descendant of engine.commit:\n%s", tree.Format())
	}
}

// TestGetPageSpanAndMetrics drives a cache miss on a fresh secondary and
// checks that GetPage@LSN produces spans on both sides of the wire and
// that the per-tier registry captured the latency histograms.
func TestGetPageSpanAndMetrics(t *testing.T) {
	db := openFast(t, Config{Name: "trace2", Secondaries: 1})
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.ExecContext(ctx, insertRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitForReplication(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess, err := db.ReadSession(db.Secondaries()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(ctx, `SELECT v FROM t WHERE id = 25`); err != nil {
		t.Fatal(err)
	}

	snap := db.MetricsSnapshot()
	if h := snap.Compute.Histograms["getpage.latency"]; h.Count == 0 {
		t.Error("compute getpage.latency histogram is empty")
	}
	if h := snap.PageServer.Histograms["getpage.latency"]; h.Count == 0 {
		t.Error("pageserver getpage.latency histogram is empty")
	}
	if h := snap.Compute.Histograms["commit.latency"]; h.Count == 0 {
		t.Error("compute commit.latency histogram is empty")
	}
	if h := snap.LandingZone.Histograms["write.latency"]; h.Count == 0 {
		t.Error("lz write.latency histogram is empty")
	}
	if c := snap.XStore.Counters["write.ops"]; c == 0 {
		t.Error("xstore write.ops counter is zero")
	}

	// The getpage trace must cross compute and pageserver.
	tree := waitForTrace(t, db, func(n *SpanNode) bool {
		return hasPath(n, "compute.getpage", "pageserver.getpage")
	})
	t.Logf("getpage trace:\n%s", tree.Format())
}

// TestContextCancellationMapsToTimeout checks the typed-error taxonomy on
// the ctx-first surface: an already-expired context surfaces ErrTimeout.
func TestContextCancellationMapsToTimeout(t *testing.T) {
	db := openFast(t, Config{Name: "trace3"})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := db.WaitForReplicationContext(ctx); !errors.Is(err, ErrTimeout) {
		t.Errorf("WaitForReplicationContext(expired) = %v, want ErrTimeout", err)
	}
	if _, err := db.FailoverContext(ctx); !errors.Is(err, ErrTimeout) {
		t.Errorf("FailoverContext(expired) = %v, want ErrTimeout", err)
	}
	if _, err := db.ReadSession("nope"); !errors.Is(err, ErrNoSecondary) {
		t.Errorf("ReadSession(unknown) = %v, want ErrNoSecondary", err)
	}
}

// TestPerRequestWaitAttribution is the wait-stats acceptance test: a
// committed INSERT's Result carries its own wait breakdown (the
// EXPLAIN-ANALYZE of waits), the hardening wait lands on the commit
// subtree of the traced span tree, and the deployment-wide sketch saw the
// same classes. Runs on a real XIO landing zone (no Fast) so the commit
// genuinely blocks in WaitHarden.
func TestPerRequestWaitAttribution(t *testing.T) {
	db, err := Open(Config{Name: "waits1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	var hardened *Result
	for i := 0; i < 8; i++ {
		res, err := db.ExecContext(ctx, insertRow(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.WaitTotal <= 0 || len(res.Waits) == 0 {
			t.Fatalf("insert %d: Waits=%+v WaitTotal=%v, want a nonzero breakdown", i, res.Waits, res.WaitTotal)
		}
		var sum time.Duration
		for _, st := range res.Waits {
			sum += time.Duration(st.TotalNS)
			if st.Class == "commit.harden" && hardened == nil {
				hardened = res
			}
		}
		if sum != res.WaitTotal {
			t.Fatalf("insert %d: breakdown sums to %v but WaitTotal=%v", i, sum, res.WaitTotal)
		}
	}
	// On a 2.8ms-write landing zone every commit blocks in WaitHarden; at
	// minimum one of the eight must attribute it.
	if hardened == nil {
		t.Fatal("no insert attributed commit.harden in its per-request breakdown")
	}
	t.Logf("per-request breakdown: %+v (total %v)", hardened.Waits, hardened.WaitTotal)

	// The same wait must land on the commit subtree of the traced tree:
	// "commit.harden 612µs" on the span that blocked, not a global bucket.
	tree := waitForTrace(t, db, func(n *SpanNode) bool {
		commit := n.FindSpan("engine.commit")
		return commit != nil && commit.WaitTotals()["commit.harden"] > 0
	})
	totals := tree.FindSpan("engine.commit").WaitTotals()
	t.Logf("engine.commit subtree waits: %v", totals)

	// And the deployment-wide sketch saw the class too, attributed to the
	// compute tier.
	rep := db.WaitReport()
	found := false
	for _, st := range rep.Tiers["compute"] {
		if st.Class == "commit.harden" && st.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("compute tier sketch missing commit.harden: %+v", rep.Tiers)
	}
}

func insertRow(i int) string {
	return fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i, i)
}

func hasSpan(n *SpanNode, name string) bool {
	if n == nil {
		return false
	}
	if n.Name == name {
		return true
	}
	for _, c := range n.Children {
		if hasSpan(c, name) {
			return true
		}
	}
	return false
}

// hasPath reports whether a node named child is a descendant of a node
// named parent.
func hasPath(n *SpanNode, parent, child string) bool {
	if n == nil {
		return false
	}
	if n.Name == parent {
		return hasSpan(n, child) && n.Name != child
	}
	for _, c := range n.Children {
		if hasPath(c, parent, child) {
			return true
		}
	}
	return false
}
