// Package metrics provides the measurement primitives used throughout the
// Socrates reproduction: a simulated CPU meter (so experiments can report the
// paper's CPU% columns deterministically), latency histograms with the
// min/median/max/stdev statistics the paper's Table 6 reports, and plain
// counters.
//
// The CPU meter models a node with a fixed number of cores. Code paths charge
// the meter with the simulated CPU cost of the work they represent (for
// example, an XIO REST call charges more CPU than a DirectDrive call, which
// is the root cause of the paper's Table 7 result). Utilization is the
// charged busy time divided by wall-clock time times core count.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CPUMeter accounts simulated CPU time for a node with a fixed core count.
// It is safe for concurrent use.
type CPUMeter struct {
	cores   int
	busyNS  atomic.Int64
	started atomic.Int64 // wall-clock start, unix nanos
}

// NewCPUMeter returns a meter for a node with the given number of cores.
func NewCPUMeter(cores int) *CPUMeter {
	if cores <= 0 {
		cores = 1
	}
	m := &CPUMeter{cores: cores}
	m.started.Store(time.Now().UnixNano())
	return m
}

// Cores reports the simulated core count.
func (m *CPUMeter) Cores() int { return m.cores }

// Charge adds d of simulated CPU busy time.
func (m *CPUMeter) Charge(d time.Duration) {
	if d > 0 {
		m.busyNS.Add(int64(d))
	}
}

// Busy reports the total charged busy time.
func (m *CPUMeter) Busy() time.Duration { return time.Duration(m.busyNS.Load()) }

// Reset zeroes the busy time and restarts the wall clock.
func (m *CPUMeter) Reset() {
	m.busyNS.Store(0)
	m.started.Store(time.Now().UnixNano())
}

// Utilization reports simulated CPU utilization in percent since the last
// Reset, clamped to [0, 100]. A node that charged 1 core-second of work over
// a 1 s window on a 4-core meter reports 25%.
func (m *CPUMeter) Utilization() float64 {
	wall := time.Since(time.Unix(0, m.started.Load()))
	if wall <= 0 {
		return 0
	}
	u := 100 * float64(m.busyNS.Load()) / (float64(wall) * float64(m.cores))
	if u < 0 {
		return 0
	}
	if u > 100 {
		return 100
	}
	return u
}

// UtilizationOver reports utilization assuming the given wall-clock window
// instead of the meter's own clock. Useful when the caller controls the
// measurement window precisely.
func (m *CPUMeter) UtilizationOver(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	u := 100 * float64(m.busyNS.Load()) / (float64(wall) * float64(m.cores))
	if u > 100 {
		u = 100
	}
	return u
}

// reservoirCap bounds how many raw samples a Histogram retains. Below the
// cap every sample is kept and order statistics are exact. At or above the
// cap, new samples displace stored ones via Vitter's Algorithm R, so the
// retained set stays a uniform random sample of everything observed and
// quantiles remain statistically faithful while memory stays bounded — the
// observability plane keeps histograms alive for the process lifetime, so
// "keep everything" is no longer an option.
const reservoirCap = 1 << 16

// Histogram collects duration samples and reports order statistics.
//
// Count, Min, Max, Mean, and Stdev are always exact: they are maintained as
// running aggregates over every observation. Median and Quantile are exact
// until reservoirCap samples have been observed, after which they are
// computed over a uniform reservoir of reservoirCap samples (Algorithm R).
// Experiment windows are far shorter than the cap, so the paper's tables are
// unaffected; only long-lived always-on histograms ever sample.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool

	// Exact running aggregates over all observations (not just the
	// reservoir).
	total      int64
	sum, sumSq float64
	min, max   time.Duration

	// rng drives reservoir replacement; lazily seeded so zero-value and
	// NewHistogram histograms both work.
	rng *rand.Rand
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.total++
	v := float64(d)
	h.sum += v
	h.sumSq += v * v
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if h.total == 1 || d > h.max {
		h.max = d
	}
	if len(h.samples) < reservoirCap {
		h.samples = append(h.samples, d)
		h.sorted = false
	} else {
		// Algorithm R: the i-th observation (1-based) replaces a random
		// reservoir slot with probability cap/i, keeping the reservoir a
		// uniform sample of all i observations.
		if h.rng == nil {
			h.rng = rand.New(rand.NewSource(0x9e3779b9))
		}
		if j := h.rng.Int63n(h.total); j < reservoirCap {
			h.samples[j] = d
			h.sorted = false
		}
	}
	h.mu.Unlock()
}

// Count reports the number of samples observed (not the retained reservoir
// size, which is capped).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.total)
}

// Reset discards all samples and running aggregates.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.total = 0
	h.sum, h.sumSq = 0, 0
	h.min, h.max = 0, 0
	h.mu.Unlock()
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Min reports the smallest sample ever observed, or 0 if empty. Exact even
// when the reservoir has sampled.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest sample ever observed, or 0 if empty. Exact even
// when the reservoir has sampled.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Median reports the middle sample (lower median for even counts).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// Quantile reports the q-th quantile (0 <= q <= 1) by nearest-rank over the
// retained samples — exact below reservoirCap observations, estimated from
// the uniform reservoir above it. The extremes (q<=0, q>=1) are always
// exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	h.sortLocked()
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// meanLocked reports the exact running mean; caller holds h.mu.
func (h *Histogram) meanLocked() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// stdevLocked reports the exact population standard deviation from the
// running moments; caller holds h.mu.
func (h *Histogram) stdevLocked() time.Duration {
	if h.total < 2 {
		return 0
	}
	mean := h.sum / float64(h.total)
	variance := h.sumSq/float64(h.total) - mean*mean
	if variance < 0 { // float cancellation guard
		variance = 0
	}
	return time.Duration(math.Sqrt(variance))
}

// Mean reports the arithmetic mean over all observations, or 0 if empty.
// Exact even when the reservoir has sampled.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meanLocked()
}

// Stdev reports the population standard deviation over all observations, or
// 0 if fewer than two samples were observed. Exact even when the reservoir
// has sampled.
func (h *Histogram) Stdev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stdevLocked()
}

// Summary holds the statistics the paper's latency tables report.
type Summary struct {
	Count  int
	Min    time.Duration
	Median time.Duration
	Mean   time.Duration
	Max    time.Duration
	Stdev  time.Duration
}

// Summarize reports all statistics at once. Count, Min, Max, Mean, and
// Stdev come from the exact running aggregates; Median comes from the
// retained samples (exact below reservoirCap).
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return Summary{}
	}
	h.sortLocked()
	return Summary{
		Count:  int(h.total),
		Min:    h.min,
		Median: h.samples[n/2],
		Mean:   h.meanLocked(),
		Max:    h.max,
		Stdev:  h.stdevLocked(),
	}
}

// String formats the summary in microseconds, mirroring the paper's Table 6.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%dus median=%dus max=%dus stdev=%dus",
		s.Count, s.Min.Microseconds(), s.Median.Microseconds(),
		s.Max.Microseconds(), s.Stdev.Microseconds())
}

// Counter is a concurrency-safe monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reports the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Rate divides the counter by a wall-clock window, yielding events/second.
func (c *Counter) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.v.Load()) / window.Seconds()
}

// Gauge is a concurrency-safe instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }
