// Package metrics provides the measurement primitives used throughout the
// Socrates reproduction: a simulated CPU meter (so experiments can report the
// paper's CPU% columns deterministically), latency histograms with the
// min/median/max/stdev statistics the paper's Table 6 reports, and plain
// counters.
//
// The CPU meter models a node with a fixed number of cores. Code paths charge
// the meter with the simulated CPU cost of the work they represent (for
// example, an XIO REST call charges more CPU than a DirectDrive call, which
// is the root cause of the paper's Table 7 result). Utilization is the
// charged busy time divided by wall-clock time times core count.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CPUMeter accounts simulated CPU time for a node with a fixed core count.
// It is safe for concurrent use.
type CPUMeter struct {
	cores   int
	busyNS  atomic.Int64
	started atomic.Int64 // wall-clock start, unix nanos
}

// NewCPUMeter returns a meter for a node with the given number of cores.
func NewCPUMeter(cores int) *CPUMeter {
	if cores <= 0 {
		cores = 1
	}
	m := &CPUMeter{cores: cores}
	m.started.Store(time.Now().UnixNano())
	return m
}

// Cores reports the simulated core count.
func (m *CPUMeter) Cores() int { return m.cores }

// Charge adds d of simulated CPU busy time.
func (m *CPUMeter) Charge(d time.Duration) {
	if d > 0 {
		m.busyNS.Add(int64(d))
	}
}

// Busy reports the total charged busy time.
func (m *CPUMeter) Busy() time.Duration { return time.Duration(m.busyNS.Load()) }

// Reset zeroes the busy time and restarts the wall clock.
func (m *CPUMeter) Reset() {
	m.busyNS.Store(0)
	m.started.Store(time.Now().UnixNano())
}

// Utilization reports simulated CPU utilization in percent since the last
// Reset, clamped to [0, 100]. A node that charged 1 core-second of work over
// a 1 s window on a 4-core meter reports 25%.
func (m *CPUMeter) Utilization() float64 {
	wall := time.Since(time.Unix(0, m.started.Load()))
	if wall <= 0 {
		return 0
	}
	u := 100 * float64(m.busyNS.Load()) / (float64(wall) * float64(m.cores))
	if u < 0 {
		return 0
	}
	if u > 100 {
		return 100
	}
	return u
}

// UtilizationOver reports utilization assuming the given wall-clock window
// instead of the meter's own clock. Useful when the caller controls the
// measurement window precisely.
func (m *CPUMeter) UtilizationOver(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	u := 100 * float64(m.busyNS.Load()) / (float64(wall) * float64(m.cores))
	if u > 100 {
		u = 100
	}
	return u
}

// Histogram collects duration samples and reports order statistics. It keeps
// every sample; experiment windows are short enough that this is cheap, and
// it keeps Median exact, matching how the paper reports latency.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Min reports the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max reports the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Median reports the middle sample (lower median for even counts).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// Quantile reports the q-th quantile (0 <= q <= 1) by nearest-rank.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Mean reports the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	return time.Duration(sum / float64(len(h.samples)))
}

// Stdev reports the population standard deviation, or 0 if fewer than two
// samples were observed.
func (h *Histogram) Stdev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	mean := sum / float64(n)
	var sq float64
	for _, s := range h.samples {
		d := float64(s) - mean
		sq += d * d
	}
	return time.Duration(math.Sqrt(sq / float64(n)))
}

// Summary holds the statistics the paper's latency tables report.
type Summary struct {
	Count  int
	Min    time.Duration
	Median time.Duration
	Mean   time.Duration
	Max    time.Duration
	Stdev  time.Duration
}

// Summarize computes all statistics in one pass over the sorted samples.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return Summary{}
	}
	h.sortLocked()
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	mean := sum / float64(n)
	var sq float64
	for _, s := range h.samples {
		d := float64(s) - mean
		sq += d * d
	}
	return Summary{
		Count:  n,
		Min:    h.samples[0],
		Median: h.samples[n/2],
		Mean:   time.Duration(mean),
		Max:    h.samples[n-1],
		Stdev:  time.Duration(math.Sqrt(sq / float64(n))),
	}
}

// String formats the summary in microseconds, mirroring the paper's Table 6.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%dus median=%dus max=%dus stdev=%dus",
		s.Count, s.Min.Microseconds(), s.Median.Microseconds(),
		s.Max.Microseconds(), s.Stdev.Microseconds())
}

// Counter is a concurrency-safe monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reports the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Rate divides the counter by a wall-clock window, yielding events/second.
func (c *Counter) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.v.Load()) / window.Seconds()
}

// Gauge is a concurrency-safe instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }
