package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCPUMeterChargeAndBusy(t *testing.T) {
	m := NewCPUMeter(4)
	if m.Cores() != 4 {
		t.Fatalf("cores = %d, want 4", m.Cores())
	}
	m.Charge(10 * time.Millisecond)
	m.Charge(5 * time.Millisecond)
	if got := m.Busy(); got != 15*time.Millisecond {
		t.Fatalf("busy = %v, want 15ms", got)
	}
}

func TestCPUMeterIgnoresNegativeCharge(t *testing.T) {
	m := NewCPUMeter(1)
	m.Charge(-time.Second)
	if m.Busy() != 0 {
		t.Fatalf("busy = %v, want 0", m.Busy())
	}
}

func TestCPUMeterUtilizationOver(t *testing.T) {
	m := NewCPUMeter(2)
	m.Charge(time.Second) // 1 core-second over a 1s window on 2 cores = 50%
	got := m.UtilizationOver(time.Second)
	if got < 49.9 || got > 50.1 {
		t.Fatalf("utilization = %v, want 50", got)
	}
}

func TestCPUMeterUtilizationClamped(t *testing.T) {
	m := NewCPUMeter(1)
	m.Charge(time.Hour)
	if got := m.UtilizationOver(time.Second); got != 100 {
		t.Fatalf("utilization = %v, want clamped to 100", got)
	}
	if got := m.UtilizationOver(0); got != 0 {
		t.Fatalf("utilization over zero window = %v, want 0", got)
	}
}

func TestCPUMeterReset(t *testing.T) {
	m := NewCPUMeter(1)
	m.Charge(time.Second)
	m.Reset()
	if m.Busy() != 0 {
		t.Fatalf("busy after reset = %v, want 0", m.Busy())
	}
}

func TestCPUMeterZeroCoresDefaultsToOne(t *testing.T) {
	m := NewCPUMeter(0)
	if m.Cores() != 1 {
		t.Fatalf("cores = %d, want 1", m.Cores())
	}
}

func TestCPUMeterConcurrentCharge(t *testing.T) {
	m := NewCPUMeter(8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Charge(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Busy(); got != 16*1000*time.Microsecond {
		t.Fatalf("busy = %v, want 16ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Median() != 0 ||
		h.Mean() != 0 || h.Stdev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Summarize()
	if s.Count != 0 {
		t.Fatalf("summary count = %d, want 0", s.Count)
	}
}

func TestHistogramOrderStatistics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []time.Duration{5, 1, 4, 2, 3} {
		h.Observe(v * time.Millisecond)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("min = %v, want 1ms", got)
	}
	if got := h.Max(); got != 5*time.Millisecond {
		t.Errorf("max = %v, want 5ms", got)
	}
	if got := h.Median(); got != 3*time.Millisecond {
		t.Errorf("median = %v, want 3ms", got)
	}
	if got := h.Mean(); got != 3*time.Millisecond {
		t.Errorf("mean = %v, want 3ms", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i))
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := h.Quantile(0.99); got < 95 || got > 100 {
		t.Errorf("q99 = %v, want near 100", got)
	}
}

func TestHistogramStdev(t *testing.T) {
	h := NewHistogram()
	// Samples 2 and 4: mean 3, population stdev 1.
	h.Observe(2)
	h.Observe(4)
	if got := h.Stdev(); got != 1 {
		t.Fatalf("stdev = %v, want 1", got)
	}
}

func TestHistogramStdevSingleSampleIsZero(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	if got := h.Stdev(); got != 0 {
		t.Fatalf("stdev of one sample = %v, want 0", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 {
		t.Fatalf("count after reset = %d, want 0", h.Count())
	}
}

func TestHistogramSummarizeMatchesIndividualStats(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 257; i++ {
		h.Observe(time.Duration(r.Intn(1_000_000)))
	}
	s := h.Summarize()
	if s.Min != h.Min() || s.Max != h.Max() || s.Median != h.Median() ||
		s.Mean != h.Mean() || s.Stdev != h.Stdev() || s.Count != h.Count() {
		t.Fatalf("summary %+v disagrees with individual statistics", s)
	}
}

func TestHistogramSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Observe(1500 * time.Microsecond)
	got := h.Summarize().String()
	want := "n=1 min=1500us median=1500us max=1500us stdev=0us"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// Property: min <= median <= max and min <= mean <= max for any sample set.
func TestHistogramOrderingProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		s := h.Summarize()
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(n*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}

func TestHistogramReservoirBoundsMemory(t *testing.T) {
	h := NewHistogram()
	const n = 3 * reservoirCap
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i))
	}
	if got := len(h.samples); got > reservoirCap {
		t.Fatalf("retained %d samples, want <= %d", got, reservoirCap)
	}
	if got := h.Count(); got != n {
		t.Fatalf("count = %d, want %d (true observation count)", got, n)
	}
}

func TestHistogramReservoirExactAggregates(t *testing.T) {
	h := NewHistogram()
	const n = 2*reservoirCap + 123
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i))
	}
	// Min/Max/Mean are exact regardless of sampling.
	if got := h.Min(); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := h.Max(); got != n {
		t.Errorf("max = %v, want %d", got, n)
	}
	wantMean := time.Duration((n + 1) / 2)
	if got := h.Mean(); got < wantMean-1 || got > wantMean+1 {
		t.Errorf("mean = %v, want ~%v", got, wantMean)
	}
	s := h.Summarize()
	if s.Count != n || s.Min != h.Min() || s.Max != h.Max() ||
		s.Mean != h.Mean() || s.Stdev != h.Stdev() || s.Median != h.Median() {
		t.Errorf("summary %+v disagrees with individual statistics", s)
	}
}

// TestHistogramExactMaxConcurrent pins the exact-aggregate guarantee under
// contention *past the reservoir cap*: with 8 writers racing Algorithm R
// replacement, Count and Max must still be exact — the true maximum may have
// been displaced from the reservoir, but it must never drift out of the
// running aggregates, and Quantile(1) must report it verbatim (never a
// reservoir-sampled stand-in).
func TestHistogramExactMaxConcurrent(t *testing.T) {
	h := NewHistogram()
	const (
		writers = 8
		each    = reservoirCap/4 + 1037 // 8 writers → 2x the cap, sampling engaged
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				d := time.Duration(j%1000 + 1)
				if w == 3 && j == each/2 {
					d = time.Hour // the one true max, buried mid-stream
				}
				h.Observe(d)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), writers*each; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	if got := h.Max(); got != time.Hour {
		t.Errorf("max = %v, want %v (exact running max, not a reservoir survivor)", got, time.Hour)
	}
	if got := h.Quantile(1); got != time.Hour {
		t.Errorf("Quantile(1) = %v, want %v (must be the exact max, never a sampled quantile)", got, time.Hour)
	}
	if got := h.Summarize().Max; got != time.Hour {
		t.Errorf("Summarize().Max = %v, want %v", got, time.Hour)
	}
}

func TestHistogramReservoirQuantilesStayFaithful(t *testing.T) {
	h := NewHistogram()
	const n = 4 * reservoirCap
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i))
	}
	// With a 64k uniform reservoir the standard error on a quantile's rank
	// is ~0.2%; 3% tolerance leaves a wide margin for the fixed seed.
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, n / 2}, {0.9, 9 * n / 10}, {0.99, 99 * n / 100}} {
		got := h.Quantile(tc.q)
		tol := time.Duration(n * 3 / 100)
		if got < tc.want-tol || got > tc.want+tol {
			t.Errorf("q%.2f = %v, want %v +/- %v", tc.q, got, tc.want, tol)
		}
	}
	// Extremes remain exact.
	if h.Quantile(0) != 1 || h.Quantile(1) != n {
		t.Errorf("extreme quantiles (%v, %v) not exact", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramResetClearsAggregates(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < reservoirCap+10; i++ {
		h.Observe(time.Hour)
	}
	h.Reset()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Stdev() != 0 {
		t.Fatal("reset histogram should report zeros")
	}
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 || h.Stdev() != 1 || h.Min() != 2 || h.Max() != 4 {
		t.Fatalf("post-reset stats wrong: mean=%v stdev=%v min=%v max=%v",
			h.Mean(), h.Stdev(), h.Min(), h.Max())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Fatalf("counter = %d, want 10", c.Load())
	}
	if got := c.Rate(2 * time.Second); got != 5 {
		t.Fatalf("rate = %v, want 5", got)
	}
	if got := c.Rate(0); got != 0 {
		t.Fatalf("rate over zero window = %v, want 0", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatalf("counter after reset = %d, want 0", c.Load())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}
