// Package recovery implements the log-replay half of the ADR-style recovery
// story (§3.2): because uncommitted changes never reach data pages
// (commit-time apply), restart recovery is analysis + redo only — there is
// no undo phase, and the replay cost is bounded by the log range replayed,
// never by the oldest active transaction or the database size.
//
// The Replayer is the single redo cursor used by every offline consumer of
// the log: point-in-time restore (snapshot + log range → consistent image)
// and scratch replicas in tests. Online consumers (page servers,
// secondaries) use the same btree.Apply redo under their own policies.
package recovery

import (
	"context"
	"errors"
	"fmt"

	"socrates/internal/btree"
	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/wal"
)

// Replayer applies a log stream to a page file in LSN order, materializing
// missing pages from their image records and tracking the visibility
// watermark (highest replayed commit timestamp).
type Replayer struct {
	pages   fcb.PageFile
	applied page.LSN
	visible uint64
	records int64
}

// NewReplayer builds a replayer over the page file. Pages already present
// are respected: redo is idempotent, so overlapping ranges are safe.
func NewReplayer(pages fcb.PageFile) *Replayer {
	return &Replayer{pages: pages}
}

// Applied reports the LSN after the last applied record.
func (r *Replayer) Applied() page.LSN { return r.applied }

// Visible reports the highest commit timestamp replayed — the snapshot a
// restored engine should publish.
func (r *Replayer) Visible() uint64 { return r.visible }

// Records reports how many records were applied (replay cost accounting).
func (r *Replayer) Records() int64 { return r.records }

// ApplyRecord applies one record. Records at or beyond stopLSN (nonzero)
// are skipped — the point-in-time cut.
func (r *Replayer) ApplyRecord(rec *wal.Record, stopLSN page.LSN) error {
	if stopLSN != 0 && rec.LSN.AtLeast(stopLSN) {
		return nil
	}
	switch {
	case rec.Kind == wal.KindTxnCommit:
		if ts := rec.CommitTS(); ts > r.visible {
			r.visible = ts
		}
	case rec.IsPageOp():
		pg, err := r.pages.Read(rec.Page)
		if errors.Is(err, fcb.ErrNotFound) {
			pg = page.New(rec.Page, rec.PageType)
			if rec.Kind != wal.KindPageImage {
				// Replaying a partial range can start at a cell op for a
				// page whose image lies before the range; materialize an
				// empty node to redo onto.
				pg.Data = btree.EmptyNodePayload()
			}
		} else if err != nil {
			return err
		}
		applied, err := btree.Apply(pg, rec)
		if err != nil {
			return fmt.Errorf("recovery: redo at LSN %d: %w", rec.LSN, err)
		}
		if applied {
			r.records++
			if err := r.pages.Write(pg); err != nil {
				return err
			}
		}
	}
	if rec.LSN.AtLeast(r.applied) {
		r.applied = rec.LSN.Next()
	}
	return nil
}

// ApplyBlocks decodes a concatenation of encoded blocks (as returned by an
// XLOG pull) and applies every record below stopLSN.
func (r *Replayer) ApplyBlocks(payload []byte, stopLSN page.LSN) error {
	for len(payload) > 0 {
		b, n, err := wal.DecodeBlock(payload)
		if err != nil {
			return fmt.Errorf("recovery: decoding block: %w", err)
		}
		payload = payload[n:]
		for _, rec := range b.Records {
			if err := r.ApplyRecord(rec, stopLSN); err != nil {
				return err
			}
		}
	}
	return nil
}

// Puller abstracts a log source serving [from, …) as encoded blocks; the
// XLOG service's Pull method satisfies it.
type Puller interface {
	Pull(ctx context.Context, from page.LSN, partition int32, maxBytes int) ([]byte, page.LSN, error)
}

// ReplayRange pulls and applies the log range [from, stopLSN) (stopLSN 0 =
// everything available) from the source. Returns the LSN reached. The
// context bounds the pulls and carries the restore workflow's trace.
func (r *Replayer) ReplayRange(ctx context.Context, src Puller, from, stopLSN page.LSN) (page.LSN, error) {
	cursor := from
	for stopLSN == 0 || cursor.Before(stopLSN) {
		if err := ctx.Err(); err != nil {
			return cursor, err
		}
		payload, next, err := src.Pull(ctx, cursor, -1, 1<<20)
		if err != nil {
			return cursor, err
		}
		if next == cursor {
			break // caught up with the available log
		}
		if err := r.ApplyBlocks(payload, stopLSN); err != nil {
			return cursor, err
		}
		cursor = next
	}
	return cursor, nil
}
