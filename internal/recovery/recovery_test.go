package recovery

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"socrates/internal/engine"
	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/wal"
)

// buildHistory produces a database and its full log via an in-memory engine.
func buildHistory(t *testing.T, rows int) (*fcb.MemFile, engine.MemPipeline, *engine.Engine) {
	t.Helper()
	pages := fcb.NewMemFile()
	pipe := engine.NewMemPipeline()
	e, err := engine.Create(engine.Config{Pages: pages, Log: pipe})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tx := e.Begin()
		if err := tx.Put("t", []byte(fmt.Sprintf("k%04d", i)),
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return pages, pipe, e
}

// memPuller serves a MemLog as block pulls.
type memPuller struct {
	blocks []*wal.Block
}

func newMemPuller(pipe engine.MemPipeline) *memPuller {
	// Cut one block per record run delimited at commit boundaries.
	bld := wal.NewBuilder(1, page.Partitioning{})
	var blocks []*wal.Block
	for _, rec := range pipe.Records() {
		// Re-append to preserve LSNs: the builder assigns the same dense
		// sequence the MemLog did.
		bld.Append(&wal.Record{Txn: rec.Txn, Kind: rec.Kind, Page: rec.Page,
			PageType: rec.PageType, Key: rec.Key, Value: rec.Value})
		if rec.Kind == wal.KindTxnCommit || rec.Kind == wal.KindCheckpoint {
			blocks = append(blocks, bld.Flush())
		}
	}
	if b := bld.Flush(); b != nil {
		blocks = append(blocks, b)
	}
	return &memPuller{blocks: blocks}
}

func (p *memPuller) Pull(_ context.Context, from page.LSN, _ int32, maxBytes int) ([]byte, page.LSN, error) {
	var out []byte
	next := from
	for _, b := range p.blocks {
		if b.Start != next {
			continue
		}
		out = append(out, b.Encode()...)
		next = b.End
		if len(out) >= maxBytes {
			break
		}
	}
	return out, next, nil
}

func TestFullReplayMatchesSource(t *testing.T) {
	srcPages, pipe, src := buildHistory(t, 200)
	_ = srcPages

	replayPages := fcb.NewMemFile()
	r := NewReplayer(replayPages)
	if _, err := r.ReplayRange(context.Background(), newMemPuller(pipe), 1, 0); err != nil {
		t.Fatal(err)
	}
	if r.Visible() != src.Clock().Visible() {
		t.Fatalf("visible = %d, want %d", r.Visible(), src.Clock().Visible())
	}
	if r.Records() == 0 {
		t.Fatal("nothing replayed")
	}

	eng, err := engine.Open(engine.Config{Pages: replayPages, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Clock().Publish(r.Visible())
	count := 0
	if err := eng.BeginRO().Scan("t", nil, nil, func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("replayed rows = %d, want 200", count)
	}
}

func TestStopLSNCutsHistory(t *testing.T) {
	_, pipe, _ := buildHistory(t, 50)
	puller := newMemPuller(pipe)

	// Find the LSN after the 10th commit.
	commits := 0
	var cut page.LSN
	for _, rec := range pipe.Records() {
		if rec.Kind == wal.KindTxnCommit {
			commits++
			if commits == 11 { // bootstrap + DDL + 9 row commits
				cut = rec.LSN + 1
				break
			}
		}
	}
	if cut == 0 {
		t.Fatal("cut point not found")
	}

	pages := fcb.NewMemFile()
	r := NewReplayer(pages)
	if _, err := r.ReplayRange(context.Background(), puller, 1, cut); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Open(engine.Config{Pages: pages, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Clock().Publish(r.Visible())
	count := 0
	_ = eng.BeginRO().Scan("t", nil, nil, func(k, v []byte) bool {
		count++
		return true
	})
	if count != 9 {
		t.Fatalf("rows at cut = %d, want 9", count)
	}
}

func TestReplayIsIdempotent(t *testing.T) {
	_, pipe, _ := buildHistory(t, 40)
	puller := newMemPuller(pipe)
	pages := fcb.NewMemFile()
	r := NewReplayer(pages)
	if _, err := r.ReplayRange(context.Background(), puller, 1, 0); err != nil {
		t.Fatal(err)
	}
	first := r.Records()
	// Replaying the same range again applies nothing (LSN guard).
	r2 := NewReplayer(pages)
	if _, err := r2.ReplayRange(context.Background(), puller, 1, 0); err != nil {
		t.Fatal(err)
	}
	if r2.Records() != 0 {
		t.Fatalf("second replay applied %d records (first applied %d)", r2.Records(), first)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	r := NewReplayer(fcb.NewMemFile())
	if err := r.ApplyBlocks([]byte("not a block"), 0); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestApplyRecordErrorsSurface(t *testing.T) {
	pages := fcb.NewMemFile()
	r := NewReplayer(pages)
	// A cell-put against a page that never got an image record: the page
	// materializes empty and the put applies — no error. But a corrupt
	// payload must surface.
	rec := &wal.Record{LSN: 5, Kind: wal.KindCellPut, Page: 9,
		PageType: page.TypeLeaf, Key: []byte("k"), Value: []byte("v")}
	if err := r.ApplyRecord(rec, 0); err != nil {
		t.Fatalf("fresh-page cell put: %v", err)
	}
	// Now corrupt the page and watch redo fail loudly.
	pg, err := pages.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	pg.Data = []byte{0xFF} // not a node encoding
	_ = pages.Write(pg)
	rec2 := &wal.Record{LSN: 6, Kind: wal.KindCellPut, Page: 9,
		PageType: page.TypeLeaf, Key: []byte("k2")}
	if err := r.ApplyRecord(rec2, 0); err == nil {
		t.Fatal("corrupt page redo succeeded")
	}
}

func TestPullerErrorPropagates(t *testing.T) {
	r := NewReplayer(fcb.NewMemFile())
	boom := errors.New("source gone")
	_, err := r.ReplayRange(context.Background(), errPuller{boom}, 1, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type errPuller struct{ err error }

func (p errPuller) Pull(context.Context, page.LSN, int32, int) ([]byte, page.LSN, error) {
	return nil, 0, p.err
}
