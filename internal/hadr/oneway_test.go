package hadr

import (
	"fmt"
	"testing"
	"time"

	"socrates/internal/engine"
	"socrates/internal/page"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
)

// testBlock builds a block of noop records covering [start, end).
func testBlock(start, end page.LSN) *wal.Block {
	b := &wal.Block{Start: start, End: end}
	for lsn := start; lsn.Before(end); lsn = lsn.Next() {
		b.Records = append(b.Records, &wal.Record{LSN: lsn, Kind: wal.KindNoop})
	}
	return b
}

// The one-way ship path is lossy by contract: a dropped FrameMuxOneway (a
// conn teardown mid-flight, injected loss) or a dropped cumulative ack
// must cost latency, never a commit. Under heavy seeded loss and
// reordering, every commit must still reach the flexible quorum via the
// round-trip retransmit path, and the quorum invariant must hold: at
// harden time, at least Quorum-1 secondaries cumulatively cover the
// watermark.
func TestOnewayShipSurvivesLossAndReorder(t *testing.T) {
	cfg := fastConfig("h-loss")
	c := newFast(t, cfg)
	// Inject loss only after bootstrap so the fixture setup stays fast.
	c.Net.SetSeed(7)
	c.Net.SetLoss(0.4)
	c.Net.SetReorderWindow(200 * time.Microsecond)

	e := c.Primary().Engine()
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	const commits = 40
	for i := 0; i < commits; i++ {
		mustExec(t, e, func(tx *engine.Tx) error {
			return tx.Put("t", []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
		})
	}
	end := c.Writer().HardenedEnd()

	// Every commit acked by mustExec is below the hardened watermark by
	// definition; the flexible-quorum invariant is that the watermark is
	// cumulatively covered by at least Quorum-1 secondaries.
	covered := 0
	for _, sec := range c.Secondaries() {
		if !sec.HardenedTo().Before(end) {
			covered++
		}
	}
	if need := c.cfg.Quorum - 1; covered < need {
		t.Fatalf("hardened end %d covered by %d secondaries, need %d", end, covered, need)
	}

	// And the data is all there.
	c.Net.SetLoss(0)
	if got := countRows(t, e, "t"); got != commits {
		t.Fatalf("rows = %d, want %d", got, commits)
	}
}

// A secondary that missed blocks while dark (its gap was quorum-hardened
// by the others) must re-enter the flexible quorum after a promotion: the
// new primary fast-forwards its cumulative ack floor to the cluster-durable
// prefix — the straggler-reconciliation step. Without it the post-failover
// cluster (2 secondaries, quorum still 3) could never commit again,
// because the straggler's acks would wedge behind a gap the new primary no
// longer retains.
func TestFailoverReconcilesStragglerAcks(t *testing.T) {
	c := newFast(t, fastConfig("h-straggler"))
	seedRows(t, c, "t", 50)

	// Darken one secondary: it misses the next blocks entirely.
	straggler := c.Secondaries()[2]
	c.Net.Unserve(straggler.Name())
	seedRows(t, c, "t2", 50)
	preGap := straggler.HardenedTo()
	if !preGap.Before(c.Writer().HardenedEnd()) {
		t.Fatal("straggler did not fall behind while dark")
	}

	// Heal it, then fail over. The straggler stays a secondary (promotion
	// picks the most caught-up node) and must be reconciled.
	c.Net.Serve(straggler.Name(), straggler.handler())
	if _, _, err := c.Failover(); err != nil {
		t.Fatal(err)
	}
	if floor := straggler.HardenedTo(); floor.Before(c.Writer().HardenedEnd()) {
		t.Fatalf("straggler ack floor %d below cluster-durable prefix %d after promotion",
			floor, c.Writer().HardenedEnd())
	}

	// Quorum 3 over 3 nodes: both remaining secondaries must ack every
	// commit, so this only succeeds if the straggler's acks count again.
	seedRows(t, c, "t3", 50)
	if got := countRows(t, c.Primary().Engine(), "t3"); got != 50 {
		t.Fatalf("rows = %d", got)
	}
}

// Duplicate feed deliveries (retransmits racing the original) must be
// idempotent: one durable append per block, and the cumulative watermark
// unaffected by re-delivery.
func TestHardenFeedDedupesRetransmits(t *testing.T) {
	n, err := newNode("dedupe-0", simdisk.Instant, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.stop()
	b1 := testBlock(1, 3)
	b2 := testBlock(3, 5)

	if cum, err := n.hardenFeed(b1); err != nil || cum != 3 {
		t.Fatalf("first feed: cum=%d err=%v", cum, err)
	}
	sizeAfterFirst := n.logDev.Size()
	if cum, err := n.hardenFeed(b1); err != nil || cum != 3 {
		t.Fatalf("duplicate feed: cum=%d err=%v", cum, err)
	}
	if n.logDev.Size() != sizeAfterFirst {
		t.Fatal("duplicate feed re-appended to the local log")
	}

	// Out-of-order future block: hardened, but the cumulative watermark
	// holds at the contiguous prefix until the gap fills.
	b3 := testBlock(5, 7)
	if cum, err := n.hardenFeed(b3); err != nil || cum != 3 {
		t.Fatalf("future feed: cum=%d err=%v", cum, err)
	}
	if cum, err := n.hardenFeed(b2); err != nil || cum != 7 {
		t.Fatalf("gap fill: cum=%d err=%v (watermark must jump over the stashed block)", cum, err)
	}
	if cum, err := n.hardenFeed(b3); err != nil || cum != 7 {
		t.Fatalf("late duplicate of stashed block: cum=%d err=%v", cum, err)
	}
}
