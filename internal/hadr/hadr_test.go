package hadr

import (
	"fmt"
	"testing"
	"time"

	"socrates/internal/engine"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/xstore"
)

func fastConfig(name string) Config {
	return Config{
		Name:           name,
		Net:            rbio.NewInstantNetwork(),
		Store:          xstore.New(xstore.Config{Profile: simdisk.Instant}),
		DiskProfile:    simdisk.Instant,
		LogBackupEvery: 5 * time.Millisecond,
	}
}

func newFast(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustExec(t *testing.T, e *engine.Engine, fn func(tx *engine.Tx) error) {
	t.Helper()
	tx := e.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func seedRows(t *testing.T, c *Cluster, table string, n int) {
	t.Helper()
	e := c.Primary().Engine()
	_ = e.CreateTable(table)
	const batch = 50
	for base := 0; base < n; base += batch {
		mustExec(t, e, func(tx *engine.Tx) error {
			for i := base; i < base+batch && i < n; i++ {
				if err := tx.Put(table, []byte(fmt.Sprintf("k%06d", i)),
					[]byte(fmt.Sprintf("v%d", i))); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func countRows(t *testing.T, e *engine.Engine, table string) int {
	t.Helper()
	count := 0
	if err := e.BeginRO().Scan(table, nil, nil, func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return count
}

func TestBootstrapAndCommit(t *testing.T) {
	c := newFast(t, fastConfig("h1"))
	e := c.Primary().Engine()
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("k"), []byte("v"))
	})
	v, found, err := e.BeginRO().Get("t", []byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("read: %q %v %v", v, found, err)
	}
}

func TestSecondariesReplicate(t *testing.T) {
	c := newFast(t, fastConfig("h2"))
	seedRows(t, c, "t", 300)
	end := c.Writer().HardenedEnd()
	for _, sec := range c.Secondaries() {
		if !sec.WaitApplied(end, 5*time.Second) {
			t.Fatalf("%s lagging", sec.Name())
		}
		if got := countRows(t, sec.Engine(), "t"); got != 300 {
			t.Fatalf("%s has %d rows", sec.Name(), got)
		}
	}
}

func TestQuorumToleratesOneSecondaryDown(t *testing.T) {
	c := newFast(t, fastConfig("h3"))
	seedRows(t, c, "t", 50)
	// One secondary vanishes: quorum is 3 of 4, still reachable.
	c.Net.Unserve(c.Secondaries()[0].Name())
	seedRows(t, c, "t2", 50)
	if got := countRows(t, c.Primary().Engine(), "t2"); got != 50 {
		t.Fatalf("rows = %d", got)
	}
}

func TestQuorumLossBlocksCommits(t *testing.T) {
	c := newFast(t, fastConfig("h4"))
	seedRows(t, c, "t", 10)
	// Two secondaries down: 2 of 4 nodes < quorum 3.
	c.Net.Unserve(c.Secondaries()[0].Name())
	c.Net.Unserve(c.Secondaries()[1].Name())
	e := c.Primary().Engine()
	tx := e.Begin()
	if err := tx.Put("t", []byte("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded without quorum")
	}
}

func TestFailoverPromotesSecondary(t *testing.T) {
	c := newFast(t, fastConfig("h5"))
	seedRows(t, c, "t", 200)
	before := c.Primary().Engine().Clock().Visible()

	promoted, elapsed, err := c.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("failover took %v", elapsed)
	}
	if promoted.Engine().Clock().Visible() < before {
		t.Fatal("visibility regressed")
	}
	if got := countRows(t, promoted.Engine(), "t"); got != 200 {
		t.Fatalf("promoted node has %d rows", got)
	}
	// New primary keeps writing with the remaining quorum (3 nodes, need 3).
	seedRows(t, c, "t2", 60)
	if got := countRows(t, promoted.Engine(), "t2"); got != 60 {
		t.Fatalf("post-failover rows = %d", got)
	}
}

func TestSeedNewReplicaIsSizeOfData(t *testing.T) {
	c := newFast(t, fastConfig("h6"))
	seedRows(t, c, "t", 100)
	_, copiedSmall, _, err := c.SeedNewReplica("h6-new1")
	if err != nil {
		t.Fatal(err)
	}
	seedRows(t, c, "t", 2000)
	_, copiedLarge, _, err := c.SeedNewReplica("h6-new2")
	if err != nil {
		t.Fatal(err)
	}
	// The copy cost grows with the database — the O(size-of-data) property
	// Socrates eliminates.
	if copiedLarge < copiedSmall*2 {
		t.Fatalf("seeding cost did not scale: %d then %d bytes", copiedSmall, copiedLarge)
	}
	// And the new replica actually serves reads.
	sec := c.Secondaries()[len(c.Secondaries())-1]
	if !sec.WaitApplied(c.Writer().HardenedEnd(), 5*time.Second) {
		t.Fatal("seeded replica lagging")
	}
	if got := countRows(t, sec.Engine(), "t"); got != 2000 {
		t.Fatalf("seeded replica rows = %d", got)
	}
}

func TestStorageImpactIsFourCopies(t *testing.T) {
	c := newFast(t, fastConfig("h7"))
	seedRows(t, c, "t", 500)
	end := c.Writer().HardenedEnd()
	for _, sec := range c.Secondaries() {
		if !sec.WaitApplied(end, 5*time.Second) {
			t.Fatal("secondary lagging")
		}
	}
	prim := c.Primary().DataBytes()
	total := c.TotalDataBytes()
	if ratio := float64(total) / float64(prim); ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("storage ratio = %.1fx, want ~4x", ratio)
	}
}

func TestLogBackupThrottlesProduction(t *testing.T) {
	cfg := fastConfig("h8")
	// Tiny backup budget + heavily capped backup egress: production must
	// stall on the backup drain.
	cfg.BackupLagBudget = 32 << 10
	cfg.Store = xstore.New(xstore.Config{Profile: simdisk.Instant, IngestMBps: 0.25})
	cfg.LogBackupEvery = time.Millisecond
	c := newFast(t, cfg)

	e := c.Primary().Engine()
	_ = e.CreateTable("t")
	payload := make([]byte, 1024)
	for i := 0; i < 400; i++ {
		mustExec(t, e, func(tx *engine.Tx) error {
			return tx.Put("t", []byte(fmt.Sprintf("k%04d", i%50)), payload)
		})
	}
	_, _, throttles := c.Writer().Stats()
	if throttles == 0 {
		t.Fatal("log production never throttled on backup egress")
	}
}

func TestBackupKeepsUpWithRoomyBudget(t *testing.T) {
	cfg := fastConfig("h9")
	cfg.BackupLagBudget = 64 << 20
	c := newFast(t, cfg)
	seedRows(t, c, "t", 300)
	_, _, throttles := c.Writer().Stats()
	if throttles != 0 {
		t.Fatalf("throttled %d times despite huge budget", throttles)
	}
	// Backup blob actually accumulates bytes.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if size, err := c.Store.Size("h9/logbackup"); err == nil && size > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("log backup never reached XStore")
}

func TestSnapshotIsolationOnSecondary(t *testing.T) {
	c := newFast(t, fastConfig("h10"))
	e := c.Primary().Engine()
	_ = e.CreateTable("t")
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("k"), []byte("v1"))
	})
	sec := c.Secondaries()[0]
	if !sec.WaitApplied(c.Writer().HardenedEnd(), 5*time.Second) {
		t.Fatal("lag")
	}
	reader := sec.Engine().BeginRO()
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("k"), []byte("v2"))
	})
	if !sec.WaitApplied(c.Writer().HardenedEnd(), 5*time.Second) {
		t.Fatal("lag")
	}
	// Old snapshot still sees v1; new snapshot sees v2.
	v, _, err := reader.Get("t", []byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("pinned snapshot: %q %v", v, err)
	}
	v, _, _ = sec.Engine().BeginRO().Get("t", []byte("k"))
	if string(v) != "v2" {
		t.Fatalf("fresh snapshot: %q", v)
	}
}

func TestCommitLatencyRealistic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Real AZ-link latency: commit should land in the paper's ~3 ms range.
	cfg := Config{
		Name:        "lat",
		Store:       xstore.New(xstore.Config{Profile: simdisk.Instant}),
		DiskProfile: simdisk.Instant,
	}
	c := newFast(t, cfg)
	e := c.Primary().Engine()
	_ = e.CreateTable("t")
	// Warm up.
	mustExec(t, e, func(tx *engine.Tx) error { return tx.Put("t", []byte("w"), []byte("x")) })

	var total time.Duration
	const n = 10
	for i := 0; i < n; i++ {
		start := time.Now()
		mustExec(t, e, func(tx *engine.Tx) error {
			return tx.Put("t", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		})
		total += time.Since(start)
	}
	avg := total / n
	if avg < 1*time.Millisecond || avg > 20*time.Millisecond {
		t.Fatalf("HADR commit latency = %v, want a few ms (AZ round trip)", avg)
	}
}
