package hadr

import (
	"sync"
	"time"

	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/simdisk"
)

// bufferedFile is an HADR node's page store: the full database cached in
// memory (the reason "HADR has high performance: every compute node has a
// full, local copy", §2) over a local-SSD shadow written back lazily.
// Durability comes from the replicated log; the disk copy exists for
// restart and for the O(size-of-data) seeding path.
type bufferedFile struct {
	disk *fcb.DiskFile

	mu    sync.Mutex
	mem   map[page.ID]*page.Page
	dirty map[page.ID]struct{}

	done chan struct{}
	wg   sync.WaitGroup
}

func newBufferedFile(dev *simdisk.Device) (*bufferedFile, error) {
	disk, err := fcb.OpenDisk(dev)
	if err != nil {
		return nil, err
	}
	f := &bufferedFile{
		disk:  disk,
		mem:   make(map[page.ID]*page.Page),
		dirty: make(map[page.ID]struct{}),
		done:  make(chan struct{}),
	}
	f.wg.Add(1)
	go f.flushLoop()
	return f, nil
}

// Read serves from memory (the full copy), falling back to disk once.
func (f *bufferedFile) Read(id page.ID) (*page.Page, error) {
	f.mu.Lock()
	if pg, ok := f.mem[id]; ok {
		c := pg.Clone()
		f.mu.Unlock()
		return c, nil
	}
	f.mu.Unlock()
	pg, err := f.disk.Read(id)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.mem[id] = pg.Clone()
	f.mu.Unlock()
	return pg, nil
}

// Write installs the page in memory and schedules the disk write-back.
func (f *bufferedFile) Write(pg *page.Page) error {
	f.mu.Lock()
	f.mem[pg.ID] = pg.Clone()
	f.dirty[pg.ID] = struct{}{}
	f.mu.Unlock()
	return nil
}

func (f *bufferedFile) flushLoop() {
	defer f.wg.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		//socrates:wait-ok write-back cadence tick, not a stall
		select {
		case <-f.done:
			//socrates:ignore-err the final drain is best-effort; durability comes from the replicated log, the disk shadow only speeds restart
			_ = f.flushOnce()
			return
		case <-ticker.C:
			//socrates:ignore-err a failed write-back re-marks the page dirty inside flushOnce; the next tick retries
			_ = f.flushOnce()
		}
	}
}

// flushOnce writes the dirty set through to disk. Pages whose write fails
// are re-marked dirty so the next pass retries them, and the first error is
// returned.
func (f *bufferedFile) flushOnce() error {
	f.mu.Lock()
	batch := make([]*page.Page, 0, len(f.dirty))
	for id := range f.dirty {
		if pg, ok := f.mem[id]; ok {
			batch = append(batch, pg.Clone())
		}
		delete(f.dirty, id)
	}
	f.mu.Unlock()
	var firstErr error
	for _, pg := range batch {
		if err := f.disk.Write(pg); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			f.mu.Lock()
			f.dirty[pg.ID] = struct{}{}
			f.mu.Unlock()
		}
	}
	return firstErr
}

// FlushAll drains the dirty set to disk.
func (f *bufferedFile) FlushAll() error { return f.flushOnce() }

// Range iterates the durable on-disk copy (after draining dirty pages) —
// the O(size-of-data) path used by replica seeding.
func (f *bufferedFile) Range(fn func(*page.Page) bool) {
	//socrates:ignore-err pages that failed the drain stay dirty and reach the replica through log apply instead of the seed copy
	_ = f.flushOnce()
	f.disk.Range(fn)
}

// Len reports the page count of the in-memory copy.
func (f *bufferedFile) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.mem)
}

// close stops the flusher after a final drain.
func (f *bufferedFile) close() {
	select {
	case <-f.done:
		return
	default:
	}
	close(f.done)
	f.wg.Wait()
}

var _ fcb.PageFile = (*bufferedFile)(nil)
