package hadr

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"socrates/internal/engine"
	"socrates/internal/metrics"
	"socrates/internal/netmux"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// Cluster is a running HADR deployment: one primary, N-1 secondaries.
type Cluster struct {
	cfg Config

	Net          *rbio.Network
	Store        *xstore.Store
	PrimaryMeter *metrics.CPUMeter

	mu          sync.Mutex
	primary     *Node
	secondaries []*Node
	writer      *writer
}

// New builds, bootstraps, and starts an HADR deployment.
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	c := &Cluster{cfg: cfg, Net: cfg.Net}
	if c.Net == nil {
		c.Net = rbio.NewNetworkWith(AZLink)
	}
	c.Store = cfg.Store
	if c.Store == nil {
		c.Store = xstore.New(xstore.Config{})
	}
	c.PrimaryMeter = metrics.NewCPUMeter(cfg.PrimaryCores)

	// Primary node plus secondaries, each a full replica.
	prim, err := newNode(cfg.Name+"-0", cfg.DiskProfile, c.PrimaryMeter)
	if err != nil {
		return nil, err
	}
	prim.waits = cfg.Waits
	c.primary = prim
	for i := 1; i < cfg.Replicas; i++ {
		sec, err := newNode(fmt.Sprintf("%s-%d", cfg.Name, i), cfg.DiskProfile, nil)
		if err != nil {
			return nil, err
		}
		sec.waits = cfg.Waits
		sec.startApply()
		c.Net.Serve(sec.name, sec.handler())
		c.secondaries = append(c.secondaries, sec)
	}

	c.writer = newWriter(c, 1)
	for _, sec := range c.secondaries {
		sec.setAckClient(rbio.NewClient(c.Net.Dial(c.writer.ackAddr())))
	}
	eng, err := engine.Create(engine.Config{
		Pages: c.primary.pages,
		Log:   c.writer,
		Meter: c.PrimaryMeter,
	})
	if err != nil {
		return nil, err
	}
	c.primary.engine = eng

	// Secondaries attach read-only engines once the catalog replicates.
	end := c.writer.HardenedEnd()
	for _, sec := range c.secondaries {
		if !sec.WaitApplied(end, 5*time.Second) {
			return nil, fmt.Errorf("hadr: %s never caught up during bootstrap", sec.name)
		}
		if err := sec.openSecondaryEngine(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Primary returns the current primary node.
func (c *Cluster) Primary() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// Secondaries returns the current secondary nodes.
func (c *Cluster) Secondaries() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.secondaries...)
}

// Writer exposes the primary's log pipeline (throughput stats).
func (c *Cluster) Writer() *writer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writer
}

// Close stops every node.
func (c *Cluster) Close() {
	c.mu.Lock()
	w := c.writer
	secs := append([]*Node(nil), c.secondaries...)
	prim := c.primary
	c.mu.Unlock()
	if w != nil {
		w.Close()
	}
	for _, s := range secs {
		s.stop()
	}
	if prim != nil {
		prim.stop()
	}
}

// TotalDataBytes reports the bytes stored across all replicas — the "4x
// copies" storage impact of Table 1.
func (c *Cluster) TotalDataBytes() int64 {
	var total int64
	total += c.Primary().DataBytes()
	for _, s := range c.Secondaries() {
		total += s.DataBytes()
	}
	return total
}

// Failover promotes the most caught-up secondary to primary. Recovery time
// includes draining its apply queue; because each node already has a full
// copy, no pages move — but a *replacement* replica to restore fault
// tolerance costs O(size-of-data) (SeedNewReplica).
func (c *Cluster) Failover() (*Node, time.Duration, error) {
	start := time.Now()
	c.mu.Lock()
	oldWriter := c.writer
	old := c.primary
	if len(c.secondaries) == 0 {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("hadr: no secondary to promote")
	}
	// Most caught-up secondary wins.
	best := c.secondaries[0]
	for _, s := range c.secondaries[1:] {
		if s.AppliedLSN().After(best.AppliedLSN()) {
			best = s
		}
	}
	rest := make([]*Node, 0, len(c.secondaries)-1)
	for _, s := range c.secondaries {
		if s != best {
			rest = append(rest, s)
		}
	}
	c.mu.Unlock()

	oldWriter.Close()
	old.stop()
	hardened := oldWriter.HardenedEnd()

	// The promoted node drains its queue to the hardened end.
	if !best.WaitApplied(hardened, 10*time.Second) {
		return nil, 0, fmt.Errorf("hadr: promoted node stuck at %d, need %d",
			best.AppliedLSN(), hardened)
	}
	c.Net.Unserve(best.name)

	// Construct the writer (it spawns flush/backup loops that reach the
	// fabric) before taking the lock: deadlocklint, and a failover that
	// cannot convoy behind a slow dial.
	w := newWriter(c, hardened)
	c.mu.Lock()
	c.primary = best
	c.secondaries = rest
	c.writer = w
	c.mu.Unlock()

	// Straggler reconciliation at promotion: blocks below the hardened
	// watermark reached quorum cluster-wide, but a secondary outside that
	// quorum may have gaps. Fast-forward its cumulative ack floor so its
	// acks re-enter the flexible quorum instead of wedging behind a gap
	// the new primary no longer retains, and point its ack channel at the
	// new writer's endpoint.
	best.setAckClient(nil)
	for _, s := range rest {
		s.setAckClient(rbio.NewClient(c.Net.Dial(w.ackAddr())))
		s.setAckFloor(hardened)
	}

	visible := uint64(0)
	if best.engine != nil {
		visible = best.engine.Clock().Visible()
	}
	eng, err := engine.Open(engine.Config{
		Pages: best.pages,
		Log:   c.writer,
		Meter: c.PrimaryMeter,
	})
	if err != nil {
		return nil, 0, err
	}
	eng.Clock().Publish(visible)
	best.engine = eng
	return best, time.Since(start), nil
}

// SeedNewReplica adds a secondary by copying the full database from the
// primary — the O(size-of-data) operation Socrates eliminates (§4.1.2).
// It returns the new node, the bytes copied, and the elapsed time.
func (c *Cluster) SeedNewReplica(name string) (*Node, int64, time.Duration, error) {
	start := time.Now()
	prim := c.Primary()
	sec, err := newNode(name, c.cfg.DiskProfile, nil)
	if err != nil {
		return nil, 0, 0, err
	}

	var copied int64
	var copyErr error
	prim.pages.Range(func(pg *page.Page) bool {
		if err := sec.pages.Write(pg); err != nil {
			copyErr = err
			return false
		}
		copied += page.Size
		return true
	})
	if copyErr != nil {
		return nil, 0, 0, copyErr
	}
	// Read the hardened end before taking the node lock: Writer() takes
	// Cluster.mu, and Failover acquires Node.mu while holding Cluster.mu —
	// nesting them here in the opposite order is a lock-order cycle.
	w := c.Writer()
	hardened := w.HardenedEnd()
	sec.mu.Lock()
	sec.applied = hardened
	sec.hardenedTo = hardened // the seed copy covers everything below
	sec.mu.Unlock()
	sec.startApply()
	c.Net.Serve(sec.name, sec.handler())
	sec.setAckClient(rbio.NewClient(c.Net.Dial(w.ackAddr())))
	if err := sec.openSecondaryEngine(); err != nil {
		return nil, 0, 0, err
	}
	if prim.engine != nil {
		sec.engine.Clock().Publish(prim.engine.Clock().Visible())
	}
	c.mu.Lock()
	c.secondaries = append(c.secondaries, sec)
	c.mu.Unlock()
	return sec, copied, time.Since(start), nil
}

// Range exposes the primary page file's Range for seeding (test support).
func (n *Node) Range(fn func(*page.Page) bool) { n.pages.Range(fn) }

// writer is the HADR primary's log pipeline: local log write plus quorum
// log shipping, with backup-lag throttling.
type writer struct {
	c *Cluster

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*wal.Record
	boundary int
	nextLSN  page.LSN
	hardened page.LSN
	err      error
	closed   bool

	// Backup bookkeeping: [backedUp, hardened) is not yet in XStore; its
	// size is capped by BackupLagBudget.
	backedUp    page.LSN
	unbackedLen int64
	blockSizes  map[page.LSN]int64 // start LSN → encoded size (until backup)
	blockOrder  []page.LSN

	// completed tracks out-of-order local harden completions so
	// localDurable stays a prefix (ships are pipelined); the quorum
	// watermark can never pass local durability.
	completed    map[page.LSN]page.LSN
	localDurable page.LSN

	// secAcks holds each secondary's cumulative harden-ack watermark, fed
	// by one-way MsgHardenReport frames on the writer's ack endpoint (or
	// by round-trip ship responses from pre-mux peers). The hardened
	// watermark is the highest LSN covered by local durability plus any
	// Quorum-1 of these — a flexible quorum with no designated ack set.
	secAcks map[string]page.LSN

	// tail retains recently shipped encoded blocks until evicted by count,
	// so a one-way ship frame lost to a conn teardown can be retransmitted
	// round-trip. Bounded: tailMax blocks.
	tail      map[page.LSN]tailBlock
	tailOrder []page.LSN

	// shipPools holds one persistent netmux-pooled client per secondary,
	// so replication reuses warm multiplexed connections instead of
	// dialing a fresh one per shipped block.
	shipMu    sync.Mutex
	shipPools map[string]*rbio.Client

	wg            sync.WaitGroup
	ioWG          sync.WaitGroup
	inflight      chan struct{}
	bytesFlushed  metrics.Counter
	blocksFlushed metrics.Counter
	throttles     metrics.Counter
}

// tailBlock is one retained shipped block, kept for retransmission until
// evicted from the writer's bounded tail.
type tailBlock struct {
	end     page.LSN
	payload []byte
}

// tailMax bounds how many shipped blocks the writer retains for
// retransmission to laggards.
const tailMax = 512

// retransmitAfter is how long a shipped block may sit without quorum
// coverage before the writer re-ships it round-trip to every laggard.
// Comfortably above the cross-AZ round trip (~2.6 ms), so a healthy
// deployment never retransmits.
const retransmitAfter = 4 * time.Millisecond

func newWriter(c *Cluster, startLSN page.LSN) *writer {
	w := &writer{
		c:            c,
		nextLSN:      startLSN,
		hardened:     startLSN,
		backedUp:     startLSN,
		localDurable: startLSN,
		blockSizes:   make(map[page.LSN]int64),
		completed:    make(map[page.LSN]page.LSN),
		secAcks:      make(map[string]page.LSN),
		tail:         make(map[page.LSN]tailBlock),
		inflight:     make(chan struct{}, 8),
		shipPools:    make(map[string]*rbio.Client),
	}
	w.cond = sync.NewCond(&w.mu)
	c.Net.Serve(w.ackAddr(), w.ackHandler())
	w.wg.Add(2)
	go w.flushLoop()
	go w.backupLoop()
	return w
}

// ackAddr is the fabric address of the writer's harden-ack endpoint.
func (w *writer) ackAddr() string { return w.c.cfg.Name + "-ack" }

// ackHandler serves the writer's ack endpoint: cumulative one-way harden
// reports from secondaries, one frame acknowledging every block at or
// below its LSN.
func (w *writer) ackHandler() rbio.Handler {
	return func(_ context.Context, req *rbio.Request) *rbio.Response {
		switch req.Type {
		case rbio.MsgPing:
			return rbio.Ok()
		case rbio.MsgHardenReport:
			w.recordAck(req.Consumer, req.LSN)
			return rbio.Ok()
		default:
			return rbio.Errorf("hadr: unsupported ack message %v", req.Type)
		}
	}
}

// recordAck merges one secondary's cumulative harden watermark and
// re-derives the quorum watermark. Acks are monotone; stale or duplicate
// reports are no-ops.
func (w *writer) recordAck(name string, lsn page.LSN) {
	if name == "" {
		return
	}
	w.mu.Lock()
	if lsn.After(w.secAcks[name]) {
		w.secAcks[name] = lsn
		w.advanceLocked()
	}
	w.mu.Unlock()
}

// advanceLocked recomputes the quorum-hardened watermark: the highest LSN
// that is locally durable (as a prefix) and cumulatively acked by any
// Quorum-1 secondaries — a flexible quorum in the Taurus style, where any
// quorum-sized subset of replicas may harden a given block. Caller holds
// w.mu.
func (w *writer) advanceLocked() {
	need := w.c.cfg.Quorum - 1 // the local copy counts toward quorum
	cand := w.localDurable
	if need > 0 {
		if len(w.secAcks) < need {
			return
		}
		acks := make([]page.LSN, 0, len(w.secAcks))
		for _, l := range w.secAcks {
			acks = append(acks, l)
		}
		sort.Slice(acks, func(i, j int) bool { return acks[i].After(acks[j]) })
		if acks[need-1].Before(cand) {
			cand = acks[need-1]
		}
	}
	if cand.After(w.hardened) {
		w.hardened = cand
		w.cond.Broadcast()
	}
}

// Append stages a record (engine.LogPipeline).
func (w *writer) Append(rec *wal.Record) page.LSN {
	w.mu.Lock()
	rec.LSN = w.nextLSN
	w.nextLSN = w.nextLSN.Next()
	w.pending = append(w.pending, rec)
	switch rec.Kind {
	case wal.KindTxnCommit, wal.KindTxnAbort, wal.KindCheckpoint, wal.KindNoop:
		w.boundary = len(w.pending)
		w.cond.Broadcast()
	}
	lsn := rec.LSN
	w.mu.Unlock()
	return lsn
}

// WaitHarden blocks until quorum hardening reaches lsn or ctx is done.
func (w *writer) WaitHarden(ctx context.Context, lsn page.LSN) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// The callback must take w.mu (context.AfterFunc docs): an unlocked
	// Broadcast can fire between the ctx.Err() check and cond.Wait()
	// registering — a missed wakeup that strands the waiter.
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.cond.Broadcast()
	})
	defer stop()
	// commit.harden: the committer is blocked on quorum replication of its
	// LSN. Recorded only when the loop actually blocks.
	region := w.c.cfg.Waits.Begin(ctx, obs.WaitCommitHarden)
	waited := false
	defer func() { region.EndIf(waited) }()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.hardened.AtMost(lsn) && w.err == nil && !w.closed {
		if err := ctx.Err(); err != nil {
			return socerr.FromContext(err)
		}
		waited = true
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.hardened.AtMost(lsn) {
		return ErrNoQuorum
	}
	return nil
}

// HardenedEnd reports the quorum-hardened watermark.
func (w *writer) HardenedEnd() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hardened
}

// Stats reports blocks and bytes shipped, plus backup throttle events.
func (w *writer) Stats() (blocks, bytes, throttles int64) {
	return w.blocksFlushed.Load(), w.bytesFlushed.Load(), w.throttles.Load()
}

// Close stops the pipeline.
func (w *writer) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.ioWG.Wait() // drain in-flight quorum rounds
	w.c.Net.Unserve(w.ackAddr())
	w.shipMu.Lock()
	for _, cl := range w.shipPools {
		//socrates:ignore-err teardown of replication clients on writer close; the pools own no durable state
		_ = cl.Close()
	}
	w.shipPools = nil
	w.shipMu.Unlock()
}

// shipTimeout bounds one replication RPC to a secondary: an unreachable
// replica must not wedge a quorum round forever.
const shipTimeout = 10 * time.Second

// shipClient returns the persistent pooled client for secondary name,
// creating it on first use. The pool keeps warm multiplexed connections
// across shipped blocks, evicting and redialing only on failure.
func (w *writer) shipClient(name string) *rbio.Client {
	w.shipMu.Lock()
	defer w.shipMu.Unlock()
	if cl, ok := w.shipPools[name]; ok {
		return cl
	}
	if w.shipPools == nil {
		w.shipPools = make(map[string]*rbio.Client)
	}
	pool := netmux.NewPool(name,
		func(a string) (rbio.Conn, error) { return w.c.Net.Dial(a), nil },
		netmux.Options{})
	cl := rbio.NewClient(pool)
	w.shipPools[name] = cl
	return cl
}

func (w *writer) flushLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for w.boundary == 0 && !w.closed && w.err == nil {
			//socrates:wait-ok idle flusher waiting for a commit boundary; not a stall
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && w.boundary == 0) {
			w.mu.Unlock()
			return
		}
		// Backup-lag throttle: log production is "restricted to the level
		// at which the log backup egress can be safely handled" (§7.4).
		// backpressure: this stall serializes the whole log pipeline, so
		// the blocked time is charged as one running total per episode.
		if w.unbackedLen > w.c.cfg.BackupLagBudget && !w.closed {
			stallStart := time.Now()
			for w.unbackedLen > w.c.cfg.BackupLagBudget && !w.closed {
				w.throttles.Inc()
				waker := time.AfterFunc(time.Millisecond, w.cond.Broadcast)
				//socrates:wait-ok charged below as backpressure via a running total per throttle episode
				w.cond.Wait()
				waker.Stop()
			}
			w.c.cfg.Waits.Observe(nil, obs.WaitBackpressure, time.Since(stallStart))
		}
		if w.closed && w.boundary == 0 {
			w.mu.Unlock()
			return
		}
		recs := append([]*wal.Record(nil), w.pending[:w.boundary]...)
		w.pending = w.pending[w.boundary:]
		w.boundary = 0
		w.mu.Unlock()

		block := &wal.Block{
			Start:   recs[0].LSN,
			End:     recs[len(recs)-1].LSN.Next(),
			Records: recs,
		}
		// Pipelined shipping: several quorum rounds in flight, hardened
		// watermark advanced as a prefix (same discipline as the Socrates
		// landing zone).
		w.inflight <- struct{}{}
		w.ioWG.Add(1)
		go func(block *wal.Block) {
			defer w.ioWG.Done()
			defer func() { <-w.inflight }()
			if err := w.ship(block); err != nil {
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.cond.Broadcast()
				w.mu.Unlock()
				return
			}
			size := int64(block.EncodedSize())
			w.blocksFlushed.Inc()
			w.bytesFlushed.Add(size)

			w.mu.Lock()
			w.blockSizes[block.Start] = size
			w.blockOrder = append(w.blockOrder, block.Start)
			w.unbackedLen += size
			w.cond.Broadcast()
			w.mu.Unlock()
		}(block)
	}
}

// ship hardens the block locally, fires it at every secondary as a one-way
// mux frame, and waits for the flexible quorum to cover it. Cumulative acks
// arrive on the writer's ack endpoint (one ack frame covers every pipelined
// block below its LSN); peers negotiated below the mux protocol get the
// classic round-trip ship whose response carries the same cumulative ack.
// A one-way frame lost to a conn teardown is recovered by the retransmit
// loop, so loss costs latency, never a commit.
func (w *writer) ship(block *wal.Block) error {
	prim := w.c.Primary()
	if err := prim.harden(block); err != nil {
		return err
	}
	secs := w.c.Secondaries()
	need := w.c.cfg.Quorum - 1 // local copy already hardened
	if need > len(secs) {
		return ErrNoQuorum
	}
	payload := block.Encode()

	w.mu.Lock()
	// Local durability advances as a prefix (ships are pipelined and local
	// hardens complete out of order); the quorum watermark never passes it.
	w.completed[block.Start] = block.End
	for {
		end, ok := w.completed[w.localDurable]
		if !ok {
			break
		}
		delete(w.completed, w.localDurable)
		w.localDurable = end
	}
	// Retain the encoded block for retransmission until evicted.
	w.tail[block.Start] = tailBlock{end: block.End, payload: payload}
	w.tailOrder = append(w.tailOrder, block.Start)
	for len(w.tailOrder) > tailMax {
		delete(w.tail, w.tailOrder[0])
		w.tailOrder = w.tailOrder[1:]
	}
	w.advanceLocked()
	w.mu.Unlock()

	var fails atomic.Int32
	qstart := time.Now()
	for _, sec := range secs {
		go func(name string) {
			ctx, cancel := context.WithTimeout(context.Background(), shipTimeout)
			defer cancel()
			cl := w.shipClient(name)
			req := &rbio.Request{Type: rbio.MsgFeedBlock, Payload: payload}
			if cl.SpeaksOneway(ctx) {
				if err := cl.Send(ctx, req); err == nil {
					return // cumulative ack arrives on the ack endpoint
				}
			}
			// Pre-mux peer, or the one-way send failed outright: round-trip
			// ship; the response carries the same cumulative ack.
			resp, err := cl.Call(ctx, req)
			if err == nil {
				err = resp.Err()
			}
			if err != nil {
				fails.Add(1)
				return
			}
			w.recordAck(name, resp.LSN)
		}(sec.name)
	}

	// commit.quorum: wait until the flexible quorum covers this block,
	// retransmitting round-trip to laggards whose cumulative ack stalls.
	deadline := time.Now().Add(shipTimeout)
	next := time.Now().Add(retransmitAfter)
	w.mu.Lock()
	for w.hardened.Before(block.End) && w.err == nil {
		if int(fails.Load()) > len(secs)-need {
			n := fails.Load()
			w.mu.Unlock()
			return fmt.Errorf("%w: %d/%d secondaries failed", ErrNoQuorum, n, len(secs))
		}
		now := time.Now()
		if now.After(deadline) {
			w.mu.Unlock()
			return ErrNoQuorum
		}
		if now.After(next) {
			laggards := make([]string, 0, len(secs))
			for _, sec := range secs {
				if w.secAcks[sec.name].Before(block.End) {
					laggards = append(laggards, sec.name)
				}
			}
			w.mu.Unlock()
			roundFails := 0
			for _, name := range laggards {
				if !w.retransmit(name, block.End, deadline) {
					roundFails++
				}
			}
			if len(secs)-roundFails < need {
				return fmt.Errorf("%w: %d/%d secondaries unreachable", ErrNoQuorum, roundFails, len(secs))
			}
			next = time.Now().Add(retransmitAfter)
			w.mu.Lock()
			continue
		}
		waker := time.AfterFunc(time.Millisecond, func() {
			w.mu.Lock()
			defer w.mu.Unlock()
			w.cond.Broadcast()
		})
		//socrates:wait-ok charged as commit.quorum via the qstart running total once the flexible quorum acks
		w.cond.Wait()
		waker.Stop()
	}
	covered := !w.hardened.Before(block.End)
	err := w.err
	w.mu.Unlock()
	if !covered {
		if err != nil {
			return err
		}
		return ErrNoQuorum
	}
	w.c.cfg.Waits.Observe(nil, obs.WaitCommitQuorum, time.Since(qstart))
	return nil
}

// retransmit re-ships, round-trip, every retained block below upTo that
// the laggard has not yet cumulatively acked, oldest first. This is the
// loss-recovery half of the one-way ship contract: a frame dropped by a
// conn teardown is re-delivered here, and the secondary's dedupe makes
// re-delivery idempotent. Reports whether the laggard was reachable.
func (w *writer) retransmit(name string, upTo page.LSN, deadline time.Time) bool {
	w.mu.Lock()
	from := w.secAcks[name]
	starts := make([]page.LSN, 0, 4)
	for s, tb := range w.tail {
		if s.Before(upTo) && tb.end.After(from) {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	payloads := make([][]byte, len(starts))
	for i, s := range starts {
		payloads[i] = w.tail[s].payload
	}
	w.mu.Unlock()
	cl := w.shipClient(name)
	for _, p := range payloads {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		resp, err := cl.Call(ctx, &rbio.Request{Type: rbio.MsgFeedBlock, Payload: p})
		cancel()
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			return false
		}
		w.recordAck(name, resp.LSN)
	}
	return true
}

// backupLoop ships the un-backed-up log range to XStore on a cadence. Its
// egress is capped by the store's ingest limit; a slow backup stalls log
// production via the lag budget.
func (w *writer) backupLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.c.cfg.LogBackupEvery)
	defer ticker.Stop()
	for {
		w.mu.Lock()
		closed := w.closed
		w.mu.Unlock()
		if closed {
			w.backupOnce() // final drain
			return
		}
		//socrates:wait-ok log-backup cadence tick, not a stall
		<-ticker.C
		w.backupOnce()
	}
}

func (w *writer) backupOnce() {
	w.mu.Lock()
	if len(w.blockOrder) == 0 {
		w.mu.Unlock()
		return
	}
	starts := w.blockOrder
	w.blockOrder = nil
	var total int64
	for _, s := range starts {
		total += w.blockSizes[s]
		delete(w.blockSizes, s)
	}
	w.mu.Unlock()

	// The backup payload is a synthetic run of the same size as the log
	// range: what matters is the egress it consumes at XStore.
	if err := w.c.Store.Append(w.c.cfg.Name+"/logbackup", make([]byte, total)); err != nil {
		// XStore unavailable: re-queue so the lag budget keeps throttling.
		w.mu.Lock()
		for _, s := range starts {
			w.blockSizes[s] = 0 // sizes merged into the front entry below
		}
		w.blockSizes[starts[0]] = total
		w.blockOrder = append(starts, w.blockOrder...)
		w.mu.Unlock()
		return
	}
	w.mu.Lock()
	w.unbackedLen -= total
	if w.unbackedLen < 0 {
		w.unbackedLen = 0
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

var _ engine.LogPipeline = (*writer)(nil)
