package hadr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"socrates/internal/engine"
	"socrates/internal/metrics"
	"socrates/internal/netmux"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// Cluster is a running HADR deployment: one primary, N-1 secondaries.
type Cluster struct {
	cfg Config

	Net          *rbio.Network
	Store        *xstore.Store
	PrimaryMeter *metrics.CPUMeter

	mu          sync.Mutex
	primary     *Node
	secondaries []*Node
	writer      *writer
}

// New builds, bootstraps, and starts an HADR deployment.
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	c := &Cluster{cfg: cfg, Net: cfg.Net}
	if c.Net == nil {
		c.Net = rbio.NewNetworkWith(AZLink)
	}
	c.Store = cfg.Store
	if c.Store == nil {
		c.Store = xstore.New(xstore.Config{})
	}
	c.PrimaryMeter = metrics.NewCPUMeter(cfg.PrimaryCores)

	// Primary node plus secondaries, each a full replica.
	prim, err := newNode(cfg.Name+"-0", cfg.DiskProfile, c.PrimaryMeter)
	if err != nil {
		return nil, err
	}
	prim.waits = cfg.Waits
	c.primary = prim
	for i := 1; i < cfg.Replicas; i++ {
		sec, err := newNode(fmt.Sprintf("%s-%d", cfg.Name, i), cfg.DiskProfile, nil)
		if err != nil {
			return nil, err
		}
		sec.waits = cfg.Waits
		sec.startApply()
		c.Net.Serve(sec.name, sec.handler())
		c.secondaries = append(c.secondaries, sec)
	}

	c.writer = newWriter(c, 1)
	eng, err := engine.Create(engine.Config{
		Pages: c.primary.pages,
		Log:   c.writer,
		Meter: c.PrimaryMeter,
	})
	if err != nil {
		return nil, err
	}
	c.primary.engine = eng

	// Secondaries attach read-only engines once the catalog replicates.
	end := c.writer.HardenedEnd()
	for _, sec := range c.secondaries {
		if !sec.WaitApplied(end, 5*time.Second) {
			return nil, fmt.Errorf("hadr: %s never caught up during bootstrap", sec.name)
		}
		if err := sec.openSecondaryEngine(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Primary returns the current primary node.
func (c *Cluster) Primary() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// Secondaries returns the current secondary nodes.
func (c *Cluster) Secondaries() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.secondaries...)
}

// Writer exposes the primary's log pipeline (throughput stats).
func (c *Cluster) Writer() *writer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writer
}

// Close stops every node.
func (c *Cluster) Close() {
	c.mu.Lock()
	w := c.writer
	secs := append([]*Node(nil), c.secondaries...)
	prim := c.primary
	c.mu.Unlock()
	if w != nil {
		w.Close()
	}
	for _, s := range secs {
		s.stop()
	}
	if prim != nil {
		prim.stop()
	}
}

// TotalDataBytes reports the bytes stored across all replicas — the "4x
// copies" storage impact of Table 1.
func (c *Cluster) TotalDataBytes() int64 {
	var total int64
	total += c.Primary().DataBytes()
	for _, s := range c.Secondaries() {
		total += s.DataBytes()
	}
	return total
}

// Failover promotes the most caught-up secondary to primary. Recovery time
// includes draining its apply queue; because each node already has a full
// copy, no pages move — but a *replacement* replica to restore fault
// tolerance costs O(size-of-data) (SeedNewReplica).
func (c *Cluster) Failover() (*Node, time.Duration, error) {
	start := time.Now()
	c.mu.Lock()
	oldWriter := c.writer
	old := c.primary
	if len(c.secondaries) == 0 {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("hadr: no secondary to promote")
	}
	// Most caught-up secondary wins.
	best := c.secondaries[0]
	for _, s := range c.secondaries[1:] {
		if s.AppliedLSN().After(best.AppliedLSN()) {
			best = s
		}
	}
	rest := make([]*Node, 0, len(c.secondaries)-1)
	for _, s := range c.secondaries {
		if s != best {
			rest = append(rest, s)
		}
	}
	c.mu.Unlock()

	oldWriter.Close()
	old.stop()
	hardened := oldWriter.HardenedEnd()

	// The promoted node drains its queue to the hardened end.
	if !best.WaitApplied(hardened, 10*time.Second) {
		return nil, 0, fmt.Errorf("hadr: promoted node stuck at %d, need %d",
			best.AppliedLSN(), hardened)
	}
	c.Net.Unserve(best.name)

	// Construct the writer (it spawns flush/backup loops that reach the
	// fabric) before taking the lock: deadlocklint, and a failover that
	// cannot convoy behind a slow dial.
	w := newWriter(c, hardened)
	c.mu.Lock()
	c.primary = best
	c.secondaries = rest
	c.writer = w
	c.mu.Unlock()

	visible := uint64(0)
	if best.engine != nil {
		visible = best.engine.Clock().Visible()
	}
	eng, err := engine.Open(engine.Config{
		Pages: best.pages,
		Log:   c.writer,
		Meter: c.PrimaryMeter,
	})
	if err != nil {
		return nil, 0, err
	}
	eng.Clock().Publish(visible)
	best.engine = eng
	return best, time.Since(start), nil
}

// SeedNewReplica adds a secondary by copying the full database from the
// primary — the O(size-of-data) operation Socrates eliminates (§4.1.2).
// It returns the new node, the bytes copied, and the elapsed time.
func (c *Cluster) SeedNewReplica(name string) (*Node, int64, time.Duration, error) {
	start := time.Now()
	prim := c.Primary()
	sec, err := newNode(name, c.cfg.DiskProfile, nil)
	if err != nil {
		return nil, 0, 0, err
	}

	var copied int64
	var copyErr error
	prim.pages.Range(func(pg *page.Page) bool {
		if err := sec.pages.Write(pg); err != nil {
			copyErr = err
			return false
		}
		copied += page.Size
		return true
	})
	if copyErr != nil {
		return nil, 0, 0, copyErr
	}
	// Read the hardened end before taking the node lock: Writer() takes
	// Cluster.mu, and Failover acquires Node.mu while holding Cluster.mu —
	// nesting them here in the opposite order is a lock-order cycle.
	hardened := c.Writer().HardenedEnd()
	sec.mu.Lock()
	sec.applied = hardened
	sec.mu.Unlock()
	sec.startApply()
	c.Net.Serve(sec.name, sec.handler())
	if err := sec.openSecondaryEngine(); err != nil {
		return nil, 0, 0, err
	}
	if prim.engine != nil {
		sec.engine.Clock().Publish(prim.engine.Clock().Visible())
	}
	c.mu.Lock()
	c.secondaries = append(c.secondaries, sec)
	c.mu.Unlock()
	return sec, copied, time.Since(start), nil
}

// Range exposes the primary page file's Range for seeding (test support).
func (n *Node) Range(fn func(*page.Page) bool) { n.pages.Range(fn) }

// writer is the HADR primary's log pipeline: local log write plus quorum
// log shipping, with backup-lag throttling.
type writer struct {
	c *Cluster

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*wal.Record
	boundary int
	nextLSN  page.LSN
	hardened page.LSN
	err      error
	closed   bool

	// Backup bookkeeping: [backedUp, hardened) is not yet in XStore; its
	// size is capped by BackupLagBudget.
	backedUp    page.LSN
	unbackedLen int64
	blockSizes  map[page.LSN]int64 // start LSN → encoded size (until backup)
	blockOrder  []page.LSN

	// completed tracks out-of-order quorum acks so the hardened watermark
	// stays a prefix (ships are pipelined).
	completed map[page.LSN]page.LSN

	// shipPools holds one persistent netmux-pooled client per secondary,
	// so replication reuses warm multiplexed connections instead of
	// dialing a fresh one per shipped block.
	shipMu    sync.Mutex
	shipPools map[string]*rbio.Client

	wg            sync.WaitGroup
	ioWG          sync.WaitGroup
	inflight      chan struct{}
	bytesFlushed  metrics.Counter
	blocksFlushed metrics.Counter
	throttles     metrics.Counter
}

func newWriter(c *Cluster, startLSN page.LSN) *writer {
	w := &writer{
		c:          c,
		nextLSN:    startLSN,
		hardened:   startLSN,
		backedUp:   startLSN,
		blockSizes: make(map[page.LSN]int64),
		completed:  make(map[page.LSN]page.LSN),
		inflight:   make(chan struct{}, 8),
		shipPools:  make(map[string]*rbio.Client),
	}
	w.cond = sync.NewCond(&w.mu)
	w.wg.Add(2)
	go w.flushLoop()
	go w.backupLoop()
	return w
}

// Append stages a record (engine.LogPipeline).
func (w *writer) Append(rec *wal.Record) page.LSN {
	w.mu.Lock()
	rec.LSN = w.nextLSN
	w.nextLSN = w.nextLSN.Next()
	w.pending = append(w.pending, rec)
	switch rec.Kind {
	case wal.KindTxnCommit, wal.KindTxnAbort, wal.KindCheckpoint, wal.KindNoop:
		w.boundary = len(w.pending)
		w.cond.Broadcast()
	}
	lsn := rec.LSN
	w.mu.Unlock()
	return lsn
}

// WaitHarden blocks until quorum hardening reaches lsn or ctx is done.
func (w *writer) WaitHarden(ctx context.Context, lsn page.LSN) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// The callback must take w.mu (context.AfterFunc docs): an unlocked
	// Broadcast can fire between the ctx.Err() check and cond.Wait()
	// registering — a missed wakeup that strands the waiter.
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.cond.Broadcast()
	})
	defer stop()
	// commit.harden: the committer is blocked on quorum replication of its
	// LSN. Recorded only when the loop actually blocks.
	region := w.c.cfg.Waits.Begin(ctx, obs.WaitCommitHarden)
	waited := false
	defer func() { region.EndIf(waited) }()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.hardened.AtMost(lsn) && w.err == nil && !w.closed {
		if err := ctx.Err(); err != nil {
			return socerr.FromContext(err)
		}
		waited = true
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.hardened.AtMost(lsn) {
		return ErrNoQuorum
	}
	return nil
}

// HardenedEnd reports the quorum-hardened watermark.
func (w *writer) HardenedEnd() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hardened
}

// Stats reports blocks and bytes shipped, plus backup throttle events.
func (w *writer) Stats() (blocks, bytes, throttles int64) {
	return w.blocksFlushed.Load(), w.bytesFlushed.Load(), w.throttles.Load()
}

// Close stops the pipeline.
func (w *writer) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.ioWG.Wait() // drain in-flight quorum rounds
	w.shipMu.Lock()
	for _, cl := range w.shipPools {
		//socrates:ignore-err teardown of replication clients on writer close; the pools own no durable state
		_ = cl.Close()
	}
	w.shipPools = nil
	w.shipMu.Unlock()
}

// shipTimeout bounds one replication RPC to a secondary: an unreachable
// replica must not wedge a quorum round forever.
const shipTimeout = 10 * time.Second

// shipClient returns the persistent pooled client for secondary name,
// creating it on first use. The pool keeps warm multiplexed connections
// across shipped blocks, evicting and redialing only on failure.
func (w *writer) shipClient(name string) *rbio.Client {
	w.shipMu.Lock()
	defer w.shipMu.Unlock()
	if cl, ok := w.shipPools[name]; ok {
		return cl
	}
	if w.shipPools == nil {
		w.shipPools = make(map[string]*rbio.Client)
	}
	pool := netmux.NewPool(name,
		func(a string) (rbio.Conn, error) { return w.c.Net.Dial(a), nil },
		netmux.Options{})
	cl := rbio.NewClient(pool)
	w.shipPools[name] = cl
	return cl
}

func (w *writer) flushLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for w.boundary == 0 && !w.closed && w.err == nil {
			//socrates:wait-ok idle flusher waiting for a commit boundary; not a stall
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && w.boundary == 0) {
			w.mu.Unlock()
			return
		}
		// Backup-lag throttle: log production is "restricted to the level
		// at which the log backup egress can be safely handled" (§7.4).
		// backpressure: this stall serializes the whole log pipeline, so
		// the blocked time is charged as one running total per episode.
		if w.unbackedLen > w.c.cfg.BackupLagBudget && !w.closed {
			stallStart := time.Now()
			for w.unbackedLen > w.c.cfg.BackupLagBudget && !w.closed {
				w.throttles.Inc()
				waker := time.AfterFunc(time.Millisecond, w.cond.Broadcast)
				//socrates:wait-ok charged below as backpressure via a running total per throttle episode
				w.cond.Wait()
				waker.Stop()
			}
			w.c.cfg.Waits.Observe(nil, obs.WaitBackpressure, time.Since(stallStart))
		}
		if w.closed && w.boundary == 0 {
			w.mu.Unlock()
			return
		}
		recs := append([]*wal.Record(nil), w.pending[:w.boundary]...)
		w.pending = w.pending[w.boundary:]
		w.boundary = 0
		w.mu.Unlock()

		block := &wal.Block{
			Start:   recs[0].LSN,
			End:     recs[len(recs)-1].LSN.Next(),
			Records: recs,
		}
		// Pipelined shipping: several quorum rounds in flight, hardened
		// watermark advanced as a prefix (same discipline as the Socrates
		// landing zone).
		w.inflight <- struct{}{}
		w.ioWG.Add(1)
		go func(block *wal.Block) {
			defer w.ioWG.Done()
			defer func() { <-w.inflight }()
			if err := w.ship(block); err != nil {
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.cond.Broadcast()
				w.mu.Unlock()
				return
			}
			size := int64(block.EncodedSize())
			w.blocksFlushed.Inc()
			w.bytesFlushed.Add(size)

			w.mu.Lock()
			w.completed[block.Start] = block.End
			for {
				end, ok := w.completed[w.hardened]
				if !ok {
					break
				}
				delete(w.completed, w.hardened)
				w.hardened = end
			}
			w.blockSizes[block.Start] = size
			w.blockOrder = append(w.blockOrder, block.Start)
			w.unbackedLen += size
			w.cond.Broadcast()
			w.mu.Unlock()
		}(block)
	}
}

// ship hardens the block locally and on a quorum of secondaries, applying
// it locally as well (the primary is also a replica).
func (w *writer) ship(block *wal.Block) error {
	prim := w.c.Primary()
	if err := prim.harden(block); err != nil {
		return err
	}
	secs := w.c.Secondaries()
	need := w.c.cfg.Quorum - 1 // local copy already hardened
	if need > len(secs) {
		return ErrNoQuorum
	}
	payload := block.Encode()
	acks := make(chan error, len(secs))
	for _, sec := range secs {
		go func(name string) {
			ctx, cancel := context.WithTimeout(context.Background(), shipTimeout)
			defer cancel()
			resp, err := w.shipClient(name).Call(ctx, &rbio.Request{Type: rbio.MsgFeedBlock, Payload: payload})
			if err == nil {
				err = resp.Err()
			}
			acks <- err
		}(sec.name)
	}
	// commit.quorum: the cross-AZ round trip to the q-th fastest secondary.
	qstart := time.Now()
	got, fails := 0, 0
	for range secs {
		//socrates:wait-ok charged as commit.quorum via the qstart running total once the quorum acks
		if err := <-acks; err == nil {
			got++
			if got >= need {
				// The primary's pages were already updated by the engine's
				// commit path; nothing to apply locally.
				w.c.cfg.Waits.Observe(nil, obs.WaitCommitQuorum, time.Since(qstart))
				return nil
			}
		} else {
			fails++
			if fails > len(secs)-need {
				return fmt.Errorf("%w: %d/%d secondaries failed", ErrNoQuorum, fails, len(secs))
			}
		}
	}
	if got >= need {
		w.c.cfg.Waits.Observe(nil, obs.WaitCommitQuorum, time.Since(qstart))
		return nil
	}
	return ErrNoQuorum
}

// backupLoop ships the un-backed-up log range to XStore on a cadence. Its
// egress is capped by the store's ingest limit; a slow backup stalls log
// production via the lag budget.
func (w *writer) backupLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.c.cfg.LogBackupEvery)
	defer ticker.Stop()
	for {
		w.mu.Lock()
		closed := w.closed
		w.mu.Unlock()
		if closed {
			w.backupOnce() // final drain
			return
		}
		//socrates:wait-ok log-backup cadence tick, not a stall
		<-ticker.C
		w.backupOnce()
	}
}

func (w *writer) backupOnce() {
	w.mu.Lock()
	if len(w.blockOrder) == 0 {
		w.mu.Unlock()
		return
	}
	starts := w.blockOrder
	w.blockOrder = nil
	var total int64
	for _, s := range starts {
		total += w.blockSizes[s]
		delete(w.blockSizes, s)
	}
	w.mu.Unlock()

	// The backup payload is a synthetic run of the same size as the log
	// range: what matters is the egress it consumes at XStore.
	if err := w.c.Store.Append(w.c.cfg.Name+"/logbackup", make([]byte, total)); err != nil {
		// XStore unavailable: re-queue so the lag budget keeps throttling.
		w.mu.Lock()
		for _, s := range starts {
			w.blockSizes[s] = 0 // sizes merged into the front entry below
		}
		w.blockSizes[starts[0]] = total
		w.blockOrder = append(starts, w.blockOrder...)
		w.mu.Unlock()
		return
	}
	w.mu.Lock()
	w.unbackedLen -= total
	if w.unbackedLen < 0 {
		w.unbackedLen = 0
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

var _ engine.LogPipeline = (*writer)(nil)
