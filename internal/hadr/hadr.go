// Package hadr implements the pre-Socrates SQL DB architecture (§2,
// Figure 1): a log-replicated state machine of four nodes — one primary and
// three secondaries — each holding a full local copy of the database.
//
// It is the evaluation baseline for every comparison in the paper:
//
//   - commits harden by achieving quorum across the replica set (the
//     primary's local log write plus acknowledgements from secondaries),
//     paying a cross-availability-zone round trip (~3 ms, Table 1);
//   - the primary must also drive the log backup to XStore itself, every
//     "five minutes"; when the backup egress cannot keep up, log production
//     throttles — the bottleneck behind Table 5;
//   - every operational workflow is O(size-of-data): seeding a new replica
//     copies the whole database, and scale-up is a reseed (Table 1).
package hadr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"socrates/internal/btree"
	"socrates/internal/engine"
	"socrates/internal/fcb"
	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// AZLink models one cross-availability-zone network hop, the latency HADR
// pays on every quorum commit.
var AZLink = simdisk.Profile{
	Name:       "az-link",
	ReadBase:   1300 * time.Microsecond,
	WriteBase:  1300 * time.Microsecond,
	PerKB:      250 * time.Nanosecond,
	JitterFrac: 0.15,
	TailProb:   0.001,
	TailFactor: 12,
	ReadCPU:    10 * time.Microsecond,
	WriteCPU:   10 * time.Microsecond,
}

// ErrNoQuorum reports a commit that could not reach enough replicas.
var ErrNoQuorum = errors.New("hadr: replication quorum lost")

// Config describes an HADR deployment.
type Config struct {
	// Name prefixes node addresses and backup blobs.
	Name string
	// Replicas is the node count including the primary (default 4).
	Replicas int
	// Quorum is the number of nodes (including the primary) that must
	// harden a block before commit (default 3).
	Quorum int
	// Net is the replication fabric (default: an AZLink-latency network).
	Net *rbio.Network
	// Store is the XStore account receiving log/full backups.
	Store *xstore.Store
	// LogBackupEvery is the log backup cadence — the paper's five minutes,
	// scaled (default 25 ms).
	LogBackupEvery time.Duration
	// BackupLagBudget is how many un-backed-up log bytes may accumulate
	// before log production throttles (the local log cannot be truncated
	// past the backup point; default 1 MiB).
	BackupLagBudget int64
	// DiskProfile is the node-local storage class (default LocalSSD).
	DiskProfile simdisk.Profile
	// PrimaryCores sizes the primary's CPU meter (default 8).
	PrimaryCores int
	// Waits receives wait-event accounting for the deployment:
	// commit.harden/commit.quorum on the writer, backpressure on the
	// backup-lag throttle, xlog.feed when callers block on a secondary's
	// apply watermark. Nil disables recording.
	Waits *obs.WaitRecorder
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Name = "hadr"
	}
	if c.Replicas == 0 {
		c.Replicas = 4
	}
	if c.Quorum == 0 {
		c.Quorum = 3
	}
	if c.LogBackupEvery == 0 {
		c.LogBackupEvery = 25 * time.Millisecond
	}
	if c.BackupLagBudget == 0 {
		c.BackupLagBudget = 1 << 20
	}
	if c.DiskProfile.Name == "" {
		c.DiskProfile = simdisk.LocalSSD
	}
	if c.PrimaryCores == 0 {
		c.PrimaryCores = 8
	}
}

// Node is one HADR replica: a full local database copy plus a local log.
type Node struct {
	name   string
	pages  *bufferedFile
	disk   *simdisk.Device
	logDev *simdisk.Device
	logEnd int64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*wal.Block // hardened locally, not yet applied
	applied page.LSN
	maxTS   uint64         // highest applied commit timestamp
	engine  *engine.Engine // read-only while secondary; nil until first open

	// One-way replication bookkeeping: hardenedTo is the contiguous
	// locally-hardened prefix (the cumulative ack watermark — one ack
	// frame carrying it acknowledges every block below). future holds
	// blocks hardened above the prefix (one-way ships can reorder or lose
	// frames), keyed by start LSN; feeding marks ships being hardened
	// right now, so a retransmitted duplicate never double-appends to the
	// local log.
	hardenedTo page.LSN
	future     map[page.LSN]page.LSN
	feeding    map[page.LSN]bool

	// ack carries cumulative one-way harden acks back to the primary's
	// ack endpoint. Lossy by contract: the primary retransmits un-acked
	// blocks round-trip, so a dropped ack costs latency, never a commit.
	ack *rbio.Client

	waits *obs.WaitRecorder

	done chan struct{}
	wg   sync.WaitGroup
}

func newNode(name string, diskProfile simdisk.Profile, meter *metrics.CPUMeter) (*Node, error) {
	var opts []simdisk.Option
	if meter != nil {
		opts = append(opts, simdisk.WithCPU(meter))
	}
	disk := simdisk.New(diskProfile, opts...)
	pages, err := newBufferedFile(disk)
	if err != nil {
		return nil, fmt.Errorf("hadr: opening %s page store: %w", name, err)
	}
	n := &Node{
		name:       name,
		pages:      pages,
		disk:       disk,
		logDev:     simdisk.New(diskProfile, opts...),
		applied:    1,
		hardenedTo: 1,
		future:     make(map[page.LSN]page.LSN),
		feeding:    make(map[page.LSN]bool),
		done:       make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// Name reports the node name.
func (n *Node) Name() string { return n.name }

// AppliedLSN reports the node's apply watermark.
func (n *Node) AppliedLSN() page.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applied
}

// Engine returns the node's engine (read-only on secondaries).
func (n *Node) Engine() *engine.Engine { return n.engine }

// harden persists a block to the node's local log. It is the durability
// half of the replicated state machine.
func (n *Node) harden(b *wal.Block) error {
	enc := b.Encode()
	n.mu.Lock()
	off := n.logEnd
	n.logEnd += int64(len(enc))
	n.mu.Unlock()
	return n.logDev.WriteAt(enc, off)
}

// HardenedTo reports the node's contiguous locally-hardened prefix — the
// cumulative ack watermark it reports to the primary.
func (n *Node) HardenedTo() page.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hardenedTo
}

// hardenFeed ingests one shipped block: it drops duplicates (one-way ship
// retransmits re-deliver blocks), hardens fresh blocks to the local log,
// queues them for apply, and advances the contiguous ack watermark. The
// returned LSN is the cumulative watermark — acknowledging it acknowledges
// every block below it, so one ack frame covers a whole pipelined batch.
func (n *Node) hardenFeed(b *wal.Block) (page.LSN, error) {
	n.mu.Lock()
	if !b.End.After(n.hardenedTo) || n.future[b.Start] != 0 || n.feeding[b.Start] {
		// Duplicate delivery (a retransmit raced the original, or the
		// original's ack was lost): the block is already durable here.
		// Re-report the watermark; never re-append to the local log.
		cum := n.hardenedTo
		n.mu.Unlock()
		return cum, nil
	}
	n.feeding[b.Start] = true
	n.mu.Unlock()

	err := n.harden(b)
	n.mu.Lock()
	delete(n.feeding, b.Start)
	if err != nil {
		cum := n.hardenedTo
		n.mu.Unlock()
		return cum, err
	}
	n.future[b.Start] = b.End
	for {
		end, ok := n.future[n.hardenedTo]
		if !ok {
			break
		}
		delete(n.future, n.hardenedTo)
		n.hardenedTo = end
	}
	cum := n.hardenedTo
	n.mu.Unlock()
	n.enqueue(b)
	return cum, nil
}

// reportHarden fires a cumulative one-way harden ack at the primary. Loss
// is tolerable by contract: a later ack supersedes it, and the primary
// retransmits any block whose ack never arrives.
func (n *Node) reportHarden(cum page.LSN) {
	n.mu.Lock()
	ack := n.ack
	n.mu.Unlock()
	if ack == nil {
		return
	}
	//socrates:ignore-err lossy cumulative ack; the primary's retransmit path recovers
	_ = ack.Notify(context.Background(), &rbio.Request{
		Type:     rbio.MsgHardenReport,
		LSN:      cum,
		Consumer: n.name,
	})
}

// setAckClient wires the node's cumulative-ack channel to the primary's
// ack endpoint.
func (n *Node) setAckClient(c *rbio.Client) {
	n.mu.Lock()
	old := n.ack
	n.ack = c
	n.mu.Unlock()
	if old != nil {
		//socrates:ignore-err teardown of the superseded one-way ack channel; the replacement client carries all future acks
		old.Close()
	}
}

// setAckFloor fast-forwards the ack watermark to the cluster-durable
// prefix — the straggler-reconciliation step at promotion. Blocks below
// floor reached quorum cluster-wide; a secondary that missed some of them
// (it was outside the quorum) must not wedge its cumulative acks behind a
// gap the new primary no longer retains.
func (n *Node) setAckFloor(floor page.LSN) {
	n.mu.Lock()
	if floor.After(n.hardenedTo) {
		n.hardenedTo = floor
	}
	for start, end := range n.future {
		if !end.After(n.hardenedTo) {
			delete(n.future, start)
		}
	}
	// A stashed future block may now be contiguous with the new floor.
	for {
		end, ok := n.future[n.hardenedTo]
		if !ok {
			break
		}
		delete(n.future, n.hardenedTo)
		n.hardenedTo = end
	}
	n.mu.Unlock()
}

// enqueue schedules a hardened block for (async) apply.
func (n *Node) enqueue(b *wal.Block) {
	n.mu.Lock()
	n.queue = append(n.queue, b)
	n.cond.Broadcast()
	n.mu.Unlock()
}

// startApply runs the secondary apply loop.
func (n *Node) startApply() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			n.mu.Lock()
			for len(n.queue) == 0 {
				select {
				case <-n.done:
					n.mu.Unlock()
					return
				default:
				}
				waker := time.AfterFunc(time.Millisecond, n.cond.Broadcast)
				//socrates:wait-ok idle apply loop waiting for the next shipped block; not a stall
				n.cond.Wait()
				waker.Stop()
			}
			batch := n.queue
			n.queue = nil
			n.mu.Unlock()
			for _, b := range batch {
				n.applyBlock(b)
			}
		}
	}()
}

// applyBlock applies every record of the block to the local full copy. In
// HADR every node has every page, so nothing is ever skipped.
func (n *Node) applyBlock(b *wal.Block) {
	for _, rec := range b.Records {
		switch {
		case rec.Kind == wal.KindTxnCommit:
			ts := rec.CommitTS()
			n.mu.Lock()
			if ts > n.maxTS {
				n.maxTS = ts
			}
			eng := n.engine
			n.mu.Unlock()
			if eng != nil {
				eng.Clock().Publish(ts)
			}
		case rec.IsPageOp():
			pg, err := n.pages.Read(rec.Page)
			if errors.Is(err, fcb.ErrNotFound) {
				pg = page.New(rec.Page, rec.PageType)
			} else if err != nil {
				continue
			}
			if applied, err := btree.Apply(pg, rec); err == nil && applied {
				//socrates:ignore-err bufferedFile.Write is an in-memory install that cannot fail; disk write-back errors are retried by its flusher
				_ = n.pages.Write(pg)
			}
		}
	}
	n.mu.Lock()
	if b.End.After(n.applied) {
		n.applied = b.End
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// WaitApplied blocks until the node applied through lsn.
func (n *Node) WaitApplied(lsn page.LSN, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// xlog.feed: the caller is blocked behind this replica's apply
	// progress. Recorded only when the loop actually blocks.
	region := n.waits.Begin(nil, obs.WaitXLOGFeed)
	waited := false
	defer func() { region.EndIf(waited) }()
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.applied.Before(lsn) {
		if time.Now().After(deadline) {
			return false
		}
		waited = true
		waker := time.AfterFunc(time.Millisecond, n.cond.Broadcast)
		n.cond.Wait()
		waker.Stop()
	}
	return true
}

// waitApplyProgress blocks until the apply watermark advances or the
// timeout elapses — the WaitFresh hook for traversals racing log apply.
func (n *Node) waitApplyProgress(timeout time.Duration) {
	n.mu.Lock()
	start := n.applied
	deadline := time.Now().Add(timeout)
	for n.applied == start && time.Now().Before(deadline) {
		waker := time.AfterFunc(200*time.Microsecond, n.cond.Broadcast)
		//socrates:wait-ok reached only via the engine's WaitFresh hook, whose caller (withReadRetry) owns the lock.row accounting
		n.cond.Wait()
		waker.Stop()
	}
	n.mu.Unlock()
}

// handler serves replication traffic: a feed block is hardened to the local
// log, queued for apply, and acknowledged.
func (n *Node) handler() rbio.Handler {
	return func(_ context.Context, req *rbio.Request) *rbio.Response {
		switch req.Type {
		case rbio.MsgPing:
			return rbio.Ok()
		case rbio.MsgFeedBlock:
			b, _, err := wal.DecodeBlock(req.Payload)
			if err != nil {
				return rbio.Errorf("bad block: %v", err)
			}
			cum, err := n.hardenFeed(b)
			if err != nil {
				return rbio.Errorf("harden: %v", err)
			}
			// Push the cumulative watermark on the one-way ack channel (a
			// one-way ship gets no response frame) and mirror it in the
			// response for round-trip ships from older peers.
			n.reportHarden(cum)
			resp := rbio.Ok()
			resp.LSN = cum
			return resp
		case rbio.MsgReadState:
			resp := rbio.Ok()
			resp.LSN = n.AppliedLSN()
			return resp
		default:
			return rbio.Errorf("hadr: unsupported message %v", req.Type)
		}
	}
}

// stop halts the apply loop and the page flusher.
func (n *Node) stop() {
	select {
	case <-n.done:
		return
	default:
	}
	close(n.done)
	n.cond.Broadcast()
	n.wg.Wait()
	n.pages.close()
	n.mu.Lock()
	ack := n.ack
	n.ack = nil
	n.mu.Unlock()
	if ack != nil {
		//socrates:ignore-err node shutdown; acks are advisory progress reports and the primary tolerates a vanished secondary
		ack.Close()
	}
}

// DataBytes reports the bytes of the node's full local copy (after
// draining the write-back queue so the disk shadow is complete).
func (n *Node) DataBytes() int64 {
	//socrates:ignore-err this is a size probe; an incomplete drain undercounts the shadow but corrupts nothing
	_ = n.pages.FlushAll()
	return n.disk.Size()
}

// openSecondaryEngine attaches a read-only engine once the catalog exists.
func (n *Node) openSecondaryEngine() error {
	eng, err := engine.Open(engine.Config{
		Pages:    n.pages,
		ReadOnly: true,
		WaitFresh: func() {
			// A traversal raced log apply: wait for the apply loop to make
			// progress (signalled via n.cond), then retry.
			n.waitApplyProgress(2 * time.Millisecond)
		},
	})
	if err != nil {
		return err
	}
	n.mu.Lock()
	eng.Clock().Publish(n.maxTS)
	n.engine = eng
	n.mu.Unlock()
	return nil
}

var _ = fmt.Sprintf
