package hadr

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"socrates/internal/engine"
)

// TestClusterConcurrentCommitsAndProbes commits from several writers while
// other goroutines read replica watermarks, wait for catch-up, and probe
// data sizes (which force write-back flushes). Under -race this exercises
// the node mutex + bufferedFile flusher + quorum-shipping goroutines
// together.
func TestClusterConcurrentCommitsAndProbes(t *testing.T) {
	c := newFast(t, fastConfig("race"))
	e := c.Primary().Engine()
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Probes: watermarks, size accounting, and secondary reads.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range c.Secondaries() {
					_ = s.AppliedLSN()
				}
				_ = c.TotalDataBytes()
				_, _, _ = c.Writer().Stats()
			}
		}()
	}

	var commitWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		commitWG.Add(1)
		go func(wr int) {
			defer commitWG.Done()
			for i := 0; i < perWriter; i++ {
				tx := e.Begin()
				key := []byte(fmt.Sprintf("w%d-k%04d", wr, i))
				if err := tx.Put("t", key, []byte("v")); err != nil {
					tx.Abort()
					t.Errorf("put: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(wr)
	}
	commitWG.Wait()
	close(stop)
	wg.Wait()

	// Every secondary catches up to the hardened end and sees every row.
	end := c.Writer().HardenedEnd()
	for _, s := range c.Secondaries() {
		if !s.WaitApplied(end, 5*time.Second) {
			t.Fatalf("%s stuck at %d, want %d", s.Name(), s.AppliedLSN(), end)
		}
	}
	want := writers * perWriter
	if got := countRows(t, e, "t"); got != want {
		t.Fatalf("primary has %d rows, want %d", got, want)
	}
}

// TestNodeWaitAppliedRacesApply pins the Node condition-variable protocol:
// many waiters block on WaitApplied while the apply loop drains blocks, and
// every waiter must wake exactly when its watermark is reached.
func TestNodeWaitAppliedRacesApply(t *testing.T) {
	c := newFast(t, fastConfig("race2"))
	e := c.Primary().Engine()
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	secs := c.Secondaries()
	if len(secs) == 0 {
		t.Fatal("no secondaries")
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each waiter targets a different intermediate watermark.
			target := c.Writer().HardenedEnd().Add(uint64(i))
			for _, s := range secs {
				if !s.WaitApplied(target, 5*time.Second) {
					t.Errorf("waiter %d: %s never reached %d", i, s.Name(), target)
					return
				}
			}
		}(i)
	}
	// Produce enough commits to move every target watermark.
	mustExec(t, e, func(tx *engine.Tx) error {
		for i := 0; i < 32; i++ {
			if err := tx.Put("t", []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	})
	for i := 0; i < 16; i++ {
		mustExec(t, e, func(tx *engine.Tx) error {
			return tx.Put("t", []byte(fmt.Sprintf("extra%02d", i)), []byte("v"))
		})
	}
	wg.Wait()
}
