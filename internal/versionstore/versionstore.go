// Package versionstore implements the shared, persistent version store
// (§3.1): the row-version chains that let every node — primary,
// secondaries, and point-in-time readers — run Snapshot Isolation over
// pages fetched "from different points in time".
//
// In HADR, versions lived in node-local temporary storage. Socrates cannot
// do that: compute nodes share pages through the storage tier, so versions
// must be shared too. Here, version entries are appended into pages of
// type page.TypeVersion, encoded as ordinary cells keyed by slot number.
// Because they are plain page mutations, they flow through the log and the
// page servers exactly like B-tree pages: a secondary resolves a version
// pointer by fetching the version page via GetPage@LSN like any other page.
//
// A version entry holds the row payload as of a commit timestamp plus a
// pointer to the previous (older) version, forming a chain from newest to
// oldest. The newest version of a row lives in the B-tree leaf itself (in
// the same encoding); the chain hangs off it.
package versionstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"socrates/internal/btree"
	"socrates/internal/page"
	"socrates/internal/wal"
)

// ErrTruncated reports a read below the truncation watermark: the snapshot
// is too old and the versions it needs may have been reclaimed.
var ErrTruncated = errors.New("versionstore: version truncated below watermark")

// ErrNotFound reports a dangling version pointer.
var ErrNotFound = errors.New("versionstore: version not found")

// Ptr locates one version entry: (version page, slot). The zero Ptr is nil.
type Ptr struct {
	Page page.ID
	Slot uint32
}

// IsNil reports whether the pointer is the nil pointer.
func (p Ptr) IsNil() bool { return p.Page == page.InvalidID }

// Version is one row version: the payload as of CommitTS, with Prev
// pointing at the next-older version. A tombstone records a deletion.
// This same encoding is used for the newest version inside B-tree leaves.
type Version struct {
	CommitTS  uint64
	Prev      Ptr
	Tombstone bool
	Payload   []byte
}

// Encode serializes the version.
//
// Layout: flags u8 | commitTS u64 | prevPage u64 | prevSlot u32 | payload
func (v *Version) Encode() []byte {
	buf := make([]byte, 0, 21+len(v.Payload))
	var flags byte
	if v.Tombstone {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, v.CommitTS)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Prev.Page))
	buf = binary.LittleEndian.AppendUint32(buf, v.Prev.Slot)
	return append(buf, v.Payload...)
}

// Decode parses a version produced by Encode.
func Decode(buf []byte) (*Version, error) {
	if len(buf) < 21 {
		return nil, fmt.Errorf("versionstore: version blob of %d bytes", len(buf))
	}
	v := &Version{
		Tombstone: buf[0]&1 != 0,
		CommitTS:  binary.LittleEndian.Uint64(buf[1:9]),
		Prev: Ptr{
			Page: page.ID(binary.LittleEndian.Uint64(buf[9:17])),
			Slot: binary.LittleEndian.Uint32(buf[17:21]),
		},
	}
	if len(buf) > 21 {
		v.Payload = append([]byte(nil), buf[21:]...)
	}
	return v, nil
}

func slotKey(slot uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], slot)
	return b[:]
}

// Store is one database's version store. The primary appends; every node
// reads. Reads go through the same Pager as B-tree pages, so on replicas
// they transparently trigger GetPage@LSN fetches.
type Store struct {
	pager btree.Pager
	log   wal.Logger

	mu        sync.Mutex
	cur       page.ID // current append page; InvalidID before first append
	curSlots  uint32
	curSize   int
	watermark uint64
	pages     int // version pages allocated by this incarnation

	// OnNewPage, if set, is called after a fresh version page becomes
	// current, so the engine can persist the pointer in its catalog.
	OnNewPage func(id page.ID)
}

// New creates a store handle. cur is the current append page recorded in
// the catalog (InvalidID for a fresh database); its fill state is recovered
// from the page itself.
func New(pager btree.Pager, log wal.Logger, cur page.ID) (*Store, error) {
	s := &Store{pager: pager, log: log, cur: cur}
	if cur != page.InvalidID {
		pg, err := pager.Read(cur)
		if err != nil {
			return nil, fmt.Errorf("versionstore: recovering append page: %w", err)
		}
		count, err := btree.CellCount(pg)
		if err != nil {
			return nil, err
		}
		size, err := btree.PayloadSize(pg)
		if err != nil {
			return nil, err
		}
		s.curSlots = uint32(count)
		s.curSize = size
	}
	return s, nil
}

// CurrentPage reports the current append page (for catalog persistence).
func (s *Store) CurrentPage() page.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// PagesAllocated reports how many version pages this incarnation allocated.
func (s *Store) PagesAllocated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Append durably adds a version entry (primary only; caller holds the
// engine's single-writer lock) and returns its pointer.
func (s *Store) Append(txn uint64, v *Version) (Ptr, error) {
	enc := v.Encode()
	s.mu.Lock()
	defer s.mu.Unlock()
	need := btree.CellOverhead + 4 + len(enc)
	if s.cur == page.InvalidID || s.curSize+need > page.MaxData {
		if err := s.newPageLocked(txn); err != nil {
			return Ptr{}, err
		}
	}
	slot := s.curSlots
	rec := &wal.Record{
		Txn: txn, Kind: wal.KindCellPut, Page: s.cur,
		PageType: page.TypeVersion, Key: slotKey(slot), Value: enc,
	}
	s.log.Append(rec)
	pg, err := s.pager.Read(s.cur)
	if err != nil {
		return Ptr{}, err
	}
	if _, err := btree.Apply(pg, rec); err != nil {
		return Ptr{}, err
	}
	if err := s.pager.Write(pg); err != nil {
		return Ptr{}, err
	}
	s.curSlots++
	s.curSize += need
	return Ptr{Page: s.cur, Slot: slot}, nil
}

// newPageLocked allocates and formats a fresh version page.
func (s *Store) newPageLocked(txn uint64) error {
	pg, err := s.pager.Allocate(page.TypeVersion)
	if err != nil {
		return err
	}
	payload := btree.EmptyNodePayload()
	rec := &wal.Record{
		Txn: txn, Kind: wal.KindPageImage, Page: pg.ID,
		PageType: page.TypeVersion, Value: payload,
	}
	lsn := s.log.Append(rec)
	pg.Type = page.TypeVersion
	pg.Data = payload
	pg.LSN = lsn
	if err := s.pager.Write(pg); err != nil {
		return err
	}
	s.cur = pg.ID
	s.curSlots = 0
	s.curSize = len(payload)
	s.pages++
	if s.OnNewPage != nil {
		s.OnNewPage(pg.ID)
	}
	return nil
}

// Get fetches one version entry.
func (s *Store) Get(ptr Ptr) (*Version, error) {
	if ptr.IsNil() {
		return nil, fmt.Errorf("%w: nil pointer", ErrNotFound)
	}
	pg, err := s.pager.Read(ptr.Page)
	if err != nil {
		return nil, err
	}
	val, found, err := btree.LookupCell(pg, slotKey(ptr.Slot))
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: page %d slot %d", ErrNotFound, ptr.Page, ptr.Slot)
	}
	return Decode(val)
}

// Visible walks the chain starting at head (the newest version, typically
// decoded from a B-tree leaf row) and returns the version visible at
// snapshot ts, or nil if the row did not exist at ts.
func (s *Store) Visible(head *Version, ts uint64) (*Version, error) {
	v := head
	for {
		if v.CommitTS <= ts {
			if v.Tombstone {
				return nil, nil
			}
			return v, nil
		}
		if v.Prev.IsNil() {
			return nil, nil // row did not exist at ts
		}
		if wm := s.Watermark(); ts < wm {
			return nil, fmt.Errorf("%w: snapshot %d below watermark %d", ErrTruncated, ts, wm)
		}
		var err error
		v, err = s.Get(v.Prev)
		if err != nil {
			return nil, err
		}
	}
}

// SetWatermark advances the truncation watermark: snapshots older than ts
// may no longer resolve versions. The physical pages are reclaimed lazily.
func (s *Store) SetWatermark(ts uint64) {
	s.mu.Lock()
	if ts > s.watermark {
		s.watermark = ts
	}
	s.mu.Unlock()
}

// Watermark reports the truncation watermark.
func (s *Store) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}
