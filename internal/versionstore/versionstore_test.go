package versionstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/wal"
)

type testPager struct {
	*fcb.MemFile
	next atomic.Uint64
}

func newTestPager() *testPager {
	p := &testPager{MemFile: fcb.NewMemFile()}
	p.next.Store(1)
	return p
}

func (p *testPager) Allocate(t page.Type) (*page.Page, error) {
	return page.New(page.ID(p.next.Add(1)), t), nil
}

func newStore(t *testing.T) (*Store, *testPager, *wal.MemLog) {
	t.Helper()
	pager := newTestPager()
	log := wal.NewMemLog()
	s, err := New(pager, log, page.InvalidID)
	if err != nil {
		t.Fatal(err)
	}
	return s, pager, log
}

func TestVersionCodecRoundTrip(t *testing.T) {
	v := &Version{CommitTS: 42, Prev: Ptr{Page: 7, Slot: 3},
		Tombstone: true, Payload: []byte("old row")}
	got, err := Decode(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.CommitTS != 42 || got.Prev != (Ptr{7, 3}) || !got.Tombstone ||
		!bytes.Equal(got.Payload, v.Payload) {
		t.Fatalf("got %+v", got)
	}
}

func TestVersionCodecProperty(t *testing.T) {
	f := func(ts uint64, pg uint64, slot uint32, tomb bool, payload []byte) bool {
		v := &Version{CommitTS: ts, Prev: Ptr{Page: page.ID(pg), Slot: slot},
			Tombstone: tomb}
		if len(payload) > 0 {
			v.Payload = payload
		}
		got, err := Decode(v.Encode())
		if err != nil {
			return false
		}
		return got.CommitTS == v.CommitTS && got.Prev == v.Prev &&
			got.Tombstone == v.Tombstone && bytes.Equal(got.Payload, v.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsShortBlob(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("short blob accepted")
	}
}

func TestAppendAndGet(t *testing.T) {
	s, _, _ := newStore(t)
	ptr, err := s.Append(1, &Version{CommitTS: 10, Payload: []byte("v1")})
	if err != nil {
		t.Fatal(err)
	}
	if ptr.IsNil() {
		t.Fatal("nil pointer returned")
	}
	got, err := s.Get(ptr)
	if err != nil || got.CommitTS != 10 || string(got.Payload) != "v1" {
		t.Fatalf("get = %+v %v", got, err)
	}
}

func TestGetNilAndDanglingPtr(t *testing.T) {
	s, _, _ := newStore(t)
	if _, err := s.Get(Ptr{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("nil ptr err = %v", err)
	}
	ptr, _ := s.Append(1, &Version{CommitTS: 1})
	if _, err := s.Get(Ptr{Page: ptr.Page, Slot: 999}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dangling slot err = %v", err)
	}
}

func TestChainWalkVisibility(t *testing.T) {
	s, _, _ := newStore(t)
	// Build a chain: v@10 -> v@20 -> v@30 (newest at head).
	p10, _ := s.Append(1, &Version{CommitTS: 10, Payload: []byte("ten")})
	p20, _ := s.Append(1, &Version{CommitTS: 20, Prev: p10, Payload: []byte("twenty")})
	head := &Version{CommitTS: 30, Prev: p20, Payload: []byte("thirty")}

	cases := []struct {
		ts   uint64
		want string
		nil_ bool
	}{
		{5, "", true}, // before first version
		{10, "ten", false},
		{15, "ten", false},
		{20, "twenty", false},
		{29, "twenty", false},
		{30, "thirty", false},
		{100, "thirty", false},
	}
	for _, c := range cases {
		got, err := s.Visible(head, c.ts)
		if err != nil {
			t.Fatalf("ts %d: %v", c.ts, err)
		}
		if c.nil_ {
			if got != nil {
				t.Fatalf("ts %d: got %+v, want nil", c.ts, got)
			}
			continue
		}
		if got == nil || string(got.Payload) != c.want {
			t.Fatalf("ts %d: got %+v, want %q", c.ts, got, c.want)
		}
	}
}

func TestTombstoneVisibility(t *testing.T) {
	s, _, _ := newStore(t)
	p10, _ := s.Append(1, &Version{CommitTS: 10, Payload: []byte("alive")})
	head := &Version{CommitTS: 20, Prev: p10, Tombstone: true}
	// At ts 25 the row is deleted.
	got, err := s.Visible(head, 25)
	if err != nil || got != nil {
		t.Fatalf("deleted row visible: %+v %v", got, err)
	}
	// At ts 15 the old version shows through.
	got, err = s.Visible(head, 15)
	if err != nil || got == nil || string(got.Payload) != "alive" {
		t.Fatalf("pre-delete version: %+v %v", got, err)
	}
}

func TestPageRollover(t *testing.T) {
	s, pager, _ := newStore(t)
	payload := bytes.Repeat([]byte{9}, 1000)
	var ptrs []Ptr
	for i := 0; i < 40; i++ { // ~40 KB of versions: needs several pages
		ptr, err := s.Append(1, &Version{CommitTS: uint64(i + 1), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	if s.PagesAllocated() < 4 {
		t.Fatalf("pages = %d, want rollover", s.PagesAllocated())
	}
	for i, ptr := range ptrs {
		v, err := s.Get(ptr)
		if err != nil || v.CommitTS != uint64(i+1) {
			t.Fatalf("ptr %d: %+v %v", i, v, err)
		}
	}
	_ = pager
}

func TestOnNewPageCallback(t *testing.T) {
	s, _, _ := newStore(t)
	var pages []page.ID
	s.OnNewPage = func(id page.ID) { pages = append(pages, id) }
	_, _ = s.Append(1, &Version{CommitTS: 1, Payload: []byte("x")})
	if len(pages) != 1 || pages[0] != s.CurrentPage() {
		t.Fatalf("callback pages = %v, current = %d", pages, s.CurrentPage())
	}
}

func TestRecoverAppendStateFromPage(t *testing.T) {
	s, pager, log := newStore(t)
	for i := 0; i < 5; i++ {
		_, _ = s.Append(1, &Version{CommitTS: uint64(i), Payload: []byte("x")})
	}
	cur := s.CurrentPage()
	// New incarnation (e.g. failover) resumes from the catalog pointer.
	s2, err := New(pager, log, cur)
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := s2.Append(9, &Version{CommitTS: 99, Payload: []byte("post")})
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Page != cur || ptr.Slot != 5 {
		t.Fatalf("resumed at %+v, want page %d slot 5", ptr, cur)
	}
}

func TestWatermarkBlocksAncientSnapshots(t *testing.T) {
	s, _, _ := newStore(t)
	p1, _ := s.Append(1, &Version{CommitTS: 10, Payload: []byte("old")})
	head := &Version{CommitTS: 50, Prev: p1, Payload: []byte("new")}
	s.SetWatermark(40)
	// Snapshot 20 < watermark and needs the chain: must fail loudly.
	if _, err := s.Visible(head, 20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Snapshot 60 resolves at head without touching the chain.
	v, err := s.Visible(head, 60)
	if err != nil || string(v.Payload) != "new" {
		t.Fatalf("fresh snapshot: %+v %v", v, err)
	}
	// Watermark never regresses.
	s.SetWatermark(5)
	if s.Watermark() != 40 {
		t.Fatalf("watermark regressed to %d", s.Watermark())
	}
}

// TestReplicationThroughLog verifies version pages converge on a replica by
// ordinary redo, which is the §3.1 requirement (shared version store).
func TestReplicationThroughLog(t *testing.T) {
	s, _, log := newStore(t)
	p1, _ := s.Append(1, &Version{CommitTS: 10, Payload: []byte("gen1")})
	_, _ = s.Append(1, &Version{CommitTS: 20, Prev: p1, Payload: []byte("gen2")})

	// Replica applies the log into its own page file.
	replicaPages := newTestPager()
	for _, rec := range log.Records() {
		if !rec.IsPageOp() {
			continue
		}
		pg, err := replicaPages.Read(rec.Page)
		if errors.Is(err, fcb.ErrNotFound) {
			pg = page.New(rec.Page, rec.PageType)
		} else if err != nil {
			t.Fatal(err)
		}
		if _, err := applyRecord(pg, rec); err != nil {
			t.Fatal(err)
		}
		_ = replicaPages.Write(pg)
	}
	rs, err := New(replicaPages, wal.NewMemLog(), s.CurrentPage())
	if err != nil {
		t.Fatal(err)
	}
	v, err := rs.Get(p1)
	if err != nil || string(v.Payload) != "gen1" {
		t.Fatalf("replica get: %+v %v", v, err)
	}
}

func TestManyVersionsStress(t *testing.T) {
	s, _, _ := newStore(t)
	prev := Ptr{}
	for i := 1; i <= 2000; i++ {
		ptr, err := s.Append(1, &Version{
			CommitTS: uint64(i), Prev: prev,
			Payload: []byte(fmt.Sprintf("gen-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		prev = ptr
	}
	head, err := s.Get(prev)
	if err != nil {
		t.Fatal(err)
	}
	// Walk to an early snapshot through the full chain.
	v, err := s.Visible(head, 3)
	if err != nil || v == nil || string(v.Payload) != "gen-3" {
		t.Fatalf("deep walk: %+v %v", v, err)
	}
}
