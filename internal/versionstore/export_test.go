package versionstore

import (
	"socrates/internal/btree"
	"socrates/internal/page"
	"socrates/internal/wal"
)

// applyRecord lets tests replay redo through the same path replicas use.
func applyRecord(pg *page.Page, rec *wal.Record) (bool, error) {
	return btree.Apply(pg, rec)
}
