package btree

import (
	"fmt"

	"socrates/internal/page"
	"socrates/internal/wal"
)

// Apply performs redo of one page-mutation record against the page,
// in place. It is the single convergence point for secondaries, page
// servers, and restart recovery.
//
// Redo is idempotent: records at or below the page's LSN are skipped, so a
// consumer may safely replay overlapping log ranges. Apply returns whether
// the record mutated the page.
func Apply(pg *page.Page, rec *wal.Record) (bool, error) {
	if !rec.IsPageOp() {
		return false, fmt.Errorf("btree: record %v is not a page op", rec.Kind)
	}
	if rec.Page != pg.ID {
		return false, fmt.Errorf("btree: record for page %d applied to page %d", rec.Page, pg.ID)
	}
	if rec.LSN.AtMost(pg.LSN) {
		return false, nil // already reflected
	}
	switch rec.Kind {
	case wal.KindPageImage:
		pg.Type = rec.PageType
		pg.Data = append([]byte(nil), rec.Value...)
	case wal.KindCellPut:
		n, err := decodeNode(pg.Data)
		if err != nil {
			return false, fmt.Errorf("btree: redo cell-put on page %d: %w", pg.ID, err)
		}
		n.put(append([]byte(nil), rec.Key...), append([]byte(nil), rec.Value...))
		data, err := n.encode()
		if err != nil {
			return false, fmt.Errorf("btree: redo cell-put on page %d: %w", pg.ID, err)
		}
		pg.Data = data
	case wal.KindCellDelete:
		n, err := decodeNode(pg.Data)
		if err != nil {
			return false, fmt.Errorf("btree: redo cell-delete on page %d: %w", pg.ID, err)
		}
		n.remove(rec.Key)
		data, err := n.encode()
		if err != nil {
			return false, fmt.Errorf("btree: redo cell-delete on page %d: %w", pg.ID, err)
		}
		pg.Data = data
	default:
		return false, fmt.Errorf("btree: unknown page op %v", rec.Kind)
	}
	pg.LSN = rec.LSN
	return true, nil
}

// NewFormatted builds a page directly from a page-image record — used when
// a consumer applies a record for a page it has never seen (e.g. a page
// server materializing a freshly allocated page).
func NewFormatted(rec *wal.Record) (*page.Page, error) {
	if rec.Kind != wal.KindPageImage {
		return nil, fmt.Errorf("btree: cannot materialize page from %v record", rec.Kind)
	}
	return &page.Page{
		ID:   rec.Page,
		LSN:  rec.LSN,
		Type: rec.PageType,
		Data: append([]byte(nil), rec.Value...),
	}, nil
}
