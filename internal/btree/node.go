// Package btree implements the page-oriented B-tree that stores every table
// (and the version store) in the Socrates reproduction. All mutations are
// physiologically logged: row-level changes emit cell-put/cell-delete
// records and structural changes (formats, splits) emit whole-page images,
// all through a wal.Logger. Apply is the single redo entry point — page
// servers, secondaries, and restart recovery all converge page state by
// replaying the same records the primary emitted.
//
// Every node carries fence keys (the half-open key interval it covers).
// Traversals validate fences on each parent→child step; a violation means
// the reader mixed pages from different points in log time — exactly the
// B-tree race of §4.5 — and surfaces as ErrInconsistent so the caller can
// wait for log apply to catch up and retry.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"socrates/internal/page"
)

// ErrInconsistent reports a traversal that observed pages from different
// points in log time (fence-key violation). Retry after log apply advances.
var ErrInconsistent = errors.New("btree: inconsistent traversal, retry after log apply")

// ErrCorrupt reports an undecodable node payload.
var ErrCorrupt = errors.New("btree: corrupt node")

// cell is one key→value entry in a node. In leaves the value is the row
// payload; in internal nodes it is the 8-byte child page ID.
type cell struct {
	key   []byte
	value []byte
}

// node is the decoded form of a B-tree page payload.
type node struct {
	lo, hi []byte // fence keys: node covers [lo, hi); empty hi = +infinity
	cells  []cell // sorted by key
}

// hiUnbounded reports whether the node's range extends to +infinity.
func (n *node) hiUnbounded() bool { return len(n.hi) == 0 }

// covers reports whether key falls inside the node's fence interval.
// An empty lo fence means -infinity.
func (n *node) covers(key []byte) bool {
	if len(n.lo) > 0 && bytes.Compare(key, n.lo) < 0 {
		return false
	}
	if !n.hiUnbounded() && bytes.Compare(key, n.hi) >= 0 {
		return false
	}
	return true
}

// encodedSize reports the payload size encode will produce.
func (n *node) encodedSize() int {
	size := 2 + len(n.lo) + 2 + len(n.hi) + 2
	for _, c := range n.cells {
		size += 2 + len(c.key) + 4 + len(c.value)
	}
	return size
}

// encode serializes the node as a page payload.
//
// Layout: loLen u16 | lo | hiLen u16 | hi | count u16 | cells...
// cell:   klen u16 | key | vlen u32 | value
func (n *node) encode() ([]byte, error) {
	size := n.encodedSize()
	if size > page.MaxData {
		return nil, fmt.Errorf("btree: node of %d bytes exceeds page capacity", size)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.lo)))
	buf = append(buf, n.lo...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.hi)))
	buf = append(buf, n.hi...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.cells)))
	for _, c := range n.cells {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.key)))
		buf = append(buf, c.key...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.value)))
		buf = append(buf, c.value...)
	}
	return buf, nil
}

// decodeNode parses a page payload into a node.
func decodeNode(data []byte) (*node, error) {
	n := &node{}
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	pos := 0
	loLen := int(binary.LittleEndian.Uint16(data[pos : pos+2]))
	pos += 2
	if len(data) < pos+loLen+2 {
		return nil, fmt.Errorf("%w: truncated lo fence", ErrCorrupt)
	}
	if loLen > 0 {
		n.lo = append([]byte(nil), data[pos:pos+loLen]...)
	}
	pos += loLen
	hiLen := int(binary.LittleEndian.Uint16(data[pos : pos+2]))
	pos += 2
	if len(data) < pos+hiLen+2 {
		return nil, fmt.Errorf("%w: truncated hi fence", ErrCorrupt)
	}
	if hiLen > 0 {
		n.hi = append([]byte(nil), data[pos:pos+hiLen]...)
	}
	pos += hiLen
	count := int(binary.LittleEndian.Uint16(data[pos : pos+2]))
	pos += 2
	n.cells = make([]cell, 0, count)
	for i := 0; i < count; i++ {
		if len(data) < pos+2 {
			return nil, fmt.Errorf("%w: truncated cell %d", ErrCorrupt, i)
		}
		klen := int(binary.LittleEndian.Uint16(data[pos : pos+2]))
		pos += 2
		if len(data) < pos+klen+4 {
			return nil, fmt.Errorf("%w: truncated cell key %d", ErrCorrupt, i)
		}
		key := append([]byte(nil), data[pos:pos+klen]...)
		pos += klen
		vlen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if len(data) < pos+vlen {
			return nil, fmt.Errorf("%w: truncated cell value %d", ErrCorrupt, i)
		}
		var val []byte
		if vlen > 0 {
			val = append([]byte(nil), data[pos:pos+vlen]...)
		}
		pos += vlen
		n.cells = append(n.cells, cell{key: key, value: val})
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-pos)
	}
	return n, nil
}

// find locates key: (index, true) if present, else (insertion index, false).
func (n *node) find(key []byte) (int, bool) {
	i := sort.Search(len(n.cells), func(i int) bool {
		return bytes.Compare(n.cells[i].key, key) >= 0
	})
	if i < len(n.cells) && bytes.Equal(n.cells[i].key, key) {
		return i, true
	}
	return i, false
}

// put upserts key→value, keeping cells sorted.
func (n *node) put(key, value []byte) {
	i, found := n.find(key)
	if found {
		n.cells[i].value = value
		return
	}
	n.cells = append(n.cells, cell{})
	copy(n.cells[i+1:], n.cells[i:])
	n.cells[i] = cell{key: key, value: value}
}

// remove deletes key, reporting whether it was present.
func (n *node) remove(key []byte) bool {
	i, found := n.find(key)
	if !found {
		return false
	}
	n.cells = append(n.cells[:i], n.cells[i+1:]...)
	return true
}

// childFor returns the child page an internal node routes key to. The
// first cell of an internal node always has an empty key (covers -inf).
func (n *node) childFor(key []byte) (page.ID, error) {
	if len(n.cells) == 0 {
		return page.InvalidID, fmt.Errorf("%w: empty internal node", ErrCorrupt)
	}
	// Last cell whose key <= search key.
	i := sort.Search(len(n.cells), func(i int) bool {
		return bytes.Compare(n.cells[i].key, key) > 0
	})
	if i == 0 {
		return page.InvalidID, fmt.Errorf("%w: key below first separator", ErrCorrupt)
	}
	return decodeChild(n.cells[i-1].value)
}

func encodeChild(id page.ID) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(id))
	return b
}

func decodeChild(v []byte) (page.ID, error) {
	if len(v) != 8 {
		return page.InvalidID, fmt.Errorf("%w: child pointer of %d bytes", ErrCorrupt, len(v))
	}
	return page.ID(binary.LittleEndian.Uint64(v)), nil
}
