package btree

import (
	"bytes"
	"errors"
	"fmt"

	"socrates/internal/page"
	"socrates/internal/wal"
)

// MaxCell bounds a single key+value entry so that a split always succeeds.
const MaxCell = 2048

// ErrTooLarge reports a key+value pair exceeding MaxCell.
var ErrTooLarge = errors.New("btree: entry exceeds MaxCell")

// Pager is the tree's view of page storage plus allocation. On the primary
// it is backed by the buffer pool and space manager; log apply and replicas
// never call Allocate (allocation arrives as page-image records).
type Pager interface {
	Read(id page.ID) (*page.Page, error)
	Write(pg *page.Page) error
	// Allocate returns a fresh, empty page of the given type with a
	// never-used ID. The caller formats and logs it.
	Allocate(t page.Type) (*page.Page, error)
}

// Tree is a B-tree rooted at a fixed page. The root page ID never changes
// (root splits rewrite the root in place), so catalogs can reference it.
//
// All mutating methods must be externally serialized (the engine's commit
// path holds a single writer lock); reads may run concurrently with log
// apply on replicas and report ErrInconsistent when they race a split.
type Tree struct {
	pager Pager
	log   wal.Logger
	root  page.ID
}

// Create allocates and formats an empty tree, returning it. The format is
// logged (as a page image) under the given txn.
func Create(pager Pager, log wal.Logger, txn uint64) (*Tree, error) {
	pg, err := pager.Allocate(page.TypeLeaf)
	if err != nil {
		return nil, err
	}
	t := &Tree{pager: pager, log: log, root: pg.ID}
	if err := t.writeImage(txn, pg, &node{}, page.TypeLeaf); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree rooted at root.
func Open(pager Pager, log wal.Logger, root page.ID) *Tree {
	return &Tree{pager: pager, log: log, root: root}
}

// Root reports the root page ID.
func (t *Tree) Root() page.ID { return t.root }

// writeImage logs a whole-page image and installs it.
func (t *Tree) writeImage(txn uint64, pg *page.Page, n *node, ty page.Type) error {
	data, err := n.encode()
	if err != nil {
		return err
	}
	pg.Type = ty
	pg.Data = data
	lsn := t.log.Append(&wal.Record{
		Txn: txn, Kind: wal.KindPageImage, Page: pg.ID, PageType: ty, Value: data,
	})
	pg.LSN = lsn
	return t.pager.Write(pg)
}

// writeCellPut logs a single cell upsert and installs the updated node.
func (t *Tree) writeCellPut(txn uint64, pg *page.Page, n *node, key, value []byte) error {
	data, err := n.encode()
	if err != nil {
		return err
	}
	pg.Data = data
	lsn := t.log.Append(&wal.Record{
		Txn: txn, Kind: wal.KindCellPut, Page: pg.ID, PageType: pg.Type,
		Key: key, Value: value,
	})
	pg.LSN = lsn
	return t.pager.Write(pg)
}

// writeCellDelete logs a cell removal and installs the updated node.
func (t *Tree) writeCellDelete(txn uint64, pg *page.Page, n *node, key []byte) error {
	data, err := n.encode()
	if err != nil {
		return err
	}
	pg.Data = data
	lsn := t.log.Append(&wal.Record{
		Txn: txn, Kind: wal.KindCellDelete, Page: pg.ID, PageType: pg.Type, Key: key,
	})
	pg.LSN = lsn
	return t.pager.Write(pg)
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		pg, err := t.pager.Read(id)
		if err != nil {
			return nil, false, err
		}
		n, err := decodeNode(pg.Data)
		if err != nil {
			return nil, false, err
		}
		if !n.covers(key) {
			return nil, false, fmt.Errorf("%w: page %d does not cover key", ErrInconsistent, id)
		}
		if pg.Type == page.TypeInternal {
			id, err = n.childFor(key)
			if err != nil {
				return nil, false, err
			}
			continue
		}
		i, found := n.find(key)
		if !found {
			return nil, false, nil
		}
		return append([]byte(nil), n.cells[i].value...), true, nil
	}
}

// splitResult propagates a child split up the insertion path.
type splitResult struct {
	key   []byte  // separator: first key of the right sibling
	right page.ID // the new right sibling
}

// Put upserts key→value.
func (t *Tree) Put(txn uint64, key, value []byte) error {
	if len(key)+len(value) > MaxCell {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(key)+len(value))
	}
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	split, err := t.putRec(txn, t.root, key, value)
	if err != nil {
		return err
	}
	if split != nil {
		return t.growRoot(txn, split)
	}
	return nil
}

func (t *Tree) putRec(txn uint64, id page.ID, key, value []byte) (*splitResult, error) {
	pg, err := t.pager.Read(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(pg.Data)
	if err != nil {
		return nil, err
	}
	if pg.Type == page.TypeInternal {
		child, err := n.childFor(key)
		if err != nil {
			return nil, err
		}
		split, err := t.putRec(txn, child, key, value)
		if err != nil || split == nil {
			return nil, err
		}
		// Install the separator for the new right sibling.
		n.put(split.key, encodeChild(split.right))
		if n.encodedSize() <= page.MaxData {
			if err := t.writeCellPut(txn, pg, n, split.key, encodeChild(split.right)); err != nil {
				return nil, err
			}
			return nil, nil
		}
		return t.splitNode(txn, pg, n)
	}
	// Leaf.
	n.put(key, value)
	if n.encodedSize() <= page.MaxData {
		if err := t.writeCellPut(txn, pg, n, key, value); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return t.splitNode(txn, pg, n)
}

// splitNode splits an overflowing node (already containing the new entry)
// into the original page (left half) and a fresh right sibling, logging
// page images for both.
func (t *Tree) splitNode(txn uint64, pg *page.Page, n *node) (*splitResult, error) {
	mid := splitPoint(n)
	sep := append([]byte(nil), n.cells[mid].key...)

	right := &node{
		lo:    sep,
		hi:    n.hi,
		cells: append([]cell(nil), n.cells[mid:]...),
	}
	left := &node{
		lo:    n.lo,
		hi:    sep,
		cells: n.cells[:mid],
	}
	rpg, err := t.pager.Allocate(pg.Type)
	if err != nil {
		return nil, err
	}
	// Order matters for replicas applying a prefix: the right sibling must
	// exist before the (rewritten) left half stops covering its keys.
	if err := t.writeImage(txn, rpg, right, pg.Type); err != nil {
		return nil, err
	}
	if err := t.writeImage(txn, pg, left, pg.Type); err != nil {
		return nil, err
	}
	return &splitResult{key: sep, right: rpg.ID}, nil
}

// splitPoint picks the cell index where the byte sizes of the halves are
// closest to balanced, always leaving both halves nonempty.
func splitPoint(n *node) int {
	total := 0
	sizes := make([]int, len(n.cells))
	for i, c := range n.cells {
		sizes[i] = 2 + len(c.key) + 4 + len(c.value)
		total += sizes[i]
	}
	acc := 0
	for i, s := range sizes {
		acc += s
		if acc >= total/2 && i+1 < len(n.cells) {
			return i + 1
		}
	}
	return len(n.cells) / 2
}

// growRoot handles a root split: the root page ID stays stable, so the old
// root's (left-half) contents move to a fresh page and the root becomes an
// internal node routing to both halves.
func (t *Tree) growRoot(txn uint64, split *splitResult) error {
	rootPg, err := t.pager.Read(t.root)
	if err != nil {
		return err
	}
	leftNode, err := decodeNode(rootPg.Data)
	if err != nil {
		return err
	}
	leftPg, err := t.pager.Allocate(rootPg.Type)
	if err != nil {
		return err
	}
	if err := t.writeImage(txn, leftPg, leftNode, rootPg.Type); err != nil {
		return err
	}
	newRoot := &node{
		cells: []cell{
			{key: nil, value: encodeChild(leftPg.ID)},
			{key: split.key, value: encodeChild(split.right)},
		},
	}
	return t.writeImage(txn, rootPg, newRoot, page.TypeInternal)
}

// Delete removes key, reporting whether it was present. Underfull nodes are
// not merged; space is reclaimed when pages are rewritten by later splits.
func (t *Tree) Delete(txn uint64, key []byte) (bool, error) {
	id := t.root
	for {
		pg, err := t.pager.Read(id)
		if err != nil {
			return false, err
		}
		n, err := decodeNode(pg.Data)
		if err != nil {
			return false, err
		}
		if !n.covers(key) {
			return false, fmt.Errorf("%w: page %d does not cover key", ErrInconsistent, id)
		}
		if pg.Type == page.TypeInternal {
			id, err = n.childFor(key)
			if err != nil {
				return false, err
			}
			continue
		}
		if !n.remove(key) {
			return false, nil
		}
		if err := t.writeCellDelete(txn, pg, n, key); err != nil {
			return false, err
		}
		return true, nil
	}
}

// Scan streams entries with lo <= key < hi (nil hi = unbounded) in key
// order until fn returns false.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) error {
	_, err := t.scanRec(t.root, lo, hi, fn)
	return err
}

func (t *Tree) scanRec(id page.ID, lo, hi []byte, fn func(k, v []byte) bool) (bool, error) {
	pg, err := t.pager.Read(id)
	if err != nil {
		return false, err
	}
	n, err := decodeNode(pg.Data)
	if err != nil {
		return false, err
	}
	// Fence validation: the node must be able to contain the start of the
	// requested range (clipped to the node's own lo).
	start := lo
	if bytes.Compare(n.lo, start) > 0 {
		start = n.lo
	}
	if len(start) > 0 && !n.covers(start) {
		return false, fmt.Errorf("%w: page %d fence violation in scan", ErrInconsistent, id)
	}
	if pg.Type != page.TypeInternal {
		for _, c := range n.cells {
			if lo != nil && bytes.Compare(c.key, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(c.key, hi) >= 0 {
				return false, nil
			}
			if !fn(c.key, c.value) {
				return false, nil
			}
		}
		return true, nil
	}
	for i, c := range n.cells {
		// Child i covers [c.key, nextKey).
		var next []byte
		if i+1 < len(n.cells) {
			next = n.cells[i+1].key
		} else {
			next = n.hi
		}
		if hi != nil && len(c.key) > 0 && bytes.Compare(c.key, hi) >= 0 {
			return false, nil
		}
		if lo != nil && len(next) > 0 && bytes.Compare(next, lo) <= 0 {
			continue
		}
		child, err := decodeChild(c.value)
		if err != nil {
			return false, err
		}
		cont, err := t.scanRec(child, lo, hi, fn)
		if err != nil {
			return false, err
		}
		if !cont {
			return false, nil
		}
	}
	return true, nil
}

// Count returns the number of entries (a full scan).
func (t *Tree) Count() (int, error) {
	count := 0
	err := t.Scan(nil, nil, func([]byte, []byte) bool {
		count++
		return true
	})
	return count, err
}
