package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/wal"
)

// testPager backs a tree with a MemFile plus a trivial allocator.
type testPager struct {
	*fcb.MemFile
	next atomic.Uint64
}

func newTestPager() *testPager {
	p := &testPager{MemFile: fcb.NewMemFile()}
	p.next.Store(1)
	return p
}

func (p *testPager) Allocate(t page.Type) (*page.Page, error) {
	id := page.ID(p.next.Add(1))
	return page.New(id, t), nil
}

func newTree(t *testing.T) (*Tree, *testPager, *wal.MemLog) {
	t.Helper()
	pager := newTestPager()
	log := wal.NewMemLog()
	tree, err := Create(pager, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tree, pager, log
}

func TestEmptyTree(t *testing.T) {
	tree, _, _ := newTree(t)
	_, found, err := tree.Get([]byte("missing"))
	if err != nil || found {
		t.Fatalf("get on empty: %v %v", found, err)
	}
	n, err := tree.Count()
	if err != nil || n != 0 {
		t.Fatalf("count = %d %v", n, err)
	}
}

func TestPutGetSingle(t *testing.T) {
	tree, _, _ := newTree(t)
	if err := tree.Put(1, []byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tree.Get([]byte("key"))
	if err != nil || !found || string(v) != "value" {
		t.Fatalf("get = %q %v %v", v, found, err)
	}
}

func TestPutOverwrites(t *testing.T) {
	tree, _, _ := newTree(t)
	_ = tree.Put(1, []byte("k"), []byte("v1"))
	_ = tree.Put(2, []byte("k"), []byte("v2"))
	v, _, _ := tree.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
	if n, _ := tree.Count(); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestValidation(t *testing.T) {
	tree, _, _ := newTree(t)
	if err := tree.Put(1, nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	big := make([]byte, MaxCell+1)
	if err := tree.Put(1, []byte("k"), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized entry: %v", err)
	}
}

func TestDelete(t *testing.T) {
	tree, _, _ := newTree(t)
	_ = tree.Put(1, []byte("a"), []byte("1"))
	found, err := tree.Delete(1, []byte("a"))
	if err != nil || !found {
		t.Fatalf("delete = %v %v", found, err)
	}
	if _, ok, _ := tree.Get([]byte("a")); ok {
		t.Fatal("deleted key visible")
	}
	found, err = tree.Delete(1, []byte("a"))
	if err != nil || found {
		t.Fatalf("double delete = %v %v", found, err)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d-%s", i, bytes.Repeat([]byte{'x'}, 64))) }

func TestManyInsertsForceSplits(t *testing.T) {
	tree, pager, _ := newTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tree.Put(1, key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if pager.Len() < 10 {
		t.Fatalf("only %d pages allocated; splits did not happen", pager.Len())
	}
	for i := 0; i < n; i++ {
		v, found, err := tree.Get(key(i))
		if err != nil || !found || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d = %q %v %v", i, v, found, err)
		}
	}
	if c, _ := tree.Count(); c != n {
		t.Fatalf("count = %d, want %d", c, n)
	}
}

func TestRandomOrderInserts(t *testing.T) {
	tree, _, _ := newTree(t)
	r := rand.New(rand.NewSource(3))
	perm := r.Perm(1500)
	for _, i := range perm {
		if err := tree.Put(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Scan must return sorted keys.
	var prev []byte
	count := 0
	err := tree.Scan(nil, nil, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if err != nil || count != 1500 {
		t.Fatalf("scan count = %d err = %v", count, err)
	}
}

func TestRangeScan(t *testing.T) {
	tree, _, _ := newTree(t)
	for i := 0; i < 500; i++ {
		_ = tree.Put(1, key(i), val(i))
	}
	var got []string
	err := tree.Scan(key(100), key(110), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(key(100)) || got[9] != string(key(109)) {
		t.Fatalf("range scan = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tree, _, _ := newTree(t)
	for i := 0; i < 300; i++ {
		_ = tree.Put(1, key(i), val(i))
	}
	count := 0
	_ = tree.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRootIDStableAcrossSplits(t *testing.T) {
	tree, _, _ := newTree(t)
	root := tree.Root()
	for i := 0; i < 3000; i++ {
		_ = tree.Put(1, key(i), val(i))
	}
	if tree.Root() != root {
		t.Fatalf("root moved from %d to %d", root, tree.Root())
	}
}

func TestDeleteAfterSplits(t *testing.T) {
	tree, _, _ := newTree(t)
	for i := 0; i < 1000; i++ {
		_ = tree.Put(1, key(i), val(i))
	}
	for i := 0; i < 1000; i += 2 {
		found, err := tree.Delete(1, key(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	for i := 0; i < 1000; i++ {
		_, found, err := tree.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if found != (i%2 == 1) {
			t.Fatalf("key %d found=%v", i, found)
		}
	}
}

// TestReplicaConvergesViaApply is the core redo test: replaying the primary's
// log records against an empty page set reproduces the identical tree.
func TestReplicaConvergesViaApply(t *testing.T) {
	tree, pager, log := newTree(t)
	r := rand.New(rand.NewSource(7))
	live := map[string]string{}
	for i := 0; i < 3000; i++ {
		k, v := key(r.Intn(800)), val(i)
		if r.Intn(4) == 0 {
			_, _ = tree.Delete(1, k)
			delete(live, string(k))
		} else {
			_ = tree.Put(1, k, v)
			live[string(k)] = string(v)
		}
	}

	// Replica: apply every page record in LSN order.
	replica := fcb.NewMemFile()
	for _, rec := range log.Records() {
		if !rec.IsPageOp() {
			continue
		}
		pg, err := replica.Read(rec.Page)
		if errors.Is(err, fcb.ErrNotFound) {
			if rec.Kind != wal.KindPageImage {
				t.Fatalf("first record for page %d is %v, not an image", rec.Page, rec.Kind)
			}
			pg, err = NewFormatted(rec)
			if err != nil {
				t.Fatal(err)
			}
			if err := replica.Write(pg); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Apply(pg, rec); err != nil {
			t.Fatal(err)
		}
		if err := replica.Write(pg); err != nil {
			t.Fatal(err)
		}
	}

	// The replica tree (read-only) must match the primary's live map.
	rt := Open(readonlyPager{replica}, nil, tree.Root())
	count := 0
	err := rt.Scan(nil, nil, func(k, v []byte) bool {
		if live[string(k)] != string(v) {
			t.Fatalf("replica key %q = %q, want %q", k, v, live[string(k)])
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(live) {
		t.Fatalf("replica has %d keys, want %d", count, len(live))
	}
	// Spot-check page images byte-for-byte equality with the primary.
	pager.MemFile.Range(func(pg *page.Page) bool {
		rpg, err := replica.Read(pg.ID)
		if err != nil {
			t.Fatalf("replica missing page %d", pg.ID)
		}
		if rpg.LSN != pg.LSN || !bytes.Equal(rpg.Data, pg.Data) {
			t.Fatalf("page %d diverged: lsn %d vs %d", pg.ID, rpg.LSN, pg.LSN)
		}
		return true
	})
}

type readonlyPager struct{ *fcb.MemFile }

func (readonlyPager) Allocate(page.Type) (*page.Page, error) {
	return nil, errors.New("read-only pager")
}

func TestApplyIsIdempotent(t *testing.T) {
	tree, pager, log := newTree(t)
	for i := 0; i < 50; i++ {
		_ = tree.Put(1, key(i), val(i))
	}
	recs := log.Records()
	// Replay everything twice against a replica.
	replica := fcb.NewMemFile()
	replay := func() {
		for _, rec := range recs {
			if !rec.IsPageOp() {
				continue
			}
			pg, err := replica.Read(rec.Page)
			if errors.Is(err, fcb.ErrNotFound) {
				pg = page.New(rec.Page, rec.PageType)
			} else if err != nil {
				t.Fatal(err)
			}
			if _, err := Apply(pg, rec); err != nil {
				t.Fatal(err)
			}
			_ = replica.Write(pg)
		}
	}
	replay()
	replay()
	pager.MemFile.Range(func(pg *page.Page) bool {
		rpg, err := replica.Read(pg.ID)
		if err != nil || rpg.LSN != pg.LSN || !bytes.Equal(rpg.Data, pg.Data) {
			t.Fatalf("page %d diverged after double replay", pg.ID)
		}
		return true
	})
}

func TestApplyRejectsWrongPage(t *testing.T) {
	pg := page.New(1, page.TypeLeaf)
	rec := &wal.Record{LSN: 5, Kind: wal.KindCellPut, Page: 2, Key: []byte("k")}
	if _, err := Apply(pg, rec); err == nil {
		t.Fatal("cross-page apply accepted")
	}
	if _, err := Apply(pg, &wal.Record{LSN: 5, Kind: wal.KindTxnCommit, Page: 1}); err == nil {
		t.Fatal("non-page op accepted")
	}
}

func TestApplySkipsOldRecords(t *testing.T) {
	n := &node{}
	data, _ := n.encode()
	pg := &page.Page{ID: 1, LSN: 100, Type: page.TypeLeaf, Data: data}
	rec := &wal.Record{LSN: 50, Kind: wal.KindCellPut, Page: 1, Key: []byte("k"), Value: []byte("v")}
	applied, err := Apply(pg, rec)
	if err != nil || applied {
		t.Fatalf("old record applied: %v %v", applied, err)
	}
	if pg.LSN != 100 {
		t.Fatal("LSN moved backwards")
	}
}

// TestFenceViolationDetected reproduces the §4.5 race: a parent routes to a
// child that has since been split (its fence shrank), and the traversal
// must fail with ErrInconsistent rather than return a wrong answer.
func TestFenceViolationDetected(t *testing.T) {
	tree, pager, _ := newTree(t)
	for i := 0; i < 2000; i++ {
		_ = tree.Put(1, key(i), val(i))
	}
	// Find a leaf and artificially shrink its hi fence, simulating a page
	// "from the future" (post-split) while its parent is still "present".
	var victim *page.Page
	pager.MemFile.Range(func(pg *page.Page) bool {
		if pg.Type == page.TypeLeaf {
			n, _ := decodeNode(pg.Data)
			if len(n.cells) > 2 && len(n.hi) > 0 {
				victim = pg
				return false
			}
		}
		return true
	})
	if victim == nil {
		t.Skip("no bounded leaf found")
	}
	n, _ := decodeNode(victim.Data)
	// Keys >= mid are no longer covered by this leaf.
	mid := n.cells[len(n.cells)/2].key
	probe := n.cells[len(n.cells)-1].key
	n.hi = mid
	n.cells = n.cells[:len(n.cells)/2]
	data, _ := n.encode()
	victim.Data = data
	_ = pager.Write(victim)

	_, _, err := tree.Get(probe)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestNodeCodecProperty(t *testing.T) {
	f := func(lo, hi []byte, keys [][]byte) bool {
		if len(lo) > 200 {
			lo = lo[:200]
		}
		if len(hi) > 200 {
			hi = hi[:200]
		}
		n := &node{lo: lo, hi: hi}
		if len(n.lo) == 0 {
			n.lo = nil
		}
		if len(n.hi) == 0 {
			n.hi = nil
		}
		for i, k := range keys {
			if len(k) == 0 || len(k) > 100 {
				continue
			}
			n.put(k, []byte(fmt.Sprintf("v%d", i)))
		}
		if n.encodedSize() > page.MaxData {
			return true
		}
		data, err := n.encode()
		if err != nil {
			return false
		}
		got, err := decodeNode(data)
		if err != nil {
			return false
		}
		if !bytes.Equal(got.lo, n.lo) || !bytes.Equal(got.hi, n.hi) || len(got.cells) != len(n.cells) {
			return false
		}
		for i := range n.cells {
			if !bytes.Equal(got.cells[i].key, n.cells[i].key) ||
				!bytes.Equal(got.cells[i].value, n.cells[i].value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree matches a sorted map under random put/delete/get.
func TestTreeModelEquivalenceProperty(t *testing.T) {
	type op struct {
		Key    uint16
		Del    bool
		ValSeq uint8
	}
	f := func(ops []op) bool {
		pager := newTestPager()
		log := wal.NewMemLog()
		tree, err := Create(pager, log, 0)
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range ops {
			k := []byte(fmt.Sprintf("k%05d", o.Key%512))
			if o.Del {
				found, err := tree.Delete(0, k)
				if err != nil {
					return false
				}
				_, want := model[string(k)]
				if found != want {
					return false
				}
				delete(model, string(k))
			} else {
				v := bytes.Repeat([]byte{o.ValSeq}, 32)
				if tree.Put(0, k, v) != nil {
					return false
				}
				model[string(k)] = v
			}
		}
		// Full comparison via scan.
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		err = tree.Scan(nil, nil, func(k, v []byte) bool {
			if i >= len(keys) || keys[i] != string(k) || !bytes.Equal(model[keys[i]], v) {
				i = -1
				return false
			}
			i++
			return true
		})
		return err == nil && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValuesNearCellLimit(t *testing.T) {
	tree, _, _ := newTree(t)
	v := bytes.Repeat([]byte{7}, MaxCell-20)
	for i := 0; i < 40; i++ {
		if err := tree.Put(1, key(i), v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		got, found, err := tree.Get(key(i))
		if err != nil || !found || !bytes.Equal(got, v) {
			t.Fatalf("get %d failed", i)
		}
	}
}
