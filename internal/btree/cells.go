package btree

import (
	"socrates/internal/page"
)

// The helpers below expose the node codec to other packages that store
// cell-structured data in pages (the version store keeps version entries as
// cells keyed by slot number, so its pages replicate through the very same
// redo path as B-tree pages).

// LookupCell returns the value stored under key in the page's cell area.
func LookupCell(pg *page.Page, key []byte) ([]byte, bool, error) {
	n, err := decodeNode(pg.Data)
	if err != nil {
		return nil, false, err
	}
	i, found := n.find(key)
	if !found {
		return nil, false, nil
	}
	return append([]byte(nil), n.cells[i].value...), true, nil
}

// CellCount reports how many cells the page holds.
func CellCount(pg *page.Page) (int, error) {
	n, err := decodeNode(pg.Data)
	if err != nil {
		return 0, err
	}
	return len(n.cells), nil
}

// PayloadSize reports the encoded size of the page's cell area, used to
// decide when an append-structured page is full.
func PayloadSize(pg *page.Page) (int, error) {
	n, err := decodeNode(pg.Data)
	if err != nil {
		return 0, err
	}
	return n.encodedSize(), nil
}

// EmptyNodePayload returns the encoding of an empty, unbounded node — the
// initial payload for a freshly formatted cell-structured page.
func EmptyNodePayload() []byte {
	data, err := (&node{}).encode()
	if err != nil {
		panic("btree: empty node must encode: " + err.Error())
	}
	return data
}

// CellOverhead is the per-cell encoding overhead beyond key and value bytes.
const CellOverhead = 6

// RangeCells calls fn for each cell in key order until fn returns false.
func RangeCells(pg *page.Page, fn func(key, value []byte) bool) error {
	n, err := decodeNode(pg.Data)
	if err != nil {
		return err
	}
	for _, c := range n.cells {
		if !fn(c.key, c.value) {
			return nil
		}
	}
	return nil
}
