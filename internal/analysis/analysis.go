// Package analysis is the socrates-vet static-analysis suite: twelve
// domain-specific passes that encode the cross-tier invariants the paper's
// architecture depends on. Eight AST passes cover durability-before-ack,
// LSN monotonicity, lock discipline in the caches, no sleep-polling on
// hot paths, coherent atomics, the context-first tracing discipline, the
// observability plane's instrument-naming contract, and the netmux fabric
// discipline (no raw dials, deadlines at the wire). Four dataflow-aware
// passes — alloclint (allocation budgets in //socrates:hotpath-declared
// functions), deadlocklint (cross-package lock-ordering cycles, fabric
// calls under locks), leaklint (goroutine stop paths, resource
// closers on every exit path), and waitlint (blocking sites in the
// instrumented tiers must be wait-accounted or reviewed) — build on the
// package's CFG (cfg.go),
// generic forward dataflow solver (dataflow.go), and static call graph
// (callgraph.go). Everything is pure stdlib — go/ast + go/types — and
// runs over type-checked packages produced by the Loader.
//
// Intentional violations are annotated in source with directives of the form
//
//	//socrates:<name> <reason>
//
// placed on the offending line, the line above it, above any enclosing
// statement (so annotations stick to multi-line constructs), or (for
// function-scoped directives such as lsn-helper or sleep-ok) in the
// function's doc comment. A directive without a reason is itself a
// diagnostic: the allowlist is only useful if every entry says why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding from one pass.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Pass is one analyzer.
type Pass interface {
	Name() string
	Run(pkg *Package) []Diagnostic
}

// ProgramPass is a pass that needs the whole package set at once (e.g.
// deadlocklint's cross-package lock-ordering graph). Run applies it to
// the full set in one call instead of per package.
type ProgramPass interface {
	Pass
	RunProgram(pkgs []*Package) []Diagnostic
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("socrates/internal/xlog")
	Dir   string // directory on disk
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	directives map[*ast.File]map[int]directive // line -> directive, per file
}

// directive is one //socrates:<name> <reason> annotation.
type directive struct {
	name   string
	reason string
	pos    token.Pos
}

const directivePrefix = "//socrates:"

// parseDirective extracts a directive from one comment, if present.
func parseDirective(c *ast.Comment) (directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return directive{name: name, reason: reason, pos: c.Pos()}, true
}

// fileDirectives lazily builds the line -> directive map for a file.
func (p *Package) fileDirectives(f *ast.File) map[int]directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int]directive)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := make(map[int]directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				m[p.Fset.Position(c.Pos()).Line] = d
			}
		}
	}
	p.directives[f] = m
	return m
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// DirectiveAt reports whether a //socrates:<name> directive covers the node:
// on the node's line, on the line above it, on the first line of (or the
// line above) any enclosing statement, or in the doc comment of the
// enclosing function declaration.
//
// The enclosing-statement rule is what makes directives attach to
// multi-line constructs: a pass may flag an inner node of a composite
// literal or chained call whose position is several lines below the
// statement's first line, and the directive naturally sits above the
// statement, not above the buried subexpression.
func (p *Package) DirectiveAt(name string, node ast.Node) bool {
	f := p.fileOf(node.Pos())
	if f == nil {
		return false
	}
	m := p.fileDirectives(f)
	covers := func(line int) bool {
		if d, ok := m[line]; ok && d.name == name {
			return true
		}
		// Walk up through a contiguous stack of directive lines: several
		// passes may each require an annotation on the same statement
		// (alloc-ok stacked on ignore-err, say), and every directive in
		// the stack binds to it.
		for l := line - 1; ; l-- {
			d, ok := m[l]
			if !ok {
				return false
			}
			if d.name == name {
				return true
			}
		}
	}
	if covers(p.Fset.Position(node.Pos()).Line) {
		return true
	}
	for _, line := range p.enclosingStmtLines(f, node.Pos()) {
		if covers(line) {
			return true
		}
	}
	if fn := p.enclosingFunc(f, node.Pos()); fn != nil && fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if d, ok := parseDirective(c); ok && d.name == name {
				return true
			}
		}
	}
	return false
}

// enclosingStmtLines reports the starting lines of every statement
// enclosing pos (innermost to outermost), deduplicated.
func (p *Package) enclosingStmtLines(f *ast.File, pos token.Pos) []int {
	var lines []int
	seen := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || pos >= n.End() {
			return false // pos not inside; skip subtree
		}
		if _, ok := n.(ast.Stmt); ok {
			if line := p.Fset.Position(n.Pos()).Line; !seen[line] {
				seen[line] = true
				lines = append(lines, line)
			}
		}
		return true
	})
	return lines
}

// FuncDirective reports whether the function declaration carries the named
// directive in its doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parseDirective(c); ok && d.name == name {
			return true
		}
	}
	return false
}

// enclosingFunc finds the function declaration containing pos.
func (p *Package) enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}

// diag builds a Diagnostic at the node's position.
func (p *Package) diag(pass string, node ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(node.Pos()),
		Pass:    pass,
		Message: fmt.Sprintf(format, args...),
	}
}

// knownDirectives is every directive name a pass consumes; anything else
// spelled //socrates:... is a typo worth flagging.
var knownDirectives = map[string]bool{
	"ignore-err": true, // errlint: intentionally dropped error
	"lsn-helper": true, // lsnlint: function is an approved LSN-ordering helper
	"lsn-ok":     true, // lsnlint: one approved raw-LSN expression
	"lock-ok":    true, // locklint: reviewed lock-discipline exception
	"sleep-ok":   true, // sleeplint: intentional sleep (pacing, backoff, simulation)
	"atomic-ok":  true, // atomiclint: reviewed mixed access (e.g. pre-publication init)
	"ctx-ok":     true, // ctxlint: reviewed context-discipline exception
	"metric-ok":  true, // obslint: reviewed instrument-naming exception
	"nodeadline": true, // muxlint: reviewed unbounded-context fabric call
	"mux-ok":     true, // muxlint: reviewed raw-dial exception
	"hotpath":    true, // alloclint: function is a declared hot path with an allocation budget
	"alloc-ok":   true, // alloclint: reviewed allocation on a hot path (cold branch, amortized growth, ...)
	"leak-ok":    true, // leaklint: reviewed goroutine/resource lifetime exception
	"wait-ok":    true, // waitlint: reviewed benign wait (idle loop, cadence tick, accounted elsewhere)
}

// CheckDirectives validates every //socrates: annotation in the package:
// unknown names and missing reasons are diagnostics. It runs as an implicit
// sixth pass so the allowlist itself stays auditable.
func CheckDirectives(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				if !knownDirectives[d.name] {
					out = append(out, Diagnostic{
						Pos:     pkg.Fset.Position(d.pos),
						Pass:    "directive",
						Message: fmt.Sprintf("unknown directive //socrates:%s", d.name),
					})
					continue
				}
				if d.reason == "" {
					out = append(out, Diagnostic{
						Pos:     pkg.Fset.Position(d.pos),
						Pass:    "directive",
						Message: fmt.Sprintf("//socrates:%s needs a reason", d.name),
					})
				}
			}
		}
	}
	return out
}

// AllPasses returns the full suite in its default (repo) configuration.
func AllPasses() []Pass {
	return []Pass{
		DefaultErrlint(),
		NewLSNLint(),
		NewLockLint(),
		DefaultSleeplint(),
		NewAtomicLint(),
		DefaultCtxLint(),
		DefaultObsLint(),
		DefaultMuxLint(),
		NewAllocLint(),
		NewDeadlockLint(),
		NewLeakLint(),
		NewWaitLint(),
	}
}

// Run applies the passes (plus directive validation) to every package and
// returns the combined, position-sorted findings. ProgramPasses see the
// whole package set in one call; ordinary passes run per package.
func Run(pkgs []*Package, passes []Pass) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, CheckDirectives(pkg)...)
	}
	for _, pass := range passes {
		if pp, ok := pass.(ProgramPass); ok {
			out = append(out, pp.RunProgram(pkgs)...)
			continue
		}
		for _, pkg := range pkgs {
			out = append(out, pass.Run(pkg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out
}

// --- shared type helpers ---

// calleeObject resolves the called function/method object, or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// calleePkgPath reports the defining package path of the callee ("" for
// builtins and type conversions).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
