package analysis

// A cross-package call-graph approximation shared by the dataflow-aware
// passes. It is deliberately modest — exactly what deadlocklint needs and
// no more:
//
//   - nodes are *types.Func objects (functions and methods with bodies in
//     the analyzed package set);
//   - edges are static call sites: direct calls, method calls through a
//     concrete receiver, and method values. Calls through interfaces or
//     function values are NOT resolved (an over-approximation there would
//     drown the lock-ordering analysis in impossible edges), so the graph
//     under-approximates: derived facts like "f transitively acquires lock
//     L" can miss dynamic dispatch but never invent it. Passes built on it
//     therefore produce false negatives, not false positives — the right
//     failure mode for a lint gate.
//
// Because the Loader memoizes packages by import path, a function object
// seen from its defining package and from an importer are the same
// *types.Func, so edges line up across package boundaries without any
// name-based stitching.

import (
	"go/ast"
	"go/types"
)

// CallGraph maps each function in the analyzed package set to its body,
// package, and static callees.
type CallGraph struct {
	// Decls maps a function object to its declaration (body available).
	Decls map[*types.Func]*ast.FuncDecl
	// DeclPkg maps a function object to the Package holding its body.
	DeclPkg map[*types.Func]*Package
	// Callees maps caller → statically resolved callees (deduplicated).
	Callees map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the approximation over a package set.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		DeclPkg: make(map[*types.Func]*Package),
		Callees: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Decls[obj] = fn
				g.DeclPkg[obj] = pkg
				g.Callees[obj] = collectCallees(pkg, fn.Body)
			}
		}
	}
	return g
}

// collectCallees resolves the static callees of a body, including inside
// nested function literals (a closure's calls still happen on behalf of
// the enclosing function for reachability purposes — e.g. a goroutine
// launched while a lock is NOT held is the launcher's concern only for
// lock *ordering*, which deadlocklint handles separately by skipping
// GoStmt bodies during held-set tracking).
func collectCallees(pkg *Package, body ast.Node) []*types.Func {
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, ok := calleeObject(pkg.Info, call).(*types.Func); ok && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// Reaches computes the set of functions from which a function matching
// pred is transitively reachable — i.e. result[f] is true when f may
// (statically) end up calling a pred function. pred is consulted for
// every callee, including ones without bodies in the package set (stdlib
// and other leaves), which is how "calls into package X" predicates see
// through the module boundary.
func (g *CallGraph) Reaches(pred func(*types.Func) bool) map[*types.Func]bool {
	reaches := make(map[*types.Func]bool)
	// Fixpoint: iterate until no caller flips. The graph is small (one
	// module), so the naive loop is fine and avoids building a reverse
	// index.
	for changed := true; changed; {
		changed = false
		for caller, callees := range g.Callees {
			if reaches[caller] {
				continue
			}
			for _, callee := range callees {
				if pred(callee) || reaches[callee] {
					reaches[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return reaches
}
