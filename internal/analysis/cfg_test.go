package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps a statement list in a function and returns its body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGReachesExit(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight_line", "x := 1\n_ = x", true},
		{"forever", "for {\n}", false},
		{"forever_with_work", "x := 0\nfor {\nx++\n}", false},
		{"forever_then_dead_code", "for {\n}\nprintln(1)", false},
		{"loop_with_break", "for {\nbreak\n}", true},
		{"loop_with_cond", "for i := 0; i < 3; i++ {\n}", true},
		{"range_terminates", "xs := []int{1}\nfor range xs {\n}", true},
		{"select_case_returns", "for {\nselect {\ncase <-make(chan int):\nreturn\n}\n}", true},
		{"select_no_return", "for {\nselect {\ncase <-make(chan int):\nprintln(1)\n}\n}", false},
		{"if_both_return", "if true {\nreturn\n} else {\nreturn\n}", true},
		{"return_then_dead_forever", "return\nfor {\n}", true},
		{"labeled_break_out", "outer:\nfor {\nfor {\nbreak outer\n}\n}", true},
		{"goto_out_of_loop", "for {\ngoto done\n}\ndone:\nprintln(1)", true},
		{"switch_falls_through_to_exit", "switch 1 {\ncase 1:\nprintln(1)\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, tc.body))
			if got := cfg.ReachesExit(); got != tc.want {
				t.Fatalf("ReachesExit = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCFGCollectsDefers(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "defer println(1)\nif true {\ndefer println(2)\n}"))
	if len(cfg.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(cfg.Defers))
	}
}

// assignedVars is a toy flow problem: the set of variable names assigned
// so far, joined by union.
type assignedVars struct{}

func (assignedVars) Entry() Fact { return map[string]bool{} }

func (assignedVars) Transfer(n ast.Node, f Fact) Fact {
	set := f.(map[string]bool)
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	out := make(map[string]bool, len(set)+1)
	for k := range set {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id.Name] = true
		}
	}
	return out
}

func (assignedVars) Join(a, b Fact) Fact {
	as, bs := a.(map[string]bool), b.(map[string]bool)
	out := make(map[string]bool, len(as)+len(bs))
	for k := range as {
		out[k] = true
	}
	for k := range bs {
		out[k] = true
	}
	return out
}

func (assignedVars) Equal(a, b Fact) bool {
	as, bs := a.(map[string]bool), b.(map[string]bool)
	if len(as) != len(bs) {
		return false
	}
	for k := range as {
		if !bs[k] {
			return false
		}
	}
	return true
}

func TestSolveForwardJoinsBranches(t *testing.T) {
	body := parseBody(t, `
x := 1
if x > 0 {
	y := 2
	_ = y
} else {
	z := 3
	_ = z
}
`)
	cfg := BuildCFG(body)
	out := SolveForward(cfg, assignedVars{})
	exit := ExitFact(cfg, assignedVars{}, out)
	if exit == nil {
		t.Fatal("exit unreachable")
	}
	got := exit.(map[string]bool)
	for _, want := range []string{"x", "y", "z"} {
		if !got[want] {
			t.Fatalf("exit fact missing %q: %v", want, got)
		}
	}
}

func TestSolveForwardLoopFixpoint(t *testing.T) {
	body := parseBody(t, `
i := 0
for i < 10 {
	j := i
	_ = j
	i = i + 1
}
`)
	cfg := BuildCFG(body)
	out := SolveForward(cfg, assignedVars{})
	exit := ExitFact(cfg, assignedVars{}, out)
	got := exit.(map[string]bool)
	if !got["i"] || !got["j"] {
		t.Fatalf("loop facts did not converge: %v", got)
	}
}

func TestSolveForwardForeverLoopHasNilExit(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 1\nfor {\n_ = x\n}"))
	out := SolveForward(cfg, assignedVars{})
	if exit := ExitFact(cfg, assignedVars{}, out); exit != nil {
		t.Fatalf("want nil exit fact for forever loop, got %v", exit)
	}
}
