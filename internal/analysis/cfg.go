package analysis

// Control-flow graph construction: the shared skeleton under the
// dataflow-aware passes (alloclint's hot-path walks, leaklint's
// all-exit-paths resource checks, deadlocklint's held-set propagation).
//
// The model follows golang.org/x/tools/go/cfg in spirit but stays inside
// this package's pure-stdlib charter: a CFG is a set of basic blocks whose
// Nodes slices hold the straight-line work of the function in execution
// order. Control statements contribute their *evaluated parts* to the
// block in which they execute — an IfStmt contributes its Cond expression,
// a SwitchStmt its Tag, a RangeStmt itself (as the header) — while their
// bodies become successor blocks. Clients therefore never need to recurse
// into nested control flow when transferring facts across a block: every
// executed expression/statement appears in exactly one block's Nodes.
//
// Panics and runtime.Goexit are not modeled: an exit path in this CFG is a
// return or falling off the end of the function. Deferred calls are
// collected in CFG.Defers (they run on every exit path, in reverse order)
// and additionally appear as DeferStmt nodes in their registration block.

import (
	"go/ast"
	"go/token"
)

// CFGBlock is one basic block.
type CFGBlock struct {
	Index int
	// Nodes are the straight-line AST parts executed in this block, in
	// order: plain statements, condition expressions of enclosing control
	// statements, range/select/type-switch headers.
	Nodes []ast.Node
	Succs []*CFGBlock
	Preds []*CFGBlock
	// Kind labels the block's origin for debugging ("entry", "if.then",
	// "for.body", "select.case", ...).
	Kind string
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock // synthetic: every return and fall-off-the-end leads here
	Blocks []*CFGBlock
	// Defers are the DeferStmts of the function in registration order;
	// they execute on every exit path in reverse order.
	Defers []*ast.DeferStmt
}

// ReachesExit reports whether any path from the entry reaches the exit
// block — false for bodies that provably loop forever. This is a real
// reachability walk, not a predecessor count: dead-code blocks (after a
// `for {}`, after a return) are linked to the exit for navigability but
// are themselves unreachable from the entry.
func (c *CFG) ReachesExit() bool {
	seen := make(map[*CFGBlock]bool, len(c.Blocks))
	stack := []*CFGBlock{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == c.Exit {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

type cfgLoop struct {
	breakTo    *CFGBlock
	continueTo *CFGBlock
	label      string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *CFGBlock
	loops  []cfgLoop // innermost last; also covers switch/select break targets (continueTo nil)
	labels map[string]*CFGBlock
	gotos  []struct {
		from  *CFGBlock
		label string
	}
	// fallthroughTo is the next case block while building a switch body.
	fallthroughTo *CFGBlock
}

// BuildCFG constructs the CFG of a function body. The body may come from a
// FuncDecl or a FuncLit; nested function literals are NOT descended into
// (their bodies execute on their own schedule and get their own CFGs).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*CFGBlock),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	// Falling off the end of the body returns.
	b.link(b.cur, b.cfg.Exit)
	// Resolve pending gotos now that every label has a block.
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// link adds an edge a→z. Edges out of a detached (dead-code) block are
// still recorded so the block structure stays navigable, but a nil source
// is ignored.
func (b *cfgBuilder) link(a, z *CFGBlock) {
	if a == nil || z == nil {
		return
	}
	a.Succs = append(a.Succs, z)
	z.Preds = append(z.Preds, a)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall recognizes a call statement that never returns: the builtin
// panic, or os.Exit / log.Fatal-shaped terminators by name.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case pkg.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock("unreachable")

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.LabeledStmt:
		// The labeled statement gets its own block so gotos land on it.
		target := b.newBlock("label." + st.Label.Name)
		b.link(b.cur, target)
		b.cur = target
		b.labels[st.Label.Name] = target
		switch inner := st.Stmt.(type) {
		case *ast.ForStmt:
			b.forStmt(inner, st.Label.Name)
		case *ast.RangeStmt:
			b.rangeStmt(inner, st.Label.Name)
		case *ast.SwitchStmt:
			b.switchStmt(inner, st.Label.Name)
		case *ast.TypeSwitchStmt:
			b.typeSwitchStmt(inner, st.Label.Name)
		case *ast.SelectStmt:
			b.selectStmt(inner, st.Label.Name)
		default:
			b.stmt(st.Stmt)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, st.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		after := b.newBlock("if.after")
		b.link(cond, then)
		b.cur = then
		b.stmts(st.Body.List)
		b.link(b.cur, after)
		if st.Else != nil {
			els := b.newBlock("if.else")
			b.link(cond, els)
			b.cur = els
			b.stmt(st.Else)
			b.link(b.cur, after)
		} else {
			b.link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.forStmt(st, "")

	case *ast.RangeStmt:
		b.rangeStmt(st, "")

	case *ast.SwitchStmt:
		b.switchStmt(st, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(st, "")

	case *ast.SelectStmt:
		b.selectStmt(st, "")

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, st)
		b.cur.Nodes = append(b.cur.Nodes, st)

	default:
		// Straight-line statement (incl. ExprStmt, AssignStmt, GoStmt,
		// SendStmt, IncDecStmt, DeclStmt, EmptyStmt).
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicCall(s) {
			// Terminates the function; successors are dead code. We link to
			// exit so deferred cleanups are still "reached", matching how
			// leaklint treats a deliberate crash as an exit path.
			b.link(b.cur, b.cfg.Exit)
			b.cur = b.newBlock("unreachable")
		}
	}
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, st)
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			l := b.loops[i]
			if label == "" || l.label == label {
				b.link(b.cur, l.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			l := b.loops[i]
			if l.continueTo != nil && (label == "" || l.label == label) {
				b.link(b.cur, l.continueTo)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, struct {
			from  *CFGBlock
			label string
		}{b.cur, label})
	case token.FALLTHROUGH:
		b.link(b.cur, b.fallthroughTo)
	}
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	post := head
	if st.Post != nil {
		post = b.newBlock("for.post")
	}
	b.link(b.cur, head)
	if st.Cond != nil {
		head.Nodes = append(head.Nodes, st.Cond)
		b.link(head, body)
		b.link(head, after)
	} else {
		// for {}: after is reachable only via break.
		b.link(head, body)
	}
	b.loops = append(b.loops, cfgLoop{breakTo: after, continueTo: post, label: label})
	b.cur = body
	b.stmts(st.Body.List)
	if st.Post != nil {
		b.link(b.cur, post)
		b.cur = post
		b.stmt(st.Post)
	}
	b.link(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	head.Nodes = append(head.Nodes, st) // the header: X evaluation + iteration
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.link(b.cur, head)
	b.link(head, body)
	b.link(head, after) // ranges terminate (a closed channel, an exhausted seq)
	b.loops = append(b.loops, cfgLoop{breakTo: after, continueTo: head, label: label})
	b.cur = body
	b.stmts(st.Body.List)
	b.link(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(st *ast.SwitchStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	if st.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, st.Tag)
	}
	b.caseClauses(st.Body.List, label, func(cc *ast.CaseClause, blk *CFGBlock) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
}

func (b *cfgBuilder) typeSwitchStmt(st *ast.TypeSwitchStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, st.Assign)
	b.caseClauses(st.Body.List, label, func(cc *ast.CaseClause, blk *CFGBlock) {})
}

// caseClauses builds the shared switch/type-switch shape: the dispatch
// block fans out to one block per case; each case flows to after (or to
// the next case via fallthrough). A missing default adds a direct
// dispatch→after edge.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, header func(*ast.CaseClause, *CFGBlock)) {
	dispatch := b.cur
	after := b.newBlock("switch.after")
	// Pre-create case blocks so fallthrough can target the next one.
	blocks := make([]*CFGBlock, len(list))
	hasDefault := false
	for i, c := range list {
		blocks[i] = b.newBlock("switch.case")
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(dispatch, after)
	}
	b.loops = append(b.loops, cfgLoop{breakTo: after, label: label})
	for i, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.link(dispatch, blocks[i])
		header(cc, blocks[i])
		b.cur = blocks[i]
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmts(cc.Body)
		b.link(b.cur, after)
	}
	b.fallthroughTo = nil
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label string) {
	dispatch := b.cur
	after := b.newBlock("select.after")
	b.loops = append(b.loops, cfgLoop{breakTo: after, label: label})
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		b.link(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.link(b.cur, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}
