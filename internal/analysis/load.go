package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one Go module without any
// third-party machinery: module-local imports are resolved by recursively
// loading the corresponding directory, everything else (the stdlib) is
// delegated to go/importer.
type Loader struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // module root directory

	std        types.Importer
	cache      map[string]*Package
	inProgress map[string]bool
}

// NewLoader builds a Loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		Module:     module,
		Root:       root,
		std:        importer.Default(),
		cache:      make(map[string]*Package),
		inProgress: make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-local paths load from disk,
// everything else goes to the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files in dir under the
// given import path. Results are memoized by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.inProgress[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.inProgress[importPath] = true
	defer delete(l.inProgress, importPath)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	l.cache[importPath] = pkg
	return pkg, nil
}

// goSources lists the buildable, non-test Go files in dir (sorted).
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		ignore, err := buildIgnored(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ignore {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIgnored reports whether the file opts out of the build via a
// "//go:build ignore"-style constraint before the package clause.
func buildIgnored(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			return false, nil
		}
		if !strings.HasPrefix(line, "//go:build") {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			// Malformed constraint: let the compiler complain, not us.
			return false, nil
		}
		// Evaluate against the default build configuration: host
		// GOOS/GOARCH, gc, and no custom tags — so tag-gated fault
		// injections (e.g. chaosfault) and their !tag twins resolve the
		// same way a plain `go build` does, instead of both files landing
		// in one type-check and colliding.
		ok := expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH ||
				tag == runtime.Compiler || tag == "go1"
		})
		return !ok, nil
	}
	return false, nil
}

// Expand resolves package patterns to directories: "./..." (or "dir/...")
// walks the subtree; anything else names a single directory. Directories
// without buildable Go files, testdata trees, and hidden directories are
// skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "." || base == "" {
				base = l.Root
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
					return filepath.SkipDir
				}
				names, err := goSources(path)
				if err != nil {
					return err
				}
				if len(names) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(pat)
	}
	return dirs, nil
}

// ImportPathFor maps a directory to its module import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.Module)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}
