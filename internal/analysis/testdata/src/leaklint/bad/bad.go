// Package bad is the leaklint fixture: a goroutine with no stop path and
// a ticker that escapes Stop on one exit path.
package bad

import "time"

// Worker owns a background loop.
type Worker struct {
	n int
}

// Start launches a goroutine that can never be stopped: flagged.
func (w *Worker) Start() {
	go func() {
		for {
			w.n++
		}
	}()
}

// spin also never returns.
func (w *Worker) spin() {
	for {
		w.n++
	}
}

// StartNamed launches the unstoppable named loop: flagged at the go site.
func (w *Worker) StartNamed() {
	go w.spin()
}

// Tick creates a ticker that is not stopped when the early return fires:
// flagged at the creation site.
func (w *Worker) Tick(d time.Duration, limit int) {
	t := time.NewTicker(d)
	for i := 0; i < limit; i++ {
		<-t.C
		if w.n > limit {
			return // leaks t
		}
		w.n++
	}
	t.Stop()
}
