// Package clean is the leaklint fixture that stays silent: every
// goroutine has a stop path, every resource is released on all exits or
// explicitly handed off, and the one process-lifetime loop carries its
// reason.
package clean

import "time"

// Worker owns a stoppable background loop.
type Worker struct {
	done chan struct{}
	n    int
}

// Start launches a goroutine that exits when done closes.
func (w *Worker) Start() {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-w.done:
				return
			case <-t.C:
				w.n++
			}
		}
	}()
}

// loop drains until done closes.
func (w *Worker) loop() {
	for {
		select {
		case <-w.done:
			return
		default:
			w.n++
		}
	}
}

// StartNamed launches the stoppable named loop.
func (w *Worker) StartNamed() {
	go w.loop()
}

// Deadline returns the timer to the caller: ownership transfers, so the
// missing local Stop is not a finding.
func Deadline(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

// forever is the reviewed exception: a process-lifetime pump.
//
//socrates:leak-ok process-lifetime fixture pump, reclaimed at exit
func forever(ch chan int) {
	for {
		ch <- 1
	}
}

// StartForever launches it.
func StartForever(ch chan int) {
	go forever(ch)
}
