// Package bad is a lsnlint fixture: raw LSN arithmetic and ordering.
package bad

// LSN mirrors page.LSN for the fixture.
type LSN uint64

// NextRaw does raw arithmetic on an LSN. // want lsnlint
func NextRaw(l LSN) LSN {
	return l + 1 // want lsnlint: arithmetic
}

// CompareRaw does a raw ordering comparison. // want lsnlint
func CompareRaw(a, b LSN) bool {
	return a < b // want lsnlint: ordering
}

// AdvanceRaw increments a watermark in place.
func AdvanceRaw(l *LSN) {
	*l++ // want lsnlint: inc/dec
}

// AccumulateRaw uses a compound assignment.
func AccumulateRaw(l LSN, n uint64) LSN {
	l += LSN(n) // want lsnlint: compound assign
	return l
}
