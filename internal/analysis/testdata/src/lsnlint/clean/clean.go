// Package clean is the lsnlint negative fixture: ordering goes through LSN
// methods, blessed helpers, or annotated expressions.
package clean

// LSN mirrors page.LSN for the fixture.
type LSN uint64

// Next is a method on LSN: raw arithmetic is allowed here — this IS the
// approved helper.
func (l LSN) Next() LSN { return l + 1 }

// Before is the approved ordering helper.
func (l LSN) Before(o LSN) bool { return l < o }

// Advance is an approved watermark helper.
//
//socrates:lsn-helper fixture: the one place this watermark moves
func Advance(w *LSN, to LSN) {
	if *w < to {
		*w = to
	}
}

// UseHelpers exercises the helpers; nothing raw remains.
func UseHelpers(a, b LSN) LSN {
	if a.Before(b) {
		return b.Next()
	}
	if a == b { // equality carries no ordering assumption
		return a
	}
	//socrates:lsn-ok fixture: scaled display value, not a watermark
	approx := a / 2
	return approx
}
