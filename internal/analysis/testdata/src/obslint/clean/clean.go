// Package clean is the obslint negative fixture: canonical dot-namespaced
// names, a constant resolved at its use site, a dynamically built name
// (invisible to static analysis, left to the runtime), and one reviewed
// exception carrying the directive.
package clean

// Counter is a stand-in instrument.
type Counter struct{}

// Gauge is a stand-in instrument.
type Gauge struct{}

// Histogram is a stand-in instrument.
type Histogram struct{}

// Watermark is a stand-in ladder rung.
type Watermark struct{}

// Registry mimics obs.Registry's naming surface.
type Registry struct{}

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return nil }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return nil }

// WatermarkSet mimics obs.WatermarkSet's naming surface.
type WatermarkSet struct{}

// Watermark returns the named rung.
func (s *WatermarkSet) Watermark(name, replica string) *Watermark { return nil }

// wmApplied is a canonical per-replica rung name.
const wmApplied = "pageserver.applied_lsn"

// key builds a per-replica instrument name at runtime.
func key(name, replica string) string {
	if replica == "" {
		return name
	}
	return name + "/" + replica
}

// Register exercises every accepted shape.
func Register(r *Registry, s *WatermarkSet, replica string) {
	r.Counter("compute.commit.count")
	r.Gauge("pageserver.rbpex.pages")
	r.Histogram("lz.write.latency")
	s.Watermark(wmApplied, replica)
	// Dynamically built: nothing to check statically.
	r.Gauge(key("pageserver.dirty_pages", replica))
	//socrates:metric-ok legacy dashboard series name, frozen before the naming contract
	r.Counter("LegacyOps")
}
