// Package bad is the obslint positive fixture: instrument names that break
// the dot-namespaced lowercase contract, registered through a stand-in obs
// registry and watermark set.
package bad

// Counter is a stand-in instrument.
type Counter struct{}

// Gauge is a stand-in instrument.
type Gauge struct{}

// Histogram is a stand-in instrument.
type Histogram struct{}

// Watermark is a stand-in ladder rung.
type Watermark struct{}

// Registry mimics obs.Registry's naming surface.
type Registry struct{}

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return nil }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return nil }

// WatermarkSet mimics obs.WatermarkSet's naming surface.
type WatermarkSet struct{}

// Watermark returns the named rung.
func (s *WatermarkSet) Watermark(name, replica string) *Watermark { return nil }

// badCommitLSN is a named constant with a contract-breaking value; obslint
// resolves constants, so the violation surfaces at the use site.
const badCommitLSN = "CommitLSN"

// Register exercises every flagged shape.
func Register(r *Registry, s *WatermarkSet) {
	r.Counter("CommitCount")        // want obslint: capitalized, no namespace
	r.Gauge("pages")                // want obslint: no dot-separated namespace
	r.Histogram("lz.Write.Lat")     // want obslint: capitalized segments
	r.Histogram("lz..latency")      // want obslint: empty segment
	s.Watermark(badCommitLSN, "")   // want obslint: via named constant
	s.Watermark("compute.9lsn", "") // want obslint: segment starts with a digit
}
