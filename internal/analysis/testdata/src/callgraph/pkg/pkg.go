// Package pkg is the call-graph fixture: Top → Mid → Leaf, with Solo off
// to the side and Closure calling Leaf from inside a function literal.
package pkg

// Leaf is the target of the reachability queries.
func Leaf() int { return 1 }

// Mid calls Leaf.
func Mid() int { return Leaf() + 1 }

// Top calls Mid.
func Top() int { return Mid() + 1 }

// Solo calls nothing.
func Solo() int { return 0 }

// Closure reaches Leaf only through a function literal.
func Closure() func() int {
	return func() int { return Leaf() }
}
