// Package bad is a locklint fixture: copied locks, leaked critical
// sections, and work done while holding a mutex.
package bad

import "sync"

// Cache guards a map with a mutex.
type Cache struct {
	mu sync.Mutex
	m  map[int]int
	ch chan int
}

// ByValue copies the lock through a value parameter.
func ByValue(c Cache) int { // want locklint: parameter copies lock
	return len(c.m)
}

// CopyAssign copies a lock-containing struct by assignment.
func CopyAssign(c *Cache) Cache {
	snapshot := *c // want locklint: assignment copies lock
	return snapshot
}

// Leak locks without ever unlocking.
func Leak(c *Cache) int {
	c.mu.Lock() // want locklint: never unlocked
	return len(c.m)
}

// SendWhileHeld sends on a channel inside the critical section.
func SendWhileHeld(c *Cache, v int) {
	c.mu.Lock()
	c.ch <- v // want locklint: send under lock
	c.mu.Unlock()
}
