// Package clean is the locklint negative fixture: pointers, balanced
// critical sections, and no blocking work under the lock.
package clean

import "sync"

// Cache guards a map with a mutex.
type Cache struct {
	mu sync.Mutex
	m  map[int]int
	ch chan int
}

// ByPointer takes the lock owner by pointer.
func ByPointer(c *Cache) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Balanced locks and unlocks inline.
func Balanced(c *Cache, k, v int) {
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
}

// SendOutside snapshots under the lock and sends after releasing it.
func SendOutside(c *Cache, k int) {
	c.mu.Lock()
	v := c.m[k]
	c.mu.Unlock()
	c.ch <- v
}
