// Package bad is an errlint fixture: durability-critical errors dropped.
package bad

import "errors"

// harden pretends to be a durability-critical write (the fixture package
// itself is configured as critical in the test).
func harden(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty block")
	}
	return nil
}

func hardenAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("bad offset")
	}
	return len(b), nil
}

// DropStatement discards the error by calling harden as a statement.
func DropStatement(b []byte) {
	harden(b) // want errlint: statement drop
}

// DropBlank discards the error via the blank identifier.
func DropBlank(b []byte) {
	_ = harden(b) // want errlint: blank drop
}

// DropTuple discards only the error half of a tuple.
func DropTuple(b []byte) int {
	n, _ := hardenAt(b, 4) // want errlint: tuple blank drop
	return n
}
