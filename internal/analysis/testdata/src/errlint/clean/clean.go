// Package clean is the errlint negative fixture: every critical error is
// propagated, checked, or explicitly annotated.
package clean

import "errors"

func harden(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty block")
	}
	return nil
}

func hardenAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("bad offset")
	}
	return len(b), nil
}

func note(string) {}

// Propagate returns the critical error to the caller.
func Propagate(b []byte) error {
	return harden(b)
}

// Check handles the critical error locally.
func Check(b []byte) {
	if err := harden(b); err != nil {
		note(err.Error())
	}
	if _, err := hardenAt(b, 4); err != nil {
		note(err.Error())
	}
}

// Annotated drops the error deliberately, with a recorded reason.
func Annotated(b []byte) {
	//socrates:ignore-err fixture: best-effort prefetch, next write retries
	_ = harden(b)
}
