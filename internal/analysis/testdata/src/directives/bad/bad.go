// Package bad is the directive-validation fixture.
package bad

// Annotated carries one unknown directive and one reason-less known one.
func Annotated() int {
	//socrates:ignroe-err typo'd name is flagged as unknown
	x := 1
	//socrates:sleep-ok
	return x
}
