// Package multiline is the regression fixture for directive attachment to
// statements that span lines: the annotation sits above the statement,
// while the node a pass flags starts on a continuation line.
package multiline

import "fmt"

// Table builds a slice whose flaggable call is buried two lines below the
// statement's first line.
func Table(id int) []string {
	//socrates:alloc-ok reviewed continuation-line coverage fixture
	out := []string{
		"head",
		fmt.Sprintf("id-%d", id),
	}
	return out
}

// Stacked carries two directives above one statement; both must bind, so
// a pass checking for either name sees its annotation regardless of
// stacking order.
func Stacked(id int) string {
	//socrates:alloc-ok the farther directive in the stack still binds
	//socrates:ignore-err stacked-directive regression fixture
	s := fmt.Sprintf("id-%d", id)
	return s
}

// Uncovered has the same shape with no annotation: the negative case.
func Uncovered(id int) []string {
	out := []string{
		"head",
		fmt.Sprintf("id-%d", id),
	}
	return out
}
