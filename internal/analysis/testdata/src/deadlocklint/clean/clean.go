// Package clean is the deadlocklint fixture that stays silent: one
// global lock order, fabric calls outside critical sections, and one
// reviewed exception with its reason.
package clean

import "sync"

// A and B always lock in the order A before B.
type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
}

// Both acquires in the global order.
func (a *A) Both() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
}

// AlsoBoth uses the same order, so no cycle forms.
func (a *A) AlsoBoth() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}

// Call stands in for a netmux fabric entry point.
func Call(req []byte) []byte { return req }

// SendOutsideLock snapshots under the lock, releases, then calls.
func (a *A) SendOutsideLock(req []byte) []byte {
	a.mu.Lock()
	snapshot := append([]byte(nil), req...)
	a.mu.Unlock()
	return Call(snapshot)
}

// SendReviewed is the annotated exception: the call is a local loopback
// in this fixture, so holding the lock is reviewed and accepted.
func (a *A) SendReviewed(req []byte) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	//socrates:lock-ok fixture loopback call cannot block on a remote peer
	return Call(req)
}
