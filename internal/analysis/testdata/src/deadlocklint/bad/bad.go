// Package bad is the deadlocklint fixture: a lock-order cycle closed
// through a helper call, and a fabric RPC issued under a lock.
package bad

import "sync"

// A and B are the two sides of the inconsistent ordering.
type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

// TakeAB acquires A then (via the helper) B: edge A→B.
func (a *A) TakeAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lockPeer()
}

func (a *A) lockPeer() {
	a.b.mu.Lock()
	a.b.mu.Unlock()
}

// TakeBA acquires B then A: edge B→A, closing the cycle.
func (b *B) TakeBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
}

// Call stands in for a netmux fabric entry point (the fixture package
// itself is configured as the fabric package in the test).
func Call(req []byte) []byte { return req }

// SendUnderLock issues the fabric call while holding the lock.
func (a *A) SendUnderLock(req []byte) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Call(req)
}
