// Package clean is the alloclint fixture that stays silent: hot paths
// reuse caller-provided buffers, and the one deliberate allocation is
// annotated with its reason.
package clean

import "fmt"

// Encoder owns a preallocated scratch buffer.
type Encoder struct {
	scratch [64]byte
}

// EncodeInto is a hot path that writes into the caller's buffer and
// allocates nothing.
//
//socrates:hotpath paired with an AllocsPerRun contract in the fixture suite
func (e *Encoder) EncodeInto(dst []byte, id uint64) int {
	n := copy(dst, e.scratch[:])
	for i := 0; i < 8; i++ {
		if n+i < len(dst) {
			dst[n+i] = byte(id >> (8 * uint(i)))
		}
	}
	return n + 8
}

// Grow is a hot path whose single amortized append is a reviewed
// exception.
//
//socrates:hotpath append below is amortized growth on a long-lived buffer
func Grow(buf []byte, b byte) []byte {
	//socrates:alloc-ok amortized growth on the caller's long-lived buffer
	return append(buf, b)
}

// Spill is the multi-line directive regression: the statement spans three
// lines, and the directive above it must also cover the conversion and
// the Sprintf sitting on the continuation line.
//
//socrates:hotpath fixture for multi-line directive attachment
func Spill(dst []byte, id uint64) []byte {
	//socrates:alloc-ok reviewed cold spill, hit only at fixture startup
	return append(dst,
		[]byte(fmt.Sprintf("id-%d", id))...)
}
