// Package bad is the alloclint fixture: a declared hot path that commits
// every allocation sin the pass knows about.
package bad

import "fmt"

// Frame is a tiny stand-in for a wire frame.
type Frame struct {
	ID  uint64
	Buf []byte
}

// Encode is the declared hot path.
//
//socrates:hotpath exercised by the alloclint bad fixture
func Encode(id uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+8) // make: flagged
	buf = append(buf, payload...)          // append growth: flagged
	name := fmt.Sprintf("frame-%d", id)    // named allocator + boxing: flagged
	_ = name
	key := string(payload) // string conversion copies: flagged
	_ = key
	meta := map[string]int{"id": 1} // map literal: flagged
	_ = meta
	f := &Frame{ID: id} // &composite heap-allocates: flagged
	_ = f
	cb := func() {} // closure environment: flagged
	cb()
	return buf
}

// Cold is NOT annotated: the same constructs are fine here.
func Cold(id uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(payload))
	buf = append(buf, payload...)
	_ = fmt.Sprintf("frame-%d", id)
	return buf
}
