// Package bad is a muxlint fixture: every way to bypass the netmux
// fabric discipline.
package bad

import (
	"context"
	"net"
	"time"

	"socrates/internal/netmux"
	"socrates/internal/rbio"
)

// Node talks to its peers.
type Node struct {
	client *rbio.Client
	pool   *netmux.Pool
}

// connect opens a raw socket around the fabric. // want muxlint: raw dial
func (n *Node) connect(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// connectTimeout is a raw dial too. // want muxlint: raw dial
func (n *Node) connectTimeout(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}

// ping mints an unbounded context at the wire. // want muxlint: no deadline
func (n *Node) ping() error {
	_, err := n.client.Call(context.Background(), &rbio.Request{Type: rbio.MsgPing})
	return err
}

// pingPool does the same through a netmux pool. // want muxlint: no deadline
func (n *Node) pingPool() error {
	_, err := n.pool.Call(context.Background(), &rbio.Request{Type: rbio.MsgPing})
	return err
}

// feed fires-and-forgets with a TODO context. // want muxlint: no deadline
func (n *Node) feed() error {
	return n.client.Send(context.TODO(), &rbio.Request{Type: rbio.MsgPing})
}
