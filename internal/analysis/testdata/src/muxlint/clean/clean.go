// Package clean is a muxlint fixture: the sanctioned patterns.
package clean

import (
	"context"
	"time"

	"socrates/internal/netmux"
	"socrates/internal/rbio"
)

// Node talks to its peers through the fabric.
type Node struct {
	client *rbio.Client
	pool   *netmux.Pool
}

// ping bounds the wire call with a deadline.
func (n *Node) ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_, err := n.client.Call(ctx, &rbio.Request{Type: rbio.MsgPing})
	return err
}

// pingPool threads the caller's (already bounded) context through.
func (n *Node) pingPool(ctx context.Context) error {
	_, err := n.pool.Call(ctx, &rbio.Request{Type: rbio.MsgPing})
	return err
}

// warm is a reviewed unbounded site: boot-time warmup with no caller to
// time it out.
func (n *Node) warm() error {
	//socrates:nodeadline boot-time warmup; progress is monitored by the boot watchdog, not a per-call deadline
	_, err := n.client.Call(context.Background(), &rbio.Request{Type: rbio.MsgPing})
	return err
}

// dialer builds a fabric dialer — the transport does the raw dialing.
func dialer(m *netmux.Metrics) netmux.Dialer {
	return func(addr string) (rbio.Conn, error) { return netmux.DialTCP(addr, m) }
}
