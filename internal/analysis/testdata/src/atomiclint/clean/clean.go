// Package clean is the atomiclint negative fixture: one access mode per
// field.
package clean

import "sync/atomic"

// Stats keeps every access to served atomic; typedCount uses the
// race-proof atomic.Int64 wrapper type.
type Stats struct {
	served     int64
	typedCount atomic.Int64
}

// Inc updates the counter atomically.
func (s *Stats) Inc() {
	atomic.AddInt64(&s.served, 1)
	s.typedCount.Add(1)
}

// Served reads atomically too.
func (s *Stats) Served() int64 {
	return atomic.LoadInt64(&s.served)
}

// TypedCount reads the wrapper type (always safe).
func (s *Stats) TypedCount() int64 {
	return s.typedCount.Load()
}
