// Package bad is an atomiclint fixture: a counter touched both atomically
// and plainly.
package bad

import "sync/atomic"

// Stats mixes access modes on served.
type Stats struct {
	served int64
}

// Inc updates the counter atomically.
func (s *Stats) Inc() {
	atomic.AddInt64(&s.served, 1)
}

// Served reads the same field without atomic — a silent data race.
func (s *Stats) Served() int64 {
	return s.served // want atomiclint: plain read of atomic field
}

// Reset writes the same field without atomic.
func (s *Stats) Reset() {
	s.served = 0 // want atomiclint: plain write of atomic field
}
