// Package clean is the sleeplint negative fixture: waiters park on a
// sync.Cond, and the one intentional sleep is annotated.
package clean

import (
	"sync"
	"time"
)

// Watermark signals waiters on every advance.
type Watermark struct {
	mu   sync.Mutex
	cond *sync.Cond
	v    uint64
}

// NewWatermark builds a signalling watermark.
func NewWatermark() *Watermark {
	w := &Watermark{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Advance publishes a new value and wakes waiters.
func (w *Watermark) Advance(v uint64) {
	w.mu.Lock()
	if v > w.v {
		w.v = v
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// WaitAtLeast blocks on the condition variable — no polling.
func (w *Watermark) WaitAtLeast(target uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.v < target {
		w.cond.Wait()
	}
}

// Backoff pauses deliberately between retries.
func Backoff(attempt int) {
	//socrates:sleep-ok fixture: retry backoff is a deliberate pause, not a poll
	time.Sleep(time.Duration(attempt) * time.Millisecond)
}
