// Package bad is a sleeplint fixture: a classic sleep-poll catch-up loop.
package bad

import (
	"sync"
	"time"
)

// Watermark is polled by waiters.
type Watermark struct {
	mu sync.Mutex
	v  uint64
}

// Load reads the watermark.
func (w *Watermark) Load() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.v
}

// WaitAtLeast polls with time.Sleep until the watermark catches up.
func (w *Watermark) WaitAtLeast(target uint64) {
	for w.Load() < target {
		time.Sleep(time.Millisecond) // want sleeplint: poll loop
	}
}
