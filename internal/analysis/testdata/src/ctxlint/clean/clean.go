// Package clean is a ctxlint fixture: the sanctioned context patterns.
package clean

import (
	"context"

	"socrates/internal/rbio"
)

// Node wraps an RBIO client.
type Node struct {
	client *rbio.Client
}

// LookupContext is the ctx-first form.
func (n *Node) LookupContext(ctx context.Context, key string) (*rbio.Response, error) {
	return n.client.Call(ctx, &rbio.Request{})
}

// Lookup is the compatibility wrapper: it delegates to the *Context
// variant at a genuine root, which ctxlint recognizes.
func (n *Node) Lookup(key string) (*rbio.Response, error) {
	return n.LookupContext(context.Background(), key)
}

// Drain is a reviewed exception: it runs at process shutdown where no
// request context exists.
//
//socrates:ctx-ok shutdown path, no request in flight to trace
func (n *Node) Drain() error {
	_, err := n.client.Call(context.Background(), &rbio.Request{})
	return err
}
