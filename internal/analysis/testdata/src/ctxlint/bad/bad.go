// Package bad is a ctxlint fixture: every way to break the context-first
// tracing discipline.
package bad

import (
	"context"

	"socrates/internal/rbio"
)

// Node wraps an RBIO client.
type Node struct {
	client *rbio.Client
}

// Lookup takes its context in second position. // want ctxlint: ctx not first
func (n *Node) Lookup(key string, ctx context.Context) (*rbio.Response, error) {
	return n.client.Call(ctx, &rbio.Request{})
}

// Refresh manufactures a TODO context. // want ctxlint: context.TODO
func (n *Node) Refresh() error {
	_, err := n.client.Call(context.TODO(), &rbio.Request{})
	return err
}

// Ping issues an RBIO call with no way for the caller's trace identity to
// reach the wire. // want ctxlint: no context parameter
func (n *Node) Ping() error {
	_, err := n.client.Call(context.Background(), &rbio.Request{})
	return err
}
