// Package clean is the waitlint fixture: every blocking site is inside a
// WaitPoint region on all paths, inside a Wait closure, or carries a
// reviewed //socrates:wait-ok.
package clean

import (
	"sync"
	"time"
)

// WaitRegion and WaitRecorder are structural stand-ins for the obs types:
// waitlint matches WaitPoint calls by type name so fixtures stay
// self-contained.
type WaitRegion struct{ open bool }

// End closes the region.
func (r *WaitRegion) End() {}

// EndIf closes the region, recording only if waited.
func (r *WaitRegion) EndIf(waited bool) {}

// WaitRecorder is the stand-in recorder.
type WaitRecorder struct{}

// Begin opens a region.
func (r *WaitRecorder) Begin(class string) *WaitRegion { return &WaitRegion{} }

// Wait runs fn inside an implicit region.
func (r *WaitRecorder) Wait(class string, fn func()) { fn() }

// Q is a tiny blocking queue.
type Q struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	rec  WaitRecorder
}

// Pop records its blocked time with the deferred-EndIf shape: the region
// stays open to function exit, so the cond wait is covered.
func (q *Q) Pop() int {
	region := q.rec.Begin("lock.row")
	waited := false
	defer func() { region.EndIf(waited) }()
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		waited = true
		q.cond.Wait()
	}
	q.n--
	return q.n
}

// Drain ends the region explicitly after the wait loop.
func (q *Q) Drain() {
	region := q.rec.Begin("ckpt.drain")
	q.mu.Lock()
	for q.n > 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
	region.End()
}

// Poll is an idle cadence tick: reviewed rather than recorded, so the
// taxonomy keeps measuring stalls, not idleness.
func (q *Q) Poll(done chan struct{}) {
	//socrates:wait-ok fixture idle cadence tick, not a stall
	select {
	case <-done:
	case <-time.After(time.Millisecond):
	}
}

// Backoff wraps the timer wait in the Wait-closure form.
func (q *Q) Backoff() {
	q.rec.Wait("backpressure", func() {
		<-time.After(time.Millisecond)
	})
}

// Push is a declared hot path whose latch is reviewed.
//
//socrates:hotpath fixture hot path with a reviewed latch
func (q *Q) Push(v int) {
	//socrates:wait-ok fixture bookkeeping latch held a few instructions
	q.mu.Lock()
	q.n += v
	q.mu.Unlock()
}

// Guarded is a hot path whose acquisition sits inside a lock.latch
// region, so contention is measured instead of reviewed.
//
//socrates:hotpath fixture hot path with an accounted latch
func (q *Q) Guarded() {
	region := q.rec.Begin("lock.latch")
	q.mu.Lock()
	region.End()
	q.n++
	q.mu.Unlock()
}
