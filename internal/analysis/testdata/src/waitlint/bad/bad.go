// Package bad is the waitlint fixture: blocking sites with no WaitPoint
// region, no Wait closure, and no review annotation.
package bad

import (
	"sync"
	"time"
)

// WaitRegion and WaitRecorder are structural stand-ins for the obs types:
// waitlint matches WaitPoint calls by type name so fixtures stay
// self-contained.
type WaitRegion struct{ open bool }

// End closes the region.
func (r *WaitRegion) End() {}

// EndIf closes the region, recording only if waited.
func (r *WaitRegion) EndIf(waited bool) {}

// WaitRecorder is the stand-in recorder.
type WaitRecorder struct{}

// Begin opens a region.
func (r *WaitRecorder) Begin(class string) *WaitRegion { return &WaitRegion{} }

// Wait runs fn inside an implicit region.
func (r *WaitRecorder) Wait(class string, fn func()) { fn() }

// Q is a tiny blocking queue.
type Q struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	rec  WaitRecorder
}

// Pop blocks on the cond with no region: flagged.
func (q *Q) Pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	return q.n
}

// Poll waits on a timer-driven select with no region: flagged once, at
// the select.
func (q *Q) Poll(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Millisecond):
	}
}

// Backoff does a bare time.After receive: flagged.
func (q *Q) Backoff() {
	<-time.After(time.Millisecond)
}

// Tick receives from a ticker channel: flagged.
func (q *Q) Tick(t *time.Ticker) {
	<-t.C
}

// Push is a declared hot path taking the latch with no region and no
// annotation: flagged.
//
//socrates:hotpath fixture hot path
func (q *Q) Push(v int) {
	q.mu.Lock()
	q.n += v
	q.mu.Unlock()
}

// Closed opens a region but ends it before the wait: flagged.
func (q *Q) Closed() {
	region := q.rec.Begin("lock.row")
	region.End()
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// OneArm opens the region on only one branch: the must-analysis flags
// the wait because the fast path reaches it uncovered.
func (q *Q) OneArm(fast bool) {
	var region *WaitRegion
	if !fast {
		region = q.rec.Begin("lock.row")
	}
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
	if region != nil {
		region.End()
	}
}
