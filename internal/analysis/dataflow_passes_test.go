package analysis_test

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"socrates/internal/analysis"
)

func TestAllocLintFixtures(t *testing.T) {
	runFixturePair(t, analysis.NewAllocLint(), "alloclint", 7, "hot path")
}

func TestDeadlockLintFixtures(t *testing.T) {
	pass := &analysis.DeadlockLint{FabricPkgs: []string{"fixture/deadlocklint"}}
	runFixturePair(t, pass, "deadlocklint", 2, "lock")
}

// TestDeadlockLintFindsBothShapes pins the two failure modes to the bad
// fixture: exactly one lock-order cycle and one fabric-call-under-lock.
func TestDeadlockLintFindsBothShapes(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "deadlocklint/bad")
	pass := &analysis.DeadlockLint{FabricPkgs: []string{"fixture/deadlocklint"}}
	diags := pass.Run(bad)
	var cycles, fabric int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "lock-order cycle"):
			cycles++
			for _, lock := range []string{"bad.A.mu", "bad.B.mu"} {
				if !strings.Contains(d.Message, lock) {
					t.Errorf("cycle message missing %s: %s", lock, d.Message)
				}
			}
		case strings.Contains(d.Message, "fabric"):
			fabric++
		}
	}
	if cycles != 1 || fabric != 1 {
		t.Fatalf("deadlocklint shapes: cycles=%d fabric=%d\n%s", cycles, fabric, render(diags))
	}
}

func TestLeakLintFixtures(t *testing.T) {
	runFixturePair(t, analysis.NewLeakLint(), "leaklint", 3, "leak-ok")
}

func TestWaitLintFixtures(t *testing.T) {
	pass := &analysis.WaitLint{Packages: []string{"fixture/waitlint"}}
	runFixturePair(t, pass, "waitlint", 7, "WaitPoint region")
}

// TestWaitLintFindsExactShapes pins the seven wait shapes the bad fixture
// plants, including the two region-dataflow ones: a region ended before
// the wait, and a region opened on only one branch.
func TestWaitLintFindsExactShapes(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "waitlint/bad")
	pass := &analysis.WaitLint{Packages: []string{"fixture/waitlint"}}
	diags := pass.Run(bad)
	if len(diags) != 7 {
		t.Fatalf("waitlint on bad fixture: got %d findings, want 7\n%s", len(diags), render(diags))
	}
	byFunc := make(map[string]int)
	for _, fn := range []string{"Pop", "Poll", "Backoff", "Tick", "Push", "Closed", "OneArm"} {
		for _, d := range diags {
			if strings.Contains(d.Message, " in "+fn+" ") {
				byFunc[fn]++
			}
		}
		if byFunc[fn] != 1 {
			t.Errorf("waitlint findings in %s: got %d, want 1\n%s", fn, byFunc[fn], render(diags))
		}
	}
}

// TestLeakLintFindsExactShapes pins the three leak shapes: the literal
// goroutine, the named goroutine, and the ticker with one leaky exit.
func TestLeakLintFindsExactShapes(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "leaklint/bad")
	diags := analysis.NewLeakLint().Run(bad)
	var stopPath, ticker int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "no reachable stop path"):
			stopPath++
		case strings.Contains(d.Message, "not Stop()ed on every exit path"):
			ticker++
		}
	}
	if stopPath != 2 || ticker != 1 {
		t.Fatalf("leaklint shapes: stopPath=%d ticker=%d\n%s", stopPath, ticker, render(diags))
	}
}

// TestDirectiveMultilineStatement is the regression test for directives
// above statements that span lines: the flagged node starts on a
// continuation line, and the directive above the statement must still
// cover it — but only within that statement.
func TestDirectiveMultilineStatement(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "directives/multiline")

	var calls []*ast.CallExpr
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" {
					calls = append(calls, call)
				}
			}
			return true
		})
	}
	if len(calls) != 3 {
		t.Fatalf("fixture should contain 3 Sprintf calls, found %d", len(calls))
	}
	if !pkg.DirectiveAt("alloc-ok", calls[0]) {
		t.Error("directive above multi-line statement does not cover its continuation-line call")
	}
	if !pkg.DirectiveAt("alloc-ok", calls[1]) || !pkg.DirectiveAt("ignore-err", calls[1]) {
		t.Error("stacked directives do not both bind to the statement below them")
	}
	if pkg.DirectiveAt("alloc-ok", calls[2]) {
		t.Error("directive leaked into the unannotated function")
	}
}

// TestCallGraph checks static edges and transitive reachability on the
// Top → Mid → Leaf fixture.
func TestCallGraph(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "callgraph/pkg")
	g := analysis.BuildCallGraph([]*analysis.Package{pkg})

	fn := func(name string) *types.Func {
		obj := pkg.Pkg.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("fixture missing func %s", name)
		}
		return obj.(*types.Func)
	}
	top, mid, leaf, solo, closure := fn("Top"), fn("Mid"), fn("Leaf"), fn("Solo"), fn("Closure")

	hasEdge := func(from, to *types.Func) bool {
		for _, c := range g.Callees[from] {
			if c == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(top, mid) || !hasEdge(mid, leaf) {
		t.Fatal("missing static call edges Top→Mid or Mid→Leaf")
	}
	if !hasEdge(closure, leaf) {
		t.Fatal("call inside a function literal not attributed to the enclosing function")
	}

	reaches := g.Reaches(func(f *types.Func) bool { return f == leaf })
	if !reaches[top] || !reaches[mid] || !reaches[closure] {
		t.Fatalf("reachability incomplete: %v", reaches)
	}
	if reaches[solo] || reaches[leaf] {
		t.Fatalf("reachability over-approximates: solo=%v leaf=%v", reaches[solo], reaches[leaf])
	}
}

// TestAllPassesCount pins the suite size: eight AST passes plus the four
// dataflow-aware ones.
func TestAllPassesCount(t *testing.T) {
	passes := analysis.AllPasses()
	if len(passes) != 12 {
		t.Fatalf("AllPasses: got %d, want 12", len(passes))
	}
	names := make(map[string]bool)
	for _, p := range passes {
		names[p.Name()] = true
	}
	for _, want := range []string{"alloclint", "deadlocklint", "leaklint", "waitlint"} {
		if !names[want] {
			t.Fatalf("AllPasses missing %s", want)
		}
	}
}
