package analysis

import (
	"go/ast"
	"strings"
)

// Sleeplint flags time.Sleep in non-test code. A sleep-poll loop either
// wastes a full tick of latency per wakeup (page-server catch-up waits
// stack those ticks directly onto GetPage@LSN tail latency) or burns CPU
// re-checking state that a sync.Cond broadcast or channel close would
// deliver instantly. BtrLog's low-latency logging work makes the same
// point for the log path: signal, don't poll.
//
// Legitimate sleeps exist — simulated device latency (the simdisk
// package's whole purpose), token-bucket pacing, retry backoff — and are
// either in an exempt package or annotated //socrates:sleep-ok <reason>
// (on the line or in the function's doc comment).
type Sleeplint struct {
	// ExemptPkgs are import-path substrings where sleeping is the point.
	ExemptPkgs []string
}

// DefaultSleeplint returns sleeplint configured for the Socrates tree.
func DefaultSleeplint() *Sleeplint {
	return &Sleeplint{ExemptPkgs: []string{"socrates/internal/simdisk"}}
}

// NewSleeplint returns sleeplint with the given exemptions (fixtures).
func NewSleeplint(exempt []string) *Sleeplint { return &Sleeplint{ExemptPkgs: exempt} }

// Name implements Pass.
func (s *Sleeplint) Name() string { return "sleeplint" }

// Run implements Pass.
func (s *Sleeplint) Run(pkg *Package) []Diagnostic {
	for _, exempt := range s.ExemptPkgs {
		if strings.Contains(pkg.Path, exempt) {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || obj.Name() != "Sleep" {
				return true
			}
			if pkg.DirectiveAt("sleep-ok", call) {
				return true
			}
			out = append(out, pkg.diag("sleeplint", call,
				"time.Sleep polling in non-test code; signal with a sync.Cond or channel instead, or annotate //socrates:sleep-ok <reason>"))
			return true
		})
	}
	return out
}
