package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WaitLint enforces the wait-accounting discipline the wait-stats plane
// depends on: in the instrumented tier packages, every site that can block
// a request must either be covered by a WaitPoint region — so the blocked
// time lands in a wait class — or carry a reviewed //socrates:wait-ok
// <reason> explaining why recording it would pollute the taxonomy (idle
// loops, cadence ticks, waits whose time is charged elsewhere as a running
// total).
//
// Three site kinds are checked:
//
//  1. (*sync.Cond).Wait calls — the canonical blocking primitive behind
//     commit hardening, apply watermarks, and backpressure throttles.
//  2. Timer-driven channel receives: `<-time.After(d)`, and `<-t.C` for a
//     time.Ticker/time.Timer — whether standalone or as a select case
//     (the select itself is flagged, once).
//  3. Lock acquisitions (sync.Mutex/RWMutex Lock/RLock, including through
//     embedding) inside //socrates:hotpath functions: on a declared hot
//     path, an invisible lock convoy is exactly the stall wait stats
//     exist to expose, so either the acquisition sits behind a TryLock
//     fast path inside a lock.latch region, or the annotation states why
//     the lock cannot convoy.
//
// A site passes when any of these hold:
//
//   - It is lexically inside the closure passed to a WaitPoint Wait(...)
//     call (the obs.Wait / WaitRecorder.Wait form).
//   - A WaitPoint region is open at the site on *every* control-flow path:
//     the forward must-dataflow gens at a WaitRecorder.Begin call and
//     kills at a direct WaitRegion End/EndIf call. A deferred End is NOT
//     a kill at the defer statement — defers run at function exit, so the
//     region covers everything after Begin (the FlushForBackup and
//     WaitHarden shapes depend on this).
//   - It carries //socrates:wait-ok <reason>.
//
// WaitPoint calls are recognized by type name — methods on obs.WaitRecorder
// and obs.WaitRegion — so fixture packages can declare structural stand-ins
// without importing the real obs package.
type WaitLint struct {
	// Packages is the instrumented set: a package is checked when its
	// import path equals an entry or lives under one (prefix + "/").
	Packages []string
}

// NewWaitLint returns the pass in its repo configuration: the tier
// packages whose blocking sites feed the wait-stats plane.
func NewWaitLint() *WaitLint {
	return &WaitLint{Packages: []string{
		"socrates/internal/compute",
		"socrates/internal/engine",
		"socrates/internal/hadr",
		"socrates/internal/netmux",
		"socrates/internal/pageserver",
		"socrates/internal/simdisk",
		"socrates/internal/xlog",
	}}
}

// Name implements Pass.
func (l *WaitLint) Name() string { return "waitlint" }

// instrumented reports whether the package is in the checked set.
func (l *WaitLint) instrumented(path string) bool {
	for _, p := range l.Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (l *WaitLint) Run(pkg *Package) []Diagnostic {
	if !l.instrumented(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := FuncDirective(fn, "hotpath")
			out = append(out, l.checkBody(pkg, f, fn.Name.Name, fn.Body, hot)...)
			// Function literals run on their own schedule (goroutines,
			// AfterFunc callbacks): a region opened by the enclosing
			// function is not known to be open when the literal runs, so
			// each body is analyzed independently.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, l.checkBody(pkg, f, fn.Name.Name+".func", lit.Body, hot)...)
				}
				return true
			})
		}
	}
	return out
}

// waitSite is one blocking site awaiting a verdict.
type waitSite struct {
	node ast.Node
	what string
}

// checkBody collects the body's wait sites and judges each against the
// must-in-region dataflow.
func (l *WaitLint) checkBody(pkg *Package, file *ast.File, name string, body *ast.BlockStmt, hot bool) []Diagnostic {
	sites := l.collectSites(pkg, body, hot)
	if len(sites) == 0 {
		return nil
	}

	cfg := BuildCFG(body)
	prob := &regionProblem{pkg: pkg}
	out := SolveForward(cfg, prob)

	// Fact at a site: replay each block from its in-fact; a site inside
	// block node i sees the fact before node i's transfer (the Begin that
	// guards a wait is always a preceding statement). A SelectStmt site
	// never appears in a block itself — its comm statements do — so a
	// block node *contained within* the site also anchors it; the first
	// such node replayed (the first case's comm, whose in-fact is the
	// select's entry fact) decides, hence first-assignment-wins.
	factAt := make(map[ast.Node]bool)
	decided := make(map[ast.Node]bool)
	for _, b := range cfg.Blocks {
		var in Fact
		if b == cfg.Entry {
			in = prob.Entry()
		}
		for _, pred := range b.Preds {
			if o, ok := out[pred]; ok {
				if in == nil {
					in = o
				} else {
					in = prob.Join(in, o)
				}
			}
		}
		if in == nil {
			continue // unreachable block
		}
		f := in
		for _, n := range b.Nodes {
			for _, s := range sites {
				contains := n.Pos() <= s.node.Pos() && s.node.End() <= n.End()
				within := s.node.Pos() <= n.Pos() && n.End() <= s.node.End()
				if (contains || within) && !decided[s.node] {
					decided[s.node] = true
					factAt[s.node] = f.(bool)
				}
			}
			f = prob.Transfer(n, f)
		}
	}

	var diags []Diagnostic
	for _, s := range sites {
		if factAt[s.node] {
			continue // region provably open on every path
		}
		if insideWaitClosure(pkg, file, s.node) {
			continue
		}
		if pkg.DirectiveAt("wait-ok", s.node) {
			continue
		}
		diags = append(diags, pkg.diag("waitlint", s.node,
			"%s in %s is not covered by a WaitPoint region; wrap it in Begin/End (or obs.Wait) so the blocked time lands in a wait class, or annotate //socrates:wait-ok <reason>",
			s.what, name))
	}
	return diags
}

// collectSites finds the body's blocking sites, excluding nested function
// literals (they are analyzed as their own bodies).
func (l *WaitLint) collectSites(pkg *Package, body *ast.BlockStmt, hot bool) []waitSite {
	var sites []waitSite
	flaggedSelect := make(map[*ast.SelectStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			// A select with a timer-driven case blocks the goroutine for
			// the timer duration on the quiet path; flag the select once.
			for _, clause := range x.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				if commHasTimerRecv(pkg, comm.Comm) && !flaggedSelect[x] {
					flaggedSelect[x] = true
					sites = append(sites, waitSite{node: x, what: "select with a timer-driven case"})
				}
			}
		case *ast.UnaryExpr:
			if isTimerRecv(pkg, x) && !insideFlaggedSelect(body, x, flaggedSelect) {
				sites = append(sites, waitSite{node: x, what: "timer-channel receive"})
			}
		case *ast.CallExpr:
			if isCondWait(pkg, x) {
				sites = append(sites, waitSite{node: x, what: "sync.Cond Wait"})
			} else if hot && isMutexAcquire(pkg, x) {
				sites = append(sites, waitSite{node: x, what: "lock acquisition on a declared hot path"})
			}
		}
		return true
	})
	return sites
}

// insideFlaggedSelect reports whether the receive already got its verdict
// as part of a flagged select statement.
func insideFlaggedSelect(body *ast.BlockStmt, recv *ast.UnaryExpr, flagged map[*ast.SelectStmt]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok && flagged[sel] {
			if sel.Pos() <= recv.Pos() && recv.End() <= sel.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// commHasTimerRecv reports whether a select comm statement receives from a
// timer-driven channel.
func commHasTimerRecv(pkg *Package, comm ast.Stmt) bool {
	has := false
	ast.Inspect(comm, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && isTimerRecv(pkg, u) {
			has = true
		}
		return true
	})
	return has
}

// isTimerRecv matches `<-time.After(d)` and `<-x.C` for time.Ticker /
// time.Timer values.
func isTimerRecv(pkg *Package, u *ast.UnaryExpr) bool {
	if u.Op.String() != "<-" {
		return false
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.CallExpr:
		obj := calleeObject(pkg.Info, x)
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "After"
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		t := pkg.Info.TypeOf(x.X)
		return namedIn(t, "time", "Ticker") || namedIn(t, "time", "Timer")
	}
	return false
}

// isCondWait matches (*sync.Cond).Wait calls.
func isCondWait(pkg *Package, call *ast.CallExpr) bool {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok || fn.Name() != "Wait" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && namedIn(recv.Type(), "sync", "Cond")
}

// isMutexAcquire matches sync.Mutex/RWMutex Lock and RLock calls,
// including promoted methods of embedded mutexes. TryLock is deliberately
// not a site: it never blocks, and the TryLock-then-Begin-then-Lock shape
// is the approved way to record latch contention.
func isMutexAcquire(pkg *Package, call *ast.CallExpr) bool {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil &&
		(namedIn(recv.Type(), "sync", "Mutex") || namedIn(recv.Type(), "sync", "RWMutex"))
}

// namedIn reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isWaitRecorderCall matches calls to a method of a type named
// WaitRecorder (Begin or Wait). Matching by type name rather than by the
// concrete obs package keeps fixtures self-contained.
func isWaitRecorderCall(pkg *Package, call *ast.CallExpr, method string) bool {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitRecorder"
}

// isRegionEnd matches direct End/EndIf calls on a type named WaitRegion.
func isRegionEnd(pkg *Package, call *ast.CallExpr) bool {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok || (fn.Name() != "End" && fn.Name() != "EndIf") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitRegion"
}

// insideWaitClosure reports whether the site sits inside a function
// literal passed to a WaitPoint Wait call — either the WaitRecorder.Wait
// method or a package-level Wait function taking (ctx, class, func()).
// The search runs over the whole file: when the site is being judged as
// part of a FuncLit's own body, the enclosing Wait call sits outside it.
func insideWaitClosure(pkg *Package, file *ast.File, site ast.Node) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isWait := isWaitRecorderCall(pkg, call, "Wait")
		if !isWait {
			// Package-level obs.Wait(ctx, class, fn).
			if fn, ok := calleeObject(pkg.Info, call).(*types.Func); ok &&
				fn.Name() == "Wait" && fn.Type().(*types.Signature).Recv() == nil &&
				len(call.Args) == 3 {
				isWait = true
			}
		}
		if !isWait {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				if lit.Pos() <= site.Pos() && site.End() <= lit.End() {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// regionProblem is the must-in-region forward dataflow: the fact is "a
// WaitPoint region is open", gen'd by WaitRecorder.Begin, killed by a
// direct WaitRegion End/EndIf. Join is AND — the region must be open on
// every path into the site. Deferred Ends do not kill: they run at
// function exit, so the region stays open through the rest of the body.
type regionProblem struct {
	pkg *Package
}

func (p *regionProblem) Entry() Fact { return false }

func (p *regionProblem) Join(a, b Fact) Fact { return a.(bool) && b.(bool) }

func (p *regionProblem) Equal(a, b Fact) bool { return a.(bool) == b.(bool) }

func (p *regionProblem) Transfer(n ast.Node, f Fact) Fact {
	if _, ok := n.(*ast.DeferStmt); ok {
		// A deferred End runs at function exit, not here; a deferred
		// Begin would be nonsense. Either way the fact is unchanged.
		return f
	}
	open := f.(bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWaitRecorderCall(p.pkg, call, "Begin") {
			open = true
		} else if isRegionEnd(p.pkg, call) {
			open = false
		}
		return true
	})
	return open
}
