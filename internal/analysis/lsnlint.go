package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LSNLint flags raw arithmetic and ordering comparisons on LSN-typed values
// outside approved helpers. The log tier's core invariant is that LSNs form
// one monotonic space managed by the primary (§4.3-§4.4): watermarks only
// advance, redo applies a record only when record.LSN > page.LSN, and a
// hardened prefix never has holes. Scattered raw `lsn+1` / `a < b`
// expressions are where that invariant silently erodes (an off-by-one in a
// watermark comparison is a lost-write, not a crash), so ordering logic is
// funneled through the page.LSN methods (Next, Prev, Before, AtLeast, ...)
// or through functions explicitly blessed as watermark helpers with a
// //socrates:lsn-helper <reason> doc directive.
//
// Approved contexts, in which raw expressions are allowed:
//   - methods declared on the LSN type itself (they ARE the helpers);
//   - functions carrying //socrates:lsn-helper in their doc comment;
//   - a single expression annotated //socrates:lsn-ok <reason>.
//
// Equality (== / !=) is always allowed: it carries no ordering assumption.
type LSNLint struct {
	// TypeName is the named type to protect (default "LSN").
	TypeName string
}

// NewLSNLint returns the pass with the default LSN type name.
func NewLSNLint() *LSNLint { return &LSNLint{TypeName: "LSN"} }

// Name implements Pass.
func (l *LSNLint) Name() string { return "lsnlint" }

// isLSN reports whether t (or its pointer-elem) is a named type called
// TypeName with an integer underlying type.
func (l *LSNLint) isLSN(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != l.TypeName {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func (l *LSNLint) exprIsLSN(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && l.isLSN(tv.Type)
}

var lsnArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true, token.REM: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true,
}

var lsnOrderOps = map[token.Token]bool{
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

// approvedFunc reports whether fn is an approved helper: a method on the
// LSN type or a function annotated //socrates:lsn-helper.
func (l *LSNLint) approvedFunc(pkg *Package, fn *ast.FuncDecl) bool {
	if FuncDirective(fn, "lsn-helper") {
		return true
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pkg.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return l.isLSN(t)
}

// Run implements Pass.
func (l *LSNLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	flag := func(node ast.Node, what, op string) {
		if pkg.DirectiveAt("lsn-ok", node) {
			return
		}
		out = append(out, pkg.diag("lsnlint", node,
			"raw LSN %s (%s) outside an approved helper; use the page.LSN methods or annotate the helper //socrates:lsn-helper <reason>",
			what, op))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || l.approvedFunc(pkg, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if !l.exprIsLSN(pkg.Info, e.X) && !l.exprIsLSN(pkg.Info, e.Y) {
						return true
					}
					if lsnArithOps[e.Op] {
						flag(e, "arithmetic", e.Op.String())
					} else if lsnOrderOps[e.Op] {
						flag(e, "ordering comparison", e.Op.String())
					}
				case *ast.AssignStmt:
					if lsnArithOps[e.Tok] && len(e.Lhs) == 1 && l.exprIsLSN(pkg.Info, e.Lhs[0]) {
						flag(e, "arithmetic", e.Tok.String())
					}
				case *ast.IncDecStmt:
					if l.exprIsLSN(pkg.Info, e.X) {
						flag(e, "arithmetic", e.Tok.String())
					}
				}
				return true
			})
		}
	}
	return out
}
