package analysis

// A generic forward dataflow solver over the CFG: the engine under
// leaklint's resource tracking and available for any pass that needs
// "what is true at this program point on every/any path" answers.
//
// The framework is the textbook worklist algorithm. A FlowProblem supplies
// the lattice (Join/Equal), the entry fact, and a per-node transfer
// function; Solve iterates to the fixpoint. Facts are opaque to the
// solver; problems choose their own representation (typically a small map
// treated as immutable — Transfer returns a fresh fact when it changes
// anything).

import "go/ast"

// Fact is one dataflow fact. The solver never inspects it.
type Fact any

// FlowProblem defines one forward dataflow analysis.
type FlowProblem interface {
	// Entry is the fact at function entry.
	Entry() Fact
	// Transfer applies one straight-line node to the incoming fact. It
	// must not mutate the incoming fact.
	Transfer(n ast.Node, f Fact) Fact
	// Join merges facts at a control-flow merge point. It must not mutate
	// its arguments. Joining with nil (an unvisited predecessor) must
	// return the other fact unchanged — the solver guarantees nil means
	// "no information yet", not "empty".
	Join(a, b Fact) Fact
	// Equal reports whether two facts carry the same information
	// (fixpoint detection).
	Equal(a, b Fact) bool
}

// SolveForward runs the worklist algorithm and returns the fact at the
// *end* of each block (after its last node). The fact flowing into
// cfg.Exit — the join over its predecessors' out-facts — describes every
// return/fall-off exit path; deferred calls (cfg.Defers) are NOT applied
// by the solver, since their semantics are problem-specific.
func SolveForward(cfg *CFG, p FlowProblem) map[*CFGBlock]Fact {
	out := make(map[*CFGBlock]Fact, len(cfg.Blocks))
	in := make(map[*CFGBlock]Fact, len(cfg.Blocks))

	// Seed: entry gets the boundary fact; everything else starts nil
	// ("unvisited"). Worklist starts with every block so detached blocks
	// still stabilize (with nil facts).
	work := make([]*CFGBlock, 0, len(cfg.Blocks))
	inWork := make(map[*CFGBlock]bool, len(cfg.Blocks))
	push := func(b *CFGBlock) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	push(cfg.Entry)

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		var inFact Fact
		if b == cfg.Entry {
			inFact = p.Entry()
		}
		for _, pred := range b.Preds {
			if o, ok := out[pred]; ok {
				if inFact == nil {
					inFact = o
				} else {
					inFact = p.Join(inFact, o)
				}
			}
		}
		if inFact == nil && b != cfg.Entry {
			// No predecessor has produced a fact yet; revisit later via
			// their pushes.
			in[b] = nil
			continue
		}
		in[b] = inFact

		f := inFact
		for _, n := range b.Nodes {
			f = p.Transfer(n, f)
		}
		if old, ok := out[b]; !ok || !p.Equal(old, f) {
			out[b] = f
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return out
}

// ExitFact joins the out-facts of the exit block's predecessors: the
// merged state over all exit paths. Returns nil when the exit is
// unreachable (the body provably loops forever).
func ExitFact(cfg *CFG, p FlowProblem, out map[*CFGBlock]Fact) Fact {
	var f Fact
	for _, pred := range cfg.Exit.Preds {
		o, ok := out[pred]
		if !ok {
			continue
		}
		if f == nil {
			f = o
		} else {
			f = p.Join(f, o)
		}
	}
	return f
}
