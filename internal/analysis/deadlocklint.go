package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeadlockLint builds the program-wide lock-ordering graph and reports
// the two deadlock shapes a four-tier system grows by accretion:
//
//  1. lock-order cycles: lock B acquired while holding A in one place and
//     A acquired while holding B in another (possibly through a chain of
//     calls across packages). Each strongly connected component of the
//     acquired-while-holding graph is reported once, with the acquisition
//     sites that close the cycle.
//  2. fabric calls under a lock: an RBIO/netmux RPC issued — directly or
//     transitively — while a sync lock is held. A lock held across a
//     network round trip couples the lock's critical section to a remote
//     peer's scheduling; with backpressure (ErrBackpressure) or a peer
//     outage in play, that is a convoy at best and a distributed deadlock
//     at worst.
//
// Lock identity is the *field or variable object* (types.Var), so `s.mu`
// names the same lock in every method of the type, across every package
// that can reach it. Held sets propagate through the CFG with a may-hold
// union join (a lock released on only one branch is still "may held"
// after the merge), and acquisition sets propagate through the
// cross-package call graph, so `a.mu.Lock(); helper()` sees the locks
// helper takes three calls deep.
//
// The call-graph approximation resolves static calls only (no interface
// dispatch), and goroutine/closure bodies are excluded from held-set
// tracking (they run on their own schedule) — both under-approximations,
// so the pass errs toward false negatives, never noise. Reviewed
// exceptions are annotated //socrates:lock-ok <reason> on the acquisition
// or call site.
type DeadlockLint struct {
	// FabricPkgs are import-path substrings whose Call/Send entry points
	// count as remote I/O for check 2.
	FabricPkgs []string
}

// NewDeadlockLint returns the pass configured for the Socrates tree.
func NewDeadlockLint() *DeadlockLint {
	return &DeadlockLint{FabricPkgs: []string{
		"socrates/internal/rbio",
		"socrates/internal/netmux",
	}}
}

// Name implements Pass.
func (l *DeadlockLint) Name() string { return "deadlocklint" }

// Run implements Pass (single-package convenience; fixtures use this).
func (l *DeadlockLint) Run(pkg *Package) []Diagnostic {
	return l.RunProgram([]*Package{pkg})
}

// lockEdge is one acquired-while-holding observation.
type lockEdge struct {
	from, to *types.Var
	pos      token.Position // acquisition (or call) site that creates the edge
	via      string         // "" for a direct acquire; callee name for transitive
}

// lockFacts accumulates one function's lock behavior.
type lockFacts struct {
	acquires map[*types.Var]bool // directly acquired anywhere in the body
	edges    []lockEdge          // direct acquired-while-holding edges
	// calls are call sites executed while at least one lock is held:
	// callee → (held set snapshot, site).
	calls []heldCall
}

type heldCall struct {
	callee *types.Func
	held   []*types.Var
	node   ast.Node
	pkg    *Package
}

// RunProgram implements ProgramPass.
func (l *DeadlockLint) RunProgram(pkgs []*Package) []Diagnostic {
	g := BuildCallGraph(pkgs)
	labels := make(map[*types.Var]string)
	facts := make(map[*types.Func]*lockFacts)

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				facts[obj] = l.analyzeFunc(pkg, fn, labels)
			}
		}
	}

	// Transitive acquisition sets over the call graph (fixpoint).
	trans := make(map[*types.Func]map[*types.Var]bool, len(facts))
	for fn, ff := range facts {
		set := make(map[*types.Var]bool, len(ff.acquires))
		for v := range ff.acquires {
			set[v] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn := range facts {
			for _, callee := range g.Callees[fn] {
				for v := range trans[callee] {
					if !trans[fn][v] {
						trans[fn][v] = true
						changed = true
					}
				}
			}
		}
	}

	// Fabric reachability: functions that transitively issue an RBIO or
	// netmux call.
	fabric := g.Reaches(l.isFabricCall)

	var out []Diagnostic
	edges := make(map[*types.Var]map[*types.Var]lockEdge)
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return // double-acquire is locklint's balance check's turf
		}
		if edges[e.from] == nil {
			edges[e.from] = make(map[*types.Var]lockEdge)
		}
		if _, ok := edges[e.from][e.to]; !ok {
			edges[e.from][e.to] = e
		}
	}
	for fn, ff := range facts {
		for _, e := range ff.edges {
			addEdge(e)
		}
		for _, c := range ff.calls {
			// Transitive ordering edges: held × locks the callee acquires.
			for v := range trans[c.callee] {
				for _, h := range c.held {
					addEdge(lockEdge{from: h, to: v,
						pos: c.pkg.Fset.Position(c.node.Pos()),
						via: c.callee.Name()})
				}
			}
			// Fabric call under a lock.
			if l.isFabricCall(c.callee) || fabric[c.callee] {
				if c.pkg.DirectiveAt("lock-ok", c.node) {
					continue
				}
				out = append(out, c.pkg.diag("deadlocklint", c.node,
					"%s calls %s (reaches the RBIO/netmux fabric) while holding %s; a lock held across a remote call convoys under backpressure — release it first or annotate //socrates:lock-ok <reason>",
					fn.Name(), c.callee.Name(), labels[c.held[0]]))
			}
		}
	}

	out = append(out, l.reportCycles(edges, labels)...)
	return out
}

// analyzeFunc runs the held-set dataflow over one function's CFG.
func (l *DeadlockLint) analyzeFunc(pkg *Package, fn *ast.FuncDecl, labels map[*types.Var]string) *lockFacts {
	ff := &lockFacts{acquires: make(map[*types.Var]bool)}
	cfg := BuildCFG(fn.Body)
	seenEdge := make(map[string]bool)
	seenCall := make(map[ast.Node]bool)
	prob := &heldLocksProblem{
		pkg: pkg, labels: labels,
		onAcquire: func(v *types.Var, held map[*types.Var]bool, node ast.Node) {
			ff.acquires[v] = true
			if pkg.DirectiveAt("lock-ok", node) {
				return
			}
			for h := range held {
				key := fmt.Sprintf("%p->%p@%d", h, v, node.Pos())
				if !seenEdge[key] {
					seenEdge[key] = true
					ff.edges = append(ff.edges, lockEdge{
						from: h, to: v, pos: pkg.Fset.Position(node.Pos())})
				}
			}
		},
		onCall: func(callee *types.Func, held map[*types.Var]bool, node ast.Node) {
			if len(held) == 0 || seenCall[node] {
				return
			}
			seenCall[node] = true
			snapshot := make([]*types.Var, 0, len(held))
			for h := range held {
				snapshot = append(snapshot, h)
			}
			sort.Slice(snapshot, func(i, j int) bool {
				return labels[snapshot[i]] < labels[snapshot[j]]
			})
			ff.calls = append(ff.calls, heldCall{callee: callee, held: snapshot, node: node, pkg: pkg})
		},
	}
	SolveForward(cfg, prob)
	return ff
}

// heldLocksProblem is the may-hold forward dataflow: facts are sets of
// lock objects (map[*types.Var]bool, treated as immutable), join is
// union. Lock/RLock adds, Unlock/RUnlock removes, a deferred unlock is
// ignored (the lock stays held to function exit). Function literals and
// goroutine bodies are skipped.
type heldLocksProblem struct {
	pkg       *Package
	labels    map[*types.Var]string
	onAcquire func(v *types.Var, held map[*types.Var]bool, node ast.Node)
	onCall    func(callee *types.Func, held map[*types.Var]bool, node ast.Node)
}

func (p *heldLocksProblem) Entry() Fact { return map[*types.Var]bool{} }

func (p *heldLocksProblem) Join(a, b Fact) Fact {
	as, bs := a.(map[*types.Var]bool), b.(map[*types.Var]bool)
	if len(bs) == 0 {
		return as
	}
	if len(as) == 0 {
		return bs
	}
	u := make(map[*types.Var]bool, len(as)+len(bs))
	for v := range as {
		u[v] = true
	}
	for v := range bs {
		u[v] = true
	}
	return u
}

func (p *heldLocksProblem) Equal(a, b Fact) bool {
	as, bs := a.(map[*types.Var]bool), b.(map[*types.Var]bool)
	if len(as) != len(bs) {
		return false
	}
	for v := range as {
		if !bs[v] {
			return false
		}
	}
	return true
}

func (p *heldLocksProblem) Transfer(n ast.Node, f Fact) Fact {
	held := f.(map[*types.Var]bool)
	// Deferred unlocks keep the lock held; deferred *locks* (pathological)
	// are ignored too.
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return held
	}
	mutated := false
	mutate := func() map[*types.Var]bool {
		if !mutated {
			c := make(map[*types.Var]bool, len(held)+1)
			for v := range held {
				c[v] = true
			}
			held, mutated = c, true
		}
		return held
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false // separate schedule
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if v, method, ok := p.lockVar(e); ok {
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					p.onAcquire(v, held, e)
					mutate()[v] = true
				case "Unlock", "RUnlock":
					if held[v] {
						delete(mutate(), v)
					}
				}
				return true
			}
			if callee, ok := calleeObject(p.pkg.Info, e).(*types.Func); ok {
				p.onCall(callee, held, e)
			}
		}
		return true
	})
	return held
}

// lockVar resolves a Lock/Unlock-family call to the lock's defining
// object (field or variable) and records a readable label for it.
func (p *heldLocksProblem) lockVar(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	obj := p.pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	v := p.resolveLockObject(sel.X)
	if v == nil {
		return nil, "", false
	}
	if _, ok := p.labels[v]; !ok {
		p.labels[v] = p.lockLabel(sel.X, v)
	}
	return v, obj.Name(), true
}

// resolveLockObject maps the lock expression (s.mu, mu, c.state.mu) to
// its variable object: the field for selectors, the var for idents.
func (p *heldLocksProblem) resolveLockObject(expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := p.pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := p.pkg.Info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := p.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.StarExpr:
		return p.resolveLockObject(e.X)
	}
	return nil
}

// lockLabel renders a stable human label: "pkg.Type.field" for fields,
// "pkg.var" otherwise.
func (p *heldLocksProblem) lockLabel(expr ast.Expr, v *types.Var) string {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if tv, ok := p.pkg.Info.Types[sel.X]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Name()
			}
		}
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// isFabricCall reports whether the function is an RBIO/netmux fabric
// entry point: a Call/Send/Dial in one of the fabric packages.
func (l *DeadlockLint) isFabricCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	inFabric := false
	for _, p := range l.FabricPkgs {
		if containsPath(path, p) {
			inFabric = true
			break
		}
	}
	if !inFabric {
		return false
	}
	switch fn.Name() {
	case "Call", "Send", "CallAddr", "DialTCP", "Dial":
		return true
	}
	return strings.HasPrefix(fn.Name(), "Call") || strings.HasPrefix(fn.Name(), "Send")
}

// reportCycles finds strongly connected components of the lock graph and
// reports each cycle once, naming the participating locks and one closing
// acquisition site.
func (l *DeadlockLint) reportCycles(edges map[*types.Var]map[*types.Var]lockEdge, labels map[*types.Var]string) []Diagnostic {
	// Tarjan SCC.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	// Deterministic iteration order for stable output.
	var nodes []*types.Var
	for v := range edges {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return labels[nodes[i]] < labels[nodes[j]] })
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	var out []Diagnostic
	for _, scc := range sccs {
		sort.Slice(scc, func(i, j int) bool { return labels[scc[i]] < labels[scc[j]] })
		inSCC := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		// Render the lock set and pick the lexically first edge inside the
		// SCC as the anchor site.
		var names []string
		for _, v := range scc {
			names = append(names, labels[v])
		}
		var anchor *lockEdge
		var sites []string
		for _, v := range scc {
			for w, e := range edges[v] {
				if !inSCC[w] {
					continue
				}
				e := e
				site := fmt.Sprintf("%s→%s at %s:%d", labels[v], labels[w], e.pos.Filename, e.pos.Line)
				if e.via != "" {
					site += " (via " + e.via + ")"
				}
				sites = append(sites, site)
				if anchor == nil || e.pos.Filename < anchor.pos.Filename ||
					(e.pos.Filename == anchor.pos.Filename && e.pos.Line < anchor.pos.Line) {
					anchor = &e
				}
			}
		}
		sort.Strings(sites)
		out = append(out, Diagnostic{
			Pos:  anchor.pos,
			Pass: "deadlocklint",
			Message: fmt.Sprintf("lock-order cycle among {%s}: %s; acquire these locks in one global order or annotate the reviewed site //socrates:lock-ok <reason>",
				strings.Join(names, ", "), strings.Join(sites, "; ")),
		})
	}
	return out
}
