package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errlint flags discarded errors from durability-critical callees. In
// Socrates the durability contract is "never acknowledge a commit that is
// not hardened" (§4.3); an error swallowed on the WAL/XLOG/simdisk/XStore
// path breaks that contract silently — the system keeps running and
// acknowledges writes it may have lost. Related unbundled-transaction work
// (Lomet & Fekete) observes that split log/storage tiers fail through
// exactly these dropped-error paths, not through crashes.
//
// A call is flagged when (a) its callee is defined in one of the critical
// packages, (b) the callee returns an error, and (c) the error result is
// discarded — either the whole call is an expression statement or the
// error's position on the left-hand side is the blank identifier.
//
// Intentional drops (lossy feed sends, best-effort progress reports) are
// annotated //socrates:ignore-err <reason>.
type Errlint struct {
	// CriticalPkgs are import-path substrings of durability-critical
	// packages; a callee defined in any of them is in scope.
	CriticalPkgs []string
}

// DefaultErrlint returns errlint configured for the Socrates tree: every
// tier that sits on the durability or availability path.
func DefaultErrlint() *Errlint {
	return &Errlint{CriticalPkgs: []string{
		"socrates/internal/wal",
		"socrates/internal/xlog",
		"socrates/internal/simdisk",
		"socrates/internal/xstore",
		"socrates/internal/rbpex",
		"socrates/internal/rbio",
		"socrates/internal/fcb",
		"socrates/internal/hadr",
		"socrates/internal/pageserver",
	}}
}

// NewErrlint returns errlint over the given critical package substrings
// (used by fixture tests).
func NewErrlint(criticalPkgs []string) *Errlint {
	return &Errlint{CriticalPkgs: criticalPkgs}
}

// Name implements Pass.
func (e *Errlint) Name() string { return "errlint" }

func (e *Errlint) critical(path string) bool {
	for _, p := range e.CriticalPkgs {
		if strings.Contains(path, p) {
			return true
		}
	}
	return false
}

// errResultIndexes reports which result positions of the call are typed
// error.
func errResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var idx []int
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx
	default:
		if isErrorType(tv.Type) {
			return []int{0}
		}
	}
	return nil
}

// Run implements Pass.
func (e *Errlint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	flag := func(node ast.Node, call *ast.CallExpr) {
		if pkg.DirectiveAt("ignore-err", node) {
			return
		}
		name := "function"
		if obj := calleeObject(pkg.Info, call); obj != nil {
			name = obj.Name()
		}
		out = append(out, pkg.diag("errlint", node,
			"error from durability-critical call %s (%s) is discarded; propagate it or annotate //socrates:ignore-err <reason>",
			name, calleePkgPath(pkg.Info, call)))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(st.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if !e.critical(calleePkgPath(pkg.Info, call)) {
					return true
				}
				if len(errResultIndexes(pkg.Info, call)) > 0 {
					flag(st, call)
				}
			case *ast.AssignStmt:
				// Single multi-value call: a, _ := f().
				if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
					if !ok || !e.critical(calleePkgPath(pkg.Info, call)) {
						return true
					}
					for _, i := range errResultIndexes(pkg.Info, call) {
						if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
							flag(st, call)
							break
						}
					}
					return true
				}
				// Parallel assignment: _ = f(), possibly mixed.
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) || !isBlank(st.Lhs[i]) {
						continue
					}
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !e.critical(calleePkgPath(pkg.Info, call)) {
						continue
					}
					if idx := errResultIndexes(pkg.Info, call); len(idx) == 1 && idx[0] == 0 {
						flag(st, call)
					}
				}
			}
			return true
		})
	}
	return out
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
