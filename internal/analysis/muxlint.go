package analysis

import (
	"go/ast"
	"strings"
)

// MuxLint enforces the netmux fabric discipline, introduced with the
// multiplexed inter-tier RPC transport: all inter-tier traffic flows
// through the pooled, backpressured netmux/RBIO stack, and every call
// that enters the fabric carries a deadline so an abandoned request
// releases its in-flight slot instead of occupying it forever.
//
// Two checks:
//
//  1. no-raw-dial: net.Dial / net.DialTimeout / net.DialTCP / … and
//     (*net.Dialer).Dial* are banned outside the transport packages
//     (internal/netmux, internal/rbio). A raw socket bypasses request-ID
//     demux, pooling, health eviction, and the in-flight caps — the
//     exact failure modes the fabric exists to own.
//  2. deadline-at-entry: a Call/Send into the fabric (rbio.Client,
//     rbio.Selector, rbio.Conn implementations, netmux.Pool/MuxConn)
//     whose context argument is a literal context.Background() or
//     context.TODO() carries no deadline and no cancellation: if the
//     peer stalls, the caller leaks a slot until the pool backpressures.
//     Genuine fire-and-wait-forever sites (boot-time recovery, tests'
//     harness plumbing) are annotated //socrates:nodeadline <reason>.
//
// The second check is a literal-site check, not dataflow: a ctx variable
// passed through is trusted to have been bounded by the caller (ctxlint
// already forces it to be threaded). What it catches is the root that
// MINTS an unbounded context directly at the wire.
type MuxLint struct {
	// TransportPkgs are import-path substrings allowed to open raw
	// sockets (the transport itself).
	TransportPkgs []string
	// FabricPkgs are import-path substrings whose Call/Send methods form
	// the fabric entry surface checked by deadline-at-entry.
	FabricPkgs []string
}

// DefaultMuxLint returns muxlint configured for the Socrates tree.
func DefaultMuxLint() *MuxLint {
	return &MuxLint{
		TransportPkgs: []string{
			"socrates/internal/netmux",
			"socrates/internal/rbio",
		},
		FabricPkgs: []string{
			"socrates/internal/rbio",
			"socrates/internal/netmux",
		},
	}
}

// NewMuxLint returns muxlint with explicit package sets (fixtures).
func NewMuxLint(transport, fabric []string) *MuxLint {
	return &MuxLint{TransportPkgs: transport, FabricPkgs: fabric}
}

// Name implements Pass.
func (m *MuxLint) Name() string { return "muxlint" }

// Run implements Pass.
func (m *MuxLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	inTransport := false
	for _, p := range m.TransportPkgs {
		if strings.Contains(pkg.Path, p) {
			inTransport = true
			break
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !inTransport {
				out = append(out, m.checkRawDial(pkg, call)...)
			}
			out = append(out, m.checkDeadline(pkg, call)...)
			return true
		})
	}
	return out
}

// checkRawDial flags net.Dial* calls outside the transport packages.
func (m *MuxLint) checkRawDial(pkg *Package, call *ast.CallExpr) []Diagnostic {
	obj := calleeObject(pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Dial") {
		return nil
	}
	if pkg.DirectiveAt("mux-ok", call) {
		return nil
	}
	return []Diagnostic{pkg.diag("muxlint", call,
		"raw net.%s bypasses the netmux fabric (no request-ID demux, pooling, health eviction, or backpressure); dial through internal/netmux or internal/rbio, or annotate //socrates:mux-ok <reason>",
		obj.Name())}
}

// checkDeadline flags fabric Call/Send sites whose ctx argument is a
// literal unbounded context.
func (m *MuxLint) checkDeadline(pkg *Package, call *ast.CallExpr) []Diagnostic {
	obj := calleeObject(pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if obj.Name() != "Call" && obj.Name() != "Send" {
		return nil
	}
	fabric := false
	for _, p := range m.FabricPkgs {
		if strings.Contains(obj.Pkg().Path(), p) {
			fabric = true
			break
		}
	}
	if !fabric || len(call.Args) == 0 {
		return nil
	}
	ctxName := unboundedCtxLiteral(pkg, call.Args[0])
	if ctxName == "" {
		return nil
	}
	if pkg.DirectiveAt("nodeadline", call) {
		return nil
	}
	return []Diagnostic{pkg.diag("muxlint", call,
		"context.%s() at a fabric %s site has no deadline: a stalled peer pins this request's in-flight slot until the pool backpressures; use context.WithTimeout, or annotate //socrates:nodeadline <reason>",
		ctxName, obj.Name())}
}

// unboundedCtxLiteral reports "Background" or "TODO" when expr is a
// direct context.Background()/context.TODO() call, else "".
func unboundedCtxLiteral(pkg *Package, expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return ""
	}
	obj := calleeObject(pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}
