package analysis

import (
	"go/ast"
	"go/types"
)

// LeakLint enforces the lifetime discipline a long-running four-tier
// service needs: nothing that schedules work or pins an fd may outlive
// its owner silently.
//
// Two checks:
//
//  1. Goroutine stop paths. For every `go` statement whose body is
//     available (a function literal, or a same-package function/method),
//     the body's CFG must reach its exit: some path must return. A
//     goroutine whose every path loops forever — no `case <-ctx.Done():
//     return`, no closed-channel return, no terminating condition — can
//     only be reclaimed by process death, which turns every Open/Start
//     into a leak in a tier that is supposed to restart in seconds.
//     Reachability is computed on the CFG (for{} with no break does not
//     reach exit; a select case that returns does), so the check follows
//     the paper's control flow, not a comment's promise.
//
//  2. Resource close paths. A locally created time.Ticker/Timer,
//     os.File, or net.Conn/Listener must be stopped/closed on *every*
//     CFG exit path: a deferred Stop/Close, or a plain call that
//     dominates each return. The forward dataflow tracks the open set
//     with a may-leak union join — open on any path to the exit is a
//     finding. Ownership transfer ends tracking: returning the resource,
//     storing it in a field or another variable, passing it to a call,
//     or capturing it in a closure hands the close obligation to someone
//     this intraprocedural pass cannot see (the write side of that
//     contract is the owner's own leaklint run).
//
// Reviewed exceptions — a deliberately process-lifetime goroutine, a
// conn whose Close lives with a pool — are annotated
// //socrates:leak-ok <reason> at the go statement or creation site.
type LeakLint struct{}

// NewLeakLint returns the pass.
func NewLeakLint() *LeakLint { return &LeakLint{} }

// Name implements Pass.
func (l *LeakLint) Name() string { return "leaklint" }

// resourceCtor describes a constructor whose result must be released.
type resourceCtor struct {
	kind    string          // human name for messages
	closers map[string]bool // method names that release it
}

// resourceCtors maps package path → function name → contract.
var resourceCtors = map[string]map[string]resourceCtor{
	"time": {
		"NewTicker": {kind: "ticker", closers: map[string]bool{"Stop": true}},
		"NewTimer":  {kind: "timer", closers: map[string]bool{"Stop": true}},
		"AfterFunc": {kind: "timer", closers: map[string]bool{"Stop": true}},
	},
	"os": {
		"Open":     {kind: "file", closers: map[string]bool{"Close": true}},
		"Create":   {kind: "file", closers: map[string]bool{"Close": true}},
		"OpenFile": {kind: "file", closers: map[string]bool{"Close": true}},
	},
	"net": {
		"Dial":        {kind: "conn", closers: map[string]bool{"Close": true}},
		"DialTimeout": {kind: "conn", closers: map[string]bool{"Close": true}},
		"Listen":      {kind: "listener", closers: map[string]bool{"Close": true}},
	},
}

// Run implements Pass.
func (l *LeakLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	decls := packageDecls(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, l.checkGoroutines(pkg, fn, decls)...)
			out = append(out, l.checkResources(pkg, fn.Name.Name, fn.Body)...)
			// Function literals get their own resource analysis: a ticker
			// created inside a goroutine body is that body's obligation.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, l.checkResources(pkg, fn.Name.Name+".func", lit.Body)...)
				}
				return true
			})
		}
	}
	return out
}

// packageDecls maps function objects to declarations within one package
// (for resolving `go s.loop()` to loop's body).
func packageDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					m[obj] = fn
				}
			}
		}
	}
	return m
}

// checkGoroutines flags `go` statements whose body provably never
// reaches its exit.
func (l *LeakLint) checkGoroutines(pkg *Package, fn *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		var what string
		switch callee := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			body, what = callee.Body, "goroutine"
		default:
			obj, ok := calleeObject(pkg.Info, g.Call).(*types.Func)
			if !ok {
				return true
			}
			decl, ok := decls[obj]
			if !ok {
				return true // body outside this package; out of scope
			}
			if FuncDirective(decl, "leak-ok") {
				return true
			}
			body, what = decl.Body, "goroutine "+obj.Name()
		}
		if body == nil {
			return true
		}
		if !BuildCFG(body).ReachesExit() {
			if !pkg.DirectiveAt("leak-ok", g) {
				out = append(out, pkg.diag("leaklint", g,
					"%s in %s has no reachable stop path (no route to return); add a ctx/done exit or annotate //socrates:leak-ok <reason>",
					what, fn.Name.Name))
			}
		}
		return true
	})
	return out
}

// openResource is one tracked creation site.
type openResource struct {
	obj  *types.Var
	ctor resourceCtor
	node ast.Node
}

// checkResources runs the open-set dataflow over one function body (a
// declaration's or a function literal's).
func (l *LeakLint) checkResources(pkg *Package, name string, body *ast.BlockStmt) []Diagnostic {
	resources := l.collectResources(pkg, body)
	if len(resources) == 0 {
		return nil
	}
	byObj := make(map[*types.Var]*openResource, len(resources))
	for i := range resources {
		byObj[resources[i].obj] = &resources[i]
	}

	cfg := BuildCFG(body)
	prob := &openSetProblem{pkg: pkg, byObj: byObj}
	out := SolveForward(cfg, prob)
	exit := ExitFact(cfg, prob, out)
	if exit == nil {
		return nil // exit unreachable: a forever server loop owns its resources
	}

	// Deferred closers cover every exit path.
	open := exit.(map[*types.Var]bool)
	closedByDefer := make(map[*types.Var]bool)
	for _, d := range cfg.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v, ok := prob.closerCall(call); ok {
					closedByDefer[v] = true
				}
			}
			return true
		})
	}

	var diags []Diagnostic
	for v := range open {
		if closedByDefer[v] {
			continue
		}
		r := byObj[v]
		if pkg.DirectiveAt("leak-ok", r.node) {
			continue
		}
		closer := "Close"
		for c := range r.ctor.closers {
			closer = c
		}
		diags = append(diags, pkg.diag("leaklint", r.node,
			"%s %q in %s is not %s()ed on every exit path; defer the release or annotate //socrates:leak-ok <reason>",
			r.ctor.kind, v.Name(), name, closer))
	}
	return diags
}

// collectResources finds `x := pkg.Ctor(...)` creation sites for tracked
// constructors where x is a plain local identifier. Nested function
// literals are excluded: each body is analyzed on its own.
func (l *LeakLint) collectResources(pkg *Package, body *ast.BlockStmt) []openResource {
	var out []openResource
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			// Plain `=` reassignment still creates an obligation, but the
			// variable's object comes from Uses.
			if v, ok = pkg.Info.Uses[id].(*types.Var); !ok {
				return true
			}
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pkg.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if m, ok := resourceCtors[obj.Pkg().Path()]; ok {
			if ctor, ok := m[obj.Name()]; ok {
				out = append(out, openResource{obj: v, ctor: ctor, node: as})
			}
		}
		return true
	})
	return out
}

// openSetProblem tracks the set of unreleased resources. Join is union
// (open on any path counts); ownership transfers remove the obligation.
type openSetProblem struct {
	pkg   *Package
	byObj map[*types.Var]*openResource
}

func (p *openSetProblem) Entry() Fact { return map[*types.Var]bool{} }

func (p *openSetProblem) Join(a, b Fact) Fact {
	as, bs := a.(map[*types.Var]bool), b.(map[*types.Var]bool)
	if len(bs) == 0 {
		return as
	}
	if len(as) == 0 {
		return bs
	}
	u := make(map[*types.Var]bool, len(as)+len(bs))
	for v := range as {
		u[v] = true
	}
	for v := range bs {
		u[v] = true
	}
	return u
}

func (p *openSetProblem) Equal(a, b Fact) bool {
	as, bs := a.(map[*types.Var]bool), b.(map[*types.Var]bool)
	if len(as) != len(bs) {
		return false
	}
	for v := range as {
		if !bs[v] {
			return false
		}
	}
	return true
}

func (p *openSetProblem) Transfer(n ast.Node, f Fact) Fact {
	set := f.(map[*types.Var]bool)
	mutated := false
	mutate := func() map[*types.Var]bool {
		if !mutated {
			c := make(map[*types.Var]bool, len(set)+1)
			for v := range set {
				c[v] = true
			}
			set, mutated = c, true
		}
		return set
	}
	// Creation sites in this node (not inside nested function literals —
	// those bodies are analyzed separately).
	skipIdents := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		if as, ok := x.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if v := p.identVar(id); v != nil {
					if _, tracked := p.byObj[v]; tracked {
						if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && p.isCtor(call) {
							mutate()[v] = true
							skipIdents[id] = true
						}
					}
				}
			}
		}
		return true
	})
	// Closer calls and member accesses. Skipping function literals here is
	// what makes closure capture count as an escape below: a selector use
	// inside a literal never lands in skipIdents, so the bare identifier
	// falls through to the escape scan.
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		switch e := x.(type) {
		case *ast.CallExpr:
			if v, ok := p.closerCall(e); ok {
				if set[v] {
					delete(mutate(), v)
				}
				// Don't treat the receiver ident as an escape.
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						skipIdents[id] = true
					}
				}
			}
		case *ast.SelectorExpr:
			// t.C, t.Stop — member access is not an escape; mark the base
			// ident so the ident case below skips it.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if v := p.identVar(id); v != nil {
					if _, tracked := p.byObj[v]; tracked {
						skipIdents[id] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || skipIdents[id] {
			return true
		}
		v := p.identVar(id)
		if v == nil {
			return true
		}
		if _, tracked := p.byObj[v]; !tracked {
			return true
		}
		// Bare use outside a member access: return, argument, store,
		// closure capture — ownership transferred.
		if set[v] {
			delete(mutate(), v)
		}
		return true
	})
	return set
}

func (p *openSetProblem) identVar(id *ast.Ident) *types.Var {
	if v, ok := p.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := p.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (p *openSetProblem) isCtor(call *ast.CallExpr) bool {
	obj := calleeObject(p.pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	m, ok := resourceCtors[obj.Pkg().Path()]
	if !ok {
		return false
	}
	_, ok = m[obj.Name()]
	return ok
}

// closerCall matches x.Stop()/x.Close() for a tracked resource x and
// returns its object.
func (p *openSetProblem) closerCall(call *ast.CallExpr) (*types.Var, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v := p.identVar(id)
	if v == nil {
		return nil, false
	}
	r, tracked := p.byObj[v]
	if !tracked || !r.ctor.closers[sel.Sel.Name] {
		return nil, false
	}
	return v, true
}
