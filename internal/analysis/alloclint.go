package analysis

import (
	"go/ast"
	"go/types"
)

// AllocLint enforces allocation budgets on declared hot paths. SteelDB's
// diagnosis of cloud OLTP bottlenecks — the real costs hide below
// user-space design, in per-call allocations and the GC pressure they
// feed — is the motivation: Socrates' performance story lives in a
// handful of functions (GetPage@LSN, the commit append, log apply, the
// netmux codec), and a single `make` or `fmt.Sprintf` sliding into one of
// them costs more than any architectural decision above it.
//
// A hot path is declared, not inferred: the function's doc comment
// carries
//
//	//socrates:hotpath <reason>
//
// where the reason names the paired testing.AllocsPerRun contract that
// enforces the budget at runtime (hotpath_alloc_test.go). Inside a
// declared function the pass flags every construct that heap-allocates
// per call:
//
//   - make(slice/map/chan) and new(T);
//   - pointer composite literals (&T{...}) and slice/map literals;
//   - append (backing-array growth; amortized growth on a long-lived
//     buffer is a reviewed //socrates:alloc-ok);
//   - string ↔ []byte / []rune conversions (copy per call);
//   - calls boxing arguments into a variadic ...any parameter
//     (fmt.Sprintf and friends — the interface-boxing churn shows up even
//     when the formatting itself is cheap);
//   - named allocator calls whose result is a fresh string or buffer
//     (fmt.Sprint*, fmt.Errorf, strconv.Itoa/Format*/Quote,
//     strings.Join/Repeat/ToUpper/ToLower/Replace/Split/Fields);
//   - function literals (closure environments escape to the heap).
//
// Nested function literals are not descended into: a closure's body runs
// on its own schedule (flag the closure's creation, not its contents).
// Cold branches inside a hot function — error paths, cache-miss fallbacks
// — are either outlined into separate unannotated functions (the
// preferred fix: it also helps inlining) or annotated
// //socrates:alloc-ok <reason>.
type AllocLint struct{}

// NewAllocLint returns the pass.
func NewAllocLint() *AllocLint { return &AllocLint{} }

// Name implements Pass.
func (l *AllocLint) Name() string { return "alloclint" }

// Run implements Pass.
func (l *AllocLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncDirective(fn, "hotpath") {
				continue
			}
			out = append(out, l.checkHot(pkg, fn)...)
		}
	}
	return out
}

// allocatorFuncs are named stdlib calls that return freshly allocated
// strings/slices.
var allocatorFuncs = map[string]map[string]bool{
	"fmt": {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "FormatBool": true, "Quote": true},
	"strings": {"Join": true, "Repeat": true, "ToUpper": true, "ToLower": true,
		"Replace": true, "ReplaceAll": true, "Split": true, "Fields": true,
		"Title": true},
}

func (l *AllocLint) checkHot(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	flag := func(node ast.Node, format string, args ...any) {
		if pkg.DirectiveAt("alloc-ok", node) {
			return
		}
		out = append(out, pkg.diag("alloclint", node, format, args...))
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			flag(e, "hot path %s allocates a closure per call; hoist it or annotate //socrates:alloc-ok <reason>", fn.Name.Name)
			return false // the body runs on its own schedule
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				flag(e, "hot path %s builds a slice literal per call; preallocate or pool it", fn.Name.Name)
			case *types.Map:
				flag(e, "hot path %s builds a map literal per call; preallocate or pool it", fn.Name.Name)
			}
			return true
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					flag(e, "hot path %s heap-allocates &composite per call; reuse or pool the value", fn.Name.Name)
					return false // don't double-flag the inner literal
				}
			}
			return true
		case *ast.CallExpr:
			l.checkCall(pkg, fn, e, flag)
			return true
		}
		return true
	})
	return out
}

// checkCall classifies one call inside a hot function.
func (l *AllocLint) checkCall(pkg *Package, fn *ast.FuncDecl, call *ast.CallExpr, flag func(ast.Node, string, ...any)) {
	// Builtins: make / new / append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			if b, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch b.Name() {
				case "make":
					flag(call, "hot path %s calls make per call; preallocate or pool the buffer", fn.Name.Name)
				case "new":
					flag(call, "hot path %s calls new per call; reuse or pool the value", fn.Name.Name)
				case "append":
					flag(call, "hot path %s appends (backing array may grow); preallocate capacity or annotate //socrates:alloc-ok <reason>", fn.Name.Name)
				}
				return
			}
		}
	}

	// Conversions: string(b), []byte(s), []rune(s).
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from, okFrom := pkg.Info.Types[call.Args[0]]
		if okFrom {
			if isStringByteConversion(from.Type, to) {
				flag(call, "hot path %s converts string↔bytes per call (copies); keep one representation", fn.Name.Name)
			}
		}
		return
	}

	obj := calleeObject(pkg.Info, call)
	fobj, isFunc := obj.(*types.Func)
	if !isFunc {
		return
	}

	// Named stdlib allocators.
	if fobj.Pkg() != nil {
		if m, ok := allocatorFuncs[fobj.Pkg().Path()]; ok && m[fobj.Name()] {
			flag(call, "hot path %s calls %s.%s (allocates its result per call)", fn.Name.Name, fobj.Pkg().Name(), fobj.Name())
			return
		}
	}

	// Interface boxing: non-interface arguments passed to a variadic
	// ...interface{} parameter escape to the heap.
	sig, ok := fobj.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() == 0 {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1).Type()
	slice, ok := last.(*types.Slice)
	if !ok {
		return
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return
	}
	fixed := sig.Params().Len() - 1
	if len(call.Args) > fixed && !call.Ellipsis.IsValid() {
		flag(call, "hot path %s boxes %d argument(s) into ...any calling %s (interface churn)", fn.Name.Name, len(call.Args)-fixed, fobj.Name())
	}

}

// isStringByteConversion reports a string↔[]byte/[]rune conversion.
func isStringByteConversion(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteSlice(to)) || (isByteSlice(from) && isStr(to))
}
