package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLint enforces the repo's context-first discipline, introduced with
// end-to-end request tracing: every request that crosses a tier boundary
// carries its trace identity in a context.Context, so a function that
// accepts a context anywhere but first position (easy to miss at call
// sites) or that manufactures a context.TODO() (a placeholder that
// silently drops the caller's trace and cancellation) breaks the span
// tree somewhere downstream.
//
// Three checks:
//
//  1. ctx-first: any function or method with a context.Context parameter
//     must take it as the first parameter (after the receiver).
//  2. no-todo: context.TODO() is banned in non-test code; wrappers that
//     genuinely have no caller context use context.Background().
//  3. inter-tier surface: exported functions in the designated inter-tier
//     packages whose body issues an RBIO call (rbio.Client / rbio.Selector
//     / rbio.Conn) must accept a context.Context so trace identity can
//     reach the wire. Background() wrappers delegating to a *Context
//     variant are recognized and exempt.
//
// Reviewed exceptions are annotated //socrates:ctx-ok <reason> on the
// line, the line above, or the function's doc comment.
type CtxLint struct {
	// InterTierPkgs are import-path substrings whose exported surface is
	// held to check 3. Checks 1 and 2 apply everywhere.
	InterTierPkgs []string
}

// DefaultCtxLint returns ctxlint configured for the Socrates tree: the
// packages whose exported functions sit on a tier boundary.
func DefaultCtxLint() *CtxLint {
	return &CtxLint{InterTierPkgs: []string{
		"socrates/internal/rbio",
		"socrates/internal/compute",
		"socrates/internal/pageserver",
		"socrates/internal/xlog",
		"socrates/internal/recovery",
	}}
}

// NewCtxLint returns ctxlint with the given inter-tier set (fixtures).
func NewCtxLint(interTier []string) *CtxLint { return &CtxLint{InterTierPkgs: interTier} }

// Name implements Pass.
func (c *CtxLint) Name() string { return "ctxlint" }

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// Run implements Pass.
func (c *CtxLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	interTier := false
	for _, p := range c.InterTierPkgs {
		if strings.Contains(pkg.Path, p) {
			interTier = true
			break
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, c.checkCtxFirst(pkg, fn)...)
			if interTier {
				out = append(out, c.checkInterTier(pkg, fn)...)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			if obj == nil || obj.Pkg() == nil ||
				obj.Pkg().Path() != "context" || obj.Name() != "TODO" {
				return true
			}
			if pkg.DirectiveAt("ctx-ok", call) {
				return true
			}
			out = append(out, pkg.diag("ctxlint", call,
				"context.TODO() drops the caller's trace and cancellation; thread the caller's ctx, or use context.Background() at a genuine root, or annotate //socrates:ctx-ok <reason>"))
			return true
		})
	}
	return out
}

// checkCtxFirst flags context.Context parameters in non-first position.
func (c *CtxLint) checkCtxFirst(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	if fn.Type.Params == nil {
		return nil
	}
	var out []Diagnostic
	pos := 0 // parameter index, counting each name in a grouped field
	for fi, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pkg.Info.TypeOf(field.Type)
		if t != nil && isContextType(t) && !(fi == 0 && pos == 0) {
			if !pkg.DirectiveAt("ctx-ok", fn) && !FuncDirective(fn, "ctx-ok") {
				out = append(out, pkg.diag("ctxlint", field,
					"context.Context must be the first parameter of %s (found at position %d); callers scan position 0 for the request context, or annotate //socrates:ctx-ok <reason>",
					fn.Name.Name, pos))
			}
		}
		pos += n
	}
	return out
}

// checkInterTier flags exported functions in inter-tier packages that
// issue RBIO calls without accepting a context.
func (c *CtxLint) checkInterTier(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	if !fn.Name.IsExported() || fn.Body == nil {
		return nil
	}
	// Already context-aware?
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if t := pkg.Info.TypeOf(field.Type); t != nil && isContextType(t) {
				return nil
			}
		}
	}
	// Background() wrapper delegating to a *Context variant is the
	// sanctioned compatibility pattern.
	if strings.HasSuffix(fn.Name.Name, "Context") {
		return nil
	}
	if delegatesToContextVariant(pkg, fn) {
		return nil
	}
	var hit ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pkg.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if obj.Pkg().Path() == "socrates/internal/rbio" &&
			(obj.Name() == "Call" || obj.Name() == "Send") {
			hit = call
			return false
		}
		return true
	})
	if hit == nil {
		return nil
	}
	if pkg.DirectiveAt("ctx-ok", fn) || FuncDirective(fn, "ctx-ok") ||
		pkg.DirectiveAt("ctx-ok", hit) {
		return nil
	}
	return []Diagnostic{pkg.diag("ctxlint", fn,
		"exported %s issues an RBIO call but accepts no context.Context; the trace identity cannot reach the wire — add a ctx-first variant or annotate //socrates:ctx-ok <reason>",
		fn.Name.Name)}
}

// delegatesToContextVariant reports whether the function body calls a
// sibling whose name is fn's name + "Context" (the wrapper pattern
// `func X(...) { return x.XContext(context.Background(), ...) }`).
func delegatesToContextVariant(pkg *Package, fn *ast.FuncDecl) bool {
	want := fn.Name.Name + "Context"
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObject(pkg.Info, call); obj != nil && obj.Name() == want {
			found = true
			return false
		}
		return true
	})
	return found
}
