package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockLint enforces the lock discipline the compute / page-server caches
// depend on, with three checks:
//
//  1. lock-by-value: a sync.Mutex (or a struct containing one) copied via
//     assignment, value parameter, or range variable — the copy and the
//     original no longer exclude each other;
//  2. lock-without-unlock: a function that calls X.Lock()/X.RLock() but
//     never unlocks X (neither inline nor deferred) — the hallmark of a
//     leaked critical section;
//  3. lock-across-I/O: a statement executed while a lock is held that sends
//     on a channel or calls across a package boundary into a
//     (simulated-latency) I/O package. Holding a cache mutex across a
//     simdisk write turns a microsecond critical section into a
//     millisecond one and is how the paper's GetPage@LSN tail latencies
//     regress. Calls within an I/O package itself are exempt: its own
//     mutexes guard its bookkeeping, and most intra-package calls (index
//     updates, metadata clones) never touch the simulated device.
//
// The held-lock tracking is an intra-procedural linear approximation: it
// follows statement order, branches inherit the held set, and an unlock on
// any path clears it (under-approximating, so exotic control flow yields
// false negatives rather than false positives). Reviewed exceptions are
// annotated //socrates:lock-ok <reason>.
type LockLint struct {
	// IOPkgs are import-path substrings whose calls count as I/O for
	// check 3.
	IOPkgs []string
}

// NewLockLint returns the pass configured for the Socrates tree.
func NewLockLint() *LockLint {
	return &LockLint{IOPkgs: []string{
		"socrates/internal/simdisk",
		"socrates/internal/xstore",
	}}
}

// Name implements Pass.
func (l *LockLint) Name() string { return "locklint" }

// containsLock reports whether t is or embeds a sync lock type by value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once":
				return true
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockType(t types.Type) bool { return containsLock(t, make(map[types.Type]bool)) }

// syncLockCall classifies a statement as a Lock/Unlock call on a sync
// primitive and returns the receiver key ("s.mu").
func syncLockCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return types.ExprString(sel.X), obj.Name(), true
	}
	return "", "", false
}

// Run implements Pass.
func (l *LockLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, l.checkCopies(pkg, fn)...)
			out = append(out, l.checkBalance(pkg, fn)...)
			out = append(out, l.checkHeldAcross(pkg, fn)...)
		}
	}
	return out
}

// --- check 1: lock copies ---

func (l *LockLint) checkCopies(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	flag := func(node ast.Node, what string) {
		if pkg.DirectiveAt("lock-ok", node) {
			return
		}
		out = append(out, pkg.diag("locklint", node,
			"%s copies a value containing a sync lock; pass a pointer instead", what))
	}
	// Value parameters (and receivers) of lock-containing type.
	checkFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if lockType(tv.Type) {
				flag(field, what)
			}
		}
	}
	checkFields(fn.Recv, "receiver")
	checkFields(fn.Type.Params, "parameter")
	// Assignments and range variables copying a lock-containing value.
	copySource := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			return true
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) || isBlank(st.Lhs[i]) || !copySource(rhs) {
					continue
				}
				tv, ok := pkg.Info.Types[rhs]
				if !ok {
					continue
				}
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					continue
				}
				if lockType(tv.Type) {
					flag(st, "assignment")
				}
			}
		case *ast.RangeStmt:
			if st.Value == nil || isBlank(st.Value) {
				return true
			}
			if tv, ok := pkg.Info.Types[st.Value]; ok && lockType(tv.Type) {
				flag(st, "range variable")
			}
		}
		return true
	})
	return out
}

// --- check 2: Lock without any Unlock ---

func (l *LockLint) checkBalance(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	locks := make(map[string][]ast.Node) // key -> Lock call sites
	unlocked := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := syncLockCall(pkg.Info, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock", "RLock":
			locks[key] = append(locks[key], call)
		case "Unlock", "RUnlock":
			unlocked[key] = true
		}
		return true
	})
	var out []Diagnostic
	for key, sites := range locks {
		if unlocked[key] {
			continue
		}
		for _, site := range sites {
			if pkg.DirectiveAt("lock-ok", site) {
				continue
			}
			out = append(out, pkg.diag("locklint", site,
				"%s is locked but never unlocked in this function; add a defer %s.Unlock() or annotate //socrates:lock-ok <reason>",
				key, key))
		}
	}
	return out
}

// --- check 3: lock held across channel send / I/O call ---

func (l *LockLint) checkHeldAcross(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	held := make(map[string]bool)
	flag := func(node ast.Node, key, what string) {
		if pkg.DirectiveAt("lock-ok", node) {
			return
		}
		out = append(out, pkg.diag("locklint", node,
			"%s while %s is held; release the lock first or annotate //socrates:lock-ok <reason>", what, key))
	}
	// risky scans one statement's expressions for sends and I/O calls,
	// without descending into function literals (their body runs later).
	risky := func(st ast.Stmt) {
		ast.Inspect(st, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				for key := range held {
					flag(e, key, "channel send")
				}
			case *ast.CallExpr:
				if _, _, isLock := syncLockCall(pkg.Info, e); isLock {
					return true
				}
				path := calleePkgPath(pkg.Info, e)
				if path == pkg.Path {
					return true // intra-package call, not an I/O-tier crossing
				}
				for _, io := range l.IOPkgs {
					if path != "" && containsPath(path, io) {
						for key := range held {
							flag(e, key, "I/O call into "+path)
						}
						break
					}
				}
			}
			return true
		})
	}
	var walkStmts func(list []ast.Stmt)
	walkStmt := func(st ast.Stmt) {}
	walkStmts = func(list []ast.Stmt) {
		for _, st := range list {
			walkStmt(st)
		}
	}
	walkStmt = func(st ast.Stmt) {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if key, method, ok := syncLockCall(pkg.Info, call); ok {
					switch method {
					case "Lock", "RLock":
						risky(st) // sends/I/O in the Lock args themselves
						held[key] = true
						return
					case "Unlock", "RUnlock":
						delete(held, key)
						return
					}
				}
			}
			risky(st)
		case *ast.DeferStmt:
			if key, method, ok := syncLockCall(pkg.Info, s.Call); ok &&
				(method == "Unlock" || method == "RUnlock") {
				// defer X.Unlock(): X stays held for the rest of the
				// function; subsequent sends/I/O still flag.
				_ = key
				return
			}
			risky(st)
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			risky(&ast.ExprStmt{X: s.Cond})
			walkStmts(s.Body.List)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkStmts(s.Body.List)
		case *ast.RangeStmt:
			walkStmts(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.SelectStmt:
			// Select communications are scheduling points by design; only
			// inspect the case bodies.
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.GoStmt:
			// The goroutine body runs without our lock context.
		default:
			risky(st)
		}
	}
	walkStmts(fn.Body.List)
	return out
}

// containsPath reports whether the import path contains the pattern.
func containsPath(path, pattern string) bool {
	return pattern != "" && strings.Contains(path, pattern)
}
