package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// ObsLint enforces the observability plane's naming contract: every
// instrument name handed to the obs registry (Counter/Gauge/Histogram) or
// the watermark ladder (Watermark) must be dot-namespaced lowercase —
// `tier.noun` or deeper, like "lz.write.latency" or "pageserver.applied_lsn".
//
// The contract matters beyond taste: the Prometheus exposition derives
// metric names mechanically (dots to underscores under a socrates_ prefix),
// dashboards and the watchdog's ladder edges key on exact strings, and a
// one-off name like "CommitLatency" silently forks a second series that no
// alert references. The pass resolves constant string arguments (literals
// and named constants), so the canonical WM* constants are validated at
// their use sites too; dynamically built names (per-replica keys) are
// invisible to static analysis and are left to the registry's runtime.
//
// Reviewed exceptions carry //socrates:metric-ok <reason>.
type ObsLint struct {
	// Pkgs are import-path substrings of the packages whose
	// Counter/Gauge/Histogram/Watermark methods take instrument names.
	Pkgs []string
}

// obsNamePattern is the naming contract: at least two dot-separated
// segments, each starting [a-z] and continuing [a-z0-9_].
var obsNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// obsNameMethods maps method name -> the argument index carrying the
// instrument name.
var obsNameMethods = map[string]int{
	"Counter":   0,
	"Gauge":     0,
	"Histogram": 0,
	"Watermark": 0,
}

// DefaultObsLint returns obslint configured for the Socrates tree.
func DefaultObsLint() *ObsLint {
	return &ObsLint{Pkgs: []string{"socrates/internal/obs"}}
}

// NewObsLint returns obslint watching the given defining packages (fixtures).
func NewObsLint(pkgs []string) *ObsLint { return &ObsLint{Pkgs: pkgs} }

// Name implements Pass.
func (o *ObsLint) Name() string { return "obslint" }

// Run implements Pass.
func (o *ObsLint) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			argIdx, watched := obsNameMethods[obj.Name()]
			if !watched || !o.watchesPkg(obj.Pkg().Path()) {
				return true
			}
			if len(call.Args) <= argIdx {
				return true
			}
			arg := call.Args[argIdx]
			name, ok := constString(pkg, arg)
			if !ok {
				// Dynamically built name (per-replica key helper etc.):
				// nothing to check statically.
				return true
			}
			if obsNamePattern.MatchString(name) {
				return true
			}
			if pkg.DirectiveAt("metric-ok", call) {
				return true
			}
			out = append(out, pkg.diag("obslint", arg,
				"instrument name %q breaks the metric naming contract ^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)+$ "+
					"(dot-namespaced lowercase, e.g. \"lz.write.latency\"); fix the name or annotate //socrates:metric-ok <reason>",
				name))
			return true
		})
	}
	return out
}

func (o *ObsLint) watchesPkg(path string) bool {
	for _, p := range o.Pkgs {
		if strings.Contains(path, p) {
			return true
		}
	}
	return false
}

// constString resolves expr to a compile-time string value (literal or
// named constant), if it has one.
func constString(pkg *Package, expr ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
