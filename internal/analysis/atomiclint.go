package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicLint flags variables (typically struct fields) that are accessed
// both through sync/atomic functions and through plain reads or writes in
// the same package. Mixing the two silently forfeits the happens-before
// edges the atomic calls were supposed to provide: the plain access races
// with every atomic one, and -race only catches it when the schedule
// cooperates. In a watermark-heavy system like Socrates (applied / hardened
// / destaged LSNs advancing on hot paths) this is exactly the class of bug
// that shows up as a stale read once in a million batches.
//
// The analysis is package-local: it collects every object whose address is
// passed to a sync/atomic call, then reports every use of those objects
// outside a sync/atomic argument. Reviewed exceptions (e.g. plain writes
// strictly before any goroutine is spawned) are annotated
// //socrates:atomic-ok <reason>.
type AtomicLint struct{}

// NewAtomicLint returns the pass.
func NewAtomicLint() *AtomicLint { return &AtomicLint{} }

// Name implements Pass.
func (a *AtomicLint) Name() string { return "atomiclint" }

type span struct{ lo, hi token.Pos }

// Run implements Pass.
func (a *AtomicLint) Run(pkg *Package) []Diagnostic {
	// Phase 1: objects whose address feeds sync/atomic, plus the source
	// spans of those atomic calls.
	atomicObjs := make(map[types.Object]bool)
	var atomicSpans []span
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleePkgPath(pkg.Info, call) != "sync/atomic" {
				return true
			}
			atomicSpans = append(atomicSpans, span{call.Pos(), call.End()})
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := referencedObject(pkg.Info, un.X); obj != nil {
					atomicObjs[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	inAtomic := func(pos token.Pos) bool {
		for _, s := range atomicSpans {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}
	// Phase 2: plain uses of those objects.
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || !atomicObjs[obj] || inAtomic(id.Pos()) {
				return true
			}
			if pkg.DirectiveAt("atomic-ok", id) {
				return true
			}
			out = append(out, pkg.diag("atomiclint", id,
				"%s is accessed with sync/atomic elsewhere in this package but read/written plainly here; use atomic access (or the sync/atomic types) everywhere, or annotate //socrates:atomic-ok <reason>",
				id.Name))
			return true
		})
	}
	return out
}

// referencedObject resolves the variable object behind x.f / x / (*x).f.
func referencedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	case *ast.StarExpr:
		return referencedObject(info, x.X)
	case *ast.IndexExpr:
		return referencedObject(info, x.X)
	}
	return nil
}
