package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"socrates/internal/analysis"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, loader *analysis.Loader, rel string) *analysis.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := loader.LoadDir(dir, "fixture/"+rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

func newLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return loader
}

// runFixturePair asserts the pass fires on the bad fixture (at least
// wantBad findings, each containing wantSubstr) and stays silent on the
// clean one — including directive validation, so the clean fixture's
// annotations must carry reasons.
func runFixturePair(t *testing.T, pass analysis.Pass, name string, wantBad int, wantSubstr string) {
	t.Helper()
	loader := newLoader(t)

	bad := loadFixture(t, loader, name+"/bad")
	badDiags := pass.Run(bad)
	if len(badDiags) < wantBad {
		t.Fatalf("%s on bad fixture: got %d findings, want >= %d:\n%s",
			pass.Name(), len(badDiags), wantBad, render(badDiags))
	}
	for _, d := range badDiags {
		if d.Pass != pass.Name() {
			t.Errorf("finding from wrong pass: %s", d)
		}
		if !strings.Contains(d.Message, wantSubstr) {
			t.Errorf("finding message %q missing %q", d.Message, wantSubstr)
		}
	}

	clean := loadFixture(t, loader, name+"/clean")
	cleanDiags := append(pass.Run(clean), analysis.CheckDirectives(clean)...)
	if len(cleanDiags) != 0 {
		t.Fatalf("%s on clean fixture: want 0 findings, got:\n%s",
			pass.Name(), render(cleanDiags))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestErrlintFixtures(t *testing.T) {
	pass := analysis.NewErrlint([]string{"fixture/errlint"})
	runFixturePair(t, pass, "errlint", 3, "durability-critical")
}

func TestLSNLintFixtures(t *testing.T) {
	runFixturePair(t, analysis.NewLSNLint(), "lsnlint", 4, "raw LSN")
}

func TestLockLintFixtures(t *testing.T) {
	runFixturePair(t, analysis.NewLockLint(), "locklint", 4, "lock")
}

func TestSleeplintFixtures(t *testing.T) {
	runFixturePair(t, analysis.DefaultSleeplint(), "sleeplint", 1, "time.Sleep")
}

func TestAtomicLintFixtures(t *testing.T) {
	runFixturePair(t, analysis.NewAtomicLint(), "atomiclint", 2, "sync/atomic")
}

func TestCtxLintFixtures(t *testing.T) {
	pass := analysis.NewCtxLint([]string{"fixture/ctxlint"})
	runFixturePair(t, pass, "ctxlint", 3, "context.")
}

func TestObsLintFixtures(t *testing.T) {
	pass := analysis.NewObsLint([]string{"fixture/obslint"})
	runFixturePair(t, pass, "obslint", 6, "naming contract")
}

// TestObsLintFindsExactSites pins each obslint failure shape to the fixture
// so one check's regression cannot hide behind another: the bad fixture
// carries exactly six violations (capitalized, namespace-less, mixed-case
// segment, empty segment, named constant, digit-leading segment).
func TestObsLintFindsExactSites(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "obslint/bad")
	diags := analysis.NewObsLint([]string{"fixture/obslint"}).Run(bad)
	if len(diags) != 6 {
		t.Fatalf("obslint on bad fixture: got %d findings, want exactly 6:\n%s",
			len(diags), render(diags))
	}
	wantNames := []string{"CommitCount", "pages", "lz.Write.Lat", "lz..latency", "CommitLSN", "compute.9lsn"}
	for _, name := range wantNames {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, `"`+name+`"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding for bad name %q:\n%s", name, render(diags))
		}
	}
}

// TestCtxLintFindsExactSites pins each ctxlint failure mode to the fixture
// so one check's regression cannot hide behind another.
func TestCtxLintFindsExactSites(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "ctxlint/bad")
	diags := analysis.NewCtxLint([]string{"fixture/ctxlint"}).Run(bad)
	var notFirst, todo, noCtx int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "first parameter"):
			notFirst++
		case strings.Contains(d.Message, "context.TODO"):
			todo++
		case strings.Contains(d.Message, "accepts no context.Context"):
			noCtx++
		}
	}
	// Refresh trips both the TODO check and the missing-context check.
	if notFirst != 1 || todo != 1 || noCtx != 2 {
		t.Fatalf("ctxlint check coverage: notFirst=%d todo=%d noCtx=%d\n%s",
			notFirst, todo, noCtx, render(diags))
	}
}

// TestLockLintFindsExactSites pins the specific locklint failure modes to
// their fixture lines so a regression in one check cannot hide behind
// another.
func TestLockLintFindsExactSites(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "locklint/bad")
	diags := analysis.NewLockLint().Run(bad)
	var copies, leaks, sends int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "copies a value"):
			copies++
		case strings.Contains(d.Message, "never unlocked"):
			leaks++
		case strings.Contains(d.Message, "channel send"):
			sends++
		}
	}
	if copies < 2 || leaks < 1 || sends < 1 {
		t.Fatalf("locklint check coverage: copies=%d leaks=%d sends=%d\n%s",
			copies, leaks, sends, render(diags))
	}
}

// TestDirectiveValidation ensures malformed annotations are themselves
// diagnostics.
func TestDirectiveValidation(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "directives/bad")
	diags := analysis.CheckDirectives(pkg)
	var unknown, missing int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "unknown directive"):
			unknown++
		case strings.Contains(d.Message, "needs a reason"):
			missing++
		}
	}
	if unknown != 1 || missing != 1 {
		t.Fatalf("directive validation: unknown=%d missing=%d\n%s", unknown, missing, render(diags))
	}
}

// TestRunOrdersFindings checks the combined runner sorts by position.
func TestRunOrdersFindings(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "lsnlint/bad")
	diags := analysis.Run([]*analysis.Package{bad}, []analysis.Pass{analysis.NewLSNLint()})
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Filename == diags[i-1].Pos.Filename && diags[i].Pos.Line < diags[i-1].Pos.Line {
			t.Fatalf("findings out of order:\n%s", render(diags))
		}
	}
	if len(diags) == 0 {
		t.Fatal("expected findings from lsnlint/bad")
	}
}

// TestLoaderLoadsRepoPackage proves the module-aware loader type-checks a
// real cross-importing package of this repo.
func TestLoaderLoadsRepoPackage(t *testing.T) {
	loader := newLoader(t)
	dir := filepath.Join(loader.Root, "internal", "pageserver")
	pkg, err := loader.LoadDir(dir, loader.Module+"/internal/pageserver")
	if err != nil {
		t.Fatalf("loading internal/pageserver: %v", err)
	}
	if pkg.Pkg.Name() != "pageserver" {
		t.Fatalf("got package %q", pkg.Pkg.Name())
	}
}

func TestMuxLintFixtures(t *testing.T) {
	runFixturePair(t, analysis.DefaultMuxLint(), "muxlint", 5, "fabric")
}

// TestMuxLintFindsExactSites pins each muxlint failure mode to the
// fixture sites that exercise it.
func TestMuxLintFindsExactSites(t *testing.T) {
	loader := newLoader(t)
	bad := loadFixture(t, loader, "muxlint/bad")
	diags := analysis.DefaultMuxLint().Run(bad)
	var rawDial, noDeadline int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "raw net.Dial"):
			rawDial++
		case strings.Contains(d.Message, "no deadline"):
			noDeadline++
		}
	}
	if rawDial != 2 || noDeadline != 3 {
		t.Fatalf("muxlint check coverage: rawDial=%d noDeadline=%d\n%s",
			rawDial, noDeadline, render(diags))
	}
}
