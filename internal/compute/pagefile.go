package compute

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"socrates/internal/btree"
	"socrates/internal/fcb"
	"socrates/internal/metrics"
	"socrates/internal/netmux"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/pageserver"
	"socrates/internal/rbio"
	"socrates/internal/rbpex"
	"socrates/internal/socerr"
	"socrates/internal/wal"
)

// Resolver maps a page to the RBIO selector of the page-server replica set
// owning its partition.
type Resolver func(id page.ID) (*rbio.Selector, error)

// RemotePageFile is the compute node's FCB: a sparse RBPEX cache in front
// of the page servers. Reads miss into GetPage@LSN (§4.4); the evicted-LSN
// map supplies the per-page minimum LSN ("the Primary builds a hash map
// which stores the highest LSN for every page evicted").
//
// For secondaries it also implements the §4.5 race protocol: a miss
// registers the page as pending before the remote call, so the log-apply
// thread queues (rather than drops) records for in-flight pages; the queued
// records are applied to the fetched page before it enters the cache.
type RemotePageFile struct {
	cache   *rbpex.Cache
	resolve Resolver
	// floor supplies the minimum LSN for pages with no evicted-LSN entry:
	// the recovery LSN on a primary, the applied watermark on a secondary.
	floor func() page.LSN

	mu      sync.Mutex
	evicted map[page.ID]page.LSN
	pending map[page.ID][]*wal.Record // §4.5 registration (secondaries)

	fetches  metrics.Counter
	rangeOps metrics.Counter

	// coal coalesces concurrent GetPage@LSN misses for the same page
	// into one wire RPC (netmux singleflight).
	coal *netmux.Coalescer

	tracer *obs.Tracer
	obsReg *obs.Registry
	flight *obs.FlightRecorder
	waits  *obs.WaitRecorder
}

// SetObs wires a tracer and metrics registry: a remote GetPage@LSN miss
// under a traced request becomes a "compute.getpage" span, and every miss
// records compute.getpage.* metrics. The miss coalescer's hit/miss
// counters (netmux.coalesce.*) land on the same registry.
func (f *RemotePageFile) SetObs(t *obs.Tracer, r *obs.Registry) {
	f.tracer, f.obsReg = t, r
	f.coal = netmux.NewCoalescer(netmux.NewMetrics(r))
}

// SetFlight wires the flight recorder: cache misses (remote GetPage@LSN
// fetches) and evictions drop compact events into the ring.
func (f *RemotePageFile) SetFlight(fr *obs.FlightRecorder) { f.flight = fr }

// SetWaits wires wait-event accounting: the wire portion of a GetPage@LSN
// miss (coalesced or not) records under page.remote, attributed to the
// request's profile and getpage span.
func (f *RemotePageFile) SetWaits(wr *obs.WaitRecorder) { f.waits = wr }

// NewRemotePageFile builds the cache-fronted page file.
func NewRemotePageFile(cfg rbpex.Config, resolve Resolver, floor func() page.LSN) (*RemotePageFile, error) {
	f := &RemotePageFile{
		resolve: resolve,
		floor:   floor,
		evicted: make(map[page.ID]page.LSN),
		pending: make(map[page.ID][]*wal.Record),
		coal:    netmux.NewCoalescer(nil),
	}
	cfg.OnEvict = f.noteEvicted
	cache, err := rbpex.Open(cfg)
	if err != nil {
		return nil, err
	}
	f.cache = cache
	return f, nil
}

// Cache exposes the underlying RBPEX (hit-rate experiments).
func (f *RemotePageFile) Cache() *rbpex.Cache { return f.cache }

// Fetches reports remote GetPage calls issued.
func (f *RemotePageFile) Fetches() int64 { return f.fetches.Load() }

func (f *RemotePageFile) noteEvicted(id page.ID, lsn page.LSN) {
	f.mu.Lock()
	if lsn.After(f.evicted[id]) {
		f.evicted[id] = lsn
	}
	f.mu.Unlock()
	f.flight.Record(obs.TierCompute, "compute.evict", uint64(lsn), 0,
		"page "+strconv.FormatUint(uint64(id), 10))
}

// minLSN computes the GetPage@LSN argument for a page: its evicted LSN if
// known, else the node's floor.
func (f *RemotePageFile) minLSN(id page.ID) page.LSN {
	f.mu.Lock()
	lsn, ok := f.evicted[id]
	f.mu.Unlock()
	if ok {
		return lsn
	}
	return f.floor()
}

// Read returns the page from cache, or fetches it via GetPage@LSN.
func (f *RemotePageFile) Read(id page.ID) (*page.Page, error) {
	return f.ReadContext(context.Background(), id)
}

// ReadContext is Read bounded by (and traced through) ctx.
func (f *RemotePageFile) ReadContext(ctx context.Context, id page.ID) (*page.Page, error) {
	if pg, ok := f.cache.Get(id); ok {
		return pg, nil
	}
	return f.fetch(ctx, id)
}

func (f *RemotePageFile) fetch(ctx context.Context, id page.ID) (*page.Page, error) {
	// Register before calling (§4.5), so concurrent log apply queues
	// records for this page instead of ignoring them.
	f.mu.Lock()
	_, already := f.pending[id]
	if !already {
		f.pending[id] = nil
	}
	f.mu.Unlock()
	if !already {
		defer func() {
			f.mu.Lock()
			delete(f.pending, id)
			f.mu.Unlock()
		}()
	}

	sel, err := f.resolve(id)
	if err != nil {
		return nil, err
	}
	f.fetches.Inc()
	start := time.Now()
	// A GetPage@LSN miss is itself a request worth tracing (§7 Table 4
	// reads its latency breakdown off this span tree): join the caller's
	// trace when one is ambient, else root a fresh one. Misses are bounded
	// by cache capacity — unlike continuous polls (xlog.pull, log feeds),
	// they cannot flood the tracer's retention ring.
	ctx, span := f.tracer.StartSpan(ctx, obs.TierCompute, "compute.getpage")
	span.SetAttr("page", strconv.FormatUint(uint64(id), 10))
	defer span.End()
	f.obsReg.Counter("compute.getpage.remote").Inc()
	minLSN := f.minLSN(id)
	// Coalesce with any in-flight fetch of the same page at a compatible
	// LSN: concurrent misses share one wire RPC (netmux singleflight).
	// page.remote covers the whole wire wait, shared or not — a coalesced
	// caller is just as blocked as the one holding the RPC.
	region := f.waits.Begin(ctx, obs.WaitPageRemote)
	resp, shared, err := f.coal.Do(ctx, id, minLSN, func() (*rbio.Response, error) {
		return sel.Call(ctx, &rbio.Request{Type: rbio.MsgGetPage, Page: id, LSN: minLSN})
	})
	region.End()
	if shared {
		span.SetAttr("coalesced", "true")
	}
	f.obsReg.Histogram("compute.getpage.latency").Observe(time.Since(start))
	f.flight.RecordTrace(obs.TierCompute, "compute.getpage", uint64(minLSN),
		span.Context().TraceID, time.Since(start),
		"page "+strconv.FormatUint(uint64(id), 10))
	if err != nil {
		span.SetError(err)
		return nil, fmt.Errorf("compute: GetPage(%d): %w", id, err)
	}
	if err := resp.Err(); err != nil {
		span.SetError(err)
		return nil, fmt.Errorf("compute: GetPage(%d): %w", id, err)
	}
	pages, err := pageserver.DecodePages(resp.Payload)
	if err != nil || len(pages) != 1 {
		return nil, fmt.Errorf("compute: GetPage(%d): bad payload (%d pages, %v)", id, len(pages), err)
	}
	pg := pages[0]

	// Apply any records queued while the fetch was in flight.
	f.mu.Lock()
	queued := f.pending[id]
	f.pending[id] = nil
	f.mu.Unlock()
	for _, rec := range queued {
		if _, err := btree.Apply(pg, rec); err != nil {
			return nil, err
		}
	}
	if err := f.cache.Put(pg); err != nil {
		return nil, err
	}
	return pg, nil
}

// rangeFanout bounds how many per-page requests of one range read are in
// flight at once. It sits below the netmux pool's in-flight cap so one
// bulk range read cannot trip backpressure for latency-sensitive misses.
const rangeFanout = 16

// ReadRange fetches count consecutive pages, bypassing the sparse cache
// (scan offloading, §4.1.5).
func (f *RemotePageFile) ReadRange(start page.ID, count int) ([]*page.Page, error) {
	return f.ReadRangeContext(context.Background(), start, count)
}

// ReadRangeContext is ReadRange bounded by (and traced through) ctx.
//
// The range is pipelined as scattered per-page GetPage@LSN requests —
// the mux fabric keeps up to rangeFanout of them in flight on the wire
// at once — and reassembled in order. Pages resolve individually, so a
// range spanning a partition split boundary scatters to the right
// owners. A mid-range failure returns the successful prefix plus a
// socerr.ErrPartial-classified error, so warmup/scan callers keep the
// progress they paid for.
func (f *RemotePageFile) ReadRangeContext(ctx context.Context, start page.ID, count int) ([]*page.Page, error) {
	if count <= 0 {
		return nil, nil
	}
	f.rangeOps.Inc()
	floor := f.floor()
	type res struct {
		pg  *page.Page
		err error
	}
	results := make([]res, count)
	sem := make(chan struct{}, rangeFanout)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				results[i].err = socerr.FromContext(err)
				return
			}
			id := start + page.ID(i)
			sel, err := f.resolve(id)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := sel.Call(ctx, &rbio.Request{Type: rbio.MsgGetPage, Page: id, LSN: floor})
			if err != nil {
				results[i].err = err
				return
			}
			if err := resp.Err(); err != nil {
				results[i].err = err
				return
			}
			pages, err := pageserver.DecodePages(resp.Payload)
			if err != nil || len(pages) != 1 {
				results[i].err = fmt.Errorf("compute: range page %d: bad payload (%d pages, %v)",
					id, len(pages), err)
				return
			}
			results[i].pg = pages[0]
		}(i)
	}
	wg.Wait()
	out := make([]*page.Page, 0, count)
	for i := range results {
		if results[i].err != nil {
			if len(out) == 0 {
				return nil, results[i].err
			}
			return out, socerr.Partialf("compute: range [%d,+%d): %d pages then page %d: %v",
				start, count, len(out), start+page.ID(i), results[i].err)
		}
		out = append(out, results[i].pg)
	}
	return out, nil
}

// OffloadScan pushes a cell-filtering scan of count pages starting at
// start down to the owning page server (§4.1.5): only the match summary
// crosses the network, not the pages.
func (f *RemotePageFile) OffloadScan(start page.ID, count int, keyLo, keyHi []byte) (pageserver.ScanResult, error) {
	return f.OffloadScanContext(context.Background(), start, count, keyLo, keyHi)
}

// OffloadScanContext is OffloadScan bounded by (and traced through) ctx.
func (f *RemotePageFile) OffloadScanContext(ctx context.Context, start page.ID, count int, keyLo, keyHi []byte) (pageserver.ScanResult, error) {
	sel, err := f.resolve(start)
	if err != nil {
		return pageserver.ScanResult{}, err
	}
	resp, err := sel.Call(ctx, &rbio.Request{
		Type:     rbio.MsgScanCells,
		Page:     start,
		MaxBytes: int32(count),
		LSN:      f.floor(),
		Payload:  pageserver.EncodeKeyRange(keyLo, keyHi),
	})
	if err != nil {
		return pageserver.ScanResult{}, err
	}
	if err := resp.Err(); err != nil {
		return pageserver.ScanResult{}, err
	}
	return pageserver.DecodeScanResult(resp.Payload)
}

// Write installs a page version in the local cache (the durable copy is
// the log; page servers converge by applying it).
func (f *RemotePageFile) Write(pg *page.Page) error {
	return f.cache.Put(pg)
}

// --- log-apply integration (secondaries) ---

// QueueIfPending queues a record for a page with an in-flight fetch.
// Reports whether the record was queued.
func (f *RemotePageFile) QueueIfPending(rec *wal.Record) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pending[rec.Page]; !ok {
		return false
	}
	f.pending[rec.Page] = append(f.pending[rec.Page], rec)
	return true
}

// ApplyIfCached applies a redo record iff the page is cached (the §4.5
// "ignore log records for uncached pages" policy). Reports whether the
// record was applied.
func (f *RemotePageFile) ApplyIfCached(rec *wal.Record) (bool, error) {
	pg, ok := f.cache.Get(rec.Page)
	if !ok {
		if rec.Kind == wal.KindPageImage {
			// A page being created: cheap to admit (it arrives complete).
			npg, err := btree.NewFormatted(rec)
			if err != nil {
				return false, err
			}
			return true, f.cache.Put(npg)
		}
		return false, nil
	}
	applied, err := btree.Apply(pg, rec)
	if err != nil {
		return false, err
	}
	if applied {
		return true, f.cache.Put(pg)
	}
	return false, nil
}

var _ fcb.PageFile = (*RemotePageFile)(nil)
