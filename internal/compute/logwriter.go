// Package compute implements the Socrates compute tier: the primary node
// (the only log producer, §4.4) and secondary nodes (read-only log
// consumers, §4.5). Both run the shared engine over a sparse RBPEX cache
// whose misses turn into GetPage@LSN calls against the page servers.
package compute

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
	"socrates/internal/wal"
	"socrates/internal/xlog"
)

// ErrWriterClosed reports appends to a closed log writer. It matches
// socerr.ErrClosed under errors.Is.
var ErrWriterClosed = fmt.Errorf("compute: log writer closed: %w", socerr.ErrClosed)

// LogWriter is the primary's log pipeline (§4.3, upper-left of Figure 3):
// records accumulate in memory; the flusher cuts blocks at transaction
// boundaries (so a hardened prefix never splits a transaction), writes them
// synchronously to the landing zone for durability, sends them
// fire-and-forget to the XLOG process for availability, and reports the
// hardened watermark so XLOG promotes them to consumers.
//
// Group commit falls out naturally: while one block's quorum write is in
// flight, later transactions keep appending, and the next block carries all
// of them — one landing-zone write per group.
type LogWriter struct {
	lz    *xlog.LandingZone
	feed  *rbio.Client // XLOG service: lossy feed + harden reports
	pt    page.Partitioning
	epoch string // producer epoch stamped on feed frames (see WithEpoch)

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*wal.Record
	boundary int // records [0, boundary) form complete transaction groups
	nextLSN  page.LSN
	hardened page.LSN
	err      error
	closed   bool

	wg       sync.WaitGroup
	ioWG     sync.WaitGroup
	inflight chan struct{} // bounds concurrent landing-zone writes
	// inflightCnt tracks dispatched-but-incomplete writes (batching
	// heuristic); guarded by mu.
	inflightCnt int

	blocksFlushed metrics.Counter
	bytesFlushed  metrics.Counter

	tracer *obs.Tracer
	obsReg *obs.Registry
	wms    *obs.WatermarkSet
	flight *obs.FlightRecorder
	waits  *obs.WaitRecorder
}

// LogWriterOption configures a LogWriter.
type LogWriterOption func(*LogWriter)

// WithObs wires a tracer and metrics registry into the writer: each
// landing-zone block write emits an "lz.write" span attributed to the
// commits it hardens, plus lz.* counters and histograms.
func WithObs(t *obs.Tracer, r *obs.Registry) LogWriterOption {
	return func(w *LogWriter) { w.tracer, w.obsReg = t, r }
}

// WithPlane wires the writer into the observability plane: every quorum
// write publishes the hardened watermark (lz.hardened_lsn) and drops an
// "lz.flush" event into the flight recorder; flush failures are recorded
// as "lz.error" events before the writer poisons itself.
func WithPlane(ws *obs.WatermarkSet, fr *obs.FlightRecorder) LogWriterOption {
	return func(w *LogWriter) { w.wms, w.flight = ws, fr }
}

// WithWaits wires wait-event accounting into the writer: commit.harden
// covers the time a committer blocks in WaitHarden, commit.quorum the
// landing-zone quorum write itself (attributed to the lz.write span of
// every commit the block hardens).
func WithWaits(wr *obs.WaitRecorder) LogWriterOption {
	return func(w *LogWriter) { w.waits = wr }
}

// WithEpoch stamps the producer epoch on every fed block, so the XLOG
// service can reject speculative blocks from a superseded primary whose
// LSNs this writer reissues (xlog.Service.BeginEpoch). Epoch 0 is the
// bootstrap producer.
func WithEpoch(epoch uint64) LogWriterOption {
	return func(w *LogWriter) { w.epoch = strconv.FormatUint(epoch, 10) }
}

// NewLogWriter starts a writer whose next record receives startLSN.
func NewLogWriter(lz *xlog.LandingZone, feed *rbio.Client, pt page.Partitioning, startLSN page.LSN, opts ...LogWriterOption) *LogWriter {
	w := &LogWriter{
		lz: lz, feed: feed, pt: pt,
		nextLSN: startLSN, hardened: startLSN,
		inflight: make(chan struct{}, 8),
	}
	for _, o := range opts {
		o(w)
	}
	w.cond = sync.NewCond(&w.mu)
	w.wg.Add(1)
	go w.flushLoop()
	return w
}

// Append stages a record, assigning its LSN. Transaction-boundary records
// (commit, abort, checkpoint) make the pending prefix flushable.
//
//socrates:hotpath the commit path stages every record here; budget enforced by TestCommitAppendAllocs
func (w *LogWriter) Append(rec *wal.Record) page.LSN {
	//socrates:wait-ok bookkeeping latch held a few instructions; a convoy here surfaces as the waiters' commit.harden time
	w.mu.Lock()
	rec.LSN = w.nextLSN
	w.nextLSN = w.nextLSN.Next()
	//socrates:alloc-ok pending-slice growth amortizes across appends between flushes
	w.pending = append(w.pending, rec)
	switch rec.Kind {
	case wal.KindTxnCommit, wal.KindTxnAbort, wal.KindCheckpoint, wal.KindNoop:
		w.boundary = len(w.pending)
		w.cond.Broadcast()
	}
	lsn := rec.LSN
	w.mu.Unlock()
	return lsn
}

// WaitHarden blocks until the record at lsn is durable in the landing zone
// or ctx is done.
func (w *LogWriter) WaitHarden(ctx context.Context, lsn page.LSN) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// A cancelled ctx must break the cond wait: AfterFunc pokes every
	// waiter, and the loop below re-checks ctx before sleeping again.
	// The callback must take w.mu (see the context.AfterFunc docs):
	// broadcasting without the lock can fire between our ctx.Err() check
	// and cond.Wait() registering, waking nobody — a missed wakeup that
	// leaves WaitHarden stuck on a quiescent log.
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.cond.Broadcast()
	})
	defer stop()
	// commit.harden: the committer's view of group-commit latency. Only
	// recorded when the loop actually blocks — an already-hardened LSN
	// must not inflate the wait count.
	region := w.waits.Begin(ctx, obs.WaitCommitHarden)
	waited := false
	defer func() { region.EndIf(waited) }()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.hardened.AtMost(lsn) && w.err == nil && !w.closed {
		if err := ctx.Err(); err != nil {
			return socerr.FromContext(err)
		}
		waited = true
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.hardened.AtMost(lsn) {
		return ErrWriterClosed
	}
	return nil
}

// HardenedEnd reports the hardened watermark (end LSN).
func (w *LogWriter) HardenedEnd() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hardened
}

// NextLSN reports the LSN the next appended record will receive.
func (w *LogWriter) NextLSN() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// trackInflight adjusts the dispatched-write count (batching heuristic).
func (w *LogWriter) trackInflight(delta int) {
	w.mu.Lock()
	w.inflightCnt += delta
	w.mu.Unlock()
}

// pendingBoundaryBytes estimates the encoded size of the flushable prefix.
// Caller holds w.mu.
func (w *LogWriter) pendingBoundaryBytes() int {
	n := 0
	for _, r := range w.pending[:w.boundary] {
		n += len(r.Key) + len(r.Value) + 30
	}
	return n
}

// Stats reports blocks and bytes flushed to the landing zone.
func (w *LogWriter) Stats() (blocks, bytes int64) {
	return w.blocksFlushed.Load(), w.bytesFlushed.Load()
}

// Close flushes remaining complete groups and stops the flusher.
func (w *LogWriter) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.ioWG.Wait() // drain in-flight landing-zone writes
}

func (w *LogWriter) flushLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for w.boundary == 0 && !w.closed && w.err == nil {
			//socrates:wait-ok idle flusher waiting for work is not a stall; recording it would drown real commit waits
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && w.boundary == 0) {
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()

		// Group-commit batching: claim the in-flight slot BEFORE cutting
		// the block, so while the pipeline is saturated later commits keep
		// joining the pending group; and give a small group a moment to
		// grow when other writes are already in flight. A solo commit
		// (idle pipeline) cuts immediately — single-client latency is
		// unaffected (Table 6).
		w.inflight <- struct{}{}
		w.mu.Lock()
		if w.inflightCnt > 0 && w.pendingBoundaryBytes() < 4<<10 && !w.closed {
			waker := time.AfterFunc(150*time.Microsecond, w.cond.Broadcast)
			//socrates:wait-ok deliberate 150µs batching pause, not a stall; committers' time here already lands in commit.harden
			w.cond.Wait()
			waker.Stop()
		}
		if w.boundary == 0 {
			// Everything was consumed elsewhere or we closed: release.
			closed := w.closed
			w.mu.Unlock()
			<-w.inflight
			if closed {
				return
			}
			continue
		}
		recs := append([]*wal.Record(nil), w.pending[:w.boundary]...)
		w.pending = w.pending[w.boundary:]
		w.boundary = 0
		w.mu.Unlock()

		block := &wal.Block{
			Start:      recs[0].LSN,
			End:        recs[len(recs)-1].LSN.Next(),
			Partitions: wal.ComputePartitions(recs, w.pt),
			Records:    recs,
		}
		// Reserve ring space in LSN order, then complete the quorum write
		// concurrently: several landing-zone writes stay in flight, which
		// is where Socrates' log throughput comes from (Table 5). The
		// hardened watermark is the LZ's durable *prefix*, so a commit is
		// never acknowledged over a hole.
		res, err := w.lz.Reserve(block)
		if err != nil {
			w.flight.Record(obs.TierLZ, "lz.error", uint64(block.Start), 0,
				"reserve failed: "+err.Error())
			<-w.inflight
			w.mu.Lock()
			w.err = err
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		// Every traced commit in the block gets its own "lz.write" span,
		// so a group-committed block attributes the quorum write to each
		// commit's trace. The first commit's identity also rides the feed
		// and harden-report frames (v2 headers) into the XLOG tier.
		var commitSCs []obs.SpanContext
		for _, r := range recs {
			if r.Kind == wal.KindTxnCommit && r.TraceID != 0 {
				commitSCs = append(commitSCs, obs.SpanContext{
					TraceID: obs.TraceID(r.TraceID), SpanID: obs.SpanID(r.SpanID)})
			}
		}
		w.trackInflight(1)
		w.ioWG.Add(1)
		go func(block *wal.Block, res *xlog.Reservation, commitSCs []obs.SpanContext) {
			defer w.ioWG.Done()
			defer func() { w.trackInflight(-1); <-w.inflight }()
			ioCtx := context.Background()
			var spans []*obs.Span
			for _, sc := range commitSCs {
				c, s := w.tracer.StartRemoteSpan(sc, obs.TierLZ, "lz.write")
				s.SetAttr("records", fmt.Sprint(len(block.Records)))
				spans = append(spans, s)
				ioCtx = c // last traced commit's identity stamps the frames
			}
			start := time.Now()
			// Availability path (fire-and-forget, lossy) in parallel with
			// the durability path: "The Primary writes log blocks into the
			// LZ and to the XLOG process in parallel."
			if w.feed != nil {
				//socrates:ignore-err the XLOG feed is lossy by design (§4.3); a dropped block is gap-filled from the LZ during promotion
				_ = w.feed.Send(ioCtx, &rbio.Request{Type: rbio.MsgFeedBlock,
					Consumer: w.epoch, Payload: res.Payload()})
			}
			qstart := time.Now()
			if err := w.lz.Complete(res); err != nil {
				w.flight.Record(obs.TierLZ, "lz.error", uint64(block.Start),
					time.Since(start), "quorum write failed: "+err.Error())
				for _, s := range spans {
					s.SetError(err)
					s.End()
				}
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.cond.Broadcast()
				w.mu.Unlock()
				return
			}
			// commit.quorum: the landing-zone quorum write itself, attributed
			// to the lz.write span (ioCtx carries the last one started).
			w.waits.Observe(ioCtx, obs.WaitCommitQuorum, time.Since(qstart))
			for _, s := range spans {
				s.End()
			}
			w.obsReg.Histogram("lz.write.latency").Observe(time.Since(start))
			w.obsReg.Counter("lz.write.blocks").Inc()
			w.obsReg.Counter("lz.write.bytes").Add(uint64(len(res.Payload())))
			w.blocksFlushed.Inc()
			w.bytesFlushed.Add(int64(len(res.Payload())))

			var traceID obs.TraceID
			if len(commitSCs) > 0 {
				traceID = commitSCs[len(commitSCs)-1].TraceID
			}
			w.flight.RecordTrace(obs.TierLZ, "lz.flush", uint64(block.End), traceID,
				time.Since(start),
				fmt.Sprintf("records=%d bytes=%d", len(block.Records), len(res.Payload())))

			hardened := w.lz.HardenedEnd()
			w.wms.Watermark(obs.WMHardened, "").Publish(uint64(hardened))
			w.mu.Lock()
			if hardened.After(w.hardened) {
				w.hardened = hardened
			}
			w.cond.Broadcast()
			w.mu.Unlock()

			// Hardening report: reliable but off the critical path.
			// Reports may arrive out of order; the watermark is monotone,
			// so a stale report is a no-op at the XLOG service.
			if w.feed != nil {
				//socrates:ignore-err the harden report is off the durability path; the watermark is monotone, so the next report supersedes a lost one
				_, _ = w.feed.Call(ioCtx, &rbio.Request{Type: rbio.MsgHardenReport, LSN: hardened})
			}
		}(block, res, commitSCs)
	}
}
