// Package compute implements the Socrates compute tier: the primary node
// (the only log producer, §4.4) and secondary nodes (read-only log
// consumers, §4.5). Both run the shared engine over a sparse RBPEX cache
// whose misses turn into GetPage@LSN calls against the page servers.
package compute

import (
	"errors"
	"sync"
	"time"

	"socrates/internal/metrics"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/wal"
	"socrates/internal/xlog"
)

// ErrWriterClosed reports appends to a closed log writer.
var ErrWriterClosed = errors.New("compute: log writer closed")

// LogWriter is the primary's log pipeline (§4.3, upper-left of Figure 3):
// records accumulate in memory; the flusher cuts blocks at transaction
// boundaries (so a hardened prefix never splits a transaction), writes them
// synchronously to the landing zone for durability, sends them
// fire-and-forget to the XLOG process for availability, and reports the
// hardened watermark so XLOG promotes them to consumers.
//
// Group commit falls out naturally: while one block's quorum write is in
// flight, later transactions keep appending, and the next block carries all
// of them — one landing-zone write per group.
type LogWriter struct {
	lz   *xlog.LandingZone
	feed *rbio.Client // XLOG service: lossy feed + harden reports
	pt   page.Partitioning

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*wal.Record
	boundary int // records [0, boundary) form complete transaction groups
	nextLSN  page.LSN
	hardened page.LSN
	err      error
	closed   bool

	wg       sync.WaitGroup
	ioWG     sync.WaitGroup
	inflight chan struct{} // bounds concurrent landing-zone writes
	// inflightCnt tracks dispatched-but-incomplete writes (batching
	// heuristic); guarded by mu.
	inflightCnt int

	blocksFlushed metrics.Counter
	bytesFlushed  metrics.Counter
}

// NewLogWriter starts a writer whose next record receives startLSN.
func NewLogWriter(lz *xlog.LandingZone, feed *rbio.Client, pt page.Partitioning, startLSN page.LSN) *LogWriter {
	w := &LogWriter{
		lz: lz, feed: feed, pt: pt,
		nextLSN: startLSN, hardened: startLSN,
		inflight: make(chan struct{}, 8),
	}
	w.cond = sync.NewCond(&w.mu)
	w.wg.Add(1)
	go w.flushLoop()
	return w
}

// Append stages a record, assigning its LSN. Transaction-boundary records
// (commit, abort, checkpoint) make the pending prefix flushable.
func (w *LogWriter) Append(rec *wal.Record) page.LSN {
	w.mu.Lock()
	rec.LSN = w.nextLSN
	w.nextLSN = w.nextLSN.Next()
	w.pending = append(w.pending, rec)
	switch rec.Kind {
	case wal.KindTxnCommit, wal.KindTxnAbort, wal.KindCheckpoint, wal.KindNoop:
		w.boundary = len(w.pending)
		w.cond.Broadcast()
	}
	lsn := rec.LSN
	w.mu.Unlock()
	return lsn
}

// WaitHarden blocks until the record at lsn is durable in the landing zone.
func (w *LogWriter) WaitHarden(lsn page.LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.hardened.AtMost(lsn) && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.hardened.AtMost(lsn) {
		return ErrWriterClosed
	}
	return nil
}

// HardenedEnd reports the hardened watermark (end LSN).
func (w *LogWriter) HardenedEnd() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hardened
}

// NextLSN reports the LSN the next appended record will receive.
func (w *LogWriter) NextLSN() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// trackInflight adjusts the dispatched-write count (batching heuristic).
func (w *LogWriter) trackInflight(delta int) {
	w.mu.Lock()
	w.inflightCnt += delta
	w.mu.Unlock()
}

// pendingBoundaryBytes estimates the encoded size of the flushable prefix.
// Caller holds w.mu.
func (w *LogWriter) pendingBoundaryBytes() int {
	n := 0
	for _, r := range w.pending[:w.boundary] {
		n += len(r.Key) + len(r.Value) + 30
	}
	return n
}

// Stats reports blocks and bytes flushed to the landing zone.
func (w *LogWriter) Stats() (blocks, bytes int64) {
	return w.blocksFlushed.Load(), w.bytesFlushed.Load()
}

// Close flushes remaining complete groups and stops the flusher.
func (w *LogWriter) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.ioWG.Wait() // drain in-flight landing-zone writes
}

func (w *LogWriter) flushLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for w.boundary == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && w.boundary == 0) {
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()

		// Group-commit batching: claim the in-flight slot BEFORE cutting
		// the block, so while the pipeline is saturated later commits keep
		// joining the pending group; and give a small group a moment to
		// grow when other writes are already in flight. A solo commit
		// (idle pipeline) cuts immediately — single-client latency is
		// unaffected (Table 6).
		w.inflight <- struct{}{}
		w.mu.Lock()
		if w.inflightCnt > 0 && w.pendingBoundaryBytes() < 4<<10 && !w.closed {
			waker := time.AfterFunc(150*time.Microsecond, w.cond.Broadcast)
			w.cond.Wait()
			waker.Stop()
		}
		if w.boundary == 0 {
			// Everything was consumed elsewhere or we closed: release.
			closed := w.closed
			w.mu.Unlock()
			<-w.inflight
			if closed {
				return
			}
			continue
		}
		recs := append([]*wal.Record(nil), w.pending[:w.boundary]...)
		w.pending = w.pending[w.boundary:]
		w.boundary = 0
		w.mu.Unlock()

		block := &wal.Block{
			Start:      recs[0].LSN,
			End:        recs[len(recs)-1].LSN.Next(),
			Partitions: wal.ComputePartitions(recs, w.pt),
			Records:    recs,
		}
		// Reserve ring space in LSN order, then complete the quorum write
		// concurrently: several landing-zone writes stay in flight, which
		// is where Socrates' log throughput comes from (Table 5). The
		// hardened watermark is the LZ's durable *prefix*, so a commit is
		// never acknowledged over a hole.
		res, err := w.lz.Reserve(block)
		if err != nil {
			<-w.inflight
			w.mu.Lock()
			w.err = err
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		w.trackInflight(1)
		w.ioWG.Add(1)
		go func(block *wal.Block, res *xlog.Reservation) {
			defer w.ioWG.Done()
			defer func() { w.trackInflight(-1); <-w.inflight }()
			// Availability path (fire-and-forget, lossy) in parallel with
			// the durability path: "The Primary writes log blocks into the
			// LZ and to the XLOG process in parallel."
			if w.feed != nil {
				//socrates:ignore-err the XLOG feed is lossy by design (§4.3); a dropped block is gap-filled from the LZ during promotion
				_ = w.feed.Send(&rbio.Request{Type: rbio.MsgFeedBlock, Payload: res.Payload()})
			}
			if err := w.lz.Complete(res); err != nil {
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.cond.Broadcast()
				w.mu.Unlock()
				return
			}
			w.blocksFlushed.Inc()
			w.bytesFlushed.Add(int64(len(res.Payload())))

			hardened := w.lz.HardenedEnd()
			w.mu.Lock()
			if hardened.After(w.hardened) {
				w.hardened = hardened
			}
			w.cond.Broadcast()
			w.mu.Unlock()

			// Hardening report: reliable but off the critical path.
			// Reports may arrive out of order; the watermark is monotone,
			// so a stale report is a no-op at the XLOG service.
			if w.feed != nil {
				//socrates:ignore-err the harden report is off the durability path; the watermark is monotone, so the next report supersedes a lost one
				_, _ = w.feed.Call(&rbio.Request{Type: rbio.MsgHardenReport, LSN: hardened})
			}
		}(block, res)
	}
}
