// Package compute implements the Socrates compute tier: the primary node
// (the only log producer, §4.4) and secondary nodes (read-only log
// consumers, §4.5). Both run the shared engine over a sparse RBPEX cache
// whose misses turn into GetPage@LSN calls against the page servers.
package compute

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
	"socrates/internal/wal"
	"socrates/internal/xlog"
)

// ErrWriterClosed reports appends to a closed log writer. It matches
// socerr.ErrClosed under errors.Is.
var ErrWriterClosed = fmt.Errorf("compute: log writer closed: %w", socerr.ErrClosed)

// Clock abstracts the batcher's two time dependencies — reading the clock
// and arming a one-shot timer — so deterministic tests drive the adaptive
// batching window without wall-clock sleeps (testutil.FakeClock satisfies
// it structurally). AfterFunc returns a stop function in place of a
// *time.Timer so fakes need no timer type of their own.
type Clock interface {
	Now() time.Time
	AfterFunc(d time.Duration, f func()) (stop func() bool)
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) AfterFunc(d time.Duration, f func()) func() bool {
	return time.AfterFunc(d, f).Stop
}

// Adaptive group-commit tuning (§4.3, after BtrLog): the flusher holds a
// small batch open for a window proportional to the observed landing-zone
// write latency — waiting a quarter of a write adds little to p99 while
// multiplying records per quorum write — and cuts immediately when commits
// arrive slower than the window (batching would only add latency) or when
// the batch reaches a byte target that itself scales with write latency
// (slower writes amortize over bigger batches).
const (
	minBatchWait         = 50 * time.Microsecond
	maxBatchWait         = 2 * time.Millisecond
	defaultWriteEstimate = 500 * time.Microsecond
	minBatchTarget       = 4 << 10
	maxBatchTarget       = 256 << 10
	// gapClamp bounds the inter-commit gap fed to the EWMA so an idle
	// period does not poison the arrival estimate for minutes afterward.
	gapClamp  = 10 * time.Millisecond
	ewmaAlpha = 0.2
)

// LogWriter is the primary's log pipeline (§4.3, upper-left of Figure 3):
// records accumulate in memory; the flusher cuts blocks at transaction
// boundaries (so a hardened prefix never splits a transaction), writes them
// synchronously to the landing zone for durability, sends them
// fire-and-forget to the XLOG process for availability, and reports the
// hardened watermark so XLOG promotes them to consumers.
//
// Group commit falls out naturally: while one block's quorum write is in
// flight, later transactions keep appending, and the next block carries all
// of them — one landing-zone write per group.
type LogWriter struct {
	lz    *xlog.LandingZone
	feed  *rbio.Client // XLOG service: lossy feed + harden reports
	pt    page.Partitioning
	epoch string // producer epoch stamped on feed frames (see WithEpoch)

	clock Clock

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*wal.Record
	boundary int // records [0, boundary) form complete transaction groups
	nextLSN  page.LSN
	hardened page.LSN
	reported page.LSN // highest LSN already harden-reported to XLOG
	err      error
	closed   bool

	// Adaptive batching state, guarded by mu. gapEWMA smooths the
	// inter-commit arrival gap (fed by Append on boundary records);
	// writeEWMA smooths the landing-zone quorum-write latency (fed by the
	// completion goroutine). Both in nanoseconds; 0 = no samples yet.
	gapEWMA    float64
	writeEWMA  float64
	lastCommit time.Time
	// legacy pins the pre-adaptive commit path (WithLegacyCommitPath).
	legacy bool

	wg       sync.WaitGroup
	ioWG     sync.WaitGroup
	inflight chan struct{} // bounds concurrent landing-zone writes
	// inflightCnt tracks dispatched-but-incomplete writes (batching
	// heuristic); guarded by mu.
	inflightCnt int

	blocksFlushed metrics.Counter
	bytesFlushed  metrics.Counter
	recsCoalesced metrics.Counter

	tracer *obs.Tracer
	obsReg *obs.Registry
	wms    *obs.WatermarkSet
	flight *obs.FlightRecorder
	waits  *obs.WaitRecorder
}

// LogWriterOption configures a LogWriter.
type LogWriterOption func(*LogWriter)

// WithObs wires a tracer and metrics registry into the writer: each
// landing-zone block write emits an "lz.write" span attributed to the
// commits it hardens, plus lz.* counters and histograms.
func WithObs(t *obs.Tracer, r *obs.Registry) LogWriterOption {
	return func(w *LogWriter) { w.tracer, w.obsReg = t, r }
}

// WithPlane wires the writer into the observability plane: every quorum
// write publishes the hardened watermark (lz.hardened_lsn) and drops an
// "lz.flush" event into the flight recorder; flush failures are recorded
// as "lz.error" events before the writer poisons itself.
func WithPlane(ws *obs.WatermarkSet, fr *obs.FlightRecorder) LogWriterOption {
	return func(w *LogWriter) { w.wms, w.flight = ws, fr }
}

// WithWaits wires wait-event accounting into the writer: commit.harden
// covers the time a committer blocks in WaitHarden, commit.quorum the
// landing-zone quorum write itself (attributed to the lz.write span of
// every commit the block hardens).
func WithWaits(wr *obs.WaitRecorder) LogWriterOption {
	return func(w *LogWriter) { w.waits = wr }
}

// WithEpoch stamps the producer epoch on every fed block, so the XLOG
// service can reject speculative blocks from a superseded primary whose
// LSNs this writer reissues (xlog.Service.BeginEpoch). Epoch 0 is the
// bootstrap producer.
func WithEpoch(epoch uint64) LogWriterOption {
	return func(w *LogWriter) { w.epoch = strconv.FormatUint(epoch, 10) }
}

// WithClock substitutes the batcher's clock — deterministic tests install a
// testutil.FakeClock and drive the adaptive window by hand.
func WithClock(c Clock) LogWriterOption {
	return func(w *LogWriter) { w.clock = c }
}

// WithLegacyCommitPath reverts the writer to the pre-adaptive commit path:
// a fixed 150µs/4KiB batching window, no record coalescing, and a full
// round trip for every harden report. It exists as the baseline arm of the
// `commit` experiment (BENCH_pr9.json), so the adaptive path is always
// measured against the shape it replaced at identical simulated latencies.
// The landing-zone quorum width is configured on the volume, not here.
func WithLegacyCommitPath() LogWriterOption {
	return func(w *LogWriter) { w.legacy = true }
}

// NewLogWriter starts a writer whose next record receives startLSN.
func NewLogWriter(lz *xlog.LandingZone, feed *rbio.Client, pt page.Partitioning, startLSN page.LSN, opts ...LogWriterOption) *LogWriter {
	w := &LogWriter{
		lz: lz, feed: feed, pt: pt,
		nextLSN: startLSN, hardened: startLSN, reported: startLSN,
		inflight: make(chan struct{}, 8),
		clock:    realClock{},
	}
	for _, o := range opts {
		o(w)
	}
	w.cond = sync.NewCond(&w.mu)
	w.wg.Add(1)
	go w.flushLoop()
	return w
}

// Append stages a record, assigning its LSN. Transaction-boundary records
// (commit, abort, checkpoint) make the pending prefix flushable.
//
//socrates:hotpath the commit path stages every record here; budget enforced by TestCommitAppendAllocs
func (w *LogWriter) Append(rec *wal.Record) page.LSN {
	//socrates:wait-ok bookkeeping latch held a few instructions; a convoy here surfaces as the waiters' commit.harden time
	w.mu.Lock()
	rec.LSN = w.nextLSN
	w.nextLSN = w.nextLSN.Next()
	//socrates:alloc-ok pending-slice growth amortizes across appends between flushes
	w.pending = append(w.pending, rec)
	switch rec.Kind {
	case wal.KindTxnCommit, wal.KindTxnAbort, wal.KindCheckpoint, wal.KindNoop:
		w.boundary = len(w.pending)
		// Feed the arrival-gap EWMA the batcher's window policy reads:
		// boundary records are what group commit batches, so their spacing
		// is the arrival process that decides whether waiting pays.
		now := w.clock.Now()
		if !w.lastCommit.IsZero() {
			gap := now.Sub(w.lastCommit)
			if gap > gapClamp {
				gap = gapClamp
			}
			if w.gapEWMA == 0 {
				w.gapEWMA = float64(gap)
			} else {
				w.gapEWMA = ewmaAlpha*float64(gap) + (1-ewmaAlpha)*w.gapEWMA
			}
		}
		w.lastCommit = now
		w.cond.Broadcast()
	}
	lsn := rec.LSN
	w.mu.Unlock()
	return lsn
}

// WaitHarden blocks until the record at lsn is durable in the landing zone
// or ctx is done.
func (w *LogWriter) WaitHarden(ctx context.Context, lsn page.LSN) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// A cancelled ctx must break the cond wait: AfterFunc pokes every
	// waiter, and the loop below re-checks ctx before sleeping again.
	// The callback must take w.mu (see the context.AfterFunc docs):
	// broadcasting without the lock can fire between our ctx.Err() check
	// and cond.Wait() registering, waking nobody — a missed wakeup that
	// leaves WaitHarden stuck on a quiescent log.
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.cond.Broadcast()
	})
	defer stop()
	// commit.harden: the committer's view of group-commit latency. Only
	// recorded when the loop actually blocks — an already-hardened LSN
	// must not inflate the wait count.
	region := w.waits.Begin(ctx, obs.WaitCommitHarden)
	waited := false
	defer func() { region.EndIf(waited) }()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.hardened.AtMost(lsn) && w.err == nil && !w.closed {
		if err := ctx.Err(); err != nil {
			return socerr.FromContext(err)
		}
		waited = true
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.hardened.AtMost(lsn) {
		return ErrWriterClosed
	}
	return nil
}

// HardenedEnd reports the hardened watermark (end LSN).
func (w *LogWriter) HardenedEnd() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hardened
}

// NextLSN reports the LSN the next appended record will receive.
func (w *LogWriter) NextLSN() page.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// trackInflight adjusts the dispatched-write count (batching heuristic).
func (w *LogWriter) trackInflight(delta int) {
	w.mu.Lock()
	w.inflightCnt += delta
	w.mu.Unlock()
}

// pendingBoundaryBytes estimates the encoded size of the flushable prefix.
// Caller holds w.mu.
func (w *LogWriter) pendingBoundaryBytes() int {
	n := 0
	for _, r := range w.pending[:w.boundary] {
		n += len(r.Key) + len(r.Value) + 30
	}
	return n
}

// batchPlan decides how long the flusher may hold a small batch open and
// the byte size at which it cuts regardless. Caller holds w.mu.
//
// The policy adapts on two axes. The wait window tracks the landing-zone
// write latency (a quarter of a write, clamped): while a write is slow,
// holding the next batch open is nearly free because the pipeline is the
// bottleneck anyway. The byte target scales with the same latency: slower
// writes amortize over bigger batches. Two fast paths cut immediately —
// an idle pipeline (a solo commit must not wait behind a timer; Table 6
// single-client latency) and a sparse arrival process (when commits arrive
// slower than the window, waiting buys no batching, only latency).
func (w *LogWriter) batchPlan() (wait time.Duration, target int) {
	if w.inflightCnt == 0 {
		return 0, 0
	}
	if w.legacy {
		// Baseline arm: the fixed window the adaptive policy replaced.
		return 150 * time.Microsecond, 4 << 10
	}
	wr := time.Duration(w.writeEWMA)
	if wr <= 0 {
		wr = defaultWriteEstimate
	}
	wait = wr / 4
	if wait < minBatchWait {
		wait = minBatchWait
	}
	if wait > maxBatchWait {
		wait = maxBatchWait
	}
	target = int(int64(minBatchTarget) * int64(wr) / int64(defaultWriteEstimate))
	if target < minBatchTarget {
		target = minBatchTarget
	}
	if target > maxBatchTarget {
		target = maxBatchTarget
	}
	if gap := time.Duration(w.gapEWMA); gap > 0 && gap > wait {
		return 0, target
	}
	return wait, target
}

// coalesceBatch squashes intra-batch same-transaction cell overwrites: when
// one transaction puts the same (page, key) cell several times within a
// single batch, only the last image is ever readable — the intermediate
// versions would share the final one's commit timestamp, so no snapshot can
// observe them. Only KindCellPut records coalesce; boundary records, page
// images, and deletes are never touched, so a batch boundary can never
// split or lose a transaction's outcome. Surviving records keep their LSNs:
// the block still covers the same [Start, End) range with holes, which the
// explicitly-counted encoding represents exactly and LSN-idempotent redo
// replays obliviously. Reports how many records were squashed.
func coalesceBatch(recs []*wal.Record) ([]*wal.Record, int) {
	type cell struct {
		txn uint64
		pg  page.ID
		key string
	}
	var last map[cell]int
	dropped := 0
	for i, r := range recs {
		if r.Kind != wal.KindCellPut {
			continue
		}
		if last == nil {
			last = make(map[cell]int, len(recs))
		}
		c := cell{r.Txn, r.Page, string(r.Key)}
		if j, ok := last[c]; ok {
			recs[j] = nil
			dropped++
		}
		last[c] = i
	}
	if dropped == 0 {
		return recs, 0
	}
	out := recs[:0]
	for _, r := range recs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, dropped
}

// Stats reports blocks and bytes flushed to the landing zone.
func (w *LogWriter) Stats() (blocks, bytes int64) {
	return w.blocksFlushed.Load(), w.bytesFlushed.Load()
}

// Coalesced reports how many records intra-batch coalescing has squashed.
func (w *LogWriter) Coalesced() int64 { return w.recsCoalesced.Load() }

// Close flushes remaining complete groups and stops the flusher.
func (w *LogWriter) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.ioWG.Wait() // drain in-flight landing-zone writes
}

func (w *LogWriter) flushLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for w.boundary == 0 && !w.closed && w.err == nil {
			//socrates:wait-ok idle flusher waiting for work is not a stall; recording it would drown real commit waits
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && w.boundary == 0) {
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()

		// Adaptive group-commit batching: claim the in-flight slot BEFORE
		// cutting the block, so while the pipeline is saturated later
		// commits keep joining the pending group; then hold a small group
		// open for the adaptive window (see batchPlan). A solo commit
		// (idle pipeline) cuts immediately — single-client latency is
		// unaffected (Table 6). The window loop re-checks the byte target
		// after every wakeup, so a burst cuts as soon as the batch is big
		// enough rather than when the timer fires.
		w.inflight <- struct{}{}
		w.mu.Lock()
		if wait, target := w.batchPlan(); wait > 0 && !w.closed &&
			w.pendingBoundaryBytes() < target {
			holdStart := w.clock.Now()
			deadline := holdStart.Add(wait)
			for !w.closed && w.err == nil && w.pendingBoundaryBytes() < target {
				remaining := deadline.Sub(w.clock.Now())
				if remaining <= 0 {
					break
				}
				// The waker broadcasts under w.mu: without the lock it
				// could fire between a predicate check and cond.Wait
				// registering, waking nobody.
				stop := w.clock.AfterFunc(remaining, func() {
					w.mu.Lock()
					defer w.mu.Unlock()
					w.cond.Broadcast()
				})
				//socrates:wait-ok deliberate adaptive batching pause, not a stall; committers' time here already lands in commit.harden
				w.cond.Wait()
				stop()
			}
			w.obsReg.Histogram("lz.batch.wait").Observe(w.clock.Now().Sub(holdStart))
		}
		if w.boundary == 0 {
			// Everything was consumed elsewhere or we closed: release.
			closed := w.closed
			w.mu.Unlock()
			<-w.inflight
			if closed {
				return
			}
			continue
		}
		recs := append([]*wal.Record(nil), w.pending[:w.boundary]...)
		w.pending = w.pending[w.boundary:]
		w.boundary = 0
		w.mu.Unlock()

		// The block's LSN range is fixed before coalescing: squashed
		// records leave holes inside [Start, End), never shrink it, so the
		// landing zone's contiguity check and the hardened-prefix math see
		// the same stream with or without coalescing.
		start, end := recs[0].LSN, recs[len(recs)-1].LSN.Next()
		var squashed int
		if !w.legacy {
			recs, squashed = coalesceBatch(recs)
		}
		if squashed > 0 {
			w.recsCoalesced.Add(int64(squashed))
			w.obsReg.Counter("lz.batch.coalesced").Add(uint64(squashed))
		}
		w.obsReg.Counter("lz.batch.flushes").Inc()
		w.obsReg.Counter("lz.batch.records").Add(uint64(len(recs)))
		block := &wal.Block{
			Start:      start,
			End:        end,
			Partitions: wal.ComputePartitions(recs, w.pt),
			Records:    recs,
		}
		// Reserve ring space in LSN order, then complete the quorum write
		// concurrently: several landing-zone writes stay in flight, which
		// is where Socrates' log throughput comes from (Table 5). The
		// hardened watermark is the LZ's durable *prefix*, so a commit is
		// never acknowledged over a hole.
		res, err := w.lz.Reserve(block)
		if err != nil {
			w.flight.Record(obs.TierLZ, "lz.error", uint64(block.Start), 0,
				"reserve failed: "+err.Error())
			<-w.inflight
			w.mu.Lock()
			w.err = err
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		// Every traced commit in the block gets its own "lz.write" span,
		// so a group-committed block attributes the quorum write to each
		// commit's trace. The first commit's identity also rides the feed
		// and harden-report frames (v2 headers) into the XLOG tier.
		var commitSCs []obs.SpanContext
		for _, r := range recs {
			if r.Kind == wal.KindTxnCommit && r.TraceID != 0 {
				commitSCs = append(commitSCs, obs.SpanContext{
					TraceID: obs.TraceID(r.TraceID), SpanID: obs.SpanID(r.SpanID)})
			}
		}
		w.trackInflight(1)
		w.ioWG.Add(1)
		go func(block *wal.Block, res *xlog.Reservation, commitSCs []obs.SpanContext) {
			defer w.ioWG.Done()
			defer func() { w.trackInflight(-1); <-w.inflight }()
			ioCtx := context.Background()
			var spans []*obs.Span
			for _, sc := range commitSCs {
				c, s := w.tracer.StartRemoteSpan(sc, obs.TierLZ, "lz.write")
				s.SetAttr("records", fmt.Sprint(len(block.Records)))
				spans = append(spans, s)
				ioCtx = c // last traced commit's identity stamps the frames
			}
			start := time.Now()
			// Availability path (fire-and-forget, lossy) in parallel with
			// the durability path: "The Primary writes log blocks into the
			// LZ and to the XLOG process in parallel."
			if w.feed != nil {
				//socrates:ignore-err the XLOG feed is lossy by design (§4.3); a dropped block is gap-filled from the LZ during promotion
				_ = w.feed.Send(ioCtx, &rbio.Request{Type: rbio.MsgFeedBlock,
					Consumer: w.epoch, Payload: res.Payload()})
			}
			qstart := time.Now()
			if err := w.lz.Complete(res); err != nil {
				w.flight.Record(obs.TierLZ, "lz.error", uint64(block.Start),
					time.Since(start), "quorum write failed: "+err.Error())
				for _, s := range spans {
					s.SetError(err)
					s.End()
				}
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.cond.Broadcast()
				w.mu.Unlock()
				return
			}
			// commit.quorum: the landing-zone quorum write itself, attributed
			// to the lz.write span (ioCtx carries the last one started).
			qlat := time.Since(qstart)
			w.waits.Observe(ioCtx, obs.WaitCommitQuorum, qlat)
			w.mu.Lock()
			if w.writeEWMA == 0 {
				w.writeEWMA = float64(qlat)
			} else {
				w.writeEWMA = ewmaAlpha*float64(qlat) + (1-ewmaAlpha)*w.writeEWMA
			}
			w.mu.Unlock()
			for _, s := range spans {
				s.End()
			}
			w.obsReg.Histogram("lz.write.latency").Observe(time.Since(start))
			w.obsReg.Counter("lz.write.blocks").Inc()
			w.obsReg.Counter("lz.write.bytes").Add(uint64(len(res.Payload())))
			w.blocksFlushed.Inc()
			w.bytesFlushed.Add(int64(len(res.Payload())))

			var traceID obs.TraceID
			if len(commitSCs) > 0 {
				traceID = commitSCs[len(commitSCs)-1].TraceID
			}
			w.flight.RecordTrace(obs.TierLZ, "lz.flush", uint64(block.End), traceID,
				time.Since(start),
				fmt.Sprintf("records=%d bytes=%d", len(block.Records), len(res.Payload())))

			hardened := w.lz.HardenedEnd()
			w.wms.Watermark(obs.WMHardened, "").Publish(uint64(hardened))
			w.mu.Lock()
			if hardened.After(w.hardened) {
				w.hardened = hardened
			}
			w.cond.Broadcast()
			// Coalesce harden reports: the watermark is cumulative, so one
			// frame carrying the highest-hardened LSN acknowledges every
			// batch below it. A completion that did not advance the
			// watermark (out-of-order quorum writes) sends nothing — the
			// report that advanced it already covered this block.
			advanced := hardened.After(w.reported)
			if advanced {
				w.reported = hardened
			}
			report := w.reported
			// This completion is the pipeline's last in flight (its own
			// inflight slot is still held here) with nothing flushable
			// queued: if its report drops, no successor supersedes it.
			idle := w.inflightCnt == 1 && w.boundary == 0
			w.mu.Unlock()

			// Hardening report: off the critical path, one-way over the mux
			// fabric when the peer speaks it (Notify falls back to a
			// round-trip call toward v2 peers). Reports may arrive out of
			// order; the watermark is monotone, so a stale report is a
			// no-op at the XLOG service. The trailing report of a burst is
			// sent as a reliable round trip instead: a lossy fabric may
			// drop any intermediate report (the next one supersedes it),
			// but dropping the last would strand the consumers' watermark
			// until the next commit.
			// The idle case reports even without having advanced the
			// watermark itself: the burst's advancing report may have been
			// an earlier completion's one-way frame, already lost.
			if w.feed != nil && (advanced || idle || w.legacy) {
				req := &rbio.Request{Type: rbio.MsgHardenReport, LSN: report}
				if idle || w.legacy {
					// The legacy arm round-trips every report — the pre-mux
					// commit path the `commit` experiment baselines against.
					//socrates:ignore-err watermark report; consumers poll state as a further backstop
					_, _ = w.feed.Call(ioCtx, req)
				} else {
					//socrates:ignore-err an intermediate report is superseded by the burst's trailing reliable report
					_ = w.feed.Notify(ioCtx, req)
				}
			}
		}(block, res, commitSCs)
	}
}
