package compute

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"socrates/internal/engine"
	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/rbpex"
	"socrates/internal/simdisk"
	"socrates/internal/xlog"
)

// PrimaryConfig assembles a primary compute node.
type PrimaryConfig struct {
	// LZ is the landing zone (shared storage service, also visible to the
	// XLOG process).
	LZ *xlog.LandingZone
	// XLOG is the client to the XLOG service (feed + harden reports +
	// recovery state reads).
	XLOG *rbio.Client
	// Resolve maps pages to page-server selectors.
	Resolve Resolver
	// Partitioning is the cluster's page partitioning.
	Partitioning page.Partitioning
	// CacheMemPages / CacheSSDPages size the sparse RBPEX.
	CacheMemPages, CacheSSDPages int
	// CacheSSD / CacheMeta are local cache devices (required when
	// CacheSSDPages > 0).
	CacheSSD, CacheMeta *simdisk.Device
	// Meter, if set, is charged the node's simulated CPU.
	Meter *metrics.CPUMeter
	// Bootstrap creates a fresh database instead of attaching to one.
	Bootstrap bool
	// Epoch is the producer epoch stamped on this node's XLOG feeds
	// (issued by xlog.Service.BeginEpoch at failover; 0 = bootstrap
	// producer). It lets XLOG reject speculative blocks from a dead
	// predecessor whose LSNs this node reissues.
	Epoch uint64
	// Tracer / Metrics, if set, wire the node into the cluster's
	// observability spine (commit spans, lz.write spans, getpage spans).
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Watermarks / Flight, if set, wire the node into the observability
	// plane: commit + hardened rungs of the LSN ladder, flush/miss/evict
	// flight-recorder events.
	Watermarks *obs.WatermarkSet
	Flight     *obs.FlightRecorder
	// Waits, if set, wires the node into wait-event accounting:
	// commit.harden/commit.quorum on the log pipeline, page.remote and
	// page.miss on the page path, lock.latch/lock.row in the engine.
	Waits *obs.WaitRecorder
	// LegacyCommitPath pins the pre-adaptive log pipeline (fixed batching
	// window, round-trip harden reports) — the baseline arm of the commit
	// experiment. Production deployments leave it false.
	LegacyCommitPath bool
}

// Primary is the read-write compute node: it is the single log producer and
// behaves "almost identically to a standalone SQL Server" (§4.4) — the
// engine underneath does not know storage is remote.
type Primary struct {
	Engine *engine.Engine
	writer *LogWriter
	pages  *RemotePageFile
	meter  *metrics.CPUMeter
}

// NewPrimary builds a primary. With cfg.Bootstrap it creates the database;
// otherwise it performs crash/failover recovery: the hardened end of the
// log is discovered from the landing zone, visibility is restored from the
// XLOG service's max commit timestamp, and the engine simply attaches —
// there is no undo pass and no size-of-data work (ADR, §3.2).
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.LZ == nil || cfg.Resolve == nil {
		return nil, errors.New("compute: LZ and Resolve are required")
	}
	if cfg.CacheMemPages <= 0 {
		cfg.CacheMemPages = 128
	}

	startLSN := cfg.LZ.HardenedEnd()
	wopts := []LogWriterOption{
		WithObs(cfg.Tracer, cfg.Metrics),
		WithPlane(cfg.Watermarks, cfg.Flight),
		WithWaits(cfg.Waits),
		WithEpoch(cfg.Epoch),
	}
	if cfg.LegacyCommitPath {
		wopts = append(wopts, WithLegacyCommitPath())
	}
	writer := NewLogWriter(cfg.LZ, cfg.XLOG, cfg.Partitioning, startLSN, wopts...)

	// The GetPage@LSN floor for pages this node has never seen: everything
	// in the database is at most as new as the hardened end at attach time.
	floorLSN := startLSN.Prev()
	if cfg.Bootstrap {
		floorLSN = 0
	}
	floor := func() page.LSN { return floorLSN }

	pages, err := NewRemotePageFile(rbpex.Config{
		MemPages: cfg.CacheMemPages,
		SSDPages: cfg.CacheSSDPages,
		SSD:      cfg.CacheSSD,
		Meta:     cfg.CacheMeta,
		Waits:    cfg.Waits,
	}, cfg.Resolve, floor)
	if err != nil {
		return nil, err
	}
	pages.SetObs(cfg.Tracer, cfg.Metrics)
	pages.SetFlight(cfg.Flight)
	pages.SetWaits(cfg.Waits)

	ecfg := engine.Config{Pages: pages, Log: writer, Meter: cfg.Meter,
		Tracer: cfg.Tracer, Metrics: cfg.Metrics, Watermarks: cfg.Watermarks,
		Waits: cfg.Waits}
	var eng *engine.Engine
	if cfg.Bootstrap {
		eng, err = engine.Create(ecfg)
	} else {
		eng, err = engine.Open(ecfg)
	}
	if err != nil {
		writer.Close()
		return nil, err
	}
	p := &Primary{Engine: eng, writer: writer, pages: pages, meter: cfg.Meter}
	if !cfg.Bootstrap && cfg.XLOG != nil {
		if err := p.recoverVisibility(cfg.XLOG); err != nil {
			writer.Close()
			return nil, err
		}
	}
	return p, nil
}

// recoverVisibility republishes the highest hardened commit timestamp so
// new snapshots see everything that was durable before the failover.
func (p *Primary) recoverVisibility(xlogClient *rbio.Client) error {
	// Bounded: a stalled XLOG should fail the failover loudly rather than
	// wedge the new primary's boot forever.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := xlogClient.Call(ctx, &rbio.Request{Type: rbio.MsgReadState})
	if err != nil {
		return fmt.Errorf("compute: reading XLOG state: %w", err)
	}
	if len(resp.Payload) >= 16 {
		maxTS := binary.LittleEndian.Uint64(resp.Payload[8:16])
		p.Engine.Clock().Publish(maxTS)
	}
	return nil
}

// Writer exposes the log pipeline (throughput stats in benches).
func (p *Primary) Writer() *LogWriter { return p.writer }

// Pages exposes the cache-fronted page file (hit-rate stats).
func (p *Primary) Pages() *RemotePageFile { return p.pages }

// HardenedEnd reports the primary's durable log watermark.
func (p *Primary) HardenedEnd() page.LSN { return p.writer.HardenedEnd() }

// Close stops the log pipeline. The node holds no durable state (§4.2):
// dropping it loses nothing.
func (p *Primary) Close() {
	//socrates:ignore-err compute is stateless (§4.2); the cache flush is a best-effort warm-restart aid, and a failed destage only costs refetches
	_ = p.pages.Cache().FlushAll()
	p.writer.Close()
}

// Crash abandons the node without flushing anything — for failover tests.
func (p *Primary) Crash() {
	p.writer.Close()
}
