package compute

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/simdisk"
	"socrates/internal/testutil"
	"socrates/internal/wal"
)

// ---- property-style batcher test ----
//
// Drive the adaptive group-commit batcher with seeded, replayable
// randomized interleavings of commit sizes and arrival gaps, and assert
// the invariants that must hold under EVERY schedule:
//
//  1. each committer's acked LSNs are monotone and the hardened watermark
//     it observes never regresses;
//  2. no commit is acknowledged before its batch is durable in the landing
//     zone (the LZ's own hardened prefix covers the LSN at ack time);
//  3. batch boundaries never split a log record: every appended record
//     appears in exactly one hardened block, blocks chain contiguously,
//     and every block ends on a transaction-boundary record;
//  4. per-request WaitProfile commit.harden attribution sums to the tier
//     sketch's commit.harden total.
//
// Replay a failure with -run 'TestBatcherProperty/seed=N'.

func TestBatcherProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runBatcherProperty(t, seed)
		})
	}
}

type ackSample struct {
	lsn        page.LSN // commit record LSN
	lzHardened page.LSN // LZ durable prefix observed at ack time
	wHardened  page.LSN // writer watermark observed at ack time
}

func runBatcherProperty(t *testing.T, seed int64) {
	lz := newLZ(t)
	ws := obs.NewWaitSet()
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1, WithWaits(ws.Tier("compute")))
	defer w.Close()

	const committers = 8
	const commitsPer = 20

	profiles := make([]*obs.WaitProfile, committers)
	acks := make([][]ackSample, committers)
	var appended sync.Map // LSN -> struct{} for every record we appended
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		c := c
		profiles[c] = obs.NewWaitProfile()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(simdisk.MixSeed(seed, int64(c+1))))
			ctx := obs.ContextWithWaitProfile(context.Background(), profiles[c])
			for i := 0; i < commitsPer; i++ {
				txn := uint64(c*commitsPer + i + 1)
				for j := 0; j < 1+rng.Intn(3); j++ {
					val := make([]byte, rng.Intn(512))
					// Unique keys: coalescing must not kick in, so every
					// appended LSN is accounted for in a hardened block.
					rec := &wal.Record{Kind: wal.KindCellPut, Page: page.ID(c + 1),
						Key: []byte(fmt.Sprintf("c%d-i%d-j%d", c, i, j)), Value: val, Txn: txn}
					appended.Store(w.Append(rec), struct{}{})
				}
				lsn := w.Append(wal.NewCommit(txn, txn))
				appended.Store(lsn, struct{}{})
				if err := w.WaitHarden(ctx, lsn); err != nil {
					t.Errorf("committer %d: WaitHarden(%d): %v", c, lsn, err)
					return
				}
				acks[c] = append(acks[c], ackSample{
					lsn: lsn, lzHardened: lz.HardenedEnd(), wHardened: w.HardenedEnd()})
				if gap := rng.Intn(200); gap > 0 {
					time.Sleep(time.Duration(gap) * time.Microsecond) //socrates:sleep-ok randomized arrival gap drives schedule diversity; assertions are ordering-based
				}
			}
		}()
	}
	wg.Wait()

	// Invariants 1 + 2: monotone acks, never acked before durable.
	for c, samples := range acks {
		var prevLSN, prevHardened page.LSN
		for _, s := range samples {
			if s.lsn.AtMost(prevLSN) {
				t.Fatalf("committer %d: ack LSNs not monotone: %d after %d", c, s.lsn, prevLSN)
			}
			if s.wHardened < prevHardened {
				t.Fatalf("committer %d: hardened watermark regressed %d -> %d",
					c, prevHardened, s.wHardened)
			}
			if s.lzHardened.AtMost(s.lsn) {
				t.Fatalf("committer %d: commit %d acked with LZ durable prefix at %d",
					c, s.lsn, s.lzHardened)
			}
			prevLSN, prevHardened = s.lsn, s.wHardened
		}
	}

	// Invariant 3: walk the hardened chain; blocks contiguous, each ends
	// on a boundary record, every appended record lands exactly once.
	seen := make(map[page.LSN]bool)
	next := page.LSN(1)
	for next < lz.HardenedEnd() {
		b, found, err := lz.Read(next)
		if err != nil || !found {
			t.Fatalf("chain broken at %d: found=%v err=%v", next, found, err)
		}
		if b.Start != next {
			t.Fatalf("block start %d, expected %d (chain must be contiguous)", b.Start, next)
		}
		if len(b.Records) == 0 {
			t.Fatalf("empty block at %d", b.Start)
		}
		switch b.Records[len(b.Records)-1].Kind {
		case wal.KindTxnCommit, wal.KindTxnAbort, wal.KindCheckpoint, wal.KindNoop:
		default:
			t.Fatalf("block [%d,%d) ends on %v, not a transaction boundary",
				b.Start, b.End, b.Records[len(b.Records)-1].Kind)
		}
		var prev page.LSN
		for _, r := range b.Records {
			if seen[r.LSN] {
				t.Fatalf("record %d appears in more than one block", r.LSN)
			}
			if r.LSN < b.Start || r.LSN >= b.End {
				t.Fatalf("record %d outside its block [%d,%d)", r.LSN, b.Start, b.End)
			}
			if r.LSN.AtMost(prev) && prev != 0 {
				t.Fatalf("records out of LSN order within block at %d", r.LSN)
			}
			seen[r.LSN] = true
			prev = r.LSN
		}
		next = b.End
	}
	appended.Range(func(k, _ any) bool {
		if !seen[k.(page.LSN)] {
			t.Fatalf("appended record %d never landed in a hardened block", k.(page.LSN))
		}
		return true
	})
	if got := w.Coalesced(); got != 0 {
		t.Fatalf("coalesced %d records despite unique keys", got)
	}

	// Invariant 4: per-request commit.harden attribution sums to the tier
	// sketch total (nothing lost, nothing double-counted).
	var profSum uint64
	for _, p := range profiles {
		for _, st := range p.Breakdown() {
			if st.Class == obs.WaitCommitHarden.String() {
				profSum += st.TotalNS
			}
		}
	}
	var tierSum uint64
	for _, st := range ws.Report().Tiers["compute"] {
		if st.Class == obs.WaitCommitHarden.String() {
			tierSum = st.TotalNS
		}
	}
	if profSum != tierSum {
		t.Fatalf("commit.harden attribution: profiles sum %d ns, tier sketch %d ns",
			profSum, tierSum)
	}
}

// ---- deterministic-clock batching-window tests ----
//
// These extend PR 8's Tick-driven watchdog pattern: the batcher's window
// logic runs against testutil.FakeClock, so timeout behavior is asserted
// without a single wall-clock sleep.

// setBatcherState force-feeds the adaptive state the window policy reads.
func setBatcherState(w *LogWriter, inflight int, writeEWMA, gapEWMA time.Duration) {
	w.mu.Lock()
	w.inflightCnt = inflight
	w.writeEWMA = float64(writeEWMA)
	w.gapEWMA = float64(gapEWMA)
	w.mu.Unlock()
}

// waitForArmedTimer polls until the flusher parks in the batching window
// (its waker timer is armed). The poll is deadline-bounded and waits FOR a
// condition — it cannot pass spuriously.
func waitForArmedTimer(t *testing.T, clk *testutil.FakeClock) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never armed the batching-window timer")
		}
		time.Sleep(100 * time.Microsecond) //socrates:sleep-ok deadline-bounded poll for the flusher to park; no timing assertion rides on it
	}
}

func TestSoloCommitCutsWithoutTimer(t *testing.T) {
	lz := newLZ(t)
	clk := testutil.NewFakeClock()
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1, WithClock(clk))
	defer w.Close()
	// Idle pipeline: the commit must harden with the clock frozen — the
	// fast path never consults a timer, so single-client latency carries
	// no batching tax (Table 6).
	lsn := w.Append(wal.NewCommit(1, 1))
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	if clk.Pending() != 0 {
		t.Fatalf("%d timers armed for a solo commit on an idle pipeline", clk.Pending())
	}
}

func TestBatchWindowHoldsUntilTimerFires(t *testing.T) {
	lz := newLZ(t)
	clk := testutil.NewFakeClock()
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1, WithClock(clk))
	defer w.Close()
	// A busy pipeline with an 800µs write estimate: the plan holds small
	// batches open for 200µs (write/4).
	setBatcherState(w, 1, 800*time.Microsecond, 0)

	lsn := w.Append(wal.NewCommit(1, 1))
	waitForArmedTimer(t, clk)
	if got := lz.HardenedEnd(); got != 1 {
		t.Fatalf("batch cut before the window expired: hardened=%d", got)
	}
	// A second commit joins the open batch while the window holds.
	lsn2 := w.Append(wal.NewCommit(2, 2))
	// Fire the window: one block must carry both commits.
	clk.Advance(200 * time.Microsecond)
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitHarden(context.Background(), lsn2); err != nil {
		t.Fatal(err)
	}
	blocks, _ := w.Stats()
	if blocks != 1 {
		t.Fatalf("window produced %d blocks, want 1 (both commits batched)", blocks)
	}
}

func TestBatchCutsAtByteTargetWithoutClock(t *testing.T) {
	lz := newLZ(t)
	clk := testutil.NewFakeClock()
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1, WithClock(clk))
	defer w.Close()
	setBatcherState(w, 1, 0, 0) // default write estimate → 4KiB target

	// A batch already over the byte target must cut with the clock frozen.
	for j := 0; j < 3; j++ {
		w.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1, Txn: 1,
			Key: []byte{byte(j)}, Value: make([]byte, 2<<10)})
	}
	lsn := w.Append(wal.NewCommit(1, 1))
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
}

func TestSparseArrivalsSkipTheWindow(t *testing.T) {
	lz := newLZ(t)
	clk := testutil.NewFakeClock()
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1, WithClock(clk))
	defer w.Close()
	// Busy pipeline but commits arriving far slower than any window:
	// batching would only add latency, so the plan cuts immediately and
	// the commit hardens with the clock frozen.
	setBatcherState(w, 1, 800*time.Microsecond, 5*time.Millisecond)

	lsn := w.Append(wal.NewCommit(1, 1))
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
}

func TestBatchPlanPolicy(t *testing.T) {
	w := &LogWriter{}
	// Idle pipeline: cut now.
	if wait, _ := w.batchPlan(); wait != 0 {
		t.Fatalf("idle pipeline wait = %v, want 0", wait)
	}
	w.inflightCnt = 1
	// No write samples yet: default estimate, minimum target.
	wait, target := w.batchPlan()
	if wait != defaultWriteEstimate/4 || target != minBatchTarget {
		t.Fatalf("cold plan = (%v, %d)", wait, target)
	}
	// Slow writes stretch window and target proportionally.
	w.writeEWMA = float64(4 * time.Millisecond)
	wait, target = w.batchPlan()
	if wait != time.Millisecond || target != 8*minBatchTarget {
		t.Fatalf("slow-write plan = (%v, %d)", wait, target)
	}
	// Both clamp.
	w.writeEWMA = float64(time.Second)
	wait, target = w.batchPlan()
	if wait != maxBatchWait || target != maxBatchTarget {
		t.Fatalf("clamped plan = (%v, %d)", wait, target)
	}
	// Sparse arrivals zero the wait but keep the target.
	w.gapEWMA = float64(time.Second)
	if wait, _ = w.batchPlan(); wait != 0 {
		t.Fatalf("sparse-arrival wait = %v, want 0", wait)
	}
}

// ---- log-record coalescing ----

func TestCoalesceBatchSquashesSameTxnOverwrites(t *testing.T) {
	rec := func(lsn page.LSN, txn uint64, kind wal.Kind, key, val string) *wal.Record {
		return &wal.Record{LSN: lsn, Txn: txn, Kind: kind, Page: 1,
			Key: []byte(key), Value: []byte(val)}
	}
	recs := []*wal.Record{
		rec(1, 1, wal.KindCellPut, "k", "v1"),
		rec(2, 2, wal.KindCellPut, "k", "other-txn"), // different txn: kept
		rec(3, 1, wal.KindCellPut, "k", "v2"),
		rec(4, 1, wal.KindCellDelete, "k", ""), // delete: never coalesced
		rec(5, 1, wal.KindCellPut, "k", "v3"),
		rec(6, 1, wal.KindTxnCommit, "", ""),
	}
	out, dropped := coalesceBatch(recs)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	wantLSNs := []page.LSN{2, 4, 5, 6}
	if len(out) != len(wantLSNs) {
		t.Fatalf("kept %d records, want %d", len(out), len(wantLSNs))
	}
	for i, r := range out {
		if r.LSN != wantLSNs[i] {
			t.Fatalf("kept[%d] = LSN %d, want %d", i, r.LSN, wantLSNs[i])
		}
	}
	if string(out[2].Value) != "v3" {
		t.Fatalf("survivor value = %q, want the LAST image", out[2].Value)
	}
}

func TestCoalesceBatchNoOverwritesIsPassthrough(t *testing.T) {
	recs := []*wal.Record{
		{LSN: 1, Txn: 1, Kind: wal.KindCellPut, Page: 1, Key: []byte("a")},
		{LSN: 2, Txn: 1, Kind: wal.KindCellPut, Page: 1, Key: []byte("b")},
		{LSN: 3, Txn: 1, Kind: wal.KindTxnCommit},
	}
	out, dropped := coalesceBatch(recs)
	if dropped != 0 || len(out) != 3 {
		t.Fatalf("passthrough broke: dropped=%d len=%d", dropped, len(out))
	}
}

// End to end: a squashed batch still hardens as one contiguous block whose
// LSN range covers the holes, and redo of the surviving records is what a
// reader observes.
func TestCoalescedBatchHardensWithOriginalRange(t *testing.T) {
	lz := newLZ(t)
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1)
	defer w.Close()

	w.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1, Txn: 1, Key: []byte("k"), Value: []byte("v1")})
	w.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1, Txn: 1, Key: []byte("k"), Value: []byte("v2")})
	w.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1, Txn: 1, Key: []byte("k"), Value: []byte("v3")})
	lsn := w.Append(wal.NewCommit(1, 1))
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	b, found, err := lz.Read(1)
	if err != nil || !found {
		t.Fatalf("read: %v %v", found, err)
	}
	if b.Start != 1 || b.End != lsn+1 {
		t.Fatalf("block range [%d,%d), want [1,%d) — holes must not shrink the range",
			b.Start, b.End, lsn+1)
	}
	if len(b.Records) != 2 {
		t.Fatalf("block carries %d records, want 2 (last put + commit)", len(b.Records))
	}
	if string(b.Records[0].Value) != "v3" || b.Records[0].LSN != 3 {
		t.Fatalf("survivor = LSN %d %q, want LSN 3 \"v3\"", b.Records[0].LSN, b.Records[0].Value)
	}
	if got := w.Coalesced(); got != 2 {
		t.Fatalf("Coalesced() = %d, want 2", got)
	}
}
