package compute

import (
	"context"
	"errors"
	"sync"
	"time"

	"socrates/internal/engine"
	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/rbpex"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
)

// SecondaryConfig assembles a secondary compute node.
type SecondaryConfig struct {
	// Name is the node's XLOG consumer identity.
	Name string
	// XLOG is the client to the XLOG service.
	XLOG *rbio.Client
	// Resolve maps pages to page-server selectors.
	Resolve Resolver
	// CacheMemPages / CacheSSDPages size the sparse RBPEX.
	CacheMemPages, CacheSSDPages int
	// CacheSSD / CacheMeta are local cache devices.
	CacheSSD, CacheMeta *simdisk.Device
	// StartLSN is where log consumption begins (1 for a new database, or
	// the hardened end at attach for a later-added secondary).
	StartLSN page.LSN
	// StartTS seeds visibility for a later-added secondary.
	StartTS uint64
	// Meter, if set, is charged the node's simulated CPU.
	Meter *metrics.CPUMeter
	// PullBytes bounds one pull batch (default 256 KiB).
	PullBytes int
	// ApplyDelay adds latency before each pull — models a geo-replica
	// consuming the log across a WAN (§6).
	ApplyDelay time.Duration
	// Tracer / Metrics attach the node to the deployment's observability
	// plane (GetPage@LSN spans and cache-miss latency histograms).
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Watermarks receives this node's compute.applied_lsn rung, labeled by
	// Name (nil = watermarks off).
	Watermarks *obs.WatermarkSet
	// Flight receives apply-batch flight-recorder events (nil = off).
	Flight *obs.FlightRecorder
	// Waits receives wait-event accounting for this node: xlog.feed when a
	// caller blocks on apply progress, page.remote/page.miss on the page
	// path, lock.row on visibility retries. Nil disables recording.
	Waits *obs.WaitRecorder
}

// Secondary is a read-only compute node. It consumes the full log stream
// asynchronously, applying records only to pages it has cached (the §4.5
// policy — "log records that involve pages that are not cached are simply
// ignored"), publishing commit timestamps as they apply, and serving
// snapshot reads that transparently fetch missing pages via GetPage@LSN.
type Secondary struct {
	Engine *engine.Engine
	pages  *RemotePageFile
	name   string
	xlog   *rbio.Client

	mu      sync.Mutex
	applied page.LSN
	cond    *sync.Cond

	done chan struct{}
	wg   sync.WaitGroup

	ignored     metrics.Counter
	appliedRecs metrics.Counter
	queuedRecs  metrics.Counter
	pullBytes   int
	applyDelay  time.Duration

	wms    *obs.WatermarkSet
	flight *obs.FlightRecorder
	waits  *obs.WaitRecorder
}

// NewSecondary builds and starts a secondary.
func NewSecondary(cfg SecondaryConfig) (*Secondary, error) {
	if cfg.XLOG == nil || cfg.Resolve == nil {
		return nil, errors.New("compute: XLOG and Resolve are required")
	}
	if cfg.CacheMemPages <= 0 {
		cfg.CacheMemPages = 128
	}
	if cfg.PullBytes <= 0 {
		cfg.PullBytes = 256 << 10
	}
	if cfg.StartLSN == 0 {
		cfg.StartLSN = 1
	}
	s := &Secondary{
		name:       cfg.Name,
		xlog:       cfg.XLOG,
		applied:    cfg.StartLSN,
		done:       make(chan struct{}),
		pullBytes:  cfg.PullBytes,
		applyDelay: cfg.ApplyDelay,
		wms:        cfg.Watermarks,
		flight:     cfg.Flight,
		waits:      cfg.Waits,
	}
	s.cond = sync.NewCond(&s.mu)

	// The freshness floor for never-seen pages: every record below the
	// node's applied watermark — i.e. LSNs up to applied-1 — may have
	// touched the page, so the page server must have applied that far.
	floor := func() page.LSN { return s.AppliedLSN().Prev() }
	pages, err := NewRemotePageFile(rbpex.Config{
		MemPages: cfg.CacheMemPages,
		SSDPages: cfg.CacheSSDPages,
		SSD:      cfg.CacheSSD,
		Meta:     cfg.CacheMeta,
		Waits:    cfg.Waits,
	}, cfg.Resolve, floor)
	if err != nil {
		return nil, err
	}
	pages.SetObs(cfg.Tracer, cfg.Metrics)
	pages.SetFlight(cfg.Flight)
	pages.SetWaits(cfg.Waits)
	s.pages = pages

	eng, err := engine.Open(engine.Config{
		Pages:    pages,
		ReadOnly: true,
		Meter:    cfg.Meter,
		Tracer:   cfg.Tracer,
		Metrics:  cfg.Metrics,
		Waits:    cfg.Waits,
		WaitFresh: func() {
			// A traversal raced log apply: pause until the apply thread
			// makes progress, then retry (§4.5).
			s.waitApplyProgress(2 * time.Millisecond)
		},
	})
	if err != nil {
		return nil, err
	}
	eng.Clock().Publish(cfg.StartTS)
	s.Engine = eng

	s.wg.Add(1)
	go s.applyLoop()
	return s, nil
}

// Name reports the node's consumer identity.
func (s *Secondary) Name() string { return s.name }

// Pages exposes the cache-fronted page file.
func (s *Secondary) Pages() *RemotePageFile { return s.pages }

// AppliedLSN reports the log-apply watermark.
func (s *Secondary) AppliedLSN() page.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Stats reports records applied, ignored (uncached policy), and queued for
// in-flight fetches.
func (s *Secondary) Stats() (applied, ignored, queued int64) {
	return s.appliedRecs.Load(), s.ignored.Load(), s.queuedRecs.Load()
}

// WaitApplied blocks until the apply watermark reaches lsn.
func (s *Secondary) WaitApplied(lsn page.LSN, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// xlog.feed: the caller is blocked behind this node's log-apply
	// progress. Recorded only when the loop actually blocks.
	region := s.waits.Begin(nil, obs.WaitXLOGFeed)
	waited := false
	defer func() { region.EndIf(waited) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.applied.Before(lsn) {
		if time.Now().After(deadline) {
			return false
		}
		waited = true
		waker := time.AfterFunc(time.Millisecond, s.cond.Broadcast)
		s.cond.Wait()
		waker.Stop()
	}
	return true
}

// waitApplyProgress blocks until applied advances or the timeout elapses.
func (s *Secondary) waitApplyProgress(timeout time.Duration) {
	s.mu.Lock()
	start := s.applied
	deadline := time.Now().Add(timeout)
	for s.applied == start && time.Now().Before(deadline) {
		waker := time.AfterFunc(200*time.Microsecond, s.cond.Broadcast)
		//socrates:wait-ok reached only via the engine's WaitFresh hook, whose caller (withReadRetry) records the blocked time as lock.row
		s.cond.Wait()
		waker.Stop()
	}
	s.mu.Unlock()
}

// Stop halts log consumption.
func (s *Secondary) Stop() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	s.wg.Wait()
}

func (s *Secondary) applyLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		if s.applyDelay > 0 {
			//socrates:sleep-ok applyDelay models a geo-replica's WAN propagation lag; the delay IS the semantics, not a poll
			time.Sleep(s.applyDelay)
		}
		if !s.pullOnce() {
			// Nothing new at the XLOG service. The pull model has no local
			// condition to wait on, so back off briefly but stay killable.
			//socrates:wait-ok idle pull backoff on an empty feed; recording it would drown real apply-lag waits
			select {
			case <-s.done:
				return
			case <-time.After(300 * time.Microsecond):
			}
		}
	}
}

// pullTimeout bounds one secondary pull round against the XLOG service.
const pullTimeout = 10 * time.Second

func (s *Secondary) pullOnce() bool {
	s.mu.Lock()
	from := s.applied
	s.mu.Unlock()

	// Bounded: the pull loop retries on failure, so a stalled XLOG costs
	// one timed-out round instead of a wedged consumer goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), pullTimeout)
	defer cancel()
	resp, err := s.xlog.Call(ctx, &rbio.Request{
		Type:      rbio.MsgPullBlocks,
		LSN:       from,
		Partition: -1, // secondaries consume the whole stream (§4.6)
		MaxBytes:  int32(s.pullBytes),
		Consumer:  s.name,
	})
	if err != nil || resp.Status != rbio.StatusOK {
		return false
	}
	payload := resp.Payload
	for len(payload) > 0 {
		b, n, err := wal.DecodeBlock(payload)
		if err != nil {
			return false
		}
		payload = payload[n:]
		for _, rec := range b.Records {
			s.applyRecord(rec)
		}
	}
	if resp.LSN == from {
		return false
	}
	s.mu.Lock()
	s.applied = resp.LSN
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wms.Watermark(obs.WMSecondary, s.name).Publish(uint64(resp.LSN))
	s.flight.Record(obs.TierCompute, "sec.apply", uint64(resp.LSN), 0,
		s.name+": batch applied")
	//socrates:ignore-err applied-progress reports are advisory lease refreshes; the next pull re-reports and the watermark is monotone at the service
	_, _ = s.xlog.Call(ctx, &rbio.Request{
		Type: rbio.MsgReportApplied, Consumer: s.name, LSN: resp.LSN})
	return true
}

// applyRecord applies one redo record from the log feed.
//
//socrates:hotpath runs once per record in the secondary's apply feed; budget enforced by TestApplyFeedAllocs
func (s *Secondary) applyRecord(rec *wal.Record) {
	switch {
	case rec.Kind == wal.KindTxnCommit:
		// Visibility advances exactly in log order.
		s.Engine.Clock().Publish(rec.CommitTS())
	case rec.IsPageOp():
		if s.pages.QueueIfPending(rec) {
			s.queuedRecs.Inc()
			return
		}
		applied, err := s.pages.ApplyIfCached(rec)
		if err != nil {
			return
		}
		if applied {
			s.appliedRecs.Inc()
		} else {
			s.ignored.Inc()
		}
	}
}
