package compute

import (
	"context"
	"sync"
	"testing"
	"time"

	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/rbpex"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
	"socrates/internal/xlog"
)

func newLZ(t *testing.T) *xlog.LandingZone {
	t.Helper()
	lz, err := xlog.NewLandingZone(simdisk.New(simdisk.Instant), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	return lz
}

func TestLogWriterFlushesAtTxnBoundaries(t *testing.T) {
	lz := newLZ(t)
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1)
	defer w.Close()

	// Page records without a commit are never flushed alone.
	w.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1, Key: []byte("k")})
	w.Append(&wal.Record{Kind: wal.KindCellPut, Page: 2, Key: []byte("k")})
	time.Sleep(5 * time.Millisecond) //socrates:sleep-ok negative check: give the flusher a window to (wrongly) flush a commit-less group
	if got := lz.HardenedEnd(); got != 1 {
		t.Fatalf("hardened = %d before any commit", got)
	}
	// The commit record completes the group.
	lsn := w.Append(wal.NewCommit(1, 1))
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	if lz.HardenedEnd() != lsn+1 {
		t.Fatalf("hardened = %d, want %d", lz.HardenedEnd(), lsn+1)
	}
	// The hardened block contains the whole transaction.
	b, found, err := lz.Read(1)
	if err != nil || !found {
		t.Fatalf("block read: %v %v", found, err)
	}
	if len(b.Records) != 3 {
		t.Fatalf("block has %d records", len(b.Records))
	}
}

func TestLogWriterGroupCommit(t *testing.T) {
	lz := newLZ(t)
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1)
	defer w.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			lsn := w.Append(wal.NewCommit(uint64(n), uint64(n)))
			if err := w.WaitHarden(context.Background(), lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	blocks, _ := w.Stats()
	if blocks == 0 || blocks > 16 {
		t.Fatalf("blocks = %d", blocks)
	}
}

func TestLogWriterFeedsXLOG(t *testing.T) {
	lz := newLZ(t)
	net := rbio.NewInstantNetwork()
	var mu sync.Mutex
	var fed, hardenReports int
	net.Serve("xlog", func(_ context.Context, req *rbio.Request) *rbio.Response {
		mu.Lock()
		defer mu.Unlock()
		switch req.Type {
		case rbio.MsgFeedBlock:
			fed++
		case rbio.MsgHardenReport:
			hardenReports++
		}
		return rbio.Ok()
	})
	w := NewLogWriter(lz, rbio.NewClient(net.Dial("xlog")), page.Partitioning{}, 1)
	lsn := w.Append(wal.NewCommit(1, 1))
	if err := w.WaitHarden(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Feed sends are async: poll with a deadline instead of a fixed sleep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		f, h := fed, hardenReports
		mu.Unlock()
		if f > 0 && h > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fed=%d reports=%d", f, h)
		}
		time.Sleep(time.Millisecond) //socrates:sleep-ok deadline-bounded poll for async feed sends
	}
}

func TestWaitHardenAfterClose(t *testing.T) {
	lz := newLZ(t)
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1)
	w.Close()
	if err := w.WaitHarden(context.Background(), 99); err == nil {
		t.Fatal("WaitHarden on closed writer should fail")
	}
}

// pageServerStub answers GetPage with a canned page and records the
// requested min LSN.
type pageServerStub struct {
	mu      sync.Mutex
	minLSNs []page.LSN
	lsn     page.LSN
}

func (s *pageServerStub) handler() rbio.Handler {
	return func(_ context.Context, req *rbio.Request) *rbio.Response {
		if req.Type != rbio.MsgGetPage {
			return rbio.Errorf("unexpected %v", req.Type)
		}
		s.mu.Lock()
		s.minLSNs = append(s.minLSNs, req.LSN)
		s.mu.Unlock()
		pg := &page.Page{ID: req.Page, LSN: s.lsn, Type: page.TypeLeaf, Data: []byte{1}}
		buf, _ := pg.Encode()
		resp := rbio.Ok()
		resp.Payload = buf
		return resp
	}
}

func newRemoteFile(t *testing.T, stub *pageServerStub, floor page.LSN) *RemotePageFile {
	t.Helper()
	net := rbio.NewInstantNetwork()
	net.Serve("ps", stub.handler())
	sel := rbio.NewSelector(rbio.NewClient(net.Dial("ps")))
	f, err := NewRemotePageFile(rbpex.Config{MemPages: 2},
		func(page.ID) (*rbio.Selector, error) { return sel, nil },
		func() page.LSN { return floor })
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRemoteFileUsesEvictedLSN(t *testing.T) {
	stub := &pageServerStub{lsn: 50}
	f := newRemoteFile(t, stub, 5)

	// Cold read of an unknown page: min LSN = floor.
	if _, err := f.Read(7); err != nil {
		t.Fatal(err)
	}
	// Write a newer version and force it out of the cache.
	_ = f.Write(&page.Page{ID: 7, LSN: 60, Type: page.TypeLeaf, Data: []byte{2}})
	_ = f.Write(&page.Page{ID: 8, LSN: 61, Type: page.TypeLeaf})
	_ = f.Write(&page.Page{ID: 9, LSN: 62, Type: page.TypeLeaf}) // evicts 7
	stub.lsn = 60
	if _, err := f.Read(7); err != nil {
		t.Fatal(err)
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if len(stub.minLSNs) != 2 {
		t.Fatalf("fetches = %d (%v)", len(stub.minLSNs), stub.minLSNs)
	}
	if stub.minLSNs[0] != 5 {
		t.Fatalf("cold fetch min LSN = %d, want floor 5", stub.minLSNs[0])
	}
	if stub.minLSNs[1] != 60 {
		t.Fatalf("post-evict fetch min LSN = %d, want 60 (evicted-LSN map)", stub.minLSNs[1])
	}
}

func TestRemoteFilePendingQueueProtocol(t *testing.T) {
	stub := &pageServerStub{lsn: 10}
	f := newRemoteFile(t, stub, 1)

	// Nothing pending: records for uncached pages are not queued.
	rec := &wal.Record{LSN: 11, Kind: wal.KindCellPut, Page: 3,
		Key: []byte("k"), Value: []byte("v")}
	if f.QueueIfPending(rec) {
		t.Fatal("queued without a pending fetch")
	}

	// Register a fetch manually through the public path: start a Read and
	// interleave a record while it is in flight. The instant network makes
	// true interleaving racy to arrange, so exercise the queue directly:
	f.mu.Lock()
	f.pending[3] = nil
	f.mu.Unlock()
	if !f.QueueIfPending(rec) {
		t.Fatal("pending fetch did not queue the record")
	}
	f.mu.Lock()
	queued := len(f.pending[3])
	f.mu.Unlock()
	if queued != 1 {
		t.Fatalf("queued = %d", queued)
	}
}

func TestApplyIfCachedPolicy(t *testing.T) {
	stub := &pageServerStub{lsn: 10}
	f := newRemoteFile(t, stub, 1)

	// Uncached page + cell record → ignored (the §4.5 policy).
	applied, err := f.ApplyIfCached(&wal.Record{LSN: 11, Kind: wal.KindCellPut,
		Page: 5, Key: []byte("k")})
	if err != nil || applied {
		t.Fatalf("uncached cell apply: %v %v", applied, err)
	}
	// Page images for new pages are admitted.
	applied, err = f.ApplyIfCached(&wal.Record{LSN: 12, Kind: wal.KindPageImage,
		Page: 5, PageType: page.TypeLeaf, Value: nil})
	if err != nil || !applied {
		t.Fatalf("image admit: %v %v", applied, err)
	}
	// Now the page is cached: later records apply.
	applied, err = f.ApplyIfCached(&wal.Record{LSN: 13, Kind: wal.KindPageImage,
		Page: 5, PageType: page.TypeLeaf, Value: nil})
	if err != nil || !applied {
		t.Fatalf("cached apply: %v %v", applied, err)
	}
	if lsn, ok := f.Cache().GetLSN(5); !ok || lsn != 13 {
		t.Fatalf("cached LSN = %d %v", lsn, ok)
	}
}
