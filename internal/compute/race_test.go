package compute

import (
	"context"
	"sync"
	"testing"

	"socrates/internal/page"
	"socrates/internal/wal"
)

// TestLogWriterConcurrentAppendAndWatermarks drives the log pipeline from
// many committers while other goroutines read every exported watermark and
// counter. Under -race this pins the locking discipline of the hot path:
// Append / WaitHarden vs. the async flush goroutines that advance the
// hardened watermark out of order.
func TestLogWriterConcurrentAppendAndWatermarks(t *testing.T) {
	lz := newLZ(t)
	w := NewLogWriter(lz, nil, page.Partitioning{}, 1)
	defer w.Close()

	const committers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Watermark readers: HardenedEnd / NextLSN / Stats race the flushers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last page.LSN
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := w.HardenedEnd()
				if h.Before(last) {
					t.Errorf("hardened watermark went backwards: %d -> %d", last, h)
					return
				}
				last = h
				_ = w.NextLSN()
				_, _ = w.Stats()
			}
		}()
	}

	var commitWG sync.WaitGroup
	for c := 0; c < committers; c++ {
		commitWG.Add(1)
		go func(c int) {
			defer commitWG.Done()
			for i := 0; i < perWorker; i++ {
				txn := uint64(c*perWorker + i + 1)
				w.Append(&wal.Record{Kind: wal.KindCellPut, Page: page.ID(txn%7 + 1), Key: []byte("k")})
				lsn := w.Append(wal.NewCommit(txn, txn))
				if err := w.WaitHarden(context.Background(), lsn); err != nil {
					t.Errorf("WaitHarden(%d): %v", lsn, err)
					return
				}
			}
		}(c)
	}
	commitWG.Wait()
	close(stop)
	wg.Wait()

	// Every appended record (2 per commit) must be hardened.
	want := page.LSN(1).Add(uint64(2 * committers * perWorker))
	if got := w.HardenedEnd(); got != want {
		t.Fatalf("hardened end = %d, want %d", got, want)
	}
}

// TestRemotePageFileConcurrentEvictTracking races eviction notes against
// minLSN lookups — the bookkeeping behind GetPage@LSN's "highest LSN for
// every page evicted" requirement (§4.4).
func TestRemotePageFileConcurrentEvictTracking(t *testing.T) {
	f := &RemotePageFile{
		evicted: make(map[page.ID]page.LSN),
		pending: make(map[page.ID][]*wal.Record),
		floor:   func() page.LSN { return 7 },
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				id := page.ID(i%16 + 1)
				f.noteEvicted(id, page.LSN(i))
				got := f.minLSN(id)
				if got.Before(page.LSN(1)) {
					t.Errorf("minLSN(%d) = %d", id, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// The note is monotone: the highest LSN wins for every page.
	for id := page.ID(1); id <= 16; id++ {
		if f.minLSN(id).Before(f.minLSN(id)) {
			t.Fatalf("unstable minLSN for page %d", id)
		}
	}
	if got := f.minLSN(page.ID(999)); got != 7 {
		t.Fatalf("unknown page floor = %d, want 7", got)
	}
}
