package compute

import (
	"testing"

	"socrates/internal/page"
	"socrates/internal/testutil"
	"socrates/internal/wal"
)

// TestCommitAppendAllocs is the allocation contract for LogWriter.Append,
// the stage every committed record passes through. Only non-boundary
// records are staged, so the flusher never wakes and the measurement sees
// the pure staging cost: after warmup has grown the pending slice, an
// append is LSN assignment plus a slot store — zero allocations.
func TestCommitAppendAllocs(t *testing.T) {
	testutil.SkipIfRace(t)

	w := NewLogWriter(nil, nil, page.Partitioning{}, 1)
	defer w.Close()

	rec := func() *wal.Record {
		return &wal.Record{Kind: wal.KindCellPut, Page: 3,
			Key: []byte("k"), Value: []byte("v")}
	}
	// Warmup grows pending well past what the measured runs will add, so
	// amortized slice growth is outside the measurement window.
	for i := 0; i < 50000; i++ {
		w.Append(rec())
	}
	const runs = 1000
	recs := make([]*wal.Record, runs+1)
	for i := range recs {
		recs[i] = rec()
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		w.Append(recs[i])
		i++
	})
	t.Logf("commit append: %.2f allocs/op (budget 0)", avg)
	if avg > 0 {
		t.Fatalf("commit append: %.2f allocs/op, budget 0", avg)
	}
}
