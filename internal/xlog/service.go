package xlog

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/socerr"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// Service is the XLOG process (§4.3, Figure 3). The primary feeds it log
// blocks over a lossy fire-and-forget channel and reports the hardened
// watermark after landing-zone quorum writes. The service:
//
//   - parks feed blocks in the pending area (speculative logging guard),
//   - promotes blocks to the LogBroker's in-memory sequence map only once
//     they are hardened, filling feed gaps by reading the LZ,
//   - destages promoted blocks to a fixed-size local SSD block cache and
//     appends them to the long-term archive (LT) in XStore, then releases
//     the LZ space,
//   - serves consumer pulls (secondaries unfiltered, page servers filtered
//     by partition annotation) from, in order: sequence map, SSD cache, LZ,
//     and LT as the last resort,
//   - tracks consumer leases and applied-LSN progress.
//
// The service keeps no authoritative state: everything is rebuilt from the
// LZ and LT on restart (Recover), preserving the paper's "stateless XLOG
// process" property.
type Service struct {
	lz  *LandingZone
	lt  *lt
	ssd *blockCache

	tracer  *obs.Tracer
	metrics *obs.Registry
	wms     *obs.WatermarkSet
	flight  *obs.FlightRecorder
	waits   *obs.WaitRecorder

	mu          sync.Mutex
	pending     map[page.LSN]entry // by Start; not yet hardened
	broker      []entry            // sequence map, sorted by Start
	brokerBytes int
	budget      int      // sequence-map memory budget in bytes
	promoted    page.LSN // end LSN of the last promoted block
	destaged    page.LSN // end LSN of the last destaged block
	// destagedCond (on mu) is broadcast whenever destaged advances, so
	// WaitDestaged blocks on a signal instead of polling.
	destagedCond *sync.Cond
	maxCommitTS  uint64 // highest commit timestamp in promoted log

	consumers map[string]*consumer

	// producerEpoch identifies the current log producer. A primary crash
	// can leave speculative (fed-but-never-hardened) blocks in the pending
	// area whose LSNs the *next* primary reuses; if the new block's feed
	// is lost, promotion would otherwise trust the dead producer's bytes
	// and disseminate transactions that are not in the durable log. Every
	// feed is stamped with its producer's epoch; BeginEpoch advances the
	// accepted epoch on failover and purges the dead producer's tail.
	producerEpoch uint64

	destageKick chan struct{}
	done        chan struct{}
	wg          sync.WaitGroup

	feedReceived, feedStale, feedWrongEpoch, gapFills int
}

type consumer struct {
	applied  page.LSN
	lastSeen time.Time
}

// entry pairs a block with its encoded bytes, so dissemination never
// re-encodes (blocks are immutable once hardened).
type entry struct {
	b   *wal.Block
	enc []byte
}

// Config sizes a Service.
type Config struct {
	// LZ is the landing zone shared with the primary.
	LZ *LandingZone
	// LT is the XStore account holding the long-term log archive.
	LT *xstore.Store
	// LTBlob names the archive blob (one per database).
	LTBlob string
	// CacheDevice is the local SSD for the destaging block cache; nil
	// disables the cache tier.
	CacheDevice *simdisk.Device
	// CacheBytes bounds the SSD block cache (default 4 MiB).
	CacheBytes int64
	// BrokerBytes bounds the in-memory sequence map (default 1 MiB).
	BrokerBytes int
	// Tracer receives XLOG-tier spans (nil = tracing off).
	Tracer *obs.Tracer
	// Metrics receives XLOG-tier instruments (nil = metrics off).
	Metrics *obs.Registry
	// Watermarks receives the promotion/destaging/archive/truncation rungs
	// of the LSN ladder (nil = watermarks off).
	Watermarks *obs.WatermarkSet
	// Flight receives XLOG-tier flight-recorder events: gap fills, destage
	// batches, LT append failures (nil = recording off).
	Flight *obs.FlightRecorder
	// Waits receives wait-event accounting (xlog.feed for callers blocked
	// on destage progress; also wired into the LZ for backpressure). Nil
	// disables recording.
	Waits *obs.WaitRecorder
}

// New starts an XLOG service over a fresh log.
func New(cfg Config) (*Service, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	s.promoted = cfg.LZ.HardenedEnd()
	s.destaged = s.promoted
	s.start()
	return s, nil
}

// Recover starts an XLOG service over existing LZ and LT state (process
// restart): the LT index is rebuilt by scanning the archive blob, and
// promotion resumes from the destaged watermark.
func Recover(cfg Config) (*Service, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.lt.recover(); err != nil {
		return nil, err
	}
	s.destaged = s.lt.end()
	if s.destaged == 0 {
		s.destaged = 1
	}
	s.promoted = s.destaged
	s.maxCommitTS = s.lt.maxCommitTS()
	// Re-promote anything hardened in the LZ but not yet destaged.
	s.promoteTo(s.lz.HardenedEnd())
	s.start()
	return s, nil
}

func build(cfg Config) (*Service, error) {
	if cfg.LZ == nil || cfg.LT == nil || cfg.LTBlob == "" {
		return nil, errors.New("xlog: LZ, LT, and LTBlob are required")
	}
	if cfg.BrokerBytes <= 0 {
		cfg.BrokerBytes = 1 << 20
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 4 << 20
	}
	s := &Service{
		lz:          cfg.LZ,
		tracer:      cfg.Tracer,
		metrics:     cfg.Metrics,
		wms:         cfg.Watermarks,
		flight:      cfg.Flight,
		waits:       cfg.Waits,
		lt:          &lt{store: cfg.LT, blob: cfg.LTBlob},
		pending:     make(map[page.LSN]entry),
		budget:      cfg.BrokerBytes,
		consumers:   make(map[string]*consumer),
		destageKick: make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	s.destagedCond = sync.NewCond(&s.mu)
	if cfg.CacheDevice != nil {
		s.ssd = newBlockCache(cfg.CacheDevice, cfg.CacheBytes)
	}
	return s, nil
}

func (s *Service) start() {
	s.wg.Add(1)
	go s.destageLoop()
}

// Close stops the destager after a final pass. Idempotent.
func (s *Service) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	s.wg.Wait()
}

// --- ingest side ---

// Feed receives one block from the lossy primary feed into the pending
// area. Blocks below the promoted watermark are stale duplicates. The
// encoded form is retained alongside so dissemination never re-encodes;
// pass nil to have it computed. The context carries the originating
// commit's span identity when the block arrived over RBIO v2.
func (s *Service) Feed(ctx context.Context, b *wal.Block) { s.FeedEncoded(ctx, b, nil) }

// FeedEncoded is Feed with the block's already-encoded bytes. It accepts
// the block as the current producer's (direct in-process callers are by
// definition the live producer); the RBIO handler instead routes through
// FeedEncodedFrom with the epoch stamped on the frame.
func (s *Service) FeedEncoded(ctx context.Context, b *wal.Block, enc []byte) {
	s.mu.Lock()
	epoch := s.producerEpoch
	s.mu.Unlock()
	s.FeedEncodedFrom(ctx, epoch, b, enc)
}

// FeedEncodedFrom ingests a fed block from the producer identified by
// epoch. Blocks from a superseded producer are dropped: their LSNs may
// have been reissued by the current primary, and promoting a dead
// producer's speculative bytes would disseminate transactions that are
// not in the durable log (the feed is only a hint; the LZ is the truth).
func (s *Service) FeedEncodedFrom(ctx context.Context, epoch uint64, b *wal.Block, enc []byte) {
	_, sp := s.tracer.JoinSpan(ctx, obs.TierXLOG, "xlog.feed")
	defer sp.End()
	if enc == nil {
		enc = b.Encode()
	}
	s.mu.Lock()
	s.feedReceived++
	s.metrics.Counter("xlog.feed.blocks").Inc()
	if epoch != s.producerEpoch {
		s.feedWrongEpoch++
		s.metrics.Counter("xlog.feed.wrong_epoch").Inc()
		s.mu.Unlock()
		sp.SetAttr("wrong_epoch", "true")
		return
	}
	if b.End.AtMost(s.promoted) {
		s.feedStale++
		s.metrics.Counter("xlog.feed.stale").Inc()
		s.mu.Unlock()
		sp.SetAttr("stale", "true")
		return
	}
	s.pending[b.Start] = entry{b: b, enc: enc}
	s.mu.Unlock()
}

// Epoch reports the currently accepted producer epoch.
func (s *Service) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.producerEpoch
}

// BeginEpoch installs a new log producer: the dead producer's speculative
// tail (pending blocks beyond the promoted watermark) is purged, the
// accepted feed epoch advances so the old producer's in-flight feeds are
// rejected on arrival, and the promotion watermark is synchronously
// gap-filled to hardenedEnd from the LZ. Returns the new epoch, which the
// replacement primary must stamp on its feeds. This is the failover
// handshake that makes LSN reuse across primaries safe.
func (s *Service) BeginEpoch(ctx context.Context, hardenedEnd page.LSN) uint64 {
	s.mu.Lock()
	s.producerEpoch++
	epoch := s.producerEpoch
	purged := 0
	for start, e := range s.pending {
		if e.b.End.After(s.promoted) {
			delete(s.pending, start)
			purged++
		}
	}
	s.mu.Unlock()
	s.flight.Record(obs.TierXLOG, "xlog.epoch", uint64(hardenedEnd), 0,
		fmt.Sprintf("producer epoch %d; purged %d speculative pending blocks", epoch, purged))
	s.ReportHardened(ctx, hardenedEnd)
	return epoch
}

// ReportHardened tells the service every block with End <= lsn is durable
// in the LZ; they become visible to consumers (promotion).
func (s *Service) ReportHardened(ctx context.Context, lsn page.LSN) {
	_, sp := s.tracer.JoinSpan(ctx, obs.TierXLOG, "xlog.promote")
	start := time.Now()
	s.promoteTo(lsn)
	s.metrics.Histogram("xlog.promote.latency").Since(start)
	sp.End()
	select {
	case s.destageKick <- struct{}{}:
	default:
	}
}

// promoteTo moves hardened blocks from the pending area into the broker in
// LSN order, reading the LZ to fill gaps left by the lossy feed.
func (s *Service) promoteTo(lsn page.LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.promoted.Before(lsn) {
		e, ok := s.pending[s.promoted]
		if !ok {
			// Gap: the feed lost or reordered this block; the LZ has it.
			// Snapshot the watermark before dropping the lock for the LZ
			// read — harden reports arrive concurrently (one per
			// in-flight LZ write), so another promoteTo may run while we
			// are off the lock.
			at := s.promoted
			s.mu.Unlock()
			lb, found, err := s.lz.Read(at)
			s.mu.Lock()
			if err != nil || !found {
				return // cannot promote past the gap yet
			}
			if s.promoted != at {
				// A concurrent report already promoted this block (or
				// past it) while we read the LZ; appending our copy would
				// duplicate it in the broker. Rescan from the new
				// watermark.
				continue
			}
			s.gapFills++
			s.flight.Record(obs.TierXLOG, "xlog.gapfill", uint64(at), 0,
				"feed lost block; filled from LZ")
			e = entry{b: lb, enc: lb.Encode()}
		} else {
			delete(s.pending, s.promoted)
		}
		if e.b.End.After(lsn) {
			// Hardened watermark splits this block (should not happen:
			// hardening is per block) — wait for the next report.
			s.pending[e.b.Start] = e
			return
		}
		s.broker = append(s.broker, e)
		s.brokerBytes += len(e.enc)
		s.promoted = e.b.End
		for _, rec := range e.b.Records {
			if rec.Kind == wal.KindTxnCommit {
				if ts := rec.CommitTS(); ts > s.maxCommitTS {
					s.maxCommitTS = ts
				}
			}
		}
	}
	// Drop stale pending blocks the promotion passed over.
	for start, e := range s.pending {
		if e.b.End.AtMost(s.promoted) {
			delete(s.pending, start)
		}
	}
	s.wms.Watermark(obs.WMPromoted, "").Publish(uint64(s.promoted))
}

// --- destaging pipeline ---

func (s *Service) destageLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		//socrates:wait-ok idle destager waiting for its cadence tick or a kick; not a stall
		select {
		case <-s.done:
			s.destageOnce() // final drain
			return
		case <-s.destageKick:
		case <-ticker.C:
		}
		s.destageOnce()
	}
}

// destageOnce writes every promoted-but-not-destaged block to the SSD cache
// and LT (one aggregated LT append), releases LZ space, and trims the
// broker to its memory budget.
func (s *Service) destageOnce() {
	s.mu.Lock()
	var batch []entry
	for _, e := range s.broker {
		if e.b.Start.AtLeast(s.destaged) {
			batch = append(batch, e)
		}
	}
	s.mu.Unlock()
	if len(batch) == 0 {
		s.trimBroker()
		return
	}
	destageStart := time.Now()
	var ltBuf []byte
	blocks := make([]*wal.Block, 0, len(batch))
	for _, e := range batch {
		if s.ssd != nil {
			s.ssd.put(e.b.Start, e.enc)
		}
		ltBuf = append(ltBuf, e.enc...)
		blocks = append(blocks, e.b)
	}
	if err := s.lt.append(blocks, ltBuf); err != nil {
		// LT (XStore) outage: keep blocks in LZ + broker; retry next tick.
		s.flight.Record(obs.TierXStore, "lt.append_error",
			uint64(batch[0].b.Start), time.Since(destageStart),
			"retryable: "+err.Error())
		return
	}
	end := batch[len(batch)-1].b.End
	s.mu.Lock()
	if end.After(s.destaged) {
		s.destaged = end
		s.destagedCond.Broadcast()
	}
	s.mu.Unlock()
	s.wms.Watermark(obs.WMDestaged, "").Publish(uint64(end))
	s.wms.Watermark(obs.WMArchived, "").Publish(uint64(end))
	s.lz.ReleaseUpTo(end)
	s.wms.Watermark(obs.WMTruncated, "").Publish(uint64(end))
	s.trimBroker()
	s.metrics.Histogram("xlog.destage.latency").Since(destageStart)
	s.metrics.Counter("xlog.destage.blocks").Add(uint64(len(batch)))
	s.flight.Record(obs.TierXLOG, "xlog.destage", uint64(end),
		time.Since(destageStart), fmt.Sprintf("blocks=%d bytes=%d", len(batch), len(ltBuf)))
}

// trimBroker evicts destaged blocks from the front of the sequence map
// until it fits the memory budget.
func (s *Service) trimBroker() {
	s.mu.Lock()
	for s.brokerBytes > s.budget && len(s.broker) > 0 {
		e := s.broker[0]
		if e.b.End.After(s.destaged) {
			break // never evict blocks that exist nowhere else
		}
		s.broker = s.broker[1:]
		s.brokerBytes -= len(e.enc)
	}
	s.mu.Unlock()
}

// --- consumer side ---

// HardenedEnd reports the dissemination watermark: consumers may read up to
// (not including) this LSN.
func (s *Service) HardenedEnd() page.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Pull returns encoded blocks starting exactly at fromLSN, at most
// maxBytes' worth, filtered to the given partition (negative = all blocks,
// used by secondaries). Filtered-out blocks are skipped but still advance
// the returned next-pull LSN, which is the XLOG-side half of the §4.6
// block-filtering optimization. The returned next LSN equals fromLSN when
// nothing new is available.
func (s *Service) Pull(ctx context.Context, fromLSN page.LSN, partition int32, maxBytes int) ([]byte, page.LSN, error) {
	// Pulls are polled continuously by every consumer; JoinSpan records a
	// span only when the caller is already traced, so the steady-state poll
	// loop never roots traces (the histogram always counts).
	_, sp := s.tracer.JoinSpan(ctx, obs.TierXLOG, "xlog.pull")
	defer sp.End()
	start := time.Now()
	defer s.metrics.Histogram("xlog.pull.latency").Since(start)
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	var out []byte
	next := fromLSN
	for len(out) < maxBytes {
		s.mu.Lock()
		promoted := s.promoted
		s.mu.Unlock()
		if next.AtLeast(promoted) {
			break
		}
		e, err := s.lookup(next)
		if err != nil {
			return nil, fromLSN, err
		}
		if e.b == nil {
			break // gap not yet resolvable
		}
		if partition < 0 || e.b.Touches(page.PartitionID(partition)) {
			out = append(out, e.enc...)
		}
		next = e.b.End
	}
	return out, next, nil
}

// lookup finds the block starting at the LSN across the storage hierarchy:
// sequence map → SSD cache → LZ → LT.
func (s *Service) lookup(start page.LSN) (entry, error) {
	s.mu.Lock()
	i := sort.Search(len(s.broker), func(i int) bool { return s.broker[i].b.Start.AtLeast(start) })
	if i < len(s.broker) && s.broker[i].b.Start == start {
		e := s.broker[i]
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	if s.ssd != nil {
		if enc, ok := s.ssd.get(start); ok {
			b, _, err := wal.DecodeBlock(enc)
			if err == nil {
				return entry{b: b, enc: enc}, nil
			}
		}
	}
	b, found, err := s.lz.Read(start)
	if err == nil && found {
		return entry{b: b, enc: b.Encode()}, nil
	}
	lb, err := s.lt.read(start)
	if err != nil || lb == nil {
		return entry{}, err
	}
	return entry{b: lb, enc: lb.Encode()}, nil
}

// RegisterConsumer creates or refreshes a consumer lease.
func (s *Service) RegisterConsumer(id string) {
	s.mu.Lock()
	if c, ok := s.consumers[id]; ok {
		c.lastSeen = time.Now()
	} else {
		s.consumers[id] = &consumer{lastSeen: time.Now()}
	}
	s.mu.Unlock()
}

// ReportApplied records consumer progress and refreshes its lease.
func (s *Service) ReportApplied(id string, lsn page.LSN) {
	s.mu.Lock()
	c, ok := s.consumers[id]
	if !ok {
		c = &consumer{}
		s.consumers[id] = c
	}
	if lsn.After(c.applied) {
		c.applied = lsn
	}
	c.lastSeen = time.Now()
	s.mu.Unlock()
}

// ExpireLeases drops consumers silent for longer than ttl and returns how
// many were dropped.
func (s *Service) ExpireLeases(ttl time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	cutoff := time.Now().Add(-ttl)
	for id, c := range s.consumers {
		if c.lastSeen.Before(cutoff) {
			delete(s.consumers, id)
			dropped++
		}
	}
	return dropped
}

// ConsumerProgress reports a consumer's applied LSN.
func (s *Service) ConsumerProgress(id string) (page.LSN, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.consumers[id]
	if !ok {
		return 0, false
	}
	return c.applied, true
}

// MinAppliedLSN reports the slowest live consumer's progress (drives
// version-store truncation and LT cleanup decisions).
func (s *Service) MinAppliedLSN() page.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min page.LSN
	first := true
	for _, c := range s.consumers {
		if first || c.applied.Before(min) {
			min, first = c.applied, false
		}
	}
	return min
}

// FeedWrongEpoch reports how many fed blocks were dropped because they
// came from a superseded producer (see BeginEpoch).
func (s *Service) FeedWrongEpoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feedWrongEpoch
}

// Stats reports feed/dissemination counters: feed blocks received, stale
// feed blocks dropped, and gaps filled from the LZ.
func (s *Service) Stats() (received, stale, gapFills int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feedReceived, s.feedStale, s.gapFills
}

// MaxCommitTS reports the highest commit timestamp observed in promoted
// log — a recovering primary republishes it to restore visibility (§5).
func (s *Service) MaxCommitTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxCommitTS
}

// DestagedEnd reports the destaging watermark.
func (s *Service) DestagedEnd() page.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.destaged
}

// WaitDestaged blocks until destaging reaches lsn or the timeout elapses.
// It waits on the destage condition variable rather than polling: every
// watermark advance broadcasts, and a timer wakes the wait at the deadline.
func (s *Service) WaitDestaged(lsn page.LSN, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	waker := time.AfterFunc(timeout, s.destagedCond.Broadcast)
	defer waker.Stop()
	// xlog.feed: the caller is blocked behind the destaging pipeline
	// (log produced but not yet drained to SSD/LT). Aggregate-only —
	// WaitDestaged has no request context.
	region := s.waits.Begin(nil, obs.WaitXLOGFeed)
	waited := false
	defer func() { region.EndIf(waited) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.destaged.Before(lsn) {
		if !time.Now().Before(deadline) {
			return socerr.Timeoutf("xlog: destaging did not reach %d (at %d)", lsn, s.destaged)
		}
		waited = true
		s.destagedCond.Wait()
	}
	return nil
}

// Handler exposes the service over RBIO. The transport hands it a context
// carrying the span identity decoded from the frame header, so XLOG-tier
// spans join the caller’s commit or catch-up trace.
func (s *Service) Handler() rbio.Handler {
	return func(ctx context.Context, req *rbio.Request) *rbio.Response {
		switch req.Type {
		case rbio.MsgPing:
			return rbio.Ok()
		case rbio.MsgFeedBlock:
			b, _, err := wal.DecodeBlock(req.Payload)
			if err != nil {
				return rbio.Errorf("bad feed block: %v", err)
			}
			// The Consumer field carries the producer epoch on feed
			// frames ("" = epoch 0, the bootstrap producer).
			epoch, _ := strconv.ParseUint(req.Consumer, 10, 64)
			s.FeedEncodedFrom(ctx, epoch, b, req.Payload)
			return rbio.Ok()
		case rbio.MsgHardenReport:
			s.ReportHardened(ctx, req.LSN)
			return rbio.Ok()
		case rbio.MsgPullBlocks:
			if req.Consumer != "" {
				s.RegisterConsumer(req.Consumer)
			}
			payload, next, err := s.Pull(ctx, req.LSN, req.Partition, int(req.MaxBytes))
			if err != nil {
				return rbio.Errorf("pull: %v", err)
			}
			resp := rbio.Ok()
			resp.LSN = next
			resp.Payload = payload
			return resp
		case rbio.MsgReportApplied:
			s.ReportApplied(req.Consumer, req.LSN)
			return rbio.Ok()
		case rbio.MsgReadState:
			resp := rbio.Ok()
			resp.LSN = s.HardenedEnd()
			var buf [16]byte
			binary.LittleEndian.PutUint64(buf[0:8], s.DestagedEnd().Uint64())
			binary.LittleEndian.PutUint64(buf[8:16], s.MaxCommitTS())
			resp.Payload = buf[:]
			return resp
		default:
			return rbio.Errorf("xlog: unsupported message %v", req.Type)
		}
	}
}
