// Package xlog implements the XLOG service (§4.3): the tier that owns log
// durability and dissemination in Socrates. It contains the landing zone
// (the fast, small, durable circular buffer the primary commits into), the
// pending area and LogBroker that disseminate hardened blocks to consumers,
// and the destaging pipeline into the local SSD block cache and the
// long-term archive (LT) in XStore.
package xlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
)

// ErrLZTimeout reports a landing-zone write that waited too long for
// destaging to free space (the §4.3 stall: "Socrates cannot process any
// update transactions once the LZ is full").
var ErrLZTimeout = errors.New("xlog: landing zone full (destaging stalled)")

const (
	lzHeaderSize = 64 // persisted ring header at offset 0
	lzDataStart  = int64(lzHeaderSize)
	entryMagic   = 0xE57A110C
	wrapMagic    = 0x77A9E0F1
	lzHdrMagic   = 0x1A4D107E

	// persistEvery bounds how stale the persisted ring header may get; the
	// scan on recovery covers at most this many entries past the header.
	persistEvery = 64
)

// LandingZone is the circular durable log buffer. The primary writes blocks
// synchronously (quorum on the underlying replicated volume); the XLOG
// process reads blocks to fill feed gaps; destaging releases space.
//
// The on-volume format is a sequential ring of entries
// [magic u32 | len u32 | encoded block], with a wrap marker where the ring
// returns to the start, and a small persisted header so a restarted process
// can rebuild its index by scanning — the "concurrent log readers without
// synchronization" property of §4.3.
type LandingZone struct {
	vol      simdisk.Volume
	capacity int64

	mu        sync.Mutex
	cond      *sync.Cond
	index     map[page.LSN]lzExtent // block start LSN → location
	order     []page.LSN            // starts in LSN order (ring occupancy)
	head      int64                 // next write offset
	tail      int64                 // oldest retained offset
	tailLSN   page.LSN              // start LSN of oldest retained block
	hardened  page.LSN              // end LSN of the durable *prefix*
	completed map[page.LSN]page.LSN // out-of-order completions: start → end
	writes    int
	stalls    int

	waits *obs.WaitRecorder // ring-full stalls land under backpressure
}

// SetWaits wires wait-event accounting: a writer stalled on a full ring
// (waiting for destaging to free space) records under backpressure.
func (lz *LandingZone) SetWaits(wr *obs.WaitRecorder) { lz.waits = wr }

type lzExtent struct {
	off int64
	len int64
	end page.LSN
}

// NewLandingZone formats a fresh landing zone of the given capacity.
func NewLandingZone(vol simdisk.Volume, capacity int64) (*LandingZone, error) {
	if capacity < lzDataStart+4096 {
		return nil, fmt.Errorf("xlog: landing zone capacity %d too small", capacity)
	}
	lz := &LandingZone{
		vol: vol, capacity: capacity,
		index:     make(map[page.LSN]lzExtent),
		completed: make(map[page.LSN]page.LSN),
		head:      lzDataStart, tail: lzDataStart, tailLSN: 1, hardened: 1,
	}
	lz.cond = sync.NewCond(&lz.mu)
	if err := lz.persistHeader(); err != nil {
		return nil, err
	}
	return lz, nil
}

// header layout: magic u32 | tailOff i64 | tailLSN u64 | capacity i64
func (lz *LandingZone) persistHeader() error {
	buf := make([]byte, lzHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:4], lzHdrMagic)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(lz.tail))
	binary.LittleEndian.PutUint64(buf[12:20], lz.tailLSN.Uint64())
	binary.LittleEndian.PutUint64(buf[20:28], uint64(lz.capacity))
	return lz.vol.WriteAt(buf, 0)
}

// RecoverLandingZone rebuilds a landing zone's index by scanning the ring
// from the persisted tail until the write frontier (detected by a decode
// failure or an LSN discontinuity). This is how a restarted primary learns
// the hardened end of the log.
func RecoverLandingZone(vol simdisk.Volume, capacity int64) (*LandingZone, error) {
	head := make([]byte, lzHeaderSize)
	if err := vol.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("xlog: reading LZ header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != lzHdrMagic {
		return nil, errors.New("xlog: volume is not a landing zone")
	}
	lz := &LandingZone{
		vol: vol, capacity: capacity,
		index:     make(map[page.LSN]lzExtent),
		completed: make(map[page.LSN]page.LSN),
	}
	lz.cond = sync.NewCond(&lz.mu)
	lz.tail = int64(binary.LittleEndian.Uint64(head[4:12]))
	lz.tailLSN = page.LSN(binary.LittleEndian.Uint64(head[12:20]))
	lz.head = lz.tail
	lz.hardened = lz.tailLSN

	off := lz.tail
	expect := page.LSN(0) // first block's start unconstrained beyond >= tailLSN
	for {
		hdr := make([]byte, 8)
		if off+8 > lz.capacity {
			off = lzDataStart
		}
		if err := vol.ReadAt(hdr, off); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		if magic == wrapMagic {
			off = lzDataStart
			continue
		}
		if magic != entryMagic {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if n <= 0 || off+8+n > lz.capacity {
			break
		}
		body := make([]byte, n)
		if err := vol.ReadAt(body, off+8); err != nil {
			break
		}
		b, consumed, err := wal.DecodeBlock(body)
		if err != nil || int64(consumed) != n {
			break
		}
		if expect != 0 && b.Start != expect {
			break // stale pre-wrap entry: we hit the frontier
		}
		if b.Start.Before(lz.tailLSN) {
			break
		}
		lz.index[b.Start] = lzExtent{off: off, len: 8 + n, end: b.End}
		lz.order = append(lz.order, b.Start)
		lz.hardened = b.End
		expect = b.End
		off += 8 + n
		lz.head = off
	}
	return lz, nil
}

// Reservation is ring space allocated for one block: Reserve in LSN order,
// then Complete (possibly concurrently) to perform the durable write. The
// split lets the log writer keep several quorum writes in flight — the
// source of Socrates' log throughput (Table 5) — while the ring layout and
// the hardened watermark stay in LSN order.
type Reservation struct {
	off     int64
	need    int64
	start   page.LSN
	end     page.LSN
	payload []byte
}

// Payload exposes the block's encoded bytes so callers (the lossy XLOG
// feed) can reuse them instead of re-encoding.
func (r *Reservation) Payload() []byte { return r.payload }

// Reserve allocates ring space for the block, waiting (bounded) for
// destaging when the ring is full. Callers must Reserve in LSN order.
func (lz *LandingZone) Reserve(b *wal.Block) (*Reservation, error) {
	payload := b.Encode()
	need := int64(len(payload)) + 8

	lz.mu.Lock()
	deadline := time.Now().Add(5 * time.Second)
	if lz.freeLocked() < need+8 {
		// backpressure: the ring is full and the producer stalls until
		// destaging frees space. Aggregate-only — Reserve runs on the
		// flusher goroutine, off any request context.
		stallStart := time.Now()
		for lz.freeLocked() < need+8 { // +8 for a potential wrap marker
			lz.stalls++
			wait := time.Until(deadline)
			if wait <= 0 {
				lz.mu.Unlock()
				lz.waits.Observe(nil, obs.WaitBackpressure, time.Since(stallStart))
				return nil, ErrLZTimeout
			}
			// Poll: destaging releases space via ReleaseUpTo which broadcasts.
			lz.waitWithTimeout(10 * time.Millisecond)
		}
		lz.waits.Observe(nil, obs.WaitBackpressure, time.Since(stallStart))
	}
	// Wrap if the entry does not fit before the end of the volume.
	if lz.head+need > lz.capacity {
		marker := make([]byte, 8)
		binary.LittleEndian.PutUint32(marker[0:4], wrapMagic)
		off := lz.head
		lz.mu.Unlock()
		if err := lz.vol.WriteAt(marker, off); err != nil {
			return nil, err
		}
		lz.mu.Lock()
		lz.head = lzDataStart
		if err := lz.persistHeader(); err != nil {
			lz.mu.Unlock()
			return nil, err
		}
	}
	off := lz.head
	lz.head += need
	lz.writes++
	lz.order = append(lz.order, b.Start)
	lz.mu.Unlock()
	return &Reservation{off: off, need: need, start: b.Start, end: b.End,
		payload: payload}, nil
}

// Complete performs the reservation's durable (quorum) write and advances
// the hardened prefix. Safe to call concurrently for different
// reservations.
func (lz *LandingZone) Complete(r *Reservation) error {
	entry := make([]byte, 8+len(r.payload))
	binary.LittleEndian.PutUint32(entry[0:4], entryMagic)
	binary.LittleEndian.PutUint32(entry[4:8], uint32(len(r.payload)))
	copy(entry[8:], r.payload)
	if err := lz.vol.WriteAt(entry, r.off); err != nil {
		return err
	}

	lz.mu.Lock()
	lz.index[r.start] = lzExtent{off: r.off, len: r.need, end: r.end}
	// Hardening is a *prefix* property: with concurrent in-flight writes,
	// a block is only considered hardened once every earlier block is
	// durable too — a commit may not be acknowledged over a hole.
	lz.completed[r.start] = r.end
	for {
		end, ok := lz.completed[lz.hardened]
		if !ok {
			break
		}
		delete(lz.completed, lz.hardened)
		lz.hardened = end
	}
	var persistErr error
	if lz.writes%persistEvery == 0 {
		persistErr = lz.persistHeader()
	}
	lz.mu.Unlock()
	return persistErr
}

// Write durably appends the block (Reserve + Complete). On return the block
// and every block before it are hardened.
func (lz *LandingZone) Write(b *wal.Block) error {
	r, err := lz.Reserve(b)
	if err != nil {
		return err
	}
	return lz.Complete(r)
}

// waitWithTimeout waits on the condition variable with a cap, so a stalled
// destager cannot deadlock writers forever. Caller holds lz.mu.
func (lz *LandingZone) waitWithTimeout(d time.Duration) {
	done := make(chan struct{})
	go func() {
		//socrates:wait-ok waker goroutine for the bounded cond wait below, not itself a stall
		select {
		case <-done:
		case <-time.After(d):
			lz.cond.Broadcast()
		}
	}()
	//socrates:wait-ok the ring-full stall is recorded as backpressure by Reserve, which brackets this poll loop with a running total
	lz.cond.Wait()
	close(done)
}

// freeLocked computes free ring bytes. Caller holds lz.mu.
func (lz *LandingZone) freeLocked() int64 {
	if lz.head >= lz.tail {
		// Free space is the gap after head to capacity plus before tail,
		// but a single entry must fit contiguously before capacity or
		// entirely at the start.
		tailGap := lz.tail - lzDataStart
		headGap := lz.capacity - lz.head
		if headGap > tailGap {
			return headGap
		}
		return tailGap
	}
	return lz.tail - lz.head
}

// Read returns the block starting exactly at the given LSN, if retained.
func (lz *LandingZone) Read(start page.LSN) (*wal.Block, bool, error) {
	lz.mu.Lock()
	ext, ok := lz.index[start]
	lz.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, ext.len)
	if err := lz.vol.ReadAt(buf, ext.off); err != nil {
		return nil, false, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != entryMagic {
		return nil, false, fmt.Errorf("xlog: LZ entry at %d corrupted", ext.off)
	}
	b, _, err := wal.DecodeBlock(buf[8:])
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// HardenedEnd reports the end LSN of the hardened log: every record below
// it is durable.
func (lz *LandingZone) HardenedEnd() page.LSN {
	lz.mu.Lock()
	defer lz.mu.Unlock()
	return lz.hardened
}

// ReleaseUpTo frees ring space for all blocks whose End is at or below lsn
// (they have been destaged to the SSD cache and LT). Space is reclaimed in
// LSN order.
func (lz *LandingZone) ReleaseUpTo(lsn page.LSN) {
	lz.mu.Lock()
	released := false
	for len(lz.order) > 0 {
		start := lz.order[0]
		ext, done := lz.index[start]
		if !done || ext.end.After(lsn) {
			break // reserved-but-unwritten space is never released
		}
		delete(lz.index, start)
		lz.order = lz.order[1:]
		lz.tail = ext.off + ext.len
		if lz.tail >= lz.capacity {
			lz.tail = lzDataStart
		}
		lz.tailLSN = ext.end
		released = true
	}
	if len(lz.order) == 0 {
		// Ring empty: reset to a clean state to maximize contiguous space.
		lz.tail = lz.head
	}
	if released {
		lz.cond.Broadcast()
	}
	lz.mu.Unlock()
}

// Stalls reports how many times writers waited for space (backpressure).
func (lz *LandingZone) Stalls() int {
	lz.mu.Lock()
	defer lz.mu.Unlock()
	return lz.stalls
}

// Retained reports the number of blocks currently held in the ring.
func (lz *LandingZone) Retained() int {
	lz.mu.Lock()
	defer lz.mu.Unlock()
	return len(lz.order)
}
