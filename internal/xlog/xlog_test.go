package xlog

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// mkBlocks builds n contiguous blocks starting at LSN 1, each with one
// cell-put record on the given page (so partition annotations are real).
func mkBlocks(n int, pageOf func(i int) page.ID, pt page.Partitioning) []*wal.Block {
	bld := wal.NewBuilder(1, pt)
	var blocks []*wal.Block
	for i := 0; i < n; i++ {
		bld.Append(&wal.Record{
			Kind: wal.KindCellPut, Page: pageOf(i),
			Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v"),
		})
		blocks = append(blocks, bld.Flush())
	}
	return blocks
}

func newLZ(t *testing.T, capacity int64) (*LandingZone, simdisk.Volume) {
	t.Helper()
	vol := simdisk.New(simdisk.Instant)
	lz, err := NewLandingZone(vol, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return lz, vol
}

func TestLZWriteReadRoundTrip(t *testing.T) {
	lz, _ := newLZ(t, 1<<20)
	blocks := mkBlocks(5, func(i int) page.ID { return page.ID(i) }, page.Partitioning{})
	for _, b := range blocks {
		if err := lz.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if lz.HardenedEnd() != blocks[4].End {
		t.Fatalf("hardened = %d, want %d", lz.HardenedEnd(), blocks[4].End)
	}
	got, found, err := lz.Read(blocks[2].Start)
	if err != nil || !found {
		t.Fatalf("read: %v %v", found, err)
	}
	if got.Start != blocks[2].Start || len(got.Records) != 1 {
		t.Fatalf("got %+v", got)
	}
	if _, found, _ := lz.Read(9999); found {
		t.Fatal("phantom block")
	}
}

func TestLZReleaseFreesSpace(t *testing.T) {
	lz, _ := newLZ(t, 1<<20)
	blocks := mkBlocks(10, func(i int) page.ID { return 1 }, page.Partitioning{})
	for _, b := range blocks {
		_ = lz.Write(b)
	}
	if lz.Retained() != 10 {
		t.Fatalf("retained = %d", lz.Retained())
	}
	lz.ReleaseUpTo(blocks[4].End)
	if lz.Retained() != 5 {
		t.Fatalf("retained after release = %d", lz.Retained())
	}
	if _, found, _ := lz.Read(blocks[2].Start); found {
		t.Fatal("released block still readable")
	}
	if _, found, _ := lz.Read(blocks[7].Start); !found {
		t.Fatal("retained block vanished")
	}
}

func TestLZBackpressureTimesOut(t *testing.T) {
	lz, _ := newLZ(t, lzDataStart+4096)
	bld := wal.NewBuilder(1, page.Partitioning{})
	start := time.Now()
	var err error
	for i := 0; i < 100; i++ {
		bld.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1,
			Key: []byte("k"), Value: make([]byte, 256)})
		if err = lz.Write(bld.Flush()); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrLZTimeout) {
		t.Fatalf("err = %v, want ErrLZTimeout", err)
	}
	if time.Since(start) < 4*time.Second {
		t.Fatal("timed out too fast (no backpressure wait)")
	}
	if lz.Stalls() == 0 {
		t.Fatal("no stalls recorded")
	}
}

func TestLZWraparound(t *testing.T) {
	// Small ring; continuous release keeps space available across wraps.
	lz, _ := newLZ(t, lzDataStart+8192)
	bld := wal.NewBuilder(1, page.Partitioning{})
	var last *wal.Block
	for i := 0; i < 100; i++ {
		bld.Append(&wal.Record{Kind: wal.KindCellPut, Page: 1,
			Key: []byte(fmt.Sprintf("k%03d", i)), Value: make([]byte, 300)})
		b := bld.Flush()
		if err := lz.Write(b); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		last = b
		// Destage promptly: keep only the most recent couple of blocks.
		if b.End > 3 {
			lz.ReleaseUpTo(b.End - 2)
		}
	}
	got, found, err := lz.Read(last.Start)
	if err != nil || !found || got.End != last.End {
		t.Fatalf("after wraps: %v %v", found, err)
	}
	if lz.HardenedEnd() != last.End {
		t.Fatalf("hardened = %d", lz.HardenedEnd())
	}
}

func TestLZRecoveryFindsHardenedEnd(t *testing.T) {
	vol := simdisk.New(simdisk.Instant)
	lz, err := NewLandingZone(vol, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	blocks := mkBlocks(20, func(i int) page.ID { return page.ID(i % 3) },
		page.Partitioning{PagesPerPartition: 1})
	for _, b := range blocks {
		if err := lz.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	want := lz.HardenedEnd()

	re, err := RecoverLandingZone(vol, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if re.HardenedEnd() != want {
		t.Fatalf("recovered hardened = %d, want %d", re.HardenedEnd(), want)
	}
	got, found, err := re.Read(blocks[10].Start)
	if err != nil || !found || got.End != blocks[10].End {
		t.Fatalf("recovered read: %v %v", found, err)
	}
	// Writes continue after recovery.
	bld := wal.NewBuilder(want, page.Partitioning{})
	bld.Append(&wal.Record{Kind: wal.KindNoop})
	if err := re.Write(bld.Flush()); err != nil {
		t.Fatal(err)
	}
}

func TestLZRecoveryRejectsForeignVolume(t *testing.T) {
	vol := simdisk.New(simdisk.Instant)
	_ = vol.WriteAt(make([]byte, 128), 0)
	if _, err := RecoverLandingZone(vol, 1<<20); err == nil {
		t.Fatal("foreign volume accepted")
	}
}

// --- service tests ---

type testRig struct {
	lz  *LandingZone
	svc *Service
	st  *xstore.Store
}

func newRig(t *testing.T, brokerBytes int) *testRig {
	t.Helper()
	lz, _ := newLZ(t, 4<<20)
	st := xstore.New(xstore.Config{Profile: simdisk.Instant})
	svc, err := New(Config{
		LZ: lz, LT: st, LTBlob: "lt/db1",
		CacheDevice: simdisk.New(simdisk.Instant),
		CacheBytes:  64 << 10,
		BrokerBytes: brokerBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return &testRig{lz: lz, svc: svc, st: st}
}

// publish pushes blocks through the full primary-side path: LZ write, feed,
// harden report.
func (r *testRig) publish(t *testing.T, blocks []*wal.Block, feed bool) {
	t.Helper()
	for _, b := range blocks {
		if err := r.lz.Write(b); err != nil {
			t.Fatal(err)
		}
		if feed {
			r.svc.Feed(context.Background(), b)
		}
	}
	r.svc.ReportHardened(context.Background(), r.lz.HardenedEnd())
}

func decodeAll(t *testing.T, payload []byte) []*wal.Block {
	t.Helper()
	var out []*wal.Block
	for len(payload) > 0 {
		b, n, err := wal.DecodeBlock(payload)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
		payload = payload[n:]
	}
	return out
}

func TestServeFromSequenceMap(t *testing.T) {
	r := newRig(t, 1<<20)
	blocks := mkBlocks(10, func(i int) page.ID { return page.ID(i) }, page.Partitioning{})
	r.publish(t, blocks, true)

	payload, next, err := r.svc.Pull(context.Background(), 1, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeAll(t, payload)
	if len(got) != 10 || next != blocks[9].End {
		t.Fatalf("pulled %d blocks, next=%d", len(got), next)
	}
	received, stale, gaps := r.svc.Stats()
	if received != 10 || stale != 0 || gaps != 0 {
		t.Fatalf("stats = %d %d %d", received, stale, gaps)
	}
}

func TestSpeculativeBlocksInvisibleUntilHardened(t *testing.T) {
	r := newRig(t, 1<<20)
	blocks := mkBlocks(3, func(i int) page.ID { return 1 }, page.Partitioning{})
	// Feed only: nothing hardened yet.
	for _, b := range blocks {
		r.svc.Feed(context.Background(), b)
	}
	payload, next, err := r.svc.Pull(context.Background(), 1, -1, 0)
	if err != nil || len(payload) != 0 || next != 1 {
		t.Fatalf("unhardened blocks visible: %d bytes, next=%d", len(payload), next)
	}
	// Now harden through the LZ.
	for _, b := range blocks {
		_ = r.lz.Write(b)
	}
	r.svc.ReportHardened(context.Background(), r.lz.HardenedEnd())
	payload, next, _ = r.svc.Pull(context.Background(), 1, -1, 0)
	if len(decodeAll(t, payload)) != 3 || next != blocks[2].End {
		t.Fatal("hardened blocks not served")
	}
}

func TestGapFillFromLZ(t *testing.T) {
	r := newRig(t, 1<<20)
	blocks := mkBlocks(6, func(i int) page.ID { return 1 }, page.Partitioning{})
	for i, b := range blocks {
		_ = r.lz.Write(b)
		if i%2 == 0 { // half the feed messages are lost
			r.svc.Feed(context.Background(), b)
		}
	}
	r.svc.ReportHardened(context.Background(), r.lz.HardenedEnd())
	payload, next, err := r.svc.Pull(context.Background(), 1, -1, 0)
	if err != nil || next != blocks[5].End {
		t.Fatalf("pull after loss: next=%d err=%v", next, err)
	}
	if len(decodeAll(t, payload)) != 6 {
		t.Fatal("missing blocks despite LZ gap fill")
	}
	_, _, gaps := r.svc.Stats()
	if gaps != 3 {
		t.Fatalf("gap fills = %d, want 3", gaps)
	}
}

func TestOutOfOrderFeed(t *testing.T) {
	r := newRig(t, 1<<20)
	blocks := mkBlocks(5, func(i int) page.ID { return 1 }, page.Partitioning{})
	for _, b := range blocks {
		_ = r.lz.Write(b)
	}
	// Feed arrives reversed.
	for i := len(blocks) - 1; i >= 0; i-- {
		r.svc.Feed(context.Background(), blocks[i])
	}
	r.svc.ReportHardened(context.Background(), r.lz.HardenedEnd())
	payload, _, _ := r.svc.Pull(context.Background(), 1, -1, 0)
	got := decodeAll(t, payload)
	if len(got) != 5 {
		t.Fatalf("got %d blocks", len(got))
	}
	for i, b := range got {
		if b.Start != blocks[i].Start {
			t.Fatalf("block %d out of order", i)
		}
	}
}

func TestPartitionFilteredPull(t *testing.T) {
	r := newRig(t, 1<<20)
	pt := page.Partitioning{PagesPerPartition: 10}
	// Even blocks touch partition 0 (pages 0-9), odd touch partition 1.
	blocks := mkBlocks(10, func(i int) page.ID {
		if i%2 == 0 {
			return page.ID(i % 10)
		}
		return page.ID(10 + i%10)
	}, pt)
	r.publish(t, blocks, true)

	payload, next, err := r.svc.Pull(context.Background(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeAll(t, payload)
	if len(got) != 5 {
		t.Fatalf("filtered pull returned %d blocks, want 5", len(got))
	}
	for _, b := range got {
		if !b.Touches(1) {
			t.Fatalf("block [%d,%d) does not touch partition 1", b.Start, b.End)
		}
	}
	// The cursor still advances past skipped blocks.
	if next != blocks[9].End {
		t.Fatalf("next = %d, want %d", next, blocks[9].End)
	}
}

func TestPullBudgetLimitsBatch(t *testing.T) {
	r := newRig(t, 1<<20)
	blocks := mkBlocks(20, func(i int) page.ID { return 1 }, page.Partitioning{})
	r.publish(t, blocks, true)
	oneBlock := blocks[0].EncodedSize()
	payload, next, _ := r.svc.Pull(context.Background(), 1, -1, oneBlock*3)
	got := decodeAll(t, payload)
	if len(got) < 3 || len(got) > 4 {
		t.Fatalf("budgeted pull returned %d blocks", len(got))
	}
	// Follow-up pull continues from next.
	payload2, _, _ := r.svc.Pull(context.Background(), next, -1, 0)
	if len(decodeAll(t, payload2))+len(got) != 20 {
		t.Fatal("continuation lost blocks")
	}
}

func TestDestagingReleasesLZAndServesFromLowerTiers(t *testing.T) {
	// Tiny broker budget forces eviction to SSD cache / LT.
	r := newRig(t, 256)
	blocks := mkBlocks(30, func(i int) page.ID { return 1 }, page.Partitioning{})
	r.publish(t, blocks, true)
	if err := r.svc.WaitDestaged(blocks[29].End, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Give the destager a beat to trim and release.
	time.Sleep(20 * time.Millisecond)
	if r.lz.Retained() != 0 {
		t.Fatalf("LZ retains %d blocks after destaging", r.lz.Retained())
	}
	// All blocks still served (from SSD cache or LT).
	payload, next, err := r.svc.Pull(context.Background(), 1, -1, 1<<20)
	if err != nil || next != blocks[29].End {
		t.Fatalf("pull: next=%d err=%v", next, err)
	}
	if len(decodeAll(t, payload)) != 30 {
		t.Fatal("blocks lost after destaging")
	}
	// And the LT blob physically holds the archive.
	if size, _ := r.st.Size("lt/db1"); size == 0 {
		t.Fatal("LT archive empty")
	}
}

func TestXStoreOutageDefersDestaging(t *testing.T) {
	r := newRig(t, 1<<20)
	r.st.SetOutage(true)
	blocks := mkBlocks(5, func(i int) page.ID { return 1 }, page.Partitioning{})
	r.publish(t, blocks, true)
	time.Sleep(30 * time.Millisecond)
	if r.svc.DestagedEnd() >= blocks[4].End {
		t.Fatal("destaging advanced during XStore outage")
	}
	if r.lz.Retained() != 5 {
		t.Fatal("LZ released blocks that were never archived")
	}
	// Consumers are unaffected: the broker serves everything.
	payload, _, _ := r.svc.Pull(context.Background(), 1, -1, 0)
	if len(decodeAll(t, payload)) != 5 {
		t.Fatal("pull failed during outage")
	}
	r.st.SetOutage(false)
	if err := r.svc.WaitDestaged(blocks[4].End, 2*time.Second); err != nil {
		t.Fatal("destaging did not resume after outage")
	}
}

func TestServiceRecovery(t *testing.T) {
	lz, _ := newLZ(t, 4<<20)
	st := xstore.New(xstore.Config{Profile: simdisk.Instant})
	cfg := Config{LZ: lz, LT: st, LTBlob: "lt/db1",
		CacheDevice: simdisk.New(simdisk.Instant), CacheBytes: 64 << 10}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blocks := mkBlocks(12, func(i int) page.ID { return 1 }, page.Partitioning{})
	for _, b := range blocks {
		_ = lz.Write(b)
		svc.Feed(context.Background(), b)
	}
	svc.ReportHardened(context.Background(), lz.HardenedEnd())
	if err := svc.WaitDestaged(blocks[11].End, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Restart the XLOG process: state rebuilt from LZ + LT.
	cfg.CacheDevice = simdisk.New(simdisk.Instant) // cache is volatile
	re, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.HardenedEnd() != blocks[11].End {
		t.Fatalf("recovered hardened end = %d", re.HardenedEnd())
	}
	payload, next, err := re.Pull(context.Background(), 1, -1, 1<<20)
	if err != nil || next != blocks[11].End {
		t.Fatalf("recovered pull: next=%d err=%v", next, err)
	}
	if len(decodeAll(t, payload)) != 12 {
		t.Fatal("recovered service lost blocks")
	}
}

func TestConsumerProgressAndLeases(t *testing.T) {
	r := newRig(t, 1<<20)
	r.svc.RegisterConsumer("sec-1")
	r.svc.RegisterConsumer("ps-0")
	r.svc.ReportApplied("sec-1", 100)
	r.svc.ReportApplied("ps-0", 50)
	if got, _ := r.svc.ConsumerProgress("sec-1"); got != 100 {
		t.Fatalf("progress = %d", got)
	}
	if r.svc.MinAppliedLSN() != 50 {
		t.Fatalf("min applied = %d", r.svc.MinAppliedLSN())
	}
	// Progress never regresses.
	r.svc.ReportApplied("sec-1", 90)
	if got, _ := r.svc.ConsumerProgress("sec-1"); got != 100 {
		t.Fatal("progress regressed")
	}
	if dropped := r.svc.ExpireLeases(time.Hour); dropped != 0 {
		t.Fatalf("dropped %d live leases", dropped)
	}
	time.Sleep(5 * time.Millisecond)
	if dropped := r.svc.ExpireLeases(time.Nanosecond); dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if _, ok := r.svc.ConsumerProgress("sec-1"); ok {
		t.Fatal("expired consumer still present")
	}
}

func TestStaleFeedDropped(t *testing.T) {
	r := newRig(t, 1<<20)
	blocks := mkBlocks(3, func(i int) page.ID { return 1 }, page.Partitioning{})
	r.publish(t, blocks, true)
	r.svc.Feed(context.Background(), blocks[0]) // duplicate of an already promoted block
	_, stale, _ := r.svc.Stats()
	if stale != 1 {
		t.Fatalf("stale = %d", stale)
	}
}

func TestHandlerOverRBIO(t *testing.T) {
	r := newRig(t, 1<<20)
	net := rbio.NewInstantNetwork()
	net.Serve("xlog", r.svc.Handler())
	client := rbio.NewClient(net.Dial("xlog"))

	blocks := mkBlocks(4, func(i int) page.ID { return 1 }, page.Partitioning{})
	for _, b := range blocks {
		_ = r.lz.Write(b)
		if err := client.Send(context.Background(), &rbio.Request{Type: rbio.MsgFeedBlock, Payload: b.Encode()}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // sends are async
	resp, err := client.Call(context.Background(), &rbio.Request{Type: rbio.MsgHardenReport, LSN: r.lz.HardenedEnd()})
	if err != nil || resp.Status != rbio.StatusOK {
		t.Fatalf("harden report: %+v %v", resp, err)
	}
	resp, err = client.Call(context.Background(), &rbio.Request{
		Type: rbio.MsgPullBlocks, LSN: 1, Partition: -1, Consumer: "sec-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(decodeAll(t, resp.Payload)) != 4 || resp.LSN != blocks[3].End {
		t.Fatalf("pull via rbio: %d bytes, next=%d", len(resp.Payload), resp.LSN)
	}
	resp, err = client.Call(context.Background(), &rbio.Request{Type: rbio.MsgReportApplied,
		Consumer: "sec-1", LSN: resp.LSN})
	if err != nil || resp.Status != rbio.StatusOK {
		t.Fatal("report applied failed")
	}
	resp, err = client.Call(context.Background(), &rbio.Request{Type: rbio.MsgReadState})
	if err != nil || resp.LSN != blocks[3].End {
		t.Fatalf("read state: %+v %v", resp, err)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(simdisk.New(simdisk.Instant), 1000)
	for i := 0; i < 10; i++ {
		c.put(page.LSN(i*10+1), make([]byte, 300))
	}
	entries, bytes := c.stats()
	if bytes > 1000 {
		t.Fatalf("cache over budget: %d bytes", bytes)
	}
	if entries == 0 {
		t.Fatal("cache empty after puts")
	}
	// Oldest entries evicted, newest present.
	if _, ok := c.get(1); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.get(91); !ok {
		t.Fatal("newest entry missing")
	}
	// Oversized entries are skipped without damage.
	c.put(9999, make([]byte, 2000))
	if _, ok := c.get(9999); ok {
		t.Fatal("oversized entry cached")
	}
}
