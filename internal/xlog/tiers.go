package xlog

import (
	"sync"

	"socrates/internal/page"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// lt is the long-term log archive: an append-only XStore blob of encoded
// blocks plus an in-memory index rebuilt by scanning on recovery. The LT is
// the tier of last resort — a block is guaranteed to be found here (§4.3) —
// and the source for PITR log ranges.
type lt struct {
	store *xstore.Store
	blob  string

	mu    sync.Mutex
	index map[page.LSN]ltExtent
	size  int64
	last  page.LSN // end LSN of the last archived block
	maxTS uint64   // highest commit timestamp archived
}

type ltExtent struct {
	off    int64
	length int64
}

// append archives the batch (already concatenated into buf, in LSN order).
func (l *lt) append(batch []*wal.Block, buf []byte) error {
	if err := l.store.Append(l.blob, buf); err != nil {
		return err
	}
	l.mu.Lock()
	if l.index == nil {
		l.index = make(map[page.LSN]ltExtent)
	}
	off := l.size
	for _, b := range batch {
		n := int64(b.EncodedSize())
		l.index[b.Start] = ltExtent{off: off, length: n}
		off += n
		l.last = page.MaxLSN(l.last, b.End)
		l.noteCommits(b)
	}
	l.size = off
	l.mu.Unlock()
	return nil
}

// read fetches one block by start LSN (nil if not archived).
func (l *lt) read(start page.LSN) (*wal.Block, error) {
	l.mu.Lock()
	ext, ok := l.index[start]
	l.mu.Unlock()
	if !ok {
		return nil, nil
	}
	buf, err := l.store.ReadAt(l.blob, ext.off, ext.length)
	if err != nil {
		return nil, err
	}
	b, _, err := wal.DecodeBlock(buf)
	return b, err
}

// recover rebuilds the index by scanning the archive blob. The XStore reads
// happen before l.mu is taken so a slow (simulated-latency) fetch never
// stalls concurrent readers of the index.
func (l *lt) recover() error {
	var data []byte
	if l.store.Exists(l.blob) {
		var err error
		data, err = l.store.Get(l.blob)
		if err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.index = make(map[page.LSN]ltExtent)
	l.size, l.last = 0, 0
	off := int64(0)
	rest := data
	for len(rest) > 0 {
		b, n, err := wal.DecodeBlock(rest)
		if err != nil {
			break // torn tail: everything before it is indexed
		}
		l.index[b.Start] = ltExtent{off: off, length: int64(n)}
		l.last = page.MaxLSN(l.last, b.End)
		l.noteCommits(b)
		off += int64(n)
		rest = rest[n:]
	}
	l.size = off
	return nil
}

// noteCommits tracks the highest archived commit timestamp. Caller holds
// l.mu.
func (l *lt) noteCommits(b *wal.Block) {
	for _, rec := range b.Records {
		if rec.Kind == wal.KindTxnCommit {
			if ts := rec.CommitTS(); ts > l.maxTS {
				l.maxTS = ts
			}
		}
	}
}

// maxCommitTS reports the highest archived commit timestamp.
func (l *lt) maxCommitTS() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxTS
}

// end reports the archived end LSN.
func (l *lt) end() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// blockCache is the fixed-size local SSD cache of recently destaged blocks
// — the middle tier between the sequence map and the LZ/LT (§4.3). It is a
// pure cache: no recovery, oldest entries evicted as the ring refills.
type blockCache struct {
	dev    *simdisk.Device
	budget int64

	mu    sync.Mutex
	index map[page.LSN]cacheExtent
	order []page.LSN // insertion (LSN) order for eviction
	head  int64
	used  int64
}

type cacheExtent struct {
	off    int64
	length int64
}

func newBlockCache(dev *simdisk.Device, budget int64) *blockCache {
	return &blockCache{dev: dev, budget: budget, index: make(map[page.LSN]cacheExtent)}
}

// put stores an encoded block, evicting the oldest entries to fit.
func (c *blockCache) put(start page.LSN, enc []byte) {
	n := int64(len(enc))
	if n > c.budget {
		return // larger than the whole cache: skip
	}
	c.mu.Lock()
	for c.used+n > c.budget && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		ext := c.index[victim]
		delete(c.index, victim)
		c.used -= ext.length
	}
	if c.head+n > c.budget*2 { // ring over a bounded file
		c.head = 0
	}
	off := c.head
	c.head += n
	c.mu.Unlock()

	if err := c.dev.WriteAt(enc, off); err != nil {
		return
	}

	c.mu.Lock()
	// Invalidate any resident entry overwritten by this write.
	for lsn, ext := range c.index {
		if ext.off < off+n && off < ext.off+ext.length {
			delete(c.index, lsn)
			c.used -= ext.length
			for i, o := range c.order {
				if o == lsn {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
	}
	c.index[start] = cacheExtent{off: off, length: n}
	c.order = append(c.order, start)
	c.used += n
	c.mu.Unlock()
}

// get fetches an encoded block if cached.
func (c *blockCache) get(start page.LSN) ([]byte, bool) {
	c.mu.Lock()
	ext, ok := c.index[start]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	buf := make([]byte, ext.length)
	if err := c.dev.ReadAt(buf, ext.off); err != nil {
		return nil, false
	}
	return buf, true
}

// stats reports cached entries and bytes.
func (c *blockCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index), c.used
}
