package workload

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"socrates/internal/metrics"
)

// scriptedRunner returns canned outcomes in sequence, then repeats the last.
type scriptedRunner struct {
	outcomes []Outcome
	errs     []error
	i        int
	calls    *atomic.Int64
}

func (r *scriptedRunner) Run() (Outcome, error) {
	if r.calls != nil {
		r.calls.Add(1)
	}
	idx := r.i
	if idx >= len(r.outcomes) {
		idx = len(r.outcomes) - 1
	}
	r.i++
	var err error
	if idx < len(r.errs) {
		err = r.errs[idx]
	}
	time.Sleep(time.Millisecond) // keep loop counts bounded
	return r.outcomes[idx], err
}

func TestDriveCounts(t *testing.T) {
	var calls atomic.Int64
	m := Drive(func(id int) Runner {
		return &scriptedRunner{
			outcomes: []Outcome{
				{Kind: Read, Latency: time.Millisecond},
				{Kind: Write, Latency: 2 * time.Millisecond},
				{Kind: Write, Aborted: true},
				{Kind: Read},
			},
			errs:  []error{nil, nil, nil, errors.New("boom")},
			calls: &calls,
		}
	}, Config{Threads: 2, Duration: 60 * time.Millisecond})

	if m.ReadTxns == 0 || m.WriteTxns == 0 {
		t.Fatalf("reads=%d writes=%d", m.ReadTxns, m.WriteTxns)
	}
	if m.Aborts == 0 || m.Errors == 0 {
		t.Fatalf("aborts=%d errors=%d", m.Aborts, m.Errors)
	}
	if m.Elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed = %v", m.Elapsed)
	}
	if m.WriteLatency.Count() == 0 {
		t.Fatal("write latencies not recorded")
	}
	if calls.Load() == 0 {
		t.Fatal("runner never called")
	}
}

// flakyRunner aborts every other attempt — the shape that exposed the
// budget-draw-vs-commit gap in work-bounded drives.
type flakyRunner struct {
	n     int
	calls *atomic.Int64
}

func (r *flakyRunner) Run() (Outcome, error) {
	if r.calls != nil {
		r.calls.Add(1)
	}
	r.n++
	return Outcome{Kind: Write, Aborted: r.n%2 == 0, Latency: time.Microsecond}, nil
}

// TestDriveFixedWork pins the deterministic-work-accounting contract: a
// Count-bounded drive completes exactly Count successful transactions —
// aborted attempts retry their budget unit instead of consuming it — no
// matter how threads interleave.
func TestDriveFixedWork(t *testing.T) {
	const work = 500
	for _, threads := range []int{1, 4, 16} {
		var calls atomic.Int64
		m := Drive(func(id int) Runner {
			return &flakyRunner{calls: &calls}
		}, Config{Threads: threads, Count: work, Duration: 30 * time.Second})
		if got := m.ReadTxns + m.WriteTxns; got != work {
			t.Fatalf("threads=%d: %d committed transactions, want exactly %d", threads, got, work)
		}
		if m.Aborts == 0 {
			t.Fatalf("threads=%d: flaky runner never aborted; retry path untested", threads)
		}
		if calls.Load() != work+m.Aborts {
			t.Fatalf("threads=%d: %d attempts != %d commits + %d aborts",
				threads, calls.Load(), work, m.Aborts)
		}
	}
}

// TestDriveFixedWorkSafetyBound: a drive that can never commit must still
// end at the Duration bound instead of spinning forever on its budget.
func TestDriveFixedWorkSafetyBound(t *testing.T) {
	start := time.Now()
	m := Drive(func(id int) Runner {
		return &scriptedRunner{
			outcomes: []Outcome{{Kind: Write, Aborted: true}},
		}
	}, Config{Threads: 2, Count: 1000, Duration: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wedged drive ran %v past its safety bound", elapsed)
	}
	if got := m.ReadTxns + m.WriteTxns; got != 0 {
		t.Fatalf("%d transactions committed by an always-aborting runner", got)
	}
}

func TestDriveTPSMath(t *testing.T) {
	m := Metrics{ReadTxns: 300, WriteTxns: 100, Elapsed: 2 * time.Second}
	if m.TotalTPS() != 200 || m.ReadTPS() != 150 || m.WriteTPS() != 50 {
		t.Fatalf("tps = %v %v %v", m.TotalTPS(), m.ReadTPS(), m.WriteTPS())
	}
	empty := Metrics{}
	if empty.TotalTPS() != 0 || empty.ReadTPS() != 0 || empty.WriteTPS() != 0 {
		t.Fatal("zero-window TPS should be 0")
	}
}

func TestDriveWarmupNotMeasured(t *testing.T) {
	var calls atomic.Int64
	m := Drive(func(id int) Runner {
		return &scriptedRunner{
			outcomes: []Outcome{{Kind: Read}},
			calls:    &calls,
		}
	}, Config{Threads: 1, Duration: 30 * time.Millisecond, WarmUp: 30 * time.Millisecond})
	// The runner ran during warm-up too, but only the window is counted.
	if m.ReadTxns >= calls.Load() {
		t.Fatalf("measured %d of %d calls; warm-up leaked into metrics",
			m.ReadTxns, calls.Load())
	}
}

func TestDriveMeterWindow(t *testing.T) {
	meter := metrics.NewCPUMeter(1)
	meter.Charge(time.Hour) // pre-drive garbage must be reset
	m := Drive(func(id int) Runner {
		return &scriptedRunner{outcomes: []Outcome{{Kind: Read}}}
	}, Config{Threads: 1, Duration: 30 * time.Millisecond, Meter: meter})
	if m.CPUPercent > 50 {
		t.Fatalf("CPU%% = %.1f; meter was not reset at window start", m.CPUPercent)
	}
}

func TestDriveDefaultsToOneThread(t *testing.T) {
	m := Drive(func(id int) Runner {
		return &scriptedRunner{outcomes: []Outcome{{Kind: Read}}}
	}, Config{Duration: 20 * time.Millisecond})
	if m.ReadTxns == 0 {
		t.Fatal("no transactions with default threads")
	}
}
