// Package workload provides the generic multi-threaded benchmark driver
// shared by the CDB and TPC-E workload generators: N client threads issue
// transactions against a database for a fixed window and the driver
// aggregates the numbers the paper's tables report — read/write/total TPS,
// commit latency statistics, and abort counts.
package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"socrates/internal/metrics"
)

// Kind classifies one executed transaction.
type Kind int

// Transaction kinds.
const (
	Read Kind = iota
	Write
)

// Outcome describes one executed transaction.
type Outcome struct {
	Kind    Kind
	Latency time.Duration
	Aborted bool
}

// Runner issues one transaction per call. Each driver thread owns one
// Runner, so implementations need not be safe for concurrent use.
type Runner interface {
	Run() (Outcome, error)
}

// Config tunes a drive.
type Config struct {
	// Threads is the client thread count (the paper's "client threads").
	Threads int
	// Duration is the measurement window.
	Duration time.Duration
	// Count, if nonzero, bounds the measured phase by work instead of
	// wall clock: the threads collectively execute exactly Count
	// transactions and stop. This is the deterministic-work-accounting
	// mode — on a loaded machine the drive takes longer but does the
	// same work, so counters derived from it (commits, log bytes) do not
	// race the scheduler the way rates over a fixed window do. When both
	// Count and Duration are set, Duration is a safety bound.
	Count int64
	// WarmUp runs the workload without measuring first (cache warming).
	WarmUp time.Duration
	// Meter, if set, is reset at the start of the measurement window so
	// CPU% covers exactly the measured interval.
	Meter *metrics.CPUMeter
}

// Metrics aggregates a drive's results.
type Metrics struct {
	ReadTxns  int64
	WriteTxns int64
	Aborts    int64
	Errors    int64
	Elapsed   time.Duration
	// WriteLatency collects commit latencies of write transactions —
	// the paper's Table 6 statistics.
	WriteLatency *metrics.Histogram
	// CPUPercent is the meter utilization over the window (0 if no meter).
	CPUPercent float64
}

// TotalTPS reports total committed transactions per second.
func (m Metrics) TotalTPS() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.ReadTxns+m.WriteTxns) / m.Elapsed.Seconds()
}

// ReadTPS reports read transactions per second.
func (m Metrics) ReadTPS() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.ReadTxns) / m.Elapsed.Seconds()
}

// WriteTPS reports write transactions per second.
func (m Metrics) WriteTPS() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.WriteTxns) / m.Elapsed.Seconds()
}

// Drive runs cfg.Threads runners until the window closes and aggregates
// results. newRunner is called once per thread with the thread index.
func Drive(newRunner func(id int) Runner, cfg Config) Metrics {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	runners := make([]Runner, cfg.Threads)
	for i := range runners {
		runners[i] = newRunner(i)
	}

	if cfg.WarmUp > 0 {
		runPhase(runners, cfg.WarmUp, 0, nil)
	}
	if cfg.Meter != nil {
		cfg.Meter.Reset()
	}
	m := &Metrics{WriteLatency: metrics.NewHistogram()}
	start := time.Now()
	runPhase(runners, cfg.Duration, cfg.Count, m)
	m.Elapsed = time.Since(start)
	if cfg.Meter != nil {
		m.CPUPercent = cfg.Meter.UtilizationOver(m.Elapsed)
	}
	return *m
}

// runPhase executes all runners until the deadline or until the shared
// work budget is spent; if m is non-nil it accumulates outcomes (locked;
// the histogram locks internally).
func runPhase(runners []Runner, d time.Duration, count int64, m *Metrics) {
	if d <= 0 && count <= 0 {
		return
	}
	deadline := time.Time{}
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	budget := count
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, r := range runners {
		wg.Add(1)
		go func(r Runner) {
			defer wg.Done()
			for {
				// In work-bounded mode a thread draws one unit from the
				// shared budget and owns it until a transaction commits
				// (aborted and errored attempts retry the same unit), so
				// the phase completes exactly count successful
				// transactions. The Duration safety bound still ends a
				// wedged drive.
				if count > 0 && atomic.AddInt64(&budget, -1) < 0 {
					return
				}
				for {
					if !deadline.IsZero() && !time.Now().Before(deadline) {
						return
					}
					out, err := r.Run()
					ok := err == nil && !out.Aborted
					if m != nil {
						mu.Lock()
						switch {
						case err != nil:
							m.Errors++
						case out.Aborted:
							m.Aborts++
						case out.Kind == Write:
							m.WriteTxns++
						default:
							m.ReadTxns++
						}
						mu.Unlock()
						if ok && out.Kind == Write {
							m.WriteLatency.Observe(out.Latency)
						}
					}
					if ok || count <= 0 {
						break
					}
				}
			}
		}(r)
	}
	wg.Wait()
}
