package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tkEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, fmt.Errorf("sql: expected %s, got %q at %d", want, t.text, t.pos)
	}
	return p.advance(), nil
}

func (p *parser) keyword(kw string) bool { return p.accept(tkKeyword, kw) }

func (p *parser) ident() (string, error) {
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return nil, fmt.Errorf("sql: expected statement, got %q", t.text)
	}
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "DROP":
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.delete()
	case "BEGIN":
		p.advance()
		return &BeginStmt{}, nil
	case "COMMIT":
		p.advance()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.advance()
		return &RollbackStmt{}, nil
	case "SHOW":
		p.advance()
		if _, err := p.expect(tkKeyword, "TABLES"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %q", t.text)
	}
}

func (p *parser) createTable() (Statement, error) {
	p.advance() // CREATE
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ty := p.advance()
		if ty.kind != tkKeyword {
			return nil, fmt.Errorf("sql: expected column type, got %q", ty.text)
		}
		var ct ColType
		switch ty.text {
		case "INT":
			ct = TypeInt
		case "FLOAT":
			ct = TypeFloat
		case "TEXT":
			ct = TypeText
		default:
			return nil, fmt.Errorf("sql: unknown type %q", ty.text)
		}
		c := Column{Name: col, Type: ct}
		if p.keyword("PRIMARY") {
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return nil, err
			}
			c.PK = true
		}
		stmt.Columns = append(stmt.Columns, c)
		if p.accept(tkSymbol, ",") {
			continue
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	return stmt, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.advance() // DROP
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

func (p *parser) insert() (Statement, error) {
	p.advance() // INSERT
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.accept(tkSymbol, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.accept(tkSymbol, ",") {
				continue
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tkSymbol, ",") {
				continue
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.advance() // SELECT
	stmt := &SelectStmt{Limit: -1}
	if p.accept(tkSymbol, "*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.keyword("WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.keyword("ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = col
		if p.keyword("DESC") {
			stmt.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		t, err := p.expect(tkNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

var aggregates = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tkKeyword && aggregates[t.text] {
		p.advance()
		item := SelectItem{Agg: t.text}
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return item, err
		}
		if p.accept(tkSymbol, "*") {
			if t.text != "COUNT" {
				return item, fmt.Errorf("sql: %s(*) is not valid", t.text)
			}
			item.Star = true
		} else {
			e, err := p.expression()
			if err != nil {
				return item, err
			}
			item.Expr = e
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return item, err
		}
		if p.keyword("AS") {
			alias, err := p.ident()
			if err != nil {
				return item, err
			}
			item.Alias = alias
		}
		return item, nil
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) update() (Statement, error) {
	p.advance() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Set[col] = e
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.keyword("WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) delete() (Statement, error) {
	p.advance() // DELETE
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.keyword("WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// expression parses with precedence: OR < AND < NOT < comparison < add < mul.
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.keyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tkSymbol {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "+" || t.text == "-") {
			p.advance()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "*" || t.text == "/") {
			p.advance()
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return &Literal{Val: FloatValue(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return &Literal{Val: IntValue(n)}, nil

	case t.kind == tkString:
		p.advance()
		return &Literal{Val: TextValue(t.text)}, nil

	case t.kind == tkKeyword && t.text == "NULL":
		p.advance()
		return &Literal{Val: NullValue()}, nil

	case t.kind == tkIdent:
		p.advance()
		return &ColumnRef{Name: t.text}, nil

	case t.kind == tkSymbol && t.text == "(":
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tkSymbol && t.text == "-":
		p.advance()
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q at %d", t.text, t.pos)
}
