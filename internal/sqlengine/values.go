package sqlengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind discriminates runtime values.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindText
	KindBool // expression-internal only; not storable
)

// Value is a runtime SQL value.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
	B    bool
}

// Constructors.
func NullValue() Value           { return Value{Kind: KindNull} }
func IntValue(i int64) Value     { return Value{Kind: KindInt, I: i} }
func FloatValue(f float64) Value { return Value{Kind: KindFloat, F: f} }
func TextValue(s string) Value   { return Value{Kind: KindText, S: s} }
func BoolValue(b bool) Value     { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for result display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("value(%d)", v.Kind)
	}
}

// asFloat coerces numerics to float64.
func (v Value) asFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// Compare orders two values: -1, 0, +1. NULLs sort first; mismatched kinds
// coerce numerically when possible.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.Kind == KindText && b.Kind == KindText {
		return strings.Compare(a.S, b.S), nil
	}
	af, aok := a.asFloat()
	bf, bok := b.asFloat()
	if aok && bok {
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("sql: cannot compare %v and %v", a.Kind, b.Kind)
}

// --- row and key encoding ---

// ErrRowCodec reports a corrupt row payload.
var ErrRowCodec = errors.New("sql: corrupt row encoding")

// encodeRow serializes values per column: tag byte + payload.
func encodeRow(vals []Value) []byte {
	var buf []byte
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			buf = append(buf, 0)
		case KindInt:
			buf = append(buf, 1)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
		case KindFloat:
			buf = append(buf, 2)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case KindText:
			buf = append(buf, 3)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	return buf
}

// decodeRow parses exactly n column values.
func decodeRow(buf []byte, n int) ([]Value, error) {
	vals := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 1 {
			return nil, ErrRowCodec
		}
		tag := buf[0]
		buf = buf[1:]
		switch tag {
		case 0:
			vals = append(vals, NullValue())
		case 1:
			if len(buf) < 8 {
				return nil, ErrRowCodec
			}
			vals = append(vals, IntValue(int64(binary.LittleEndian.Uint64(buf))))
			buf = buf[8:]
		case 2:
			if len(buf) < 8 {
				return nil, ErrRowCodec
			}
			vals = append(vals, FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(buf))))
			buf = buf[8:]
		case 3:
			if len(buf) < 4 {
				return nil, ErrRowCodec
			}
			n := int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
			if len(buf) < n {
				return nil, ErrRowCodec
			}
			vals = append(vals, TextValue(string(buf[:n])))
			buf = buf[n:]
		default:
			return nil, ErrRowCodec
		}
	}
	if len(buf) != 0 {
		return nil, ErrRowCodec
	}
	return vals, nil
}

// encodeKey produces an order-preserving byte encoding of a primary-key
// value: INTs compare numerically, TEXT lexically.
func encodeKey(v Value) ([]byte, error) {
	switch v.Kind {
	case KindInt:
		var b [9]byte
		b[0] = 1
		// Flip the sign bit so two's-complement order becomes byte order.
		binary.BigEndian.PutUint64(b[1:], uint64(v.I)^(1<<63))
		return b[:], nil
	case KindFloat:
		var b [9]byte
		b[0] = 2
		bits := math.Float64bits(v.F)
		if v.F >= 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		binary.BigEndian.PutUint64(b[1:], bits)
		return b[:], nil
	case KindText:
		return append([]byte{3}, v.S...), nil
	default:
		return nil, fmt.Errorf("sql: %v is not a valid primary key", v.Kind)
	}
}

// decodeKey reverses encodeKey.
func decodeKey(buf []byte) (Value, error) {
	if len(buf) < 1 {
		return Value{}, ErrRowCodec
	}
	switch buf[0] {
	case 1:
		if len(buf) != 9 {
			return Value{}, ErrRowCodec
		}
		return IntValue(int64(binary.BigEndian.Uint64(buf[1:]) ^ (1 << 63))), nil
	case 2:
		if len(buf) != 9 {
			return Value{}, ErrRowCodec
		}
		bits := binary.BigEndian.Uint64(buf[1:])
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		return FloatValue(math.Float64frombits(bits)), nil
	case 3:
		return TextValue(string(buf[1:])), nil
	default:
		return Value{}, ErrRowCodec
	}
}

// --- schema encoding (stored in the __schema system table) ---

type schema struct {
	Columns []Column
	pkIdx   int
}

func (s *schema) colIndex(name string) (int, bool) {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return 0, false
}

func encodeSchema(cols []Column) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cols)))
	for _, c := range cols {
		buf = append(buf, byte(c.Type))
		if c.PK {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	return buf
}

func decodeSchema(buf []byte) (*schema, error) {
	if len(buf) < 2 {
		return nil, ErrRowCodec
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	s := &schema{pkIdx: -1}
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, ErrRowCodec
		}
		c := Column{Type: ColType(buf[0]), PK: buf[1] == 1}
		ln := int(binary.LittleEndian.Uint16(buf[2:4]))
		buf = buf[4:]
		if len(buf) < ln {
			return nil, ErrRowCodec
		}
		c.Name = string(buf[:ln])
		buf = buf[ln:]
		if c.PK {
			s.pkIdx = i
		}
		s.Columns = append(s.Columns, c)
	}
	if s.pkIdx < 0 {
		return nil, errors.New("sql: schema lacks a primary key")
	}
	return s, nil
}
