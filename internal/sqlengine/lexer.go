// Package sqlengine provides the SQL front end of the Socrates
// reproduction: a small dialect (CREATE/DROP TABLE, INSERT, SELECT with
// WHERE/ORDER BY/LIMIT and aggregates, UPDATE, DELETE, BEGIN/COMMIT/
// ROLLBACK) compiled onto the storage engine's transactional API. The paper
// reuses SQL Server's query processor unchanged (§4.1.6); this package
// plays that role at reproduction scale.
package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

// keywords recognized by the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"DROP": true, "TABLE": true, "PRIMARY": true, "KEY": true, "AND": true,
	"OR": true, "NOT": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "INT": true, "FLOAT": true, "TEXT": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "NULL": true,
	"AS": true, "SHOW": true, "TABLES": true,
}

type lexer struct {
	src []rune
	pos int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src)}
	var toks []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tkEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tkEOF, pos: l.pos}, nil
	}
	start := l.pos
	ch := l.src[l.pos]
	switch {
	case unicode.IsLetter(ch) || ch == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) ||
			unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		word := string(l.src[start:l.pos])
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tkKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tkIdent, text: word, pos: start}, nil

	case unicode.IsDigit(ch) || (ch == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]) && l.numericContext()):
		if ch == '-' {
			l.pos++
		}
		seenDot := false
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || (l.src[l.pos] == '.' && !seenDot)) {
			if l.src[l.pos] == '.' {
				seenDot = true
			}
			l.pos++
		}
		return token{kind: tkNumber, text: string(l.src[start:l.pos]), pos: start}, nil

	case ch == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteRune('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tkString, text: sb.String(), pos: start}, nil
			}
			sb.WriteRune(c)
			l.pos++
		}
		return token{}, fmt.Errorf("sql: unterminated string at %d", start)

	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = string(l.src[l.pos : l.pos+2])
		}
		switch two {
		case "<=", ">=", "!=", "<>":
			l.pos += 2
			if two == "<>" {
				two = "!="
			}
			return token{kind: tkSymbol, text: two, pos: start}, nil
		}
		switch ch {
		case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', ';', '.':
			l.pos++
			return token{kind: tkSymbol, text: string(ch), pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected character %q at %d", ch, start)
	}
}

// numericContext reports whether a '-' should bind to a number (crude:
// always treat as operator; the parser handles unary minus). Kept for
// clarity — returns false so '-' lexes as a symbol.
func (l *lexer) numericContext() bool { return false }
