package sqlengine

import "fmt"

// ColType is a column's declared type.
type ColType int

// Column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeText
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Column is one column definition.
type Column struct {
	Name string
	Type ColType
	PK   bool
}

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Table   string
	Columns []Column
}

// DropTableStmt drops a table.
type DropTableStmt struct{ Table string }

// InsertStmt inserts rows.
type InsertStmt struct {
	Table   string
	Columns []string // empty = declared order
	Rows    [][]Expr
}

// SelectStmt queries rows.
type SelectStmt struct {
	Table   string
	Items   []SelectItem // empty + Star for SELECT *
	Star    bool
	Where   Expr // nil = all rows
	OrderBy string
	Desc    bool
	Limit   int // -1 = unlimited
}

// SelectItem is one projection: a column or an aggregate.
type SelectItem struct {
	Expr  Expr
	Alias string
	Agg   string // "", COUNT, SUM, AVG, MIN, MAX
	Star  bool   // COUNT(*)
}

// UpdateStmt updates rows.
type UpdateStmt struct {
	Table string
	Set   map[string]Expr
	Where Expr
}

// DeleteStmt deletes rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

// Transaction control and introspection statements.
type (
	BeginStmt      struct{}
	CommitStmt     struct{}
	RollbackStmt   struct{}
	ShowTablesStmt struct{}
)

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}
func (*ShowTablesStmt) stmt()  {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// ColumnRef references a column by name.
type ColumnRef struct{ Name string }

// Literal is a constant value.
type Literal struct{ Val Value }

// BinaryExpr applies an operator to two operands.
type BinaryExpr struct {
	Op   string // = != < <= > >= AND OR + - * /
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT, -
	E  Expr
}

func (*ColumnRef) expr()  {}
func (*Literal) expr()    {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
