package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"socrates/internal/engine"
	"socrates/internal/obs"
)

// schemaTable is the system table mapping table name → encoded schema.
const schemaTable = "__schema"

// SchemaTable exposes the system schema table's physical name; the
// front-door migrator copies a tenant's schema rows out of it alongside
// the tenant's data tables.
const SchemaTable = schemaTable

// Errors.
var (
	ErrNoSuchTable  = errors.New("sql: no such table")
	ErrDuplicateKey = errors.New("sql: duplicate primary key")
	ErrNoTx         = errors.New("sql: no open transaction")
	ErrTxOpen       = errors.New("sql: transaction already open")
)

// DB compiles SQL onto a storage engine.
type DB struct {
	eng *engine.Engine

	// prefix namespaces every table this DB touches (elastic pools: many
	// tenants share one engine). "" is the single-tenant DB.
	prefix string

	mu      sync.Mutex
	schemas map[string]*schema
}

// New wraps an engine. The same DB serves any number of Sessions.
func New(eng *engine.Engine) *DB {
	return &DB{eng: eng, schemas: make(map[string]*schema)}
}

// NewTenant wraps an engine with a per-tenant table namespace so many
// logical databases share one engine (the elastic-pool arrangement).
// Physical table names become TenantPrefix(tenant)+name; schema rows
// share the one __schema system table under the same prefixed keys, so
// tenants cannot see each other's tables. SQL identifiers cannot contain
// '.', which makes the namespace collision-free against both plain-DB
// tables and other tenants.
func NewTenant(eng *engine.Engine, tenant string) *DB {
	return &DB{eng: eng, prefix: TenantPrefix(tenant), schemas: make(map[string]*schema)}
}

// TenantPrefix returns the physical-name prefix for a tenant's tables.
// The '.' separators are unreachable from SQL identifiers.
func TenantPrefix(tenant string) string {
	return "tnt." + strings.ToLower(tenant) + "."
}

// phys maps a SQL-visible table name to its physical engine table name.
func (db *DB) phys(table string) string { return db.prefix + strings.ToLower(table) }

// Engine exposes the underlying storage engine.
func (db *DB) Engine() *engine.Engine { return db.eng }

// Result is the outcome of one statement.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
	// Waits is the statement's per-request wait breakdown: every blocked
	// interval the request hit across tiers (commit hardening, page
	// misses, fabric round trips, ...), by class, sorted by total — the
	// EXPLAIN-ANALYZE of where the statement's latency went. Empty when
	// nothing blocked.
	Waits []obs.WaitClassStat
	// WaitTotal sums Waits across classes.
	WaitTotal time.Duration
}

// Session is one connection: it holds at most one open transaction.
// Statements outside BEGIN/COMMIT auto-commit.
type Session struct {
	db *DB
	tx *engine.Tx
}

// Session opens a new session.
func (db *DB) Session() *Session { return &Session{db: db} }

// Exec parses and runs one statement on a fresh session (convenience).
func (db *DB) Exec(sql string) (*Result, error) { return db.Session().Exec(sql) }

// ExecContext parses and runs one statement on a fresh session, bounded
// by (and traced through) ctx.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.Session().ExecContext(ctx, sql)
}

// Exec parses and runs one statement.
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext parses and runs one statement bounded by ctx. The whole
// statement — parse, execution, commit hardening, and any GetPage@LSN
// traffic it causes — runs under one "sql.exec" span.
func (s *Session) ExecContext(ctx context.Context, sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx, stmt)
}

// InTx reports whether an explicit transaction is open.
func (s *Session) InTx() bool { return s.tx != nil }

// Run executes a parsed statement.
func (s *Session) Run(stmt Statement) (*Result, error) {
	return s.RunContext(context.Background(), stmt)
}

// RunContext executes a parsed statement bounded by (and traced through)
// ctx.
func (s *Session) RunContext(ctx context.Context, stmt Statement) (*Result, error) {
	eng := s.db.eng
	start := time.Now()
	ctx, span := eng.Tracer().StartSpan(ctx, obs.TierCompute, "sql.exec")
	defer span.End()
	span.SetAttr("stmt", stmtName(stmt))
	// Per-request wait attribution: every WaitPoint the statement passes
	// through (in any tier, including the group-commit flusher acting on
	// its behalf) adds to this profile, and the Result carries the
	// breakdown.
	prof := obs.WaitProfileFromContext(ctx)
	if prof == nil {
		prof = obs.NewWaitProfile()
		ctx = obs.ContextWithWaitProfile(ctx, prof)
	}
	res, err := s.runStmt(ctx, stmt)
	span.SetError(err)
	if err == nil {
		eng.Metrics().Histogram("compute.sql.latency").Observe(time.Since(start))
		eng.Metrics().Counter("compute.sql.statements").Inc()
	}
	if res != nil {
		res.Waits = prof.Breakdown()
		res.WaitTotal = prof.Total()
	}
	return res, err
}

// stmtName labels a statement for spans and metrics.
func stmtName(stmt Statement) string {
	switch stmt.(type) {
	case *BeginStmt:
		return "begin"
	case *CommitStmt:
		return "commit"
	case *RollbackStmt:
		return "rollback"
	case *ShowTablesStmt:
		return "show-tables"
	case *CreateTableStmt:
		return "create-table"
	case *DropTableStmt:
		return "drop-table"
	case *InsertStmt:
		return "insert"
	case *SelectStmt:
		return "select"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	default:
		return fmt.Sprintf("%T", stmt)
	}
}

func (s *Session) runStmt(ctx context.Context, stmt Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *BeginStmt:
		if s.tx != nil {
			return nil, ErrTxOpen
		}
		s.tx = s.db.eng.BeginContext(ctx)
		return &Result{}, nil
	case *CommitStmt:
		if s.tx == nil {
			return nil, ErrNoTx
		}
		err := s.tx.Commit()
		s.tx = nil
		return &Result{}, err
	case *RollbackStmt:
		if s.tx == nil {
			return nil, ErrNoTx
		}
		s.tx.Abort()
		s.tx = nil
		return &Result{}, nil
	case *ShowTablesStmt:
		return s.showTables()
	case *CreateTableStmt:
		return s.db.createTable(ctx, st)
	case *DropTableStmt:
		return s.db.dropTable(ctx, st)
	}

	// Row statements run in the session transaction or auto-commit.
	tx := s.tx
	auto := tx == nil
	if auto {
		if _, ok := stmt.(*SelectStmt); ok {
			tx = s.db.eng.BeginROContext(ctx)
		} else {
			tx = s.db.eng.BeginContext(ctx)
		}
	}
	res, err := s.db.runRowStmt(tx, stmt)
	if auto {
		if err != nil {
			tx.Abort()
			return nil, err
		}
		if cerr := tx.Commit(); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

func (s *Session) showTables() (*Result, error) {
	names, err := s.db.eng.Tables()
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"table"}}
	for _, n := range names {
		if n == schemaTable {
			continue
		}
		if s.db.prefix == "" {
			// The plain DB hides tenant namespaces ("tnt.<t>.*"): those
			// tables belong to front-door tenants sharing this engine.
			if strings.HasPrefix(n, "tnt.") {
				continue
			}
		} else {
			rest, ok := strings.CutPrefix(n, s.db.prefix)
			if !ok {
				continue
			}
			n = rest
		}
		res.Rows = append(res.Rows, []Value{TextValue(n)})
	}
	return res, nil
}

// --- DDL ---

func (db *DB) createTable(ctx context.Context, st *CreateTableStmt) (*Result, error) {
	if len(st.Columns) == 0 {
		return nil, errors.New("sql: table needs at least one column")
	}
	pkCount := 0
	seen := map[string]bool{}
	for _, c := range st.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("sql: duplicate column %q", c.Name)
		}
		seen[lc] = true
		if c.PK {
			pkCount++
		}
	}
	if pkCount != 1 {
		return nil, fmt.Errorf("sql: table must have exactly one PRIMARY KEY column, got %d", pkCount)
	}
	if strings.ToLower(st.Table) == schemaTable {
		return nil, errors.New("sql: reserved table name")
	}
	name := db.phys(st.Table)
	if err := db.ensureSchemaTable(ctx); err != nil {
		return nil, err
	}
	if err := db.eng.CreateTableContext(ctx, name); err != nil {
		if errors.Is(err, engine.ErrTableExists) {
			return nil, fmt.Errorf("sql: table %q already exists", name)
		}
		return nil, err
	}
	tx := db.eng.BeginContext(ctx)
	if err := tx.Put(schemaTable, []byte(name), encodeSchema(st.Columns)); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) dropTable(ctx context.Context, st *DropTableStmt) (*Result, error) {
	name := db.phys(st.Table)
	if _, err := db.schema(name); err != nil {
		return nil, err
	}
	tx := db.eng.BeginContext(ctx)
	if err := tx.Delete(schemaTable, []byte(name)); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	delete(db.schemas, name)
	db.mu.Unlock()
	// The engine-level table and its pages remain as garbage — reclaiming
	// them is a background job in a production system.
	return &Result{}, nil
}

func (db *DB) ensureSchemaTable(ctx context.Context) error {
	err := db.eng.CreateTableContext(ctx, schemaTable)
	if errors.Is(err, engine.ErrTableExists) {
		return nil
	}
	return err
}

// schema resolves a table's schema, caching it.
func (db *DB) schema(name string) (*schema, error) {
	name = strings.ToLower(name)
	db.mu.Lock()
	sc, ok := db.schemas[name]
	db.mu.Unlock()
	if ok {
		return sc, nil
	}
	tx := db.eng.BeginRO()
	defer tx.Abort()
	raw, found, err := tx.Get(schemaTable, []byte(name))
	if err != nil {
		if errors.Is(err, engine.ErrNoTable) {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
		}
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	sc, err = decodeSchema(raw)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.schemas[name] = sc
	db.mu.Unlock()
	return sc, nil
}

// --- DML / queries ---

func (db *DB) runRowStmt(tx *engine.Tx, stmt Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *InsertStmt:
		return db.runInsert(tx, st)
	case *SelectStmt:
		return db.runSelect(tx, st)
	case *UpdateStmt:
		return db.runUpdate(tx, st)
	case *DeleteStmt:
		return db.runDelete(tx, st)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// coerce adapts a value to the column type.
func coerce(v Value, t ColType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TypeInt:
		if v.Kind == KindInt {
			return v, nil
		}
	case TypeFloat:
		if v.Kind == KindFloat {
			return v, nil
		}
		if v.Kind == KindInt {
			return FloatValue(float64(v.I)), nil
		}
	case TypeText:
		if v.Kind == KindText {
			return v, nil
		}
	}
	return Value{}, fmt.Errorf("sql: cannot store %v value in %v column", v.Kind, t)
}

func (db *DB) runInsert(tx *engine.Tx, st *InsertStmt) (*Result, error) {
	name := db.phys(st.Table)
	sc, err := db.schema(name)
	if err != nil {
		return nil, err
	}
	// Column order mapping.
	order := make([]int, 0, len(sc.Columns))
	if len(st.Columns) == 0 {
		for i := range sc.Columns {
			order = append(order, i)
		}
	} else {
		for _, cn := range st.Columns {
			idx, ok := sc.colIndex(cn)
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", cn)
			}
			order = append(order, idx)
		}
	}
	affected := 0
	for _, row := range st.Rows {
		if len(row) != len(order) {
			return nil, fmt.Errorf("sql: %d values for %d columns", len(row), len(order))
		}
		vals := make([]Value, len(sc.Columns))
		for i := range vals {
			vals[i] = NullValue()
		}
		for i, e := range row {
			v, err := evalExpr(e, nil)
			if err != nil {
				return nil, err
			}
			v, err = coerce(v, sc.Columns[order[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("sql: column %q: %w", sc.Columns[order[i]].Name, err)
			}
			vals[order[i]] = v
		}
		pk := vals[sc.pkIdx]
		if pk.IsNull() {
			return nil, errors.New("sql: primary key may not be NULL")
		}
		key, err := encodeKey(pk)
		if err != nil {
			return nil, err
		}
		if _, exists, err := tx.Get(name, key); err != nil {
			return nil, err
		} else if exists {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateKey, pk)
		}
		if err := tx.Put(name, key, encodeRow(vals)); err != nil {
			return nil, err
		}
		affected++
	}
	return &Result{Affected: affected}, nil
}

// rowEnv builds the expression environment for one row.
func rowEnv(sc *schema, vals []Value) func(string) (Value, error) {
	return func(name string) (Value, error) {
		idx, ok := sc.colIndex(name)
		if !ok {
			return Value{}, fmt.Errorf("sql: unknown column %q", name)
		}
		return vals[idx], nil
	}
}

// scanMatching streams decoded rows matching the WHERE clause, using a
// point lookup when the predicate pins the primary key.
func (db *DB) scanMatching(tx *engine.Tx, name string, sc *schema, where Expr,
	fn func(key []byte, vals []Value) (bool, error)) error {
	// Plan: PK equality → point lookup.
	if pkVal, ok := pkEquality(where, sc); ok {
		key, err := encodeKey(pkVal)
		if err != nil {
			return err
		}
		raw, found, err := tx.Get(name, key)
		if err != nil || !found {
			return err
		}
		vals, err := decodeRow(raw, len(sc.Columns))
		if err != nil {
			return err
		}
		match, err := evalBool(where, rowEnv(sc, vals))
		if err != nil || !match {
			return err
		}
		_, err = fn(key, vals)
		return err
	}
	// Full scan with residual filter.
	var inner error
	err := tx.Scan(name, nil, nil, func(k, raw []byte) bool {
		vals, err := decodeRow(raw, len(sc.Columns))
		if err != nil {
			inner = err
			return false
		}
		if where != nil {
			match, err := evalBool(where, rowEnv(sc, vals))
			if err != nil {
				inner = err
				return false
			}
			if !match {
				return true
			}
		}
		cont, err := fn(k, vals)
		if err != nil {
			inner = err
			return false
		}
		return cont
	})
	if inner != nil {
		return inner
	}
	return err
}

// pkEquality detects `pk = literal` (possibly under ANDs) for point plans.
func pkEquality(e Expr, sc *schema) (Value, bool) {
	switch ex := e.(type) {
	case *BinaryExpr:
		if ex.Op == "=" {
			if col, ok := ex.L.(*ColumnRef); ok {
				if idx, found := sc.colIndex(col.Name); found && idx == sc.pkIdx {
					if lit, ok := ex.R.(*Literal); ok {
						return lit.Val, true
					}
				}
			}
			if col, ok := ex.R.(*ColumnRef); ok {
				if idx, found := sc.colIndex(col.Name); found && idx == sc.pkIdx {
					if lit, ok := ex.L.(*Literal); ok {
						return lit.Val, true
					}
				}
			}
		}
		if ex.Op == "AND" {
			if v, ok := pkEquality(ex.L, sc); ok {
				return v, true
			}
			return pkEquality(ex.R, sc)
		}
	}
	return Value{}, false
}

func (db *DB) runSelect(tx *engine.Tx, st *SelectStmt) (*Result, error) {
	name := db.phys(st.Table)
	sc, err := db.schema(name)
	if err != nil {
		return nil, err
	}
	if hasAggregates(st) {
		return db.runAggregate(tx, st, name, sc)
	}

	// Projection setup.
	var cols []string
	var project func(vals []Value) ([]Value, error)
	if st.Star {
		for _, c := range sc.Columns {
			cols = append(cols, c.Name)
		}
		project = func(vals []Value) ([]Value, error) { return vals, nil }
	} else {
		for _, item := range st.Items {
			colName := item.Alias
			if colName == "" {
				if ref, ok := item.Expr.(*ColumnRef); ok {
					colName = ref.Name
				} else {
					colName = "expr"
				}
			}
			cols = append(cols, colName)
		}
		items := st.Items
		project = func(vals []Value) ([]Value, error) {
			out := make([]Value, len(items))
			for i, item := range items {
				v, err := evalExpr(item.Expr, rowEnv(sc, vals))
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}
	}

	res := &Result{Columns: cols}
	orderIdx := -1
	if st.OrderBy != "" {
		idx, ok := sc.colIndex(st.OrderBy)
		if !ok {
			return nil, fmt.Errorf("sql: unknown ORDER BY column %q", st.OrderBy)
		}
		orderIdx = idx
	}
	type sortableRow struct {
		out []Value
		key Value
	}
	var rows []sortableRow
	err = db.scanMatching(tx, name, sc, st.Where, func(_ []byte, vals []Value) (bool, error) {
		out, err := project(vals)
		if err != nil {
			return false, err
		}
		row := sortableRow{out: append([]Value(nil), out...)}
		if orderIdx >= 0 {
			row.key = vals[orderIdx]
		}
		rows = append(rows, row)
		// Early cut only valid without ORDER BY (PK order is scan order).
		if orderIdx < 0 && st.Limit >= 0 && len(rows) >= st.Limit {
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if orderIdx >= 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			c, err := Compare(rows[i].key, rows[j].key)
			if err != nil {
				sortErr = err
			}
			if st.Desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
		if st.Limit >= 0 && len(rows) > st.Limit {
			rows = rows[:st.Limit]
		}
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.out)
	}
	return res, nil
}

func hasAggregates(st *SelectStmt) bool {
	for _, item := range st.Items {
		if item.Agg != "" {
			return true
		}
	}
	return false
}

func (db *DB) runAggregate(tx *engine.Tx, st *SelectStmt, name string, sc *schema) (*Result, error) {
	type aggState struct {
		count int64
		sum   float64
		min   Value
		max   Value
		any   bool
	}
	states := make([]aggState, len(st.Items))
	for _, item := range st.Items {
		if item.Agg == "" {
			return nil, errors.New("sql: cannot mix aggregates and plain columns")
		}
	}
	err := db.scanMatching(tx, name, sc, st.Where, func(_ []byte, vals []Value) (bool, error) {
		env := rowEnv(sc, vals)
		for i, item := range st.Items {
			stt := &states[i]
			if item.Star {
				stt.count++
				continue
			}
			v, err := evalExpr(item.Expr, env)
			if err != nil {
				return false, err
			}
			if v.IsNull() {
				continue
			}
			stt.count++
			if f, ok := v.asFloat(); ok {
				stt.sum += f
			}
			if !stt.any {
				stt.min, stt.max, stt.any = v, v, true
			} else {
				if c, err := Compare(v, stt.min); err == nil && c < 0 {
					stt.min = v
				}
				if c, err := Compare(v, stt.max); err == nil && c > 0 {
					stt.max = v
				}
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	row := make([]Value, len(st.Items))
	for i, item := range st.Items {
		colName := item.Alias
		if colName == "" {
			colName = strings.ToLower(item.Agg)
		}
		res.Columns = append(res.Columns, colName)
		stt := states[i]
		switch item.Agg {
		case "COUNT":
			row[i] = IntValue(stt.count)
		case "SUM":
			if stt.count == 0 {
				row[i] = NullValue()
			} else {
				row[i] = FloatValue(stt.sum)
			}
		case "AVG":
			if stt.count == 0 {
				row[i] = NullValue()
			} else {
				row[i] = FloatValue(stt.sum / float64(stt.count))
			}
		case "MIN":
			if !stt.any {
				row[i] = NullValue()
			} else {
				row[i] = stt.min
			}
		case "MAX":
			if !stt.any {
				row[i] = NullValue()
			} else {
				row[i] = stt.max
			}
		}
	}
	res.Rows = [][]Value{row}
	return res, nil
}

func (db *DB) runUpdate(tx *engine.Tx, st *UpdateStmt) (*Result, error) {
	name := db.phys(st.Table)
	sc, err := db.schema(name)
	if err != nil {
		return nil, err
	}
	type change struct {
		oldKey []byte
		newKey []byte
		row    []byte
	}
	var changes []change
	err = db.scanMatching(tx, name, sc, st.Where, func(key []byte, vals []Value) (bool, error) {
		newVals := append([]Value(nil), vals...)
		env := rowEnv(sc, vals)
		for col, e := range st.Set {
			idx, ok := sc.colIndex(col)
			if !ok {
				return false, fmt.Errorf("sql: unknown column %q", col)
			}
			v, err := evalExpr(e, env)
			if err != nil {
				return false, err
			}
			v, err = coerce(v, sc.Columns[idx].Type)
			if err != nil {
				return false, fmt.Errorf("sql: column %q: %w", col, err)
			}
			newVals[idx] = v
		}
		newKey, err := encodeKey(newVals[sc.pkIdx])
		if err != nil {
			return false, err
		}
		changes = append(changes, change{oldKey: append([]byte(nil), key...),
			newKey: newKey, row: encodeRow(newVals)})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, ch := range changes {
		if string(ch.oldKey) != string(ch.newKey) {
			if _, exists, err := tx.Get(name, ch.newKey); err != nil {
				return nil, err
			} else if exists {
				return nil, ErrDuplicateKey
			}
			if err := tx.Delete(name, ch.oldKey); err != nil {
				return nil, err
			}
		}
		if err := tx.Put(name, ch.newKey, ch.row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(changes)}, nil
}

func (db *DB) runDelete(tx *engine.Tx, st *DeleteStmt) (*Result, error) {
	name := db.phys(st.Table)
	sc, err := db.schema(name)
	if err != nil {
		return nil, err
	}
	var keys [][]byte
	err = db.scanMatching(tx, name, sc, st.Where, func(key []byte, _ []Value) (bool, error) {
		keys = append(keys, append([]byte(nil), key...))
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := tx.Delete(name, k); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(keys)}, nil
}

// --- expression evaluation ---

func evalBool(e Expr, env func(string) (Value, error)) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := evalExpr(e, env)
	if err != nil {
		return false, err
	}
	switch v.Kind {
	case KindBool:
		return v.B, nil
	case KindNull:
		return false, nil
	default:
		return false, fmt.Errorf("sql: WHERE clause is not boolean (%v)", v.Kind)
	}
}

func evalExpr(e Expr, env func(string) (Value, error)) (Value, error) {
	switch ex := e.(type) {
	case *Literal:
		return ex.Val, nil
	case *ColumnRef:
		if env == nil {
			return Value{}, fmt.Errorf("sql: column %q not allowed here", ex.Name)
		}
		return env(ex.Name)
	case *UnaryExpr:
		v, err := evalExpr(ex.E, env)
		if err != nil {
			return Value{}, err
		}
		switch ex.Op {
		case "NOT":
			if v.Kind == KindNull {
				return NullValue(), nil
			}
			if v.Kind != KindBool {
				return Value{}, errors.New("sql: NOT of non-boolean")
			}
			return BoolValue(!v.B), nil
		case "-":
			switch v.Kind {
			case KindInt:
				return IntValue(-v.I), nil
			case KindFloat:
				return FloatValue(-v.F), nil
			case KindNull:
				return NullValue(), nil
			}
			return Value{}, errors.New("sql: unary minus of non-numeric")
		}
		return Value{}, fmt.Errorf("sql: unknown unary op %q", ex.Op)
	case *BinaryExpr:
		return evalBinary(ex, env)
	}
	return Value{}, fmt.Errorf("sql: unknown expression %T", e)
}

func evalBinary(ex *BinaryExpr, env func(string) (Value, error)) (Value, error) {
	// AND/OR short-circuit.
	if ex.Op == "AND" || ex.Op == "OR" {
		l, err := evalExpr(ex.L, env)
		if err != nil {
			return Value{}, err
		}
		lb := l.Kind == KindBool && l.B
		if ex.Op == "AND" && l.Kind == KindBool && !l.B {
			return BoolValue(false), nil
		}
		if ex.Op == "OR" && lb {
			return BoolValue(true), nil
		}
		r, err := evalExpr(ex.R, env)
		if err != nil {
			return Value{}, err
		}
		if l.Kind == KindNull || r.Kind == KindNull {
			return NullValue(), nil
		}
		if l.Kind != KindBool || r.Kind != KindBool {
			return Value{}, fmt.Errorf("sql: %s of non-boolean", ex.Op)
		}
		if ex.Op == "AND" {
			return BoolValue(l.B && r.B), nil
		}
		return BoolValue(l.B || r.B), nil
	}

	l, err := evalExpr(ex.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(ex.R, env)
	if err != nil {
		return Value{}, err
	}
	switch ex.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return NullValue(), nil // SQL three-valued logic
		}
		c, err := Compare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch ex.Op {
		case "=":
			return BoolValue(c == 0), nil
		case "!=":
			return BoolValue(c != 0), nil
		case "<":
			return BoolValue(c < 0), nil
		case "<=":
			return BoolValue(c <= 0), nil
		case ">":
			return BoolValue(c > 0), nil
		case ">=":
			return BoolValue(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return NullValue(), nil
		}
		if l.Kind == KindText || r.Kind == KindText {
			if ex.Op == "+" && l.Kind == KindText && r.Kind == KindText {
				return TextValue(l.S + r.S), nil
			}
			return Value{}, fmt.Errorf("sql: arithmetic on text")
		}
		if l.Kind == KindInt && r.Kind == KindInt {
			switch ex.Op {
			case "+":
				return IntValue(l.I + r.I), nil
			case "-":
				return IntValue(l.I - r.I), nil
			case "*":
				return IntValue(l.I * r.I), nil
			case "/":
				if r.I == 0 {
					return Value{}, errors.New("sql: division by zero")
				}
				return IntValue(l.I / r.I), nil
			}
		}
		lf, _ := l.asFloat()
		rf, _ := r.asFloat()
		switch ex.Op {
		case "+":
			return FloatValue(lf + rf), nil
		case "-":
			return FloatValue(lf - rf), nil
		case "*":
			return FloatValue(lf * rf), nil
		case "/":
			if rf == 0 {
				return Value{}, errors.New("sql: division by zero")
			}
			return FloatValue(lf / rf), nil
		}
	}
	return Value{}, fmt.Errorf("sql: unknown operator %q", ex.Op)
}
