package sqlengine

import (
	"errors"
	"testing"

	"socrates/internal/engine"
	"socrates/internal/fcb"
)

// newSharedEngine boots one engine for several tenant DBs to share.
func newSharedEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.Create(engine.Config{
		Pages: fcb.NewMemFile(),
		Log:   engine.NewMemPipeline(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Two tenants and the plain DB share one engine; identically named
// tables must not collide and must stay invisible across namespaces.
func TestTenantNamespaceIsolation(t *testing.T) {
	eng := newSharedEngine(t)
	a := NewTenant(eng, "alpha")
	b := NewTenant(eng, "beta")
	plain := New(eng)

	for _, db := range []*DB{a, b, plain} {
		mustExec(t, db, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	}
	mustExec(t, a, `INSERT INTO kv VALUES ('x', 'from-alpha')`)
	mustExec(t, b, `INSERT INTO kv VALUES ('x', 'from-beta')`)
	mustExec(t, plain, `INSERT INTO kv VALUES ('x', 'from-plain')`)

	for _, tc := range []struct {
		db   *DB
		want string
	}{{a, "from-alpha"}, {b, "from-beta"}, {plain, "from-plain"}} {
		res := mustExec(t, tc.db, `SELECT v FROM kv WHERE k = 'x'`)
		if len(res.Rows) != 1 || res.Rows[0][0].String() != tc.want {
			t.Fatalf("namespace bleed: got %v, want [%s]", rowsToStrings(res), tc.want)
		}
	}

	// A table created by one tenant does not exist for another.
	mustExec(t, a, `CREATE TABLE only_alpha (id INT PRIMARY KEY)`)
	if _, err := b.Exec(`SELECT * FROM only_alpha`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("tenant beta saw alpha's table: err=%v", err)
	}
	if _, err := plain.Exec(`SELECT * FROM only_alpha`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("plain DB saw alpha's table: err=%v", err)
	}
}

// SHOW TABLES lists only the namespace's own tables, with logical (not
// physical) names, and the plain DB hides tenant namespaces entirely.
func TestTenantShowTables(t *testing.T) {
	eng := newSharedEngine(t)
	a := NewTenant(eng, "alpha")
	plain := New(eng)

	mustExec(t, a, `CREATE TABLE orders (id INT PRIMARY KEY)`)
	mustExec(t, a, `CREATE TABLE items (id INT PRIMARY KEY)`)
	mustExec(t, plain, `CREATE TABLE host_table (id INT PRIMARY KEY)`)

	got := rowsToStrings(mustExec(t, a, `SHOW TABLES`))
	if len(got) != 2 || got[0] != "items" || got[1] != "orders" {
		t.Fatalf("tenant SHOW TABLES = %v, want [items orders]", got)
	}
	got = rowsToStrings(mustExec(t, plain, `SHOW TABLES`))
	if len(got) != 1 || got[0] != "host_table" {
		t.Fatalf("plain SHOW TABLES = %v, want [host_table]", got)
	}
}

// DROP TABLE stays inside the namespace.
func TestTenantDrop(t *testing.T) {
	eng := newSharedEngine(t)
	a := NewTenant(eng, "alpha")
	b := NewTenant(eng, "beta")
	mustExec(t, a, `CREATE TABLE shared_name (id INT PRIMARY KEY)`)
	mustExec(t, b, `CREATE TABLE shared_name (id INT PRIMARY KEY)`)
	mustExec(t, a, `DROP TABLE shared_name`)
	if _, err := a.Exec(`SELECT * FROM shared_name`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("alpha's drop did not take: %v", err)
	}
	mustExec(t, b, `INSERT INTO shared_name VALUES (1)`) // beta's survives
}
