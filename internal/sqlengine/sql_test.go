package sqlengine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"socrates/internal/engine"
	"socrates/internal/fcb"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	eng, err := engine.Create(engine.Config{
		Pages: fcb.NewMemFile(),
		Log:   engine.NewMemPipeline(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func rowsToStrings(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func setupUsers(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE users (id INT PRIMARY KEY, name TEXT, age INT, score FLOAT)`)
	mustExec(t, db, `INSERT INTO users VALUES
		(1, 'alice', 30, 91.5),
		(2, 'bob', 25, 82.0),
		(3, 'carol', 35, 75.25),
		(4, 'dave', 25, 60.0)`)
}

func TestCreateInsertSelect(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `SELECT * FROM users ORDER BY id`)
	if len(res.Rows) != 4 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	got := rowsToStrings(res)
	if got[0] != "1|alice|30|91.5" {
		t.Fatalf("row 0 = %q", got[0])
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `SELECT name, age * 2 AS doubled FROM users WHERE id = 2`)
	if res.Columns[0] != "name" || res.Columns[1] != "doubled" {
		t.Fatalf("cols = %v", res.Columns)
	}
	if got := rowsToStrings(res); len(got) != 1 || got[0] != "bob|50" {
		t.Fatalf("rows = %v", got)
	}
}

func TestWhereOperators(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	cases := []struct {
		where string
		want  int
	}{
		{"age = 25", 2},
		{"age != 25", 2},
		{"age > 25", 2},
		{"age >= 25", 4},
		{"age < 30", 2},
		{"age <= 30", 3},
		{"age = 25 AND score > 70", 1},
		{"age = 25 OR age = 30", 3},
		{"NOT age = 25", 2},
		{"name = 'alice'", 1},
		{"score > 80.0 AND age < 31", 2},
		{"(age = 25 OR age = 35) AND score < 80", 2},
	}
	for _, c := range cases {
		res := mustExec(t, db, "SELECT id FROM users WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `SELECT name FROM users ORDER BY score DESC LIMIT 2`)
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("rows = %v", got)
	}
	res = mustExec(t, db, `SELECT id FROM users ORDER BY age ASC LIMIT 10`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(age), AVG(score), MIN(name), MAX(age) FROM users`)
	row := res.Rows[0]
	if row[0].I != 4 {
		t.Fatalf("count = %v", row[0])
	}
	if row[1].F != 115 {
		t.Fatalf("sum = %v", row[1])
	}
	if row[2].F < 77.18 || row[2].F > 77.19 {
		t.Fatalf("avg = %v", row[2])
	}
	if row[3].S != "alice" {
		t.Fatalf("min = %v", row[3])
	}
	if row[4].I != 35 {
		t.Fatalf("max = %v", row[4])
	}
}

func TestAggregateWithWhereAndEmpty(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `SELECT COUNT(*) AS n FROM users WHERE age = 25`)
	if res.Columns[0] != "n" || res.Rows[0][0].I != 2 {
		t.Fatalf("res = %v %v", res.Columns, res.Rows)
	}
	res = mustExec(t, db, `SELECT SUM(age), AVG(age), MIN(age) FROM users WHERE age > 100`)
	for i, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Fatalf("aggregate %d over empty set = %v, want NULL", i, v)
		}
	}
}

func TestUpdate(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `UPDATE users SET age = age + 1 WHERE age = 25`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM users WHERE age = 26`)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("post-update count = %v", res.Rows[0][0])
	}
}

func TestUpdatePrimaryKey(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	mustExec(t, db, `UPDATE users SET id = 100 WHERE id = 1`)
	res := mustExec(t, db, `SELECT name FROM users WHERE id = 100`)
	if got := rowsToStrings(res); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("moved row = %v", got)
	}
	if res := mustExec(t, db, `SELECT * FROM users WHERE id = 1`); len(res.Rows) != 0 {
		t.Fatal("old key still present")
	}
	// PK collision on update is rejected.
	if _, err := db.Exec(`UPDATE users SET id = 2 WHERE id = 3`); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	res := mustExec(t, db, `DELETE FROM users WHERE age = 25`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM users`)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("remaining = %v", res.Rows[0][0])
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	if _, err := db.Exec(`INSERT INTO users VALUES (1, 'dup', 1, 1.0)`); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	mustExec(t, db, `INSERT INTO users (age, id, name) VALUES (40, 9, 'zed')`)
	res := mustExec(t, db, `SELECT name, age, score FROM users WHERE id = 9`)
	got := rowsToStrings(res)
	if got[0] != "zed|40|NULL" {
		t.Fatalf("row = %q", got[0])
	}
}

func TestTypeChecking(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	if _, err := db.Exec(`INSERT INTO users VALUES ('text-id', 'x', 1, 1.0)`); err == nil {
		t.Fatal("text into INT accepted")
	}
	if _, err := db.Exec(`INSERT INTO users VALUES (10, 42, 1, 1.0)`); err == nil {
		t.Fatal("int into TEXT accepted")
	}
	// INT into FLOAT coerces.
	mustExec(t, db, `INSERT INTO users VALUES (10, 'ok', 1, 5)`)
	if _, err := db.Exec(`INSERT INTO users VALUES (NULL, 'x', 1, 1.0)`); err == nil {
		t.Fatal("NULL primary key accepted")
	}
}

func TestExplicitTransaction(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	s := db.Session()
	mustSession := func(sql string) *Result {
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustSession("BEGIN")
	mustSession(`UPDATE users SET age = 99 WHERE id = 1`)
	// Own session sees the change; others do not.
	if res := mustSession(`SELECT age FROM users WHERE id = 1`); res.Rows[0][0].I != 99 {
		t.Fatal("own write invisible in tx")
	}
	if res := mustExec(t, db, `SELECT age FROM users WHERE id = 1`); res.Rows[0][0].I != 30 {
		t.Fatal("uncommitted write visible to other session")
	}
	mustSession("ROLLBACK")
	if res := mustExec(t, db, `SELECT age FROM users WHERE id = 1`); res.Rows[0][0].I != 30 {
		t.Fatal("rollback did not discard")
	}

	mustSession("BEGIN")
	mustSession(`UPDATE users SET age = 77 WHERE id = 1`)
	mustSession("COMMIT")
	if res := mustExec(t, db, `SELECT age FROM users WHERE id = 1`); res.Rows[0][0].I != 77 {
		t.Fatal("committed write lost")
	}
}

func TestTransactionErrors(t *testing.T) {
	db := newDB(t)
	s := db.Session()
	if _, err := s.Exec("COMMIT"); !errors.Is(err, ErrNoTx) {
		t.Fatalf("commit outside tx: %v", err)
	}
	if _, err := s.Exec("ROLLBACK"); !errors.Is(err, ErrNoTx) {
		t.Fatalf("rollback outside tx: %v", err)
	}
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("BEGIN"); !errors.Is(err, ErrTxOpen) {
		t.Fatalf("nested begin: %v", err)
	}
}

func TestShowTablesAndDrop(t *testing.T) {
	db := newDB(t)
	setupUsers(t, db)
	mustExec(t, db, `CREATE TABLE extra (k INT PRIMARY KEY)`)
	res := mustExec(t, db, `SHOW TABLES`)
	if got := rowsToStrings(res); len(got) != 2 || got[0] != "extra" || got[1] != "users" {
		t.Fatalf("tables = %v", got)
	}
	mustExec(t, db, `DROP TABLE extra`)
	if _, err := db.Exec(`SELECT * FROM extra`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("select from dropped: %v", err)
	}
	if _, err := db.Exec(`DROP TABLE ghost`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("drop missing: %v", err)
	}
}

func TestDDLValidation(t *testing.T) {
	db := newDB(t)
	bad := []string{
		`CREATE TABLE t (a INT, b INT)`,                         // no PK
		`CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)`, // two PKs
		`CREATE TABLE t (a INT PRIMARY KEY, a TEXT)`,            // dup col
		`CREATE TABLE __schema (a INT PRIMARY KEY)`,             // reserved
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%s: accepted", sql)
		}
	}
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`)
	if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY)`); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES (1",
		"CREATE TABLE t (a BADTYPE PRIMARY KEY)",
		"SELECT * FROM t LIMIT abc",
		"SELECT SUM(*) FROM t",
		"UPDATE t SET",
		"SELECT * FROM t; garbage",
		"'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%q: parsed without error", sql)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE q (id INT PRIMARY KEY, s TEXT)`)
	mustExec(t, db, `INSERT INTO q VALUES (1, 'it''s quoted')`)
	res := mustExec(t, db, `SELECT s FROM q WHERE id = 1`)
	if res.Rows[0][0].S != "it's quoted" {
		t.Fatalf("s = %q", res.Rows[0][0].S)
	}
}

func TestNullSemantics(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE n (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO n VALUES (1, 10), (2, NULL)`)
	// NULL never matches comparisons.
	res := mustExec(t, db, `SELECT id FROM n WHERE v = 10`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res = mustExec(t, db, `SELECT id FROM n WHERE v != 10`)
	if len(res.Rows) != 0 {
		t.Fatalf("NULL matched !=: %d rows", len(res.Rows))
	}
	// Aggregates skip NULLs.
	res = mustExec(t, db, `SELECT COUNT(v), COUNT(*) FROM n`)
	if res.Rows[0][0].I != 1 || res.Rows[0][1].I != 2 {
		t.Fatalf("counts = %v", res.Rows[0])
	}
}

func TestIntKeysOrderCorrectly(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE o (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO o VALUES (-5), (3), (-100), (0), (250), (7)`)
	res := mustExec(t, db, `SELECT id FROM o`)
	want := []string{"-100", "-5", "0", "3", "7", "250"}
	got := rowsToStrings(res)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan order = %v, want %v", got, want)
	}
}

func TestPointLookupUsesPKPlan(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE big (id INT PRIMARY KEY, v TEXT)`)
	s := db.Session()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO big VALUES (%d, 'v%d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, `SELECT v FROM big WHERE id = 321`)
	if got := rowsToStrings(res); len(got) != 1 || got[0] != "v321" {
		t.Fatalf("point lookup = %v", got)
	}
	// Also under AND.
	res = mustExec(t, db, `SELECT v FROM big WHERE id = 321 AND v = 'v321'`)
	if len(res.Rows) != 1 {
		t.Fatal("AND point lookup failed")
	}
	res = mustExec(t, db, `SELECT v FROM big WHERE id = 321 AND v = 'other'`)
	if len(res.Rows) != 0 {
		t.Fatal("residual filter ignored")
	}
}

func TestFloatAndNegativeLiterals(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE f (id INT PRIMARY KEY, x FLOAT)`)
	mustExec(t, db, `INSERT INTO f VALUES (1, -2.5), (2, 3.25)`)
	res := mustExec(t, db, `SELECT SUM(x) FROM f`)
	if res.Rows[0][0].F != 0.75 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT id FROM f WHERE x < -1`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("negative compare = %v", res.Rows)
	}
}

func TestDivisionByZero(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE d (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO d VALUES (1)`)
	if _, err := db.Exec(`SELECT id / 0 FROM d`); err == nil {
		t.Fatal("division by zero accepted")
	}
}

// Property: key encoding preserves INT order.
func TestKeyEncodingOrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ka, err1 := encodeKey(IntValue(a))
		kb, err2 := encodeKey(IntValue(b))
		if err1 != nil || err2 != nil {
			return false
		}
		cmp := strings.Compare(string(ka), string(kb))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: row codec round-trips arbitrary values.
func TestRowCodecProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, useNull bool) bool {
		vals := []Value{IntValue(i), FloatValue(fl), TextValue(s)}
		if useNull {
			vals = append(vals, NullValue())
		}
		got, err := decodeRow(encodeRow(vals), len(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for j := range vals {
			if got[j].Kind != vals[j].Kind {
				return false
			}
			switch vals[j].Kind {
			case KindInt:
				if got[j].I != vals[j].I {
					return false
				}
			case KindFloat:
				if got[j].F != vals[j].F && !(vals[j].F != vals[j].F) { // NaN
					return false
				}
			case KindText:
				if got[j].S != vals[j].S {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: key codec round-trips.
func TestKeyCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, s string) bool {
		ki, _ := encodeKey(IntValue(i))
		vi, err := decodeKey(ki)
		if err != nil || vi.I != i {
			return false
		}
		ks, _ := encodeKey(TextValue(s))
		vs, err := decodeKey(ks)
		return err == nil && vs.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRowInsertAndExpressionInValues(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, `CREATE TABLE m (id INT PRIMARY KEY, v INT)`)
	res := mustExec(t, db, `INSERT INTO m VALUES (1, 2 + 3), (2, 10 * 4), (3, -(5))`)
	if res.Affected != 3 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := rowsToStrings(mustExec(t, db, `SELECT v FROM m`))
	if fmt.Sprint(got) != "[5 40 -5]" {
		t.Fatalf("values = %v", got)
	}
}
