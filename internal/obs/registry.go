package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide table of named instruments. Names are
// dot-separated and tier-prefixed by convention
// ("pageserver.getpage.latency", "xlog.feed.blocks"), so snapshots can
// be grouped per tier. All methods are nil-safe and instruments are
// created on first use.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named latency histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram records durations into bounded exponential buckets:
// bucket i covers [2^i µs, 2^(i+1) µs), i in [0, histBuckets), with an
// underflow bucket for <1µs. Memory is O(1) regardless of sample count,
// unlike metrics.Histogram which retains every sample.
const histBuckets = 32 // 1µs .. ~4295s

type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets + 1]uint64 // [0] = underflow (<1µs)
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

func newHistogram() *Histogram { return &Histogram{} }

func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := 1 + int(math.Floor(math.Log2(float64(us))))
	if b > histBuckets {
		b = histBuckets
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// HistSummary is an exported view of a histogram.
type HistSummary struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

func bucketUpper(i int) time.Duration {
	if i == 0 {
		return time.Microsecond
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Summary exports count/sum/min/max and bucket-interpolated percentiles.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / time.Duration(h.count)
	pct := func(q float64) time.Duration {
		target := uint64(math.Ceil(q * float64(h.count)))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, n := range h.buckets {
			seen += n
			if seen >= target {
				up := bucketUpper(i)
				if up > h.max {
					up = h.max
				}
				return up
			}
		}
		return h.max
	}
	s.P50, s.P95, s.P99 = pct(0.50), pct(0.95), pct(0.99)
	return s
}

// HistBuckets is a cumulative-bucket export of a histogram: Uppers[i] is
// the inclusive upper bound of bucket i and Cumulative[i] counts every
// sample at or below it — exactly the shape a Prometheus histogram's
// `le`-labeled series needs.
type HistBuckets struct {
	Uppers     []time.Duration
	Cumulative []uint64
	Count      uint64
	Sum        time.Duration
}

// Buckets exports the histogram's cumulative buckets, skipping trailing
// empty buckets (the +Inf bucket is implied by Count).
func (h *Histogram) Buckets() HistBuckets {
	if h == nil {
		return HistBuckets{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Find the last occupied bucket so exports stay compact.
	last := -1
	for i, n := range h.buckets {
		if n > 0 {
			last = i
		}
	}
	out := HistBuckets{Count: h.count, Sum: h.sum}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.buckets[i]
		out.Uppers = append(out.Uppers, bucketUpper(i))
		out.Cumulative = append(out.Cumulative, cum)
	}
	return out
}

// Snapshot is a point-in-time export of every instrument in a registry.
type Snapshot struct {
	Taken      time.Time              `json:"taken"`
	Counters   map[string]uint64      `json:"counters,omitempty"`
	Gauges     map[string]int64       `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot exports all instruments.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Taken:      time.Now(),
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Summary()
	}
	return snap
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Names returns the sorted union of instrument names in the snapshot.
func (s Snapshot) Names() []string {
	set := map[string]bool{}
	for k := range s.Counters {
		set[k] = true
	}
	for k := range s.Gauges {
		set[k] = true
	}
	for k := range s.Histograms {
		set[k] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
