// Package obs is the observability spine of the repo: a zero-dependency
// tracing and metrics subsystem modeled on what Socrates' §7 evaluation
// needs — cross-tier latency breakdowns (commit time split across the
// landing zone, XLOG dissemination, and page-server apply; GetPage@LSN
// split across RBPEX miss, RBIO round-trip, and page-server read).
//
// The design is deliberately small:
//
//   - A Span is a named interval with a tier label, parent link, and
//     free-form attributes. Spans form trees keyed by TraceID.
//   - A Tracer owns bounded per-trace storage; finished spans are
//     retrievable as a tree (Trace) or flat list.
//   - SpanContext (TraceID, SpanID) travels inside context.Context and —
//     across process-shaped boundaries — inside RBIO v2 frame headers.
//   - A Registry holds named counters, gauges, and bounded
//     exponential-bucket histograms that every tier registers into.
//
// All types are nil-safe: a nil *Tracer, *Span, or *Registry accepts the
// full method set and does nothing, so code paths constructed without
// observability wiring (most unit tests) pay nothing and need no guards.
package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tier labels used across the repo. Spans and metrics are namespaced by
// these so exports can be grouped per tier (§2 of the paper: compute,
// XLOG, page servers, XStore; the landing zone is called out separately
// because commit latency is dominated by it).
const (
	TierCompute    = "compute"
	TierLZ         = "lz"
	TierXLOG       = "xlog"
	TierPageServer = "pageserver"
	TierXStore     = "xstore"
	TierFrontdoor  = "frontdoor"
)

// TraceID identifies one request tree (one commit, one GetPage@LSN, ...).
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// SpanContext is the wire-size identity of a span: what RBIO v2 carries
// in its frame header and what context.Context carries between tiers.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

type ctxKey struct{}

// spanPtrKey carries the innermost live *Span (set by StartSpan) so
// WaitPoints can attach waits to the span that blocked. It rides beside
// the identity key: wire boundaries propagate only the identity, so a
// remote tier never sees a foreign process's pointer.
type spanPtrKey struct{}

// ContextWithSpan returns ctx carrying sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// activeSpan extracts the innermost live span started in-process (nil if
// the context carries only a wire identity, or nothing).
func activeSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanPtrKey{}).(*Span)
	return s
}

// SpanFromContext extracts the span identity from ctx (zero if absent).
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Span is one recorded interval. Fields are written only by the owning
// goroutine until End, after which the span is immutable and owned by
// the tracer.
type Span struct {
	tracer *Tracer

	Trace    TraceID
	ID       SpanID
	Parent   SpanID
	Name     string
	Tier     string
	Start    time.Time
	Duration time.Duration
	Attrs    map[string]string

	mu    sync.Mutex
	ended bool

	// Wait attribution: accumulated under mu until End, immutable after.
	// Fixed arrays keep RecordWait allocation-free on hot paths.
	waitCounts [numWaitClasses]uint32
	waitNS     [numWaitClasses]uint64
	hasWaits   bool
}

// Context returns the span's identity for propagation.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.Trace, SpanID: s.ID}
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.Attrs == nil {
			s.Attrs = make(map[string]string, 4)
		}
		s.Attrs[key] = value
	}
	s.mu.Unlock()
}

// RecordWait attributes one wait of class c to the span. WaitPoints call
// it through the context's active span; waits arriving after End are
// dropped (the span is already immutable in the tracer).
//
//socrates:hotpath runs under every WaitPoint on a traced path; must stay allocation-free
func (s *Span) RecordWait(c WaitClass, d time.Duration) {
	if s == nil || int(c) >= numWaitClasses {
		return
	}
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	if !s.ended {
		s.waitCounts[c]++
		s.waitNS[c] += uint64(d)
		s.hasWaits = true
	}
	s.mu.Unlock()
}

// WaitBreakdown exports the span's own (non-child) waits sorted by
// descending total. Valid once the span has ended.
func (s *Span) WaitBreakdown() []WaitClassStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasWaits {
		return nil
	}
	out := make([]WaitClassStat, 0, 4)
	for i, n := range s.waitCounts {
		if n == 0 {
			continue
		}
		out = append(out, WaitClassStat{
			Class:   WaitClass(i).String(),
			Count:   uint64(n),
			TotalNS: s.waitNS[i],
		})
	}
	return sortByTotal(out)
}

// SetError records err on the span (no-op for nil err).
func (s *Span) SetError(err error) {
	if err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// End finishes the span with wall-clock duration and hands it to the
// tracer. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndWith(time.Since(s.Start))
}

// EndWith finishes the span attributing the given duration — used when
// the interesting time is simulated-device time rather than wall clock.
func (s *Span) EndWith(d time.Duration) {
	if s == nil || s.tracer == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if d < 0 {
		d = 0
	}
	s.Duration = d
	s.mu.Unlock()
	s.tracer.record(s)
}

// Tracer collects finished spans into bounded per-trace storage. The
// zero value is NOT usable; call NewTracer. A nil *Tracer is a valid
// no-op sink.
type Tracer struct {
	mu        sync.Mutex
	traces    map[TraceID][]*Span
	order     []TraceID // insertion order for eviction
	maxTraces int
	maxSpans  int // per trace
	nextID    atomic.Uint64
	rng       func() uint64
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithMaxTraces bounds how many distinct traces are retained (oldest
// evicted first). Default 256.
func WithMaxTraces(n int) TracerOption { return func(t *Tracer) { t.maxTraces = n } }

// WithMaxSpans bounds how many spans one trace retains. Default 512.
func WithMaxSpans(n int) TracerOption { return func(t *Tracer) { t.maxSpans = n } }

// NewTracer builds an empty tracer.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{
		traces:    make(map[TraceID][]*Span),
		maxTraces: 256,
		maxSpans:  512,
		rng:       rand.Uint64,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

func (t *Tracer) newSpanID() SpanID {
	return SpanID(t.nextID.Add(1))
}

// StartSpan begins a span named name in the given tier. If ctx already
// carries a span identity the new span becomes its child and shares the
// trace; otherwise a fresh trace is started. The returned context
// carries the new span's identity.
func (t *Tracer) StartSpan(ctx context.Context, tier, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent := SpanFromContext(ctx)
	s := &Span{
		tracer: t,
		Name:   name,
		Tier:   tier,
		Start:  time.Now(),
		ID:     t.newSpanID(),
	}
	if parent.Valid() {
		s.Trace = parent.TraceID
		s.Parent = parent.SpanID
	} else {
		id := t.rng()
		if id == 0 {
			id = 1
		}
		s.Trace = TraceID(id)
	}
	ctx = ContextWithSpan(ctx, s.Context())
	return context.WithValue(ctx, spanPtrKey{}, s), s
}

// JoinSpan starts a span only when ctx already carries trace identity;
// otherwise it returns ctx unchanged and a nil span (all Span methods
// are nil-safe). Interior tiers use it so continuous background traffic
// — log feeds, consumer pulls, untraced benchmark commits — cannot root
// fresh traces and flood the retention ring. Traces root at the request
// entry point (or an explicit caller span), nowhere else.
func (t *Tracer) JoinSpan(ctx context.Context, tier, name string) (context.Context, *Span) {
	if t == nil || !SpanFromContext(ctx).Valid() {
		return ctx, nil
	}
	return t.StartSpan(ctx, tier, name)
}

// StartRemoteSpan begins a span whose parent identity arrived over the
// wire (an RBIO v2 header) rather than through a context.
func (t *Tracer) StartRemoteSpan(parent SpanContext, tier, name string) (context.Context, *Span) {
	if t == nil {
		return context.Background(), nil
	}
	return t.StartSpan(ContextWithSpan(context.Background(), parent), tier, name)
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans, ok := t.traces[s.Trace]
	if !ok {
		if len(t.order) >= t.maxTraces {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
		}
		t.order = append(t.order, s.Trace)
	}
	if len(spans) < t.maxSpans {
		t.traces[s.Trace] = append(spans, s)
	} else {
		t.traces[s.Trace] = spans // trace over budget: drop span
	}
}

// Spans returns the finished spans of a trace in completion order.
func (t *Tracer) Spans(id TraceID) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.traces[id]...)
}

// TraceIDs returns the retained trace IDs, oldest first.
func (t *Tracer) TraceIDs() []TraceID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceID(nil), t.order...)
}

// SpanNode is one node of an exported span tree.
type SpanNode struct {
	Name     string            `json:"name"`
	Tier     string            `json:"tier"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Waits    []WaitClassStat   `json:"waits,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// WaitTotals sums the wait time by class over the subtree rooted at n —
// the per-request wait breakdown of a whole traced operation.
func (n *SpanNode) WaitTotals() map[string]time.Duration {
	out := map[string]time.Duration{}
	var walk func(*SpanNode)
	walk = func(m *SpanNode) {
		if m == nil {
			return
		}
		for _, w := range m.Waits {
			out[w.Class] += time.Duration(w.TotalNS)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// FindSpan returns the first node named name in a pre-order walk of the
// subtree (nil if absent).
func (n *SpanNode) FindSpan(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.FindSpan(name); m != nil {
			return m
		}
	}
	return nil
}

// Tiers returns the distinct tier labels present in the subtree rooted
// at n, sorted.
func (n *SpanNode) Tiers() []string {
	set := map[string]bool{}
	var walk func(*SpanNode)
	walk = func(m *SpanNode) {
		if m == nil {
			return
		}
		if m.Tier != "" {
			set[m.Tier] = true
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Trace assembles the span tree for a trace ID. Spans whose parent was
// not retained (evicted, or still running) surface as additional roots;
// when a trace has several roots they are joined under a synthetic
// "trace" node so callers always get one tree.
func (t *Tracer) Trace(id TraceID) *SpanNode {
	spans := t.Spans(id)
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{
			Name: s.Name, Tier: s.Tier, Start: s.Start,
			Duration: s.Duration, Attrs: s.Attrs,
			Waits: s.WaitBreakdown(),
		}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	if len(roots) == 1 {
		return roots[0]
	}
	return &SpanNode{Name: "trace", Start: roots[0].Start, Children: roots}
}

// Format renders the subtree rooted at n as indented text; see Format.
// It is nil-safe and returns "" for a nil node.
func (n *SpanNode) Format() string { return Format(n) }

// Format renders a span tree as indented text, one span per line:
//
//	commit.exec [compute] 1.2ms
//	  lz.write [lz] 600µs
func Format(n *SpanNode) string {
	var b strings.Builder
	var walk func(*SpanNode, int)
	walk = func(m *SpanNode, depth int) {
		if m == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s [%s] %v", m.Name, m.Tier, m.Duration)
		for _, w := range m.Waits {
			fmt.Fprintf(&b, " wait:%s=%v", w.Class, time.Duration(w.TotalNS))
		}
		if len(m.Attrs) > 0 {
			keys := make([]string, 0, len(m.Attrs))
			for k := range m.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, m.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range m.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
