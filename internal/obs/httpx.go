package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// PlaneOptions names the instruments an HTTP observability plane exposes.
// Any field may be nil; the corresponding endpoint degrades to an empty
// (but well-formed) response.
type PlaneOptions struct {
	Registry   *Registry
	Watermarks *WatermarkSet
	Flight     *FlightRecorder
	Tracer     *Tracer
	Watchdog   *Watchdog
	Waits      *WaitSet
}

// WatermarkReport is the /watermarks JSON document: the LSN ladder, the
// derived lags, and any watchdog trips so far.
type WatermarkReport struct {
	Taken      time.Time         `json:"taken"`
	Watermarks []WatermarkState  `json:"watermarks"`
	Lags       map[string]uint64 `json:"lags,omitempty"`
	Trips      []Trip            `json:"trips,omitempty"`
}

// LadderLags derives the standard lag view from the current watermark
// values: singleton rungs by name, per-replica rungs keyed name/replica.
func (s *WatermarkSet) LadderLags() map[string]uint64 {
	if s == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, edge := range ladder {
		leader := s.Watermark(edge.leader, "").Value()
		replicas := []string{""}
		if edge.perReplica {
			replicas = s.Replicas(edge.follower)
		}
		for _, rep := range replicas {
			cur := s.Watermark(edge.follower, rep).Value()
			var lag uint64
			if leader > cur {
				lag = leader - cur
			}
			out[lagName(edge.follower, rep)] = lag
		}
	}
	return out
}

func lagName(follower, replica string) string {
	name := follower
	switch follower {
	case WMHardened:
		name = "lz.harden_lag_lsn"
	case WMPromoted:
		name = "xlog.promote_lag_lsn"
	case WMDestaged:
		name = "xlog.destage_lag_lsn"
	case WMApplied:
		name = "pageserver.apply_lag_lsn"
	case WMSecondary:
		name = "compute.apply_lag_lsn"
	}
	return key(name, replica)
}

// NewHTTPHandler builds the observability mux:
//
//	/metrics       Prometheus text: counters, gauges, histogram buckets,
//	               and the watermark ladder
//	/metrics.json  the raw registry snapshot (what socrates-top -addr polls)
//	/watermarks    the LSN ladder + derived lags + watchdog trips (JSON)
//	/flight        the flight-recorder ring as time-ordered JSONL
//	/traces        retained trace IDs; /traces?id=N renders one span tree
//	/debug/pprof/  the standard Go profiling endpoints
func NewHTTPHandler(o PlaneOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//socrates:ignore-err exposition write errors mean the scraper hung up; nothing to recover
		_ = o.Registry.WritePrometheus(w)
		//socrates:ignore-err exposition write errors mean the scraper hung up; nothing to recover
		_ = WritePrometheusWatermarks(w, o.Watermarks)
		//socrates:ignore-err exposition write errors mean the scraper hung up; nothing to recover
		_ = WritePrometheusWaits(w, o.Waits)
	})

	mux.HandleFunc("/waits", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			//socrates:ignore-err exposition write errors mean the scraper hung up; nothing to recover
			_ = WritePrometheusWaits(w, o.Waits)
			return
		}
		writeJSON(w, o.Waits.Report())
	})

	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, o.Registry.Snapshot())
	})

	mux.HandleFunc("/watermarks", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, WatermarkReport{
			Taken:      time.Now(),
			Watermarks: o.Watermarks.Snapshot(),
			Lags:       o.Watermarks.LadderLags(),
			Trips:      o.Watchdog.Trips(),
		})
	})

	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		//socrates:ignore-err exposition write errors mean the scraper hung up; nothing to recover
		_ = o.Flight.Dump(w)
	})

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			node := o.Tracer.Trace(TraceID(id))
			if node == nil {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			writeJSON(w, node)
			return
		}
		writeJSON(w, o.Tracer.TraceIDs())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "socrates observability plane\n"+
			"  /metrics       prometheus text (counters, gauges, histograms, watermarks, waits)\n"+
			"  /metrics.json  raw registry snapshot\n"+
			"  /watermarks    LSN ladder + lags + watchdog trips\n"+
			"  /waits         wait-class sketches, global + per tier (JSON; ?format=prom)\n"+
			"  /flight        flight-recorder ring (JSONL)\n"+
			"  /traces        trace IDs; ?id=N for one span tree\n"+
			"  /debug/pprof/  Go profiling\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//socrates:ignore-err exposition write errors mean the scraper hung up; nothing to recover
	_ = enc.Encode(v)
}

// HTTPServer is a running observability listener.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for the handler on addr (":0" picks a free
// port; read the bound address back with Addr).
func Serve(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() {
		//socrates:ignore-err http.Serve returns ErrServerClosed on Close; real accept errors end the listener, which Close surfaces
		_ = srv.Serve(ln)
	}()
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address.
func (s *HTTPServer) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *HTTPServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
