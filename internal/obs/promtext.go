package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the registry and the
// watermark ladder. Zero-dependency by design, like the rest of the obs
// package: the format is a few lines of text framing per instrument.
//
// Naming: instrument names are dot-separated ("lz.write.latency"); the
// exposition prefixes "socrates_" and maps dots to underscores, so the
// histogram above exports as socrates_lz_write_latency_seconds with
// cumulative le-labeled buckets.

// promName maps an instrument name to a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("socrates_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects.
func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders every instrument in the registry: counters and
// gauges as single series, histograms as cumulative le-bucket families
// with _sum and _count (bucket bounds in seconds).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r != nil {
		r.mu.Lock()
		counts := make(map[string]*Counter, len(r.counts))
		for name, c := range r.counts {
			counts[name] = c
		}
		gauges := make(map[string]*Gauge, len(r.gauges))
		for name, g := range r.gauges {
			gauges[name] = g
		}
		hists := make(map[string]*Histogram, len(r.hists))
		for name, h := range r.hists {
			hists[name] = h
		}
		r.mu.Unlock()

		for _, name := range sortedKeys(counts) {
			pn := promName(name)
			fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
			fmt.Fprintf(bw, "%s %d\n", pn, counts[name].Value())
		}
		for _, name := range sortedKeys(gauges) {
			pn := promName(name)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
			fmt.Fprintf(bw, "%s %d\n", pn, gauges[name].Value())
		}
		for _, name := range sortedKeys(hists) {
			pn := promName(name) + "_seconds"
			b := hists[name].Buckets()
			fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
			for i, up := range b.Uppers {
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(up.Seconds()), b.Cumulative[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, b.Count)
			fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(b.Sum.Seconds()))
			fmt.Fprintf(bw, "%s_count %d\n", pn, b.Count)
		}
	}
	return bw.Flush()
}

// WritePrometheusWatermarks renders the LSN ladder as one gauge family,
// labeled by watermark name and replica:
//
//	socrates_watermark_lsn{name="lz.hardened_lsn",replica=""} 4127
func WritePrometheusWatermarks(w io.Writer, ws *WatermarkSet) error {
	bw := bufio.NewWriter(w)
	if ws != nil {
		states := ws.Snapshot()
		if len(states) > 0 {
			fmt.Fprint(bw, "# TYPE socrates_watermark_lsn gauge\n")
			for _, st := range states {
				fmt.Fprintf(bw, "socrates_watermark_lsn{name=%q,replica=%q} %d\n",
					st.Name, st.Replica, st.LSN)
			}
		}
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
