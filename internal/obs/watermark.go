package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Socrates' health is legible as a ladder of LSN watermarks (§2, §4.3):
// the primary's commit frontier, the landing zone's hardened prefix, the
// XLOG service's promotion and destaging frontiers, each page server's
// applied LSN, and the XStore archive end. Every invariant the paper
// states about durability-before-availability is a relation between two
// rungs of this ladder, so the observability plane tracks all of them in
// one lock-cheap structure and derives lag gauges + stall detection on
// top.
//
// Canonical watermark names (the "five LSN watermarks" of the ladder,
// plus per-replica apply/checkpoint progress):
const (
	// WMCommit is the primary's commit frontier: the LSN of the last
	// appended commit record (durability not yet implied).
	WMCommit = "compute.commit_lsn"
	// WMHardened is the landing zone's durable prefix end (LZ quorum).
	WMHardened = "lz.hardened_lsn"
	// WMPromoted is the XLOG dissemination frontier: blocks below it are
	// visible to consumers.
	WMPromoted = "xlog.promoted_lsn"
	// WMDestaged is the XLOG destaging frontier: blocks below it are in
	// the SSD block cache and the long-term archive.
	WMDestaged = "xlog.destaged_lsn"
	// WMArchived is the XStore long-term archive end (equals the
	// destaging frontier after a successful LT append).
	WMArchived = "xstore.archived_lsn"
	// WMTruncated is the landing-zone truncation point: ring space below
	// it has been released.
	WMTruncated = "lz.truncated_lsn"
	// WMApplied is a page server's apply watermark (per replica).
	WMApplied = "pageserver.applied_lsn"
	// WMCheckpoint is a page server's persisted checkpoint resume LSN
	// (per replica).
	WMCheckpoint = "pageserver.ckpt_lsn"
	// WMSecondary is a secondary compute node's apply watermark (per
	// replica).
	WMSecondary = "compute.applied_lsn"
)

// Watermark is one rung of the ladder: a monotone LSN gauge plus the
// wall-clock instant of its last advance. Publication is a pair of atomic
// stores — safe from any tier's hot path. All methods are nil-safe.
type Watermark struct {
	name    string
	replica string
	lsn     atomic.Uint64
	atNanos atomic.Int64
}

// Name reports the watermark's canonical name.
func (w *Watermark) Name() string {
	if w == nil {
		return ""
	}
	return w.name
}

// Replica reports the replica label ("" for singleton watermarks).
func (w *Watermark) Replica() string {
	if w == nil {
		return ""
	}
	return w.replica
}

// Publish advances the watermark to lsn (monotone max) and stamps the
// advance time. Stale publishes are no-ops, so out-of-order reporters
// (concurrent harden reports, racing apply batches) need no coordination.
func (w *Watermark) Publish(lsn uint64) {
	if w == nil {
		return
	}
	for {
		cur := w.lsn.Load()
		if lsn <= cur {
			return
		}
		if w.lsn.CompareAndSwap(cur, lsn) {
			w.atNanos.Store(time.Now().UnixNano())
			return
		}
	}
}

// Value reads the watermark LSN.
func (w *Watermark) Value() uint64 {
	if w == nil {
		return 0
	}
	return w.lsn.Load()
}

// UpdatedAt reports when the watermark last advanced (zero time if never).
func (w *Watermark) UpdatedAt() time.Time {
	if w == nil {
		return time.Time{}
	}
	ns := w.atNanos.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// commitStampRing maps recent commit LSNs to the wall-clock instant they
// were appended, so follower lag can be expressed in milliseconds: "the
// oldest commit this replica has not applied was cut N ms ago". Fixed
// size, mutex-guarded (one short critical section per commit — noise next
// to the quorum write the commit is about to pay for).
const commitStampSlots = 1024

type commitStamp struct {
	lsn uint64
	at  int64 // unix nanos
}

// WatermarkSet is the per-deployment table of watermarks. Lookup is a
// read-locked map access; hot paths resolve their *Watermark once and
// publish through the atomic. All methods are nil-safe.
type WatermarkSet struct {
	mu  sync.RWMutex
	wms map[string]*Watermark

	stampMu    sync.Mutex
	stamps     [commitStampSlots]commitStamp
	stampCount uint64
}

// NewWatermarkSet builds an empty set.
func NewWatermarkSet() *WatermarkSet {
	return &WatermarkSet{wms: make(map[string]*Watermark)}
}

func key(name, replica string) string {
	if replica == "" {
		return name
	}
	return name + "/" + replica
}

// Watermark returns (creating if needed) the named watermark. The replica
// label distinguishes instances of per-replica rungs (page servers,
// secondaries); pass "" for singleton rungs.
func (s *WatermarkSet) Watermark(name, replica string) *Watermark {
	if s == nil {
		return nil
	}
	k := key(name, replica)
	s.mu.RLock()
	w, ok := s.wms[k]
	s.mu.RUnlock()
	if ok {
		return w
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok = s.wms[k]; ok {
		return w
	}
	w = &Watermark{name: name, replica: replica}
	s.wms[k] = w
	return w
}

// PublishCommit advances the commit watermark and records an LSN →
// wall-clock stamp so downstream lag can be reported in time domain.
func (s *WatermarkSet) PublishCommit(lsn uint64) {
	if s == nil {
		return
	}
	s.Watermark(WMCommit, "").Publish(lsn)
	now := time.Now().UnixNano()
	s.stampMu.Lock()
	s.stamps[s.stampCount%commitStampSlots] = commitStamp{lsn: lsn, at: now}
	s.stampCount++
	s.stampMu.Unlock()
}

// TimeLag reports how long ago the oldest commit above appliedLSN was
// stamped — the time-domain replication lag of a follower whose watermark
// sits at appliedLSN. Zero when the follower has applied every stamped
// commit (or no commits are stamped yet).
func (s *WatermarkSet) TimeLag(appliedLSN uint64, now time.Time) time.Duration {
	if s == nil {
		return 0
	}
	s.stampMu.Lock()
	defer s.stampMu.Unlock()
	n := s.stampCount
	if n > commitStampSlots {
		n = commitStampSlots
	}
	oldest := int64(0)
	for i := uint64(0); i < n; i++ {
		st := s.stamps[i]
		if st.lsn > appliedLSN && (oldest == 0 || st.at < oldest) {
			oldest = st.at
		}
	}
	if oldest == 0 {
		return 0
	}
	lag := now.UnixNano() - oldest
	if lag < 0 {
		return 0
	}
	return time.Duration(lag)
}

// WatermarkState is an exported view of one watermark.
type WatermarkState struct {
	Name      string    `json:"name"`
	Replica   string    `json:"replica,omitempty"`
	LSN       uint64    `json:"lsn"`
	UpdatedAt time.Time `json:"updated_at"`
}

// Snapshot exports every watermark, sorted by name then replica.
func (s *WatermarkSet) Snapshot() []WatermarkState {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]WatermarkState, 0, len(s.wms))
	for _, w := range s.wms {
		out = append(out, WatermarkState{
			Name: w.name, Replica: w.replica,
			LSN: w.Value(), UpdatedAt: w.UpdatedAt(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

// Replicas lists the replica labels registered under a per-replica
// watermark name, sorted.
func (s *WatermarkSet) Replicas(name string) []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	var out []string
	for _, w := range s.wms {
		if w.name == name {
			out = append(out, w.replica)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// --- watchdog ---

// TripKind classifies a watchdog firing.
type TripKind string

// Trip kinds: a follower too far behind its leader, or a follower that
// stopped advancing entirely while the leader kept moving.
const (
	TripLag   TripKind = "lag"
	TripStall TripKind = "stall"
)

// Trip is one watchdog firing.
type Trip struct {
	At       time.Time     `json:"at"`
	Kind     TripKind      `json:"kind"`
	Follower string        `json:"follower"` // name[/replica]
	Leader   string        `json:"leader"`
	LagLSN   uint64        `json:"lag_lsn"`
	LagTime  time.Duration `json:"lag_ns"`
	Detail   string        `json:"detail,omitempty"`
	// TopWaits freezes the top-3 wait classes by total time accumulated
	// over the trip window (the last StallTicks watchdog ticks), turning
	// "replica lag tripped" into "replica lag tripped, 92% of the window
	// waiting on page.remote". Count and TotalNS are window deltas; MaxNS
	// is the class's cumulative maximum. Empty when no WaitSet is wired.
	TopWaits []WaitClassStat `json:"top_waits,omitempty"`
}

// WatchdogConfig tunes the lag watchdog.
type WatchdogConfig struct {
	// Interval is the tick cadence (default 25ms).
	Interval time.Duration
	// MaxLagLSN trips when a follower is more than this many LSNs behind
	// its leader (default 50000; 0 keeps the default, -1 disables).
	MaxLagLSN int64
	// StallTicks trips when a follower is behind its leader and has not
	// advanced for this many consecutive ticks (default 8).
	StallTicks int
}

func (c *WatchdogConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.MaxLagLSN == 0 {
		c.MaxLagLSN = 50000
	}
	if c.StallTicks <= 0 {
		c.StallTicks = 8
	}
}

// ladderEdge is one leader→follower relation the watchdog monitors. The
// Socrates ladder is fixed by the architecture; per-replica followers
// (page servers, secondaries) are discovered dynamically each tick.
type ladderEdge struct {
	leader     string
	follower   string
	perReplica bool
}

var ladder = []ladderEdge{
	{leader: WMCommit, follower: WMHardened},
	{leader: WMHardened, follower: WMPromoted},
	{leader: WMPromoted, follower: WMDestaged},
	{leader: WMPromoted, follower: WMApplied, perReplica: true},
	{leader: WMPromoted, follower: WMSecondary, perReplica: true},
}

// followerState is the watchdog's per-follower edge-trigger memory.
type followerState struct {
	lastLSN    uint64
	stallTicks int
	tripped    bool
}

// Watchdog periodically derives lag gauges from the watermark ladder and
// fires registered callbacks when a follower exceeds the lag threshold or
// stops advancing (stall detection). Trips are edge-triggered: a follower
// fires once per excursion and re-arms when it catches up.
type Watchdog struct {
	ws  *WatermarkSet
	reg *Registry
	cfg WatchdogConfig

	mu        sync.Mutex
	state     map[string]*followerState
	trips     []Trip
	callbacks []func(Trip)

	// Wait-freeze machinery: waits is the deployment's wait-accounting
	// table (SetWaitSet); waitRing holds the last StallTicks global
	// snapshots so a trip can report the top wait classes over its
	// window. The ring is touched only from the tick path.
	waits    *WaitSet
	waitRing []waitSnap

	tripCount atomic.Uint64
	done      chan struct{}
	wg        sync.WaitGroup
	started   bool
}

// waitSnap is one tick's copy of the global wait sketch.
type waitSnap struct {
	counts [numWaitClasses]uint64
	totals [numWaitClasses]uint64
}

// NewWatchdog builds a watchdog over the given watermark set, publishing
// derived lag gauges into reg (nil disables gauge publication).
func NewWatchdog(ws *WatermarkSet, reg *Registry, cfg WatchdogConfig) *Watchdog {
	cfg.defaults()
	return &Watchdog{
		ws: ws, reg: reg, cfg: cfg,
		state: make(map[string]*followerState),
		done:  make(chan struct{}),
	}
}

// SetWaitSet wires the deployment's wait-accounting table so trips can
// freeze the top wait classes over their window. Call before Start.
func (d *Watchdog) SetWaitSet(ws *WaitSet) {
	if d == nil {
		return
	}
	d.waits = ws
}

// captureWaitSnap copies the global wait sketch.
func (d *Watchdog) captureWaitSnap() waitSnap {
	var snap waitSnap
	g := d.waits.Global()
	if g == nil {
		return snap
	}
	for i := range g.slots {
		snap.counts[i] = g.slots[i].count.Load()
		snap.totals[i] = g.slots[i].total.Load()
	}
	return snap
}

// topWaits computes the top-3 wait classes by total time accumulated
// between the oldest retained tick snapshot and now.
func (d *Watchdog) topWaits() []WaitClassStat {
	if d.waits == nil {
		return nil
	}
	now := d.captureWaitSnap()
	var base waitSnap
	if len(d.waitRing) > 0 {
		base = d.waitRing[0]
	}
	g := d.waits.Global()
	out := make([]WaitClassStat, 0, numWaitClasses)
	for i := range now.totals {
		dt := now.totals[i] - base.totals[i]
		dc := now.counts[i] - base.counts[i]
		if dt == 0 && dc == 0 {
			continue
		}
		out = append(out, WaitClassStat{
			Class:   WaitClass(i).String(),
			Count:   dc,
			TotalNS: dt,
			MaxNS:   g.slots[i].max.Load(),
		})
	}
	out = sortByTotal(out)
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}

// pushWaitSnap appends this tick's snapshot, keeping StallTicks of
// history — the trip window.
func (d *Watchdog) pushWaitSnap() {
	if d.waits == nil {
		return
	}
	d.waitRing = append(d.waitRing, d.captureWaitSnap())
	if n := d.cfg.StallTicks; len(d.waitRing) > n {
		d.waitRing = d.waitRing[len(d.waitRing)-n:]
	}
}

// OnTrip registers a callback fired (from the watchdog goroutine) on every
// trip. Register before Start, or accept missing early trips.
func (d *Watchdog) OnTrip(fn func(Trip)) {
	if d == nil || fn == nil {
		return
	}
	d.mu.Lock()
	d.callbacks = append(d.callbacks, fn)
	d.mu.Unlock()
}

// Start launches the watchdog goroutine. Idempotent.
func (d *Watchdog) Start() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.wg.Add(1)
	go d.loop()
}

// Stop halts the watchdog. Idempotent.
func (d *Watchdog) Stop() {
	if d == nil {
		return
	}
	select {
	case <-d.done:
		return
	default:
	}
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	close(d.done)
	if started {
		d.wg.Wait()
	}
}

// TripCount reports how many times the watchdog has fired.
func (d *Watchdog) TripCount() uint64 {
	if d == nil {
		return 0
	}
	return d.tripCount.Load()
}

// Trips returns the recorded trips, oldest first.
func (d *Watchdog) Trips() []Trip {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Trip(nil), d.trips...)
}

func (d *Watchdog) loop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			d.Tick()
		}
	}
}

// Tick runs one watchdog evaluation (exported for deterministic tests; the
// background loop calls it on every interval).
func (d *Watchdog) Tick() {
	if d == nil || d.ws == nil {
		return
	}
	now := time.Now()
	var maxApplyLagLSN, maxSecLagLSN uint64
	var maxApplyLagTime time.Duration
	for _, edge := range ladder {
		replicas := []string{""}
		if edge.perReplica {
			replicas = d.ws.Replicas(edge.follower)
		}
		leader := d.ws.Watermark(edge.leader, "").Value()
		for _, rep := range replicas {
			follower := d.ws.Watermark(edge.follower, rep)
			cur := follower.Value()
			var lag uint64
			if leader > cur {
				lag = leader - cur
			}
			switch edge.follower {
			case WMApplied:
				if lag > maxApplyLagLSN {
					maxApplyLagLSN = lag
				}
				if t := d.ws.TimeLag(cur, now); t > maxApplyLagTime {
					maxApplyLagTime = t
				}
			case WMSecondary:
				if lag > maxSecLagLSN {
					maxSecLagLSN = lag
				}
			}
			d.evaluate(edge, rep, cur, leader, lag, now)
		}
	}
	if d.reg != nil {
		c := d.ws.Watermark(WMCommit, "").Value()
		h := d.ws.Watermark(WMHardened, "").Value()
		p := d.ws.Watermark(WMPromoted, "").Value()
		ds := d.ws.Watermark(WMDestaged, "").Value()
		d.reg.Gauge("lz.harden_lag_lsn").Set(clampLag(c, h))
		d.reg.Gauge("xlog.promote_lag_lsn").Set(clampLag(h, p))
		d.reg.Gauge("xlog.destage_lag_lsn").Set(clampLag(p, ds))
		d.reg.Gauge("pageserver.apply_lag_lsn").Set(int64(maxApplyLagLSN))
		d.reg.Gauge("pageserver.apply_lag_ms").Set(maxApplyLagTime.Milliseconds())
		d.reg.Gauge("compute.apply_lag_lsn").Set(int64(maxSecLagLSN))
	}
	d.pushWaitSnap()
}

func clampLag(leader, follower uint64) int64 {
	if leader <= follower {
		return 0
	}
	return int64(leader - follower)
}

// evaluate applies the edge-triggered lag/stall rules to one follower.
func (d *Watchdog) evaluate(edge ladderEdge, replica string, cur, leader, lag uint64, now time.Time) {
	k := key(edge.follower, replica)
	d.mu.Lock()
	st, ok := d.state[k]
	if !ok {
		st = &followerState{lastLSN: cur}
		d.state[k] = st
	}
	advanced := cur > st.lastLSN
	st.lastLSN = cur
	if lag == 0 {
		st.stallTicks = 0
		st.tripped = false
		d.mu.Unlock()
		return
	}
	if advanced {
		st.stallTicks = 0
	} else {
		st.stallTicks++
	}
	var trip *Trip
	switch {
	case st.tripped:
		// Already fired for this excursion; stay quiet until recovery.
	case d.cfg.MaxLagLSN > 0 && lag > uint64(d.cfg.MaxLagLSN):
		trip = &Trip{Kind: TripLag}
	case st.stallTicks >= d.cfg.StallTicks:
		trip = &Trip{Kind: TripStall}
	}
	var callbacks []func(Trip)
	if trip != nil {
		st.tripped = true
		trip.At = now
		trip.Follower = k
		trip.Leader = edge.leader
		trip.LagLSN = lag
		trip.LagTime = d.ws.TimeLag(cur, now)
		trip.Detail = "watermark " + k + " behind " + edge.leader
		trip.TopWaits = d.topWaits()
		d.trips = append(d.trips, *trip)
		callbacks = append([]func(Trip){}, d.callbacks...)
	}
	d.mu.Unlock()
	if trip != nil {
		d.tripCount.Add(1)
		d.reg.Counter("obs.watchdog.trips").Inc()
		for _, fn := range callbacks {
			fn(*trip)
		}
	}
}
