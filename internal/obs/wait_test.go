package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWaitStatsExactMaxConcurrent pins the sketch's exact-aggregate
// guarantee: under concurrent recording the count and total are exact
// sums and the max is the true maximum (CAS max, not a sampled quantile).
func TestWaitStatsExactMaxConcurrent(t *testing.T) {
	var ws WaitStats
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Unique durations; the global max is planted by goroutine 0.
				d := time.Duration(g*perG+i+1) * time.Microsecond
				if g == 0 && i == perG/2 {
					d = time.Hour
				}
				ws.Record(WaitCommitHarden, d)
			}
		}(g)
	}
	wg.Wait()

	snap := ws.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot: got %d classes, want 1: %+v", len(snap), snap)
	}
	st := snap[0]
	if st.Class != "commit.harden" {
		t.Fatalf("class = %q, want commit.harden", st.Class)
	}
	if st.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*perG)
	}
	if st.MaxNS != uint64(time.Hour) {
		t.Fatalf("max = %d ns, want the planted 1h (%d ns)", st.MaxNS, uint64(time.Hour))
	}
	if st.TotalNS <= uint64(time.Hour) {
		t.Fatalf("total = %d ns, should exceed the planted max alone", st.TotalNS)
	}
}

// TestWaitRegionSemantics pins the WaitPoint contract: End on a zero
// region is a no-op, EndIf(false) records nothing, End/EndIf(true) record
// exactly one wait into the tier sketch, the global sketch, and the
// context's profile.
func TestWaitRegionSemantics(t *testing.T) {
	set := NewWaitSet()
	rec := set.Tier("compute")
	prof := NewWaitProfile()
	ctx := ContextWithWaitProfile(context.Background(), prof)

	var zero WaitRegion
	zero.End() // must not panic or record

	rec.Begin(ctx, WaitLockRow).EndIf(false)
	if got := set.Global().Snapshot(); len(got) != 0 {
		t.Fatalf("EndIf(false) recorded: %+v", got)
	}

	rec.Begin(ctx, WaitLockRow).EndIf(true)
	rec.Begin(ctx, WaitCommitHarden).End()

	global := set.Global().Snapshot()
	if len(global) != 2 {
		t.Fatalf("global sketch: got %d classes, want 2: %+v", len(global), global)
	}
	for _, st := range global {
		if st.Count != 1 {
			t.Fatalf("class %s: count = %d, want 1", st.Class, st.Count)
		}
	}
	rep := set.Report()
	if len(rep.Tiers["compute"]) != 2 {
		t.Fatalf("compute tier: got %+v, want 2 classes", rep.Tiers["compute"])
	}
	bd := prof.Breakdown()
	if len(bd) != 2 {
		t.Fatalf("profile breakdown: got %+v, want 2 classes", bd)
	}
}

// TestPackageWaitAttributesWithoutRecorder pins the nil-recorder path:
// obs.Wait on a context carrying a profile attributes the closure's
// duration to the profile even though no sketch is wired.
func TestPackageWaitAttributesWithoutRecorder(t *testing.T) {
	prof := NewWaitProfile()
	ctx := ContextWithWaitProfile(context.Background(), prof)
	Wait(ctx, WaitPageRemote, func() { time.Sleep(time.Millisecond) })

	bd := prof.Breakdown()
	if len(bd) != 1 || bd[0].Class != "page.remote" {
		t.Fatalf("breakdown = %+v, want one page.remote entry", bd)
	}
	if prof.Total() < time.Millisecond {
		t.Fatalf("total = %v, want >= the 1ms sleep", prof.Total())
	}

	// A nil context must be safe too (background loops).
	var nilRec *WaitRecorder
	nilRec.Observe(nil, WaitDiskRead, time.Millisecond)
}

// TestWaitSetDisabledGatesSketchesOnly pins the overhead knob's scope:
// SetEnabled(false) stops sketch recording but per-request profile
// attribution stays live (it is request-scoped and the production knob
// must not silently break EXPLAIN-ANALYZE of waits).
func TestWaitSetDisabledGatesSketchesOnly(t *testing.T) {
	set := NewWaitSet()
	set.SetEnabled(false)
	if set.Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	prof := NewWaitProfile()
	ctx := ContextWithWaitProfile(context.Background(), prof)
	set.Tier("xlog").Observe(ctx, WaitCommitQuorum, 2*time.Millisecond)

	if rep := set.Report(); len(rep.Global) != 0 || len(rep.Tiers) != 0 {
		t.Fatalf("disabled set still recorded sketches: %+v", rep)
	}
	if bd := prof.Breakdown(); len(bd) != 1 || bd[0].Class != "commit.quorum" {
		t.Fatalf("profile breakdown = %+v, want one commit.quorum entry", bd)
	}

	set.SetEnabled(true)
	set.Tier("xlog").Observe(ctx, WaitCommitQuorum, time.Millisecond)
	if rep := set.Report(); len(rep.Global) != 1 {
		t.Fatalf("re-enabled set did not record: %+v", rep)
	}
}

// TestWaitProfileBreakdownOrder pins the per-request report shape:
// classes sorted by descending total, and Total summing across classes.
func TestWaitProfileBreakdownOrder(t *testing.T) {
	p := NewWaitProfile()
	p.add(WaitPageMiss, 1*time.Millisecond)
	p.add(WaitCommitHarden, 5*time.Millisecond)
	p.add(WaitLockLatch, 3*time.Millisecond)

	bd := p.Breakdown()
	want := []string{"commit.harden", "lock.latch", "page.miss"}
	if len(bd) != len(want) {
		t.Fatalf("breakdown = %+v, want %d classes", bd, len(want))
	}
	for i, cls := range want {
		if bd[i].Class != cls {
			t.Fatalf("breakdown[%d] = %s, want %s (descending total order)", i, bd[i].Class, cls)
		}
	}
	if got := p.Total(); got != 9*time.Millisecond {
		t.Fatalf("Total = %v, want 9ms", got)
	}
}

// TestWaitSetConcurrentRecordAndReport races recorders on multiple tiers
// against concurrent /waits snapshotting (Report + the Prometheus
// exposition). Run under -race (./internal/obs is in RACE_PKGS) this pins
// the lock-free record path against the snapshot path.
func TestWaitSetConcurrentRecordAndReport(t *testing.T) {
	set := NewWaitSet()
	tiers := []string{"compute", "xlog", "pageserver", "lz"}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i, tier := range tiers {
		wg.Add(1)
		go func(i int, tier string) {
			defer wg.Done()
			rec := set.Tier(tier)
			prof := NewWaitProfile()
			ctx := ContextWithWaitProfile(context.Background(), prof)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				class := WaitClass((n + i) % numWaitClasses)
				rec.Observe(ctx, class, time.Duration(n%1000)*time.Microsecond)
				rec.Begin(ctx, class).End()
			}
		}(i, tier)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := set.Report()
				for _, st := range rep.Global {
					if st.TotalNS < uint64(st.Count) && st.TotalNS != 0 && st.Count != 0 {
						// Totals and counts advance independently; just touch them.
						_ = st
					}
				}
				if err := WritePrometheusWaits(io.Discard, set); err != nil {
					t.Errorf("WritePrometheusWaits: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	rep := set.Report()
	if len(rep.Global) != numWaitClasses {
		t.Fatalf("global sketch has %d classes, want all %d live", len(rep.Global), numWaitClasses)
	}
	if len(rep.Tiers) != len(tiers) {
		t.Fatalf("tiers = %v, want %d", rep.Tiers, len(tiers))
	}
}

// TestWritePrometheusWaitsGolden pins the exact exposition: three
// families (seconds counter, count counter, max gauge), global series
// first with tier="", then tiers in sorted order, classes within each in
// descending-total order.
func TestWritePrometheusWaitsGolden(t *testing.T) {
	set := NewWaitSet()
	compute := set.Tier("compute")
	compute.Observe(nil, WaitCommitHarden, 1500*time.Microsecond)
	compute.Observe(nil, WaitCommitHarden, 500*time.Microsecond)
	set.Tier("xlog").Observe(nil, WaitDiskWrite, 3*time.Millisecond)

	var buf bytes.Buffer
	if err := WritePrometheusWaits(&buf, set); err != nil {
		t.Fatalf("WritePrometheusWaits: %v", err)
	}
	want := `# TYPE socrates_wait_seconds_total counter
socrates_wait_seconds_total{tier="",class="disk.write"} 0.003
socrates_wait_seconds_total{tier="",class="commit.harden"} 0.002
socrates_wait_seconds_total{tier="compute",class="commit.harden"} 0.002
socrates_wait_seconds_total{tier="xlog",class="disk.write"} 0.003
# TYPE socrates_wait_count_total counter
socrates_wait_count_total{tier="",class="disk.write"} 1
socrates_wait_count_total{tier="",class="commit.harden"} 2
socrates_wait_count_total{tier="compute",class="commit.harden"} 2
socrates_wait_count_total{tier="xlog",class="disk.write"} 1
# TYPE socrates_wait_max_seconds gauge
socrates_wait_max_seconds{tier="",class="disk.write"} 0.003
socrates_wait_max_seconds{tier="",class="commit.harden"} 0.0015
socrates_wait_max_seconds{tier="compute",class="commit.harden"} 0.0015
socrates_wait_max_seconds{tier="xlog",class="disk.write"} 0.003
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Empty and nil sets must render nothing (no headerless families).
	buf.Reset()
	if err := WritePrometheusWaits(&buf, NewWaitSet()); err != nil || buf.Len() != 0 {
		t.Fatalf("empty set: err=%v output=%q", err, buf.String())
	}
	if err := WritePrometheusWaits(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil set: err=%v output=%q", err, buf.String())
	}
}

// TestWaitsHTTPEndpoint pins the /waits surface: the default JSON
// document round-trips as a WaitReport, ?format=prom serves the
// exposition with the Prometheus content type, and /metrics includes the
// wait families alongside the registry's.
func TestWaitsHTTPEndpoint(t *testing.T) {
	set := NewWaitSet()
	set.Tier("compute").Observe(nil, WaitCommitHarden, 2*time.Millisecond)
	set.Tier("compute").Observe(nil, WaitLockLatch, time.Millisecond)

	srv := httptest.NewServer(NewHTTPHandler(PlaneOptions{
		Registry: NewRegistry(),
		Waits:    set,
	}))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, _ := get("/waits")
	if code != http.StatusOK {
		t.Fatalf("/waits: status %d", code)
	}
	var rep WaitReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/waits JSON: %v\n%s", err, body)
	}
	if len(rep.Global) != 2 || rep.Global[0].Class != "commit.harden" {
		t.Fatalf("/waits global = %+v, want commit.harden first of 2", rep.Global)
	}
	if len(rep.Tiers["compute"]) != 2 {
		t.Fatalf("/waits tiers = %+v, want 2 compute classes", rep.Tiers)
	}

	code, body, ctype := get("/waits?format=prom")
	if code != http.StatusOK {
		t.Fatalf("/waits?format=prom: status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/waits?format=prom content type = %q", ctype)
	}
	for _, family := range []string{
		"socrates_wait_seconds_total", "socrates_wait_count_total", "socrates_wait_max_seconds",
	} {
		if !strings.Contains(body, fmt.Sprintf("%s{tier=\"compute\",class=\"commit.harden\"}", family)) {
			t.Fatalf("/waits?format=prom missing %s series:\n%s", family, body)
		}
	}

	_, body, _ = get("/metrics")
	if !strings.Contains(body, `socrates_wait_seconds_total{tier="",class="commit.harden"}`) {
		t.Fatalf("/metrics missing wait exposition:\n%s", body)
	}
}

// TestWatchdogTripFreezesTopWaits drives the watchdog's wait-freeze
// machinery tick by tick: waits recorded during the trip window must show
// up in the trip's TopWaits as window deltas (capped at 3 classes), and
// pre-window history must not.
func TestWatchdogTripFreezesTopWaits(t *testing.T) {
	ws := NewWatermarkSet()
	set := NewWaitSet()
	// Pre-window history that must NOT appear in the trip's window delta.
	set.Global().Record(WaitDiskRead, time.Hour)

	d := NewWatchdog(ws, nil, WatchdogConfig{MaxLagLSN: -1, StallTicks: 3})
	d.SetWaitSet(set)

	publishLadder(ws, 500, 500, 500, 500)
	// Cycle the snapshot ring until every retained snapshot already
	// includes the pre-window history.
	for i := 0; i < 5; i++ {
		d.Tick()
	}
	// The window's signature: a quorum-loss window is dominated by
	// commit.quorum, with some harden and latch time underneath.
	for i := 0; i < 10; i++ {
		set.Global().Record(WaitCommitQuorum, 10*time.Millisecond)
		set.Global().Record(WaitCommitHarden, time.Millisecond)
		set.Global().Record(WaitLockLatch, 100*time.Microsecond)
	}
	ws.Watermark(WMApplied, "ps-0").Publish(100) // behind and not moving
	for i := 0; i < 3; i++ {
		d.Tick()
	}
	trips := d.Trips()
	if len(trips) != 1 {
		t.Fatalf("trips = %+v, want 1 stall trip", trips)
	}
	trip := trips[0]
	if len(trip.TopWaits) == 0 || len(trip.TopWaits) > 3 {
		t.Fatalf("TopWaits = %+v, want 1..3 classes", trip.TopWaits)
	}
	if trip.TopWaits[0].Class != "commit.quorum" {
		t.Fatalf("TopWaits[0] = %+v, want commit.quorum dominating the window", trip.TopWaits[0])
	}
	if trip.TopWaits[0].Count != 10 || trip.TopWaits[0].TotalNS != uint64(100*time.Millisecond) {
		t.Fatalf("TopWaits[0] = %+v, want the window delta (10 waits, 100ms)", trip.TopWaits[0])
	}
	for _, st := range trip.TopWaits {
		if st.Class == "disk.read" {
			t.Fatalf("TopWaits includes pre-window history: %+v", st)
		}
	}
}
