package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeAcrossTiers(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), TierCompute, "commit.exec")
	ctx2, child := tr.StartSpan(ctx, TierLZ, "lz.write")
	if SpanFromContext(ctx2).TraceID != root.Trace {
		t.Fatalf("child context lost trace id")
	}
	_, grand := tr.StartSpan(ctx2, TierXLOG, "xlog.feed")
	grand.SetAttr("blocks", "3")
	grand.EndWith(5 * time.Millisecond)
	child.End()
	root.End()

	tree := tr.Trace(root.Trace)
	if tree == nil {
		t.Fatal("no tree")
	}
	if tree.Name != "commit.exec" {
		t.Fatalf("root = %q", tree.Name)
	}
	tiers := tree.Tiers()
	want := []string{TierCompute, TierLZ, TierXLOG}
	if len(tiers) != len(want) {
		t.Fatalf("tiers = %v, want %v", tiers, want)
	}
	for i := range want {
		if tiers[i] != want[i] {
			t.Fatalf("tiers = %v, want %v", tiers, want)
		}
	}
	text := Format(tree)
	if !strings.Contains(text, "xlog.feed [xlog] 5ms blocks=3") {
		t.Fatalf("format missing attributed span:\n%s", text)
	}
}

func TestRemoteSpanJoinsTrace(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), TierCompute, "getpage")
	// Simulate a wire hop: only the SpanContext crosses.
	wire := SpanFromContext(ctx)
	_, remote := tr.StartRemoteSpan(wire, TierPageServer, "pageserver.getpage")
	remote.EndWith(time.Millisecond)
	root.End()
	tree := tr.Trace(root.Trace)
	if len(tree.Children) != 1 || tree.Children[0].Tier != TierPageServer {
		t.Fatalf("remote span not parented: %s", Format(tree))
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(WithMaxTraces(2))
	var ids []TraceID
	for i := 0; i < 3; i++ {
		_, s := tr.StartSpan(context.Background(), TierCompute, "op")
		s.End()
		ids = append(ids, s.Trace)
	}
	if got := tr.Trace(ids[0]); got != nil {
		t.Fatal("oldest trace should be evicted")
	}
	if got := tr.Trace(ids[2]); got == nil {
		t.Fatal("newest trace missing")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), TierCompute, "noop")
	s.SetAttr("k", "v")
	s.SetError(errors.New("x"))
	s.End()
	if SpanFromContext(ctx).Valid() {
		t.Fatal("nil tracer must not mint span contexts")
	}
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(time.Millisecond)
	if n := len(r.Snapshot().Names()); n != 0 {
		t.Fatalf("nil registry snapshot has %d names", n)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pageserver.getpage.latency")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * 100 * time.Microsecond) // 100µs..10ms
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 < time.Millisecond || s.P50 > 16*time.Millisecond {
		t.Fatalf("p50 = %v out of plausible bucket range", s.P50)
	}
	if s.P99 < s.P50 {
		t.Fatalf("p99 %v < p50 %v", s.P99, s.P50)
	}
	r.Counter("compute.commits").Add(7)
	r.Gauge("xlog.pending").Set(3)
	snap := r.Snapshot()
	if snap.Counters["compute.commits"] != 7 {
		t.Fatalf("counter missing: %+v", snap.Counters)
	}
	if snap.Gauges["xlog.pending"] != 3 {
		t.Fatalf("gauge missing: %+v", snap.Gauges)
	}
	if !strings.Contains(snap.JSON(), "pageserver.getpage.latency") {
		t.Fatal("JSON export missing histogram")
	}
	names := snap.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
}

func TestMultiRootTrace(t *testing.T) {
	tr := NewTracer()
	ctx, a := tr.StartSpan(context.Background(), TierXLOG, "xlog.feed")
	a.End()
	// A sibling root in the same trace whose parent span was never
	// recorded (e.g. the client crashed before End).
	orphanParent := SpanContext{TraceID: SpanFromContext(ctx).TraceID, SpanID: 9999}
	_, b := tr.StartRemoteSpan(orphanParent, TierPageServer, "apply")
	b.End()
	tree := tr.Trace(a.Trace)
	if tree.Name != "trace" || len(tree.Children) != 2 {
		t.Fatalf("expected synthetic root with 2 children:\n%s", Format(tree))
	}
}
