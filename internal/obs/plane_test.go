package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- watermarks ---

func TestWatermarkMonotonePublish(t *testing.T) {
	ws := NewWatermarkSet()
	w := ws.Watermark(WMHardened, "")
	w.Publish(10)
	w.Publish(5) // stale: must not regress
	if got := w.Value(); got != 10 {
		t.Fatalf("value = %d, want 10 (monotone max)", got)
	}
	w.Publish(20)
	if got := w.Value(); got != 20 {
		t.Fatalf("value = %d, want 20", got)
	}
	if w.UpdatedAt().IsZero() {
		t.Fatal("UpdatedAt should be set after a publish")
	}
	if w.Name() != WMHardened || w.Replica() != "" {
		t.Fatalf("identity = %q/%q", w.Name(), w.Replica())
	}
}

func TestWatermarkSetSnapshotAndReplicas(t *testing.T) {
	ws := NewWatermarkSet()
	ws.Watermark(WMApplied, "ps-1").Publish(7)
	ws.Watermark(WMApplied, "ps-0").Publish(9)
	ws.Watermark(WMCommit, "").Publish(11)
	snap := ws.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Sorted by name then replica.
	if snap[0].Name != WMCommit || snap[1].Replica != "ps-0" || snap[2].Replica != "ps-1" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if got := ws.Replicas(WMApplied); len(got) != 2 || got[0] != "ps-0" || got[1] != "ps-1" {
		t.Fatalf("replicas = %v", got)
	}
	// Same name+replica resolves to the same watermark.
	if ws.Watermark(WMApplied, "ps-0") != ws.Watermark(WMApplied, "ps-0") {
		t.Fatal("watermark lookup not stable")
	}
}

func TestTimeLag(t *testing.T) {
	ws := NewWatermarkSet()
	for lsn := uint64(1); lsn <= 5; lsn++ {
		ws.PublishCommit(lsn)
	}
	now := time.Now().Add(50 * time.Millisecond)
	// A follower at LSN 0 is missing every stamped commit; its time lag is
	// at least the age of the oldest stamp.
	if lag := ws.TimeLag(0, now); lag < 50*time.Millisecond || lag > time.Minute {
		t.Fatalf("lag = %v, want >= 50ms", lag)
	}
	// A follower that applied everything has no lag.
	if lag := ws.TimeLag(5, now); lag != 0 {
		t.Fatalf("caught-up lag = %v, want 0", lag)
	}
}

func TestLadderLags(t *testing.T) {
	ws := NewWatermarkSet()
	ws.Watermark(WMCommit, "").Publish(100)
	ws.Watermark(WMHardened, "").Publish(90)
	ws.Watermark(WMPromoted, "").Publish(80)
	ws.Watermark(WMApplied, "ps-0").Publish(50)
	lags := ws.LadderLags()
	if lags["lz.harden_lag_lsn"] != 10 {
		t.Fatalf("harden lag = %d, want 10", lags["lz.harden_lag_lsn"])
	}
	if lags["xlog.promote_lag_lsn"] != 10 {
		t.Fatalf("promote lag = %d, want 10", lags["xlog.promote_lag_lsn"])
	}
	if lags["pageserver.apply_lag_lsn/ps-0"] != 30 {
		t.Fatalf("apply lag = %d, want 30", lags["pageserver.apply_lag_lsn/ps-0"])
	}
}

// --- watchdog ---

// publishLadder sets every singleton rung to the given values.
func publishLadder(ws *WatermarkSet, commit, hardened, promoted, destaged uint64) {
	ws.Watermark(WMCommit, "").Publish(commit)
	ws.Watermark(WMHardened, "").Publish(hardened)
	ws.Watermark(WMPromoted, "").Publish(promoted)
	ws.Watermark(WMDestaged, "").Publish(destaged)
}

func TestWatchdogLagTripEdgeTriggered(t *testing.T) {
	ws := NewWatermarkSet()
	reg := NewRegistry()
	d := NewWatchdog(ws, reg, WatchdogConfig{MaxLagLSN: 100, StallTicks: 1000})
	var fired []Trip
	d.OnTrip(func(tr Trip) { fired = append(fired, tr) })

	publishLadder(ws, 1000, 10, 10, 10) // hardened 990 behind commit
	d.Tick()
	if d.TripCount() != 1 {
		t.Fatalf("trips = %d, want 1", d.TripCount())
	}
	d.Tick() // same excursion: edge-triggered, no re-fire
	if d.TripCount() != 1 {
		t.Fatalf("trips after second tick = %d, want 1 (edge-triggered)", d.TripCount())
	}
	if len(fired) != 1 || fired[0].Kind != TripLag ||
		fired[0].Follower != WMHardened || fired[0].LagLSN != 990 {
		t.Fatalf("trip = %+v", fired)
	}

	publishLadder(ws, 1000, 1000, 1000, 1000) // caught up: re-arms
	d.Tick()
	publishLadder(ws, 2000, 1000, 1000, 1000) // new excursion
	d.Tick()
	if d.TripCount() != 2 {
		t.Fatalf("trips after re-arm = %d, want 2", d.TripCount())
	}
	if got := reg.Gauge("lz.harden_lag_lsn").Value(); got != 1000 {
		t.Fatalf("harden lag gauge = %d, want 1000", got)
	}
	if got := reg.Counter("obs.watchdog.trips").Value(); got != 2 {
		t.Fatalf("trip counter = %d, want 2", got)
	}
}

func TestWatchdogStallTrip(t *testing.T) {
	ws := NewWatermarkSet()
	d := NewWatchdog(ws, nil, WatchdogConfig{MaxLagLSN: -1, StallTicks: 3})

	publishLadder(ws, 500, 500, 500, 500)
	ws.Watermark(WMApplied, "ps-0").Publish(100) // behind and not moving
	for i := 0; i < 2; i++ {
		d.Tick()
	}
	if d.TripCount() != 0 {
		t.Fatalf("tripped after %d ticks, want none before StallTicks", 2)
	}
	d.Tick() // third consecutive stalled tick
	if d.TripCount() != 1 {
		t.Fatalf("trips = %d, want 1 stall trip", d.TripCount())
	}
	trips := d.Trips()
	if len(trips) != 1 || trips[0].Kind != TripStall ||
		trips[0].Follower != WMApplied+"/ps-0" || trips[0].Leader != WMPromoted {
		t.Fatalf("trip = %+v", trips)
	}

	// Progress clears the stall counter; catching up re-arms.
	ws.Watermark(WMApplied, "ps-0").Publish(500)
	d.Tick()
	if d.TripCount() != 1 {
		t.Fatalf("trips after recovery = %d, want still 1", d.TripCount())
	}
}

func TestWatchdogStartStop(t *testing.T) {
	ws := NewWatermarkSet()
	d := NewWatchdog(ws, nil, WatchdogConfig{Interval: time.Millisecond})
	d.Start()
	d.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	d.Stop()
	d.Stop() // idempotent
}

// --- flight recorder ---

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Record(TierCompute, "test", uint64(i), 0, fmt.Sprintf("e%d", i))
	}
	if f.Recorded() != 20 {
		t.Fatalf("recorded = %d, want 20", f.Recorded())
	}
	if f.Len() != 8 {
		t.Fatalf("len = %d, want ring capacity 8", f.Len())
	}
	events := f.Events()
	if len(events) != 8 {
		t.Fatalf("events = %d, want 8", len(events))
	}
	// The ring retains exactly the newest 8 events (12..19).
	got := map[string]bool{}
	for _, e := range events {
		got[e.Detail] = true
	}
	for i := 12; i < 20; i++ {
		if !got[fmt.Sprintf("e%d", i)] {
			t.Fatalf("event e%d evicted; retained %v", i, got)
		}
	}
	// Time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("events not time-ordered at %d", i)
		}
	}
}

func TestFlightDisable(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetEnabled(false)
	f.Record(TierLZ, "x", 1, 0, "")
	if f.Recorded() != 0 || f.Enabled() {
		t.Fatalf("disabled recorder recorded %d events", f.Recorded())
	}
	f.SetEnabled(true)
	f.Record(TierLZ, "x", 1, 0, "")
	if f.Recorded() != 1 {
		t.Fatalf("re-enabled recorder recorded %d, want 1", f.Recorded())
	}
}

func TestFlightDumpJSONL(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(TierXLOG, "xlog.destage", 42, 3*time.Millisecond, "blocks=2")
	f.RecordTrace(TierLZ, "lz.flush", 64, TraceID(7), time.Millisecond, "records=5")
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var e FlightEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q not valid JSON: %v", line, err)
		}
		if e.Tier == "" || e.Kind == "" || e.TS == 0 {
			t.Fatalf("incomplete event %+v", e)
		}
	}
}

// TestFlightConcurrentWritersAndDumper is the -race test for the lock-free
// ring: many writers claiming slots while a dumper reads them.
func TestFlightConcurrentWritersAndDumper(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				f.RecordTrace(TierPageServer, "ps.apply", uint64(i), TraceID(w), time.Microsecond, "batch")
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = f.Events()
			//socrates:ignore-err io.Discard cannot fail; this loop only exercises the reader path under race
			_ = f.Dump(io.Discard)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16000; i++ {
			_ = f.Len()
		}
	}()
	// Wait for the writers, then stop the dumper.
	done := make(chan struct{})
	go func() {
		for f.Recorded() < 16000 {
			time.Sleep(time.Millisecond) //socrates:sleep-ok test polling for writer completion
		}
		close(stop)
		close(done)
	}()
	<-done
	wg.Wait()
	if f.Recorded() != 16000 {
		t.Fatalf("recorded = %d, want 16000", f.Recorded())
	}
	if f.Len() != 64 {
		t.Fatalf("len = %d, want 64", f.Len())
	}
}

func TestPlaneNilSafety(t *testing.T) {
	var ws *WatermarkSet
	var f *FlightRecorder
	var d *Watchdog
	ws.PublishCommit(1)
	ws.Watermark("x.y", "").Publish(2)
	_ = ws.Snapshot()
	_ = ws.LadderLags()
	_ = ws.TimeLag(0, time.Now())
	f.Record(TierLZ, "k", 1, 0, "")
	_ = f.Events()
	_ = f.Len()
	d.Tick()
	d.Start()
	d.Stop()
	_ = d.Trips()
	d.OnTrip(func(Trip) {})
}

// --- prometheus exposition ---

func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lz.flush.count").Add(3)
	reg.Gauge("pageserver.rbpex.pages").Set(42)
	h := reg.Histogram("lz.write.latency")
	h.Observe(500 * time.Nanosecond) // underflow bucket (le 1µs)
	h.Observe(3 * time.Microsecond)  // bucket [2µs,4µs) (le 4µs)

	ws := NewWatermarkSet()
	ws.Watermark(WMCommit, "").Publish(128)
	ws.Watermark(WMHardened, "").Publish(96)
	ws.Watermark(WMApplied, "ps-0").Publish(64)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusWatermarks(&buf, ws); err != nil {
		t.Fatal(err)
	}

	want := `# TYPE socrates_lz_flush_count counter
socrates_lz_flush_count 3
# TYPE socrates_pageserver_rbpex_pages gauge
socrates_pageserver_rbpex_pages 42
# TYPE socrates_lz_write_latency_seconds histogram
socrates_lz_write_latency_seconds_bucket{le="1e-06"} 1
socrates_lz_write_latency_seconds_bucket{le="2e-06"} 1
socrates_lz_write_latency_seconds_bucket{le="4e-06"} 2
socrates_lz_write_latency_seconds_bucket{le="+Inf"} 2
socrates_lz_write_latency_seconds_sum 3.5e-06
socrates_lz_write_latency_seconds_count 2
# TYPE socrates_watermark_lsn gauge
socrates_watermark_lsn{name="compute.commit_lsn",replica=""} 128
socrates_watermark_lsn{name="lz.hardened_lsn",replica=""} 96
socrates_watermark_lsn{name="pageserver.applied_lsn",replica="ps-0"} 64
`
	if got := buf.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// --- HTTP plane ---

func TestHTTPPlaneEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.commits").Inc()
	ws := NewWatermarkSet()
	ws.Watermark(WMCommit, "").Publish(10)
	ws.Watermark(WMHardened, "").Publish(8)
	fr := NewFlightRecorder(16)
	fr.Record(TierLZ, "lz.flush", 8, time.Millisecond, "records=1")
	tr := NewTracer()
	d := NewWatchdog(ws, reg, WatchdogConfig{})

	srv := httptest.NewServer(NewHTTPHandler(PlaneOptions{
		Registry: reg, Watermarks: ws, Flight: fr, Tracer: tr, Watchdog: d,
	}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "socrates_engine_commits 1") ||
		!strings.Contains(body, `socrates_watermark_lsn{name="compute.commit_lsn",replica=""} 10`) {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	code, body := get("/watermarks")
	if code != 200 {
		t.Fatalf("/watermarks = %d", code)
	}
	var report WatermarkReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/watermarks not JSON: %v", err)
	}
	if len(report.Watermarks) != 2 || report.Lags["lz.harden_lag_lsn"] != 2 {
		t.Fatalf("report = %+v", report)
	}

	if code, body := get("/flight"); code != 200 || !strings.Contains(body, `"lz.flush"`) {
		t.Fatalf("/flight = %d:\n%s", code, body)
	}

	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap.Counters["engine.commits"] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	if code, _ := get("/traces"); code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	if code, _ := get("/traces?id=9999"); code != 404 {
		t.Fatalf("/traces?id=9999 should 404")
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "observability plane") {
		t.Fatalf("index = %d:\n%s", code, body)
	}
	if code, _ := get("/nosuch"); code != 404 {
		t.Fatalf("unknown path should 404")
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

func TestServeAndClose(t *testing.T) {
	h := NewHTTPHandler(PlaneOptions{})
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
