package obs

// Wait-event accounting: every blocked microsecond in the deployment is
// attributed to a named wait class, SQL Server wait-stats style. Socrates
// inherits that operational DNA (§7's evaluation is a sequence of "where
// does commit time go" questions), and the taxonomy below spans all four
// tiers plus the netmux fabric between them.
//
// Three levels of aggregation, all fed by the same record call:
//
//   - global and per-tier sketches (count / total-ns / exact max-ns per
//     class, lock-free atomics — WaitSet);
//   - per-request attribution: a WaitProfile threaded through the trace
//     context so a traced DB.ExecContext commit carries its own wait
//     breakdown (an EXPLAIN-ANALYZE of waits);
//   - per-span attribution: each wait attaches to the innermost open span
//     in the context, so span trees render "commit.harden 612µs" on the
//     exact span that blocked.
//
// The API is a WaitPoint in three shapes: Wait(ctx, class, fn) wraps a
// closure; Begin/End brackets cond-wait and channel sites where the
// blocking region is not a closure; Observe records a pre-measured
// duration (simulated device latency, queue-wait timestamps). WaitRegion
// is a value type and Begin/End do not allocate, so declared hot paths
// (netmux Call, GetPage@LSN) can afford instrumentation inside their
// existing allocation budgets.
//
// All types are nil-safe like the rest of the package: a nil
// *WaitRecorder still attributes to the context's profile and span, so
// request-scoped breakdowns work even where no sketch is wired.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// WaitClass names one cause of blocking. The taxonomy is fixed — a small
// closed set keeps the sketches allocation-free arrays and forces every
// new blocking site to say which existing operational question it
// belongs to.
type WaitClass uint8

// The wait-class taxonomy, spanning all four tiers.
const (
	// WaitLockRow: row-visibility waits — a reader blocked until its
	// snapshot becomes visible (secondary apply catch-up, read retry).
	// The lock table itself is NO-WAIT first-writer-wins, so classic
	// blocked-on-row-lock time also lands here on the retry path.
	WaitLockRow WaitClass = iota
	// WaitLockLatch: short-term structure latches — the engine's
	// single-writer commit latch, cache shard latches.
	WaitLockLatch
	// WaitCommitHarden: a committing transaction blocked in WaitHarden
	// until the landing-zone quorum covers its commit LSN.
	WaitCommitHarden
	// WaitCommitQuorum: the log writer blocked in the landing-zone
	// quorum write itself (the LZ Complete call).
	WaitCommitQuorum
	// WaitXLOGFeed: blocked on log dissemination — GetPage@LSN stalled
	// behind page-server apply, a secondary waiting for apply progress,
	// HADR ship/apply waits.
	WaitXLOGFeed
	// WaitPageMiss: a compute-local RBPEX miss served from the node's
	// SSD tier (the local-cache-miss read).
	WaitPageMiss
	// WaitPageRemote: a GetPage@LSN round trip to a page server.
	WaitPageRemote
	// WaitMuxQueue: netmux admission — queued behind the per-destination
	// in-flight cap.
	WaitMuxQueue
	// WaitMuxRTT: netmux in-flight — a request written to the wire,
	// waiting for its response frame.
	WaitMuxRTT
	// WaitBackpressure: producer-side throttling — the landing-zone ring
	// full, destaging behind.
	WaitBackpressure
	// WaitDiskRead / WaitDiskWrite: simulated device I/O lanes.
	WaitDiskRead
	WaitDiskWrite
	// WaitCkptDrain: blocked draining a page-server checkpoint (backup
	// flush, shutdown sweep).
	WaitCkptDrain

	numWaitClasses = int(WaitCkptDrain) + 1
)

// waitClassNames maps WaitClass to its canonical dotted name.
var waitClassNames = [numWaitClasses]string{
	WaitLockRow:      "lock.row",
	WaitLockLatch:    "lock.latch",
	WaitCommitHarden: "commit.harden",
	WaitCommitQuorum: "commit.quorum",
	WaitXLOGFeed:     "xlog.feed",
	WaitPageMiss:     "page.miss",
	WaitPageRemote:   "page.remote",
	WaitMuxQueue:     "netmux.queue",
	WaitMuxRTT:       "netmux.rtt",
	WaitBackpressure: "backpressure",
	WaitDiskRead:     "disk.read",
	WaitDiskWrite:    "disk.write",
	WaitCkptDrain:    "ckpt.drain",
}

// String returns the canonical class name ("commit.harden").
func (c WaitClass) String() string {
	if int(c) < numWaitClasses {
		return waitClassNames[c]
	}
	return "unknown"
}

// WaitClasses lists every class in taxonomy order.
func WaitClasses() []WaitClass {
	out := make([]WaitClass, numWaitClasses)
	for i := range out {
		out[i] = WaitClass(i)
	}
	return out
}

// waitSlot is one class's lock-free sketch: count, total nanoseconds,
// and exact maximum nanoseconds (CAS max — never a reservoir quantile).
type waitSlot struct {
	count atomic.Uint64
	total atomic.Uint64
	max   atomic.Uint64
}

func (s *waitSlot) record(ns uint64) {
	s.count.Add(1)
	s.total.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// WaitStats is one sketch: a fixed array of per-class slots. The zero
// value is ready to use; recording is lock-free and snapshot-safe.
type WaitStats struct {
	slots [numWaitClasses]waitSlot
}

// Record adds one wait of duration d to the class sketch.
func (w *WaitStats) Record(class WaitClass, d time.Duration) {
	if w == nil || int(class) >= numWaitClasses {
		return
	}
	if d < 0 {
		d = 0
	}
	w.slots[class].record(uint64(d))
}

// WaitClassStat is the exported view of one class's sketch.
type WaitClassStat struct {
	Class   string `json:"class"`
	Count   uint64 `json:"count"`
	TotalNS uint64 `json:"total_ns"`
	MaxNS   uint64 `json:"max_ns"`
}

// Snapshot exports the nonzero classes of the sketch in taxonomy order.
func (w *WaitStats) Snapshot() []WaitClassStat {
	if w == nil {
		return nil
	}
	out := make([]WaitClassStat, 0, numWaitClasses)
	for i := range w.slots {
		s := &w.slots[i]
		n := s.count.Load()
		if n == 0 {
			continue
		}
		out = append(out, WaitClassStat{
			Class:   WaitClass(i).String(),
			Count:   n,
			TotalNS: s.total.Load(),
			MaxNS:   s.max.Load(),
		})
	}
	return out
}

// WaitSet is the deployment-wide wait-accounting table: one global
// sketch plus one per tier, shared by every node the way the Registry
// and WatermarkSet are. All methods are nil-safe.
type WaitSet struct {
	global   WaitStats
	disabled atomic.Bool

	mu    sync.RWMutex
	tiers map[string]*WaitStats
	recs  map[string]*WaitRecorder
}

// NewWaitSet builds an empty wait-accounting table.
func NewWaitSet() *WaitSet {
	return &WaitSet{
		tiers: make(map[string]*WaitStats),
		recs:  make(map[string]*WaitRecorder),
	}
}

// SetEnabled toggles sketch recording (the overhead-comparison knob; on
// by default). Per-request profile and span attribution stay live — they
// are request-scoped and cost nothing when no profile is attached.
func (s *WaitSet) SetEnabled(on bool) {
	if s == nil {
		return
	}
	s.disabled.Store(!on)
}

// Enabled reports whether sketch recording is active.
func (s *WaitSet) Enabled() bool {
	return s != nil && !s.disabled.Load()
}

// Global exposes the deployment-wide sketch.
func (s *WaitSet) Global() *WaitStats {
	if s == nil {
		return nil
	}
	return &s.global
}

// Tier returns (creating if needed) the recorder for one tier. Hot paths
// resolve their recorder once at wiring time; recording through it is
// lock-free.
func (s *WaitSet) Tier(tier string) *WaitRecorder {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	r, ok := s.recs[tier]
	s.mu.RUnlock()
	if ok {
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok = s.recs[tier]; ok {
		return r
	}
	st := &WaitStats{}
	s.tiers[tier] = st
	r = &WaitRecorder{set: s, tier: st}
	s.recs[tier] = r
	return r
}

// WaitReport is the /waits JSON document.
type WaitReport struct {
	Taken  time.Time                  `json:"taken"`
	Global []WaitClassStat            `json:"global"`
	Tiers  map[string][]WaitClassStat `json:"tiers,omitempty"`
}

// Report exports the global and per-tier sketches, each sorted by
// descending total (the socrates-top ordering).
func (s *WaitSet) Report() WaitReport {
	rep := WaitReport{Taken: time.Now()}
	if s == nil {
		return rep
	}
	rep.Global = sortByTotal(s.global.Snapshot())
	s.mu.RLock()
	tiers := make(map[string]*WaitStats, len(s.tiers))
	for name, st := range s.tiers {
		tiers[name] = st
	}
	s.mu.RUnlock()
	if len(tiers) > 0 {
		rep.Tiers = make(map[string][]WaitClassStat, len(tiers))
		for name, st := range tiers {
			if snap := sortByTotal(st.Snapshot()); len(snap) > 0 {
				rep.Tiers[name] = snap
			}
		}
	}
	return rep
}

func sortByTotal(stats []WaitClassStat) []WaitClassStat {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].TotalNS != stats[j].TotalNS {
			return stats[i].TotalNS > stats[j].TotalNS
		}
		return stats[i].Class < stats[j].Class
	})
	return stats
}

// WaitRecorder records waits for one tier into its tier sketch, the
// global sketch, and whatever per-request profile and span the context
// carries. A nil recorder still performs the context attribution, so
// unwired paths keep request-scoped breakdowns.
type WaitRecorder struct {
	set  *WaitSet
	tier *WaitStats
}

// Observe records one pre-measured wait. ctx may be nil (background
// loops, device lanes without request context).
//
//socrates:hotpath the universal record path under every WaitPoint; must stay allocation-free
func (r *WaitRecorder) Observe(ctx context.Context, class WaitClass, d time.Duration) {
	if d < 0 {
		d = 0
	}
	if r != nil && r.set.Enabled() {
		r.tier.Record(class, d)
		r.set.global.Record(class, d)
	}
	if ctx == nil {
		return
	}
	if p := WaitProfileFromContext(ctx); p != nil {
		p.add(class, d)
	}
	if sp := activeSpan(ctx); sp != nil {
		sp.RecordWait(class, d)
	}
}

// Wait runs fn and records its duration as one wait of the given class.
func (r *WaitRecorder) Wait(ctx context.Context, class WaitClass, fn func()) {
	start := time.Now()
	fn()
	r.Observe(ctx, class, time.Since(start))
}

// Begin opens a wait region; End records it. WaitRegion is a value —
// Begin/End on a hot path allocates nothing.
//
//socrates:hotpath region entry used inside netmux Call and GetPage budgets
func (r *WaitRecorder) Begin(ctx context.Context, class WaitClass) WaitRegion {
	return WaitRegion{rec: r, ctx: ctx, class: class, start: time.Now()}
}

// Wait is the package-level WaitPoint for paths with request context but
// no wired recorder: fn's duration is attributed to the context's
// profile and span (no sketch recording).
func Wait(ctx context.Context, class WaitClass, fn func()) {
	var r *WaitRecorder
	r.Wait(ctx, class, fn)
}

// WaitRegion is one open Begin/End bracket.
type WaitRegion struct {
	rec   *WaitRecorder
	ctx   context.Context
	class WaitClass
	start time.Time
}

// End closes the region and records the wait. End on a zero WaitRegion
// is a no-op.
//
//socrates:hotpath region exit used inside netmux Call and GetPage budgets
func (w WaitRegion) End() {
	if w.start.IsZero() {
		return
	}
	w.rec.Observe(w.ctx, w.class, time.Since(w.start))
}

// EndIf closes the region only when waited is true — for sites that
// check a condition first and only sometimes block (cond-wait loops
// whose first test passes).
func (w WaitRegion) EndIf(waited bool) {
	if waited {
		w.End()
	}
}

// --- per-request attribution ---

// WaitProfile accumulates one request's waits by class. It travels in
// the context (ContextWithWaitProfile) across every tier the request
// touches in-process; concurrent recorders (fan-out page reads, the
// group-commit flusher) share it safely through atomics.
type WaitProfile struct {
	counts [numWaitClasses]atomic.Uint64
	totals [numWaitClasses]atomic.Uint64
}

// NewWaitProfile builds an empty profile.
func NewWaitProfile() *WaitProfile { return &WaitProfile{} }

func (p *WaitProfile) add(class WaitClass, d time.Duration) {
	if p == nil || int(class) >= numWaitClasses {
		return
	}
	p.counts[class].Add(1)
	p.totals[class].Add(uint64(d))
}

// Breakdown exports the profile's nonzero classes sorted by descending
// total — the per-request EXPLAIN-ANALYZE of waits.
func (p *WaitProfile) Breakdown() []WaitClassStat {
	if p == nil {
		return nil
	}
	out := make([]WaitClassStat, 0, numWaitClasses)
	for i := range p.counts {
		n := p.counts[i].Load()
		if n == 0 {
			continue
		}
		out = append(out, WaitClassStat{
			Class:   WaitClass(i).String(),
			Count:   n,
			TotalNS: p.totals[i].Load(),
		})
	}
	return sortByTotal(out)
}

// Total sums the profile's wait time across classes.
func (p *WaitProfile) Total() time.Duration {
	if p == nil {
		return 0
	}
	var ns uint64
	for i := range p.totals {
		ns += p.totals[i].Load()
	}
	return time.Duration(ns)
}

type waitProfileKey struct{}

// ContextWithWaitProfile returns ctx carrying p; every WaitPoint the
// request passes through adds its wait to p.
func ContextWithWaitProfile(ctx context.Context, p *WaitProfile) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, waitProfileKey{}, p)
}

// WaitProfileFromContext extracts the request's profile (nil if none).
func WaitProfileFromContext(ctx context.Context) *WaitProfile {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(waitProfileKey{}).(*WaitProfile)
	return p
}

// --- Prometheus exposition ---

// WritePrometheusWaits renders the wait sketches as three families
// labeled by tier ("" = global) and class:
//
//	socrates_wait_seconds_total{tier="compute",class="commit.harden"} 0.61
//	socrates_wait_count_total{...}  socrates_wait_max_seconds{...}
func WritePrometheusWaits(w io.Writer, s *WaitSet) error {
	bw := bufio.NewWriter(w)
	if s != nil {
		rep := s.Report()
		type tierStats struct {
			tier  string
			stats []WaitClassStat
		}
		all := []tierStats{{tier: "", stats: rep.Global}}
		for _, tier := range sortedKeys(rep.Tiers) {
			all = append(all, tierStats{tier: tier, stats: rep.Tiers[tier]})
		}
		if len(rep.Global) > 0 || len(rep.Tiers) > 0 {
			write := func(family, typ string, value func(WaitClassStat) string) {
				fmt.Fprintf(bw, "# TYPE %s %s\n", family, typ)
				for _, ts := range all {
					for _, st := range ts.stats {
						fmt.Fprintf(bw, "%s{tier=%q,class=%q} %s\n", family, ts.tier, st.Class, value(st))
					}
				}
			}
			write("socrates_wait_seconds_total", "counter", func(st WaitClassStat) string {
				return promFloat(time.Duration(st.TotalNS).Seconds())
			})
			write("socrates_wait_count_total", "counter", func(st WaitClassStat) string {
				return strconv.FormatUint(st.Count, 10)
			})
			write("socrates_wait_max_seconds", "gauge", func(st WaitClassStat) string {
				return promFloat(time.Duration(st.MaxNS).Seconds())
			})
		}
	}
	return bw.Flush()
}
