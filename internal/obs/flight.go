package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on postmortem buffer: a fixed-size
// lock-free ring of compact structured events recorded at the repo's
// choke points (group-commit flush, LZ destage, GetPage@LSN misses and
// waits, apply-loop batches, checkpoints, failover steps, retryable
// errors). When something goes wrong — a watchdog trip, a failed close —
// Dump renders the seconds leading up to it as time-ordered JSONL.
//
// Writers claim a slot with one atomic increment and publish the event
// with one atomic pointer store; there are no locks anywhere on the
// record path, so choke points can afford an event per batch. Dumpers
// read the same atomic pointers, so a dump taken mid-flight sees each
// slot either empty, old, or new — never torn. All methods are nil-safe.
type FlightRecorder struct {
	slots    []atomic.Pointer[FlightEvent]
	mask     uint64
	cursor   atomic.Uint64
	disabled atomic.Bool
}

// FlightEvent is one ring entry. Events are small on purpose: the ring is
// sized in events, and a dump is read by humans mid-incident.
type FlightEvent struct {
	TS     int64   `json:"ts"` // unix nanos
	Tier   string  `json:"tier"`
	Kind   string  `json:"kind"`
	LSN    uint64  `json:"lsn,omitempty"`
	Trace  TraceID `json:"trace,omitempty"`
	DurNS  int64   `json:"dur_ns,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Time reports the event's wall-clock instant.
func (e FlightEvent) Time() time.Time { return time.Unix(0, e.TS) }

// DefaultFlightSlots is the default ring capacity.
const DefaultFlightSlots = 4096

// NewFlightRecorder builds a recorder with the given capacity (rounded up
// to a power of two; <= 0 uses DefaultFlightSlots).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSlots
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], n), mask: uint64(n - 1)}
}

// SetEnabled toggles recording (the overhead-comparison knob; the
// recorder is on by default).
func (f *FlightRecorder) SetEnabled(on bool) {
	if f == nil {
		return
	}
	f.disabled.Store(!on)
}

// Enabled reports whether recording is active.
func (f *FlightRecorder) Enabled() bool {
	return f != nil && !f.disabled.Load()
}

// Record appends one event to the ring.
func (f *FlightRecorder) Record(tier, kind string, lsn uint64, dur time.Duration, detail string) {
	f.RecordTrace(tier, kind, lsn, 0, dur, detail)
}

// RecordTrace is Record with an attributed trace ID.
func (f *FlightRecorder) RecordTrace(tier, kind string, lsn uint64, trace TraceID, dur time.Duration, detail string) {
	if f == nil || f.disabled.Load() {
		return
	}
	e := &FlightEvent{
		TS:     time.Now().UnixNano(),
		Tier:   tier,
		Kind:   kind,
		LSN:    lsn,
		Trace:  trace,
		DurNS:  int64(dur),
		Detail: detail,
	}
	i := f.cursor.Add(1) - 1
	f.slots[i&f.mask].Store(e)
}

// Len reports how many events are currently retained (≤ capacity).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.cursor.Load()
	if n > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(n)
}

// Recorded reports the total events ever recorded (including overwritten).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.cursor.Load()
}

// Events returns a time-ordered copy of the retained ring contents.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Dump writes the retained events as time-ordered JSONL (one event per
// line) — the flight recorder's postmortem format.
func (f *FlightRecorder) Dump(w io.Writer) error {
	if f == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range f.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
