// Package socerr defines the repo-wide error taxonomy: a small set of
// sentinel errors that every tier wraps (with fmt.Errorf("...: %w", ...))
// so callers classify failures with errors.Is / errors.As instead of
// matching message strings. The package sits below every tier — it may
// import nothing but the standard library — so compute, xlog,
// pageserver, rbio, and cluster can all share the same vocabulary
// without import cycles.
package socerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinels. Tier packages wrap these into their own named errors (e.g.
// compute.ErrWriterClosed wraps ErrClosed) so both the tier-specific and
// the generic classification succeed under errors.Is.
var (
	// ErrTimeout marks an operation that gave up waiting: replication
	// catch-up, landing-zone reservation, harden waits, RBIO deadlines.
	ErrTimeout = errors.New("socrates: timeout")

	// ErrClosed marks use of a component after shutdown or crash.
	ErrClosed = errors.New("socrates: closed")

	// ErrNoSecondary marks cluster operations that need a secondary
	// replica when none (or no matching one) exists.
	ErrNoSecondary = errors.New("socrates: no secondary")

	// ErrPartial marks an operation that completed a usable prefix of
	// the requested work before failing (e.g. a ranged GetPage where a
	// mid-range page was missing). Callers that can make progress with
	// the prefix — RBPEX warmup, scan pushdown — check for it with
	// errors.Is and consume the partial result instead of discarding it.
	ErrPartial = errors.New("socrates: partial result")

	// ErrBackpressure marks a request rejected because a netmux pool's
	// in-flight cap and bounded wait queue were both full. It is a
	// fail-fast signal: the fabric is saturated and queueing more work
	// would only grow latency, so callers shed load or retry at their
	// own cadence rather than piling up goroutines.
	ErrBackpressure = errors.New("socrates: backpressure")
)

// Timeoutf builds an ErrTimeout-classified error.
func Timeoutf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTimeout, fmt.Sprintf(format, args...))
}

// Partialf builds an ErrPartial-classified error.
func Partialf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrPartial, fmt.Sprintf(format, args...))
}

// FromContext classifies a context error: deadline expiry becomes
// ErrTimeout (still matching context.DeadlineExceeded via the wrap);
// cancellation passes through unchanged; nil stays nil.
func FromContext(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}
