// Package socerr defines the repo-wide error taxonomy: a small set of
// sentinel errors that every tier wraps (with fmt.Errorf("...: %w", ...))
// so callers classify failures with errors.Is / errors.As instead of
// matching message strings. The package sits below every tier — it may
// import nothing but the standard library — so compute, xlog,
// pageserver, rbio, and cluster can all share the same vocabulary
// without import cycles.
package socerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinels. Tier packages wrap these into their own named errors (e.g.
// compute.ErrWriterClosed wraps ErrClosed) so both the tier-specific and
// the generic classification succeed under errors.Is.
var (
	// ErrTimeout marks an operation that gave up waiting: replication
	// catch-up, landing-zone reservation, harden waits, RBIO deadlines.
	ErrTimeout = errors.New("socrates: timeout")

	// ErrClosed marks use of a component after shutdown or crash.
	ErrClosed = errors.New("socrates: closed")

	// ErrNoSecondary marks cluster operations that need a secondary
	// replica when none (or no matching one) exists.
	ErrNoSecondary = errors.New("socrates: no secondary")

	// ErrPartial marks an operation that completed a usable prefix of
	// the requested work before failing (e.g. a ranged GetPage where a
	// mid-range page was missing). Callers that can make progress with
	// the prefix — RBPEX warmup, scan pushdown — check for it with
	// errors.Is and consume the partial result instead of discarding it.
	ErrPartial = errors.New("socrates: partial result")

	// ErrBackpressure marks a request rejected because a netmux pool's
	// in-flight cap and bounded wait queue were both full. It is a
	// fail-fast signal: the fabric is saturated and queueing more work
	// would only grow latency, so callers shed load or retry at their
	// own cadence rather than piling up goroutines.
	ErrBackpressure = errors.New("socrates: backpressure")

	// ErrAdmission marks a request rejected by per-tenant admission
	// control at the front door: the tenant's token bucket is empty.
	// Deliberately distinct from ErrBackpressure — backpressure means
	// the shared fabric is saturated and anyone's retry makes it worse,
	// admission means THIS tenant exceeded its own budget while the pool
	// has headroom. Retry layers must not re-throw admission-rejected
	// load at the same cluster; the client backs off on its own clock.
	ErrAdmission = errors.New("socrates: admission rejected")

	// ErrTenantMoved marks a request routed with a stale placement
	// epoch: the tenant no longer lives where the router sent it (or
	// lives there under a newer epoch). The concrete error is a
	// *TenantMovedError carrying the current assignment so the router
	// can refresh its cache and retry exactly once at the new home.
	ErrTenantMoved = errors.New("socrates: tenant moved")
)

// TenantMovedError is the typed redirect behind ErrTenantMoved. Epoch is
// the placement epoch current at the rejecting host, and Cluster the
// tenant's home as of that epoch ("" when the host cannot name it, e.g.
// mid-cutover). errors.Is(err, ErrTenantMoved) matches; errors.As
// recovers the redirect payload.
type TenantMovedError struct {
	Tenant  string
	Cluster string
	Epoch   uint64
}

func (e *TenantMovedError) Error() string {
	return fmt.Sprintf("%v: tenant %q now at cluster %q epoch %d",
		ErrTenantMoved, e.Tenant, e.Cluster, e.Epoch)
}

// Is makes the typed redirect match the ErrTenantMoved sentinel.
func (e *TenantMovedError) Is(target error) bool { return target == ErrTenantMoved }

// Timeoutf builds an ErrTimeout-classified error.
func Timeoutf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTimeout, fmt.Sprintf(format, args...))
}

// Partialf builds an ErrPartial-classified error.
func Partialf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrPartial, fmt.Sprintf(format, args...))
}

// FromContext classifies a context error: deadline expiry becomes
// ErrTimeout (still matching context.DeadlineExceeded via the wrap);
// cancellation passes through unchanged; nil stays nil.
func FromContext(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}
