// Package tpce implements a scaled-down TPC-E-flavoured workload, used by
// the paper's Table 4 experiment: the cache-hit-rate measurement on a 30 TB
// trading database where the compute cache is only ~1% of the data.
//
// Only the shape matters for that experiment: a brokerage schema
// (customers, accounts, trades), a transaction mix dominated by reads of
// recent trades and hot customers, and the strong access skew
// characteristic of TPC-E — which is exactly why a 1% cache still fields
// ~32% of reads in the paper.
package tpce

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"socrates/internal/engine"
	"socrates/internal/metrics"
	"socrates/internal/workload"
)

// Table names.
const (
	TableCustomers = "tpce_customers"
	TableAccounts  = "tpce_accounts"
	TableTrades    = "tpce_trades"
)

// Workload holds generator parameters.
type Workload struct {
	Customers int
	// AccountsPer customer and initial TradesPer account.
	AccountsPer, TradesPer int
	zipfS                  float64
}

// New creates a workload with the given customer count.
func New(customers int) *Workload {
	return &Workload{Customers: customers, AccountsPer: 2, TradesPer: 4, zipfS: 1.08}
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

// Setup creates and loads the schema.
func (w *Workload) Setup(e *engine.Engine) error {
	for _, t := range []string{TableCustomers, TableAccounts, TableTrades} {
		if err := e.CreateTable(t); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(7))
	load := func(table string, n, size int) error {
		const batch = 100
		for base := 0; base < n; base += batch {
			tx := e.Begin()
			for i := base; i < base+batch && i < n; i++ {
				buf := make([]byte, size)
				r.Read(buf)
				if err := tx.Put(table, key(i), buf); err != nil {
					tx.Abort()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := load(TableCustomers, w.Customers, 128); err != nil {
		return err
	}
	if err := load(TableAccounts, w.Customers*w.AccountsPer, 96); err != nil {
		return err
	}
	return load(TableTrades, w.Customers*w.AccountsPer*w.TradesPer, 160)
}

// Client is one driver thread.
type Client struct {
	w       *Workload
	e       *engine.Engine
	meter   *metrics.CPUMeter
	rng     *rand.Rand
	zipf    *rand.Zipf
	tradeID int
	id      int
}

// NewClient builds driver thread id bound to the engine.
func (w *Workload) NewClient(e *engine.Engine, meter *metrics.CPUMeter, id int) *Client {
	r := rand.New(rand.NewSource(int64(id)*104729 + 7))
	max := uint64(w.Customers - 1)
	if max == 0 {
		max = 1
	}
	return &Client{
		w: w, e: e, meter: meter, rng: r,
		zipf: rand.NewZipf(r, w.zipfS, 4, max),
		id:   id,
	}
}

func (c *Client) hotCustomer() int { return int(c.zipf.Uint64()) }

// Run executes one transaction of the TPC-E-flavoured mix:
// trade-lookup 45%, customer-position 30%, market-watch 10%, trade-order
// 15% (the write share of TPC-E is ~15-20%).
func (c *Client) Run() (workload.Outcome, error) {
	x := c.rng.Intn(100)
	start := time.Now()
	var err error
	kind := workload.Read
	switch {
	case x < 45:
		c.charge(400 * time.Microsecond)
		err = c.tradeLookup()
	case x < 75:
		c.charge(600 * time.Microsecond)
		err = c.customerPosition()
	case x < 85:
		c.charge(1500 * time.Microsecond)
		err = c.marketWatch()
	default:
		kind = workload.Write
		c.charge(900 * time.Microsecond)
		err = c.tradeOrder()
	}
	out := workload.Outcome{Kind: kind, Latency: time.Since(start)}
	if err != nil {
		out.Aborted = true
	}
	return out, err
}

func (c *Client) charge(d time.Duration) {
	if c.meter != nil {
		c.meter.Charge(d)
	}
}

// tradeLookup reads a handful of trades of a hot customer's account.
func (c *Client) tradeLookup() error {
	tx := c.e.BeginRO()
	defer tx.Abort()
	acct := c.hotCustomer()*c.w.AccountsPer + c.rng.Intn(c.w.AccountsPer)
	base := acct * c.w.TradesPer
	for i := 0; i < 3; i++ {
		if _, _, err := tx.Get(TableTrades, key(base+c.rng.Intn(c.w.TradesPer))); err != nil {
			return err
		}
	}
	return nil
}

// customerPosition reads a customer and all their accounts.
func (c *Client) customerPosition() error {
	tx := c.e.BeginRO()
	defer tx.Abort()
	cust := c.hotCustomer()
	if _, _, err := tx.Get(TableCustomers, key(cust)); err != nil {
		return err
	}
	for a := 0; a < c.w.AccountsPer; a++ {
		if _, _, err := tx.Get(TableAccounts, key(cust*c.w.AccountsPer+a)); err != nil {
			return err
		}
	}
	return nil
}

// marketWatch scans a range of trades (analytic-ish read).
func (c *Client) marketWatch() error {
	tx := c.e.BeginRO()
	defer tx.Abort()
	lo := c.hotCustomer() * c.w.AccountsPer * c.w.TradesPer
	count := 0
	return tx.Scan(TableTrades, key(lo), key(lo+64), func(k, v []byte) bool {
		count++
		return count < 64
	})
}

// tradeOrder inserts a trade and updates the account row.
func (c *Client) tradeOrder() error {
	tx := c.e.Begin()
	cust := c.hotCustomer()
	acct := cust*c.w.AccountsPer + c.rng.Intn(c.w.AccountsPer)
	trade := make([]byte, 160)
	c.rng.Read(trade)
	id := 1_000_000_000 + c.id*10_000_000 + c.tradeID
	c.tradeID++
	if err := tx.Put(TableTrades, key(id), trade); err != nil {
		tx.Abort()
		return err
	}
	balance := make([]byte, 96)
	c.rng.Read(balance)
	if err := tx.Put(TableAccounts, key(acct), balance); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

var _ workload.Runner = (*Client)(nil)

var _ = fmt.Sprintf
