package tpce

import (
	"testing"
	"time"

	"socrates/internal/engine"
	"socrates/internal/fcb"
	"socrates/internal/metrics"
	"socrates/internal/workload"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.Create(engine.Config{
		Pages: fcb.NewMemFile(),
		Log:   engine.NewMemPipeline(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSetupLoadsSchema(t *testing.T) {
	e := newEngine(t)
	w := New(50)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []struct {
		name string
		want int
	}{
		{TableCustomers, 50},
		{TableAccounts, 100},
		{TableTrades, 400},
	} {
		count := 0
		_ = e.BeginRO().Scan(tbl.name, nil, nil, func(k, v []byte) bool {
			count++
			return true
		})
		if count != tbl.want {
			t.Errorf("%s rows = %d, want %d", tbl.name, count, tbl.want)
		}
	}
}

func TestAllTxnKindsExecute(t *testing.T) {
	e := newEngine(t)
	w := New(100)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	meter := metrics.NewCPUMeter(1)
	c := w.NewClient(e, meter, 1)
	reads, writes := 0, 0
	for i := 0; i < 200; i++ {
		out, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Kind == workload.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	// TPC-E is read-dominant.
	if reads < writes*2 {
		t.Fatalf("mix not read-dominant: %d reads, %d writes", reads, writes)
	}
	if meter.Busy() == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestTradeOrderPersists(t *testing.T) {
	e := newEngine(t)
	w := New(20)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	c := w.NewClient(e, nil, 3)
	if err := c.tradeOrder(); err != nil {
		t.Fatal(err)
	}
	count := 0
	_ = e.BeginRO().Scan(TableTrades, nil, nil, func(k, v []byte) bool {
		count++
		return true
	})
	if count != 20*2*4+1 {
		t.Fatalf("trades = %d", count)
	}
}

func TestSkewIsStrongerThanCDB(t *testing.T) {
	w := New(10000)
	c := w.NewClient(nil, nil, 1)
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.hotCustomer() < 100 { // hottest 1%
			hot++
		}
	}
	if frac := float64(hot) / n; frac < 0.4 {
		t.Fatalf("hottest 1%% drew %.0f%%; TPC-E skew should be strong", frac*100)
	}
}

func TestDriveWithGenericHarness(t *testing.T) {
	e := newEngine(t)
	w := New(100)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	m := workload.Drive(func(id int) workload.Runner {
		return w.NewClient(e, nil, id)
	}, workload.Config{Threads: 4, Duration: 100 * time.Millisecond})
	if m.ReadTxns == 0 {
		t.Fatal("no reads executed")
	}
}
