package cdb

import (
	"math/rand"
	"testing"
	"time"

	"socrates/internal/engine"
	"socrates/internal/fcb"
	"socrates/internal/metrics"
	"socrates/internal/workload"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.Create(engine.Config{
		Pages: fcb.NewMemFile(),
		Log:   engine.NewMemPipeline(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSetupCreatesSixTables(t *testing.T) {
	e := newEngine(t)
	w := New(200)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	names, err := e.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("tables = %v", names)
	}
	// Scaled table actually holds SF rows.
	count := 0
	_ = e.BeginRO().Scan(TableScaledLean, nil, nil, func(k, v []byte) bool {
		count++
		return true
	})
	if count != 200 {
		t.Fatalf("lean rows = %d", count)
	}
}

func TestMixDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	counts := map[TxnType]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[DefaultMix.pick(r)]++
	}
	for ty := TxnType(0); ty < numTxnTypes; ty++ {
		want := DefaultMix.Weights[ty]
		got := 100 * counts[ty] / n
		if got < want-3 || got > want+3 {
			t.Errorf("%v: %d%%, want ~%d%%", ty, got, want)
		}
	}
	// UpdateLiteMix draws only update-lite.
	for i := 0; i < 100; i++ {
		if got := UpdateLiteMix.pick(r); got != UpdateLite {
			t.Fatalf("UpdateLiteMix drew %v", got)
		}
	}
}

func TestReadWriteClassification(t *testing.T) {
	writes := map[TxnType]bool{UpdateLite: true, UpdateHeavy: true, BulkInsert: true}
	for ty := TxnType(0); ty < numTxnTypes; ty++ {
		if ty.IsWrite() != writes[ty] {
			t.Errorf("%v IsWrite = %v", ty, ty.IsWrite())
		}
	}
}

func TestAllTxnTypesExecute(t *testing.T) {
	e := newEngine(t)
	w := New(300)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	c := w.NewClient(1)
	meter := metrics.NewCPUMeter(1)
	seen := map[TxnType]bool{}
	for i := 0; i < 300 && len(seen) < int(numTxnTypes); i++ {
		stats, err := c.Run(e, DefaultMix, meter)
		if err != nil {
			t.Fatalf("%v: %v", stats.Type, err)
		}
		seen[stats.Type] = true
	}
	if len(seen) != int(numTxnTypes) {
		t.Fatalf("only %d txn types executed: %v", len(seen), seen)
	}
	if meter.Busy() == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestZipfSkewIsHot(t *testing.T) {
	w := New(10000)
	c := w.NewClient(1)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.hotRow() < 1000 { // hottest 10% of rows
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.5 {
		t.Fatalf("hottest 10%% drew only %.0f%% of accesses; skew too weak", frac*100)
	}
}

func TestDriveCollectsMetrics(t *testing.T) {
	e := newEngine(t)
	w := New(200)
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	meter := metrics.NewCPUMeter(4)
	m := workload.Drive(func(id int) workload.Runner {
		return Runner{C: w.NewClient(id), E: e, Mix: DefaultMix, Meter: meter}
	}, workload.Config{
		Threads:  4,
		Duration: 150 * time.Millisecond,
		WarmUp:   20 * time.Millisecond,
		Meter:    meter,
	})
	if m.ReadTxns == 0 || m.WriteTxns == 0 {
		t.Fatalf("reads=%d writes=%d", m.ReadTxns, m.WriteTxns)
	}
	if m.TotalTPS() <= 0 || m.ReadTPS() <= 0 || m.WriteTPS() <= 0 {
		t.Fatal("zero TPS reported")
	}
	// Default mix is read-dominant, roughly 3:1.
	ratio := float64(m.ReadTxns) / float64(m.WriteTxns)
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("read:write = %.1f, want ~3", ratio)
	}
	if m.WriteLatency.Count() == 0 {
		t.Fatal("no write latencies recorded")
	}
	if m.CPUPercent <= 0 {
		t.Fatal("no CPU utilization reported")
	}
}

func TestDriveWriteConflictsCountAsAborts(t *testing.T) {
	e := newEngine(t)
	w := New(4) // tiny table: heavy write contention
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	m := workload.Drive(func(id int) workload.Runner {
		return Runner{C: w.NewClient(id), E: e, Mix: UpdateLiteMix}
	}, workload.Config{Threads: 8, Duration: 100 * time.Millisecond})
	if m.Aborts == 0 {
		t.Skip("no conflicts this run (timing dependent)")
	}
	if m.WriteTxns == 0 {
		t.Fatal("no commits despite running")
	}
}
