// Package cdb reimplements the shape of CDB, Microsoft's Cloud Database
// Benchmark (a.k.a. the DTU benchmark), which the paper uses for every
// throughput experiment (§7.1): "a synthetic database with six tables and a
// scaling factor", with "transaction types covering a wide range of
// operations from simple point lookups to complex bulk updates" and named
// workload mixes.
//
// The benchmark is closed source; this reconstruction follows the paper's
// description: six tables (two fixed-size, four scaled), six transaction
// classes, and the three mixes the evaluation uses — the default mix
// (Table 2), the update-heavy/max-log mix (Table 5), and the UpdateLite mix
// (Appendix A). Row access is zipf-skewed, which is what yields the ~50%
// cache hit rate at a 15% cache:database ratio reported in Table 3.
package cdb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"socrates/internal/engine"
	"socrates/internal/metrics"
	"socrates/internal/simdisk"
	"socrates/internal/workload"
)

// Table names: two fixed-size reference tables and four SF-scaled tables.
const (
	TableFixedSmall   = "cdb_fixed_small"   // 100 rows, reference data
	TableFixedLarge   = "cdb_fixed_large"   // 1000 rows, reference data
	TableScaledLean   = "cdb_scaled_lean"   // SF rows, narrow
	TableScaledUpdate = "cdb_scaled_update" // SF rows, update targets
	TableScaledFat    = "cdb_scaled_fat"    // SF/4 rows, wide payloads
	TableScaledInsert = "cdb_scaled_insert" // append-only inserts
)

// TxnType is one CDB transaction class.
type TxnType int

// Transaction classes, point lookups through bulk updates.
const (
	PointLookup TxnType = iota
	RangeScan
	CPUHeavy
	UpdateLite
	UpdateHeavy
	BulkInsert
	numTxnTypes
)

func (t TxnType) String() string {
	switch t {
	case PointLookup:
		return "point-lookup"
	case RangeScan:
		return "range-scan"
	case CPUHeavy:
		return "cpu-heavy"
	case UpdateLite:
		return "update-lite"
	case UpdateHeavy:
		return "update-heavy"
	case BulkInsert:
		return "bulk-insert"
	default:
		return fmt.Sprintf("txn(%d)", int(t))
	}
}

// IsWrite reports whether the class commits changes.
func (t TxnType) IsWrite() bool {
	switch t {
	case UpdateLite, UpdateHeavy, BulkInsert:
		return true
	}
	return false
}

// cpuCost is the simulated query-processing CPU per transaction class,
// charged to the node's meter (drives the paper's CPU% columns).
func (t TxnType) cpuCost() time.Duration {
	switch t {
	case PointLookup:
		return 350 * time.Microsecond
	case RangeScan:
		return 1200 * time.Microsecond
	case CPUHeavy:
		return 3 * time.Millisecond
	case UpdateLite:
		return 250 * time.Microsecond
	case UpdateHeavy:
		return 2 * time.Millisecond
	case BulkInsert:
		return 1500 * time.Microsecond
	default:
		return 0
	}
}

// Mix is a distribution over transaction classes (weights sum to 100).
type Mix struct {
	Name    string
	Weights [numTxnTypes]int
}

// The paper's three mixes.
var (
	// DefaultMix "executes all transaction types of the benchmark" with a
	// roughly 3:1 read:write transaction ratio (Table 2).
	DefaultMix = Mix{
		Name: "default",
		Weights: [numTxnTypes]int{
			PointLookup: 40, RangeScan: 20, CPUHeavy: 15,
			UpdateLite: 10, UpdateHeavy: 5, BulkInsert: 10,
		},
	}
	// MaxLogMix "produces the maximum amount of log data" (Table 5).
	MaxLogMix = Mix{
		Name: "max-log",
		Weights: [numTxnTypes]int{
			UpdateHeavy: 60, BulkInsert: 30, UpdateLite: 10,
		},
	}
	// UpdateLiteMix is "mostly small updates and no read transactions"
	// (Appendix A).
	UpdateLiteMix = Mix{
		Name:    "update-lite",
		Weights: [numTxnTypes]int{UpdateLite: 100},
	}
	// ReadOnlyMix tests read scale-out on secondaries.
	ReadOnlyMix = Mix{
		Name: "read-only",
		Weights: [numTxnTypes]int{
			PointLookup: 60, RangeScan: 25, CPUHeavy: 15,
		},
	}
)

// pick draws a transaction class.
func (m Mix) pick(r *rand.Rand) TxnType {
	n := 0
	for _, w := range m.Weights {
		n += w
	}
	x := r.Intn(n)
	for t, w := range m.Weights {
		if x < w {
			return TxnType(t)
		}
		x -= w
	}
	return PointLookup
}

// Workload is one CDB database instance's generator state.
type Workload struct {
	SF       int // rows in each scaled table
	RowBytes int // payload bytes per row (lean rows)
	zipfS    float64
}

// New creates a workload for the given scale factor. RowBytes defaults to
// 96 (narrow OLTP rows); zipf skew defaults to 1.07, calibrated so the
// default mix reproduces Table 3's cache-hit shape.
func New(sf int) *Workload {
	return &Workload{SF: sf, RowBytes: 96, zipfS: 1.03}
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func (w *Workload) payload(r *rand.Rand, n int) []byte {
	buf := make([]byte, n)
	r.Read(buf)
	return buf
}

// Setup creates the six tables and loads the initial data. Load batches
// rows to keep commit counts sane.
func (w *Workload) Setup(e *engine.Engine) error {
	tables := []struct {
		name string
		rows int
		size int
	}{
		{TableFixedSmall, 100, 64},
		{TableFixedLarge, 1000, 64},
		{TableScaledLean, w.SF, w.RowBytes},
		{TableScaledUpdate, w.SF, w.RowBytes},
		{TableScaledFat, w.SF, 512},
	}
	for _, tbl := range tables {
		if err := e.CreateTable(tbl.name); err != nil {
			return err
		}
	}
	if err := e.CreateTable(TableScaledInsert); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(42))
	for _, tbl := range tables {
		const batch = 100
		for base := 0; base < tbl.rows; base += batch {
			tx := e.Begin()
			for i := base; i < base+batch && i < tbl.rows; i++ {
				if err := tx.Put(tbl.name, key(i), w.payload(r, tbl.size)); err != nil {
					tx.Abort()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Client is one workload driver thread (its own RNG and zipf stream).
type Client struct {
	w        *Workload
	rng      *rand.Rand
	zipf     *rand.Zipf
	insertID int
	clientID int
}

// NewClient creates client number id with a deterministic RNG.
func (w *Workload) NewClient(id int) *Client {
	r := rand.New(rand.NewSource(int64(id)*7919 + 13))
	max := uint64(w.SF - 1)
	if w.SF <= 1 {
		max = 1
	}
	return &Client{
		w:        w,
		rng:      r,
		zipf:     rand.NewZipf(r, w.zipfS, 8, max),
		clientID: id,
	}
}

// hotRow draws a zipf-skewed row index.
func (c *Client) hotRow() int { return int(c.zipf.Uint64()) }

// readTarget picks the table and row a read touches. The default mix
// "randomly touches pages scattered across the entire database" (§7.3):
// reads spread over all four scaled/fixed tables, zipf-skewed within each,
// which is what yields a useful-but-not-perfect cache hit rate.
func (c *Client) readTarget() (string, int) {
	row := c.hotRow()
	switch c.rng.Intn(10) {
	case 0, 1, 2, 3:
		return TableScaledLean, row
	case 4, 5, 6:
		return TableScaledUpdate, row
	case 7, 8:
		return TableScaledFat, row
	default:
		return TableFixedLarge, row % 1000
	}
}

// TxnStats describes one executed transaction.
type TxnStats struct {
	Type     TxnType
	Latency  time.Duration
	Aborted  bool
	RowsRead int
}

// Pick draws the next transaction class from the mix.
func (c *Client) Pick(mix Mix) TxnType { return mix.pick(c.rng) }

// CPUCost reports the simulated query-processing CPU of a class.
func (t TxnType) CPUCost() time.Duration { return t.cpuCost() }

// Run executes one transaction of the mix against the engine, charging the
// meter for query-processing CPU. Write conflicts abort and are reported,
// as in any OLTP harness.
func (c *Client) Run(e *engine.Engine, mix Mix, meter *metrics.CPUMeter) (TxnStats, error) {
	return c.RunType(e, c.Pick(mix), meter)
}

// RunType executes one transaction of the given class.
func (c *Client) RunType(e *engine.Engine, t TxnType, meter *metrics.CPUMeter) (TxnStats, error) {
	start := time.Now()
	if meter != nil {
		meter.Charge(t.cpuCost())
	}
	var err error
	var rows int
	switch t {
	case PointLookup:
		rows, err = c.pointLookup(e)
	case RangeScan:
		rows, err = c.rangeScan(e, 50)
	case CPUHeavy:
		rows, err = c.rangeScan(e, 200)
	case UpdateLite:
		err = c.updateRows(e, TableScaledUpdate, 1, 80)
	case UpdateHeavy:
		err = c.updateRows(e, TableScaledFat, 8, 512)
	case BulkInsert:
		err = c.bulkInsert(e, 20)
	}
	stats := TxnStats{Type: t, Latency: time.Since(start), RowsRead: rows}
	if err != nil {
		stats.Aborted = true
	}
	return stats, err
}

func (c *Client) pointLookup(e *engine.Engine) (int, error) {
	tx := e.BeginRO()
	defer tx.Abort()
	table, row := c.readTarget()
	_, found, err := tx.Get(table, key(row))
	if err != nil {
		return 0, err
	}
	if found {
		return 1, nil
	}
	return 0, nil
}

func (c *Client) rangeScan(e *engine.Engine, span int) (int, error) {
	tx := e.BeginRO()
	defer tx.Abort()
	table, lo := c.readTarget()
	count := 0
	err := tx.Scan(table, key(lo), key(lo+span), func(k, v []byte) bool {
		count++
		return true
	})
	return count, err
}

func (c *Client) updateRows(e *engine.Engine, table string, n, size int) error {
	tx := e.Begin()
	for i := 0; i < n; i++ {
		// Updates spread uniformly: CDB's write classes touch the whole
		// table (zipf locality applies to the read classes). A zipf-hot
		// write target would turn the benchmark into a lock-conflict
		// storm under first-updater-wins.
		row := c.rng.Intn(c.w.SF)
		if err := tx.Put(table, key(row), c.w.payload(c.rng, size)); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// Runner adapts a client to the generic workload driver, binding the
// engine, mix, and meter. Gate, if non-nil, is a semaphore sized to the
// node's core count: each transaction's query-processing CPU is burned as
// wall-clock time while holding a slot, so throughput becomes CPU-bound at
// the simulated core count — the regime of the paper's Table 2, where both
// systems run near 100% CPU and I/O waits shave throughput.
type Runner struct {
	C     *Client
	E     *engine.Engine
	Mix   Mix
	Meter *metrics.CPUMeter
	Gate  chan struct{}
}

// Run implements workload.Runner.
func (r Runner) Run() (workload.Outcome, error) {
	t := r.C.Pick(r.Mix)
	if r.Gate != nil {
		r.Gate <- struct{}{}
		simdisk.SleepPrecise(t.cpuCost())
		<-r.Gate
	}
	stats, err := r.C.RunType(r.E, t, r.Meter)
	kind := workload.Read
	if stats.Type.IsWrite() {
		kind = workload.Write
	}
	return workload.Outcome{Kind: kind, Latency: stats.Latency, Aborted: stats.Aborted}, err
}

func (c *Client) bulkInsert(e *engine.Engine, n int) error {
	tx := e.Begin()
	for i := 0; i < n; i++ {
		id := c.clientID*1_000_000_000 + c.insertID
		c.insertID++
		if err := tx.Put(TableScaledInsert, key(id), c.w.payload(c.rng, c.w.RowBytes)); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}
