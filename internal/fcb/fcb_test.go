package fcb

import (
	"bytes"
	"errors"
	"testing"

	"socrates/internal/page"
	"socrates/internal/simdisk"
)

func TestMemFileRoundTrip(t *testing.T) {
	f := NewMemFile()
	pg := &page.Page{ID: 5, LSN: 9, Type: page.TypeLeaf, Data: []byte("rows")}
	if err := f.Write(pg); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 9 || !bytes.Equal(got.Data, pg.Data) {
		t.Fatalf("got %+v", got)
	}
	if _, err := f.Read(6); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestMemFileIsolation(t *testing.T) {
	f := NewMemFile()
	pg := &page.Page{ID: 1, Type: page.TypeLeaf, Data: []byte("abc")}
	_ = f.Write(pg)
	pg.Data[0] = 'X'
	got, _ := f.Read(1)
	if got.Data[0] != 'a' {
		t.Fatal("Write aliased caller buffer")
	}
	got.Data[0] = 'Y'
	again, _ := f.Read(1)
	if again.Data[0] != 'a' {
		t.Fatal("Read leaked internal buffer")
	}
}

func TestMemFileRange(t *testing.T) {
	f := NewMemFile()
	for i := 1; i <= 4; i++ {
		_ = f.Write(&page.Page{ID: page.ID(i), Type: page.TypeLeaf})
	}
	seen := 0
	f.Range(func(*page.Page) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Fatalf("range visited %d", seen)
	}
}

func TestDiskFileRoundTripAndRecovery(t *testing.T) {
	dev := simdisk.New(simdisk.Instant)
	f, err := OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i += 2 { // sparse writes leave holes
		pg := &page.Page{ID: page.ID(i), LSN: page.LSN(i), Type: page.TypeLeaf,
			Data: []byte{byte(i)}}
		if err := f.Write(pg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Read(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("hole read err = %v", err)
	}

	// Reopen: recovery must index exactly the written pages.
	re, err := OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 {
		t.Fatalf("recovered %d pages, want 4", re.Len())
	}
	pg, err := re.Read(6)
	if err != nil || pg.Data[0] != 6 {
		t.Fatalf("read 6: %+v %v", pg, err)
	}
	if _, err := re.Read(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("hole after recovery: %v", err)
	}
}

func TestDiskFileOverwrite(t *testing.T) {
	dev := simdisk.New(simdisk.Instant)
	f, _ := OpenDisk(dev)
	_ = f.Write(&page.Page{ID: 1, LSN: 1, Type: page.TypeLeaf, Data: []byte("old")})
	_ = f.Write(&page.Page{ID: 1, LSN: 2, Type: page.TypeLeaf, Data: []byte("new")})
	pg, err := f.Read(1)
	if err != nil || string(pg.Data) != "new" || pg.LSN != 2 {
		t.Fatalf("got %+v %v", pg, err)
	}
}
