// Package fcb is the I/O stack virtualization layer (§3.6). SQL Server
// abstracts every device behind a "File Control Block"; Socrates slots new
// FCB implementations underneath the engine so that "most components
// believe they are components of a monolithic, standalone database system".
//
// Here the same role is played by the PageFile interface: the storage
// engine (B-tree, version store, transaction manager) reads and writes
// pages through a PageFile and never learns whether pages live in a local
// memory map (unit tests), on a local simulated disk (HADR replicas), or
// behind an RBPEX cache backed by remote page servers via GetPage@LSN
// (Socrates compute nodes — implemented in internal/compute).
package fcb

import (
	"errors"
	"fmt"
	"sync"

	"socrates/internal/page"
	"socrates/internal/simdisk"
)

// ErrNotFound reports a read of a page that was never written.
var ErrNotFound = errors.New("fcb: page not found")

// PageFile is the engine's view of page storage.
type PageFile interface {
	// Read returns the current version of the page. Implementations
	// backed by remote storage block until they can serve a version at
	// least as new as the caller's node requires (GetPage@LSN).
	Read(id page.ID) (*page.Page, error)
	// Write installs a new version of the page.
	Write(pg *page.Page) error
}

// MemFile is a PageFile held entirely in memory — the FCB used by unit
// tests and by throwaway engines (e.g. PITR replay scratch space).
type MemFile struct {
	mu    sync.RWMutex
	pages map[page.ID]*page.Page
}

// NewMemFile returns an empty in-memory page file.
func NewMemFile() *MemFile {
	return &MemFile{pages: make(map[page.ID]*page.Page)}
}

// Read returns a copy of the page.
func (f *MemFile) Read(id page.ID) (*page.Page, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	pg, ok := f.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: page %d", ErrNotFound, id)
	}
	return pg.Clone(), nil
}

// Write stores a copy of the page.
func (f *MemFile) Write(pg *page.Page) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages[pg.ID] = pg.Clone()
	return nil
}

// Len reports the number of stored pages.
func (f *MemFile) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages)
}

// Range calls fn for every page until fn returns false.
func (f *MemFile) Range(fn func(*page.Page) bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, pg := range f.pages {
		if !fn(pg.Clone()) {
			return
		}
	}
}

// DiskFile is a PageFile over a simulated device: page k lives at offset
// k * page.Size. HADR replicas use it for their full local database copy.
type DiskFile struct {
	dev *simdisk.Device

	mu      sync.Mutex
	written map[page.ID]bool
}

// OpenDisk opens (and, if the device already holds pages, recovers) a
// disk-backed page file. Recovery scans the device and indexes every page
// that decodes cleanly.
func OpenDisk(dev *simdisk.Device) (*DiskFile, error) {
	f := &DiskFile{dev: dev, written: make(map[page.ID]bool)}
	n := dev.Size() / page.Size
	buf := make([]byte, page.Size)
	for i := int64(0); i < n; i++ {
		if err := dev.ReadAt(buf, i*page.Size); err != nil {
			return nil, err
		}
		pg, err := page.Decode(buf)
		if err != nil {
			continue // unused or torn slot
		}
		if int64(pg.ID) == i {
			f.written[pg.ID] = true
		}
	}
	return f, nil
}

// Read fetches and decodes the page from disk.
func (f *DiskFile) Read(id page.ID) (*page.Page, error) {
	f.mu.Lock()
	ok := f.written[id]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: page %d", ErrNotFound, id)
	}
	buf := make([]byte, page.Size)
	if err := f.dev.ReadAt(buf, int64(id)*page.Size); err != nil {
		return nil, err
	}
	return page.Decode(buf)
}

// Write encodes and persists the page.
func (f *DiskFile) Write(pg *page.Page) error {
	buf, err := pg.Encode()
	if err != nil {
		return err
	}
	if err := f.dev.WriteAt(buf, int64(pg.ID)*page.Size); err != nil {
		return err
	}
	f.mu.Lock()
	f.written[pg.ID] = true
	f.mu.Unlock()
	return nil
}

// Len reports the number of pages present.
func (f *DiskFile) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.written)
}

// Range calls fn for every stored page until fn returns false. Iteration
// order is unspecified. Used for O(size-of-data) full copies (HADR seeding).
func (f *DiskFile) Range(fn func(*page.Page) bool) {
	f.mu.Lock()
	ids := make([]page.ID, 0, len(f.written))
	for id := range f.written {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	for _, id := range ids {
		pg, err := f.Read(id)
		if err != nil {
			continue
		}
		if !fn(pg) {
			return
		}
	}
}

var (
	_ PageFile = (*MemFile)(nil)
	_ PageFile = (*DiskFile)(nil)
)
