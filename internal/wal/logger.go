package wal

import (
	"sync"

	"socrates/internal/page"
)

// Logger is the engine's handle to the log: Append assigns the record its
// LSN and stages it for durability. On the Socrates primary the Logger is
// the log writer feeding the landing zone; on HADR it feeds local log +
// replication; in tests it is a MemLog.
type Logger interface {
	Append(*Record) page.LSN
}

// MemLog is an in-memory Logger for tests and scratch replay engines: it
// assigns dense LSNs starting at 1 and retains every record.
type MemLog struct {
	mu   sync.Mutex
	recs []*Record
	next page.LSN
}

// NewMemLog returns an empty log whose first LSN is 1.
func NewMemLog() *MemLog { return &MemLog{next: 1} }

// Append assigns the next LSN and retains the record.
func (l *MemLog) Append(r *Record) page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.next
	l.next = l.next.Next()
	l.recs = append(l.recs, r)
	return r.LSN
}

// NextLSN reports the LSN the next record will receive.
func (l *MemLog) NextLSN() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Records returns a snapshot of all records in LSN order.
func (l *MemLog) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.recs...)
}

// Since returns records with LSN >= from, in order.
func (l *MemLog) Since(from page.LSN) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Record
	for _, r := range l.recs {
		if r.LSN.AtLeast(from) {
			out = append(out, r)
		}
	}
	return out
}
