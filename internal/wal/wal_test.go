package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"socrates/internal/page"
)

func sampleRecords() []*Record {
	return []*Record{
		{Kind: KindTxnBegin, Txn: 1},
		{Kind: KindCellPut, Txn: 1, Page: 10, PageType: page.TypeLeaf,
			Key: []byte("k1"), Value: []byte("v1")},
		{Kind: KindCellDelete, Txn: 1, Page: 250, PageType: page.TypeLeaf,
			Key: []byte("k2")},
		NewCommit(1, 99),
		{Kind: KindPageImage, Txn: 0, Page: 10, PageType: page.TypeLeaf,
			Value: bytes.Repeat([]byte{7}, 100)},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		r.LSN = 12345
		buf := r.appendTo(nil)
		if len(buf) != r.encodedSize() {
			t.Fatalf("encodedSize %d != actual %d for %v", r.encodedSize(), len(buf), r.Kind)
		}
		got, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("decoded %+v, want %+v", got, r)
		}
	}
}

func TestDecodeRecordTruncation(t *testing.T) {
	r := &Record{Kind: KindCellPut, Page: 1, Key: []byte("key"), Value: []byte("value")}
	buf := r.appendTo(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := decodeRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestCommitTS(t *testing.T) {
	r := NewCommit(5, 777)
	if r.CommitTS() != 777 || r.Txn != 5 {
		t.Fatalf("commit record %+v", r)
	}
	other := &Record{Kind: KindTxnBegin}
	if other.CommitTS() != 0 {
		t.Fatal("non-commit record should report 0 commit TS")
	}
}

func TestIsPageOp(t *testing.T) {
	pageOps := map[Kind]bool{
		KindNoop: false, KindTxnBegin: false, KindTxnCommit: false,
		KindTxnAbort: false, KindPageImage: true, KindCellPut: true,
		KindCellDelete: true, KindCheckpoint: false,
	}
	for k, want := range pageOps {
		r := &Record{Kind: k}
		if r.IsPageOp() != want {
			t.Errorf("IsPageOp(%v) = %v, want %v", k, !want, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindCellPut.String() != "cell-put" || Kind(200).String() != "kind(200)" {
		t.Fatal("Kind.String broken")
	}
}

func TestBuilderAssignsConsecutiveLSNs(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 100}
	bld := NewBuilder(50, pt)
	for i, r := range sampleRecords() {
		lsn := bld.Append(r)
		if lsn != page.LSN(50+i) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if bld.NextLSN() != 55 {
		t.Fatalf("next = %d", bld.NextLSN())
	}
	b := bld.Flush()
	if b.Start != 50 || b.End != 55 || len(b.Records) != 5 {
		t.Fatalf("block [%d,%d) with %d records", b.Start, b.End, len(b.Records))
	}
	// Pages 10 (partition 0) and 250 (partition 2) were touched.
	if len(b.Partitions) != 2 || b.Partitions[0] != 0 || b.Partitions[1] != 2 {
		t.Fatalf("partitions = %v", b.Partitions)
	}
	if !b.Touches(0) || !b.Touches(2) || b.Touches(1) {
		t.Fatal("Touches wrong")
	}
}

func TestBuilderFlushResets(t *testing.T) {
	bld := NewBuilder(1, page.Partitioning{})
	bld.Append(&Record{Kind: KindNoop})
	first := bld.Flush()
	if first == nil || bld.PendingCount() != 0 || bld.PendingBytes() != 0 {
		t.Fatal("flush did not reset builder")
	}
	if bld.Flush() != nil {
		t.Fatal("empty flush should return nil")
	}
	bld.Append(&Record{Kind: KindNoop})
	second := bld.Flush()
	if second.Start != first.End {
		t.Fatalf("blocks not contiguous: %d then %d", first.End, second.Start)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 100}
	bld := NewBuilder(1, pt)
	for _, r := range sampleRecords() {
		bld.Append(r)
	}
	b := bld.Flush()
	buf := b.Encode()
	if len(buf) != b.EncodedSize() {
		t.Fatalf("EncodedSize %d != actual %d", b.EncodedSize(), len(buf))
	}
	got, n, err := DecodeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("decoded block differs:\n got %+v\nwant %+v", got, b)
	}
}

func TestBlockStreamDecoding(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 10}
	bld := NewBuilder(1, pt)
	var stream []byte
	var want []*Block
	for i := 0; i < 4; i++ {
		bld.Append(&Record{Kind: KindCellPut, Page: page.ID(i * 15),
			Key: []byte{byte(i)}, Value: []byte{byte(i + 1)}})
		b := bld.Flush()
		want = append(want, b)
		stream = append(stream, b.Encode()...)
	}
	var got []*Block
	for len(stream) > 0 {
		b, n, err := DecodeBlock(stream)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
		stream = stream[n:]
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stream decode mismatch")
	}
}

func TestBlockCorruptionDetected(t *testing.T) {
	bld := NewBuilder(1, page.Partitioning{})
	bld.Append(&Record{Kind: KindCellPut, Page: 1, Key: []byte("k"), Value: []byte("v")})
	buf := bld.Flush().Encode()

	mut := append([]byte(nil), buf...)
	mut[len(mut)-1] ^= 0xFF
	if _, _, err := DecodeBlock(mut); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("payload corruption: %v", err)
	}

	mut = append([]byte(nil), buf...)
	mut[0] = 0
	if _, _, err := DecodeBlock(mut); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("magic corruption: %v", err)
	}

	if _, _, err := DecodeBlock(buf[:10]); !errors.Is(err, ErrBadBlock) {
		t.Fatal("short buffer undetected")
	}
	if _, _, err := DecodeBlock(buf[:len(buf)-3]); !errors.Is(err, ErrBadBlock) {
		t.Fatal("truncated payload undetected")
	}
}

func TestComputePartitionsIgnoresNonPageOps(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 10}
	recs := []*Record{
		{Kind: KindTxnBegin, Txn: 1},
		NewCommit(1, 5),
		{Kind: KindCheckpoint},
	}
	if got := ComputePartitions(recs, pt); len(got) != 0 {
		t.Fatalf("partitions = %v, want empty", got)
	}
}

func TestComputePartitionsSortedUnique(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 10}
	recs := []*Record{
		{Kind: KindCellPut, Page: 95},
		{Kind: KindCellPut, Page: 5},
		{Kind: KindCellPut, Page: 7},
		{Kind: KindPageImage, Page: 50},
	}
	got := ComputePartitions(recs, pt)
	want := []page.PartitionID{0, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partitions = %v, want %v", got, want)
	}
}

// Property: block codec round-trips arbitrary record batches.
func TestBlockCodecProperty(t *testing.T) {
	type recSpec struct {
		Kind  uint8
		Txn   uint64
		Page  uint32
		Key   []byte
		Value []byte
	}
	f := func(specs []recSpec, startLSN uint32) bool {
		if len(specs) == 0 {
			return true
		}
		pt := page.Partitioning{PagesPerPartition: 64}
		norm := func(b []byte) []byte { // decode yields nil for empty fields
			if len(b) == 0 {
				return nil
			}
			return b
		}
		bld := NewBuilder(page.LSN(startLSN), pt)
		for _, s := range specs {
			bld.Append(&Record{
				Kind: Kind(s.Kind % 8), Txn: s.Txn, Page: page.ID(s.Page),
				Key: norm(s.Key), Value: norm(s.Value),
			})
		}
		b := bld.Flush()
		got, n, err := DecodeBlock(b.Encode())
		if err != nil || n != b.EncodedSize() {
			return false
		}
		return reflect.DeepEqual(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LSNs within a builder's output are dense and blocks abut.
func TestBuilderLSNContiguityProperty(t *testing.T) {
	f := func(batches []uint8) bool {
		bld := NewBuilder(1, page.Partitioning{})
		prevEnd := page.LSN(1)
		for _, n := range batches {
			count := int(n%5) + 1
			for i := 0; i < count; i++ {
				bld.Append(&Record{Kind: KindNoop})
			}
			b := bld.Flush()
			if b.Start != prevEnd || b.End != b.Start+page.LSN(count) {
				return false
			}
			for i, r := range b.Records {
				if r.LSN != b.Start+page.LSN(i) {
					return false
				}
			}
			prevEnd = b.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
