// Package wal defines the Socrates log: record and block formats, the
// binary codec, and the block builder the primary uses to assemble log
// blocks for the landing zone and the XLOG feed.
//
// The log is physiological: records describe page-level mutations (put or
// delete a cell on a page, install a whole page image) plus transaction
// control records. Redo is idempotent — a record applies to a page only if
// the record's LSN is newer than the page's LSN — which is what makes the
// GetPage@LSN protocol and multi-consumer log apply safe.
//
// Records are grouped into blocks, the unit of landing-zone writes and XLOG
// dissemination. Each block carries an out-of-band annotation listing the
// page-server partitions its records touch, so XLOG can filter dissemination
// per page server (§4.6: "the Primary includes sufficient out-of-band
// annotations for each log block").
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"socrates/internal/page"
)

// Kind discriminates log record types.
type Kind uint8

// Record kinds.
const (
	KindNoop       Kind = iota // padding / testing
	KindTxnBegin               // transaction started
	KindTxnCommit              // transaction committed; Value = commit timestamp (8 bytes)
	KindTxnAbort               // transaction aborted
	KindPageImage              // full after-image of a page (structural ops)
	KindCellPut                // put Key→Value into a page's cell area
	KindCellDelete             // delete Key from a page's cell area
	KindCheckpoint             // checkpoint marker (bookkeeping)
)

func (k Kind) String() string {
	switch k {
	case KindNoop:
		return "noop"
	case KindTxnBegin:
		return "begin"
	case KindTxnCommit:
		return "commit"
	case KindTxnAbort:
		return "abort"
	case KindPageImage:
		return "page-image"
	case KindCellPut:
		return "cell-put"
	case KindCellDelete:
		return "cell-delete"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one log record. Page, PageType, Key, and Value are meaningful
// only for the page-mutation kinds.
type Record struct {
	LSN      page.LSN
	Txn      uint64
	Kind     Kind
	Page     page.ID
	PageType page.Type
	Key      []byte
	Value    []byte

	// TraceID and SpanID are an in-memory-only observability annotation:
	// a commit record appended by a traced transaction carries its span
	// identity so the log flusher can attribute the landing-zone write
	// back to the commit's span tree. They are NOT part of the log format
	// — the codec neither encodes nor recovers them (a replayed or pulled
	// record has no originating request to attribute to).
	TraceID uint64
	SpanID  uint64
}

// IsPageOp reports whether the record mutates a page.
func (r *Record) IsPageOp() bool {
	switch r.Kind {
	case KindPageImage, KindCellPut, KindCellDelete:
		return true
	}
	return false
}

// CommitTS extracts the commit timestamp from a KindTxnCommit record.
func (r *Record) CommitTS() uint64 {
	if r.Kind != KindTxnCommit || len(r.Value) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(r.Value)
}

// NewCommit builds a commit record carrying the commit timestamp.
func NewCommit(txn, commitTS uint64) *Record {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, commitTS)
	return &Record{Txn: txn, Kind: KindTxnCommit, Value: v}
}

// encodedSize reports the exact encoding size of the record.
func (r *Record) encodedSize() int {
	return 1 + 8 + 8 + 8 + 1 + 4 + len(r.Key) + 4 + len(r.Value)
}

// appendTo encodes the record onto buf.
func (r *Record) appendTo(buf []byte) []byte {
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN.Uint64())
	buf = binary.LittleEndian.AppendUint64(buf, r.Txn)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Page))
	buf = append(buf, byte(r.PageType))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Value)))
	buf = append(buf, r.Value...)
	return buf
}

// decodeRecord parses one record from buf, returning it and the bytes consumed.
func decodeRecord(buf []byte) (*Record, int, error) {
	const fixed = 1 + 8 + 8 + 8 + 1 + 4
	if len(buf) < fixed {
		return nil, 0, errors.New("wal: truncated record header")
	}
	r := &Record{Kind: Kind(buf[0])}
	r.LSN = page.LSN(binary.LittleEndian.Uint64(buf[1:9]))
	r.Txn = binary.LittleEndian.Uint64(buf[9:17])
	r.Page = page.ID(binary.LittleEndian.Uint64(buf[17:25]))
	r.PageType = page.Type(buf[25])
	klen := int(binary.LittleEndian.Uint32(buf[26:30]))
	pos := 30
	if len(buf) < pos+klen+4 {
		return nil, 0, errors.New("wal: truncated record key")
	}
	if klen > 0 {
		r.Key = append([]byte(nil), buf[pos:pos+klen]...)
	}
	pos += klen
	vlen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) < pos+vlen {
		return nil, 0, errors.New("wal: truncated record value")
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), buf[pos:pos+vlen]...)
	}
	pos += vlen
	return r, pos, nil
}

// Block is the unit of landing-zone writes and XLOG dissemination: a run of
// consecutive records [Start, End) plus the partition annotation.
type Block struct {
	Start      page.LSN           // LSN of the first record
	End        page.LSN           // LSN after the last record
	Partitions []page.PartitionID // partitions touched, sorted
	Records    []*Record
}

// Touches reports whether the block contains records for the partition.
func (b *Block) Touches(pt page.PartitionID) bool {
	for _, p := range b.Partitions {
		if p == pt {
			return true
		}
	}
	return false
}

const blockMagic = 0xB10C50C7

// ErrBadBlock reports a corrupt or truncated block image.
var ErrBadBlock = errors.New("wal: bad block")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the block with a checksum.
//
// Layout (little endian):
//
//	magic u32 | start u64 | end u64 | nrec u32 | npart u16 |
//	partitions u32 each | payloadLen u32 | crc u32 | records...
func (b *Block) Encode() []byte {
	payload := make([]byte, 0, 64)
	for _, r := range b.Records {
		payload = r.appendTo(payload)
	}
	head := make([]byte, 0, 34+4*len(b.Partitions))
	head = binary.LittleEndian.AppendUint32(head, blockMagic)
	head = binary.LittleEndian.AppendUint64(head, b.Start.Uint64())
	head = binary.LittleEndian.AppendUint64(head, b.End.Uint64())
	head = binary.LittleEndian.AppendUint32(head, uint32(len(b.Records)))
	head = binary.LittleEndian.AppendUint16(head, uint16(len(b.Partitions)))
	for _, p := range b.Partitions {
		head = binary.LittleEndian.AppendUint32(head, uint32(p))
	}
	head = binary.LittleEndian.AppendUint32(head, uint32(len(payload)))
	head = binary.LittleEndian.AppendUint32(head, crc32.Checksum(payload, crcTable))
	return append(head, payload...)
}

// DecodeBlock parses a block image produced by Encode, returning the block
// and the total bytes consumed (blocks may be concatenated in a stream).
func DecodeBlock(buf []byte) (*Block, int, error) {
	if len(buf) < 26 {
		return nil, 0, fmt.Errorf("%w: short header", ErrBadBlock)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != blockMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadBlock)
	}
	b := &Block{
		Start: page.LSN(binary.LittleEndian.Uint64(buf[4:12])),
		End:   page.LSN(binary.LittleEndian.Uint64(buf[12:20])),
	}
	nrec := int(binary.LittleEndian.Uint32(buf[20:24]))
	npart := int(binary.LittleEndian.Uint16(buf[24:26]))
	pos := 26
	if len(buf) < pos+4*npart+8 {
		return nil, 0, fmt.Errorf("%w: short partition list", ErrBadBlock)
	}
	for i := 0; i < npart; i++ {
		b.Partitions = append(b.Partitions,
			page.PartitionID(binary.LittleEndian.Uint32(buf[pos:pos+4])))
		pos += 4
	}
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	wantCRC := binary.LittleEndian.Uint32(buf[pos : pos+4])
	pos += 4
	if len(buf) < pos+plen {
		return nil, 0, fmt.Errorf("%w: short payload", ErrBadBlock)
	}
	payload := buf[pos : pos+plen]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadBlock)
	}
	rest := payload
	for i := 0; i < nrec; i++ {
		r, n, err := decodeRecord(rest)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: record %d: %v", ErrBadBlock, i, err)
		}
		b.Records = append(b.Records, r)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrBadBlock, len(rest))
	}
	return b, pos + plen, nil
}

// EncodedSize reports the exact size Encode will produce.
func (b *Block) EncodedSize() int {
	n := 34 + 4*len(b.Partitions)
	for _, r := range b.Records {
		n += r.encodedSize()
	}
	return n
}

// ComputePartitions returns the sorted set of partitions the records touch
// under the given partitioning.
func ComputePartitions(records []*Record, pt page.Partitioning) []page.PartitionID {
	seen := make(map[page.PartitionID]struct{})
	for _, r := range records {
		if r.IsPageOp() {
			seen[pt.PartitionOf(r.Page)] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]page.PartitionID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Builder accumulates records into a block. The primary's log writer keeps
// one Builder per in-flight block and flushes on size or commit boundaries.
type Builder struct {
	pt      page.Partitioning
	records []*Record
	next    page.LSN
	start   page.LSN
	bytes   int
}

// NewBuilder creates a builder that assigns LSNs starting at next and
// annotates partitions under pt.
func NewBuilder(next page.LSN, pt page.Partitioning) *Builder {
	return &Builder{pt: pt, next: next, start: next}
}

// Append assigns the next LSN to r and adds it to the pending block.
func (bld *Builder) Append(r *Record) page.LSN {
	r.LSN = bld.next
	bld.next = bld.next.Next()
	bld.records = append(bld.records, r)
	bld.bytes += r.encodedSize()
	return r.LSN
}

// PendingBytes reports the encoded size of the pending records.
func (bld *Builder) PendingBytes() int { return bld.bytes }

// PendingCount reports the number of pending records.
func (bld *Builder) PendingCount() int { return len(bld.records) }

// NextLSN reports the LSN the next appended record will receive.
func (bld *Builder) NextLSN() page.LSN { return bld.next }

// Flush cuts a block containing all pending records and resets the builder
// for the following block. Flushing with no pending records returns nil.
func (bld *Builder) Flush() *Block {
	if len(bld.records) == 0 {
		return nil
	}
	b := &Block{
		Start:      bld.start,
		End:        bld.next,
		Partitions: ComputePartitions(bld.records, bld.pt),
		Records:    bld.records,
	}
	bld.records = nil
	bld.bytes = 0
	bld.start = bld.next
	return b
}
