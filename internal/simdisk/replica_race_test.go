package simdisk

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestReplicatedConcurrentWritersAndReaders hammers one replicated volume
// from writer, reader, and size-probe goroutines at once. Run under -race it
// proves the quorum-write path (per-replica writeRaw + latency aggregation)
// and the first-healthy-replica read path share no unsynchronized state.
func TestReplicatedConcurrentWritersAndReaders(t *testing.T) {
	r, err := NewReplicated(Instant, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		slots   = 32
		slotLen = 64
	)
	// Pre-write every slot so readers never race an unwritten extent.
	for s := 0; s < slots; s++ {
		if err := r.WriteAt(slotPayload(s, 0, slotLen), int64(s*slotLen)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				slot := (w*50 + i) % slots
				if w%2 == 0 {
					// Writers own disjoint slots per iteration (slot parity
					// by worker) — concurrent writes to one offset have no
					// defined winner and would fail the content check.
					if err := r.WriteAt(slotPayload(slot, w, slotLen), int64(slot*slotLen)); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				} else {
					buf := make([]byte, slotLen)
					if err := r.ReadAt(buf, int64(slot*slotLen)); err != nil {
						t.Errorf("read: %v", err)
						return
					}
					if !bytes.HasPrefix(buf, []byte(fmt.Sprintf("slot%02d:", slot))) {
						t.Errorf("slot %d corrupted: %q", slot, buf[:8])
						return
					}
				}
				_ = r.Size()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Size(); got != slots*slotLen {
		t.Fatalf("size = %d, want %d", got, slots*slotLen)
	}
}

// slotPayload builds a slot-tagged payload so readers can verify they never
// observe bytes from another slot.
func slotPayload(slot, writer, n int) []byte {
	p := bytes.Repeat([]byte{byte('a' + writer%26)}, n)
	copy(p, fmt.Sprintf("slot%02d:", slot))
	return p
}

// TestReplicatedConcurrentFailureInjection interleaves quorum writes with
// outage toggles and one-shot failure injection on individual replicas. The
// quorum is 2-of-3, so with at most one replica down every write must still
// succeed — and the failure bookkeeping must be race-free.
func TestReplicatedConcurrentFailureInjection(t *testing.T) {
	r, err := NewReplicated(Instant, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		victim := r.Replicas()[0]
		for i := 0; ; i++ {
			select {
			case <-stop:
				victim.SetOutage(false)
				return
			default:
			}
			switch i % 3 {
			case 0:
				victim.SetOutage(true)
			case 1:
				victim.SetOutage(false)
			case 2:
				victim.FailNext(injected)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if err := r.WriteAt([]byte("quorum-payload"), int64(i*16)); err != nil {
			t.Fatalf("write %d: quorum should survive one flapping replica: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	buf := make([]byte, 14)
	if err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
}
