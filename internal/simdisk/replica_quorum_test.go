package simdisk

import (
	"bytes"
	"testing"
)

// newFlexVol builds the landing-zone shape: 3 replicas, write quorum 2,
// zero-latency profile.
func newFlexVol(t *testing.T) *Replicated {
	t.Helper()
	r, err := NewReplicated(Instant, 3, 2)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	return r
}

func fill(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

// A write acked while one replica is dark must be served from a replica
// that actually holds it — never from the healed straggler, whose extent
// grows zero-filled over the missed range.
func TestFlexibleQuorumRoutesReadsAroundStraggler(t *testing.T) {
	r := newFlexVol(t)
	if err := r.WriteAt(fill('a', 64), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Replica 0 goes dark: it is the FIRST replica ReadAt consults, so a
	// missing filter would serve its zeros.
	r.Replicas()[0].SetOutage(true)
	if err := r.WriteAt(fill('b', 64), 64); err != nil {
		t.Fatalf("write during outage: %v", err)
	}
	if got := r.AckedCopies(64, 64); got != 2 {
		t.Fatalf("AckedCopies during outage = %d, want 2", got)
	}
	r.Replicas()[0].SetOutage(false)
	// A later write past the missed range grows the healed replica's
	// extent, zero-filling the hole — the divergence hazard.
	if err := r.WriteAt(fill('c', 64), 128); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	got := make([]byte, 64)
	if err := r.ReadAt(got, 64); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, fill('b', 64)) {
		t.Fatalf("read served stale/zero data from straggler: %q", got[:8])
	}
	if n := r.MissedBytes(0); n != 64 {
		t.Fatalf("MissedBytes(0) = %d, want 64", n)
	}
}

func TestReconcileRepairsStraggler(t *testing.T) {
	r := newFlexVol(t)
	r.Replicas()[2].SetOutage(true)
	if err := r.WriteAt(fill('x', 100), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := r.WriteAt(fill('y', 50), 100); err != nil {
		t.Fatalf("write: %v", err)
	}
	r.Replicas()[2].SetOutage(false)
	repaired, err := r.Reconcile()
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if repaired != 150 {
		t.Fatalf("repaired %d bytes, want 150", repaired)
	}
	if n := r.MissedBytes(2); n != 0 {
		t.Fatalf("MissedBytes(2) after reconcile = %d, want 0", n)
	}
	if got := r.AckedCopies(0, 150); got != 3 {
		t.Fatalf("AckedCopies after reconcile = %d, want 3", got)
	}
	// The repaired replica itself now serves the bytes.
	got := make([]byte, 150)
	if err := r.Replicas()[2].ReadAt(got, 0); err != nil {
		t.Fatalf("read straggler: %v", err)
	}
	want := append(fill('x', 100), fill('y', 50)...)
	if !bytes.Equal(got, want) {
		t.Fatal("straggler holds wrong bytes after reconcile")
	}
}

// Reconcile must not clear a miss it could not repair: a replica still in
// outage refuses the copy-back write, and the miss stays recorded so reads
// keep routing around it.
func TestReconcileWhileDarkKeepsMissRecorded(t *testing.T) {
	r := newFlexVol(t)
	r.Replicas()[1].SetOutage(true)
	if err := r.WriteAt(fill('d', 32), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := r.Reconcile(); err == nil {
		t.Fatal("Reconcile on a dark replica should report the failed repair")
	}
	if n := r.MissedBytes(1); n != 32 {
		t.Fatalf("MissedBytes(1) = %d, want 32 (miss must survive failed repair)", n)
	}
	r.Replicas()[1].SetOutage(false)
	if _, err := r.Reconcile(); err != nil {
		t.Fatalf("Reconcile after heal: %v", err)
	}
	if n := r.MissedBytes(1); n != 0 {
		t.Fatalf("MissedBytes(1) = %d, want 0", n)
	}
}

// A successful overlapping rewrite makes the straggler current again for
// that range without an explicit reconcile.
func TestOverlappingRewriteClearsMiss(t *testing.T) {
	r := newFlexVol(t)
	r.Replicas()[0].SetOutage(true)
	if err := r.WriteAt(fill('e', 48), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	r.Replicas()[0].SetOutage(false)
	if err := r.WriteAt(fill('f', 48), 0); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if n := r.MissedBytes(0); n != 0 {
		t.Fatalf("MissedBytes(0) = %d, want 0 after full overlapping rewrite", n)
	}
	if got := r.AckedCopies(0, 48); got != 3 {
		t.Fatalf("AckedCopies = %d, want 3", got)
	}
	// Partial rewrite trims, not clears.
	r.Replicas()[0].SetOutage(true)
	if err := r.WriteAt(fill('g', 48), 100); err != nil {
		t.Fatalf("write: %v", err)
	}
	r.Replicas()[0].SetOutage(false)
	if err := r.WriteAt(fill('h', 16), 100); err != nil {
		t.Fatalf("partial rewrite: %v", err)
	}
	if n := r.MissedBytes(0); n != 32 {
		t.Fatalf("MissedBytes(0) = %d, want 32 after partial rewrite", n)
	}
}

func TestExtentSetOps(t *testing.T) {
	var s extentSet
	s = s.add(0, 10)
	s = s.add(20, 30)
	s = s.add(5, 25) // bridges both
	if len(s) != 1 || s[0] != (extent{0, 30}) {
		t.Fatalf("merge: %v", s)
	}
	s = s.sub(10, 20) // split
	if len(s) != 2 || s[0] != (extent{0, 10}) || s[1] != (extent{20, 30}) {
		t.Fatalf("split: %v", s)
	}
	if !s.overlaps(9, 11) || s.overlaps(10, 20) || !s.overlaps(25, 26) {
		t.Fatalf("overlaps: %v", s)
	}
	s = s.sub(0, 100)
	if len(s) != 0 {
		t.Fatalf("clear: %v", s)
	}
}
