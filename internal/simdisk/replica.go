package simdisk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"socrates/internal/obs"
)

// ErrQuorumLost is returned when a quorum write cannot reach enough replicas.
var ErrQuorumLost = errors.New("simdisk: write quorum lost")

// Replicated is a quorum-replicated volume: the model for the landing zone
// (XIO keeps three replicas; a log block is "hardened" once a write quorum
// acknowledges it, §4.3). Writes go to all replicas in parallel and return
// when the quorum acks; reads are served by the first healthy replica.
type Replicated struct {
	replicas []*Device
	quorum   int
}

// NewReplicated builds an n-way replicated volume over the profile with the
// given write quorum. Each replica gets an independent jitter stream so
// quorum writes genuinely wait for the q-th fastest replica.
func NewReplicated(p Profile, n, quorum int, opts ...Option) (*Replicated, error) {
	return NewReplicatedSeeded(p, n, quorum, 0, opts...)
}

// NewReplicatedSeeded is NewReplicated with every replica's jitter stream
// derived from one root seed via MixSeed, so a replicated volume is
// reproducible from a single integer. A zero seed keeps the historical
// fixed per-replica seeds (1..n).
func NewReplicatedSeeded(p Profile, n, quorum int, seed int64, opts ...Option) (*Replicated, error) {
	if n <= 0 || quorum <= 0 || quorum > n {
		return nil, fmt.Errorf("simdisk: invalid replication n=%d quorum=%d", n, quorum)
	}
	r := &Replicated{quorum: quorum}
	for i := 0; i < n; i++ {
		rs := int64(i + 1)
		if seed != 0 {
			rs = MixSeed(seed, int64(i+1))
		}
		seeded := append([]Option{WithSeed(rs)}, opts...)
		r.replicas = append(r.replicas, New(p, seeded...))
	}
	return r, nil
}

// Replicas exposes the underlying devices for failure injection in tests.
func (r *Replicated) Replicas() []*Device { return r.replicas }

// Quorum reports the write quorum size.
func (r *Replicated) Quorum() int { return r.quorum }

// WriteAt writes to all replicas and returns once the write quorum has
// acknowledged. The data lands on every healthy replica; the caller waits
// the latency of the quorum-th fastest acknowledgement, sampled from each
// replica's independent latency model. (A single sampled sleep replaces
// three concurrent timed waits — identical timing semantics at a third of
// the simulation's scheduling cost, which matters on small hosts.)
func (r *Replicated) WriteAt(p []byte, off int64) error {
	var lats []time.Duration
	fails := 0
	var lastErr error
	for _, rep := range r.replicas {
		lat, err := rep.writeRaw(p, off)
		if err != nil {
			fails++
			lastErr = err
			continue
		}
		lats = append(lats, lat)
	}
	if len(lats) < r.quorum {
		return fmt.Errorf("%w: %d/%d replicas failed: %v",
			ErrQuorumLost, fails, len(r.replicas), lastErr)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	SleepPrecise(lats[r.quorum-1])
	// One combined disk.write wait for the quorum write, mirroring the
	// single combined sleep above (per-replica writeRaw never sleeps).
	r.replicas[0].waits.Observe(nil, obs.WaitDiskWrite, lats[r.quorum-1])
	return nil
}

// ReadAt serves the read from the first replica that succeeds, trying each
// in turn. With one healthy replica the read still completes.
func (r *Replicated) ReadAt(p []byte, off int64) error {
	var firstErr error
	for _, rep := range r.replicas {
		err := rep.ReadAt(p, off)
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if errors.Is(err, ErrOutOfRange) {
			// The extent is identical across replicas for quorum-acked
			// data; out-of-range will not be cured by another replica.
			return err
		}
	}
	return firstErr
}

// Size reports the largest extent across replicas (quorum-acked data is
// present on at least quorum replicas).
func (r *Replicated) Size() int64 {
	var max int64
	for _, rep := range r.replicas {
		if s := rep.Size(); s > max {
			max = s
		}
	}
	return max
}

// Volume is the interface shared by Device and Replicated: a durable,
// byte-addressable store. The landing zone and FCB layers accept a Volume so
// the storage service can be swapped without code changes (Appendix A).
type Volume interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

var (
	_ Volume = (*Device)(nil)
	_ Volume = (*Replicated)(nil)
)

// Barrier synchronizes bursts of parallel writes in tests.
type Barrier struct{ wg sync.WaitGroup }

// Go runs f in the barrier's group.
func (b *Barrier) Go(f func()) {
	b.wg.Add(1)
	go func() { defer b.wg.Done(); f() }()
}

// Wait blocks until all functions started with Go return.
func (b *Barrier) Wait() { b.wg.Wait() }
