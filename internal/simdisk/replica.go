package simdisk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"socrates/internal/obs"
)

// ErrQuorumLost is returned when a quorum write cannot reach enough replicas.
var ErrQuorumLost = errors.New("simdisk: write quorum lost")

// extent is a half-open byte range [off, end) on a replica.
type extent struct{ off, end int64 }

// extentSet is a sorted, merged set of non-overlapping extents. Sets stay
// tiny in practice (one dark window per chaos step), so linear ops suffice.
type extentSet []extent

// overlaps reports whether [off, end) intersects any extent in the set.
func (s extentSet) overlaps(off, end int64) bool {
	for _, e := range s {
		if e.off < end && off < e.end {
			return true
		}
	}
	return false
}

// add merges [off, end) into the set, coalescing adjacent extents.
func (s extentSet) add(off, end int64) extentSet {
	if off >= end {
		return s
	}
	out := s[:0]
	for _, e := range s {
		if e.end < off || end < e.off {
			out = append(out, e)
			continue
		}
		if e.off < off {
			off = e.off
		}
		if e.end > end {
			end = e.end
		}
	}
	out = append(out, extent{off, end})
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	return out
}

// sub removes [off, end) from the set, splitting extents that straddle it.
func (s extentSet) sub(off, end int64) extentSet {
	if off >= end {
		return s
	}
	var out extentSet
	for _, e := range s {
		if e.end <= off || end <= e.off {
			out = append(out, e)
			continue
		}
		if e.off < off {
			out = append(out, extent{e.off, off})
		}
		if e.end > end {
			out = append(out, extent{end, e.end})
		}
	}
	return out
}

// Replicated is a quorum-replicated volume: the model for the landing zone
// (XIO keeps three replicas; a log block is "hardened" once a write quorum
// acknowledges it, §4.3). Writes go to all replicas in parallel and return
// when the quorum acks — a *flexible* quorum in the Taurus sense: any
// quorum-of-n replicas may form the ack set per write, so one stuttering
// replica never stalls commits. The volume tracks, per replica, the byte
// extents that failed to land (the replica was dark or erroring while a
// quorum-acked write went through). Reads never consult a replica over a
// range it missed — crucial because a healed replica's extent grows
// zero-filled, so a byte-range it missed reads as silent zeros, not an
// error — and Reconcile copies missed ranges back from healthy peers.
type Replicated struct {
	replicas []*Device
	quorum   int

	mu     sync.Mutex
	missed []extentSet // per-replica byte ranges that failed to land
}

// NewReplicated builds an n-way replicated volume over the profile with the
// given write quorum. Each replica gets an independent jitter stream so
// quorum writes genuinely wait for the q-th fastest replica.
func NewReplicated(p Profile, n, quorum int, opts ...Option) (*Replicated, error) {
	return NewReplicatedSeeded(p, n, quorum, 0, opts...)
}

// NewReplicatedSeeded is NewReplicated with every replica's jitter stream
// derived from one root seed via MixSeed, so a replicated volume is
// reproducible from a single integer. A zero seed keeps the historical
// fixed per-replica seeds (1..n).
func NewReplicatedSeeded(p Profile, n, quorum int, seed int64, opts ...Option) (*Replicated, error) {
	if n <= 0 || quorum <= 0 || quorum > n {
		return nil, fmt.Errorf("simdisk: invalid replication n=%d quorum=%d", n, quorum)
	}
	r := &Replicated{quorum: quorum, missed: make([]extentSet, n)}
	for i := 0; i < n; i++ {
		rs := int64(i + 1)
		if seed != 0 {
			rs = MixSeed(seed, int64(i+1))
		}
		seeded := append([]Option{WithSeed(rs)}, opts...)
		r.replicas = append(r.replicas, New(p, seeded...))
	}
	return r, nil
}

// Replicas exposes the underlying devices for failure injection in tests.
func (r *Replicated) Replicas() []*Device { return r.replicas }

// Quorum reports the write quorum size.
func (r *Replicated) Quorum() int { return r.quorum }

// WriteAt writes to all replicas and returns once the write quorum has
// acknowledged. The data lands on every healthy replica; the caller waits
// the latency of the quorum-th fastest acknowledgement, sampled from each
// replica's independent latency model. (A single sampled sleep replaces
// three concurrent timed waits — identical timing semantics at a third of
// the simulation's scheduling cost, which matters on small hosts.)
//
// A replica that fails the write while the quorum still acks has *missed*
// the extent: the miss is recorded so reads route around it and Reconcile
// can repair it. A replica that later takes a successful overlapping write
// has current data for that range again, so the miss is trimmed.
func (r *Replicated) WriteAt(p []byte, off int64) error {
	var lats []time.Duration
	var lastErr error
	ok := make([]bool, len(r.replicas))
	fails := 0
	for i, rep := range r.replicas {
		lat, err := rep.writeRaw(p, off)
		if err != nil {
			fails++
			lastErr = err
			continue
		}
		ok[i] = true
		lats = append(lats, lat)
	}
	q := r.effectiveQuorum()
	if len(lats) < q {
		return fmt.Errorf("%w: %d/%d replicas failed: %v",
			ErrQuorumLost, fails, len(r.replicas), lastErr)
	}
	end := off + int64(len(p))
	r.mu.Lock()
	for i := range r.replicas {
		if ok[i] {
			r.missed[i] = r.missed[i].sub(off, end)
		} else {
			r.missed[i] = r.missed[i].add(off, end)
		}
	}
	r.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	SleepPrecise(lats[q-1])
	// One combined disk.write wait for the quorum write, mirroring the
	// single combined sleep above (per-replica writeRaw never sleeps).
	r.replicas[0].waits.Observe(nil, obs.WaitDiskWrite, lats[q-1])
	return nil
}

// ReadAt serves the read from the first replica that both succeeds and did
// not miss any write overlapping the range. The miss filter is what makes
// flexible quorums safe to read: a healed straggler's extent is zero-filled
// where it missed writes, so without the filter it would serve silent zeros
// for quorum-acked data. If every replica is filtered out (possible only
// below a 2-replica ack, i.e. under the planted chaosfault bug) the read
// falls through to any replica so the failure is visible as wrong data, not
// a hang.
func (r *Replicated) ReadAt(p []byte, off int64) error {
	end := off + int64(len(p))
	var firstErr error
	tried := 0
	for i, rep := range r.replicas {
		r.mu.Lock()
		miss := r.missed[i].overlaps(off, end)
		r.mu.Unlock()
		if miss {
			continue
		}
		tried++
		err := rep.ReadAt(p, off)
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if errors.Is(err, ErrOutOfRange) {
			// Replicas that did not miss a write in this range have the
			// full quorum-acked extent; out-of-range will not be cured by
			// another clean replica.
			return err
		}
	}
	if tried == 0 {
		for _, rep := range r.replicas {
			if err := rep.ReadAt(p, off); err == nil {
				return nil
			} else if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Size reports the largest extent across replicas (quorum-acked data is
// present on at least quorum replicas).
func (r *Replicated) Size() int64 {
	var max int64
	for _, rep := range r.replicas {
		if s := rep.Size(); s > max {
			max = s
		}
	}
	return max
}

// AckedCopies reports how many replicas hold current data for the range
// [off, off+n): replicas whose extent covers the range and that missed no
// overlapping write. The chaos oracle uses it to prove every acked commit
// is on at least quorum replicas at harden time.
func (r *Replicated) AckedCopies(off, n int64) int {
	end := off + n
	count := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rep := range r.replicas {
		if rep.Size() < end {
			continue
		}
		if r.missed[i].overlaps(off, end) {
			continue
		}
		count++
	}
	return count
}

// MissedBytes reports the total bytes replica i is missing (diagnostics and
// straggler-reconciliation tests).
func (r *Replicated) MissedBytes(i int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.missed[i] {
		total += e.end - e.off
	}
	return total
}

// Reconcile repairs stragglers: for every replica with missed extents it
// copies the authoritative bytes from a peer that holds them, then clears
// the miss. Healing a replica (outage lifted, failover promotion) must call
// this before the replica serves reads. A replica still dark keeps its
// misses — writeRaw fails and the extent stays recorded — so calling
// Reconcile mid-outage is safe and does nothing destructive. Reports how
// many bytes were repaired.
func (r *Replicated) Reconcile() (repaired int64, err error) {
	r.mu.Lock()
	work := make([]extentSet, len(r.missed))
	for i, s := range r.missed {
		work[i] = append(extentSet(nil), s...)
	}
	r.mu.Unlock()
	for i, set := range work {
		for _, e := range set {
			src := -1
			r.mu.Lock()
			for j := range r.replicas {
				if j == i || r.missed[j].overlaps(e.off, e.end) {
					continue
				}
				if r.replicas[j].Size() >= e.end {
					src = j
					break
				}
			}
			r.mu.Unlock()
			if src < 0 {
				if err == nil {
					err = fmt.Errorf("%w: no clean source for replica %d range [%d,%d)",
						ErrQuorumLost, i, e.off, e.end)
				}
				continue
			}
			buf := make([]byte, e.end-e.off)
			r.replicas[src].mu.Lock()
			copy(buf, r.replicas[src].data[e.off:e.end])
			r.replicas[src].mu.Unlock()
			// writeRaw respects outage injection: a still-dark replica
			// refuses the repair and the miss stays recorded.
			if _, werr := r.replicas[i].writeRaw(buf, e.off); werr != nil {
				if err == nil {
					err = werr
				}
				continue
			}
			r.mu.Lock()
			r.missed[i] = r.missed[i].sub(e.off, e.end)
			r.mu.Unlock()
			repaired += e.end - e.off
		}
	}
	return repaired, err
}

// Volume is the interface shared by Device and Replicated: a durable,
// byte-addressable store. The landing zone and FCB layers accept a Volume so
// the storage service can be swapped without code changes (Appendix A).
type Volume interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

var (
	_ Volume = (*Device)(nil)
	_ Volume = (*Replicated)(nil)
)

// Barrier synchronizes bursts of parallel writes in tests.
type Barrier struct{ wg sync.WaitGroup }

// Go runs f in the barrier's group.
func (b *Barrier) Go(f func()) {
	b.wg.Add(1)
	go func() { defer b.wg.Done(); f() }()
}

// Wait blocks until all functions started with Go return.
func (b *Barrier) Wait() { b.wg.Wait() }
