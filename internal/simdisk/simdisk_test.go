package simdisk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"socrates/internal/metrics"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(Instant)
	want := []byte("hello socrates")
	if err := d.WriteAt(want, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	if d.Size() != 100+int64(len(want)) {
		t.Fatalf("size = %d, want %d", d.Size(), 100+len(want))
	}
}

func TestReadBeyondExtentFails(t *testing.T) {
	d := New(Instant)
	if err := d.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	err := d.ReadAt(make([]byte, 10), 0)
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestNegativeOffsetRejected(t *testing.T) {
	d := New(Instant)
	if err := d.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative-offset write should fail")
	}
	if err := d.ReadAt(make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative-offset read err = %v, want ErrOutOfRange", err)
	}
}

func TestOverlappingWrites(t *testing.T) {
	d := New(Instant)
	if err := d.WriteAt([]byte("aaaaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("bb"), 2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbaa" {
		t.Fatalf("got %q, want aabbaa", got)
	}
}

func TestOutageInjection(t *testing.T) {
	d := New(Instant)
	d.SetOutage(true)
	if err := d.WriteAt([]byte("x"), 0); !errors.Is(err, ErrOutage) {
		t.Fatalf("err = %v, want ErrOutage", err)
	}
	d.SetOutage(false)
	if err := d.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("after outage clears: %v", err)
	}
}

func TestFailNextIsOneShot(t *testing.T) {
	d := New(Instant)
	boom := errors.New("boom")
	d.FailNext(boom)
	if err := d.WriteAt([]byte("x"), 0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := d.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("second call should succeed, got %v", err)
	}
}

func TestTruncate(t *testing.T) {
	d := New(Instant)
	if err := d.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	d.Truncate(3)
	if d.Size() != 3 {
		t.Fatalf("size = %d, want 3", d.Size())
	}
	d.Truncate(10)
	got := make([]byte, 10)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "abc" || !bytes.Equal(got[3:], make([]byte, 7)) {
		t.Fatalf("got %q after grow-truncate", got)
	}
	d.Truncate(-5)
	if d.Size() != 0 {
		t.Fatalf("size = %d after negative truncate, want 0", d.Size())
	}
}

func TestLatencyModelOrdersProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	timeOp := func(p Profile) time.Duration {
		d := New(p, WithSeed(42))
		buf := make([]byte, 4096)
		start := time.Now()
		for i := 0; i < 20; i++ {
			if err := d.WriteAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / 20
	}
	ssd, dd, xio := timeOp(LocalSSD), timeOp(DirectDrive), timeOp(XIO)
	if !(ssd < dd && dd < xio) {
		t.Fatalf("latency ordering violated: ssd=%v dd=%v xio=%v", ssd, dd, xio)
	}
	// The XIO/DD median write gap in Table 6 is roughly 4x.
	ratio := float64(xio) / float64(dd)
	if ratio < 2 || ratio > 10 {
		t.Fatalf("xio/dd latency ratio = %.1f, want within [2,10]", ratio)
	}
}

func TestCPUCharging(t *testing.T) {
	m := metrics.NewCPUMeter(1)
	d := New(Instant, WithCPU(m))
	d.profile.WriteCPU = 10 * time.Microsecond
	d.profile.ReadCPU = 3 * time.Microsecond
	if err := d.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Busy(); got != 13*time.Microsecond {
		t.Fatalf("charged %v, want 13us", got)
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(Instant)
	_ = d.WriteAt(make([]byte, 100), 0)
	_ = d.WriteAt(make([]byte, 50), 0)
	_ = d.ReadAt(make([]byte, 30), 0)
	r, w, br, bw := d.Stats()
	if r != 1 || w != 2 || br != 30 || bw != 150 {
		t.Fatalf("stats = %d %d %d %d, want 1 2 30 150", r, w, br, bw)
	}
}

func TestScaledProfile(t *testing.T) {
	p := XIO.Scaled(0.5)
	if p.WriteBase != XIO.WriteBase/2 || p.ReadBase != XIO.ReadBase/2 {
		t.Fatalf("scaled bases wrong: %v %v", p.ReadBase, p.WriteBase)
	}
	if p.WriteCPU != XIO.WriteCPU {
		t.Fatal("scaling must not change CPU cost")
	}
}

func TestThroughputCap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := Instant
	p.ThroughputMBps = 1 // 1 MiB/s
	d := New(p)
	// Drain the initial burst allowance, then time a capped transfer.
	_ = d.WriteAt(make([]byte, 1<<20), 0)
	start := time.Now()
	_ = d.WriteAt(make([]byte, 512<<10), 0) // 0.5 MiB at 1 MiB/s ≈ 500 ms
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond {
		t.Fatalf("capped write took %v, want >= 300ms", elapsed)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(Instant)
	d.Truncate(8 * 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(n)}, 64)
			off := int64(n * 64)
			for j := 0; j < 50; j++ {
				if err := d.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 64)
				if err := d.ReadAt(got, off); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("worker %d read torn data", n)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// Property: any sequence of writes then a full read returns exactly the
// byte image a plain slice model would hold.
func TestWriteModelEquivalence(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		d := New(Instant)
		model := []byte{}
		for _, o := range ops {
			if len(o.Data) == 0 {
				continue
			}
			if err := d.WriteAt(o.Data, int64(o.Off)); err != nil {
				return false
			}
			end := int(o.Off) + len(o.Data)
			if end > len(model) {
				grown := make([]byte, end)
				copy(grown, model)
				model = grown
			}
			copy(model[o.Off:], o.Data)
		}
		if d.Size() != int64(len(model)) {
			return false
		}
		if len(model) == 0 {
			return true
		}
		got := make([]byte, len(model))
		if err := d.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedQuorumWrite(t *testing.T) {
	r, err := NewReplicated(Instant, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteAt([]byte("quorum"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := r.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "quorum" {
		t.Fatalf("read %q", got)
	}
}

func TestReplicatedToleratesMinorityFailure(t *testing.T) {
	r, err := NewReplicated(Instant, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Replicas()[0].SetOutage(true)
	if err := r.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatalf("write with 2/3 healthy replicas failed: %v", err)
	}
	// Read also succeeds via a healthy replica.
	got := make([]byte, 2)
	if err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
}

func TestReplicatedLosesQuorum(t *testing.T) {
	r, err := NewReplicated(Instant, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Replicas()[0].SetOutage(true)
	r.Replicas()[1].SetOutage(true)
	err = r.WriteAt([]byte("x"), 0)
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
}

func TestReplicatedInvalidConfig(t *testing.T) {
	for _, tc := range []struct{ n, q int }{{0, 1}, {3, 0}, {3, 4}, {-1, -1}} {
		if _, err := NewReplicated(Instant, tc.n, tc.q); err == nil {
			t.Errorf("NewReplicated(%d,%d) should fail", tc.n, tc.q)
		}
	}
}

func TestReplicatedWriteIsolatedFromCallerBuffer(t *testing.T) {
	r, _ := NewReplicated(Instant, 3, 1) // quorum 1: stragglers run late
	buf := []byte("original")
	if err := r.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	copy(buf, "clobber!") // caller reuses the buffer immediately
	time.Sleep(20 * time.Millisecond)
	for i, rep := range r.Replicas() {
		got := make([]byte, 8)
		if err := rep.ReadAt(got, 0); err != nil {
			continue // straggler may not have landed; quorum=1
		}
		if string(got) != "original" {
			t.Fatalf("replica %d saw caller's clobbered buffer: %q", i, got)
		}
	}
}

func TestQuorumWaitsForSecondFastest(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := Instant
	p.WriteBase = 5 * time.Millisecond
	r, _ := NewReplicated(p, 3, 2)
	start := time.Now()
	if err := r.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Fatalf("quorum write returned in %v, faster than one replica write", e)
	}
}
