// Package simdisk simulates the storage devices and services Socrates runs
// on in Azure. The paper's evaluation is driven almost entirely by the
// latency, throughput, and CPU-cost differences between four device classes:
//
//   - Local SSD: fast (~80 µs), attached, non-durable. Backs RBPEX and the
//     XLOG destaging cache.
//   - XIO (Azure Premium Storage): remote, three-way replicated, durable.
//     Writes are priced like REST calls: milliseconds of latency and a high
//     CPU cost per call. Implements the landing zone in production.
//   - DirectDrive (DD): the newer RDMA-based service from Appendix A —
//     sub-millisecond writes and a much lower CPU cost per call.
//   - HDD: cheap, slow, throughput-capped spindles. Models the media under
//     XStore.
//
// A Device is a byte-addressable volume with a latency model (base cost +
// per-byte transfer + jitter + a rare tail spike), a token-bucket throughput
// cap, a per-call simulated CPU charge, and failure injection (one-shot
// errors and sticky outages). Latency is realized by sleeping, so wall-clock
// measurements of code built on simdisk have the same shape as the paper's.
package simdisk

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"socrates/internal/metrics"
	"socrates/internal/obs"
)

// ErrOutage is returned while a device is in an injected outage.
var ErrOutage = errors.New("simdisk: device outage")

// ErrOutOfRange is returned for reads beyond the written extent.
var ErrOutOfRange = errors.New("simdisk: read out of range")

// Profile describes the performance model of a device class.
type Profile struct {
	Name string

	// ReadBase and WriteBase are the fixed per-call latencies.
	ReadBase  time.Duration
	WriteBase time.Duration

	// PerKB is the additional transfer latency per KiB moved.
	PerKB time.Duration

	// JitterFrac is the half-width of the uniform jitter applied to each
	// call's latency (0.2 = ±20%).
	JitterFrac float64

	// TailProb is the probability that a call hits a tail spike whose
	// latency is TailFactor times the nominal latency. Models the ~40 ms
	// max latencies both XIO and DD exhibit in Table 6.
	TailProb   float64
	TailFactor float64

	// ReadCPU and WriteCPU are the simulated CPU costs charged to the
	// calling node per call. The XIO/DD gap here reproduces Table 7.
	ReadCPU  time.Duration
	WriteCPU time.Duration

	// ThroughputMBps caps sustained bandwidth through a token bucket.
	// Zero means uncapped.
	ThroughputMBps float64
}

// Canonical device profiles, calibrated against the paper's numbers
// (Table 1 commit latencies, Table 6 XIO vs DD, §4.1.1 device roles).
var (
	// LocalSSD models a locally attached NVMe drive.
	LocalSSD = Profile{
		Name:       "local-ssd",
		ReadBase:   70 * time.Microsecond,
		WriteBase:  80 * time.Microsecond,
		PerKB:      150 * time.Nanosecond,
		JitterFrac: 0.15,
		TailProb:   0.0005,
		TailFactor: 8,
		ReadCPU:    4 * time.Microsecond,
		WriteCPU:   5 * time.Microsecond,
	}

	// XIO models Azure Premium Storage: REST-priced remote replicated
	// storage. A single-threaded commit through a 3-replica quorum write
	// lands near the paper's 2.5-3.3 ms.
	XIO = Profile{
		Name:           "xio",
		ReadBase:       1200 * time.Microsecond,
		WriteBase:      2800 * time.Microsecond,
		PerKB:          900 * time.Nanosecond,
		JitterFrac:     0.2,
		TailProb:       0.002,
		TailFactor:     12,
		ReadCPU:        90 * time.Microsecond,
		WriteCPU:       150 * time.Microsecond,
		ThroughputMBps: 400,
	}

	// DirectDrive models the RDMA-based service from Appendix A: ~4x lower
	// median latency and far cheaper calls (Win32 path, no REST).
	DirectDrive = Profile{
		Name:           "directdrive",
		ReadBase:       280 * time.Microsecond,
		WriteBase:      450 * time.Microsecond,
		PerKB:          250 * time.Nanosecond,
		JitterFrac:     0.25,
		TailProb:       0.002,
		TailFactor:     50,
		ReadCPU:        18 * time.Microsecond,
		WriteCPU:       30 * time.Microsecond,
		ThroughputMBps: 900,
	}

	// HDD models the spindles under XStore: cheap, slow, bandwidth-capped.
	HDD = Profile{
		Name:           "hdd",
		ReadBase:       4 * time.Millisecond,
		WriteBase:      5 * time.Millisecond,
		PerKB:          6 * time.Microsecond,
		JitterFrac:     0.3,
		TailProb:       0.003,
		TailFactor:     6,
		ReadCPU:        8 * time.Microsecond,
		WriteCPU:       10 * time.Microsecond,
		ThroughputMBps: 200,
	}

	// LAN models one intra-datacenter network hop (used by RBIO's
	// in-process transport and HADR log shipping).
	LAN = Profile{
		Name:       "lan",
		ReadBase:   120 * time.Microsecond,
		WriteBase:  120 * time.Microsecond,
		PerKB:      90 * time.Nanosecond,
		JitterFrac: 0.25,
		TailProb:   0.001,
		TailFactor: 20,
		ReadCPU:    6 * time.Microsecond,
		WriteCPU:   6 * time.Microsecond,
	}

	// Instant is a zero-latency profile for tests that need determinism
	// and speed rather than timing fidelity.
	Instant = Profile{Name: "instant"}
)

// Scaled returns a copy of the profile with all latencies multiplied by f.
// Experiments use this to compress wall-clock time while preserving ratios.
func (p Profile) Scaled(f float64) Profile {
	q := p
	q.ReadBase = time.Duration(float64(p.ReadBase) * f)
	q.WriteBase = time.Duration(float64(p.WriteBase) * f)
	q.PerKB = time.Duration(float64(p.PerKB) * f)
	return q
}

// Device is a simulated byte-addressable volume. All methods are safe for
// concurrent use.
type Device struct {
	profile Profile
	cpu     *metrics.CPUMeter // may be nil
	bucket  *tokenBucket      // nil when uncapped
	waits   *obs.WaitRecorder // disk.read / disk.write lanes; may be nil

	mu      sync.Mutex
	data    []byte
	rng     *rand.Rand
	outage  bool
	failOne error // returned by the next call, then cleared

	reads  metrics.Counter
	writes metrics.Counter
	bytesR metrics.Counter
	bytesW metrics.Counter
}

// Option configures a Device.
type Option func(*Device)

// WithCPU attaches the CPU meter charged by this device's calls. Devices
// belong to a node; the node's meter is charged for the I/O issue cost.
func WithCPU(m *metrics.CPUMeter) Option { return func(d *Device) { d.cpu = m } }

// WithWaits attaches wait-event accounting: every call's simulated I/O
// time (token-bucket throttling included) lands under disk.read or
// disk.write on the owning tier's recorder.
func WithWaits(wr *obs.WaitRecorder) Option {
	return func(d *Device) { d.waits = wr }
}

// WithSeed fixes the jitter RNG seed for reproducible runs.
func WithSeed(seed int64) Option {
	return func(d *Device) { d.rng = rand.New(rand.NewSource(seed)) }
}

// MixSeed derives an independent child seed from a root seed and a lane
// number (splitmix64 finalizer). A deployment built from one root seed
// hands every device its own well-separated jitter stream, so the whole
// cluster replays from a single integer without correlated jitter across
// devices.
func MixSeed(seed, lane int64) int64 {
	z := uint64(seed) + uint64(lane)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1 // rand.NewSource(0) is legal but 0 doubles as "unset" upstream
	}
	return s
}

// New creates a device with the given profile.
func New(p Profile, opts ...Option) *Device {
	d := &Device{
		profile: p,
		rng:     rand.New(rand.NewSource(1)),
	}
	if p.ThroughputMBps > 0 {
		d.bucket = newTokenBucket(p.ThroughputMBps * 1024 * 1024)
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Profile reports the device's performance profile.
func (d *Device) Profile() Profile { return d.profile }

// SetOutage toggles a sticky outage: while set, every call fails with
// ErrOutage. Models the transient XStore outages §4.6 describes.
func (d *Device) SetOutage(on bool) {
	d.mu.Lock()
	d.outage = on
	d.mu.Unlock()
}

// FailNext makes the next call (only) return err.
func (d *Device) FailNext(err error) {
	d.mu.Lock()
	d.failOne = err
	d.mu.Unlock()
}

// Stats reports cumulative operation and byte counts: reads, writes,
// bytes read, bytes written.
func (d *Device) Stats() (reads, writes, bytesRead, bytesWritten int64) {
	return d.reads.Load(), d.writes.Load(), d.bytesR.Load(), d.bytesW.Load()
}

// Size reports the current extent of the volume in bytes.
func (d *Device) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.data))
}

// checkFailure consumes injected failures; returns a non-nil error if the
// call should fail.
func (d *Device) checkFailure() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.outage {
		return ErrOutage
	}
	if d.failOne != nil {
		err := d.failOne
		d.failOne = nil
		return err
	}
	return nil
}

// latency computes and consumes the simulated latency for a call of n bytes.
func (d *Device) latency(base time.Duration, n int) time.Duration {
	lat := base + time.Duration(float64(d.profile.PerKB)*float64(n)/1024)
	d.mu.Lock()
	if d.profile.JitterFrac > 0 {
		j := 1 + d.profile.JitterFrac*(2*d.rng.Float64()-1)
		lat = time.Duration(float64(lat) * j)
	}
	if d.profile.TailProb > 0 && d.rng.Float64() < d.profile.TailProb {
		lat = time.Duration(float64(lat) * d.profile.TailFactor)
	}
	d.mu.Unlock()
	return lat
}

func (d *Device) charge(cpu time.Duration) {
	if d.cpu != nil {
		d.cpu.Charge(cpu)
	}
}

// ReadAt fills p from offset off. Reading past the written extent returns
// ErrOutOfRange; short reads do not occur.
func (d *Device) ReadAt(p []byte, off int64) error {
	if err := d.checkFailure(); err != nil {
		return err
	}
	ioStart := time.Now()
	if d.bucket != nil {
		d.bucket.acquire(len(p))
	}
	sleep(d.latency(d.profile.ReadBase, len(p)))
	d.waits.Observe(nil, obs.WaitDiskRead, time.Since(ioStart))
	d.charge(d.profile.ReadCPU)

	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), len(d.data))
	}
	copy(p, d.data[off:])
	d.reads.Inc()
	d.bytesR.Add(int64(len(p)))
	return nil
}

// WriteAt stores p at offset off, growing the volume as needed. The call
// returns after the simulated write latency, modelling a durable write.
func (d *Device) WriteAt(p []byte, off int64) error {
	ioStart := time.Now()
	lat, err := d.writeRaw(p, off)
	if err != nil {
		return err
	}
	sleep(lat)
	d.waits.Observe(nil, obs.WaitDiskWrite, time.Since(ioStart))
	return nil
}

// writeRaw stores p at off, charging CPU and consuming throughput tokens
// but NOT sleeping; it returns the latency the write would have cost.
// Replicated quorum writes use it to pay one combined sleep for the whole
// replica set.
func (d *Device) writeRaw(p []byte, off int64) (time.Duration, error) {
	if err := d.checkFailure(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("simdisk: negative offset %d", off)
	}
	if d.bucket != nil {
		d.bucket.acquire(len(p))
	}
	lat := d.latency(d.profile.WriteBase, len(p))
	d.charge(d.profile.WriteCPU)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.growTo(off + int64(len(p)))
	copy(d.data[off:], p)
	d.writes.Inc()
	d.bytesW.Add(int64(len(p)))
	return lat, nil
}

// growTo extends the volume to end bytes with amortized O(1) reallocation
// (append-only devices — logs, blob stores — would otherwise copy the whole
// volume on every write). Caller holds d.mu.
func (d *Device) growTo(end int64) {
	if end <= int64(len(d.data)) {
		return
	}
	if end <= int64(cap(d.data)) {
		old := len(d.data)
		d.data = d.data[:end]
		// Zero the re-exposed region: a shrink may have left stale bytes
		// in the spare capacity.
		for i := old; i < int(end); i++ {
			d.data[i] = 0
		}
		return
	}
	newCap := int64(cap(d.data)) * 2
	if newCap < end {
		newCap = end
	}
	if newCap < 64<<10 {
		newCap = 64 << 10
	}
	grown := make([]byte, end, newCap)
	copy(grown, d.data)
	d.data = grown
}

// Truncate shrinks or grows the volume to n bytes without I/O latency
// (a metadata operation).
func (d *Device) Truncate(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n <= int64(len(d.data)) {
		d.data = d.data[:n]
		return
	}
	d.growTo(n)
}

// sleep pauses for d, skipping the syscall for sub-resolution waits so the
// Instant profile costs nothing.
func sleep(d time.Duration) { SleepPrecise(d) }

// SleepPrecise pauses for d with sub-millisecond accuracy. time.Sleep on
// many hosts has ~1 ms granularity, which would flatten the latency gaps
// the experiments depend on (an 80 µs SSD read vs a 450 µs DirectDrive
// write). Rather than having every waiter spin — which collapses on small
// hosts once tens of simulated I/Os are in flight — all waiters park on
// channels and one shared dispatcher goroutine watches the clock and wakes
// them at their deadlines.
func SleepPrecise(d time.Duration) {
	if d <= 0 {
		return
	}
	<-dispatcher.after(time.Now().Add(d))
}

// sleepDispatcher is the shared wake-up service: a min-heap of deadlines
// drained by a single clock-watching goroutine.
type sleepDispatcher struct {
	mu      sync.Mutex
	heap    waiterHeap
	running bool
	wake    chan struct{}
}

type waiter struct {
	deadline time.Time
	ch       chan struct{}
}

var dispatcher = &sleepDispatcher{wake: make(chan struct{}, 1)}

func (s *sleepDispatcher) after(deadline time.Time) chan struct{} {
	ch := make(chan struct{})
	s.mu.Lock()
	s.heap.push(waiter{deadline: deadline, ch: ch})
	if !s.running {
		s.running = true
		go s.run()
	}
	s.mu.Unlock()
	// A new (possibly earlier) deadline must interrupt a dispatcher that
	// settled into a long real sleep.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return ch
}

func (s *sleepDispatcher) run() {
	for {
		s.mu.Lock()
		now := time.Now()
		for len(s.heap) > 0 && !s.heap[0].deadline.After(now) {
			close(s.heap.pop().ch)
		}
		if len(s.heap) == 0 {
			s.running = false
			s.mu.Unlock()
			return
		}
		next := s.heap[0].deadline.Sub(now)
		s.mu.Unlock()
		if next > 3*time.Millisecond {
			// Far-off deadline: a real (wakeable) sleep; its ~1 ms slack
			// is absorbed by the spin re-check below the cutoff.
			t := time.NewTimer(next - 2*time.Millisecond)
			//socrates:wait-ok this IS the simulated device latency; the blocked time is charged as disk.read/disk.write at the request site
			select {
			case <-t.C:
			case <-s.wake:
			}
			t.Stop()
		} else {
			runtime.Gosched()
		}
	}
}

// waiterHeap is a min-heap on deadline.
type waiterHeap []waiter

func (h *waiterHeap) push(w waiter) {
	*h = append(*h, w)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].deadline.Before((*h)[parent].deadline) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *waiterHeap) pop() waiter {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].deadline.Before((*h)[smallest].deadline) {
			smallest = l
		}
		if r < n && (*h)[r].deadline.Before((*h)[smallest].deadline) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// tokenBucket rate-limits bytes/second with a one-second burst.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	tokens float64
	last   time.Time
}

func newTokenBucket(bytesPerSec float64) *tokenBucket {
	return &tokenBucket{rate: bytesPerSec, tokens: bytesPerSec, last: time.Now()}
}

// acquire blocks until n byte-tokens are available.
func (b *tokenBucket) acquire(n int) {
	need := float64(n)
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.rate { // burst cap: one second of tokens
			b.tokens = b.rate
		}
		b.last = now
		if b.tokens >= need {
			b.tokens -= need
			b.mu.Unlock()
			return
		}
		deficit := need - b.tokens
		b.mu.Unlock()
		wait := time.Duration(deficit / b.rate * float64(time.Second))
		if wait < 100*time.Microsecond {
			wait = 100 * time.Microsecond
		}
		time.Sleep(wait)
	}
}
