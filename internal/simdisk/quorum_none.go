//go:build !chaosfault

package simdisk

// effectiveQuorum is the write-quorum size a Replicated volume actually
// enforces. Production builds enforce the configured quorum; the chaosfault
// build plants an ack-at-1-replica bug so the chaos oracle's replication
// check can prove it would catch a real regression (see quorum_chaos.go).
func (r *Replicated) effectiveQuorum() int { return r.quorum }
