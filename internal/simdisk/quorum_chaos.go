//go:build chaosfault

package simdisk

// effectiveQuorum: PLANTED BUG for the oracle-sensitivity self-test. A
// write acks after a single replica lands it, violating the 2-of-3
// flexible-quorum contract. internal/chaos's replication check must flag
// every commit hardened while a second replica was dark; if it stops
// catching this, the check has gone blind.
func (r *Replicated) effectiveQuorum() int {
	if r.quorum > 1 {
		return 1
	}
	return r.quorum
}
