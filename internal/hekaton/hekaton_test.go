package hekaton

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"socrates/internal/simdisk"
)

func newDev() *simdisk.Device { return simdisk.New(simdisk.Instant) }

func TestPutGetDelete(t *testing.T) {
	tb, err := Open(newDev())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if err := tb.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Get("a"); ok {
		t.Fatal("deleted key still visible")
	}
	if err := tb.Delete("never-existed"); err != nil {
		t.Fatal("deleting absent key should be a no-op")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tb, _ := Open(newDev())
	_ = tb.Put("k", []byte("orig"))
	v, _ := tb.Get("k")
	v[0] = 'X'
	v2, _ := tb.Get("k")
	if string(v2) != "orig" {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestRecoveryAfterRestart(t *testing.T) {
	dev := newDev()
	tb, _ := Open(dev)
	for i := 0; i < 50; i++ {
		_ = tb.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	_ = tb.Delete("k10")
	_ = tb.Put("k20", []byte("updated"))

	// "Crash": reopen from the same device.
	tb2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 49 {
		t.Fatalf("recovered %d rows, want 49", tb2.Len())
	}
	if _, ok := tb2.Get("k10"); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, _ := tb2.Get("k20"); string(v) != "updated" {
		t.Fatalf("k20 = %q", v)
	}
}

func TestRecoveryStopsAtTornTail(t *testing.T) {
	dev := newDev()
	tb, _ := Open(dev)
	_ = tb.Put("safe", []byte("durable"))
	// Simulate a torn write: append garbage that looks like a partial entry.
	end := tb.LogBytes()
	if err := dev.WriteAt([]byte{opPut, 5, 0}, end); err != nil {
		t.Fatal(err)
	}
	tb2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tb2.Get("safe"); !ok || string(v) != "durable" {
		t.Fatal("durable prefix lost")
	}
	if tb2.Len() != 1 {
		t.Fatalf("rows = %d, want 1", tb2.Len())
	}
	// The table remains writable after recovering past a tear.
	if err := tb2.Put("after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	tb3, _ := Open(dev)
	if _, ok := tb3.Get("after"); !ok {
		t.Fatal("post-tear write lost")
	}
}

func TestRecoveryRejectsBadMagic(t *testing.T) {
	dev := newDev()
	_ = dev.WriteAt([]byte("this is not a hekaton table......"), 0)
	if _, err := Open(dev); err == nil {
		t.Fatal("bad magic should fail open")
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dev := newDev()
	tb, _ := Open(dev)
	for i := 0; i < 100; i++ {
		_ = tb.Put("hot", []byte(fmt.Sprintf("gen%d", i)))
	}
	before := tb.LogBytes()
	if err := tb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := tb.LogBytes()
	if after >= before {
		t.Fatalf("checkpoint did not compact: %d -> %d", before, after)
	}
	// Post-checkpoint mutations land in the append region.
	_ = tb.Put("hot", []byte("post-ckpt"))
	_ = tb.Put("new", []byte("row"))

	tb2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tb2.Get("hot"); string(v) != "post-ckpt" {
		t.Fatalf("hot = %q", v)
	}
	if v, _ := tb2.Get("new"); string(v) != "row" {
		t.Fatalf("new = %q", v)
	}
}

func TestCheckpointEmptyTable(t *testing.T) {
	dev := newDev()
	tb, _ := Open(dev)
	_ = tb.Put("x", []byte("y"))
	_ = tb.Delete("x")
	if err := tb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tb2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 0 {
		t.Fatalf("rows = %d", tb2.Len())
	}
}

func TestRange(t *testing.T) {
	tb, _ := Open(newDev())
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		_ = tb.Put(k, []byte(v))
	}
	got := map[string]string{}
	tb.Range(func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	if len(got) != 3 || got["a"] != "1" || got["b"] != "2" || got["c"] != "3" {
		t.Fatalf("range = %v", got)
	}
	// Early stop.
	count := 0
	tb.Range(func(string, []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop range visited %d", count)
	}
}

func TestConcurrentWriters(t *testing.T) {
	dev := newDev()
	tb, _ := Open(dev)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := tb.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != 240 {
		t.Fatalf("rows = %d, want 240", tb.Len())
	}
	tb2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 240 {
		t.Fatalf("recovered rows = %d, want 240", tb2.Len())
	}
}

// Property: after any op sequence and a restart, the table matches a map.
func TestRecoveryModelEquivalence(t *testing.T) {
	type op struct {
		Key    uint8
		Val    []byte
		Delete bool
		Ckpt   bool
	}
	f := func(ops []op) bool {
		dev := newDev()
		tb, err := Open(dev)
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%8)
			switch {
			case o.Ckpt:
				if tb.Checkpoint() != nil {
					return false
				}
			case o.Delete:
				if tb.Delete(key) != nil {
					return false
				}
				delete(model, key)
			default:
				if tb.Put(key, o.Val) != nil {
					return false
				}
				model[key] = append([]byte(nil), o.Val...)
			}
		}
		re, err := Open(dev)
		if err != nil {
			return false
		}
		if re.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := re.Get(k)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
