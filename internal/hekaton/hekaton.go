// Package hekaton is a miniature tribute to SQL Server's in-memory storage
// engine: a hash table whose contents survive process restarts. Socrates
// builds RBPEX (the resilient buffer pool extension, §3.3) as "a table in
// our in-memory storage engine, Hekaton ... Hekaton recovers RBPEX after a
// failure — just like any other Hekaton table". This package provides
// exactly that recoverable-table primitive.
//
// Durability is a write-ahead operation log on a local SSD device. Open
// replays the log (stopping cleanly at a torn tail, which a crash can
// leave), and Checkpoint compacts the log by writing a full snapshot
// followed by fresh appends. All reads are served from memory, so read
// latency is main-memory latency — the property RBPEX relies on ("read I/O
// to RBPEX is as fast as direct I/O to the local SSD").
package hekaton

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"socrates/internal/simdisk"
)

// Operation tags in the durable log.
const (
	opPut    = 1
	opDelete = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a log that is damaged beyond the usual torn tail.
var ErrCorrupt = errors.New("hekaton: corrupt log")

// Table is a durable in-memory key/value table. All methods are safe for
// concurrent use; writes are durable when the method returns.
type Table struct {
	mu     sync.RWMutex
	dev    *simdisk.Device
	rows   map[string][]byte
	logEnd int64 // append offset in dev
}

// header layout at offset 0:
//
//	magic u32 | snapshotLen u64
//
// The snapshot region (possibly empty) holds opPut entries; the append
// region follows and holds the post-checkpoint operation log.
const headerSize = 12

const tableMagic = 0x48454B31 // "HEK1"

// Open loads (or initializes) a table backed by dev. After a crash, replay
// stops at the first torn entry: everything durable before it is recovered.
func Open(dev *simdisk.Device) (*Table, error) {
	t := &Table{dev: dev, rows: make(map[string][]byte)}
	size := dev.Size()
	if size == 0 {
		// Fresh device: write an empty header.
		if err := t.writeHeader(0); err != nil {
			return nil, err
		}
		t.logEnd = headerSize
		return t, nil
	}
	head := make([]byte, headerSize)
	if err := dev.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("hekaton: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != tableMagic {
		return nil, fmt.Errorf("%w: bad table magic", ErrCorrupt)
	}
	snapLen := int64(binary.LittleEndian.Uint64(head[4:12]))
	if headerSize+snapLen > size {
		return nil, fmt.Errorf("%w: snapshot length %d exceeds device", ErrCorrupt, snapLen)
	}
	body := make([]byte, size-headerSize)
	if err := dev.ReadAt(body, headerSize); err != nil {
		return nil, fmt.Errorf("hekaton: reading log: %w", err)
	}
	// Snapshot region must be fully intact.
	pos := int64(0)
	for pos < snapLen {
		n, op, key, val, err := decodeEntry(body[pos:])
		if err != nil {
			return nil, fmt.Errorf("%w: snapshot entry at %d: %v", ErrCorrupt, pos, err)
		}
		if op != opPut {
			return nil, fmt.Errorf("%w: non-put op %d in snapshot", ErrCorrupt, op)
		}
		t.rows[string(key)] = val
		pos += int64(n)
	}
	// Append region: replay until a torn/corrupt entry, then stop (crash
	// semantics — the torn suffix was never acknowledged as durable).
	for pos < int64(len(body)) {
		n, op, key, val, err := decodeEntry(body[pos:])
		if err != nil {
			break
		}
		switch op {
		case opPut:
			t.rows[string(key)] = val
		case opDelete:
			delete(t.rows, string(key))
		default:
			// Unknown op: treat as tear.
		}
		if op != opPut && op != opDelete {
			break
		}
		pos += int64(n)
	}
	t.logEnd = headerSize + pos
	return t, nil
}

func (t *Table) writeHeader(snapLen int64) error {
	head := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(head[0:4], tableMagic)
	binary.LittleEndian.PutUint64(head[4:12], uint64(snapLen))
	return t.dev.WriteAt(head, 0)
}

// entry layout: op u8 | klen u16 | vlen u32 | key | val | crc u32
func encodeEntry(op byte, key string, val []byte) []byte {
	buf := make([]byte, 0, 11+len(key)+len(val))
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf
}

func decodeEntry(buf []byte) (n int, op byte, key, val []byte, err error) {
	if len(buf) < 11 {
		return 0, 0, nil, nil, errors.New("short entry")
	}
	op = buf[0]
	klen := int(binary.LittleEndian.Uint16(buf[1:3]))
	vlen := int(binary.LittleEndian.Uint32(buf[3:7]))
	total := 7 + klen + vlen + 4
	if len(buf) < total {
		return 0, 0, nil, nil, errors.New("torn entry")
	}
	want := binary.LittleEndian.Uint32(buf[total-4 : total])
	if crc32.Checksum(buf[:total-4], crcTable) != want {
		return 0, 0, nil, nil, errors.New("entry checksum mismatch")
	}
	key = append([]byte(nil), buf[7:7+klen]...)
	if vlen > 0 {
		val = append([]byte(nil), buf[7+klen:7+klen+vlen]...)
	}
	return total, op, key, val, nil
}

// Put durably stores key→val.
//
//socrates:lock-ok the durable log append is intentionally serialized under the table lock: per-key entry order in the log must match the in-memory apply order
func (t *Table) Put(key string, val []byte) error {
	entry := encodeEntry(opPut, key, val)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.dev.WriteAt(entry, t.logEnd); err != nil {
		return err
	}
	t.logEnd += int64(len(entry))
	t.rows[key] = append([]byte(nil), val...)
	return nil
}

// Delete durably removes key. Deleting an absent key is a no-op.
//
//socrates:lock-ok the durable log append is intentionally serialized under the table lock: per-key entry order in the log must match the in-memory apply order
func (t *Table) Delete(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[key]; !ok {
		return nil
	}
	entry := encodeEntry(opDelete, key, nil)
	if err := t.dev.WriteAt(entry, t.logEnd); err != nil {
		return err
	}
	t.logEnd += int64(len(entry))
	delete(t.rows, key)
	return nil
}

// Get returns the value for key. The read is memory-speed: no device I/O.
func (t *Table) Get(key string) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.rows[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len reports the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Range calls fn for every row until fn returns false. The iteration order
// is unspecified. fn must not call back into the table.
func (t *Table) Range(fn func(key string, val []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for k, v := range t.rows {
		if !fn(k, v) {
			return
		}
	}
}

// Checkpoint compacts the durable log: the current contents become the
// snapshot region and the append log restarts empty. Bounded log growth is
// what keeps RBPEX recovery fast.
//
//socrates:lock-ok compaction must exclude writers for the whole snapshot+header sequence; a concurrent append would land inside the region being overwritten
func (t *Table) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var snap []byte
	for k, v := range t.rows {
		snap = append(snap, encodeEntry(opPut, k, v)...)
	}
	// Write snapshot first, then the header that activates it. If we crash
	// between the two writes, the old header still describes a consistent
	// (pre-checkpoint) prefix only if the snapshot didn't overwrite it —
	// so write the snapshot after the header location but flip the header
	// last. A torn snapshot write is detected by entry checksums.
	if err := t.dev.WriteAt(snap, headerSize); err != nil {
		return err
	}
	t.dev.Truncate(headerSize + int64(len(snap)))
	if err := t.writeHeader(int64(len(snap))); err != nil {
		return err
	}
	t.logEnd = headerSize + int64(len(snap))
	return nil
}

// LogBytes reports the durable log size (snapshot + appends), a proxy for
// recovery cost.
func (t *Table) LogBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.logEnd
}
