package pageserver

import (
	"context"
	"testing"
	"time"

	"socrates/internal/page"
	"socrates/internal/testutil"
	"socrates/internal/wal"
)

// TestGetPageAllocs is the allocation contract for the warm-cache
// GetPage@LSN path — the paper's defining latency path. The server is
// stopped before measuring so the background pull and checkpoint loops
// cannot pollute the global allocation counter; a stopped server still
// serves cached pages (the apply watermark is already past minLSN).
func TestGetPageAllocs(t *testing.T) {
	testutil.SkipIfRace(t)

	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	end := r.emit(t, imageRec(5, 'a'), wal.NewCommit(1, 1))

	ctx := context.Background()
	minLSN := end.Prev()
	if _, err := srv.GetPage(ctx, 5, minLSN); err != nil {
		t.Fatal(err)
	}
	srv.Stop() // quiesce background loops; the cache stays warm

	avg := testing.AllocsPerRun(200, func() {
		if _, err := srv.GetPage(ctx, 5, minLSN); err != nil {
			t.Fatal(err)
		}
	})
	// Tracing spans and latency observation dominate; the page itself is
	// served from cache without copying.
	const budget = 8
	t.Logf("warm GetPage: %.1f allocs/op (budget %d)", avg, budget)
	if avg > budget {
		t.Fatalf("warm GetPage: %.1f allocs/op, budget %d", avg, budget)
	}
}

// TestApplyFeedAllocs is the allocation contract for the per-record apply
// path. The touched map and target page are warm — exactly the state of a
// batch coalescing many records onto one hot page — so the measured cost
// is btree redo itself (node decode, cell copy, re-encode), not batch
// bookkeeping.
func TestApplyFeedAllocs(t *testing.T) {
	testutil.SkipIfRace(t)

	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	// buildLeafRecords yields a validly formatted leaf image (page 1) plus
	// one cell-put; redo below needs a decodable node, not a toy payload.
	imgRecs, _ := buildLeafRecords(t, 1)
	target := imgRecs[0].Page
	end := r.emit(t, append(imgRecs, wal.NewCommit(1, 1))...)
	if !srv.WaitApplied(end.Prev(), 5*time.Second) {
		t.Fatal("apply watermark never reached the emitted batch")
	}
	srv.Stop() // quiesce background loops

	pg, ok := srv.cache.Get(target)
	if !ok {
		t.Fatalf("page %d not cached after apply", target)
	}
	touched := map[page.ID]*page.Page{pg.ID: pg}

	// Pre-build the records so record construction is not measured; each
	// carries the next LSN so redo actually mutates the page every run.
	const runs = 200
	recs := make([]*wal.Record, runs+1)
	lsn := pg.LSN
	for i := range recs {
		lsn = lsn.Next()
		recs[i] = &wal.Record{Kind: wal.KindCellPut, Page: target,
			Key: []byte("k"), Value: []byte("v"), LSN: lsn}
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		if err := srv.applyRecordTo(touched, recs[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Redo currently re-decodes and re-encodes the node per record; the
	// budget pins that cost so it cannot silently grow.
	const budget = 16
	t.Logf("apply record: %.1f allocs/op (budget %d)", avg, budget)
	if avg > budget {
		t.Fatalf("apply record: %.1f allocs/op, budget %d", avg, budget)
	}
}
