// Package pageserver implements the Socrates storage tier (§4.6). A page
// server owns one partition of the database and does three jobs:
//
//  1. keep its copy of the partition current by applying the (filtered) log
//     pulled from XLOG;
//  2. answer GetPage@LSN requests from compute nodes, waiting until its
//     applied LSN passes the requested LSN so it can never return a stale
//     page (§4.4), and serving multi-page range reads from the covering,
//     stride-preserving RBPEX with a single I/O;
//  3. checkpoint modified pages to XStore (with write aggregation and
//     insulation from transient XStore outages) so backups are XStore
//     snapshots and the "truth" of the database is always in cheap storage.
//
// Page servers are stateless in the durability sense: a lost page server is
// rebuilt from the last XStore checkpoint plus the log tail, and a new
// replica seeds asynchronously while already serving requests.
package pageserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"socrates/internal/btree"
	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/rbpex"
	"socrates/internal/simdisk"
	"socrates/internal/socerr"
	"socrates/internal/wal"
	"socrates/internal/xstore"
)

// ErrStopped reports an operation on a stopped server. It wraps
// socerr.ErrClosed so errors.Is(err, socerr.ErrClosed) classifies it.
var ErrStopped = fmt.Errorf("pageserver: stopped: %w", socerr.ErrClosed)

// Config assembles a page server.
type Config struct {
	// Partition this server subscribes to in the XLOG filter.
	Partition page.PartitionID
	// Partitioning maps pages to partitions (shared cluster config).
	Partitioning page.Partitioning
	// RangeLo / RangeHi, when RangeHi > 0, override the served page range
	// with a sub-range of the partition — this is how a partition is split
	// into finer shards for faster recovery (§6): each half still filters
	// on the parent partition's log annotation but serves and checkpoints
	// only its own range.
	RangeLo, RangeHi page.ID
	// Name is this server's identity (XLOG consumer, checkpoint metadata).
	Name string
	// XLOG is the client to the XLOG service for pulls and progress.
	XLOG *rbio.Client
	// Store is the XStore account holding checkpoints.
	Store *xstore.Store
	// BlobPrefix namespaces this database's checkpoint blobs, e.g. "db1/".
	// Page blobs share one namespace (BlobPrefix + "page/<id>") so any
	// server covering a range can seed any of its pages; per-server
	// metadata lives at BlobPrefix + "meta/<name>".
	BlobPrefix string
	// CacheSSD and CacheMeta are local SSD devices for the covering RBPEX.
	CacheSSD, CacheMeta *simdisk.Device
	// MemPages sizes the RBPEX memory tier (default 64).
	MemPages int
	// StartLSN is where log apply begins for a brand-new database (1).
	StartLSN page.LSN
	// PullBytes bounds one pull batch (default 256 KiB).
	PullBytes int
	// Meter, if set, is charged simulated CPU for page-server work.
	Meter *metrics.CPUMeter
	// CheckpointEvery is the checkpoint cadence (default 50 ms).
	CheckpointEvery time.Duration
	// Seed, if true, seeds the cache from the XStore checkpoint
	// asynchronously at startup (new server / replica / restart without
	// intact local SSD).
	Seed bool
	// Tracer receives page-server-tier spans (nil = tracing off).
	Tracer *obs.Tracer
	// Metrics receives page-server-tier instruments (nil = metrics off).
	Metrics *obs.Registry
	// Watermarks receives this server's applied/checkpoint rungs of the
	// LSN ladder, labeled by Name (nil = watermarks off).
	Watermarks *obs.WatermarkSet
	// Flight receives page-server flight-recorder events: apply batches,
	// GetPage waits, seeding fetches, checkpoint sweeps, XStore outages
	// (nil = recording off).
	Flight *obs.FlightRecorder
	// Waits receives wait-event accounting: xlog.feed while a GetPage@LSN
	// blocks behind apply lag, ckpt.drain while a backup flush drains the
	// dirty set. Nil disables recording.
	Waits *obs.WaitRecorder
}

// Server is one page server.
type Server struct {
	cfg   Config
	cache *rbpex.Cache
	lo    page.ID // partition page range [lo, hi)
	hi    page.ID

	mu          sync.Mutex
	applied     page.LSN // next LSN to pull (everything below is applied)
	appliedCond *sync.Cond
	dirty       map[page.ID]struct{}
	seeding     bool
	ckptLSN     page.LSN // resume LSN persisted with the last checkpoint
	xstoreDown  bool     // observed outage: checkpointing deferred

	done chan struct{}
	wg   sync.WaitGroup

	// applyScratch is pullOnce's reusable touched-page set; only the
	// apply loop touches it, so no lock guards it.
	applyScratch map[page.ID]*page.Page

	served   metrics.Counter
	waits    metrics.Counter
	applies  metrics.Counter
	rangeIOs metrics.Counter
}

// New builds (and starts) a page server. If the local cache devices hold a
// previous incarnation's RBPEX, it is recovered and apply resumes from the
// persisted checkpoint LSN; otherwise the server starts from StartLSN or —
// with cfg.Seed — from the XStore checkpoint.
func New(cfg Config) (*Server, error) {
	if cfg.XLOG == nil || cfg.Store == nil {
		return nil, errors.New("pageserver: XLOG client and Store are required")
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 64
	}
	if cfg.PullBytes <= 0 {
		cfg.PullBytes = 256 << 10
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50 * time.Millisecond
	}
	if cfg.StartLSN == 0 {
		cfg.StartLSN = 1
	}
	lo, hi := cfg.Partitioning.Range(cfg.Partition)
	if cfg.Partitioning.PagesPerPartition == 0 {
		lo, hi = 0, page.ID(1<<22) // single partition covering 4M pages
	}
	if cfg.RangeHi > 0 {
		lo, hi = cfg.RangeLo, cfg.RangeHi
	}
	cache, err := rbpex.Open(rbpex.Config{
		MemPages: cfg.MemPages,
		SSDPages: int(hi - lo),
		Covering: true,
		Base:     lo,
		SSD:      cfg.CacheSSD,
		Meta:     cfg.CacheMeta,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		lo:    lo,
		hi:    hi,
		dirty: make(map[page.ID]struct{}),
		done:  make(chan struct{}),
	}
	s.appliedCond = sync.NewCond(&s.mu)

	// Decide the apply resume point: persisted checkpoint meta (if any),
	// else the configured start.
	s.applied = cfg.StartLSN
	s.ckptLSN = cfg.StartLSN
	if meta, err := s.readMeta(); err == nil {
		s.applied = meta
		s.ckptLSN = meta
		// RBPEX may hold pages newer than the checkpoint; redo is
		// idempotent, so resuming from the checkpoint LSN is safe and the
		// recovered cache saves the refetch (§3.3).
	}
	if cfg.Seed {
		s.seeding = true
		s.wg.Add(1)
		go s.seedLoop()
	}
	s.wg.Add(2)
	go s.applyLoop()
	go s.checkpointLoop()
	return s, nil
}

// Stop halts background work (final checkpoint attempt included).
func (s *Server) Stop() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	s.wg.Wait()
	//socrates:ignore-err the shutdown checkpoint is best-effort; the dirty set is re-derivable by redo from the persisted resume LSN
	_ = s.checkpointOnce()
}

// Partition reports the owned partition.
func (s *Server) Partition() page.PartitionID { return s.cfg.Partition }

// Range reports the owned page range [lo, hi).
func (s *Server) Range() (page.ID, page.ID) { return s.lo, s.hi }

// Owns reports whether the server owns the page.
func (s *Server) Owns(id page.ID) bool { return id >= s.lo && id < s.hi }

// AppliedLSN reports the apply watermark (next LSN to pull).
func (s *Server) AppliedLSN() page.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// WaitApplied blocks until the apply watermark passes lsn (applied > lsn,
// i.e. the record at lsn has been applied) or the timeout elapses; it
// reports whether the watermark got there. Cluster workflows use it to wait
// for catch-up on the apply signal instead of polling.
func (s *Server) WaitApplied(lsn page.LSN, timeout time.Duration) bool {
	return s.waitApplied(nil, lsn, timeout)
}

// Seeding reports whether background seeding is still running.
func (s *Server) Seeding() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seeding
}

// Cache exposes the covering RBPEX (stats for experiments).
func (s *Server) Cache() *rbpex.Cache { return s.cache }

// CacheDevice exposes the RBPEX's backing SSD device (failure injection in
// stall tests: an outage here freezes the apply loop without touching the
// rest of the cluster).
func (s *Server) CacheDevice() *simdisk.Device { return s.cfg.CacheSSD }

// Stats reports pages served, GetPage waits, and records applied.
func (s *Server) Stats() (served, waits, applies int64) {
	return s.served.Load(), s.waits.Load(), s.applies.Load()
}

func (s *Server) charge(d time.Duration) {
	if s.cfg.Meter != nil {
		s.cfg.Meter.Charge(d)
	}
}

// --- blob naming ---

func (s *Server) pageBlob(id page.ID) string {
	return s.cfg.BlobPrefix + "page/" + strconv.FormatUint(uint64(id), 10)
}

func (s *Server) metaBlob() string {
	return s.cfg.BlobPrefix + "meta/" + s.cfg.Name
}

func (s *Server) readMeta() (page.LSN, error) {
	buf, err := s.cfg.Store.Get(s.metaBlob())
	if err != nil {
		return 0, err
	}
	if len(buf) < 8 {
		return 0, errors.New("pageserver: short meta blob")
	}
	return page.LSN(binary.LittleEndian.Uint64(buf)), nil
}

func (s *Server) writeMeta(lsn page.LSN) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], lsn.Uint64())
	return s.cfg.Store.Put(s.metaBlob(), buf[:])
}

// --- log apply ---

func (s *Server) applyLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		if !s.pullOnce() {
			// Nothing new at the XLOG service. The pull model has no local
			// condition to wait on, so back off briefly but stay killable.
			//socrates:wait-ok idle pull backoff on an empty feed; recording it would drown real apply-lag waits
			select {
			case <-s.done:
				return
			case <-time.After(500 * time.Microsecond):
			}
		}
	}
}

// pullOnce pulls and applies one batch; reports whether progress was made.
// The apply loop is server-initiated, so each batch starts its own trace
// rather than joining a caller's.
//
//socrates:hotpath the apply feed's batch loop; per-batch costs are reviewed inline, per-record costs live in applyRecordTo
func (s *Server) pullOnce() bool {
	//socrates:wait-ok watermark latch held for one read; readers blocked on apply lag are charged page.miss at GetPage@LSN
	s.mu.Lock()
	from := s.applied
	s.mu.Unlock()

	ctx := context.Background()
	start := time.Now()
	//socrates:alloc-ok one request header per pull batch, amortized over every record in it
	resp, err := s.cfg.XLOG.Call(ctx, &rbio.Request{
		Type:      rbio.MsgPullBlocks,
		LSN:       from,
		Partition: int32(s.cfg.Partition),
		MaxBytes:  int32(s.cfg.PullBytes),
		Consumer:  s.cfg.Name,
	})
	if err != nil || resp.Status != rbio.StatusOK {
		return false
	}
	s.cfg.Metrics.Histogram("pageserver.pull.rtt").Since(start)
	next := resp.LSN
	payload := resp.Payload
	// Coalesce the batch: a page touched by many records in one pull is
	// read once, mutated in memory, and written through once — without
	// this, a write burst outruns the apply loop and GetPage@LSN waits
	// pile up behind the lag. The set is a reused scratch map (the apply
	// loop is the only writer), so a steady feed allocates no map per
	// batch.
	if s.applyScratch == nil {
		//socrates:alloc-ok one-time lazy init; every later batch reuses this map
		s.applyScratch = make(map[page.ID]*page.Page, 64)
	}
	touched := s.applyScratch
	clear(touched)
	for len(payload) > 0 {
		b, n, err := wal.DecodeBlock(payload)
		if err != nil {
			return false
		}
		payload = payload[n:]
		for _, rec := range b.Records {
			if err := s.applyRecordTo(touched, rec); err != nil {
				return false
			}
		}
	}
	for _, pg := range touched {
		s.applies.Inc()
		s.cfg.Metrics.Counter("pageserver.apply.pages").Inc()
		s.markDirty(pg.ID)
		if err := s.cache.Put(pg); err != nil {
			s.cfg.Flight.Record(obs.TierPageServer, "ps.apply_error",
				uint64(from), time.Since(start),
				s.cfg.Name+": cache put: "+err.Error())
			return false
		}
	}
	if next == from {
		return false
	}
	s.cfg.Metrics.Histogram("pageserver.apply.latency").Since(start)
	//socrates:wait-ok watermark-publish latch; GetPage@LSN waiters account their own blocked time as page.miss
	s.mu.Lock()
	s.applied = next
	s.appliedCond.Broadcast()
	s.mu.Unlock()
	s.cfg.Watermarks.Watermark(obs.WMApplied, s.cfg.Name).Publish(uint64(next))
	//socrates:alloc-ok per-batch flight-recorder note, not a per-record cost
	s.cfg.Flight.Record(obs.TierPageServer, "ps.apply", uint64(next),
		time.Since(start), fmt.Sprintf("%s: pages=%d", s.cfg.Name, len(touched)))
	//socrates:alloc-ok one advisory report per batch
	//socrates:ignore-err applied-progress reports are advisory lease refreshes; the next pull re-reports and the watermark is monotone at the service
	_, _ = s.cfg.XLOG.Call(ctx, &rbio.Request{
		Type: rbio.MsgReportApplied, Consumer: s.cfg.Name, LSN: next})
	return true
}

// applyRecordTo applies one redo record into the batch's touched-page set;
// pages are looked up (cache, then XStore for seeding gaps) at most once
// per batch.
//
//socrates:hotpath runs once per redo record in the apply feed; budget enforced by TestApplyFeedAllocs
func (s *Server) applyRecordTo(touched map[page.ID]*page.Page, rec *wal.Record) error {
	if !rec.IsPageOp() || !s.Owns(rec.Page) {
		return nil
	}
	s.charge(4 * time.Microsecond)
	pg, ok := touched[rec.Page]
	if !ok {
		pg, ok = s.cache.Get(rec.Page)
		if !ok {
			// Not cached: either a freshly allocated page (image record)
			// or a page whose checkpoint copy is in XStore (seeding).
			if rec.Kind == wal.KindPageImage {
				npg, err := btree.NewFormatted(rec)
				if err != nil {
					return err
				}
				touched[npg.ID] = npg
				return nil
			}
			fetched, err := s.fetchFromStore(rec.Page)
			if err != nil {
				//socrates:alloc-ok redo-fetch failure path; the batch aborts here
				return fmt.Errorf("pageserver: page %d needed for redo: %w", rec.Page, err)
			}
			pg = fetched
		}
		touched[rec.Page] = pg
	}
	_, err := btree.Apply(pg, rec)
	return err
}

func (s *Server) markDirty(id page.ID) {
	s.mu.Lock()
	s.dirty[id] = struct{}{}
	s.mu.Unlock()
}

// fetchFromStore loads one page's checkpoint copy from XStore into the
// cache (on-demand seeding).
func (s *Server) fetchFromStore(id page.ID) (*page.Page, error) {
	buf, err := s.cfg.Store.Get(s.pageBlob(id))
	if err != nil {
		return nil, err
	}
	pg, err := page.Decode(buf)
	if err != nil {
		return nil, err
	}
	if err := s.cache.Seed(pg); err != nil {
		return nil, err
	}
	return pg, nil
}

// --- seeding ---

// seedLoop lays down the covering copy from the XStore checkpoint in the
// background while the server is already serving (§4.6: "its RBPEX is
// seeded asynchronously while the Page Server is already available").
func (s *Server) seedLoop() {
	defer s.wg.Done()
	prefix := s.cfg.BlobPrefix + "page/"
	for _, name := range s.cfg.Store.List(prefix) {
		select {
		case <-s.done:
			return
		default:
		}
		idStr := name[len(prefix):]
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil || !s.Owns(page.ID(id)) {
			continue
		}
		if s.cache.Contains(page.ID(id)) {
			continue // already fetched on demand or applied from log
		}
		buf, err := s.cfg.Store.Get(name)
		if err != nil {
			continue // transient; on-demand fetch covers the gap
		}
		pg, err := page.Decode(buf)
		if err != nil {
			continue
		}
		//socrates:ignore-err a failed background seed is recovered by the on-demand fetchFromStore path; seeding is purely a warm-up (§4.6)
		_ = s.cache.Seed(pg)
	}
	s.mu.Lock()
	s.seeding = false
	s.mu.Unlock()
}

// --- checkpointing ---

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		//socrates:wait-ok checkpoint cadence tick, not a stall
		select {
		case <-s.done:
			return
		case <-ticker.C:
			//socrates:ignore-err an XStore outage keeps the batch dirty and sets xstoreDown; the next tick retries (§4.6)
			_ = s.checkpointOnce()
		}
	}
}

// checkpointOnce ships the current dirty set to XStore and persists the
// resume LSN. On an XStore outage the dirty set is retained ("pages that
// were written in RBPEX but not in XStore are remembered") and the
// checkpoint resumes when XStore is back (§4.6).
func (s *Server) checkpointOnce() error {
	// Occupancy gauges ride the checkpoint cadence: cheap, periodic, and
	// visible on /metrics without touching the apply hot path.
	s.cfg.Metrics.Gauge(key("pageserver.rbpex.pages", s.cfg.Name)).Set(int64(s.cache.Len()))
	s.mu.Lock()
	s.cfg.Metrics.Gauge(key("pageserver.dirty_pages", s.cfg.Name)).Set(int64(len(s.dirty)))
	if len(s.dirty) == 0 {
		s.mu.Unlock()
		return nil
	}
	resume := s.applied
	ckptStart := time.Now()
	batch := make([]page.ID, 0, len(s.dirty))
	for id := range s.dirty {
		batch = append(batch, id)
	}
	s.mu.Unlock()

	// Write aggregation: pages go out in one sweep; the xstore ingest
	// limiter sees a large sequential burst rather than scattered I/Os.
	written := make([]page.ID, 0, len(batch))
	for _, id := range batch {
		pg, ok := s.cache.Get(id)
		if !ok {
			written = append(written, id) // vanished: nothing to persist
			continue
		}
		buf, err := pg.Encode()
		if err != nil {
			return err
		}
		if err := s.cfg.Store.Put(s.pageBlob(id), buf); err != nil {
			s.noteOutage(true)
			s.clearDirty(written)
			s.cfg.Flight.Record(obs.TierXStore, "xstore.outage", uint64(resume),
				time.Since(ckptStart), s.cfg.Name+": checkpoint put: "+err.Error())
			return err // keep the remainder dirty; retry next tick
		}
		written = append(written, id)
	}
	if err := s.writeMeta(resume); err != nil {
		s.noteOutage(true)
		s.clearDirty(written)
		s.cfg.Flight.Record(obs.TierXStore, "xstore.outage", uint64(resume),
			time.Since(ckptStart), s.cfg.Name+": checkpoint meta: "+err.Error())
		return err
	}
	s.noteOutage(false)
	s.clearDirty(written)
	s.mu.Lock()
	s.ckptLSN = resume
	s.mu.Unlock()
	s.cfg.Watermarks.Watermark(obs.WMCheckpoint, s.cfg.Name).Publish(uint64(resume))
	s.cfg.Flight.Record(obs.TierPageServer, "ps.checkpoint", uint64(resume),
		time.Since(ckptStart), fmt.Sprintf("%s: pages=%d", s.cfg.Name, len(written)))
	return nil
}

// key joins an instrument name with a replica label the way the rest of
// the plane does ("name/replica"); singleton names pass "".
func key(name, replica string) string {
	if replica == "" {
		return name
	}
	return name + "/" + replica
}

func (s *Server) clearDirty(ids []page.ID) {
	s.mu.Lock()
	for _, id := range ids {
		delete(s.dirty, id)
	}
	s.mu.Unlock()
}

func (s *Server) noteOutage(down bool) {
	s.mu.Lock()
	s.xstoreDown = down
	s.mu.Unlock()
}

// XStoreDown reports whether the last checkpoint attempt hit an outage.
func (s *Server) XStoreDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.xstoreDown
}

// DirtyPages reports the size of the un-checkpointed dirty set.
func (s *Server) DirtyPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dirty)
}

// FlushForBackup forces a full checkpoint so an XStore snapshot taken right
// after captures every applied page. Returns the resume LSN captured.
func (s *Server) FlushForBackup() (page.LSN, error) {
	// ckpt.drain: backup progress is gated on the checkpoint sweep
	// catching the apply feed. Aggregate-only; backups carry no request
	// context.
	region := s.cfg.Waits.Begin(nil, obs.WaitCkptDrain)
	defer region.End()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.checkpointOnce()
		if err == nil && s.DirtyPages() == 0 {
			s.mu.Lock()
			lsn := s.ckptLSN
			s.mu.Unlock()
			return lsn, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = errors.New("pageserver: dirty set did not drain")
			}
			return 0, err
		}
		// More log arrived between checkpoint sweeps; give the apply loop a
		// beat and retry, but bail out if the server stops underneath us.
		select {
		case <-s.done:
			return 0, errors.New("pageserver: stopped during backup flush")
		case <-time.After(time.Millisecond):
		}
	}
}

// --- GetPage@LSN ---

// waitApplied blocks until the apply watermark passes lsn (applied > lsn
// means the record at lsn has been applied), with a timeout.
func (s *Server) waitApplied(ctx context.Context, lsn page.LSN, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// xlog.feed: a reader blocked behind apply lag is waiting on the log
	// feed pipeline (XLOG pull → redo). Recorded only when the loop
	// actually blocks; ctx attributes the wait to the GetPage span.
	region := s.cfg.Waits.Begin(ctx, obs.WaitXLOGFeed)
	waited := false
	defer func() { region.EndIf(waited) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.applied.AtMost(lsn) {
		s.waits.Inc()
		if time.Now().After(deadline) {
			return false
		}
		waited = true
		// Wake periodically to honor the deadline.
		waker := time.AfterFunc(2*time.Millisecond, s.appliedCond.Broadcast)
		s.appliedCond.Wait()
		waker.Stop()
	}
	return true
}

// GetPage serves one page at an LSN at least minLSN (the §4.4 protocol).
// The context carries the calling compute node's span identity (decoded
// from the RBIO v2 frame), so the page-server read shows up inside the
// caller's GetPage@LSN trace.
//
//socrates:hotpath the paper's defining latency path; warm-cache budget enforced by TestGetPageAllocs
func (s *Server) GetPage(ctx context.Context, id page.ID, minLSN page.LSN) (*page.Page, error) {
	ctx, sp := s.cfg.Tracer.JoinSpan(ctx, obs.TierPageServer, "pageserver.getpage")
	defer sp.End()
	start := time.Now()
	defer s.cfg.Metrics.Histogram("pageserver.getpage.latency").Since(start)
	if !s.Owns(id) {
		//socrates:alloc-ok misrouted-request error path, never the warm-cache hit
		return nil, fmt.Errorf("pageserver: page %d outside partition [%d,%d)", id, s.lo, s.hi)
	}
	waitStart := time.Now()
	if !s.waitApplied(ctx, minLSN, 5*time.Second) {
		//socrates:alloc-ok apply-lag timeout path; the request already lost 5s
		return nil, socerr.Timeoutf("pageserver: apply lag: applied %d, need > %d",
			s.AppliedLSN(), minLSN)
	}
	if wait := time.Since(waitStart); wait > 0 {
		s.cfg.Metrics.Histogram("pageserver.getpage.wait").Observe(wait)
		if wait > time.Millisecond {
			// Only material waits are worth a ring slot: a GetPage@LSN
			// stuck behind apply lag is exactly what a postmortem reads.
			s.cfg.Flight.Record(obs.TierPageServer, "ps.getpage_wait",
				uint64(minLSN), wait, s.cfg.Name+": waited for apply")
		}
	}
	s.charge(6 * time.Microsecond)
	if pg, ok := s.cache.Get(id); ok {
		s.served.Inc()
		return pg, nil
	}
	// Covering cache miss: only possible while seeding — fetch on demand.
	sp.SetAttr("xstore-fetch", "true")
	fetchStart := time.Now()
	pg, err := s.fetchFromStore(id)
	if err != nil {
		sp.SetError(err)
		//socrates:alloc-ok xstore-fetch failure path behind a covering-cache miss
		s.cfg.Flight.Record(obs.TierPageServer, "ps.miss", uint64(minLSN),
			time.Since(fetchStart),
			fmt.Sprintf("%s: page %d xstore fetch failed: %v", s.cfg.Name, id, err))
		//socrates:alloc-ok same failure path as the flight record above
		return nil, fmt.Errorf("pageserver: page %d not found: %w", id, err)
	}
	//socrates:alloc-ok covering-cache miss happens only while seeding; the warm path returned above
	s.cfg.Flight.Record(obs.TierPageServer, "ps.miss", uint64(minLSN),
		time.Since(fetchStart), fmt.Sprintf("%s: page %d seeded from xstore", s.cfg.Name, id))
	s.served.Inc()
	return pg, nil
}

// GetPageRange serves count consecutive pages starting at start with one
// cache I/O (stride-preserving layout), for scan offloading.
//
// A mid-range problem no longer fails the whole range: the successful
// prefix is returned together with a socerr.ErrPartial-classified error
// naming what went wrong, so callers (RBPEX warmup, scan pushdown) make
// progress instead of redoing work they already received. A range whose
// tail runs past the partition end is likewise clamped and reported
// partial. Only a range with no usable prefix at all fails outright.
//
//socrates:hotpath scan-offload read path; one call serves many pages
func (s *Server) GetPageRange(ctx context.Context, start page.ID, count int, minLSN page.LSN) ([]*page.Page, error) {
	ctx, sp := s.cfg.Tracer.JoinSpan(ctx, obs.TierPageServer, "pageserver.getpagerange")
	defer sp.End()
	t0 := time.Now()
	defer s.cfg.Metrics.Histogram("pageserver.getpage.latency").Since(t0)
	if count <= 0 || start < s.lo || start >= s.hi {
		//socrates:alloc-ok misrouted-range error path
		return nil, fmt.Errorf("pageserver: range outside partition")
	}
	clamped := count
	if start+page.ID(count) > s.hi {
		clamped = int(s.hi - start)
	}
	if !s.waitApplied(ctx, minLSN, 5*time.Second) {
		return nil, socerr.Timeoutf("pageserver: apply lag on range read")
	}
	s.rangeIOs.Inc()
	pages, err := s.cache.ReadRange(start, clamped)
	if err != nil {
		// Mid-range tear or miss: assemble the longest successful prefix
		// page-by-page (cache first, then XStore for still-seeding slots).
		pages = pages[:0]
		for i := 0; i < clamped; i++ {
			id := start + page.ID(i)
			pg, ok := s.cache.Get(id)
			if !ok {
				var ferr error
				pg, ferr = s.fetchFromStore(id)
				if ferr != nil {
					if len(pages) == 0 {
						return nil, err // no usable prefix: original failure
					}
					s.served.Add(int64(len(pages)))
					//socrates:alloc-ok mid-range tear recovery path, not the one-I/O fast path
					return pages, socerr.Partialf(
						"pageserver: range [%d,+%d): %d pages then page %d failed: %v",
						start, count, len(pages), id, ferr)
				}
			}
			//socrates:alloc-ok prefix reassembly runs only after ReadRange failed
			pages = append(pages, pg)
		}
	}
	s.served.Add(int64(len(pages)))
	if len(pages) < count {
		//socrates:alloc-ok partition-end clamp is a caller error, reported once
		return pages, socerr.Partialf(
			"pageserver: range [%d,+%d) clamped at partition end %d: %d pages",
			start, count, s.hi, len(pages))
	}
	return pages, nil
}

// Handler exposes the server over RBIO. The transport passes a context
// carrying the frame's span identity, so page-server spans join the
// calling compute node's trace.
func (s *Server) Handler() rbio.Handler {
	return func(ctx context.Context, req *rbio.Request) *rbio.Response {
		switch req.Type {
		case rbio.MsgPing:
			return rbio.Ok()
		case rbio.MsgGetPage:
			if req.MaxBytes > 1 {
				pages, err := s.GetPageRange(ctx, req.Page, int(req.MaxBytes), req.LSN)
				switch {
				case err == nil:
					return pagesResponse(pages)
				case errors.Is(err, socerr.ErrPartial) && len(pages) > 0:
					// Ship the usable prefix with StatusPartial so the
					// caller both consumes it and sees why it is short.
					resp := pagesResponse(pages)
					if resp.Status == rbio.StatusOK {
						resp.Status = rbio.StatusPartial
						resp.Error = err.Error()
					}
					return resp
				default:
					return rbio.Retryf("range: %v", err)
				}
			}
			pg, err := s.GetPage(ctx, req.Page, req.LSN)
			if err != nil {
				return rbio.Retryf("get-page: %v", err)
			}
			return pagesResponse([]*page.Page{pg})
		case rbio.MsgScanCells:
			return s.handleScanCells(ctx, req)
		case rbio.MsgReadState:
			resp := rbio.Ok()
			resp.LSN = s.AppliedLSN()
			return resp
		default:
			return rbio.Errorf("pageserver: unsupported message %v", req.Type)
		}
	}
}

// pagesResponse assembles a MsgGetPage response: every page image is
// encoded directly into the single payload buffer (one allocation per
// response, not one per page plus a copy).
//
//socrates:hotpath runs once per GetPage/GetPageRange served
func pagesResponse(pages []*page.Page) *rbio.Response {
	//socrates:alloc-ok single exactly-sized payload allocation, owned by the response
	payload := make([]byte, 0, len(pages)*page.Size)
	var err error
	for _, pg := range pages {
		if payload, err = pg.AppendEncode(payload); err != nil {
			//socrates:alloc-ok corrupt-page error path
			return rbio.Errorf("encode: %v", err)
		}
	}
	resp := rbio.Ok()
	resp.Payload = payload
	if len(pages) > 0 {
		resp.LSN = pages[len(pages)-1].LSN
	}
	return resp
}

// DecodePages parses a MsgGetPage response payload.
func DecodePages(payload []byte) ([]*page.Page, error) {
	if len(payload)%page.Size != 0 {
		return nil, fmt.Errorf("pageserver: payload of %d bytes is not page-aligned", len(payload))
	}
	pages := make([]*page.Page, 0, len(payload)/page.Size)
	for off := 0; off < len(payload); off += page.Size {
		pg, err := page.Decode(payload[off : off+page.Size])
		if err != nil {
			return nil, err
		}
		pages = append(pages, pg)
	}
	return pages, nil
}
