package pageserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/wal"
	"socrates/internal/xlog"
	"socrates/internal/xstore"
)

// rig wires one page server to a real XLOG service.
type rig struct {
	lz    *xlog.LandingZone
	svc   *xlog.Service
	store *xstore.Store
	net   *rbio.Network
	bld   *wal.Builder
	pt    page.Partitioning
}

func newRig(t *testing.T, pt page.Partitioning) *rig {
	t.Helper()
	vol := simdisk.New(simdisk.Instant)
	lz, err := xlog.NewLandingZone(vol, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	store := xstore.New(xstore.Config{Profile: simdisk.Instant})
	svc, err := xlog.New(xlog.Config{
		LZ: lz, LT: store, LTBlob: "lt",
		CacheDevice: simdisk.New(simdisk.Instant),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	net := rbio.NewInstantNetwork()
	net.Serve("xlog", svc.Handler())
	return &rig{lz: lz, svc: svc, store: store, net: net,
		bld: wal.NewBuilder(1, pt), pt: pt}
}

func (r *rig) server(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Partitioning = r.pt
	cfg.XLOG = rbio.NewClient(r.net.Dial("xlog"))
	cfg.Store = r.store
	if cfg.CacheSSD == nil {
		cfg.CacheSSD = simdisk.New(simdisk.Instant)
	}
	if cfg.CacheMeta == nil {
		cfg.CacheMeta = simdisk.New(simdisk.Instant)
	}
	if cfg.Name == "" {
		cfg.Name = "ps-test"
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2 * time.Millisecond
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

// emit publishes records through the LZ + XLOG pipeline (one block).
func (r *rig) emit(t *testing.T, recs ...*wal.Record) page.LSN {
	t.Helper()
	for _, rec := range recs {
		r.bld.Append(rec)
	}
	b := r.bld.Flush()
	if err := r.lz.Write(b); err != nil {
		t.Fatal(err)
	}
	r.svc.Feed(context.Background(), b)
	r.svc.ReportHardened(context.Background(), r.lz.HardenedEnd())
	return b.End
}

// imageRec builds a page-image record with a recognizable payload.
func imageRec(id page.ID, marker byte) *wal.Record {
	return &wal.Record{Kind: wal.KindPageImage, Page: id,
		PageType: page.TypeLeaf, Value: []byte{marker, marker, marker}}
}

func TestApplyAndGetPage(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	end := r.emit(t, imageRec(5, 'a'), wal.NewCommit(1, 1))

	pg, err := srv.GetPage(context.Background(), 5, end-1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.ID != 5 || pg.Data[0] != 'a' {
		t.Fatalf("page = %+v", pg)
	}
	served, _, applies := srv.Stats()
	if served != 1 || applies == 0 {
		t.Fatalf("stats: served=%d applies=%d", served, applies)
	}
}

func TestGetPageWaitsForApply(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	r.emit(t, imageRec(7, 'x'), wal.NewCommit(1, 1))

	// Ask for an LSN that does not exist yet; publish it shortly after.
	target := r.bld.NextLSN() + 1 // the commit record of the next block
	done := make(chan error, 1)
	go func() {
		pg, err := srv.GetPage(context.Background(), 7, target)
		if err == nil && pg.Data[0] != 'y' {
			err = fmt.Errorf("stale page served: %q", pg.Data)
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	r.emit(t, imageRec(7, 'y'), wal.NewCommit(2, 2))
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetPage did not return")
	}
}

func TestGetPageLSNNeverStale(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	r.emit(t, imageRec(3, 'a'), wal.NewCommit(1, 1))
	end2 := r.emit(t, imageRec(3, 'b'), wal.NewCommit(2, 2))

	pg, err := srv.GetPage(context.Background(), 3, end2-1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Data[0] != 'b' {
		t.Fatalf("stale page: %q", pg.Data)
	}
	if pg.LSN < end2-2 {
		t.Fatalf("page LSN %d below requested", pg.LSN)
	}
}

func TestOwnershipRejected(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 10}
	r := newRig(t, pt)
	srv := r.server(t, Config{Partition: 0})
	if _, err := srv.GetPage(context.Background(), 25, 0); err == nil {
		t.Fatal("foreign page served")
	}
}

func TestFilteredApplyOnlyOwnPartition(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 10}
	r := newRig(t, pt)
	srv0 := r.server(t, Config{Partition: 0, Name: "ps0"})
	srv1 := r.server(t, Config{Partition: 1, Name: "ps1"})

	end := r.emit(t, imageRec(5, 'a'), imageRec(15, 'b'), wal.NewCommit(1, 1))
	p0, err := srv0.GetPage(context.Background(), 5, end-1)
	if err != nil || p0.Data[0] != 'a' {
		t.Fatalf("srv0: %+v %v", p0, err)
	}
	p1, err := srv1.GetPage(context.Background(), 15, end-1)
	if err != nil || p1.Data[0] != 'b' {
		t.Fatalf("srv1: %+v %v", p1, err)
	}
	// Each applied only its own record.
	_, _, a0 := srv0.Stats()
	_, _, a1 := srv1.Stats()
	if a0 != 1 || a1 != 1 {
		t.Fatalf("applies: %d %d", a0, a1)
	}
}

func TestCheckpointPersistsToXStore(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{BlobPrefix: "db/"})
	end := r.emit(t, imageRec(4, 'z'), wal.NewCommit(1, 1))
	if _, err := srv.GetPage(context.Background(), 4, end-1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FlushForBackup(); err != nil {
		t.Fatal(err)
	}
	if !r.store.Exists("db/page/4") {
		t.Fatal("checkpoint blob missing")
	}
	if srv.DirtyPages() != 0 {
		t.Fatalf("dirty = %d after flush", srv.DirtyPages())
	}
}

func TestXStoreOutageInsulation(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{BlobPrefix: "db/"})
	r.store.SetOutage(true)
	end := r.emit(t, imageRec(9, 'q'), wal.NewCommit(1, 1))

	// Serving continues during the outage.
	pg, err := srv.GetPage(context.Background(), 9, end-1)
	if err != nil || pg.Data[0] != 'q' {
		t.Fatalf("serve during outage: %+v %v", pg, err)
	}
	time.Sleep(10 * time.Millisecond)
	if srv.DirtyPages() == 0 {
		t.Fatal("dirty set lost during outage")
	}
	// Outage clears: checkpointing resumes and catches up.
	r.store.SetOutage(false)
	deadline := time.Now().Add(2 * time.Second)
	for srv.DirtyPages() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.DirtyPages() != 0 {
		t.Fatal("checkpoint did not resume after outage")
	}
	if !r.store.Exists("db/page/9") {
		t.Fatal("page never reached XStore")
	}
}

func TestRestartWithRecoveredRBPEX(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	ssd := simdisk.New(simdisk.Instant)
	meta := simdisk.New(simdisk.Instant)
	srv := r.server(t, Config{BlobPrefix: "db/", CacheSSD: ssd, CacheMeta: meta})
	end := r.emit(t, imageRec(2, 'm'), wal.NewCommit(1, 1))
	if _, err := srv.GetPage(context.Background(), 2, end-1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FlushForBackup(); err != nil {
		t.Fatal(err)
	}
	srv.Stop()

	// Restart over the same local devices: RBPEX recovers, apply resumes
	// from the checkpoint LSN, and the page is served without reseeding.
	reads0, _, _, _ := r.store.Stats()
	srv2 := r.server(t, Config{BlobPrefix: "db/", CacheSSD: ssd, CacheMeta: meta})
	pg, err := srv2.GetPage(context.Background(), 2, end-1)
	if err != nil || pg.Data[0] != 'm' {
		t.Fatalf("after restart: %+v %v", pg, err)
	}
	reads1, _, _, _ := r.store.Stats()
	// The restart may read its small metadata blob, but must not refetch
	// page blobs: the recovered RBPEX already holds them.
	if reads1-reads0 > 2 {
		t.Fatalf("restart read %d blobs from XStore despite recovered RBPEX", reads1-reads0)
	}
}

func TestColdStartSeedsFromXStore(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{BlobPrefix: "db/", Name: "gen1"})
	end := r.emit(t, imageRec(1, 'a'), imageRec(2, 'b'), imageRec(3, 'c'),
		wal.NewCommit(1, 1))
	if _, err := srv.GetPage(context.Background(), 3, end-1); err != nil {
		t.Fatal(err)
	}
	resume, err := srv.FlushForBackup()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()

	// A replacement server with fresh local devices seeds from XStore and
	// serves everything.
	srv2 := r.server(t, Config{BlobPrefix: "db/", Name: "gen2",
		StartLSN: resume, Seed: true})
	for i, want := range []byte{'a', 'b', 'c'} {
		pg, err := srv2.GetPage(context.Background(), page.ID(i+1), end-1)
		if err != nil || pg.Data[0] != want {
			t.Fatalf("page %d after reseed: %+v %v", i+1, pg, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv2.Seeding() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv2.Seeding() {
		t.Fatal("seeding never finished")
	}
}

func TestRangeReadSingleIO(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{MemPages: 1})
	var recs []*wal.Record
	for i := 1; i <= 8; i++ {
		recs = append(recs, imageRec(page.ID(i), byte('0'+i)))
	}
	recs = append(recs, wal.NewCommit(1, 1))
	end := r.emit(t, recs...)

	// Ensure pages reached the SSD tier, then count device reads.
	if !srv.waitApplied(nil, end-1, 2*time.Second) {
		t.Fatal("apply lag")
	}
	pages, err := srv.GetPageRange(context.Background(), 2, 4, end-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 4 || pages[0].ID != 2 || pages[3].ID != 5 {
		t.Fatalf("range = %d pages", len(pages))
	}
}

func TestHandlerGetPageAndRange(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	end := r.emit(t, imageRec(1, 'a'), imageRec(2, 'b'), wal.NewCommit(1, 1))

	r.net.Serve("ps", srv.Handler())
	c := rbio.NewClient(r.net.Dial("ps"))

	resp, err := c.Call(context.Background(), &rbio.Request{Type: rbio.MsgGetPage, Page: 1, LSN: end - 1})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := DecodePages(resp.Payload)
	if err != nil || len(pages) != 1 || pages[0].Data[0] != 'a' {
		t.Fatalf("single: %v %v", pages, err)
	}

	resp, err = c.Call(context.Background(), &rbio.Request{Type: rbio.MsgGetPage, Page: 1,
		LSN: end - 1, MaxBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	pages, err = DecodePages(resp.Payload)
	if err != nil || len(pages) != 2 || pages[1].Data[0] != 'b' {
		t.Fatalf("range: %v %v", pages, err)
	}

	resp, err = c.Call(context.Background(), &rbio.Request{Type: rbio.MsgReadState})
	if err != nil || resp.LSN != srv.AppliedLSN() {
		t.Fatalf("state: %+v %v", resp, err)
	}
}

func TestDecodePagesRejectsMisaligned(t *testing.T) {
	if _, err := DecodePages(make([]byte, 100)); err == nil {
		t.Fatal("misaligned payload accepted")
	}
}

func TestApplyLagTimesOut(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	if srv.waitApplied(nil, 9999, 20*time.Millisecond) {
		t.Fatal("waitApplied returned for unreachable LSN")
	}
}
