package pageserver

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"socrates/internal/btree"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// This file implements the storage-function pushdown of §4.1.5: "every
// database function that can be offloaded to storage (whether backup,
// checkpoint, IO filtering, etc.) relieves the Primary Compute node". The
// paper's §8 lists bulk operations in page servers as in-progress work;
// ScanCells is the IO-filtering primitive: the page server scans a page
// range locally (one stride-preserving I/O) and ships back only the
// matching cells' count and bytes, instead of 8 KiB pages.

// ScanResult is the outcome of a pushed-down scan.
type ScanResult struct {
	// Matched is the number of leaf cells with key in [Lo, Hi).
	Matched int
	// Bytes is the total size of matching cell payloads.
	Bytes int64
	// PagesScanned counts leaf pages visited.
	PagesScanned int
}

// ScanCells scans the page range [start, start+count) for leaf cells whose
// key falls in [lo, hi) (nil hi = unbounded) at an LSN at least minLSN.
// Non-leaf pages in the range are skipped: the caller offloads by physical
// range, exactly how a table scan over a partition would be pushed down.
func (s *Server) ScanCells(ctx context.Context, start page.ID, count int, lo, hi []byte, minLSN page.LSN) (ScanResult, error) {
	ctx, sp := s.cfg.Tracer.JoinSpan(ctx, obs.TierPageServer, "pageserver.scancells")
	defer sp.End()
	t0 := time.Now()
	defer s.cfg.Metrics.Histogram("pageserver.scancells.latency").Since(t0)
	var res ScanResult
	if start < s.lo || start+page.ID(count) > s.hi {
		return res, fmt.Errorf("pageserver: scan range outside partition")
	}
	if !s.waitApplied(ctx, minLSN, 5*time.Second) {
		return res, socerr.Timeoutf("pageserver: apply lag on pushdown scan")
	}
	s.charge(time.Duration(count) * 2 * time.Microsecond)
	pages, err := s.cache.ReadRangeAvailable(start, count)
	if err != nil {
		return res, err
	}
	for _, pg := range pages {
		if pg.Type != page.TypeLeaf {
			continue
		}
		res.PagesScanned++
		err := btree.RangeCells(pg, func(k, v []byte) bool {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return true
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return true
			}
			res.Matched++
			res.Bytes += int64(len(v))
			return true
		})
		if err != nil {
			// A mid-range page that is not cell-structured (e.g. torn):
			// surface it, the caller retries.
			return res, err
		}
	}
	return res, nil
}

// Key-range codec for the pushdown request payload.

// EncodeKeyRange packs [lo, hi) for a MsgScanCells payload.
func EncodeKeyRange(lo, hi []byte) []byte {
	buf := make([]byte, 0, 4+len(lo)+len(hi))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lo)))
	buf = append(buf, lo...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(hi)))
	buf = append(buf, hi...)
	return buf
}

// DecodeKeyRange unpacks a MsgScanCells payload.
func DecodeKeyRange(buf []byte) (lo, hi []byte, err error) {
	if len(buf) < 2 {
		return nil, nil, errors.New("pageserver: short key range")
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < n+2 {
		return nil, nil, errors.New("pageserver: truncated key range lo")
	}
	if n > 0 {
		lo = append([]byte(nil), buf[:n]...)
	}
	buf = buf[n:]
	m := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) != m {
		return nil, nil, errors.New("pageserver: truncated key range hi")
	}
	if m > 0 {
		hi = append([]byte(nil), buf...)
	}
	return lo, hi, nil
}

// handleScanCells serves MsgScanCells.
func (s *Server) handleScanCells(ctx context.Context, req *rbio.Request) *rbio.Response {
	lo, hi, err := DecodeKeyRange(req.Payload)
	if err != nil {
		return rbio.Errorf("scan-cells: %v", err)
	}
	res, err := s.ScanCells(ctx, req.Page, int(req.MaxBytes), lo, hi, req.LSN)
	if err != nil {
		return rbio.Retryf("scan-cells: %v", err)
	}
	resp := rbio.Ok()
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out[0:8], uint64(res.Matched))
	binary.LittleEndian.PutUint64(out[8:16], uint64(res.Bytes))
	binary.LittleEndian.PutUint64(out[16:24], uint64(res.PagesScanned))
	resp.Payload = out
	return resp
}

// DecodeScanResult parses a MsgScanCells response payload.
func DecodeScanResult(buf []byte) (ScanResult, error) {
	if len(buf) != 24 {
		return ScanResult{}, errors.New("pageserver: bad scan result payload")
	}
	return ScanResult{
		Matched:      int(binary.LittleEndian.Uint64(buf[0:8])),
		Bytes:        int64(binary.LittleEndian.Uint64(buf[8:16])),
		PagesScanned: int(binary.LittleEndian.Uint64(buf[16:24])),
	}, nil
}
