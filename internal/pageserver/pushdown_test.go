package pageserver

import (
	"context"
	"fmt"
	"testing"

	"socrates/internal/btree"
	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/wal"
)

// buildLeafRecords constructs page-image records for leaf pages holding
// known cells, via a real tree build on a scratch pager.
func buildLeafRecords(t *testing.T, rows int) ([]*wal.Record, int) {
	t.Helper()
	pager := &scratchPager{MemFile: fcb.NewMemFile()}
	pager.next = 0
	log := wal.NewMemLog()
	tree, err := btree.Create(pager, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tree.Put(0, []byte(fmt.Sprintf("k%05d", i)),
			[]byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return log.Records(), rows
}

type scratchPager struct {
	*fcb.MemFile
	next uint64
}

func (p *scratchPager) Allocate(t page.Type) (*page.Page, error) {
	p.next++
	return page.New(page.ID(p.next), t), nil
}

func TestScanCellsPushdown(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	recs, rows := buildLeafRecords(t, 800)
	recs = append(recs, wal.NewCommit(1, 1))
	end := r.emit(t, recs...)

	// Whole-range scan: count equals the row count.
	lo, hi := srv.Range()
	count := int(hi - lo)
	if count > 256 {
		count = 256
	}
	res, err := srv.ScanCells(context.Background(), lo, count, nil, nil, end-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != rows {
		t.Fatalf("matched %d cells, want %d", res.Matched, rows)
	}
	if res.PagesScanned == 0 || res.Bytes == 0 {
		t.Fatalf("result %+v", res)
	}

	// Key-bounded scan.
	res, err = srv.ScanCells(context.Background(), lo, count, []byte("k00100"), []byte("k00200"), end-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 100 {
		t.Fatalf("bounded scan matched %d, want 100", res.Matched)
	}
}

func TestScanCellsOverRBIO(t *testing.T) {
	r := newRig(t, page.Partitioning{})
	srv := r.server(t, Config{})
	recs, _ := buildLeafRecords(t, 300)
	recs = append(recs, wal.NewCommit(1, 1))
	end := r.emit(t, recs...)

	r.net.Serve("ps", srv.Handler())
	c := rbio.NewClient(r.net.Dial("ps"))
	lo, _ := srv.Range()
	resp, err := c.Call(context.Background(), &rbio.Request{
		Type:     rbio.MsgScanCells,
		Page:     lo,
		MaxBytes: 64,
		LSN:      end - 1,
		Payload:  EncodeKeyRange([]byte("k00050"), []byte("k00060")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := DecodeScanResult(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 10 {
		t.Fatalf("matched = %d, want 10", res.Matched)
	}
	// The pushdown response is tiny compared to shipping the pages: that
	// is the point of §4.1.5.
	if len(resp.Payload) >= page.Size {
		t.Fatalf("pushdown payload %d bytes, should be far below one page", len(resp.Payload))
	}
}

func TestScanCellsRejectsForeignRange(t *testing.T) {
	pt := page.Partitioning{PagesPerPartition: 10}
	r := newRig(t, pt)
	srv := r.server(t, Config{Partition: 0})
	if _, err := srv.ScanCells(context.Background(), 5, 10, nil, nil, 0); err == nil {
		t.Fatal("overflowing scan accepted")
	}
}

func TestKeyRangeCodec(t *testing.T) {
	lo, hi, err := DecodeKeyRange(EncodeKeyRange([]byte("a"), []byte("zz")))
	if err != nil || string(lo) != "a" || string(hi) != "zz" {
		t.Fatalf("%q %q %v", lo, hi, err)
	}
	lo, hi, err = DecodeKeyRange(EncodeKeyRange(nil, nil))
	if err != nil || lo != nil || hi != nil {
		t.Fatalf("nil range: %q %q %v", lo, hi, err)
	}
	if _, _, err := DecodeKeyRange([]byte{9}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := DecodeKeyRange([]byte{5, 0, 1, 2}); err == nil {
		t.Fatal("truncated lo accepted")
	}
}
