package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"socrates/internal/obs"
	"socrates/internal/simdisk"
)

// ladderValue digs one rung out of a watermark snapshot ("" replica).
func ladderValue(snap []obs.WatermarkState, name string) uint64 {
	for _, st := range snap {
		if st.Name == name && st.Replica == "" {
			return st.LSN
		}
	}
	return 0
}

// TestClusterWatermarkLadderLive commits through a deployment and asserts
// every rung of the LSN ladder was published and converges once the
// workload quiesces: the whole point of the watermark plane is that
// "caught up" is legible as equality across rungs.
func TestClusterWatermarkLadderLive(t *testing.T) {
	c := newFastCluster(t, fastConfig("wm-ladder"))
	seedRows(t, c, "t", 200)

	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := c.Watermarks.Snapshot()
		commit := ladderValue(snap, obs.WMCommit)
		hardened := ladderValue(snap, obs.WMHardened)
		promoted := ladderValue(snap, obs.WMPromoted)
		applied := uint64(0)
		appliedOK := true
		for _, st := range snap {
			if st.Name == obs.WMApplied {
				applied = st.LSN
				if st.LSN < promoted {
					appliedOK = false
				}
			}
		}
		if commit > 0 && hardened >= commit && promoted == hardened &&
			applied > 0 && appliedOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ladder never converged: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for background apply/promotion to catch up
	}

	// The flight recorder saw the traffic (flush + destage + apply events).
	if c.Flight.Recorded() == 0 {
		t.Fatal("flight recorder recorded nothing during a live workload")
	}
	// And no watchdog trips: a healthy run must not cry wolf.
	if n := c.Watchdog.TripCount(); n != 0 {
		t.Fatalf("healthy cluster tripped the watchdog %d times: %+v", n, c.Watchdog.Trips())
	}
}

// TestWatchdogStallTripFreezesFlightDump wedges every page server's cache
// SSD (apply batches fail, the applied watermark freezes while promotion
// keeps moving) and asserts the watchdog detects the stall and freezes a
// non-empty JSONL flight dump for the postmortem.
func TestWatchdogStallTripFreezesFlightDump(t *testing.T) {
	cfg := fastConfig("wm-stall")
	// Tight ticks so the stall is detected quickly; lag trips disabled so
	// the test isolates the stall rule.
	cfg.Watchdog = obs.WatchdogConfig{
		Interval:   2 * time.Millisecond,
		MaxLagLSN:  -1,
		StallTicks: 3,
	}
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 100)

	for _, srv := range c.PageServers() {
		srv.CacheDevice().SetOutage(true)
	}
	// Keep committing: promotion advances while apply is wedged.
	seedRows(t, c, "t2", 100)

	deadline := time.Now().Add(5 * time.Second)
	for c.Watchdog.TripCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never tripped on a stalled page server")
		}
		time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for the watchdog trip
	}

	var stall *obs.Trip
	for _, tr := range c.Watchdog.Trips() {
		if tr.Kind == obs.TripStall && strings.HasPrefix(tr.Follower, obs.WMApplied) {
			stall = &tr
			break
		}
	}
	if stall == nil {
		t.Fatalf("no stall trip on %s: %+v", obs.WMApplied, c.Watchdog.Trips())
	}
	if stall.Leader != obs.WMPromoted || stall.LagLSN == 0 {
		t.Fatalf("stall trip shape wrong: %+v", stall)
	}

	// The first trip froze a flight dump; it must be non-empty, parseable
	// JSONL, and contain the apply errors that explain the stall.
	dump := c.TripDump()
	if len(dump) == 0 {
		t.Fatal("trip did not freeze a flight dump")
	}
	sawApplyError := false
	for _, line := range bytes.Split(bytes.TrimSpace(dump), []byte("\n")) {
		var e obs.FlightEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("dump line %q not valid JSON: %v", line, err)
		}
		if e.Kind == "ps.apply_error" {
			sawApplyError = true
		}
	}
	if !sawApplyError {
		t.Fatalf("frozen dump has no ps.apply_error events:\n%s", dump)
	}

	// Recovery: the outage clears, apply resumes, and the plane converges.
	for _, srv := range c.PageServers() {
		srv.CacheDevice().SetOutage(false)
	}
	promoted := c.Watermarks.Watermark(obs.WMPromoted, "").Value()
	deadline = time.Now().Add(5 * time.Second)
	for {
		caught := true
		for _, rep := range c.Watermarks.Replicas(obs.WMApplied) {
			if c.Watermarks.Watermark(obs.WMApplied, rep).Value() < promoted {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("apply never caught up after the outage cleared")
		}
		time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for apply recovery
	}
}

// TestQuorumDegradedTripFreezesCommitWaits is the wait-stats integration
// test for a quorum-loss window: one of the three LZ replicas goes dark
// (the write quorum holds on the remaining two, so every commit now pays
// the slower replica's latency), concurrent committers push the hardened
// watermark past the lag threshold, and the watchdog trip that fires
// mid-window must freeze commit.quorum and commit.harden in its top-3 —
// the trip names WHY the landing zone fell behind, not just that it did.
func TestQuorumDegradedTripFreezesCommitWaits(t *testing.T) {
	cfg := fastConfig("wm-quorum")
	// Real XIO quorum writes (2.8ms base) so commit waits are genuine
	// wall-clock time and dwarf every other class in the trip window.
	cfg.LZProfile = simdisk.XIO
	// Tight ticks; the lag threshold sits well above the transient lag of
	// the serial warm-up batches (~55 LSNs) and well below the 16-way
	// degraded window's backlog (~400 LSNs).
	cfg.Watchdog = obs.WatchdogConfig{
		Interval:  2 * time.Millisecond,
		MaxLagLSN: 120,
	}
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 100)

	waitConverged := func(msg string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			commit := c.Watermarks.Watermark(obs.WMCommit, "").Value()
			hardened := c.Watermarks.Watermark(obs.WMHardened, "").Value()
			if commit > 0 && hardened >= commit {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: ladder never converged (commit=%d hardened=%d)", msg, commit, hardened)
			}
			time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for harden convergence
		}
	}
	waitConverged("after seeding")
	// Let the watchdog observe lag 0 so the edge-triggered lag rule is
	// armed for the fault window.
	time.Sleep(10 * time.Millisecond) //socrates:sleep-ok watchdog must tick on the converged ladder before the fault is injected

	reps := c.LZReplicas()
	if len(reps) != 3 {
		t.Fatalf("LZ replicas = %d, want the default 3", len(reps))
	}
	reps[0].SetOutage(true)
	defer reps[0].SetOutage(false)

	// Phase 1 — fill the watchdog's wait window while degraded: serial
	// commits keep the lag far below the threshold (one txn in flight,
	// ~26 LSNs) but each one blocks milliseconds in WaitHarden on the
	// 2-of-3 quorum, so the ring's last StallTicks snapshots accumulate
	// genuine commit-wait deltas before the trip can fire.
	e := c.Primary().Engine
	for n := 0; n < 8; n++ {
		tx := e.Begin()
		for i := 0; i < 25; i++ {
			if err := tx.Put("t", []byte(fmt.Sprintf("w%02d-%03d", n, i)), []byte("v")); err != nil {
				t.Fatalf("degraded serial put: %v", err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("degraded serial commit: %v", err)
		}
	}

	// Phase 2 — 16 committers × 6 transactions × 25 rows: the commit
	// frontier runs hundreds of LSNs ahead of the hardened watermark
	// while every flush waits on the two-replica quorum, crossing the
	// lag threshold with the window full of commit waits.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 6; n++ {
				tx := e.Begin()
				for i := 0; i < 25; i++ {
					if err := tx.Put("t", []byte(fmt.Sprintf("q%02d-%02d-%03d", g, n, i)),
						[]byte("v")); err != nil {
						tx.Abort()
						errs <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("commit during the degraded-quorum window: %v", err)
	}
	if failed, cause := e.Failed(); failed {
		t.Fatalf("engine poisoned by a minority replica outage: %v", cause)
	}

	var trip *obs.Trip
	for _, tr := range c.Watchdog.Trips() {
		if tr.Follower == obs.WMHardened {
			tr := tr
			trip = &tr
			break
		}
	}
	if trip == nil {
		t.Fatalf("no trip on %s during the degraded window: %+v", obs.WMHardened, c.Watchdog.Trips())
	}
	if trip.Kind != obs.TripLag || trip.Leader != obs.WMCommit {
		t.Fatalf("trip shape wrong: %+v", trip)
	}
	if len(trip.TopWaits) == 0 || len(trip.TopWaits) > 3 {
		t.Fatalf("TopWaits = %+v, want 1..3 frozen classes", trip.TopWaits)
	}
	t.Logf("trip-frozen top waits: %+v", trip.TopWaits)
	seen := map[string]bool{}
	for _, st := range trip.TopWaits {
		if st.Count == 0 || st.TotalNS == 0 {
			t.Errorf("frozen class %s has an empty window delta: %+v", st.Class, st)
		}
		seen[st.Class] = true
	}
	if !seen["commit.quorum"] {
		t.Errorf("trip window does not name commit.quorum in its top-3: %+v", trip.TopWaits)
	}
	if !seen["commit.harden"] {
		t.Errorf("trip window does not name commit.harden in its top-3: %+v", trip.TopWaits)
	}
	if c := trip.TopWaits[0].Class; c != "commit.harden" && c != "commit.quorum" {
		t.Errorf("dominant frozen class = %s, want a commit wait", c)
	}

	// Heal, converge, and verify nothing was lost through the window.
	reps[0].SetOutage(false)
	waitConverged("after healing")
	verifyRows(t, e, "t", 100+8*25+16*6*25, "after the degraded-quorum window")
}
