package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"socrates/internal/obs"
)

// ladderValue digs one rung out of a watermark snapshot ("" replica).
func ladderValue(snap []obs.WatermarkState, name string) uint64 {
	for _, st := range snap {
		if st.Name == name && st.Replica == "" {
			return st.LSN
		}
	}
	return 0
}

// TestClusterWatermarkLadderLive commits through a deployment and asserts
// every rung of the LSN ladder was published and converges once the
// workload quiesces: the whole point of the watermark plane is that
// "caught up" is legible as equality across rungs.
func TestClusterWatermarkLadderLive(t *testing.T) {
	c := newFastCluster(t, fastConfig("wm-ladder"))
	seedRows(t, c, "t", 200)

	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := c.Watermarks.Snapshot()
		commit := ladderValue(snap, obs.WMCommit)
		hardened := ladderValue(snap, obs.WMHardened)
		promoted := ladderValue(snap, obs.WMPromoted)
		applied := uint64(0)
		appliedOK := true
		for _, st := range snap {
			if st.Name == obs.WMApplied {
				applied = st.LSN
				if st.LSN < promoted {
					appliedOK = false
				}
			}
		}
		if commit > 0 && hardened >= commit && promoted == hardened &&
			applied > 0 && appliedOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ladder never converged: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for background apply/promotion to catch up
	}

	// The flight recorder saw the traffic (flush + destage + apply events).
	if c.Flight.Recorded() == 0 {
		t.Fatal("flight recorder recorded nothing during a live workload")
	}
	// And no watchdog trips: a healthy run must not cry wolf.
	if n := c.Watchdog.TripCount(); n != 0 {
		t.Fatalf("healthy cluster tripped the watchdog %d times: %+v", n, c.Watchdog.Trips())
	}
}

// TestWatchdogStallTripFreezesFlightDump wedges every page server's cache
// SSD (apply batches fail, the applied watermark freezes while promotion
// keeps moving) and asserts the watchdog detects the stall and freezes a
// non-empty JSONL flight dump for the postmortem.
func TestWatchdogStallTripFreezesFlightDump(t *testing.T) {
	cfg := fastConfig("wm-stall")
	// Tight ticks so the stall is detected quickly; lag trips disabled so
	// the test isolates the stall rule.
	cfg.Watchdog = obs.WatchdogConfig{
		Interval:   2 * time.Millisecond,
		MaxLagLSN:  -1,
		StallTicks: 3,
	}
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 100)

	for _, srv := range c.PageServers() {
		srv.CacheDevice().SetOutage(true)
	}
	// Keep committing: promotion advances while apply is wedged.
	seedRows(t, c, "t2", 100)

	deadline := time.Now().Add(5 * time.Second)
	for c.Watchdog.TripCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never tripped on a stalled page server")
		}
		time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for the watchdog trip
	}

	var stall *obs.Trip
	for _, tr := range c.Watchdog.Trips() {
		if tr.Kind == obs.TripStall && strings.HasPrefix(tr.Follower, obs.WMApplied) {
			stall = &tr
			break
		}
	}
	if stall == nil {
		t.Fatalf("no stall trip on %s: %+v", obs.WMApplied, c.Watchdog.Trips())
	}
	if stall.Leader != obs.WMPromoted || stall.LagLSN == 0 {
		t.Fatalf("stall trip shape wrong: %+v", stall)
	}

	// The first trip froze a flight dump; it must be non-empty, parseable
	// JSONL, and contain the apply errors that explain the stall.
	dump := c.TripDump()
	if len(dump) == 0 {
		t.Fatal("trip did not freeze a flight dump")
	}
	sawApplyError := false
	for _, line := range bytes.Split(bytes.TrimSpace(dump), []byte("\n")) {
		var e obs.FlightEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("dump line %q not valid JSON: %v", line, err)
		}
		if e.Kind == "ps.apply_error" {
			sawApplyError = true
		}
	}
	if !sawApplyError {
		t.Fatalf("frozen dump has no ps.apply_error events:\n%s", dump)
	}

	// Recovery: the outage clears, apply resumes, and the plane converges.
	for _, srv := range c.PageServers() {
		srv.CacheDevice().SetOutage(false)
	}
	promoted := c.Watermarks.Watermark(obs.WMPromoted, "").Value()
	deadline = time.Now().Add(5 * time.Second)
	for {
		caught := true
		for _, rep := range c.Watermarks.Replicas(obs.WMApplied) {
			if c.Watermarks.Watermark(obs.WMApplied, rep).Value() < promoted {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("apply never caught up after the outage cleared")
		}
		time.Sleep(2 * time.Millisecond) //socrates:sleep-ok test polling for apply recovery
	}
}
