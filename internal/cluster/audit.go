package cluster

import (
	"context"
	"socrates/internal/page"
	"socrates/internal/wal"
)

// AuditEvent is one committed transaction observed in the log. The paper's
// future-work section (§8) proposes "making use of the log for other
// services such as audit and security"; because XLOG already serves the
// hardened log to any consumer, an audit tail is a pull loop away.
type AuditEvent struct {
	// CommitLSN is the commit record's position.
	CommitLSN page.LSN
	// Txn is the transaction ID.
	Txn uint64
	// CommitTS is the commit timestamp (snapshot ordering).
	CommitTS uint64
	// Writes counts the page mutations the transaction carried.
	Writes int
	// Tables is unavailable at the log layer (physiological records carry
	// page IDs); Pages lists the distinct pages touched.
	Pages []page.ID
}

// AuditTail reads committed-transaction events from the hardened log
// starting at fromLSN, returning at most max events and the LSN to resume
// from. It consumes the same dissemination path as secondaries and page
// servers, with zero impact on the primary.
func (c *Cluster) AuditTail(fromLSN page.LSN, max int) ([]AuditEvent, page.LSN, error) {
	if fromLSN == 0 {
		fromLSN = 1
	}
	if max <= 0 {
		max = 1000
	}
	var events []AuditEvent
	cursor := fromLSN
	var cur *AuditEvent
	pageSet := map[page.ID]struct{}{}
	for len(events) < max {
		payload, next, err := c.XLOG.Pull(context.Background(), cursor, -1, 256<<10)
		if err != nil {
			return nil, fromLSN, err
		}
		if next == cursor {
			break
		}
		for len(payload) > 0 {
			b, n, err := wal.DecodeBlock(payload)
			if err != nil {
				return nil, fromLSN, err
			}
			payload = payload[n:]
			if len(events) >= max {
				// Budget reached: resume at this (unprocessed) block.
				return events, b.Start, nil
			}
			for _, rec := range b.Records {
				switch {
				case rec.Kind == wal.KindTxnBegin:
					cur = &AuditEvent{Txn: rec.Txn}
					pageSet = map[page.ID]struct{}{}
				case rec.IsPageOp():
					if cur != nil {
						cur.Writes++
						pageSet[rec.Page] = struct{}{}
					}
				case rec.Kind == wal.KindTxnCommit:
					ev := AuditEvent{Txn: rec.Txn, CommitLSN: rec.LSN,
						CommitTS: rec.CommitTS()}
					if cur != nil && cur.Txn == rec.Txn {
						ev.Writes = cur.Writes
						for id := range pageSet {
							ev.Pages = append(ev.Pages, id)
						}
					}
					events = append(events, ev)
					cur = nil
				}
			}
		}
		cursor = next
	}
	return events, cursor, nil
}
