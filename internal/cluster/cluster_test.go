package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"socrates/internal/engine"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/xstore"
)

// fastConfig returns a deployment config with zero-latency devices so
// integration tests are quick; the protocols exercised are identical.
func fastConfig(name string) Config {
	return Config{
		Name:            name,
		Net:             rbio.NewInstantNetwork(),
		LZProfile:       simdisk.Instant,
		LocalSSD:        simdisk.Instant,
		XStore:          xstore.Config{Profile: simdisk.Instant},
		LZCapacity:      16 << 20,
		CheckpointEvery: 5 * time.Millisecond,
	}
}

func newFastCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustExec(t *testing.T, e *engine.Engine, fn func(tx *engine.Tx) error) {
	t.Helper()
	tx := e.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func seedRows(t *testing.T, c *Cluster, table string, n int) {
	t.Helper()
	e := c.Primary().Engine
	if err := e.CreateTable(table); err != nil && !errors.Is(err, engine.ErrTableExists) {
		t.Fatal(err)
	}
	const batch = 50
	for base := 0; base < n; base += batch {
		mustExec(t, e, func(tx *engine.Tx) error {
			for i := base; i < base+batch && i < n; i++ {
				if err := tx.Put(table, []byte(fmt.Sprintf("k%06d", i)),
					[]byte(fmt.Sprintf("v%d", i))); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func verifyRows(t *testing.T, e *engine.Engine, table string, n int, context string) {
	t.Helper()
	count := 0
	err := e.BeginRO().Scan(table, nil, nil, func(k, v []byte) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatalf("%s: scan: %v", context, err)
	}
	if count != n {
		t.Fatalf("%s: %d rows, want %d", context, count, n)
	}
}

func TestBootstrapAndBasicCommit(t *testing.T) {
	c := newFastCluster(t, fastConfig("basic"))
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("hello"), []byte("world"))
	})
	v, found, err := e.BeginRO().Get("t", []byte("hello"))
	if err != nil || !found || string(v) != "world" {
		t.Fatalf("read back: %q %v %v", v, found, err)
	}
}

func TestRemoteFetchAfterEviction(t *testing.T) {
	cfg := fastConfig("evict")
	cfg.ComputeMemPages = 8 // tiny cache: most pages must come from page servers
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 2000)
	verifyRows(t, c.Primary().Engine, "t", 2000, "primary full scan")
	if c.Primary().Pages().Fetches() == 0 {
		t.Fatal("no GetPage@LSN fetches despite tiny cache — test is vacuous")
	}
	// Point reads across the key space.
	for i := 0; i < 2000; i += 97 {
		v, found, err := c.Primary().Engine.BeginRO().Get("t", []byte(fmt.Sprintf("k%06d", i)))
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%06d = %q %v %v", i, v, found, err)
		}
	}
}

func TestSecondaryServesSnapshotReads(t *testing.T) {
	cfg := fastConfig("sec")
	cfg.Secondaries = 2
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 300)

	hardened := c.Primary().HardenedEnd()
	for _, name := range c.Secondaries() {
		sec, _ := c.Secondary(name)
		if !sec.WaitApplied(hardened, 5*time.Second) {
			t.Fatalf("%s did not catch up", name)
		}
		verifyRows(t, sec.Engine, "t", 300, name)
	}
}

func TestSecondaryLagsButStaysConsistent(t *testing.T) {
	cfg := fastConfig("lag")
	cfg.Secondaries = 1
	c := newFastCluster(t, cfg)
	e := c.Primary().Engine
	if err := e.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}
	// Invariant: sum of two balances is constant under transfers.
	mustExec(t, e, func(tx *engine.Tx) error {
		if err := tx.Put("acct", []byte("a"), []byte("500")); err != nil {
			return err
		}
		return tx.Put("acct", []byte("b"), []byte("500"))
	})
	if err := c.WaitForCatchUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	sec, _ := c.Secondary("sec-0")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			mustExec(t, e, func(tx *engine.Tx) error {
				amt := []byte(fmt.Sprintf("%d", 500-i-1))
				amt2 := []byte(fmt.Sprintf("%d", 500+i+1))
				if err := tx.Put("acct", []byte("a"), amt); err != nil {
					return err
				}
				return tx.Put("acct", []byte("b"), amt2)
			})
		}
	}()
	// Concurrent snapshot reads on the secondary always see a consistent
	// pair (sum = 1000).
	for i := 0; i < 40; i++ {
		tx := sec.Engine.BeginRO()
		av, afound, err := tx.Get("acct", []byte("a"))
		if err != nil {
			t.Fatal(err)
		}
		bv, bfound, err := tx.Get("acct", []byte("b"))
		if err != nil {
			t.Fatal(err)
		}
		if !afound || !bfound {
			continue // secondary has not applied the initial commit yet
		}
		var a, b int
		fmt.Sscanf(string(av), "%d", &a)
		fmt.Sscanf(string(bv), "%d", &b)
		if a+b != 1000 {
			t.Fatalf("torn snapshot on secondary: a=%d b=%d", a, b)
		}
	}
	<-done
}

func TestFailoverPreservesCommittedData(t *testing.T) {
	c := newFastCluster(t, fastConfig("failover"))
	seedRows(t, c, "t", 500)
	before := c.Primary().Engine.Clock().Visible()

	newPrimary, elapsed, err := c.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("failover took %v", elapsed)
	}
	if got := newPrimary.Engine.Clock().Visible(); got < before {
		t.Fatalf("visibility regressed: %d < %d", got, before)
	}
	verifyRows(t, newPrimary.Engine, "t", 500, "post-failover")

	// The new primary keeps writing, with allocation continuity.
	seedRows(t, c, "t2", 300)
	verifyRows(t, newPrimary.Engine, "t2", 300, "post-failover writes")
	verifyRows(t, newPrimary.Engine, "t", 500, "old table after new writes")
}

func TestFailoverIsConstantTimeInDataSize(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	timeFailover := func(rows int) time.Duration {
		c := newFastCluster(t, fastConfig(fmt.Sprintf("fo%d", rows)))
		seedRows(t, c, "t", rows)
		// Measure recovery of a steady-state cluster, not log-apply lag
		// from the just-finished bulk load.
		if err := c.WaitForCatchUp(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		_, elapsed, err := c.Failover()
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	small := timeFailover(100)
	large := timeFailover(3000)
	// 30x more data must not make recovery ~30x slower; allow generous
	// noise headroom.
	if large > small*10+100*time.Millisecond {
		t.Fatalf("failover scales with data: %v (100 rows) vs %v (3000 rows)", small, large)
	}
}

func TestLossyFeedStillConverges(t *testing.T) {
	cfg := fastConfig("lossy")
	cfg.FeedLoss = 0.5
	cfg.Secondaries = 1
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 400)
	sec, _ := c.Secondary("sec-0")
	if !sec.WaitApplied(c.Primary().HardenedEnd(), 10*time.Second) {
		t.Fatal("secondary stuck behind lossy feed")
	}
	verifyRows(t, sec.Engine, "t", 400, "secondary after 50% feed loss")
	_, _, gaps := c.XLOG.Stats()
	if gaps == 0 {
		t.Fatal("no LZ gap fills despite feed loss — test is vacuous")
	}
}

func TestMultiplePartitions(t *testing.T) {
	cfg := fastConfig("multi")
	cfg.PageServers = 4
	cfg.PagesPerPartition = 64
	cfg.ComputeMemPages = 16
	c := newFastCluster(t, cfg)
	// Wide rows so the database spans several 64-page partitions.
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	wide := make([]byte, 1024)
	const n = 1200
	for base := 0; base < n; base += 40 {
		mustExec(t, e, func(tx *engine.Tx) error {
			for i := base; i < base+40 && i < n; i++ {
				if err := tx.Put("t", []byte(fmt.Sprintf("k%06d", i)), wide); err != nil {
					return err
				}
			}
			return nil
		})
	}
	verifyRows(t, c.Primary().Engine, "t", n, "4-partition scan")

	// Each partition's server applied something.
	if err := c.WaitForCatchUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, srv := range c.PageServers() {
		if _, _, applies := srv.Stats(); applies > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d page servers saw log traffic", busy)
	}
}

func TestPageServerReplicaFailover(t *testing.T) {
	cfg := fastConfig("psrep")
	cfg.ComputeMemPages = 8
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 800)

	if err := c.AddPageServerReplica(0); err != nil {
		t.Fatal(err)
	}
	// Wait for the replica to finish seeding.
	if err := c.WaitPageServersSeeded(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill the original server; reads fail over to the replica.
	original := c.PageServers()[0]
	c.Net.Unserve(c.addr(originalName(c, original)))
	verifyRows(t, c.Primary().Engine, "t", 800, "reads after page-server loss")
}

// originalName recovers the RBIO address suffix of a server (test helper).
func originalName(c *Cluster, srv interface{ Partition() page.PartitionID }) string {
	// Server names are ps-<seq>-p<partition>; the first server is seq 1.
	return fmt.Sprintf("ps-1-p%d", srv.Partition())
}

func TestSplitPageServer(t *testing.T) {
	cfg := fastConfig("split")
	cfg.ComputeMemPages = 8
	c := newFastCluster(t, cfg)
	seedRows(t, c, "t", 1500)

	if err := c.SplitPageServer(0); err != nil {
		t.Fatal(err)
	}
	servers := c.PageServers()
	if len(servers) != 2 {
		t.Fatalf("%d servers after split, want 2", len(servers))
	}
	lo0, hi0 := servers[0].Range()
	lo1, hi1 := servers[1].Range()
	if hi0 != lo1 && hi1 != lo0 {
		t.Fatalf("split ranges not adjacent: [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1)
	}
	verifyRows(t, c.Primary().Engine, "t", 1500, "after split")

	// Writes keep flowing to the split halves.
	seedRows(t, c, "t2", 400)
	verifyRows(t, c.Primary().Engine, "t2", 400, "writes after split")
}

func TestBackupAndPITR(t *testing.T) {
	c := newFastCluster(t, fastConfig("pitr"))
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("k"), []byte("v1"))
	})
	if err := c.Backup("bak1"); err != nil {
		t.Fatal(err)
	}
	markLSN := c.Primary().HardenedEnd()

	// Post-backup history: an update and a "catastrophic" delete.
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("k"), []byte("v2"))
	})
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Delete("t", []byte("k"))
	})

	// Restore to the backup moment: v1 visible.
	restored, _, err := c.PointInTimeRestore("bak1", markLSN)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := restored.BeginRO().Get("t", []byte("k"))
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("PITR@backup: %q %v %v", v, found, err)
	}

	// Restore to end of log: row deleted, matching the live database.
	restoredEnd, _, err := c.PointInTimeRestore("bak1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, _ := restoredEnd.BeginRO().Get("t", []byte("k")); found {
		t.Fatal("PITR@end still sees deleted row")
	}
	if _, _, err := c.PointInTimeRestore("ghost", 0); !errors.Is(err, ErrNoBackup) {
		t.Fatalf("restore of unknown backup: %v", err)
	}
}

func TestBackupIsConstantTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timing assertion; skipped in short mode")
	}
	c := newFastCluster(t, fastConfig("baktime"))
	seedRows(t, c, "t", 1200)
	// First backup pays for draining the dirty set; time the snapshot after
	// a flush so we measure the snapshot itself.
	for _, srv := range c.PageServers() {
		if _, err := srv.FlushForBackup(); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := c.Backup("b"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backup took %v", elapsed)
	}
}

func TestScaleComputeIsO1(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timing assertion; skipped in short mode")
	}
	c := newFastCluster(t, fastConfig("scale"))
	seedRows(t, c, "t", 600)
	d, err := c.ScaleCompute(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d > 10*time.Second {
		t.Fatalf("scale-up took %v", d)
	}
	verifyRows(t, c.Primary().Engine, "t", 600, "after scale-up")
}

func TestGeoSecondary(t *testing.T) {
	c := newFastCluster(t, fastConfig("geo"))
	seedRows(t, c, "t", 100)
	geo, err := c.AddGeoSecondary("geo-east", 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	seedRows(t, c, "t", 100) // idempotent upserts, advances the log
	if !geo.WaitApplied(c.Primary().HardenedEnd(), 10*time.Second) {
		t.Fatal("geo secondary never caught up")
	}
	verifyRows(t, geo.Engine, "t", 100, "geo secondary")
}

func TestAddRemoveSecondary(t *testing.T) {
	c := newFastCluster(t, fastConfig("addrem"))
	seedRows(t, c, "t", 200)
	sec, err := c.AddSecondary("late")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddSecondary("late"); err == nil {
		t.Fatal("duplicate secondary accepted")
	}
	// A late secondary starts at the hardened end with seeded visibility:
	// it can read data committed before it existed.
	verifyRows(t, sec.Engine, "t", 200, "late secondary")
	if err := c.RemoveSecondary("late"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveSecondary("late"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestWriteConflictAcrossSessions(t *testing.T) {
	c := newFastCluster(t, fastConfig("conflict"))
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("row"), []byte("base"))
	})
	t1 := e.Begin()
	t2 := e.Begin()
	if err := t1.Put("t", []byte("row"), []byte("from-t1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("t", []byte("row"), []byte("from-t2")); err == nil {
		t.Fatal("second writer did not conflict")
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _, _ := e.BeginRO().Get("t", []byte("row"))
	if string(v) != "from-t1" {
		t.Fatalf("row = %q", v)
	}
}
