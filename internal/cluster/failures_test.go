package cluster

import (
	"fmt"
	"testing"
	"time"

	"socrates/internal/engine"
	"socrates/internal/simdisk"
)

// TestLZReplicaFailureWithinQuorum kills one landing-zone replica; commits
// continue on the remaining quorum (2 of 3).
func TestLZReplicaFailureWithinQuorum(t *testing.T) {
	c := newFastCluster(t, fastConfig("lzfail"))
	seedRows(t, c, "t", 50)

	// Reach the replicated volume under the landing zone and fail one copy.
	reps := lzReplicas(t, c)
	reps[0].SetOutage(true)
	seedRows(t, c, "t2", 50)
	verifyRows(t, c.Primary().Engine, "t2", 50, "commits with 2/3 LZ replicas")

	// The replica recovers; the system is none the wiser.
	reps[0].SetOutage(false)
	seedRows(t, c, "t3", 50)
	verifyRows(t, c.Primary().Engine, "t3", 50, "after replica recovery")
}

// lzReplicas fetches the simulated replica devices under the landing
// zone (the chaos harness uses the same accessor).
func lzReplicas(t *testing.T, c *Cluster) []*simdisk.Device {
	t.Helper()
	reps := c.LZReplicas()
	if len(reps) == 0 {
		t.Skip("cluster built without a replicated LZ volume")
	}
	return reps
}

// TestXStoreOutageDuringWorkload: checkpoints defer, serving continues,
// and checkpointing resumes after the outage (§4.6 insulation, end to end).
func TestXStoreOutageDuringWorkload(t *testing.T) {
	c := newFastCluster(t, fastConfig("xsout"))
	seedRows(t, c, "t", 100)

	c.Store.SetOutage(true)
	seedRows(t, c, "t2", 100) // writes keep flowing
	verifyRows(t, c.Primary().Engine, "t2", 100, "reads during XStore outage")

	c.Store.SetOutage(false)
	if err := c.WaitForCatchUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Checkpoints drain once the store is back.
	if err := c.WaitCheckpointDrain(5 * time.Second); err != nil {
		t.Fatalf("checkpointing never caught up after the outage: %v", err)
	}
}

// TestReorderedFeedConverges runs with an artificially reordering feed
// channel; the pending area must reorder into LSN order.
func TestReorderedFeedConverges(t *testing.T) {
	cfg := fastConfig("reorder")
	cfg.Secondaries = 1
	c := newFastCluster(t, cfg)
	c.Net.SetReorderWindow(2 * time.Millisecond)
	seedRows(t, c, "t", 300)
	sec, _ := c.Secondary("sec-0")
	if !sec.WaitApplied(c.Primary().HardenedEnd(), 10*time.Second) {
		t.Fatal("secondary stuck behind reordered feed")
	}
	verifyRows(t, sec.Engine, "t", 300, "secondary after reordered feed")
}

// TestSnapshotTooOldSurfaces: after aggressive version truncation, an
// ancient snapshot fails loudly instead of returning wrong data.
func TestSnapshotTooOldSurfaces(t *testing.T) {
	c := newFastCluster(t, fastConfig("vsold"))
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, func(tx *engine.Tx) error {
		return tx.Put("t", []byte("k"), []byte("v1"))
	})
	old := e.BeginAt(e.Clock().Visible()) // pinned ancient snapshot
	for i := 0; i < 5; i++ {
		mustExec(t, e, func(tx *engine.Tx) error {
			return tx.Put("t", []byte("k"), []byte(fmt.Sprintf("v%d", i+2)))
		})
	}
	e.TruncateVersions(e.Clock().Visible())
	if _, _, err := old.Get("t", []byte("k")); err == nil {
		t.Fatal("ancient snapshot read succeeded after truncation")
	}
}

// TestSequentialFailovers exercises repeated crash/recover cycles.
func TestSequentialFailovers(t *testing.T) {
	c := newFastCluster(t, fastConfig("refail"))
	seedRows(t, c, "t", 100)
	for round := 0; round < 3; round++ {
		if _, _, err := c.Failover(); err != nil {
			t.Fatalf("failover %d: %v", round, err)
		}
		seedRows(t, c, fmt.Sprintf("t%d", round), 30)
		verifyRows(t, c.Primary().Engine, "t", 100, fmt.Sprintf("round %d base", round))
		verifyRows(t, c.Primary().Engine, fmt.Sprintf("t%d", round), 30,
			fmt.Sprintf("round %d new", round))
	}
}
