package cluster

import (
	"errors"
	"testing"
	"time"
)

// Point-in-time-restore edge cases (§4.7): targets below, exactly at, and
// immediately after the backup's snapshot LSN.

// TestRestoreBeforeBackupIsRefused: a target strictly below the backup's
// snapshot LSN cannot be served from that backup (the snapshot already
// contains newer state); the workflow must refuse with the typed error,
// not silently hand back a too-new image.
func TestRestoreBeforeBackupIsRefused(t *testing.T) {
	c := newFastCluster(t, fastConfig("pitrlow"))
	seedRows(t, c, "t", 60)
	early := c.Primary().HardenedEnd() // strictly below the backup to come
	seedRows(t, c, "t", 120)           // advance the log past `early`
	if err := c.WaitForCatchUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Backup("b"); err != nil {
		t.Fatal(err)
	}
	blsn, ok := c.BackupLSN("b")
	if !ok {
		t.Fatal("backup LSN not recorded")
	}
	if !early.Before(blsn) {
		t.Fatalf("precondition: early %d not below backup snapshot %d", early, blsn)
	}
	_, _, err := c.PointInTimeRestore("b", early)
	if !errors.Is(err, ErrRestoreBeforeBackup) {
		t.Fatalf("restore below backup: got %v, want ErrRestoreBeforeBackup", err)
	}
}

// TestRestoreExactlyAtBackupLSN: the lowest acceptable target. The replay
// range [backupLSN, backupLSN) is empty — the image is exactly the
// snapshot, containing everything committed before the backup and nothing
// after.
func TestRestoreExactlyAtBackupLSN(t *testing.T) {
	c := newFastCluster(t, fastConfig("pitrat"))
	seedRows(t, c, "t", 100)
	if err := c.WaitForCatchUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Backup("b"); err != nil {
		t.Fatal(err)
	}
	blsn, ok := c.BackupLSN("b")
	if !ok {
		t.Fatal("backup LSN not recorded")
	}
	seedRows(t, c, "after", 50) // post-backup writes must NOT appear

	eng, _, err := c.PointInTimeRestore("b", blsn)
	if err != nil {
		t.Fatalf("restore at backup LSN %d: %v", blsn, err)
	}
	verifyRows(t, eng, "t", 100, "restore exactly at backup LSN")
	if _, found, err := eng.BeginRO().Get("after", []byte("k000000")); err == nil && found {
		t.Fatal("restore at backup LSN leaked a post-backup write")
	}
}

// TestRestoreWithEmptyLogTail: restoring to end-of-log when nothing was
// committed after the backup — the replay loop must handle a log tail
// that is empty (or contains only non-commit records) and still produce
// the full pre-backup state with its visibility timestamp.
func TestRestoreWithEmptyLogTail(t *testing.T) {
	c := newFastCluster(t, fastConfig("pitrtail"))
	seedRows(t, c, "t", 80)
	if err := c.WaitForCatchUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Backup("b"); err != nil {
		t.Fatal(err)
	}
	// No writes after the backup: the tail [backupLSN, end) is empty.
	eng, ts, err := c.PointInTimeRestore("b", 0)
	if err != nil {
		t.Fatalf("restore with empty tail: %v", err)
	}
	if ts == 0 {
		t.Fatal("restored visibility timestamp is zero — pre-backup commits would be invisible")
	}
	verifyRows(t, eng, "t", 80, "restore with empty log tail")
}
