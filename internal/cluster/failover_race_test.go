package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"socrates/internal/sqlengine"
)

// TestFailoverRacesInFlightCommits hammers the primary with concurrent
// ExecContext inserts while a failover fires mid-stream, then asserts
// every acknowledged insert is readable on the new primary. This is the
// regression net for the commit path's harden wait: an ack that races the
// failover must have hardened in the landing zone first, so the new
// primary (which boots from the LZ's hardened end) can never lose it.
func TestFailoverRacesInFlightCommits(t *testing.T) {
	c := newFastCluster(t, fastConfig("forace"))
	db := sqlengine.New(c.Primary().Engine)
	if _, err := db.Exec(`CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var (
		mu    sync.Mutex
		acked []int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := w*1_000_000 + i
				_, err := sess.ExecContext(context.Background(),
					fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'x')`, id))
				if err != nil {
					// The old compute node died under us — exactly what a
					// client sees during failover. Unacked writes carry no
					// durability promise; the writer simply stops.
					return
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}(w)
	}

	// Let the writers build up a stream of acks, then fail over while
	// they are still mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d acks before deadline", n)
		}
		time.Sleep(time.Millisecond) //socrates:sleep-ok deadline-bounded poll for writer progress
	}
	next, _, err := c.Failover()
	if err != nil {
		t.Fatalf("failover under load: %v", err)
	}
	close(stop)
	wg.Wait()

	// Every ack issued before or during the failover must survive it.
	mu.Lock()
	defer mu.Unlock()
	sess := sqlengine.New(next.Engine).Session()
	missing := 0
	for _, id := range acked {
		res, err := sess.Exec(fmt.Sprintf(`SELECT v FROM kv WHERE id = %d`, id))
		if err != nil {
			t.Fatalf("post-failover read id=%d: %v", id, err)
		}
		if len(res.Rows) != 1 {
			missing++
			t.Errorf("acked insert id=%d lost across failover", id)
		}
	}
	if missing == 0 {
		t.Logf("all %d acked inserts survived the failover", len(acked))
	}
}
