package cluster

import (
	"testing"

	"socrates/internal/engine"
)

func TestAuditTailSeesCommits(t *testing.T) {
	c := newFastCluster(t, fastConfig("audit"))
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustExec(t, e, func(tx *engine.Tx) error {
			if err := tx.Put("t", []byte{byte(i)}, []byte("v")); err != nil {
				return err
			}
			return tx.Put("t", []byte{byte(i + 100)}, []byte("v2"))
		})
	}

	events, next, err := c.AuditTail(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next <= 1 {
		t.Fatal("audit cursor did not advance")
	}
	// Bootstrap + DDL commits plus the 5 row transactions.
	var rowTxns []AuditEvent
	for _, ev := range events {
		if ev.Txn != 0 && ev.Writes > 0 {
			rowTxns = append(rowTxns, ev)
		}
	}
	if len(rowTxns) != 5 {
		t.Fatalf("audited %d row transactions, want 5 (events: %d)", len(rowTxns), len(events))
	}
	for i, ev := range rowTxns {
		if ev.CommitTS == 0 || ev.CommitLSN == 0 {
			t.Fatalf("event %d incomplete: %+v", i, ev)
		}
		// Two rows per txn touch at least one leaf page plus possibly the
		// version store / meta.
		if ev.Writes < 2 || len(ev.Pages) == 0 {
			t.Fatalf("event %d writes=%d pages=%v", i, ev.Writes, ev.Pages)
		}
	}
	// Commit timestamps are strictly increasing in log order.
	for i := 1; i < len(rowTxns); i++ {
		if rowTxns[i].CommitTS <= rowTxns[i-1].CommitTS {
			t.Fatalf("audit order broken: %d then %d",
				rowTxns[i-1].CommitTS, rowTxns[i].CommitTS)
		}
	}

	// Resuming from the cursor returns nothing new.
	more, _, err := c.AuditTail(next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 0 {
		t.Fatalf("resumed tail returned %d stale events", len(more))
	}
}

func TestAuditTailBounded(t *testing.T) {
	c := newFastCluster(t, fastConfig("audit2"))
	e := c.Primary().Engine
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustExec(t, e, func(tx *engine.Tx) error {
			return tx.Put("t", []byte{byte(i)}, []byte("v"))
		})
	}
	events, next, err := c.AuditTail(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) > 4 { // max is a soft cap at block granularity
		t.Fatalf("got %d events with max 3", len(events))
	}
	// The remainder arrives on resume.
	rest, _, err := c.AuditTail(next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events)+len(rest) < 10 {
		t.Fatalf("total audited %d, want >= 10", len(events)+len(rest))
	}
}
