package cluster

import (
	"fmt"
	"time"
)

// This file holds the deadline-bounded condition waits tests and the
// chaos harness lean on instead of fixed wall-clock sleeps: each polls a
// cluster-visible condition (a watermark rung, a seeding flag, a dirty
// counter) and fails loudly with the observed state on timeout, so a
// slow CI machine stretches the wait instead of flaking the test.

const waitPollInterval = time.Millisecond

// WaitPageServersSeeded blocks until no page server is still seeding its
// partition (freshly added replicas copy their baseline in the
// background) or the timeout elapses.
func (c *Cluster) WaitPageServersSeeded(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		seeding := 0
		for _, srv := range c.PageServers() {
			if srv.Seeding() {
				seeding++
			}
		}
		if seeding == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d page server(s) still seeding after %v", seeding, timeout)
		}
		time.Sleep(waitPollInterval) //socrates:sleep-ok deadline-bounded poll for background seeding
	}
}

// WaitCheckpointDrain blocks until every page server's dirty set has been
// checkpointed to XStore (the checkpoint rung of the watermark ladder has
// caught its applied rung) or the timeout elapses.
func (c *Cluster) WaitCheckpointDrain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		dirty := 0
		for _, srv := range c.PageServers() {
			dirty += srv.DirtyPages()
		}
		if dirty == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d dirty page(s) never checkpointed after %v", dirty, timeout)
		}
		time.Sleep(waitPollInterval) //socrates:sleep-ok deadline-bounded poll for checkpoint drain
	}
}
