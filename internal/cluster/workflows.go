package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"socrates/internal/compute"
	"socrates/internal/engine"
	"socrates/internal/fcb"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/pageserver"
	"socrates/internal/recovery"
	"socrates/internal/socerr"
)

// ErrNoBackup reports a restore from an unknown backup.
var ErrNoBackup = errors.New("cluster: no such backup")

// ErrRestoreBeforeBackup reports a point-in-time restore whose target LSN
// lies below the backup's snapshot LSN. The snapshot's page images already
// contain every write below that LSN — there is no log-undo, so the
// requested point is unreachable from this backup; the caller needs an
// earlier backup. (Without this guard the replay loop would silently skip
// and hand back an image that is newer than the requested point.)
var ErrRestoreBeforeBackup = errors.New("cluster: restore target below backup snapshot LSN")

// AddSecondary starts a new read-scale secondary attached at the current
// hardened log position. The operation is O(1): no data is copied — the
// node's cache fills lazily via GetPage@LSN (§4.1.2).
func (c *Cluster) AddSecondary(name string) (*compute.Secondary, error) {
	return c.addSecondary(name, 0)
}

// AddGeoSecondary starts a secondary whose log consumption pays a WAN
// round-trip per pull, modelling a replica in another region (§6).
func (c *Cluster) AddGeoSecondary(name string, wanDelay time.Duration) (*compute.Secondary, error) {
	return c.addSecondary(name, wanDelay)
}

func (c *Cluster) addSecondary(name string, delay time.Duration) (*compute.Secondary, error) {
	c.mu.Lock()
	if _, dup := c.secondaries[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: secondary %q exists", name)
	}
	c.mu.Unlock()

	sec, err := compute.NewSecondary(compute.SecondaryConfig{
		Name:          name,
		XLOG:          c.xlogClient(),
		Resolve:       c.resolve,
		CacheMemPages: c.cfg.ComputeMemPages,
		CacheSSDPages: c.cfg.ComputeSSDPages,
		CacheSSD:      c.dev(c.cfg.LocalSSD),
		CacheMeta:     c.dev(c.cfg.LocalSSD),
		StartLSN:      c.XLOG.HardenedEnd(),
		StartTS:       c.XLOG.MaxCommitTS(),
		ApplyDelay:    delay,
		Tracer:        c.Tracer,
		Metrics:       c.Metrics,
		Watermarks:    c.Watermarks,
		Flight:        c.Flight,
		Waits:         c.Waits.Tier("compute"),
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.secondaries[name] = sec
	c.mu.Unlock()
	return sec, nil
}

// WaitForCatchUp blocks until every page server and secondary has applied
// the log through the current hardened end. Each node exposes a
// condition-variable wait on its apply watermark, so this blocks on apply
// signals instead of polling.
func (c *Cluster) WaitForCatchUp(timeout time.Duration) error {
	target := c.LZ.HardenedEnd()
	deadline := time.Now().Add(timeout)
	for _, srv := range c.PageServers() {
		// waitApplied waits for applied > lsn, so pass target's predecessor
		// to observe applied >= target.
		if !srv.WaitApplied(target.Prev(), time.Until(deadline)) {
			return socerr.Timeoutf("cluster: catch-up to %d timed out: page server at %d",
				target, srv.AppliedLSN())
		}
	}
	c.mu.Lock()
	secs := make([]*compute.Secondary, 0, len(c.secondaries))
	for _, s := range c.secondaries {
		secs = append(secs, s)
	}
	c.mu.Unlock()
	for _, s := range secs {
		if !s.WaitApplied(target, time.Until(deadline)) {
			return socerr.Timeoutf("cluster: catch-up to %d timed out: %s at %d",
				target, s.Name(), s.AppliedLSN())
		}
	}
	return nil
}

// RemoveSecondary stops and forgets a secondary. An unknown name surfaces
// as socerr.ErrNoSecondary under errors.Is.
func (c *Cluster) RemoveSecondary(name string) error {
	c.mu.Lock()
	sec, ok := c.secondaries[name]
	delete(c.secondaries, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", socerr.ErrNoSecondary, name)
	}
	sec.Stop()
	return nil
}

// Failover crashes the primary and attaches a fresh one. Because compute
// nodes are stateless (§4.2), recovery is O(1) in database size: discover
// the hardened log end from the landing zone, re-report it to XLOG, restore
// visibility from the max hardened commit timestamp, and start serving —
// no undo, no page copying. Returns the new primary and the time to
// availability.
func (c *Cluster) Failover() (*compute.Primary, time.Duration, error) {
	c.mu.Lock()
	old := c.primary
	c.mu.Unlock()
	if old != nil {
		// The crashed node stays visible until its replacement is
		// installed; its commits fail fast (closed log writer), which is
		// what clients see during a real failover window.
		old.Crash()
	}

	start := time.Now()
	hardenedEnd := c.LZ.HardenedEnd()
	c.Flight.Record(obs.TierCompute, "failover.start", uint64(hardenedEnd), 0,
		"primary crashed; reattaching at hardened end")
	// Install a new producer epoch at the XLOG service. This (a) purges
	// the dead primary's speculative pending blocks and rejects its
	// in-flight feeds — their LSNs are about to be reissued — and (b)
	// re-derives the promotion watermark from the landing zone itself,
	// gap-filling harden reports the crashed node never delivered.
	epoch := c.XLOG.BeginEpoch(context.Background(), hardenedEnd)
	c.mu.Lock()
	c.epoch = epoch
	c.mu.Unlock()

	p, err := compute.NewPrimary(c.primaryConfig(false))
	if err != nil {
		c.Flight.Record(obs.TierCompute, "failover.error", uint64(hardenedEnd),
			time.Since(start), err.Error())
		return nil, 0, err
	}
	c.mu.Lock()
	c.primary = p
	c.mu.Unlock()
	c.Flight.Record(obs.TierCompute, "failover.done", uint64(hardenedEnd),
		time.Since(start), "new primary serving")
	return p, time.Since(start), nil
}

// ScaleCompute replaces the primary with one of a different cache size —
// the O(1) up/downsize of Table 1: no data moves; the new node attaches to
// the same page servers. Returns the time to availability.
func (c *Cluster) ScaleCompute(memPages, ssdPages int) (time.Duration, error) {
	c.mu.Lock()
	c.cfg.ComputeMemPages = memPages
	c.cfg.ComputeSSDPages = ssdPages
	c.mu.Unlock()
	_, d, err := c.Failover()
	return d, err
}

// AddPageServerReplica starts a hot replica of the partition's server: it
// seeds asynchronously from the XStore checkpoint while already serving,
// and joins the replica selector so reads fail over to it (§6).
func (c *Cluster) AddPageServerReplica(part page.PartitionID) error {
	// Make sure the checkpoint covers the current state so seeding is
	// complete.
	if err := c.flushPartition(part); err != nil {
		return err
	}
	resume := c.partitionResume(part)
	_, err := c.startPageServer(part, 0, 0, true, resume)
	return err
}

// SplitPageServer replaces the single server of a partition with two
// servers covering its halves — finer sharding for smaller
// mean-time-to-recovery (§6). Existing servers of the partition are
// retired once the halves are live.
func (c *Cluster) SplitPageServer(part page.PartitionID) error {
	if err := c.flushPartition(part); err != nil {
		return err
	}
	resume := c.partitionResume(part)

	var lo, hi page.ID
	found := false
	c.mu.Lock()
	for _, r := range c.ranges {
		// The partition's current (unsplit) range.
		if c.pt.PartitionOf(r.lo) == part {
			if !found || r.lo < lo {
				lo = r.lo
			}
			if !found || r.hi > hi {
				hi = r.hi
			}
			found = true
		}
	}
	c.mu.Unlock()
	if !found {
		return fmt.Errorf("cluster: partition %d has no servers", part)
	}
	mid := lo + (hi-lo)/2
	if mid == lo || mid == hi {
		return fmt.Errorf("cluster: partition %d too small to split", part)
	}
	if _, err := c.startPageServer(part, lo, mid, true, resume); err != nil {
		return err
	}
	if _, err := c.startPageServer(part, mid, hi, true, resume); err != nil {
		return err
	}
	c.retireRanges(part, lo, hi, mid)
	return nil
}

// retireRanges swaps the routing table to the split halves and stops the
// old full-range servers.
func (c *Cluster) retireRanges(part page.PartitionID, lo, hi, mid page.ID) {
	c.mu.Lock()
	var retired []*pageserver.Server
	kept := c.ranges[:0]
	for _, r := range c.ranges {
		if r.lo == lo && r.hi == hi {
			// Old full-range entry: retire its servers.
			for _, srv := range c.servers {
				slo, shi := srv.Range()
				if slo == lo && shi == hi {
					retired = append(retired, srv)
				}
			}
			delete(c.selectors, r.addr)
			continue
		}
		kept = append(kept, r)
	}
	c.ranges = kept
	live := c.servers[:0]
	for _, srv := range c.servers {
		isRetired := false
		for _, v := range retired {
			if v == srv {
				isRetired = true
				break
			}
		}
		if !isRetired {
			live = append(live, srv)
		}
	}
	c.servers = live
	c.mu.Unlock()
	for _, srv := range retired {
		srv.Stop()
	}
}

// flushPartition forces a full checkpoint on every server of the partition.
func (c *Cluster) flushPartition(part page.PartitionID) error {
	for _, srv := range c.PageServers() {
		if srv.Partition() == part {
			if _, err := srv.FlushForBackup(); err != nil {
				return err
			}
		}
	}
	return nil
}

// partitionResume reports the minimum applied LSN across the partition's
// servers — a safe log resume point for a seeded newcomer.
func (c *Cluster) partitionResume(part page.PartitionID) page.LSN {
	var min page.LSN
	first := true
	for _, srv := range c.PageServers() {
		if srv.Partition() != part {
			continue
		}
		if lsn := srv.AppliedLSN(); first || lsn.Before(min) {
			min, first = lsn, false
		}
	}
	if first {
		return 1
	}
	return min
}

// Backup takes a named, constant-time backup: every page server flushes its
// dirty set, then the whole database becomes an XStore snapshot — a
// metadata pointer, no data movement (§3.5, §4.7). The hardened log
// position and visibility timestamp at the moment of the snapshot are
// recorded for restore.
func (c *Cluster) Backup(name string) error {
	var resume page.LSN
	first := true
	for _, srv := range c.PageServers() {
		lsn, err := srv.FlushForBackup()
		if err != nil {
			return err
		}
		if first || lsn.Before(resume) {
			resume, first = lsn, false
		}
	}
	if err := c.Store.Snapshot(c.cfg.Name + "/" + name); err != nil {
		return err
	}
	var ts uint64
	if p := c.Primary(); p != nil {
		ts = p.Engine.Clock().Visible()
	}
	c.mu.Lock()
	c.backups[name] = backupInfo{lsn: resume, ts: ts}
	c.mu.Unlock()
	return nil
}

// BackupLSN reports the snapshot LSN of a named backup — the log position
// replay resumes from during a restore. It is the lowest target
// PointInTimeRestore accepts for that backup.
func (c *Cluster) BackupLSN(name string) (page.LSN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	info, ok := c.backups[name]
	return info.lsn, ok
}

// PointInTimeRestore materializes the database as of targetLSN from a named
// backup: the snapshot's page blobs are restored (a constant-time metadata
// copy in XStore), and the log range [backupLSN, targetLSN) is replayed on
// top — the §4.7 PITR workflow. targetLSN of zero means "end of log". It
// returns a read-only engine over the restored image and the visibility
// timestamp it was restored to.
func (c *Cluster) PointInTimeRestore(backup string, targetLSN page.LSN) (*engine.Engine, uint64, error) {
	return c.PointInTimeRestoreContext(context.Background(), backup, targetLSN)
}

// PointInTimeRestoreContext is PointInTimeRestore bounded by ctx: a
// cancelled context aborts the log replay between blocks.
func (c *Cluster) PointInTimeRestoreContext(ctx context.Context, backup string, targetLSN page.LSN) (*engine.Engine, uint64, error) {
	c.mu.Lock()
	info, ok := c.backups[backup]
	c.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoBackup, backup)
	}
	if targetLSN != 0 && targetLSN.Before(info.lsn) {
		return nil, 0, fmt.Errorf("%w: target %d < backup snapshot %d (%q)",
			ErrRestoreBeforeBackup, targetLSN, info.lsn, backup)
	}
	snapName := c.cfg.Name + "/" + backup
	restorePrefix := "restore/" + backup + "/"
	if err := c.Store.Restore(snapName, restorePrefix); err != nil {
		return nil, 0, err
	}

	// Attach the restored page blobs (no copying beyond reading them into
	// the scratch engine — a real deployment attaches them to fresh page
	// servers; see DESIGN.md).
	pages := fcb.NewMemFile()
	pagePrefix := restorePrefix + c.cfg.Name + "/page/"
	for _, blob := range c.Store.List(pagePrefix) {
		buf, err := c.Store.Get(blob)
		if err != nil {
			return nil, 0, err
		}
		pg, err := page.Decode(buf)
		if err != nil {
			return nil, 0, err
		}
		if err := pages.Write(pg); err != nil {
			return nil, 0, err
		}
	}

	// Replay the log range from the backup position to the target — the
	// cost of a PITR is exactly this bounded range, never the database
	// size (§4.7). The primary's harden reports are asynchronous, so first
	// promote the XLOG watermark to the landing zone's durable end (a
	// synchronous gap-fill) — the restore must see every hardened block up
	// to its target.
	c.XLOG.ReportHardened(ctx, c.LZ.HardenedEnd())
	if targetLSN == 0 {
		targetLSN = c.XLOG.HardenedEnd()
	}
	replayer := recovery.NewReplayer(pages)
	if _, err := replayer.ReplayRange(ctx, c.XLOG, info.lsn, targetLSN); err != nil {
		return nil, 0, err
	}

	eng, err := engine.Open(engine.Config{Pages: pages, ReadOnly: true})
	if err != nil {
		return nil, 0, err
	}
	// Visibility: everything committed by the backup instant plus whatever
	// the replay added. (The replay range can legitimately be empty when
	// the checkpoint had already applied through the target.)
	visible := replayer.Visible()
	if info.ts > visible {
		visible = info.ts
	}
	eng.Clock().Publish(visible)
	return eng, visible, nil
}
