// Package cluster assembles and orchestrates complete Socrates deployments:
// the four tiers (compute, XLOG, page servers, XStore) wired over an RBIO
// fabric, plus the distributed workflows of §5 and §6 — primary failover,
// O(1) scale-up, adding secondaries and page-server replicas, splitting a
// partition into finer shards, constant-time backup via XStore snapshots,
// and point-in-time restore from a snapshot set plus a log range.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"socrates/internal/compute"
	"socrates/internal/metrics"
	"socrates/internal/netmux"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/pageserver"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/xlog"
	"socrates/internal/xstore"
)

// Config describes a deployment.
type Config struct {
	// Name is the database name; it prefixes blob names and RBIO addresses.
	Name string
	// Secondaries is the initial secondary compute node count.
	Secondaries int
	// PageServers is the initial partition count (each gets one server).
	// Zero means one server covering the whole database.
	PageServers int
	// PagesPerPartition sizes partitions (the paper's 128 GB, scaled).
	// Required when PageServers > 1.
	PagesPerPartition uint64
	// LZProfile is the landing-zone device class (default simdisk.XIO; the
	// Appendix A experiments swap in simdisk.DirectDrive — no code change).
	LZProfile simdisk.Profile
	// LZReplicas / LZQuorum configure landing-zone replication (3 / 2).
	LZReplicas, LZQuorum int
	// LegacyCommitPath pins the primary's pre-adaptive log pipeline (fixed
	// batching window, round-trip harden reports). Paired with LZQuorum ==
	// LZReplicas it reconstructs the round-trip/fixed-set baseline the
	// `commit` experiment measures the adaptive path against.
	LegacyCommitPath bool
	// LZCapacity bounds the landing-zone ring (default 8 MiB).
	LZCapacity int64
	// XStore overrides the simulated XStore account configuration.
	XStore xstore.Config
	// Net is the RBIO fabric (default: a fresh LAN-latency network).
	Net *rbio.Network
	// FeedLoss drops this fraction of primary→XLOG feed messages.
	FeedLoss float64
	// ComputeMemPages / ComputeSSDPages size compute-node caches.
	ComputeMemPages, ComputeSSDPages int
	// PSMemPages sizes page-server memory tiers.
	PSMemPages int
	// PSPullBytes bounds one page-server log pull batch.
	PSPullBytes int
	// PrimaryCores / node core counts for the simulated CPU meters.
	PrimaryCores int
	// CheckpointEvery is the page-server checkpoint cadence.
	CheckpointEvery time.Duration
	// LocalSSD is the device class for node-local caches (default
	// simdisk.LocalSSD; tests use simdisk.Instant).
	LocalSSD simdisk.Profile
	// Tracer / Metrics override the deployment's observability spine.
	// Defaults are created by New, so every cluster is traceable.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Watermarks / Flight override the deployment's LSN ladder and flight
	// recorder. Defaults are created by New, so every cluster exposes the
	// full observability plane.
	Watermarks *obs.WatermarkSet
	Flight     *obs.FlightRecorder
	// Waits overrides the deployment's wait-event accounting table. The
	// default is created by New, so every cluster tracks per-tier wait
	// stats; SetEnabled(false) on it turns the sketches off.
	Waits *obs.WaitSet
	// Watchdog tunes the lag/stall watchdog (zero values take the obs
	// defaults: 25ms ticks, 50k-LSN lag threshold, 8-tick stall window).
	Watchdog obs.WatchdogConfig
	// Seed, when nonzero, makes the entire deployment reproducible from
	// one integer: every simdisk device (LZ replicas, node-local caches,
	// the XStore media) gets an independent jitter stream derived from it
	// via simdisk.MixSeed, and the RBIO fabric's jitter/loss/reorder RNG
	// is re-seeded too. Zero keeps the historical fixed defaults.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Name = "db"
	}
	if c.LZProfile.Name == "" {
		c.LZProfile = simdisk.XIO
	}
	if c.LZReplicas == 0 {
		c.LZReplicas = 3
	}
	if c.LZQuorum == 0 {
		c.LZQuorum = 2
	}
	if c.LZCapacity == 0 {
		c.LZCapacity = 8 << 20
	}
	if c.ComputeMemPages == 0 {
		c.ComputeMemPages = 256
	}
	if c.PSMemPages == 0 {
		c.PSMemPages = 64
	}
	if c.PrimaryCores == 0 {
		c.PrimaryCores = 8
	}
	if c.PageServers == 0 {
		c.PageServers = 1
	}
	if c.LocalSSD.Name == "" {
		c.LocalSSD = simdisk.LocalSSD
	}
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config

	Net   *rbio.Network
	Store *xstore.Store
	LZ    *xlog.LandingZone
	XLOG  *xlog.Service

	// lzVol is the replicated volume under the landing zone (failure
	// injection in tests).
	lzVol simdisk.Volume

	// PrimaryMeter is the primary node's simulated CPU meter (charged by
	// the engine and by landing-zone device I/O).
	PrimaryMeter *metrics.CPUMeter

	// Tracer collects cross-tier span trees; Metrics holds the per-tier
	// counter/histogram registry. Every node of the deployment shares them.
	Tracer  *obs.Tracer
	Metrics *obs.Registry

	// Watermarks is the deployment's LSN ladder; Flight the always-on
	// postmortem ring; Watchdog the lag/stall monitor over the ladder.
	// Every node of the deployment shares them.
	Watermarks *obs.WatermarkSet
	Flight     *obs.FlightRecorder
	Watchdog   *obs.Watchdog

	// Waits is the deployment's wait-event accounting table: every blocking
	// site of every tier records into its tier's recorder here.
	Waits *obs.WaitSet

	// tripDump holds the flight-recorder JSONL captured at the first
	// watchdog trip (postmortems read the ring *near* the stall, so the
	// dump is taken inside the trip callback, not at Close).
	tripMu   sync.Mutex
	tripDump []byte

	// seedLane hands out device seed lanes when cfg.Seed != 0, so every
	// simdisk device of the deployment gets an independent but
	// deterministic jitter stream (creation order is deterministic given
	// a deterministic workflow schedule).
	seedLane atomic.Int64

	// muxMetrics instruments every inter-tier netmux pool of the
	// deployment; pools tracks them for chaos severing.
	muxMetrics *netmux.Metrics
	poolMu     sync.Mutex
	pools      []*netmux.Pool

	mu          sync.Mutex
	pt          page.Partitioning
	epoch       uint64 // current producer epoch (bumped by Failover)
	primary     *compute.Primary
	secondaries map[string]*compute.Secondary
	servers     []*pageserver.Server // all live page servers
	serverAddrs map[*pageserver.Server]string
	selectors   map[string]*rbio.Selector
	ranges      []serverRange
	psSeq       int
	backups     map[string]backupInfo
}

type serverRange struct {
	lo, hi page.ID
	addr   string
}

type backupInfo struct {
	lsn page.LSN
	ts  uint64
}

// New builds, bootstraps, and starts a deployment.
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	if cfg.PageServers > 1 && cfg.PagesPerPartition == 0 {
		return nil, errors.New("cluster: PagesPerPartition required with multiple page servers")
	}
	c := &Cluster{
		cfg:         cfg,
		Net:         cfg.Net,
		Tracer:      cfg.Tracer,
		Metrics:     cfg.Metrics,
		Watermarks:  cfg.Watermarks,
		Flight:      cfg.Flight,
		Waits:       cfg.Waits,
		secondaries: make(map[string]*compute.Secondary),
		serverAddrs: make(map[*pageserver.Server]string),
		selectors:   make(map[string]*rbio.Selector),
		backups:     make(map[string]backupInfo),
		pt:          page.Partitioning{PagesPerPartition: cfg.PagesPerPartition},
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Watermarks == nil {
		c.Watermarks = obs.NewWatermarkSet()
	}
	if c.Flight == nil {
		c.Flight = obs.NewFlightRecorder(0)
	}
	if c.Waits == nil {
		c.Waits = obs.NewWaitSet()
	}
	c.muxMetrics = netmux.NewMetrics(c.Metrics)
	// The fabric's queue/RTT waits land under their own pseudo-tier: mux
	// pools are shared by all tiers, so per-tier attribution happens at the
	// caller (e.g. page.remote), while the fabric itself reports raw
	// queue-admission and round-trip time here.
	c.muxMetrics.Waits = c.Waits.Tier("netmux")
	// The watchdog watches the whole ladder; its first trip freezes a copy
	// of the flight ring (the "seconds before the stall" postmortem) and
	// every trip lands in the ring itself.
	c.Watchdog = obs.NewWatchdog(c.Watermarks, c.Metrics, cfg.Watchdog)
	c.Watchdog.SetWaitSet(c.Waits)
	c.Watchdog.OnTrip(func(t obs.Trip) {
		c.Flight.Record("obs", "watchdog.trip", 0, t.LagTime,
			string(t.Kind)+": "+t.Detail)
		var buf bytes.Buffer
		//socrates:ignore-err dumping to a bytes.Buffer cannot fail; the encoder only errors on unmarshalable values and FlightEvent is plain data
		_ = c.Flight.Dump(&buf)
		c.tripMu.Lock()
		if c.tripDump == nil {
			c.tripDump = buf.Bytes()
		}
		c.tripMu.Unlock()
	})
	c.Watchdog.Start()
	if c.Net == nil {
		c.Net = rbio.NewNetwork()
	}
	if cfg.FeedLoss > 0 {
		c.Net.SetLoss(cfg.FeedLoss)
	}
	if cfg.Seed != 0 {
		// One root seed pins the whole deployment: the fabric's jitter
		// stream plus every device lane below.
		c.Net.SetSeed(simdisk.MixSeed(cfg.Seed, -1))
		if cfg.XStore.Seed == 0 {
			cfg.XStore.Seed = simdisk.MixSeed(cfg.Seed, -2)
		}
	}
	c.Store = xstore.New(cfg.XStore)
	c.Store.SetMetrics(c.Metrics)
	c.PrimaryMeter = metrics.NewCPUMeter(cfg.PrimaryCores)

	// Landing zone: quorum-replicated fast storage; the primary's meter is
	// charged for LZ I/O issue cost (the Table 7 effect).
	lzSeed := int64(0)
	if cfg.Seed != 0 {
		lzSeed = simdisk.MixSeed(cfg.Seed, -3)
	}
	lzVol, err := simdisk.NewReplicatedSeeded(cfg.LZProfile, cfg.LZReplicas, cfg.LZQuorum,
		lzSeed, simdisk.WithCPU(c.PrimaryMeter), simdisk.WithWaits(c.Waits.Tier("xlog")))
	if err != nil {
		return nil, err
	}
	c.lzVol = lzVol
	c.LZ, err = xlog.NewLandingZone(lzVol, cfg.LZCapacity)
	if err != nil {
		return nil, err
	}
	c.LZ.SetWaits(c.Waits.Tier("xlog"))
	c.XLOG, err = xlog.New(xlog.Config{
		LZ: c.LZ, LT: c.Store, LTBlob: cfg.Name + "/lt",
		CacheDevice: c.dev(cfg.LocalSSD, simdisk.WithWaits(c.Waits.Tier("xlog"))),
		Tracer:      c.Tracer, Metrics: c.Metrics,
		Watermarks: c.Watermarks, Flight: c.Flight,
		Waits: c.Waits.Tier("xlog"),
	})
	if err != nil {
		return nil, err
	}
	c.Net.Serve(c.addr("xlog"), c.XLOG.Handler())

	// Page servers, one per partition.
	for p := 0; p < cfg.PageServers; p++ {
		if _, err := c.startPageServer(page.PartitionID(p), 0, 0, false, 1); err != nil {
			return nil, err
		}
	}

	// Primary bootstraps the database.
	primary, err := compute.NewPrimary(c.primaryConfig(true))
	if err != nil {
		return nil, err
	}
	c.primary = primary

	// Initial secondaries.
	for i := 0; i < cfg.Secondaries; i++ {
		if _, err := c.AddSecondary(fmt.Sprintf("sec-%d", i)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) addr(node string) string { return c.cfg.Name + "/" + node }

// dev builds a node-local simdisk device. With Config.Seed set, each device
// draws its jitter stream from its own lane of the root seed, so a
// deployment whose workflows run in a deterministic order is reproducible
// end to end from one integer.
func (c *Cluster) dev(p simdisk.Profile, opts ...simdisk.Option) *simdisk.Device {
	if c.cfg.Seed != 0 {
		lane := c.seedLane.Add(1)
		opts = append(opts, simdisk.WithSeed(simdisk.MixSeed(c.cfg.Seed, lane)))
	}
	return simdisk.New(p, opts...)
}

// pool builds a netmux pool to addr over the deployment's fabric. Every
// inter-tier client of the cluster dials through one of these, so the
// whole deployment gets per-destination in-flight caps, bounded queuing,
// health-based eviction, and chaos-severable connections for free.
func (c *Cluster) pool(addr string) *netmux.Pool {
	p := netmux.NewPool(addr,
		func(a string) (rbio.Conn, error) { return c.Net.Dial(a), nil },
		netmux.Options{Metrics: c.muxMetrics, Flight: c.Flight})
	c.poolMu.Lock()
	c.pools = append(c.pools, p)
	c.poolMu.Unlock()
	return p
}

// SeverMuxConns severs every pooled inter-tier connection mid-flight
// (chaos injection: a fabric-wide partition tearing established
// streams). In-flight calls fail and retry onto freshly dialed
// connections; it reports how many conns were severed.
func (c *Cluster) SeverMuxConns() int {
	c.poolMu.Lock()
	pools := append([]*netmux.Pool(nil), c.pools...)
	c.poolMu.Unlock()
	n := 0
	for _, p := range pools {
		n += p.SeverAll()
	}
	return n
}

func (c *Cluster) xlogClient() *rbio.Client {
	return rbio.NewClient(c.pool(c.addr("xlog")))
}

// resolve maps a page to the selector of the replica set serving it. When
// the database grows past the provisioned partitions, a page server for the
// new partition is started on demand — the §4.1.1 storage-allocation
// property: growth never moves existing data.
func (c *Cluster) resolve(id page.ID) (*rbio.Selector, error) {
	if sel := c.lookupRange(id); sel != nil {
		return sel, nil
	}
	if c.cfg.PagesPerPartition == 0 {
		return nil, fmt.Errorf("cluster: no page server covers page %d", id)
	}
	part := c.pt.PartitionOf(id)
	if _, err := c.startPageServer(part, 0, 0, false, 1); err != nil {
		return nil, fmt.Errorf("cluster: growing to partition %d: %w", part, err)
	}
	if sel := c.lookupRange(id); sel != nil {
		return sel, nil
	}
	return nil, fmt.Errorf("cluster: no page server covers page %d", id)
}

func (c *Cluster) lookupRange(id page.ID) *rbio.Selector {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.ranges {
		if id >= r.lo && id < r.hi {
			return c.selectors[r.addr]
		}
	}
	return nil
}

func (c *Cluster) primaryConfig(bootstrap bool) compute.PrimaryConfig {
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	return compute.PrimaryConfig{
		LZ:            c.LZ,
		XLOG:          c.xlogClient(),
		Epoch:         epoch,
		Resolve:       c.resolve,
		Partitioning:  c.pt,
		CacheMemPages: c.cfg.ComputeMemPages,
		CacheSSDPages: c.cfg.ComputeSSDPages,
		CacheSSD:      c.dev(c.cfg.LocalSSD, simdisk.WithCPU(c.PrimaryMeter), simdisk.WithWaits(c.Waits.Tier("compute"))),
		CacheMeta:     c.dev(c.cfg.LocalSSD),
		Meter:         c.PrimaryMeter,
		Bootstrap:     bootstrap,
		Tracer:        c.Tracer,
		Metrics:       c.Metrics,
		Watermarks:    c.Watermarks,
		Flight:        c.Flight,
		Waits:         c.Waits.Tier("compute"),

		LegacyCommitPath: c.cfg.LegacyCommitPath,
	}
}

// startPageServer launches one page server. When rangeHi > 0 the server
// covers [rangeLo, rangeHi) of the partition; seed loads the cache from
// XStore; startLSN overrides the apply start.
func (c *Cluster) startPageServer(part page.PartitionID, rangeLo, rangeHi page.ID,
	seed bool, startLSN page.LSN) (*pageserver.Server, error) {
	c.mu.Lock()
	c.psSeq++
	name := fmt.Sprintf("ps-%d-p%d", c.psSeq, part)
	c.mu.Unlock()

	srv, err := pageserver.New(pageserver.Config{
		Partition:       part,
		Partitioning:    c.pt,
		RangeLo:         rangeLo,
		RangeHi:         rangeHi,
		Name:            name,
		XLOG:            c.xlogClient(),
		Store:           c.Store,
		BlobPrefix:      c.cfg.Name + "/",
		CacheSSD:        c.dev(c.cfg.LocalSSD, simdisk.WithWaits(c.Waits.Tier("pageserver"))),
		CacheMeta:       c.dev(c.cfg.LocalSSD),
		MemPages:        c.cfg.PSMemPages,
		PullBytes:       c.cfg.PSPullBytes,
		StartLSN:        startLSN,
		Seed:            seed,
		CheckpointEvery: c.cfg.CheckpointEvery,
		Tracer:          c.Tracer,
		Metrics:         c.Metrics,
		Watermarks:      c.Watermarks,
		Flight:          c.Flight,
		Waits:           c.Waits.Tier("pageserver"),
	})
	if err != nil {
		return nil, err
	}
	addr := c.addr(name)
	c.Net.Serve(addr, srv.Handler())

	lo, hi := srv.Range()
	// Build the client (its pool registration reaches the fabric dial
	// path) outside the critical section; deadlocklint flags fabric work
	// under Cluster.mu.
	client := rbio.NewClient(c.pool(addr))
	c.mu.Lock()
	c.servers = append(c.servers, srv)
	c.serverAddrs[srv] = addr
	// A server for an existing range joins that range's selector
	// (replica); a new range gets its own selector.
	joined := false
	for _, r := range c.ranges {
		if r.lo == lo && r.hi == hi {
			c.selectors[r.addr].Add(client)
			joined = true
			break
		}
	}
	if !joined {
		c.selectors[addr] = rbio.NewSelector(client)
		c.ranges = append(c.ranges, serverRange{lo: lo, hi: hi, addr: addr})
	}
	c.mu.Unlock()
	return srv, nil
}

// Primary returns the current primary compute node.
func (c *Cluster) Primary() *compute.Primary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// Secondary returns a secondary by name.
func (c *Cluster) Secondary(name string) (*compute.Secondary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.secondaries[name]
	return s, ok
}

// Secondaries lists secondary names.
func (c *Cluster) Secondaries() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.secondaries))
	for n := range c.secondaries {
		names = append(names, n)
	}
	return names
}

// PageServers lists the live page servers.
func (c *Cluster) PageServers() []*pageserver.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*pageserver.Server(nil), c.servers...)
}

// LZReplicas exposes the landing zone's replica devices for failure
// injection (LZ replica outages, quorum-loss windows). Nil when the LZ
// volume is not replicated.
func (c *Cluster) LZReplicas() []*simdisk.Device {
	if r, ok := c.lzVol.(*simdisk.Replicated); ok {
		return r.Replicas()
	}
	return nil
}

// LZVolume exposes the replicated landing-zone volume itself — the
// flexible-quorum bookkeeping (acked copy counts, per-replica missed
// extents, reconciliation) that the chaos oracle audits. Nil when the LZ
// volume is not replicated.
func (c *Cluster) LZVolume() *simdisk.Replicated {
	r, _ := c.lzVol.(*simdisk.Replicated)
	return r
}

// PageServerAddr reports the RBIO address a live page server is registered
// under ("" if the server is not part of this deployment).
func (c *Cluster) PageServerAddr(srv *pageserver.Server) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverAddrs[srv]
}

// KillPageServer tears a page server down: its RBIO address stops
// resolving, the endpoint leaves its range's replica selector, and the
// server's background loops halt. Reads over the range fail over to the
// surviving replicas (ErrNoPageServer if none remain — the caller is
// killing the last copy). Chaos and failover tests use this to model a
// page-server crash; re-adding is AddPageServerReplica.
func (c *Cluster) KillPageServer(srv *pageserver.Server) error {
	c.mu.Lock()
	addr, ok := c.serverAddrs[srv]
	if !ok {
		c.mu.Unlock()
		return errors.New("cluster: page server not part of this deployment")
	}
	delete(c.serverAddrs, srv)
	live := c.servers[:0]
	for _, s := range c.servers {
		if s != srv {
			live = append(live, s)
		}
	}
	c.servers = live
	lo, hi := srv.Range()
	for _, r := range c.ranges {
		if r.lo == lo && r.hi == hi {
			if sel := c.selectors[r.addr]; sel != nil {
				sel.Remove(addr)
			}
		}
	}
	c.mu.Unlock()
	c.Net.Unserve(addr)
	srv.Stop()
	c.Flight.Record(obs.TierPageServer, "ps.kill", uint64(srv.AppliedLSN()), 0,
		addr+": killed")
	return nil
}

// TripDump returns the flight-recorder JSONL frozen at the first watchdog
// trip (nil if the watchdog never fired). This is the stall postmortem:
// the ring's contents seconds before and at the trip.
func (c *Cluster) TripDump() []byte {
	c.tripMu.Lock()
	defer c.tripMu.Unlock()
	return append([]byte(nil), c.tripDump...)
}

// Close stops every node.
func (c *Cluster) Close() {
	c.mu.Lock()
	primary := c.primary
	secs := make([]*compute.Secondary, 0, len(c.secondaries))
	for _, s := range c.secondaries {
		secs = append(secs, s)
	}
	servers := append([]*pageserver.Server(nil), c.servers...)
	c.mu.Unlock()

	if primary != nil {
		primary.Close()
	}
	for _, s := range secs {
		s.Stop()
	}
	for _, srv := range servers {
		srv.Stop()
	}
	c.XLOG.Close()
	c.Watchdog.Stop()
}
