// Package rbpex implements RBPEX, the Resilient Buffer Pool EXtension
// (§3.3): a two-tier page cache — main memory over local SSD — whose SSD
// tier survives process restarts. Compute nodes and page servers both use
// it; only the policy differs:
//
//   - sparse (compute nodes): the cache holds the hottest pages; both tiers
//     evict LRU, and a page falling out entirely triggers the OnEvict hook
//     (which feeds the primary's evicted-LSN map for GetPage@LSN).
//   - covering (page servers): the SSD tier holds every page of the
//     partition in a stride-preserving layout — slot k holds page base+k —
//     so a multi-page range read from a compute node translates into a
//     single SSD I/O (§4.6), and the SSD tier never evicts.
//
// Cache metadata (which page sits in which SSD slot, at which LSN) lives in
// a hekaton table on the same SSD, so Open after a crash recovers the SSD
// tier: only the log records newer than each cached page's LSN need to be
// replayed, instead of refetching the whole working set from remote
// servers. That is the mean-time-to-recovery win the paper describes.
package rbpex

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"socrates/internal/hekaton"
	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/simdisk"
)

// ErrNotCovered is returned by ReadRange on a sparse cache.
var ErrNotCovered = errors.New("rbpex: range reads require a covering cache")

// Config describes a cache instance.
type Config struct {
	// MemPages is the memory-tier capacity in pages (≥ 1).
	MemPages int
	// SSDPages is the SSD-tier capacity in pages; 0 disables the SSD tier
	// (plain volatile buffer pool). Ignored in covering mode, where the
	// tier is sized by the partition.
	SSDPages int
	// Covering selects the page-server policy: the SSD tier covers the
	// whole partition [Base, Base+SSDPages) and never evicts.
	Covering bool
	// Base is the first page ID of the partition (covering mode).
	Base page.ID
	// SSD is the device holding page slots. Required if SSDPages > 0.
	SSD *simdisk.Device
	// Meta is the device holding the recoverable metadata table. Required
	// if SSDPages > 0.
	Meta *simdisk.Device
	// Waits, if set, receives a page.miss wait for every memory-tier miss
	// served from the SSD tier (the time the caller spent blocked on the
	// slot read). Nil disables recording.
	Waits *obs.WaitRecorder
	// OnEvict, if set, is called when a page leaves the cache entirely,
	// with the page's last cached LSN. It runs atomically with the
	// removal (under the cache lock): a concurrent Get that misses is
	// guaranteed to observe the eviction record — the primary's
	// evicted-LSN map depends on this (§4.4). The hook must not call back
	// into the cache.
	OnEvict func(id page.ID, lsn page.LSN)
}

type memEntry struct {
	pg  *page.Page
	elt *list.Element
}

type ssdEntry struct {
	slot int
	lsn  page.LSN
	elt  *list.Element // nil in covering mode
}

// Cache is one RBPEX instance.
type Cache struct {
	cfg  Config
	meta *hekaton.Table

	mu       sync.Mutex
	mem      map[page.ID]*memEntry
	memLRU   *list.List // front = most recent; values are page.ID
	ssd      map[page.ID]*ssdEntry
	ssdLRU   *list.List // sparse mode only
	free     []int
	nextSlot int

	memHits metrics.Counter
	ssdHits metrics.Counter
	misses  metrics.Counter
}

// Open creates or recovers a cache. If the metadata device already holds a
// table (a previous incarnation's), the SSD tier is recovered from it.
func Open(cfg Config) (*Cache, error) {
	if cfg.MemPages < 1 {
		return nil, errors.New("rbpex: MemPages must be >= 1")
	}
	if cfg.Covering && cfg.SSDPages < 1 {
		return nil, errors.New("rbpex: covering cache needs SSDPages")
	}
	c := &Cache{
		cfg:    cfg,
		mem:    make(map[page.ID]*memEntry),
		memLRU: list.New(),
		ssd:    make(map[page.ID]*ssdEntry),
		ssdLRU: list.New(),
	}
	if cfg.SSDPages > 0 {
		if cfg.SSD == nil || cfg.Meta == nil {
			return nil, errors.New("rbpex: SSD tier requires SSD and Meta devices")
		}
		meta, err := hekaton.Open(cfg.Meta)
		if err != nil {
			return nil, fmt.Errorf("rbpex: recovering metadata: %w", err)
		}
		c.meta = meta
		// Rebuild the slot map from recovered metadata.
		type row struct {
			id   page.ID
			slot int
			lsn  page.LSN
		}
		var rows []row
		meta.Range(func(key string, val []byte) bool {
			if len(val) != 16 {
				return true
			}
			id, ok := decodeMetaKey(key)
			if !ok {
				return true
			}
			rows = append(rows, row{
				id:   id,
				slot: int(binary.LittleEndian.Uint64(val[0:8])),
				lsn:  page.LSN(binary.LittleEndian.Uint64(val[8:16])),
			})
			return true
		})
		used := make(map[int]bool)
		for _, r := range rows {
			e := &ssdEntry{slot: r.slot, lsn: r.lsn}
			if !cfg.Covering {
				e.elt = c.ssdLRU.PushBack(r.id)
			}
			c.ssd[r.id] = e
			used[r.slot] = true
			if r.slot >= c.nextSlot {
				c.nextSlot = r.slot + 1
			}
		}
		if !cfg.Covering {
			for s := 0; s < c.nextSlot; s++ {
				if !used[s] {
					c.free = append(c.free, s)
				}
			}
		}
	}
	return c, nil
}

func metaKey(id page.ID) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return string(b[:])
}

func decodeMetaKey(key string) (page.ID, bool) {
	if len(key) != 8 {
		return 0, false
	}
	return page.ID(binary.BigEndian.Uint64([]byte(key))), true
}

// slotFor computes the SSD slot for a page in covering mode.
func (c *Cache) slotFor(id page.ID) int { return int(id - c.cfg.Base) }

// Get returns a copy of the cached page and whether it was found. Memory
// hits cost nothing; SSD hits pay one SSD read and promote the page to the
// memory tier.
func (c *Cache) Get(id page.ID) (*page.Page, bool) {
	c.mu.Lock()
	if e, ok := c.mem[id]; ok {
		c.memLRU.MoveToFront(e.elt)
		pg := e.pg.Clone()
		c.mu.Unlock()
		c.memHits.Inc()
		return pg, true
	}
	e, ok := c.ssd[id]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	slot := e.slot
	if !c.cfg.Covering {
		c.ssdLRU.MoveToFront(e.elt)
	}
	c.mu.Unlock()

	// page.miss: the memory tier missed and the caller blocks on the SSD
	// slot read. Aggregate-only; cache reads carry no request context.
	region := c.cfg.Waits.Begin(nil, obs.WaitPageMiss)
	buf := make([]byte, page.Size)
	if err := c.cfg.SSD.ReadAt(buf, int64(slot)*page.Size); err != nil {
		region.End()
		c.misses.Inc()
		return nil, false
	}
	region.End()
	pg, err := page.Decode(buf)
	if err != nil || pg.ID != id {
		// Torn or stale slot: treat as a miss; the caller refetches.
		c.misses.Inc()
		return nil, false
	}
	c.ssdHits.Inc()
	c.promote(pg.Clone())
	return pg, true
}

// GetLSN reports the LSN of the cached copy, if any, without reading data.
func (c *Cache) GetLSN(id page.ID) (page.LSN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[id]; ok {
		return e.pg.LSN, true
	}
	if e, ok := c.ssd[id]; ok {
		return e.lsn, true
	}
	return 0, false
}

// Contains reports whether the page is cached in either tier.
func (c *Cache) Contains(id page.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, inMem := c.mem[id]
	_, inSSD := c.ssd[id]
	return inMem || inSSD
}

// Put inserts or updates the page in the memory tier (storing a private
// copy), evicting as needed.
func (c *Cache) Put(pg *page.Page) error {
	return c.put(pg.Clone())
}

// promote is Put for pages read back from the SSD tier.
//
//socrates:ignore-err promotion only refreshes the memory tier; the SSD copy just read remains authoritative, so a failed promote costs one re-read
func (c *Cache) promote(pg *page.Page) { _ = c.put(pg) }

func (c *Cache) put(pg *page.Page) error {
	// Covering caches are dense: the SSD tier holds every page at all
	// times (range reads and recovery depend on it), so puts write
	// through. demote skips the I/O when the SSD copy is already current.
	if c.cfg.Covering {
		if err := c.demote(pg); err != nil {
			return err
		}
	}
	var evicted []*page.Page
	c.mu.Lock()
	if e, ok := c.mem[pg.ID]; ok {
		e.pg = pg
		c.memLRU.MoveToFront(e.elt)
	} else {
		e := &memEntry{pg: pg}
		e.elt = c.memLRU.PushFront(pg.ID)
		c.mem[pg.ID] = e
		for len(c.mem) > c.cfg.MemPages {
			victim := c.memLRU.Back()
			id := victim.Value.(page.ID)
			ve := c.mem[id]
			c.memLRU.Remove(victim)
			delete(c.mem, id)
			// Record the eviction atomically with the removal from the
			// memory tier — even when the page is headed for the SSD
			// tier, because it is unfindable while the demotion I/O is
			// in flight and a concurrent miss must still learn its LSN
			// ("the highest LSN for every page evicted", §4.4).
			c.notifyEvictLocked(id, ve.pg.LSN)
			if c.cfg.SSDPages > 0 || c.cfg.Covering {
				evicted = append(evicted, ve.pg)
			}
		}
	}
	c.mu.Unlock()
	for _, v := range evicted {
		if err := c.demote(v); err != nil {
			return err
		}
	}
	return nil
}

// demote moves a page evicted from memory into the SSD tier (or out of the
// cache entirely when there is no SSD tier or the page loses the SSD LRU).
func (c *Cache) demote(pg *page.Page) error {
	if c.cfg.SSDPages == 0 && !c.cfg.Covering {
		c.mu.Lock()
		c.notifyEvictLocked(pg.ID, pg.LSN)
		c.mu.Unlock()
		return nil
	}
	c.mu.Lock()
	e, exists := c.ssd[pg.ID]
	if exists && e.lsn.AtLeast(pg.LSN) {
		// SSD already has this version or newer; just refresh recency.
		if !c.cfg.Covering {
			c.ssdLRU.MoveToFront(e.elt)
		}
		c.mu.Unlock()
		return nil
	}
	var slot int
	var ssdVictim *struct {
		id  page.ID
		lsn page.LSN
	}
	switch {
	case exists:
		slot = e.slot
	case c.cfg.Covering:
		slot = c.slotFor(pg.ID)
	case len(c.free) > 0:
		slot = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case len(c.ssd) < c.cfg.SSDPages:
		slot = c.nextSlot
		c.nextSlot++
	default:
		// SSD full: evict the SSD LRU victim and reuse its slot. The
		// eviction is recorded before the lock drops, so a concurrent
		// miss always sees the evicted-LSN entry.
		back := c.ssdLRU.Back()
		vid := back.Value.(page.ID)
		ve := c.ssd[vid]
		c.ssdLRU.Remove(back)
		delete(c.ssd, vid)
		slot = ve.slot
		ssdVictim = &struct {
			id  page.ID
			lsn page.LSN
		}{vid, ve.lsn}
		c.notifyEvictLocked(vid, ve.lsn)
	}
	c.mu.Unlock()

	buf, err := pg.Encode()
	if err != nil {
		return err
	}
	if err := c.cfg.SSD.WriteAt(buf, int64(slot)*page.Size); err != nil {
		return err
	}
	if ssdVictim != nil {
		if err := c.meta.Delete(metaKey(ssdVictim.id)); err != nil {
			return err
		}
	}
	// Persist metadata only when the page takes a (new) slot. Refreshing
	// the recorded LSN on every rewrite would double the SSD traffic for
	// nothing: a stale recorded LSN merely means a little extra idempotent
	// redo after recovery, while the slot mapping is what correctness
	// needs. The page image itself always carries its true LSN.
	if !exists {
		val := make([]byte, 16)
		binary.LittleEndian.PutUint64(val[0:8], uint64(slot))
		binary.LittleEndian.PutUint64(val[8:16], pg.LSN.Uint64())
		if err := c.meta.Put(metaKey(pg.ID), val); err != nil {
			return err
		}
	}

	c.mu.Lock()
	if e, ok := c.ssd[pg.ID]; ok {
		e.lsn = pg.LSN
		e.slot = slot
		if !c.cfg.Covering {
			c.ssdLRU.MoveToFront(e.elt)
		}
	} else {
		ne := &ssdEntry{slot: slot, lsn: pg.LSN}
		if !c.cfg.Covering {
			ne.elt = c.ssdLRU.PushFront(pg.ID)
		}
		c.ssd[pg.ID] = ne
	}
	c.mu.Unlock()

	return nil
}

// notifyEvictLocked fires the eviction hook; caller holds c.mu.
func (c *Cache) notifyEvictLocked(id page.ID, lsn page.LSN) {
	if c.cfg.OnEvict != nil {
		c.cfg.OnEvict(id, lsn)
	}
}

// Seed writes the page directly to the SSD tier, bypassing the memory
// tier. Page servers use it to lay down the covering copy while seeding
// asynchronously (§4.6).
func (c *Cache) Seed(pg *page.Page) error {
	if c.cfg.SSDPages == 0 {
		return errors.New("rbpex: Seed requires an SSD tier")
	}
	return c.demote(pg.Clone())
}

// FlushAll demotes every memory-tier page to the SSD tier (clean shutdown),
// so a reopened cache starts with the complete hot set on SSD.
func (c *Cache) FlushAll() error {
	c.mu.Lock()
	pages := make([]*page.Page, 0, len(c.mem))
	for _, e := range c.mem {
		pages = append(pages, e.pg)
	}
	c.mu.Unlock()
	for _, pg := range pages {
		if err := c.demote(pg); err != nil {
			return err
		}
	}
	if c.meta != nil {
		return c.meta.Checkpoint()
	}
	return nil
}

// ReadRange reads n consecutive pages starting at start with a single SSD
// I/O. Only covering caches support it (stride-preserving layout, §4.6).
// Pages in the range that are hotter in the memory tier are substituted in.
func (c *Cache) ReadRange(start page.ID, n int) ([]*page.Page, error) {
	if !c.cfg.Covering {
		return nil, ErrNotCovered
	}
	slot := c.slotFor(start)
	if slot < 0 || slot+n > c.cfg.SSDPages {
		return nil, fmt.Errorf("rbpex: range [%d,+%d) outside partition", start, n)
	}
	buf := make([]byte, n*page.Size)
	if err := c.cfg.SSD.ReadAt(buf, int64(slot)*page.Size); err != nil {
		return nil, err
	}
	out := make([]*page.Page, 0, n)
	for i := 0; i < n; i++ {
		id := start + page.ID(i)
		c.mu.Lock()
		me, inMem := c.mem[id]
		var memCopy *page.Page
		if inMem {
			memCopy = me.pg.Clone()
		}
		c.mu.Unlock()
		if inMem {
			out = append(out, memCopy)
			continue
		}
		pg, err := page.Decode(buf[i*page.Size : (i+1)*page.Size])
		if err != nil {
			return nil, fmt.Errorf("rbpex: decoding page %d in range: %w", id, err)
		}
		out = append(out, pg)
	}
	return out, nil
}

// ReadRangeAvailable is ReadRange clamped to the written SSD extent, with
// never-written slots skipped — the form pushdown scans use to sweep a
// whole partition range without tracking which pages exist.
func (c *Cache) ReadRangeAvailable(start page.ID, n int) ([]*page.Page, error) {
	if !c.cfg.Covering {
		return nil, ErrNotCovered
	}
	slot := c.slotFor(start)
	if slot < 0 {
		return nil, fmt.Errorf("rbpex: range start %d below partition", start)
	}
	avail := int(c.cfg.SSD.Size()/page.Size) - slot
	if avail <= 0 {
		return nil, nil
	}
	if n > avail {
		n = avail
	}
	if slot+n > c.cfg.SSDPages {
		n = c.cfg.SSDPages - slot
	}
	buf := make([]byte, n*page.Size)
	if err := c.cfg.SSD.ReadAt(buf, int64(slot)*page.Size); err != nil {
		return nil, err
	}
	out := make([]*page.Page, 0, n)
	for i := 0; i < n; i++ {
		id := start + page.ID(i)
		c.mu.Lock()
		me, inMem := c.mem[id]
		var memCopy *page.Page
		if inMem {
			memCopy = me.pg.Clone()
		}
		c.mu.Unlock()
		if inMem {
			out = append(out, memCopy)
			continue
		}
		pg, err := page.Decode(buf[i*page.Size : (i+1)*page.Size])
		if err != nil {
			continue // never-written or torn slot: not a page
		}
		out = append(out, pg)
	}
	return out, nil
}

// Stats reports memory hits, SSD hits, and misses since creation.
func (c *Cache) Stats() (memHits, ssdHits, misses int64) {
	return c.memHits.Load(), c.ssdHits.Load(), c.misses.Load()
}

// HitRate reports the overall cache hit fraction in [0, 1].
func (c *Cache) HitRate() float64 {
	m, s, x := c.Stats()
	total := m + s + x
	if total == 0 {
		return 0
	}
	return float64(m+s) / float64(total)
}

// ResetStats zeroes the hit/miss counters (measurement windows).
func (c *Cache) ResetStats() {
	c.memHits.Reset()
	c.ssdHits.Reset()
	c.misses.Reset()
}

// Len reports the number of distinct pages cached across both tiers.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.ssd)
	for id := range c.mem {
		if _, onSSD := c.ssd[id]; !onSSD {
			n++
		}
	}
	return n
}

// MinSSDLSN reports the oldest LSN among SSD-tier pages and whether the
// tier is nonempty. After recovery this is the log-apply restart point.
func (c *Cache) MinSSDLSN() (page.LSN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var min page.LSN
	found := false
	for _, e := range c.ssd {
		if !found || e.lsn.Before(min) {
			min, found = e.lsn, true
		}
	}
	return min, found
}
