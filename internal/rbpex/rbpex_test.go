package rbpex

import (
	"fmt"
	"sync"
	"testing"

	"socrates/internal/page"
	"socrates/internal/simdisk"
)

func mkPage(id page.ID, lsn page.LSN, marker byte) *page.Page {
	return &page.Page{ID: id, LSN: lsn, Type: page.TypeLeaf, Data: []byte{marker}}
}

func sparseCache(t *testing.T, memPages, ssdPages int) (*Cache, Config) {
	t.Helper()
	cfg := Config{
		MemPages: memPages,
		SSDPages: ssdPages,
		SSD:      simdisk.New(simdisk.Instant),
		Meta:     simdisk.New(simdisk.Instant),
	}
	if ssdPages == 0 {
		cfg.SSD, cfg.Meta = nil, nil
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, cfg
}

func TestMemHit(t *testing.T) {
	c, _ := sparseCache(t, 4, 0)
	if err := c.Put(mkPage(1, 10, 'a')); err != nil {
		t.Fatal(err)
	}
	pg, ok := c.Get(1)
	if !ok || pg.LSN != 10 || pg.Data[0] != 'a' {
		t.Fatalf("get = %+v %v", pg, ok)
	}
	m, s, x := c.Stats()
	if m != 1 || s != 0 || x != 0 {
		t.Fatalf("stats = %d %d %d", m, s, x)
	}
}

func TestMiss(t *testing.T) {
	c, _ := sparseCache(t, 4, 0)
	if _, ok := c.Get(99); ok {
		t.Fatal("phantom hit")
	}
	if _, _, x := c.Stats(); x != 1 {
		t.Fatal("miss not counted")
	}
}

func TestPutStoresCopy(t *testing.T) {
	c, _ := sparseCache(t, 4, 0)
	pg := mkPage(1, 1, 'a')
	_ = c.Put(pg)
	pg.Data[0] = 'Z' // caller mutates after Put
	got, _ := c.Get(1)
	if got.Data[0] != 'a' {
		t.Fatal("cache aliased caller's page")
	}
	got.Data[0] = 'Y' // reader mutates the returned copy
	again, _ := c.Get(1)
	if again.Data[0] != 'a' {
		t.Fatal("Get leaked internal page")
	}
}

func TestMemEvictionToSSD(t *testing.T) {
	c, _ := sparseCache(t, 2, 8)
	for i := 1; i <= 3; i++ {
		_ = c.Put(mkPage(page.ID(i), page.LSN(i), byte(i)))
	}
	// Page 1 was LRU and demoted to SSD.
	pg, ok := c.Get(1)
	if !ok || pg.Data[0] != 1 {
		t.Fatalf("SSD get = %+v %v", pg, ok)
	}
	_, ssdHits, _ := c.Stats()
	if ssdHits != 1 {
		t.Fatalf("ssdHits = %d", ssdHits)
	}
}

func TestEvictionWithoutSSDFiresHook(t *testing.T) {
	var mu sync.Mutex
	evicted := map[page.ID]page.LSN{}
	cfg := Config{
		MemPages: 2,
		OnEvict: func(id page.ID, lsn page.LSN) {
			mu.Lock()
			evicted[id] = lsn
			mu.Unlock()
		},
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Put(mkPage(1, 11, 'a'))
	_ = c.Put(mkPage(2, 12, 'b'))
	_ = c.Put(mkPage(3, 13, 'c'))
	mu.Lock()
	defer mu.Unlock()
	if lsn, ok := evicted[1]; !ok || lsn != 11 {
		t.Fatalf("evicted = %v", evicted)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestSSDEvictionFiresHookWithLSN(t *testing.T) {
	var mu sync.Mutex
	evicted := map[page.ID]page.LSN{}
	cfg := Config{
		MemPages: 1,
		SSDPages: 2,
		SSD:      simdisk.New(simdisk.Instant),
		Meta:     simdisk.New(simdisk.Instant),
		OnEvict: func(id page.ID, lsn page.LSN) {
			mu.Lock()
			evicted[id] = lsn
			mu.Unlock()
		},
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill: mem holds 1 page, SSD holds 2; the 4th insert pushes the
	// oldest page out of the cache entirely.
	for i := 1; i <= 4; i++ {
		_ = c.Put(mkPage(page.ID(i), page.LSN(i*10), byte(i)))
	}
	mu.Lock()
	defer mu.Unlock()
	if lsn, ok := evicted[1]; !ok || lsn != 10 {
		t.Fatalf("evicted = %v, want page 1 at LSN 10", evicted)
	}
}

func TestLRUOrderRespectsAccess(t *testing.T) {
	c, _ := sparseCache(t, 2, 4)
	_ = c.Put(mkPage(1, 1, 'a'))
	_ = c.Put(mkPage(2, 2, 'b'))
	if _, ok := c.Get(1); !ok { // touch 1 so 2 becomes LRU
		t.Fatal("page 1 missing")
	}
	_ = c.Put(mkPage(3, 3, 'c')) // evicts 2, not 1
	c.ResetStats()
	_, _ = c.Get(1)
	m, s, _ := c.Stats()
	if m != 1 || s != 0 {
		t.Fatalf("page 1 should still be a mem hit (m=%d s=%d)", m, s)
	}
}

func TestUpdateRefreshesVersion(t *testing.T) {
	c, _ := sparseCache(t, 2, 4)
	_ = c.Put(mkPage(1, 1, 'a'))
	_ = c.Put(mkPage(1, 5, 'A')) // newer version of the same page
	// Force a demotion and re-read from SSD to check the latest landed.
	_ = c.Put(mkPage(2, 2, 'b'))
	_ = c.Put(mkPage(3, 3, 'c'))
	pg, ok := c.Get(1)
	if !ok || pg.LSN != 5 || pg.Data[0] != 'A' {
		t.Fatalf("got %+v", pg)
	}
}

func TestGetLSNAndContains(t *testing.T) {
	c, _ := sparseCache(t, 1, 4)
	_ = c.Put(mkPage(1, 7, 'a'))
	if lsn, ok := c.GetLSN(1); !ok || lsn != 7 {
		t.Fatalf("mem lsn = %d %v", lsn, ok)
	}
	_ = c.Put(mkPage(2, 8, 'b')) // demotes 1 to SSD
	if lsn, ok := c.GetLSN(1); !ok || lsn != 7 {
		t.Fatalf("ssd lsn = %d %v", lsn, ok)
	}
	if !c.Contains(1) || !c.Contains(2) || c.Contains(3) {
		t.Fatal("Contains wrong")
	}
	if _, ok := c.GetLSN(3); ok {
		t.Fatal("phantom LSN")
	}
}

func TestRecoveryRestoresSSDTier(t *testing.T) {
	ssd := simdisk.New(simdisk.Instant)
	meta := simdisk.New(simdisk.Instant)
	cfg := Config{MemPages: 2, SSDPages: 8, SSD: ssd, Meta: meta}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		_ = c.Put(mkPage(page.ID(i), page.LSN(i*100), byte(i)))
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new cache over the same devices.
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		pg, ok := re.Get(page.ID(i))
		if !ok || pg.LSN != page.LSN(i*100) || pg.Data[0] != byte(i) {
			t.Fatalf("page %d after recovery: %+v %v", i, pg, ok)
		}
	}
	min, found := re.MinSSDLSN()
	if !found || min != 100 {
		t.Fatalf("MinSSDLSN = %d %v", min, found)
	}
}

func TestRecoveryWithoutFlushLosesOnlyMemTier(t *testing.T) {
	ssd := simdisk.New(simdisk.Instant)
	meta := simdisk.New(simdisk.Instant)
	cfg := Config{MemPages: 2, SSDPages: 8, SSD: ssd, Meta: meta}
	c, _ := Open(cfg)
	for i := 1; i <= 4; i++ {
		_ = c.Put(mkPage(page.ID(i), page.LSN(i), byte(i)))
	}
	// Pages 1 and 2 were demoted; 3 and 4 are memory-only. Crash now.
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Contains(1) || !re.Contains(2) {
		t.Fatal("SSD-tier pages lost")
	}
	if re.Contains(3) || re.Contains(4) {
		t.Fatal("mem-tier pages survived a crash (impossible)")
	}
}

func TestSlotReuseAfterEviction(t *testing.T) {
	c, _ := sparseCache(t, 1, 2)
	for i := 1; i <= 6; i++ {
		_ = c.Put(mkPage(page.ID(i), page.LSN(i), byte(i)))
	}
	// Slots must not grow beyond SSDPages.
	if c.cfg.SSD.Size() > int64(2*page.Size) {
		t.Fatalf("SSD grew to %d bytes, want <= %d", c.cfg.SSD.Size(), 2*page.Size)
	}
}

func coveringCache(t *testing.T, base page.ID, pages int) *Cache {
	t.Helper()
	c, err := Open(Config{
		MemPages: 2,
		SSDPages: pages,
		Covering: true,
		Base:     base,
		SSD:      simdisk.New(simdisk.Instant),
		Meta:     simdisk.New(simdisk.Instant),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoveringSeedAndReadRange(t *testing.T) {
	c := coveringCache(t, 100, 16)
	for i := 0; i < 16; i++ {
		if err := c.Seed(mkPage(100+page.ID(i), 1, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	reads0, _, _, _ := c.cfg.SSD.Stats()
	pages, err := c.ReadRange(104, 8)
	if err != nil {
		t.Fatal(err)
	}
	reads1, _, _, _ := c.cfg.SSD.Stats()
	if reads1-reads0 != 1 {
		t.Fatalf("range read used %d I/Os, want 1 (stride-preserving)", reads1-reads0)
	}
	if len(pages) != 8 {
		t.Fatalf("got %d pages", len(pages))
	}
	for i, pg := range pages {
		if pg.ID != 104+page.ID(i) || pg.Data[0] != byte(i+4) {
			t.Fatalf("page %d = %+v", i, pg)
		}
	}
}

func TestCoveringReadRangePrefersMemTier(t *testing.T) {
	c := coveringCache(t, 0, 8)
	for i := 0; i < 8; i++ {
		_ = c.Seed(mkPage(page.ID(i), 1, 0))
	}
	// A newer version of page 3 lives in the memory tier only.
	_ = c.Put(mkPage(3, 9, 99))
	pages, err := c.ReadRange(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pages[3].LSN != 9 || pages[3].Data[0] != 99 {
		t.Fatalf("range returned stale page 3: %+v", pages[3])
	}
}

func TestCoveringNeverEvictsSSD(t *testing.T) {
	c := coveringCache(t, 0, 64)
	for i := 0; i < 64; i++ {
		_ = c.Seed(mkPage(page.ID(i), 1, byte(i)))
	}
	// Churn the memory tier hard; every page must stay readable.
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			pg, ok := c.Get(page.ID(i))
			if !ok || pg.Data[0] != byte(i) {
				t.Fatalf("page %d lost (round %d)", i, round)
			}
		}
	}
	if c.Len() != 64 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestRangeReadOnSparseFails(t *testing.T) {
	c, _ := sparseCache(t, 2, 4)
	if _, err := c.ReadRange(0, 2); err != ErrNotCovered {
		t.Fatalf("err = %v", err)
	}
}

func TestRangeOutsidePartitionFails(t *testing.T) {
	c := coveringCache(t, 100, 8)
	if _, err := c.ReadRange(99, 2); err == nil {
		t.Fatal("below-base range should fail")
	}
	if _, err := c.ReadRange(104, 8); err == nil {
		t.Fatal("overflowing range should fail")
	}
}

func TestCoveringRecovery(t *testing.T) {
	ssd := simdisk.New(simdisk.Instant)
	meta := simdisk.New(simdisk.Instant)
	cfg := Config{MemPages: 2, SSDPages: 8, Covering: true, Base: 50,
		SSD: ssd, Meta: meta}
	c, _ := Open(cfg)
	for i := 0; i < 8; i++ {
		_ = c.Seed(mkPage(50+page.ID(i), page.LSN(i+1), byte(i)))
	}
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := re.ReadRange(50, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range pages {
		if pg.Data[0] != byte(i) {
			t.Fatalf("recovered page %d = %+v", i, pg)
		}
	}
}

func TestHitRate(t *testing.T) {
	c, _ := sparseCache(t, 4, 0)
	_ = c.Put(mkPage(1, 1, 'a'))
	_, _ = c.Get(1) // hit
	_, _ = c.Get(2) // miss
	_, _ = c.Get(1) // hit
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", got)
	}
	c.ResetStats()
	if c.HitRate() != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{MemPages: 0}); err == nil {
		t.Fatal("MemPages=0 should fail")
	}
	if _, err := Open(Config{MemPages: 1, SSDPages: 4}); err == nil {
		t.Fatal("missing devices should fail")
	}
	if _, err := Open(Config{MemPages: 1, Covering: true}); err == nil {
		t.Fatal("covering without SSDPages should fail")
	}
}

func TestConcurrentGetPut(t *testing.T) {
	c, _ := sparseCache(t, 16, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := page.ID(i % 32)
				if i%3 == 0 {
					if err := c.Put(mkPage(id, page.LSN(i), byte(w))); err != nil {
						t.Error(err)
						return
					}
				} else {
					c.Get(id)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestManyPagesStress(t *testing.T) {
	c, _ := sparseCache(t, 8, 32)
	for i := 0; i < 500; i++ {
		id := page.ID(i % 64)
		_ = c.Put(&page.Page{ID: id, LSN: page.LSN(i + 1), Type: page.TypeLeaf,
			Data: []byte(fmt.Sprintf("payload-%d", i))})
	}
	if c.Len() > 40 {
		t.Fatalf("cache len %d exceeds capacity", c.Len())
	}
}
