// Package testutil holds small helpers shared by the repo's test suites.
//
// Its main job today is the race-detector guard for the AllocsPerRun
// contract tests: the race runtime instruments allocations, so those
// budgets only hold in plain builds.
package testutil

import "testing"

// SkipIfRace skips allocation-budget tests under the race detector, whose
// instrumentation changes allocation counts.
func SkipIfRace(t *testing.T) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
}
