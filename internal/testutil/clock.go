package testutil

import (
	"sort"
	"sync"
	"time"
)

// FakeClock is a manually advanced clock for deterministic timer tests. It
// structurally satisfies compute.Clock (Now + AfterFunc), so the adaptive
// group-commit batcher's timeout logic runs without wall-clock sleeps: the
// test calls Advance and every timer due at the new time fires synchronously
// before Advance returns.
//
// Callbacks run with no FakeClock lock held, so they may take arbitrary
// locks (the batcher's callback takes the writer mutex to broadcast). The
// converse discipline is the caller's: never call Advance while holding a
// lock a timer callback takes.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Time
	f       func()
	stopped bool
}

// NewFakeClock starts a clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now reports the clock's current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules f to run when the clock advances past d from now.
// The returned stop function cancels the timer if it has not fired,
// reporting whether it did cancel.
func (c *FakeClock) AfterFunc(d time.Duration, f func()) func() bool {
	c.mu.Lock()
	t := &fakeTimer{at: c.now.Add(d), f: f}
	c.timers = append(c.timers, t)
	c.mu.Unlock()
	return func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if t.stopped {
			return false
		}
		t.stopped = true
		return true
	}
}

// Advance moves the clock forward by d and fires every due timer in
// deadline order, synchronously, before returning.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*fakeTimer
	keep := c.timers[:0]
	for _, t := range c.timers {
		if !t.stopped && !t.at.After(c.now) {
			t.stopped = true
			due = append(due, t)
			continue
		}
		if !t.stopped {
			keep = append(keep, t)
		}
	}
	c.timers = keep
	c.mu.Unlock()
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		t.f()
	}
}

// Pending reports the number of armed timers (diagnostics).
func (c *FakeClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}
